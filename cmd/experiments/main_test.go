package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunTable1 exercises the full driver on its fastest experiment (LoC
// counting — no dataflow), covering flag parsing, dispatch and printing.
func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE1", "Native", "Megaphone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunErrors: unknown experiments, codecs and flags are rejected.
func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-transfer", "nope"},
		{"-definitely-not-a-flag"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestOrderKey pins the experiment ordering of -exp all: table first, then
// figures in numeric order, then the new ablations, codec last.
func TestOrderKey(t *testing.T) {
	order := []string{"table1", "fig1", "fig5", "fig12", "fig20", "skew", "autoscale", "recovery", "codec"}
	for i := 1; i < len(order); i++ {
		if orderKey(order[i-1]) >= orderKey(order[i]) {
			t.Errorf("orderKey(%s)=%d not before orderKey(%s)=%d",
				order[i-1], orderKey(order[i-1]), order[i], orderKey(order[i]))
		}
	}
}
