// Command experiments regenerates every table and figure of the Megaphone
// paper's evaluation at laptop scale, printing the same rows/series the
// paper reports. See DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured shapes.
//
// Usage:
//
//	experiments -exp fig1          # one experiment
//	experiments -exp all -quick    # everything, shrunk durations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/keycount"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

type config struct {
	workers  int
	quick    bool
	transfer core.Codec
	out      io.Writer
	// cluster, when non-nil, runs every experiment's dataflows across OS
	// processes: each run joins a fresh mesh, so all processes must execute
	// the same experiment sequence (same flags apart from -process).
	cluster *dataflow.ClusterSpec
	// runSeq numbers the cluster runs; it advances identically on every
	// process (same experiment sequence) and salts each mesh's handshake
	// so overlapping generations on the same ports reject cleanly.
	runSeq *atomic.Uint64
}

// clusterSpec returns this run's cluster spec (with its generation stamped)
// or nil in single-process mode.
func (c config) clusterSpec() *dataflow.ClusterSpec {
	if c.cluster == nil {
		return nil
	}
	spec := *c.cluster
	spec.Generation = c.runSeq.Add(1)
	return &spec
}

// runKeycount executes one keycount run with the driver's cluster spec
// applied. Experiment runs are scripted, so configuration errors are bugs
// and cluster join failures are fatal.
func (c config) runKeycount(cfg keycount.RunConfig) harness.Result {
	cfg.Cluster = c.clusterSpec()
	res, err := keycount.Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// runNexmark is runKeycount for NEXMark queries.
func (c config) runNexmark(cfg nexmark.RunConfig) harness.Result {
	cfg.Cluster = c.clusterSpec()
	res, err := nexmark.Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: table1, fig1, fig5..fig20, skew, autoscale, recovery, codec, or all")
		workers  = fs.Int("workers", 4, "number of workers")
		quick    = fs.Bool("quick", false, "shrink durations for a fast pass")
		transfer = fs.String("transfer", "gob",
			fmt.Sprintf("migration codec for every experiment: %s", strings.Join(core.CodecNames(), ", ")))
		hosts = fs.String("hosts", "", "comma-separated host:port list, one per process; runs every experiment across processes (start all processes with identical flags apart from -process)")
		proc  = fs.Int("process", 0, "this process's index into -hosts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := core.CodecByName(*transfer)
	if err != nil {
		return err
	}
	c := config{workers: *workers, quick: *quick, transfer: codec, out: out}
	if *hosts != "" {
		// Validate the cluster-incompatible knobs up front, before any
		// experiment output, so misconfiguration is a clean error rather
		// than a panic mid-sequence. (codecExp, which iterates all codecs
		// by design, skips the direct row itself.)
		if core.IsDirectCodec(codec) {
			return fmt.Errorf("-transfer direct cannot cross process boundaries; use gob or binary with -hosts")
		}
		c.cluster = &dataflow.ClusterSpec{Hosts: strings.Split(*hosts, ","), Process: *proc}
		c.runSeq = new(atomic.Uint64)
	}

	all := map[string]func(config){
		"table1":    table1,
		"fig1":      fig1,
		"codec":     codecExp,
		"skew":      skewExp,
		"autoscale": autoscaleExp,
		"recovery":  recoveryExp,
		"fig5":      func(c config) { statelessFig(c, "fig5", "q1") },
		"fig6":      func(c config) { statelessFig(c, "fig6", "q2") },
		"fig7":      func(c config) { queryFig(c, "fig7", "q3", true) },
		"fig8":      func(c config) { queryFig(c, "fig8", "q4", false) },
		"fig9":      func(c config) { queryFig(c, "fig9", "q5", false) },
		"fig10":     func(c config) { queryFig(c, "fig10", "q6", false) },
		"fig11":     func(c config) { queryFig(c, "fig11", "q7", false) },
		"fig12":     func(c config) { queryFig(c, "fig12", "q8", false) },
		"fig13":     func(c config) { overheadFig(c, "fig13", keycount.HashCount, 1<<20) },
		"fig14":     func(c config) { overheadFig(c, "fig14", keycount.KeyCount, 1<<20) },
		"fig15":     func(c config) { overheadFig(c, "fig15", keycount.KeyCount, 1<<23) },
		"fig16":     fig16,
		"fig17":     fig17,
		"fig18":     fig18,
		"fig19":     fig19,
		"fig20":     fig20,
	}
	if *exp == "all" {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return orderKey(names[i]) < orderKey(names[j])
		})
		for _, n := range names {
			all[n](c)
		}
		return nil
	}
	fn, ok := all[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	fn(c)
	return nil
}

func orderKey(n string) int {
	switch n {
	case "table1":
		return 0
	case "skew":
		return 900 // the new ablations run after the paper's figures
	case "autoscale":
		return 901
	case "recovery":
		return 902
	case "codec":
		return 999
	}
	var x int
	fmt.Sscanf(n, "fig%d", &x)
	return x
}

// codecExp — migration latency per transfer codec: the cost model of
// Section 3.4 made visible. Direct pointer handoff bounds what any codec
// could achieve; gob is the reflective baseline; binary is the hand-rolled
// fast path. Runs all registered codecs regardless of -transfer.
func codecExp(c config) {
	header(c, "codec", "migration latency per state-transfer codec (all-at-once, key-count)")
	fmt.Fprintf(c.out, "%-10s %12s %14s %12s\n", "codec", "duration[s]", "max-latency[ms]", "p99[ms]")
	for _, name := range core.CodecNames() {
		codec, err := core.CodecByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		if c.cluster != nil && core.IsDirectCodec(codec) {
			// Pointer handoff cannot cross process boundaries; every
			// process skips this row identically, keeping the cluster's
			// run sequences in lockstep.
			fmt.Fprintf(c.out, "%-10s %12s\n", name, "(skipped in cluster mode)")
			continue
		}
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:  keycount.HashCount,
				LogBins:  8,
				Domain:   1 << 21,
				Transfer: codec,
				Preload:  true,
			},
			Workers:   c.workers,
			Rate:      200_000,
			Duration:  c.dur(8 * time.Second),
			Strategy:  plan.AllAtOnce,
			MigrateAt: c.dur(4 * time.Second),
		})
		if len(res.MigrationSpans) > 0 {
			sp := res.MigrationSpans[0]
			fmt.Fprintf(c.out, "%-10s %12.3f %14.2f %12.2f\n", name,
				sp.Duration, sp.MaxLatency, float64(res.Hist.Quantile(0.99))/1e6)
		} else {
			fmt.Fprintf(c.out, "%-10s %12s %14s %12s\n", name, "-", "-", "-")
		}
	}
}

func header(c config, name, what string) {
	fmt.Fprintf(c.out, "\n==================== %s: %s ====================\n", strings.ToUpper(name), what)
}

// scale shrinks durations under -quick.
func (c config) dur(d time.Duration) time.Duration {
	if c.quick {
		return d / 4
	}
	return d
}

// table1 — lines of code of the NEXMark query implementations.
func table1(c config) {
	header(c, "table1", "NEXMark query implementations, lines of code")
	native, mega, err := nexmark.LoC()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Fprintf(c.out, "%-12s", "")
	for i := 1; i <= 8; i++ {
		fmt.Fprintf(c.out, "%6s", fmt.Sprintf("Q%d", i))
	}
	fmt.Fprintln(c.out)
	fmt.Fprintf(c.out, "%-12s", "Native")
	for i := 1; i <= 8; i++ {
		fmt.Fprintf(c.out, "%6d", native[fmt.Sprintf("q%d", i)])
	}
	fmt.Fprintln(c.out)
	fmt.Fprintf(c.out, "%-12s", "Megaphone")
	for i := 1; i <= 8; i++ {
		fmt.Fprintf(c.out, "%6d", mega[fmt.Sprintf("q%d", i)])
	}
	fmt.Fprintln(c.out)
}

// fig1 — all-at-once vs fluid vs optimized on a large key-count migration.
func fig1(c config) {
	header(c, "fig1", "migration strategies on key-count (latency timelines)")
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Optimized} {
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:  keycount.HashCount,
				LogBins:  8,
				Domain:   1 << 21,
				Transfer: c.transfer,
				Preload:  true,
			},
			Workers:   c.workers,
			Rate:      200_000,
			Duration:  c.dur(12 * time.Second),
			Strategy:  st,
			Batch:     16,
			MigrateAt: c.dur(6 * time.Second),
		})
		fmt.Fprintf(c.out, "\n--- %v ---\n", st)
		res.Timeline.Fprint(c.out)
		printSpans(c, res)
	}
}

// statelessFig — Q1/Q2: no state, migration is a no-op.
func statelessFig(c config, name, q string) {
	header(c, name, "NEXMark "+q+" (stateless): reconfigurations cause no spike")
	res := c.runNexmark(nexmark.RunConfig{
		Query:     q,
		Params:    nexmark.Params{Impl: nexmark.Megaphone, LogBins: 8, Transfer: c.transfer},
		Workers:   c.workers,
		Rate:      200_000,
		Duration:  c.dur(9 * time.Second),
		Strategy:  plan.Batched,
		Batch:     16,
		MigrateAt: c.dur(3 * time.Second),
	})
	res.Timeline.Fprint(c.out)
	printSpans(c, res)
}

// queryFig — stateful NEXMark queries: all-at-once vs batched (vs native).
func queryFig(c config, name, q string, withNative bool) {
	header(c, name, "NEXMark "+q+": all-at-once vs Megaphone batched")
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Batched} {
		res := c.runNexmark(nexmark.RunConfig{
			Query:     q,
			Params:    nexmark.Params{Impl: nexmark.Megaphone, LogBins: 8, Transfer: c.transfer},
			Workers:   c.workers,
			Rate:      200_000,
			Duration:  c.dur(12 * time.Second),
			Strategy:  st,
			Batch:     16,
			MigrateAt: c.dur(4 * time.Second),
		})
		fmt.Fprintf(c.out, "\n--- %s %v ---\n", q, st)
		res.Timeline.Fprint(c.out)
		printSpans(c, res)
	}
	if withNative {
		res := c.runNexmark(nexmark.RunConfig{
			Query:    q,
			Params:   nexmark.Params{Impl: nexmark.Native},
			Workers:  c.workers,
			Rate:     200_000,
			Duration: c.dur(12 * time.Second),
		})
		fmt.Fprintf(c.out, "\n--- %s native ---\n", q)
		res.Timeline.Fprint(c.out)
	}
}

// overheadFig — steady-state CCDF/percentiles vs bin count (Figures 13-15).
func overheadFig(c config, name string, v keycount.Variant, domain int64) {
	header(c, name, fmt.Sprintf("%v overhead, domain=%d: percentiles by bin count", v, domain))
	fmt.Fprintf(c.out, "%-12s %10s %10s %10s %10s\n", "experiment", "90%[ms]", "99%[ms]", "99.99%[ms]", "max[ms]")
	logBins := []int{4, 8, 12, 16}
	if c.quick {
		logBins = []int{4, 12}
	}
	run := func(label string, variant keycount.Variant, bins int) {
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:  variant,
				LogBins:  bins,
				Domain:   domain,
				Transfer: c.transfer,
				Preload:  true,
			},
			Workers:  c.workers,
			Rate:     200_000,
			Duration: c.dur(6 * time.Second),
		})
		h := res.Hist
		ms := func(v int64) float64 { return float64(v) / 1e6 }
		fmt.Fprintf(c.out, "%-12s %10.2f %10.2f %10.2f %10.2f\n", label,
			ms(h.Quantile(0.90)), ms(h.Quantile(0.99)), ms(h.Quantile(0.9999)), ms(h.Max()))
	}
	for _, lb := range logBins {
		run(fmt.Sprintf("%d", lb), v, lb)
	}
	nat := keycount.NativeHash
	if v == keycount.KeyCount {
		nat = keycount.NativeKey
	}
	run("Native", nat, 4)
}

// sweepRow runs one migration configuration and prints its latency/duration
// point (the coordinates of Figures 16-18).
func sweepRow(c config, st plan.Strategy, logBins int, domain int64, rate int, label string) {
	res := c.runKeycount(keycount.RunConfig{
		Params: keycount.Params{
			Variant:  keycount.HashCount,
			LogBins:  logBins,
			Domain:   domain,
			Transfer: c.transfer,
			Preload:  true,
		},
		Workers:   c.workers,
		Rate:      rate,
		Duration:  c.dur(10 * time.Second),
		Strategy:  st,
		Batch:     16,
		MigrateAt: c.dur(5 * time.Second),
	})
	if len(res.MigrationSpans) > 0 {
		sp := res.MigrationSpans[0]
		fmt.Fprintf(c.out, "%-12v %-12s %12.3f %14.2f\n", st, label, sp.Duration, sp.MaxLatency)
	} else {
		fmt.Fprintf(c.out, "%-12v %-12s %12s %14s\n", st, label, "-", "-")
	}
}

// fig16 — latency vs duration while the bin count varies.
func fig16(c config) {
	header(c, "fig16", "migration latency vs duration, varying bin count (fixed domain)")
	fmt.Fprintf(c.out, "%-12s %-12s %12s %14s\n", "strategy", "bins", "duration[s]", "max-latency[ms]")
	logBins := []int{4, 6, 8, 10}
	if c.quick {
		logBins = []int{4, 8}
	}
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, lb := range logBins {
			sweepRow(c, st, lb, 1<<21, 200_000, fmt.Sprintf("2^%d", lb))
		}
	}
}

// fig17 — latency vs duration while the domain varies.
func fig17(c config) {
	header(c, "fig17", "migration latency vs duration, varying domain (fixed bins)")
	fmt.Fprintf(c.out, "%-12s %-12s %12s %14s\n", "strategy", "domain", "duration[s]", "max-latency[ms]")
	domains := []int64{1 << 19, 1 << 20, 1 << 21, 1 << 22}
	if c.quick {
		domains = []int64{1 << 19, 1 << 21}
	}
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, d := range domains {
			sweepRow(c, st, 8, d, 200_000, fmt.Sprintf("%dM", d>>20))
		}
	}
}

// fig18 — domain and bins grow proportionally: keys-per-bin fixed.
func fig18(c config) {
	header(c, "fig18", "migration latency vs duration, fixed state per bin")
	fmt.Fprintf(c.out, "%-12s %-12s %12s %14s\n", "strategy", "bins", "duration[s]", "max-latency[ms]")
	cfgs := []struct {
		logBins int
		domain  int64
	}{{6, 1 << 19}, {7, 1 << 20}, {8, 1 << 21}, {9, 1 << 22}}
	if c.quick {
		cfgs = cfgs[:2]
	}
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, kc := range cfgs {
			sweepRow(c, st, kc.logBins, kc.domain, 200_000, fmt.Sprintf("2^%d", kc.logBins))
		}
	}
}

// fig19 — offered load vs max latency per strategy.
func fig19(c config) {
	header(c, "fig19", "offered load vs max latency")
	fmt.Fprintf(c.out, "%-14s %12s %14s %14s\n", "strategy", "rate[/s]", "max[ms]", "p99[ms]")
	rates := []int{50_000, 100_000, 200_000, 400_000, 800_000}
	if c.quick {
		rates = []int{100_000, 400_000}
	}
	type variant struct {
		name string
		st   plan.Strategy
		mig  bool
	}
	for _, v := range []variant{
		{"non-migrating", plan.Batched, false},
		{"all-at-once", plan.AllAtOnce, true},
		{"fluid", plan.Fluid, true},
		{"batched", plan.Batched, true},
	} {
		for _, r := range rates {
			cfg := keycount.RunConfig{
				Params: keycount.Params{
					Variant:  keycount.HashCount,
					LogBins:  8,
					Domain:   1 << 21,
					Transfer: c.transfer,
					Preload:  true,
				},
				Workers:  c.workers,
				Rate:     r,
				Duration: c.dur(8 * time.Second),
				Strategy: v.st,
				Batch:    16,
			}
			if v.mig {
				cfg.MigrateAt = c.dur(4 * time.Second)
			}
			res := c.runKeycount(cfg)
			fmt.Fprintf(c.out, "%-14s %12d %14.2f %14.2f\n", v.name, r,
				float64(res.Hist.Max())/1e6, float64(res.Hist.Quantile(0.99))/1e6)
		}
	}
}

// fig20 — memory over time per strategy.
func fig20(c config) {
	header(c, "fig20", "heap bytes over time per migration strategy")
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:  keycount.HashCount,
				LogBins:  8,
				Domain:   1 << 22,
				Transfer: c.transfer,
				Preload:  true,
			},
			Workers:    c.workers,
			Rate:       200_000,
			Duration:   c.dur(12 * time.Second),
			Strategy:   st,
			Batch:      16,
			MigrateAt:  c.dur(4 * time.Second),
			MigrateTwo: true,
			Memory:     true,
		})
		fmt.Fprintf(c.out, "\n--- %v ---  steady p50=%.1f MiB, peak=%.1f MiB\n",
			st, res.Memory.Quantile(0.5)/(1<<20), res.Memory.Max()/(1<<20))
		res.Memory.Fprint(c.out)
	}
}

func printSpans(c config, res harness.Result) {
	for i, sp := range res.MigrationSpans {
		fmt.Fprintf(c.out, "# migration %d: start=%.2fs end=%.2fs duration=%.2fs max-latency=%.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
}

// skewExp — a Zipf-skewed key stream under the static assignment vs the
// LoadBalance policy: the policy sheds hot bins from whichever workers drew
// them, without any hand-written plan.
func skewExp(c config) {
	header(c, "skew", "zipf-skewed key-count: static assignment vs load-balance policy")
	wl := harness.Workload{Kind: harness.Zipf, ZipfS: 1.2}
	for _, policy := range []plan.Policy{plan.Static{}, plan.LoadBalance{Hysteresis: 0.1}} {
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:  keycount.HashCount,
				LogBins:  8,
				Domain:   1 << 20,
				Transfer: c.transfer,
				Preload:  true,
			},
			Workers:  c.workers,
			Rate:     200_000,
			Duration: c.dur(8 * time.Second),
			Workload: wl,
			Auto: &plan.AutoOptions{
				Policy:   policy,
				Strategy: plan.Optimized,
				Batch:    8,
			},
		})
		fmt.Fprintf(c.out, "\n--- policy=%s workload=%s ---\n", policy.Name(), wl)
		res.Timeline.Fprint(c.out)
		res.FprintAdaptive(c.out)
	}
}

// autoscaleExp — the adaptive loop end to end: a hot key set carrying most
// of the traffic jumps between workers mid-run (every shift lands all hot
// bins on one worker's residue class), and the AutoController detects each
// shift from the metered load and restores the latency timeline with an
// Optimized plan — no scripted migrations anywhere.
func autoscaleExp(c config) {
	header(c, "autoscale", "hot-key shift vs AutoController (load-balance, optimized plans)")
	const (
		logBins = 8
		domain  = 1 << 20
	)
	duration := c.dur(12 * time.Second)
	shiftEvery := int64(c.dur(4*time.Second) / time.Millisecond)
	procs := 1
	if c.cluster != nil {
		procs = len(c.cluster.Hosts)
	}
	total := c.workers * procs
	// In-process exchange sustains 300k records/s with single-digit-ms p99,
	// but the TCP mesh adds several ms of baseline p99 at that rate —
	// leaving no headroom under the injected hotspot. Clustered runs scale
	// the offered load to 8k records/s per worker (evenly divisible across
	// the inputs) so the settled latency reflects the controller, not the
	// wire.
	rate := 300_000
	if procs > 1 && rate > 8_000*total {
		rate = 8_000 * total
	}
	binSpan := uint64(domain >> logBins)
	// The strided hot set only stays in a fixed residue class of the bin
	// space when the stride divides the (power-of-two) domain, so the stride
	// factor is the largest power of two not above the cluster-wide worker
	// count. Under the initial round-robin assignment the hot bins then land
	// on total/gcd(stride, total) workers: exactly one when the total is a
	// power of two, a small subset otherwise.
	strideWorkers := 1
	for strideWorkers*2 <= total {
		strideWorkers *= 2
	}
	hotWorkers := total / gcd(strideWorkers, total)
	if hotWorkers != 1 {
		fmt.Fprintf(c.out, "(hot set lands on %d of %d workers: a single hot worker needs a power-of-two total)\n",
			hotWorkers, total)
	}
	// Simulated per-record service time, derived so each worker drawing a
	// share of the hot set runs at ~95% of its nominal serial capacity
	// while a balanced spread keeps every worker well under half of it. In
	// practice sleep overshoot and scheduler overhead push an almost-
	// saturated worker well past 1 — the hotspot wedges the static
	// assignment on any loaded host — but the nominal margin must stay
	// under 1: migration steps pace on the frontier, each step of a plan
	// waits out one full frontier lag, and a hot worker running far past
	// capacity digs a backlog during the detection window that compresses
	// the load signal (a saturated worker's measured rate caps at its
	// capacity) until rebalances no longer land, and the backlog outruns
	// the control loop for good. The cap keeps the balanced assignment
	// unsaturated when the hot set cannot be concentrated (hotWorkers ==
	// total).
	serviceNanos := 950_000_000 * int64(hotWorkers) / int64(rate*85/100)
	if limit := 500_000_000 * int64(total) / int64(rate); serviceNanos > limit {
		serviceNanos = limit
	}
	// Strategy: single-process runs use the paper's optimized interleaving
	// (smallest per-step disturbance). Cluster runs trade that smoothness
	// for recovery speed: every plan step paces on the frontier, so each
	// step waits out one full frontier lag — and Optimized's one-transfer-
	// per-worker-per-step constraint forces as many steps as the hottest
	// worker has bins to shed, which under a badly concentrated hot set
	// (an earlier rebalance can stack the next phase's hot bins on fewer
	// workers than round-robin would) turns a rebalance into seconds of
	// paced steps while the backlog it is chasing compounds. A single wide
	// batched step lands the whole correction in one frontier lag.
	strategy, batch := plan.Optimized, 8
	if procs > 1 {
		strategy, batch = plan.Batched, 256
	}
	// The imbalance signal is bounded both ways in cluster runs. Below: the
	// balanced steady state tops out near 1.4x the mean (16 hot bins over
	// 12 workers leaves some worker two), and mesh records arrive in
	// stall-then-burst waves, so short windows read far off that — a tight
	// band has the controller rebalancing for ever, each small migration's
	// stall seeding the next window's phantom imbalance. Above: once a hot
	// worker saturates, its measured rate is capped at its capacity, so a
	// genuine overload never reads much past ~2x the mean no matter how
	// large the offered excess — a band at or above 1.0 stops a rebalance
	// half-done. 0.8 sits between the two regimes; the longer cluster
	// sampling window keeps steady-state noise inside it, and the short
	// cooldown below lets a genuine recovery refine itself across
	// consecutive windows as the draining backlog de-compresses the
	// signal.
	hysteresis, sampleEvery := 0.25, 125
	cost := plan.DefaultCostModel()
	if procs > 1 {
		hysteresis, sampleEvery = 0.8, 375
		// Credit projected gains only as far as the load shape has held
		// still. Steady-state noise crowns a different worker almost every
		// window, so a phantom imbalance earns a one-window horizon and
		// cannot repay moving tens of record-heavy bins — while a genuine
		// hot-set shift saturates its victim for the whole window, whose
		// recovery repays the move even on that one-window credit.
		cost.CapToStability = true
		// Price migrations at their cluster cost: bin state crosses TCP
		// rather than a pointer swap, and a migration step stalls the
		// whole mesh for ~a frontier lag, not one epoch. At these prices
		// the small phantom-imbalance moves that survive the hysteresis
		// band become declines (their projected gain is a few ms), while
		// a genuine hot-set recovery — a saturated worker's whole window
		// — repays hundreds of ms and still clears easily.
		cost.MigrateNanosPerRec = 1000
		cost.StallNanos = 10_000_000
	}
	wl := harness.Workload{
		Kind:        harness.HotShift,
		HotFraction: 0.85,
		HotKeys:     16,
		// One residue class of the bin space: under the dense key-count hash
		// every hot key lands in a bin of the hot workers.
		HotStride:  binSpan * uint64(strideWorkers),
		ShiftEvery: shiftEvery,
	}
	for _, policy := range []plan.Policy{plan.Static{}, plan.LoadBalance{Hysteresis: hysteresis}} {
		res := c.runKeycount(keycount.RunConfig{
			Params: keycount.Params{
				Variant:      keycount.KeyCount,
				LogBins:      logBins,
				Domain:       domain,
				Transfer:     c.transfer,
				Preload:      true,
				ServiceNanos: serviceNanos,
			},
			Workers:  c.workers,
			Rate:     rate,
			Duration: duration,
			Workload: wl,
			Auto: &plan.AutoOptions{
				Policy:   policy,
				Strategy: strategy,
				Batch:    batch,
				// Sampling trades detection delay against window fidelity:
				// the sooner a shift is detected, the smaller the backlog
				// the migration must pace through, but a window much
				// shorter than the mesh's stall-burst cadence reads mostly
				// noise. In-process runs can afford 125 ms windows; cluster
				// runs triple that so one window averages over several
				// bursts (see the hysteresis note above).
				SampleEvery: sampleEvery,
				// Cool down briefly relative to the window: plans land in
				// one step, so their disturbance is gone well within the
				// next window — while a long cooldown is actively harmful
				// when a sampling window straddles a hot-set shift: the
				// mostly-pre-shift window yields a token plan, and the
				// cooldown then holds the real correction until the
				// backlog has compressed the load signal.
				Cooldown: sampleEvery / 3,
				// Gate plans on profitability: chasing a hot set that is
				// about to rotate again would pay migration cost for no
				// recovered imbalance.
				Cost: cost,
			},
		})
		fmt.Fprintf(c.out, "\n--- policy=%s workload=%s ---\n", policy.Name(), wl)
		res.Timeline.Fprint(c.out)
		res.FprintAdaptive(c.out)
		// Per-phase p99: the peak right after each hot-set shift vs where the
		// controller settled it by the end of the phase.
		phase := float64(shiftEvery) / 1000
		for p := 0; p*int(phase*1000) < int(duration/time.Millisecond); p++ {
			from, to := float64(p)*phase, float64(p+1)*phase
			peak, settled := phaseP99(res, from, to)
			fmt.Fprintf(c.out, "# phase %d [%.0fs-%.0fs): peak p99=%.2fms settled p99=%.2fms\n",
				p+1, from, to, peak, settled)
		}
	}
}

// recoveryExp — the failure half of the migration story: the same
// frontier-aligned stall that moves bins between workers can move them to
// disk, so a checkpoint's latency cost lines up against a migration's, and
// a crash costs one restore plus the replay since the last checkpoint.
// Three runs on the same keycount configuration: (a) the migration
// baseline, (b) a checkpointing run reporting each checkpoint's stall and
// volume, (c) a simulated crash — the run is cut at 60% of its duration,
// then recovered from its newest on-disk checkpoint and driven to the
// original end, reporting restore cost and the post-resume catch-up spike.
func recoveryExp(c config) {
	header(c, "recovery", "checkpoint stall and recovery latency vs migration latency (key-count)")
	if c.cluster != nil {
		// The crash simulation drives one process's run in two phases; the
		// cluster gauntlet (scripts/cluster.sh recovery) covers the real
		// multi-process kill. Every process skips identically.
		fmt.Fprintln(c.out, "# skipped in cluster mode: see scripts/cluster.sh recovery for the multi-process kill")
		return
	}
	dir, err := os.MkdirTemp("", "megaphone-recovery-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir)

	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant:  keycount.HashCount,
			LogBins:  8,
			Domain:   1 << 20,
			Transfer: c.transfer,
			Preload:  true,
		},
		Workers:    c.workers,
		Rate:       200_000,
		Duration:   c.dur(8 * time.Second),
		Strategy:   plan.AllAtOnce,
		MigrateAt:  c.dur(4 * time.Second),
		MigrateTwo: false,
	}

	mig := c.runKeycount(base)
	fmt.Fprintf(c.out, "%-28s %14s %12s\n", "event", "max-latency[ms]", "detail")
	for _, sp := range mig.MigrationSpans {
		fmt.Fprintf(c.out, "%-28s %14.2f %12s\n", "migration (all-at-once)", sp.MaxLatency,
			fmt.Sprintf("%.2fs", sp.Duration))
	}

	ck := base
	ck.MigrateAt = 0
	ck.CheckpointDir = filepath.Join(dir, "steady")
	ck.CheckpointEvery = c.dur(2 * time.Second)
	res := c.runKeycount(ck)
	for _, st := range res.Checkpoints {
		at := float64(st.Epoch) * time.Millisecond.Seconds()
		stall := res.Timeline.MaxOver(at, at+0.5)
		fmt.Fprintf(c.out, "%-28s %14.2f %12s\n", fmt.Sprintf("checkpoint @%.1fs", at), stall,
			fmt.Sprintf("%d bins, %.1f MiB, write %.0fms", st.Bins, float64(st.Bytes)/(1<<20), st.Write*1e3))
	}

	// Crash simulation: run phase 1 for 60% of the duration (checkpointing),
	// abandon its tail state, and recover a fresh execution from disk.
	crash := ck
	crash.CheckpointDir = filepath.Join(dir, "crash")
	crash.Duration = base.Duration * 3 / 5
	c.runKeycount(crash)

	rec := ck
	rec.CheckpointDir = crash.CheckpointDir
	rec.Duration = base.Duration // original total: the recovered run finishes the schedule
	rec.Recover = true
	start := time.Now()
	recRes := c.runKeycount(rec)
	// A recovered run's timeline starts at its own wall clock: the restore
	// epoch completes at ~0s, so the post-resume catch-up spike lives in
	// the first second of the timeline, not at the epoch's absolute time.
	fmt.Fprintf(c.out, "%-28s %14.2f %12s\n", "recovery catch-up", recRes.Timeline.MaxOver(0, 1.0),
		fmt.Sprintf("restore %.0fms, resumed at epoch %d, total %.2fs",
			recRes.RestoreSeconds*1e3, recRes.RestoreEpoch, time.Since(start).Seconds()))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// phaseP99 returns the peak p99 over the window [from, to) and the median
// p99 of its last quarter (where the controller should have settled).
// Timeline windows in which no epoch completed report p99=0 — those are
// frontier stalls, not zero latency, so they are excluded from the median;
// if the whole tail is stalled the phase never settled and the peak is
// reported instead.
func phaseP99(res harness.Result, from, to float64) (peak, settled float64) {
	var tail []float64
	for _, s := range res.Timeline.Samples() {
		if s.At < from || s.At >= to {
			continue
		}
		if s.P99 > peak {
			peak = s.P99
		}
		if s.At >= to-(to-from)/4 && s.P99 > 0 {
			tail = append(tail, s.P99)
		}
	}
	sort.Float64s(tail)
	if len(tail) > 0 {
		settled = tail[len(tail)/2]
	} else {
		settled = peak
	}
	return peak, settled
}
