// Command megalint is the project's multichecker: it runs the internal/lint
// analyzer suite — the static proofs of the runtime's concurrency and
// hot-path invariants — over the module's packages and exits non-zero on
// any finding. It is part of scripts/lint.sh alongside gofmt and go vet.
//
// Usage:
//
//	megalint [-only name[,name]] [-list] [packages]
//
// Packages default to ./... resolved from the current directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"megaphone/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("megalint", flag.ContinueOnError)
	fs.SetOutput(out)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(out, "megalint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "megalint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, analyzers) {
			findings++
			if d.Pos.IsValid() {
				fmt.Fprintf(out, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			} else {
				fmt.Fprintf(out, "[%s] %s\n", d.Analyzer, d.Message)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(out, "megalint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
