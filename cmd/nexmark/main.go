// Command nexmark runs one NEXMark query open-loop, optionally migrating
// its state mid-run, and prints the latency timeline (the rows behind
// Figures 5-12 of the Megaphone paper).
//
// Example:
//
//	nexmark -query q4 -impl megaphone -workers 4 -rate 200000 \
//	        -duration 20s -migrate-at 8s -strategy batched -bins 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

func main() {
	var (
		query     = flag.String("query", "q3", "query to run (q1..q8)")
		impl      = flag.String("impl", "megaphone", "implementation: native or megaphone")
		workers   = flag.Int("workers", 4, "number of workers")
		rate      = flag.Int("rate", 100000, "events per second")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		bins      = flag.Int("bins", 8, "log2 bin count")
		strategy  = flag.String("strategy", "batched", "migration strategy: all-at-once, fluid, batched, optimized")
		batch     = flag.Int("batch", 16, "bins per step for batched/optimized")
		migrateAt = flag.Duration("migrate-at", 4*time.Second, "when to start the first migration (0 disables)")
		window    = flag.Uint64("window", 60, "window epochs for q5/q7/q8 (time dilation)")
		transfer  = flag.String("transfer", "gob",
			"migration codec: "+strings.Join(core.CodecNames(), ", "))
	)
	flag.Parse()

	st, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	codec, err := core.CodecByName(*transfer)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	im := nexmark.Megaphone
	if *impl == "native" {
		im = nexmark.Native
	}

	cfg := nexmark.RunConfig{
		Query: *query,
		Params: nexmark.Params{
			Impl:         im,
			LogBins:      *bins,
			Transfer:     codec,
			WindowEpochs: nexmark.Time(*window),
		},
		Workers:  *workers,
		Rate:     *rate,
		Duration: *duration,
		Strategy: st,
		Batch:    *batch,
	}
	if im == nexmark.Megaphone {
		cfg.MigrateAt = *migrateAt
	}

	fmt.Printf("# nexmark %s (%s), %d workers, %d ev/s, %v, strategy=%v\n",
		*query, im, *workers, *rate, *duration, st)
	res := nexmark.Run(cfg)
	res.Timeline.Fprint(os.Stdout)
	for i, sp := range res.MigrationSpans {
		fmt.Printf("# migration %d: start=%.2fs end=%.2fs duration=%.2fs max-latency=%.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
	fmt.Printf("# records=%d epochs=%d overall: %s\n", res.Records, res.Epochs, res.Hist.Summary())
}

func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "all-at-once":
		return plan.AllAtOnce, nil
	case "fluid":
		return plan.Fluid, nil
	case "batched":
		return plan.Batched, nil
	case "optimized":
		return plan.Optimized, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
