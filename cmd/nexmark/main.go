// Command nexmark runs one NEXMark query open-loop, optionally migrating
// its state mid-run, and prints the latency timeline (the rows behind
// Figures 5-12 of the Megaphone paper).
//
// Example:
//
//	nexmark -query q4 -impl megaphone -workers 4 -rate 200000 \
//	        -duration 20s -migrate-at 8s -strategy batched -bins 8
//
// With -auto load-balance the migrations come from a metering
// AutoController instead of the scripted schedule; combine with -hot-ratio
// and -hot-shift-every to inject a moving auction hotspot for it to chase.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nexmark", flag.ContinueOnError)
	var (
		query     = fs.String("query", "q3", "query to run (q1..q8)")
		impl      = fs.String("impl", "megaphone", "implementation: native or megaphone")
		workers   = fs.Int("workers", 4, "number of workers")
		rate      = fs.Int("rate", 100000, "events per second")
		duration  = fs.Duration("duration", 10*time.Second, "run length")
		bins      = fs.Int("bins", 8, "log2 bin count")
		strategy  = fs.String("strategy", "batched", "migration strategy: all-at-once, fluid, batched, optimized")
		batch     = fs.Int("batch", 16, "bins per step for batched/optimized")
		migrateAt = fs.Duration("migrate-at", 4*time.Second, "when to start the first migration (0 disables)")
		window    = fs.Uint64("window", 60, "window epochs for q5/q7/q8 (time dilation)")
		hotRatio  = fs.Uint64("hot-ratio", 0, "1/N of bids hit the hot auction (0 disables skew)")
		hotShift  = fs.Uint64("hot-shift-every", 0, "epochs between hot-auction jumps (0 pins it to the newest)")
		auto      = fs.String("auto", "", "auto-controller policy (load-balance or static); replaces -migrate-at plans")
		hyst      = fs.Float64("hysteresis", 0.25, "auto-controller rebalance trigger above mean load")
		cost      = fs.Bool("cost", true, "with -auto, gate migrations on the cost model (decline unprofitable plans)")
		transfer  = fs.String("transfer", "gob",
			"migration codec: "+strings.Join(core.CodecNames(), ", "))
		hosts = fs.String("hosts", "", "comma-separated host:port list, one per process; enables the multi-process runtime (every process runs -workers workers)")
		proc  = fs.Int("process", 0, "this process's index into -hosts")
		conns = fs.Int("conns", 2, "with -hosts: connections per peer pair (traffic stripes by sending worker)")
		dump  = fs.String("dump", "", "write one line per output record to this file (for cross-run output-equivalence checks)")

		ckptDir   = fs.String("checkpoint-dir", "", "enable epoch-aligned checkpoints into this directory")
		ckptEvery = fs.Duration("checkpoint-every", time.Second, "checkpoint cadence (with -checkpoint-dir)")
		recov     = fs.Bool("recover", false, "resume from the newest complete checkpoint in -checkpoint-dir")

		membership = fs.Bool("membership", false, "not supported for nexmark (see cmd/keycount)")
		absent     = fs.String("absent", "", "not supported for nexmark (see cmd/keycount)")
		leaveAt    = fs.Int64("leave-at", 0, "not supported for nexmark (see cmd/keycount)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *membership || *absent != "" || *leaveAt != 0 {
		// Reject at parse time, before the mesh is joined: a cluster whose
		// processes disagree on this would otherwise hang in the handshake.
		return fmt.Errorf("nexmark: dynamic membership is keycount-only for now — the windowed operators (q5/q7/q8) keep unboundedly many in-flight window capabilities and have no purge hooks, so the membership barrier cannot bound or rebuild their progress holds; use cmd/keycount -membership")
	}

	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	codec, err := core.CodecByName(*transfer)
	if err != nil {
		return err
	}
	im := nexmark.Megaphone
	if *impl == "native" {
		im = nexmark.Native
	}

	cfg := nexmark.RunConfig{
		Query: *query,
		Params: nexmark.Params{
			Impl:         im,
			LogBins:      *bins,
			Transfer:     codec,
			WindowEpochs: nexmark.Time(*window),
		},
		Gen: nexmark.GenConfig{
			HotRatio:      *hotRatio,
			HotShiftEvery: nexmark.Time(*hotShift),
		},
		Workers:  *workers,
		Rate:     *rate,
		Duration: *duration,
		Strategy: st,
		Batch:    *batch,
	}
	if *auto != "" {
		pol, err := plan.PolicyByName(*auto, *hyst)
		if err != nil {
			return err
		}
		cfg.Auto = &plan.AutoOptions{Policy: pol, Strategy: st, Batch: *batch}
		if *cost {
			cfg.Auto.Cost = plan.DefaultCostModel()
		}
	}
	if im == nexmark.Megaphone {
		cfg.MigrateAt = *migrateAt
	} else if cfg.Auto != nil {
		// Native queries have no megaphone operators to meter or migrate.
		return fmt.Errorf("-auto requires -impl megaphone")
	}
	if *hosts != "" {
		cfg.Cluster = &dataflow.ClusterSpec{Hosts: strings.Split(*hosts, ","), Process: *proc, Conns: *conns}
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.Recover = *recov
	var finishDump func() error
	if *dump != "" {
		write, finish, err := harness.LineSink(*dump)
		if err != nil {
			return err
		}
		// One "<epoch> <record>" line per output record. Line-granular
		// interleaving across workers is fine: each (epoch, key) of a
		// running aggregate is produced by exactly one worker's batch, so
		// "the last line per (epoch, key)" — the deterministic unit of
		// cross-run comparison (see scripts/cluster.sh) — is preserved.
		cfg.Params.Sink = func(t nexmark.Time, lines []string) {
			for _, line := range lines {
				write(fmt.Sprintf("%d %s", uint64(t), line))
			}
		}
		finishDump = finish
	}

	fmt.Fprintf(out, "# nexmark %s (%s), %d workers, %d ev/s, %v, strategy=%v\n",
		*query, im, *workers, *rate, *duration, st)
	res, err := nexmark.Run(cfg)
	if err != nil {
		return err
	}
	if finishDump != nil {
		if err := finishDump(); err != nil {
			return err
		}
	}
	res.Timeline.Fprint(out)
	for i, sp := range res.MigrationSpans {
		fmt.Fprintf(out, "# migration %d: start=%.2fs end=%.2fs duration=%.2fs max-latency=%.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
	res.FprintAdaptive(out)
	if res.RestoreEpoch > 0 {
		fmt.Fprintf(out, "# recovered from checkpoint epoch %d (load %.3fs)\n", res.RestoreEpoch, res.RestoreSeconds)
	}
	for _, ck := range res.Checkpoints {
		fmt.Fprintf(out, "# checkpoint epoch=%d bins=%d bytes=%d write=%.1fms\n",
			ck.Epoch, ck.Bins, ck.Bytes, ck.Write*1e3)
	}
	fmt.Fprintf(out, "# records=%d epochs=%d overall: %s\n", res.Records, res.Epochs, res.Hist.Summary())
	return nil
}

func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "all-at-once":
		return plan.AllAtOnce, nil
	case "fluid":
		return plan.Fluid, nil
	case "batched":
		return plan.Batched, nil
	case "optimized":
		return plan.Optimized, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
