package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunTiny drives one stateless and one stateful query end to end at a
// 50ms duration.
func TestRunTiny(t *testing.T) {
	for _, q := range []string{"q1", "q4"} {
		var out strings.Builder
		err := run([]string{
			"-query", q, "-duration", "50ms", "-rate", "2000",
			"-workers", "2", "-bins", "4", "-migrate-at", "10ms",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, want := range []string{"# nexmark " + q, "time[s]", "# records="} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("%s output missing %q:\n%s", q, want, out.String())
			}
		}
	}
}

// TestRunTinyAutoSkew covers the auto-controller path with a shifting hot
// auction.
func TestRunTinyAutoSkew(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-query", "q4", "-duration", "50ms", "-rate", "2000",
		"-workers", "2", "-bins", "4", "-migrate-at", "0",
		"-auto", "load-balance", "-hot-ratio", "2", "-hot-shift-every", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# records=") {
		t.Errorf("missing summary:\n%s", out.String())
	}
}

// TestRunFlagErrors: invalid flags and enums error out.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"-strategy", "nope"},
		{"-transfer", "nope"},
		{"-auto", "nope"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
