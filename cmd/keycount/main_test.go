package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestRunTiny drives the whole binary end to end at a 50ms duration: flag
// parsing, dataflow construction, scripted migration, and report printing.
func TestRunTiny(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-duration", "50ms", "-rate", "2000", "-workers", "2",
		"-bins", "4", "-domain", "1024", "-migrate-at", "10ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# keycount", "time[s]", "# records="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunTinyAuto covers the auto-controller and workload paths.
func TestRunTinyAuto(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-duration", "50ms", "-rate", "2000", "-workers", "2",
		"-bins", "4", "-domain", "1024", "-migrate-at", "0",
		"-auto", "load-balance", "-workload", "zipf:1.3",
		"-variant", "key", "-service", (50 * time.Microsecond).String(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# applied records per worker:") {
		t.Errorf("auto mode did not report worker loads:\n%s", out.String())
	}
}

// TestRunTinyCheckpointRecover drives the checkpoint flags end to end: a
// short checkpointing run, then a -recover run resuming from its newest
// epoch.
func TestRunTinyCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	common := []string{
		"-duration", "120ms", "-rate", "2000", "-workers", "2",
		"-bins", "4", "-domain", "1024", "-migrate-at", "0",
		"-checkpoint-dir", dir, "-checkpoint-every", "40ms",
	}
	var out strings.Builder
	if err := run(common, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# checkpoint epoch=") {
		t.Fatalf("checkpointing run reported no checkpoints:\n%s", out.String())
	}
	out.Reset()
	if err := run(append(common, "-recover"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# recovered from checkpoint epoch") {
		t.Fatalf("recovery run did not report restoring:\n%s", out.String())
	}
}

// TestRunFlagErrors: bad flags and bad enum values fail with errors rather
// than running.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"-variant", "nope"},
		{"-strategy", "nope"},
		{"-workload", "nope"},
		{"-auto", "nope"},
		{"-transfer", "nope"},
		{"-recover"}, // -recover without -checkpoint-dir
		{"-checkpoint-dir", "/tmp/x", "-variant", "native-hash"},
		{"-checkpoint-dir", "/tmp/x", "-transfer", "direct"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
