// Command keycount runs the counting micro-benchmark of Sections 5.2-5.3:
// a stream of identifiers whose per-key counts are the operator state, with
// configurable bins, domain, rate, key distribution and migration strategy.
// It prints the latency timeline, overall percentiles and (optionally) CCDF
// rows and the memory series.
//
// Migrations come either from the scripted schedule (-migrate-at) or, with
// -auto, from a policy-driven AutoController that meters per-bin load and
// issues plans itself (try -workload zipf or -workload hotshift:0.85,16,2000
// to give it something to react to).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("keycount", flag.ContinueOnError)
	var (
		variant   = fs.String("variant", "hash", "hash, key, native-hash or native-key")
		workers   = fs.Int("workers", 4, "number of workers")
		rate      = fs.Int("rate", 200000, "records per second")
		duration  = fs.Duration("duration", 10*time.Second, "run length")
		bins      = fs.Int("bins", 8, "log2 bin count")
		domain    = fs.Int64("domain", 1<<20, "number of distinct keys (power of two)")
		strategy  = fs.String("strategy", "batched", "all-at-once, fluid, batched, optimized")
		batch     = fs.Int("batch", 16, "bins per step")
		migrateAt = fs.Duration("migrate-at", 4*time.Second, "first migration time (0 disables)")
		workload  = fs.String("workload", "uniform", "key distribution: uniform, zipf[:S], hotshift[:FRAC,KEYS,EVERY[,STRIDE]]")
		auto      = fs.String("auto", "", "auto-controller policy (load-balance or static); replaces -migrate-at plans")
		hyst      = fs.Float64("hysteresis", 0.25, "auto-controller rebalance trigger above mean load")
		cost      = fs.Bool("cost", true, "with -auto, gate migrations on the cost model (decline unprofitable plans)")
		service   = fs.Duration("service", 0, "simulated per-record service time (0 disables)")
		ccdf      = fs.Bool("ccdf", false, "print per-record latency CCDF")
		memory    = fs.Bool("memory", false, "print heap series")
		preload   = fs.Bool("preload", true, "pre-create per-bin state")
		transfer  = fs.String("transfer", "gob",
			"migration codec: "+strings.Join(core.CodecNames(), ", "))
		hosts = fs.String("hosts", "", "comma-separated host:port list, one per process; enables the multi-process runtime (every process runs -workers workers)")
		proc  = fs.Int("process", 0, "this process's index into -hosts")
		conns = fs.Int("conns", 2, "with -hosts: connections per peer pair (traffic stripes by sending worker)")
		dump  = fs.String("dump", "", "write one line per output record to this file (for cross-run output-equivalence checks)")

		ckptDir   = fs.String("checkpoint-dir", "", "enable epoch-aligned checkpoints into this directory")
		ckptEvery = fs.Duration("checkpoint-every", time.Second, "checkpoint cadence (with -checkpoint-dir)")
		recov     = fs.Bool("recover", false, "resume from the newest complete checkpoint in -checkpoint-dir")

		membership = fs.Bool("membership", false, "enable dynamic membership (join, drain-leave, crash-leave); requires -hosts and -checkpoint-dir")
		absent     = fs.String("absent", "", "comma-separated roster indexes that start absent (with -membership); a process whose own index is listed is a late joiner")
		leaveAt    = fs.Int64("leave-at", 0, "epoch at which this process requests drain-leave (with -membership)")
		memSlack   = fs.Int("membership-slack", 1, "multiplier on the membership suspicion/death/margin windows (with -membership); raise it on slow or loaded machines")

		scaleOut     = fs.Uint64("scale-out-above", 0, "with -membership -auto: mean records per live worker per sampling window above which a registered standby is admitted (0 disables scale-out)")
		scaleIn      = fs.Uint64("scale-in-below", 0, "with -membership -auto: mean records per live worker per sampling window below which the coldest member is drain-left (0 disables scale-in)")
		scaleSustain = fs.Int("scale-sustain", 3, "with -membership -auto: consecutive windows a scale signal must persist before the leader acts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := core.CodecByName(*transfer)
	if err != nil {
		return err
	}

	var v keycount.Variant
	switch *variant {
	case "hash":
		v = keycount.HashCount
	case "key":
		v = keycount.KeyCount
	case "native-hash":
		v = keycount.NativeHash
	case "native-key":
		v = keycount.NativeKey
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	wl, err := harness.ParseWorkload(*workload)
	if err != nil {
		return err
	}
	if v == keycount.NativeHash || v == keycount.NativeKey {
		// The native variants have no megaphone operator behind them: no
		// meter for -auto to read and no fold for -service to throttle.
		if *auto != "" {
			return fmt.Errorf("-auto requires a migrateable variant (hash or key), not %v", v)
		}
		if *service != 0 {
			return fmt.Errorf("-service requires a migrateable variant (hash or key), not %v", v)
		}
	}

	cfg := keycount.RunConfig{
		Params: keycount.Params{
			Variant:      v,
			LogBins:      *bins,
			Domain:       *domain,
			Transfer:     codec,
			Preload:      *preload,
			ServiceNanos: service.Nanoseconds(),
		},
		Workers:    *workers,
		Rate:       *rate,
		Duration:   *duration,
		Strategy:   st,
		Batch:      *batch,
		MigrateAt:  *migrateAt,
		MigrateTwo: true,
		Memory:     *memory,
		Workload:   wl,
	}
	if *auto != "" {
		pol, err := plan.PolicyByName(*auto, *hyst)
		if err != nil {
			return err
		}
		cfg.Auto = &plan.AutoOptions{Policy: pol, Strategy: st, Batch: *batch}
		if *cost {
			cfg.Auto.Cost = plan.DefaultCostModel()
		}
	}
	if *hosts != "" {
		cfg.Cluster = &dataflow.ClusterSpec{Hosts: strings.Split(*hosts, ","), Process: *proc, Conns: *conns}
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.Recover = *recov
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *membership {
		cfg.Membership = true
		cfg.LeaveAt = *leaveAt
		cfg.MembershipSlack = *memSlack
		cfg.ScaleOutAbove = *scaleOut
		cfg.ScaleInBelow = *scaleIn
		cfg.ScaleSustain = *scaleSustain
		if !explicit["migrate-at"] {
			// The benchmark's default migration schedule is for plain runs;
			// in membership mode a scripted migration runs only when asked
			// for (it rides the membership controller's schedule broadcast).
			cfg.MigrateAt = 0
			cfg.MigrateTwo = false
		}
		if cfg.Auto != nil && *scaleOut == 0 && *scaleIn == 0 {
			return fmt.Errorf("-auto with -membership drives join/leave from load thresholds; give -scale-out-above and/or -scale-in-below")
		}
		if cfg.Auto == nil && (*scaleOut != 0 || *scaleIn != 0) {
			return fmt.Errorf("-scale-out-above/-scale-in-below read the autoscaler's load windows; add -auto")
		}
		if cfg.Cluster == nil {
			return fmt.Errorf("-membership requires -hosts")
		}
		cfg.Cluster.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		if *absent != "" {
			abs := make([]bool, len(cfg.Cluster.Hosts))
			for _, s := range strings.Split(*absent, ",") {
				i, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || i < 0 || i >= len(abs) {
					return fmt.Errorf("-absent: bad roster index %q", s)
				}
				abs[i] = true
			}
			cfg.Cluster.Absent = abs
		}
	} else if *absent != "" || *leaveAt != 0 {
		return fmt.Errorf("-absent and -leave-at require -membership")
	} else if *scaleOut != 0 || *scaleIn != 0 || explicit["scale-sustain"] {
		return fmt.Errorf("-scale-out-above, -scale-in-below and -scale-sustain require -membership with -auto")
	}
	var finishDump func() error
	if *dump != "" {
		sink, finish, err := harness.LineSink(*dump)
		if err != nil {
			return err
		}
		cfg.Sink = sink
		finishDump = finish
	}

	res, err := keycount.Run(cfg)
	if err != nil {
		return err
	}
	if finishDump != nil {
		if err := finishDump(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "# keycount %v, %d workers, rate=%d, domain=%d, bins=2^%d, strategy=%v, workload=%v\n",
		v, *workers, *rate, *domain, *bins, st, wl)
	res.Timeline.Fprint(out)
	for i, sp := range res.MigrationSpans {
		fmt.Fprintf(out, "# migration %d: start=%.2fs end=%.2fs duration=%.2fs max-latency=%.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
	res.FprintAdaptive(out)
	if res.RestoreEpoch > 0 {
		fmt.Fprintf(out, "# recovered from checkpoint epoch %d (load %.3fs)\n", res.RestoreEpoch, res.RestoreSeconds)
	}
	for _, ck := range res.Checkpoints {
		fmt.Fprintf(out, "# checkpoint epoch=%d bins=%d bytes=%d write=%.1fms\n",
			ck.Epoch, ck.Bins, ck.Bytes, ck.Write*1e3)
	}
	fmt.Fprintf(out, "# records=%d overall: %s\n", res.Records, res.Hist.Summary())
	if res.Elapsed > 0 {
		// Achieved throughput: when the system keeps up this is ~rate; when
		// it falls behind, records/elapsed is the sustained capacity
		// (scripts/bench.sh reads this line for the cluster benchmark).
		fmt.Fprintf(out, "# throughput records=%d elapsed=%.3fs records_s=%.0f\n",
			res.Records, res.Elapsed, float64(res.Records)/res.Elapsed)
	}
	if *ccdf {
		fmt.Fprintln(out, "# CCDF: latency[ms] fraction-greater")
		for _, p := range res.Hist.CCDF() {
			fmt.Fprintf(out, "%12.3f %12.6g\n", float64(p.Value)/1e6, p.Fraction)
		}
	}
	if *memory {
		res.Memory.Fprint(out)
	}
	return nil
}

func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "all-at-once":
		return plan.AllAtOnce, nil
	case "fluid":
		return plan.Fluid, nil
	case "batched":
		return plan.Batched, nil
	case "optimized":
		return plan.Optimized, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
