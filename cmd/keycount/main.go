// Command keycount runs the counting micro-benchmark of Sections 5.2-5.3:
// a uniform stream of identifiers whose per-key counts are the operator
// state, with configurable bins, domain, rate and migration strategy. It
// prints the latency timeline, overall percentiles and (optionally) CCDF
// rows and the memory series.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

func main() {
	var (
		variant   = flag.String("variant", "hash", "hash, key, native-hash or native-key")
		workers   = flag.Int("workers", 4, "number of workers")
		rate      = flag.Int("rate", 200000, "records per second")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		bins      = flag.Int("bins", 8, "log2 bin count")
		domain    = flag.Int64("domain", 1<<20, "number of distinct keys (power of two)")
		strategy  = flag.String("strategy", "batched", "all-at-once, fluid, batched, optimized")
		batch     = flag.Int("batch", 16, "bins per step")
		migrateAt = flag.Duration("migrate-at", 4*time.Second, "first migration time (0 disables)")
		ccdf      = flag.Bool("ccdf", false, "print per-record latency CCDF")
		memory    = flag.Bool("memory", false, "print heap series")
		preload   = flag.Bool("preload", true, "pre-create per-bin state")
		transfer  = flag.String("transfer", "gob",
			"migration codec: "+strings.Join(core.CodecNames(), ", "))
	)
	flag.Parse()
	codec, err := core.CodecByName(*transfer)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var v keycount.Variant
	switch *variant {
	case "hash":
		v = keycount.HashCount
	case "key":
		v = keycount.KeyCount
	case "native-hash":
		v = keycount.NativeHash
	case "native-key":
		v = keycount.NativeKey
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := keycount.Run(keycount.RunConfig{
		Params: keycount.Params{
			Variant:  v,
			LogBins:  *bins,
			Domain:   *domain,
			Transfer: codec,
			Preload:  *preload,
		},
		Workers:    *workers,
		Rate:       *rate,
		Duration:   *duration,
		Strategy:   st,
		Batch:      *batch,
		MigrateAt:  *migrateAt,
		MigrateTwo: true,
		Memory:     *memory,
	})

	fmt.Printf("# keycount %v, %d workers, rate=%d, domain=%d, bins=2^%d, strategy=%v\n",
		v, *workers, *rate, *domain, *bins, st)
	res.Timeline.Fprint(os.Stdout)
	for i, sp := range res.MigrationSpans {
		fmt.Printf("# migration %d: start=%.2fs end=%.2fs duration=%.2fs max-latency=%.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
	fmt.Printf("# records=%d overall: %s\n", res.Records, res.Hist.Summary())
	if *ccdf {
		fmt.Println("# CCDF: latency[ms] fraction-greater")
		for _, p := range res.Hist.CCDF() {
			fmt.Printf("%12.3f %12.6g\n", float64(p.Value)/1e6, p.Fraction)
		}
	}
	if *memory {
		res.Memory.Fprint(os.Stdout)
	}
}

func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "all-at-once":
		return plan.AllAtOnce, nil
	case "fluid":
		return plan.Fluid, nil
	case "batched":
		return plan.Batched, nil
	case "optimized":
		return plan.Optimized, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
