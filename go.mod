module megaphone

go 1.24
