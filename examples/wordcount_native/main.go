// Native word-count: the same computation as examples/quickstart but on the
// plain timely-style state machine, for an API comparison. The state lives
// in a per-worker map the system knows nothing about — there is no control
// input and no way to migrate the counts without stopping the dataflow.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

func main() {
	const workers = 2

	var mu sync.Mutex
	counts := map[string]int{}

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var textIns []*dataflow.InputHandle[operators.KV[string, int]]
	exec.Build(func(w *dataflow.Worker) {
		in, text := dataflow.NewInput[operators.KV[string, int]](w, "text")
		textIns = append(textIns, in)
		countStream := operators.StateMachine(w, "wordcount", text,
			func(word string) uint64 { return hash(word) },
			func(word string, diff int, count *int, emit func(operators.KV[string, int])) {
				*count += diff
				emit(operators.KV[string, int]{Key: word, Val: *count})
			})
		operators.Sink(w, "sink", countStream, func(_ dataflow.Time, out []operators.KV[string, int]) {
			mu.Lock()
			for _, kv := range out {
				counts[kv.Key] = kv.Val
			}
			mu.Unlock()
		})
	})
	exec.Start()

	words := strings.Fields("the quick brown fox jumps over the lazy dog the fox the dog")
	for epoch := dataflow.Time(1); epoch <= 60; epoch++ {
		word := words[int(epoch)%len(words)]
		textIns[int(epoch)%workers].SendAt(epoch, operators.KV[string, int]{Key: word, Val: 1})
		for _, h := range textIns {
			h.AdvanceTo(epoch + 1)
		}
	}
	for _, h := range textIns {
		h.Close()
	}
	exec.Wait()

	var list []string
	for w := range counts {
		list = append(list, w)
	}
	sort.Strings(list)
	fmt.Println("final counts:")
	for _, w := range list {
		fmt.Printf("  %-6s %3d\n", w, counts[w])
	}
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return core.Mix64(h)
}
