// Quickstart: the paper's running example (Figure 4 / Listing 2) — a
// migrating word-count. Words stream in while the per-word counts live in
// binned state; halfway through, a batched migration moves half of worker
// 0's bins to worker 1 without stopping the stream.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

func main() {
	const workers = 2

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var textIns []*dataflow.InputHandle[core.KV[string, int]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe

	var mu sync.Mutex
	counts := map[string]int{}
	where := map[string]int{} // word -> worker that last updated it

	exec.Build(func(w *dataflow.Worker) {
		// Introduce configuration and input streams (cf. Listing 2).
		ctl, conf := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, text := dataflow.NewInput[core.KV[string, int]](w, "text")
		textIns = append(textIns, in)

		// Update per-word accumulated counts on migrateable state.
		idx := w.Index()
		countStream := core.StateMachine(w,
			core.Config{Name: "wordcount", LogBins: 4},
			conf, text,
			func(word string) uint64 { return hash(word) },
			func(word string, diff int, count *int, emit func(core.KV[string, int])) {
				*count += diff
				emit(core.KV[string, int]{Key: word, Val: *count})
			}, nil)

		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, countStream, dataflow.Pipeline[core.KV[string, int]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(_ core.Time, out []core.KV[string, int]) {
				mu.Lock()
				for _, kv := range out {
					counts[kv.Key] = kv.Val
					where[kv.Key] = idx
				}
				mu.Unlock()
			})
		})
		p := dataflow.NewProbe(w, countStream)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	ctl := plan.NewController(ctlIns, probe)
	text := "the quick brown fox jumps over the lazy dog the fox the dog"
	words := strings.Fields(text)

	// Stream the text, one epoch per word round; at epoch 30 migrate every
	// bin to worker 1 in batches of 4, while the stream keeps flowing.
	migration := plan.Build(plan.Batched,
		plan.Initial(16, workers),
		plan.Rebalance(16, []int{1}),
		4)
	epoch := core.Time(1)
	for ; epoch <= 60; epoch++ {
		word := words[int(epoch)%len(words)]
		textIns[int(epoch)%workers].SendAt(epoch, core.KV[string, int]{Key: word, Val: 1})
		if epoch == 30 {
			fmt.Println("-> starting batched migration of all bins to worker 1")
			ctl.Start(migration)
		}
		ctl.Tick(epoch)
		for _, h := range textIns {
			h.AdvanceTo(epoch + 1)
		}
	}
	// Keep ticking until the plan finishes: the controller issues steps as
	// completions are observed, so it needs epochs to act in.
	for ; !ctl.Idle(); epoch++ {
		ctl.Tick(epoch)
		for _, h := range textIns {
			h.AdvanceTo(epoch + 1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	fmt.Println("-> migration complete; streaming more words")
	for end := epoch + 30; epoch < end; epoch++ {
		word := words[int(epoch)%len(words)]
		textIns[int(epoch)%workers].SendAt(epoch, core.KV[string, int]{Key: word, Val: 1})
		ctl.Tick(epoch)
		for _, h := range textIns {
			h.AdvanceTo(epoch + 1)
		}
	}
	ctl.Close()
	for _, h := range textIns {
		h.Close()
	}
	exec.Wait()

	var list []string
	for w := range counts {
		list = append(list, w)
	}
	sort.Strings(list)
	fmt.Println("final counts (word: count @ last-updating worker):")
	for _, w := range list {
		fmt.Printf("  %-6s %3d @ worker %d\n", w, counts[w], where[w])
	}
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return core.Mix64(h)
}
