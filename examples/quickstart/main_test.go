package main

import (
	"testing"
	"time"
)

// TestQuickstartRuns executes the whole example — a migrating word-count
// with a mid-stream batched migration — and fails if it doesn't finish.
func TestQuickstartRuns(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("quickstart example did not finish")
	}
}
