// NEXMark example: run query 3 (the incremental join recommending local
// auctions) open-loop on four workers, rescaling its state mid-run with a
// fluid migration, and report the latency timeline around the migration.
package main

import (
	"fmt"
	"os"
	"time"

	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

func main() {
	res, err := nexmark.Run(nexmark.RunConfig{
		Query:     "q3",
		Params:    nexmark.Params{Impl: nexmark.Megaphone, LogBins: 6},
		Workers:   4,
		Rate:      100_000,
		Duration:  6 * time.Second,
		Strategy:  plan.Fluid,
		MigrateAt: 2 * time.Second,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("NEXMark Q3 with a fluid rescaling migration at 2s and back at 4s")
	res.Timeline.Fprint(os.Stdout)
	for i, sp := range res.MigrationSpans {
		fmt.Printf("migration %d: %.2fs..%.2fs (duration %.2fs), max latency %.2fms\n",
			i+1, sp.Start, sp.End, sp.Duration, sp.MaxLatency)
	}
	fmt.Printf("overall: %s over %d events\n", res.Hist.Summary(), res.Records)
}
