package main

import (
	"testing"
	"time"
)

// TestControllerExampleRuns executes the whole example — a skewed stream
// whose load-watching controller rebalances mid-run — and fails if it
// doesn't finish.
func TestControllerExampleRuns(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("controller example did not finish")
	}
}
