// Controller example: drive migrations from measurements, the way an
// external controller such as DS2 or Dhalion would (Section 4.4). The
// workload is skewed — most records hash to a few hot bins that all start on
// worker 0 — and a load-watching controller observes per-worker application
// counts, computes a balanced assignment, and feeds the moves into the
// control stream as ordinary data.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

const (
	workers = 4
	logBins = 5
	bins    = 1 << logBins
)

func main() {
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe

	// Per-worker application counters: the controller's measurements.
	var mu sync.Mutex
	applied := make([]int, workers)
	perBin := make([]int, bins)

	handle := &core.Handle[uint64, map[uint64]uint64, uint64]{}
	handle.OnApply = func(_ core.Time, bin, worker int) {
		mu.Lock()
		applied[worker]++
		perBin[bin]++
		mu.Unlock()
	}

	exec.Build(func(w *dataflow.Worker) {
		ctl, conf := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := core.Unary(w, core.Config{Name: "skewed-count", LogBins: logBins},
			conf, data,
			// Identity hash: key k lands in bin k, so a skewed key
			// distribution produces skewed bins.
			func(k uint64) uint64 { return k << (64 - logBins) },
			func() *map[uint64]uint64 { m := make(map[uint64]uint64); return &m },
			func(t core.Time, k uint64, s *map[uint64]uint64, _ *core.Notificator[uint64, map[uint64]uint64, uint64], emit func(uint64)) {
				(*s)[k]++
				emit((*s)[k])
			}, handle)
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()
	ctl := plan.NewController(ctlIns, probe)

	// Assignment the controller believes is current.
	current := plan.Initial(bins, workers)

	report := func(when string) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("%-18s applications per worker: %v\n", when, applied)
		for i := range applied {
			applied[i] = 0
		}
	}

	rebalanced := false
	for epoch := core.Time(1); epoch <= 600; epoch++ {
		// Skew: 80% of records hit eight hot bins that the initial
		// round-robin assignment places entirely on worker 0 (bins that are
		// multiples of the worker count).
		for w := 0; w < workers; w++ {
			batch := make([]uint64, 50)
			for i := range batch {
				r := core.Mix64(uint64(epoch)*1009 + uint64(w*53+i))
				if r%5 != 0 {
					batch[i] = workers * (r % 8) // hot bins 0,4,8,...,28
				} else {
					batch[i] = r % bins
				}
			}
			dataIns[w].SendBatchAt(epoch, batch)
		}

		// The controller acts at epoch 300: it measures the per-bin load,
		// packs bins onto workers greedily by load, and emits the moves.
		if epoch == 300 && ctl.Idle() && !rebalanced {
			rebalanced = true
			report("before rebalance:")
			target := balanceByLoad(perBinSnapshot(&mu, perBin), current)
			p := plan.Build(plan.Batched, current, target, 4)
			fmt.Printf("-> controller emits %d moves in %d steps\n", p.NumMoves(), len(p.Steps))
			ctl.Start(p)
			current = target
		}
		ctl.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		time.Sleep(time.Millisecond)
	}
	ctl.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()
	report("after rebalance:")
}

func perBinSnapshot(mu *sync.Mutex, perBin []int) []int {
	mu.Lock()
	defer mu.Unlock()
	out := make([]int, len(perBin))
	copy(out, perBin)
	return out
}

// balanceByLoad assigns bins to workers with a greedy longest-processing-
// time packing of the measured per-bin loads.
func balanceByLoad(load []int, current plan.Assignment) plan.Assignment {
	type binLoad struct{ bin, load int }
	bl := make([]binLoad, len(load))
	for b, l := range load {
		bl[b] = binLoad{bin: b, load: l}
	}
	sort.Slice(bl, func(i, j int) bool { return bl[i].load > bl[j].load })
	target := make(plan.Assignment, len(load))
	sum := make([]int, workers)
	for _, x := range bl {
		best := 0
		for w := 1; w < workers; w++ {
			if sum[w] < sum[best] {
				best = w
			}
		}
		target[x.bin] = best
		sum[best] += x.load
	}
	return target
}
