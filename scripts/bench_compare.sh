#!/usr/bin/env bash
# bench_compare.sh — the CI bench regression guard: compare a fresh
# BENCH_runtime.json against the committed baseline and fail if any pinned
# benchmark regressed materially:
#
#   * records_s (sustained throughput) dropped by more than 15%, or
#   * allocs_op (allocations per operation) grew by more than 10%
#     (a zero-alloc baseline must stay zero-alloc), or
#   * a baseline benchmark disappeared from the fresh run.
#
# Benchmarks present only in the fresh run are reported as NEW and do not
# fail the guard — commit a refreshed baseline to pin them.
#
# The committed baseline is machine-dependent for throughput; on noisier
# hardware (shared CI runners) the thresholds can be widened via
# BENCH_MAX_RECORDS_DROP / BENCH_MAX_ALLOCS_GROWTH without editing this
# script. allocs_op is machine-independent and its threshold should stay
# tight everywhere.
#
# Usage: scripts/bench_compare.sh [baseline.json] [fresh.json]
set -euo pipefail
cd "$(dirname "$0")/.."
BASE=${1:-BENCH_runtime.json}
FRESH=${2:-BENCH_fresh.json}
export BENCH_MAX_RECORDS_DROP=${BENCH_MAX_RECORDS_DROP:-0.15}
export BENCH_MAX_ALLOCS_GROWTH=${BENCH_MAX_ALLOCS_GROWTH:-0.10}

python3 - "$BASE" "$FRESH" <<'EOF'
import json
import os
import sys

MAX_RECORDS_DROP = float(os.environ["BENCH_MAX_RECORDS_DROP"])
MAX_ALLOCS_GROWTH = float(os.environ["BENCH_MAX_ALLOCS_GROWTH"])

base = json.load(open(sys.argv[1]))["benchmarks"]
fresh = json.load(open(sys.argv[2]))["benchmarks"]
fail = False

for name, b in sorted(base.items()):
    f = fresh.get(name)
    if f is None:
        print(f"FAIL  {name}: present in baseline but missing from the fresh run")
        fail = True
        continue
    checks = []
    if "records_s" in b and "records_s" in f and b["records_s"] > 0:
        drop = 1 - f["records_s"] / b["records_s"]
        checks.append((f"records_s {f['records_s']:.3g} vs {b['records_s']:.3g} ({-drop:+.1%})",
                       drop > MAX_RECORDS_DROP))
    if "allocs_op" in b and "allocs_op" in f:
        if b["allocs_op"] > 0:
            growth = f["allocs_op"] / b["allocs_op"] - 1
            checks.append((f"allocs_op {f['allocs_op']:.3g} vs {b['allocs_op']:.3g} ({growth:+.1%})",
                           growth > MAX_ALLOCS_GROWTH))
        else:
            checks.append((f"allocs_op {f['allocs_op']:.3g} vs 0",
                           f["allocs_op"] > 0))
    bad = any(c[1] for c in checks)
    fail = fail or bad
    detail = ", ".join(c[0] for c in checks) or "no pinned metrics"
    print(f"{'FAIL' if bad else 'ok':5} {name}: {detail}")

for name in sorted(set(fresh) - set(base)):
    print(f"NEW   {name}: not in baseline (commit a refreshed {sys.argv[1]} to pin it)")

sys.exit(1 if fail else 0)
EOF
