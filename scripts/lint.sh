#!/usr/bin/env bash
# lint.sh — the repo's one lint entry point, run by the CI lint gate and
# locally before sending a change. Layers, in fail-fast order:
#
#   1. gofmt -l -s      formatting and simplification drift
#   2. go vet           the standard analyzer suite
#   3. staticcheck      if installed (CI installs it; optional locally)
#   4. govulncheck      if installed (optional everywhere; advisory for a
#                       dependency-free module, but catches stdlib CVEs)
#   5. megalint         the project's own invariant analyzers
#                       (internal/lint: hotalloc, envref, atomicfield,
#                       sendunderlock, pointstamp — see DESIGN.md)
#
# Tools that are not on PATH are skipped with a notice rather than failing:
# the module has no dependencies, so the two optional tools cannot be
# vendored, and a contributor without them still gets the full mandatory
# set. Everything that does run must pass.
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt -l -s"
out=$(gofmt -l -s .)
if [ -n "$out" ]; then
  echo "gofmt needed on:"
  echo "$out"
  fail=1
fi

echo "== go vet ./..."
go vet ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ./..."
  staticcheck ./... || fail=1
else
  echo "== staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck ./..."
  govulncheck ./... || fail=1
else
  echo "== govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== megalint ./..."
go run ./cmd/megalint ./... || fail=1

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: ok"
