#!/usr/bin/env bash
# cluster.sh — spawn an N-process megaphone cluster on localhost and verify
# output equivalence against the single-process run.
#
# For each workload (keycount, and NEXMark q4), the script runs:
#   1. one single-process reference with N*W workers, dumping its outputs;
#   2. N OS processes (-hosts/-process), each with W workers, dumping theirs;
# then compares the canonicalized output sets. keycount outputs form a
# deterministic multiset and are compared sorted; q4 emits running averages
# whose within-epoch order is inherently nondeterministic, so its dumps are
# reduced to the last value per (epoch, category) — the end-of-epoch
# aggregate, which frontier-ordered application makes deterministic — before
# comparison (see cluster_test.go for the same argument in Go).
#
# A third mode, `recovery`, is the kill-and-recover gauntlet: a keycount
# cluster checkpoints to disk while running, one process is SIGKILLed
# mid-stream, the survivors are reaped, and the whole cluster is restarted
# with -recover; the merged per-key final counts (max per key: counts are
# cumulative, and recovery re-emits every epoch from the checkpoint on)
# must equal the uninterrupted single-process run's.
#
# A fourth mode, `autoscale`, is the adaptive-cluster gauntlet: (a) a
# keycount cluster under -auto load-balance (the elected controller drives
# policy for everyone) must emit the same output multiset as the
# single-process -auto run — the controller's decisions differ, but
# Property 1 makes the outputs migration-invariant; (b) a 3-process
# `experiments -exp autoscale` run must settle the post-shift p99 below
# AUTOSCALE_P99MS (default 10 ms) in every phase of the load-balance run.
#
# A fifth mode, `join-leave`, is the dynamic-membership gauntlet: an
# (N+1)-slot keycount roster starts with N live processes and the last slot
# absent, under continuous load with periodic checkpoints. The absent slot
# joins mid-run, process 2 is SIGKILLed once the script observes a complete
# full-roster checkpoint on disk (the survivors declare it dead and restore
# only its bins), and process 1 drain-leaves via -leave-at. The merged
# final counts (max per key, as in recovery) must equal the uninterrupted
# single-process run's. Timing-sensitive like autoscale, so failed attempts
# retry up to MEMBERSHIP_ATTEMPTS times with per-attempt logs kept.
#
# A sixth mode, `crash-mid-migration`, crosses membership with scripted
# migrations: an all-live keycount roster runs with -migrate-at under
# periodic checkpoints, and the shell SIGKILLs a member as soon as the
# leader logs the scripted migration's schedule — inside or just past the
# decide-to-commit window, with migration moves in flight. The survivors
# must declare the death, reconcile the move log against the restore, and
# the merged final counts (max per key) must equal the uninterrupted
# single-process run's. Retries like join-leave.
#
# Usage: scripts/cluster.sh [-n procs] [-w workers-per-proc] [-d duration]
#                           [-r rate] [-o logdir]
#                           [keycount|nexmark|recovery|autoscale|join-leave|crash-mid-migration|all]
set -euo pipefail
cd "$(dirname "$0")/.."

PROCS=3
WORKERS=1
DURATION=2s
RATE=20000
LOGDIR=cluster-logs
while getopts "n:w:d:r:o:" opt; do
    case $opt in
        n) PROCS=$OPTARG ;;
        w) WORKERS=$OPTARG ;;
        d) DURATION=$OPTARG ;;
        r) RATE=$OPTARG ;;
        o) LOGDIR=$OPTARG ;;
        *) echo "usage: $0 [-n procs] [-w workers] [-d duration] [-r rate] [-o logdir] [keycount|nexmark|recovery|autoscale|join-leave|crash-mid-migration|all]" >&2; exit 2 ;;
    esac
done
shift $((OPTIND - 1))
TARGET=${1:-all}
TOTAL=$((PROCS * WORKERS))

mkdir -p "$LOGDIR"
TMP=$(mktemp -d)
# Track every spawned cluster process so a failed or cancelled run never
# leaves orphans holding ports: the EXIT trap must reap them, not just the
# tempdir. PIDS is pruned after each phase's processes are waited on.
PIDS=()
cleanup() {
    if ((${#PIDS[@]})); then
        kill -9 "${PIDS[@]}" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "building binaries..." >&2
go build -o "$TMP/keycount" ./cmd/keycount
go build -o "$TMP/nexmark" ./cmd/nexmark

# pick_ports fills HOSTS with $1 (default $PROCS) free localhost ports.
pick_ports() {
    HOSTS=$(go run ./scripts/freeports.go "${1:-$PROCS}")
}

# run_cluster BIN NAME ARGS... — run the single-process reference and the
# N-process cluster, leaving dumps in $TMP/$NAME.{single,proc.I} and logs in
# $LOGDIR.
run_cluster() {
    local bin=$1 name=$2
    shift 2
    echo "== $name: single-process reference ($TOTAL workers)" >&2
    "$TMP/$bin" -workers "$TOTAL" -dump "$TMP/$name.single" "$@" \
        > "$LOGDIR/$name.single.log" 2>&1

    pick_ports
    echo "== $name: $PROCS-process cluster ($WORKERS workers each) on $HOSTS" >&2
    local pids=()
    for ((p = 0; p < PROCS; p++)); do
        "$TMP/$bin" -workers "$WORKERS" -hosts "$HOSTS" -process "$p" \
            -dump "$TMP/$name.proc.$p" "$@" \
            > "$LOGDIR/$name.proc.$p.log" 2>&1 &
        pids+=($!)
        PIDS+=($!)
    done
    local rc=0
    for ((p = 0; p < PROCS; p++)); do
        if ! wait "${pids[$p]}"; then
            echo "process $p of $name failed; log follows:" >&2
            cat "$LOGDIR/$name.proc.$p.log" >&2
            rc=1
        fi
    done
    PIDS=()
    return $rc
}

fail=0

if [[ $TARGET == keycount || $TARGET == all ]]; then
    run_cluster keycount keycount \
        -rate "$RATE" -duration "$DURATION" -bins 4 -domain 4096 \
        -strategy batched -batch 4 -migrate-at 700ms
    sort "$TMP"/keycount.proc.* > "$TMP/keycount.cluster.sorted"
    sort "$TMP/keycount.single" > "$TMP/keycount.single.sorted"
    if cmp -s "$TMP/keycount.cluster.sorted" "$TMP/keycount.single.sorted"; then
        echo "keycount: cluster output multiset == single-process ($(wc -l < "$TMP/keycount.single.sorted") records)" | tee -a "$LOGDIR/verdict.txt"
    else
        echo "keycount: OUTPUT MISMATCH (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        diff "$TMP/keycount.single.sorted" "$TMP/keycount.cluster.sorted" | head -20 >&2 || true
        fail=1
    fi
fi

if [[ $TARGET == recovery ]]; then
    # Kill-and-recover: real binaries, real SIGKILL. Durations are fixed
    # (not -d) because the kill point, checkpoint cadence and run length
    # must stay in proportion.
    RDUR=4s
    CKPT=$TMP/ckpt
    canon_max() { awk -F: '$2 + 0 >= m[$1] { m[$1] = $2 + 0 } END { for (k in m) printf "%s:%d\n", k, m[k] }' "$@" | sort; }

    echo "== recovery: uninterrupted single-process reference ($TOTAL workers)" >&2
    "$TMP/keycount" -workers "$TOTAL" -dump "$TMP/rec.single" \
        -rate "$RATE" -duration "$RDUR" -bins 4 -domain 2048 \
        -strategy batched -batch 4 -migrate-at 700ms \
        > "$LOGDIR/rec.single.log" 2>&1

    pick_ports
    echo "== recovery: $PROCS-process cluster on $HOSTS, checkpointing every 600ms" >&2
    pids=()
    for ((p = 0; p < PROCS; p++)); do
        "$TMP/keycount" -workers "$WORKERS" -hosts "$HOSTS" -process "$p" \
            -rate "$RATE" -duration "$RDUR" -bins 4 -domain 2048 \
            -strategy batched -batch 4 -migrate-at 700ms \
            -checkpoint-dir "$CKPT" -checkpoint-every 600ms \
            -dump "$TMP/rec.phase1.$p" \
            > "$LOGDIR/rec.phase1.$p.log" 2>&1 &
        pids+=($!)
        PIDS+=($!)
    done
    sleep 2
    echo "== recovery: SIGKILL process 1 mid-stream, reaping survivors" >&2
    kill -9 "${pids[1]}" 2>/dev/null || true
    sleep 0.3
    kill -9 "${pids[@]}" 2>/dev/null || true
    for pid in "${pids[@]}"; do
        wait "$pid" 2>/dev/null || true
    done
    PIDS=()

    echo "== recovery: restarting all $PROCS processes with -recover" >&2
    pids=()
    for ((p = 0; p < PROCS; p++)); do
        "$TMP/keycount" -workers "$WORKERS" -hosts "$HOSTS" -process "$p" \
            -rate "$RATE" -duration "$RDUR" -bins 4 -domain 2048 \
            -strategy batched -batch 4 -migrate-at 700ms \
            -checkpoint-dir "$CKPT" -checkpoint-every 600ms -recover \
            -dump "$TMP/rec.phase2.$p" \
            > "$LOGDIR/rec.phase2.$p.log" 2>&1 &
        pids+=($!)
        PIDS+=($!)
    done
    for ((p = 0; p < PROCS; p++)); do
        if ! wait "${pids[$p]}"; then
            echo "recovery process $p failed; log follows:" >&2
            cat "$LOGDIR/rec.phase2.$p.log" >&2
            fail=1
        fi
    done
    PIDS=()
    if ! grep -q "# recovered from checkpoint epoch" "$LOGDIR"/rec.phase2.*.log; then
        echo "recovery: no process reported restoring a checkpoint (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        fail=1
    fi

    canon_max "$TMP"/rec.phase1.* "$TMP"/rec.phase2.* > "$TMP/rec.cluster.canon"
    canon_max "$TMP/rec.single" > "$TMP/rec.single.canon"
    if [[ $fail == 0 ]] && cmp -s "$TMP/rec.cluster.canon" "$TMP/rec.single.canon"; then
        echo "recovery: killed-and-recovered cluster's final counts == uninterrupted run ($(wc -l < "$TMP/rec.single.canon") keys)" | tee -a "$LOGDIR/verdict.txt"
    else
        echo "recovery: OUTPUT MISMATCH after kill-and-recover (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        diff "$TMP/rec.single.canon" "$TMP/rec.cluster.canon" | head -20 >&2 || true
        fail=1
    fi
fi

if [[ $TARGET == join-leave ]]; then
    # Dynamic membership against real binaries: an (N+1)-slot roster with the
    # last slot absent, a late joiner, a real SIGKILL after a durable
    # checkpoint, and a drain-leave — one run, all three transitions. Fixed
    # durations (not -d): the join, kill and leave points must stay in
    # proportion to the run length and the checkpoint cadence.
    MPROCS=$((PROCS + 1)) # roster slots: $PROCS live at start + 1 absent
    MTOTAL=$((MPROCS * WORKERS))
    MDUR=6s     # 6000 epochs at the 1ms default epoch granularity
    MLEAVE=4000 # epoch at which the leaver requests drain-leave
    MSLACK=${MEMBERSHIP_SLACK:-6}
    MATTEMPTS=${MEMBERSHIP_ATTEMPTS:-3}
    JOINER=$((MPROCS - 1))
    LEAVER=1
    VICTIM=2
    canon_max() { awk -F: '$2 + 0 >= m[$1] { m[$1] = $2 + 0 } END { for (k in m) printf "%s:%d\n", k, m[k] }' "$@" | sort; }

    # ckpt_complete DIR TOTAL — true once some epoch directory holds every
    # operator's manifest for every one of TOTAL workers: the same
    # completeness rule core.LatestCheckpoint applies, and the survivors'
    # precondition for declaring a crashed member dead. Polled from the shell
    # so the SIGKILL lands only when the victim's bins are recoverable.
    ckpt_complete() {
        local dir=$1 total=$2 op ep n complete
        [[ -d $dir ]] || return 1
        local ops=()
        for op in "$dir"/*/; do [[ -d $op ]] && ops+=("$op"); done
        ((${#ops[@]})) || return 1
        for ep in $(cd "${ops[0]}" && ls -d epoch-* 2>/dev/null | sed 's/epoch-//' | sort -rn); do
            complete=1
            for op in "${ops[@]}"; do
                n=$(ls "$op/epoch-$ep"/manifest-w*.json 2>/dev/null | wc -l)
                ((n == total)) || { complete=0; break; }
            done
            ((complete)) && return 0
        done
        return 1
    }

    echo "== join-leave: uninterrupted single-process reference ($MTOTAL workers)" >&2
    "$TMP/keycount" -workers "$MTOTAL" -dump "$TMP/mem.single" \
        -rate "$RATE" -duration "$MDUR" -bins 4 -domain 2048 -migrate-at 0 \
        > "$LOGDIR/join-leave.single.log" 2>&1

    # Timing gauntlet on a shared host: the kill must land between the first
    # complete checkpoint and the drain window, so a stalled attempt (e.g.
    # the checkpoint never completing in time under host contention) is
    # retried. Every attempt's logs are kept.
    membership_ok=
    for ((attempt = 1; attempt <= MATTEMPTS; attempt++)); do
        CKPT=$TMP/mem-ckpt.$attempt
        rm -f "$TMP"/mem.proc.*
        pick_ports "$MPROCS"
        echo "== join-leave: $MPROCS-slot roster on $HOSTS — late join of slot $JOINER, SIGKILL $VICTIM after a complete checkpoint, drain $LEAVER at epoch $MLEAVE (attempt $attempt/$MATTEMPTS)" >&2
        pids=()
        for ((p = 0; p < MPROCS; p++)); do
            if ((p == JOINER)); then
                # Started below, after the cluster is running: the joiner
                # dials in late and asks for admission.
                pids+=(0)
                continue
            fi
            args=(-workers "$WORKERS" -hosts "$HOSTS" -process "$p"
                -rate "$RATE" -duration "$MDUR" -bins 4 -domain 2048
                -membership -absent "$JOINER" -membership-slack "$MSLACK"
                -checkpoint-dir "$CKPT" -checkpoint-every 600ms
                -dump "$TMP/mem.proc.$p")
            ((p == LEAVER)) && args+=(-leave-at "$MLEAVE")
            "$TMP/keycount" "${args[@]}" \
                > "$LOGDIR/join-leave.attempt$attempt.proc.$p.log" 2>&1 &
            pids[p]=$!
            PIDS+=($!)
        done
        sleep 0.5
        "$TMP/keycount" -workers "$WORKERS" -hosts "$HOSTS" -process "$JOINER" \
            -rate "$RATE" -duration "$MDUR" -bins 4 -domain 2048 \
            -membership -absent "$JOINER" -membership-slack "$MSLACK" \
            -checkpoint-dir "$CKPT" -checkpoint-every 600ms \
            -dump "$TMP/mem.proc.$JOINER" \
            > "$LOGDIR/join-leave.attempt$attempt.proc.$JOINER.log" 2>&1 &
        pids[JOINER]=$!
        PIDS+=($!)

        # Poll for a complete full-roster checkpoint, then SIGKILL the
        # victim. Full-roster also implies the joiner is in: checkpoints
        # cannot complete while a roster slot writes no manifests.
        killed=
        for ((i = 0; i < 70; i++)); do # up to 3.5s — before the drain at 4s
            kill -0 "${pids[VICTIM]}" 2>/dev/null || break
            if ckpt_complete "$CKPT" "$MTOTAL"; then
                echo "== join-leave: complete checkpoint observed; SIGKILL process $VICTIM" >&2
                kill -9 "${pids[VICTIM]}" 2>/dev/null || true
                killed=1
                break
            fi
            sleep 0.05
        done

        crashed=
        for ((p = 0; p < MPROCS; p++)); do
            if ((p == VICTIM)); then
                wait "${pids[$p]}" 2>/dev/null || true
                continue
            fi
            if ! wait "${pids[$p]}"; then
                echo "join-leave process $p failed (attempt $attempt); log follows:" >&2
                cat "$LOGDIR/join-leave.attempt$attempt.proc.$p.log" >&2
                crashed=1
            fi
        done
        PIDS=()
        for ((p = 0; p < MPROCS; p++)); do
            cp "$LOGDIR/join-leave.attempt$attempt.proc.$p.log" "$LOGDIR/join-leave.proc.$p.log"
        done
        if [[ -n $crashed ]]; then
            continue
        fi
        if [[ -z $killed ]]; then
            echo "join-leave: no complete full-roster checkpoint appeared before the drain window (attempt $attempt/$MATTEMPTS)" >&2
            continue
        fi
        # All three transitions must actually have been decided.
        ok=1
        for want in "decided join of process $JOINER" \
            "decided crash-leave of process $VICTIM" \
            "decided drain-leave of process $LEAVER"; do
            if ! grep -hq "$want" "$LOGDIR/join-leave.attempt$attempt.proc."*.log; then
                echo "join-leave: no process logged \"$want\" (attempt $attempt/$MATTEMPTS)" >&2
                ok=
            fi
        done
        [[ -n $ok ]] || continue

        canon_max "$TMP"/mem.proc.* > "$TMP/mem.cluster.canon"
        canon_max "$TMP/mem.single" > "$TMP/mem.single.canon"
        if cmp -s "$TMP/mem.cluster.canon" "$TMP/mem.single.canon"; then
            echo "join-leave: merged final counts after join + crash + drain == uninterrupted run ($(wc -l < "$TMP/mem.single.canon") keys) [attempt $attempt]" | tee -a "$LOGDIR/verdict.txt"
            membership_ok=1
            break
        fi
        echo "join-leave: OUTPUT MISMATCH (attempt $attempt/$MATTEMPTS; see $LOGDIR)" >&2
        diff "$TMP/mem.single.canon" "$TMP/mem.cluster.canon" | head -20 >&2 || true
    done
    if [[ -z $membership_ok ]]; then
        echo "join-leave: no attempt passed the dynamic-membership gauntlet (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        fail=1
    fi
fi

if [[ $TARGET == crash-mid-migration ]]; then
    # Crash during a scripted migration, against real binaries: an all-live
    # roster migrates at a fixed epoch, and the victim is SIGKILLed the
    # moment the leader logs the rendered schedule — its moves still in
    # flight. The survivors must declare the death, fold the shipped-into-
    # the-void bins into the restore and redirect the pending moves. Fixed
    # durations: the migration point must trail the first complete
    # checkpoint and lead the kill by as little as the shell can manage.
    MTOTAL=$((PROCS * WORKERS))
    MDUR=6s
    MMIG=1500ms # after the first 600ms-cadence checkpoint completes
    MSLACK=${MEMBERSHIP_SLACK:-12}
    MATTEMPTS=${MEMBERSHIP_ATTEMPTS:-3}
    VICTIM=$((PROCS - 1))
    canon_max() { awk -F: '$2 + 0 >= m[$1] { m[$1] = $2 + 0 } END { for (k in m) printf "%s:%d\n", k, m[k] }' "$@" | sort; }

    echo "== crash-mid-migration: uninterrupted single-process reference ($MTOTAL workers)" >&2
    "$TMP/keycount" -workers "$MTOTAL" -dump "$TMP/cmm.single" \
        -rate "$RATE" -duration "$MDUR" -bins 4 -domain 2048 -migrate-at 0 \
        > "$LOGDIR/crash-mid-migration.single.log" 2>&1

    cmm_ok=
    for ((attempt = 1; attempt <= MATTEMPTS; attempt++)); do
        CKPT=$TMP/cmm-ckpt.$attempt
        rm -f "$TMP"/cmm.proc.*
        pick_ports
        echo "== crash-mid-migration: $PROCS-process roster on $HOSTS — migrate at $MMIG, SIGKILL $VICTIM on schedule issue (attempt $attempt/$MATTEMPTS)" >&2
        pids=()
        for ((p = 0; p < PROCS; p++)); do
            "$TMP/keycount" -workers "$WORKERS" -hosts "$HOSTS" -process "$p" \
                -rate "$RATE" -duration "$MDUR" -bins 4 -domain 2048 \
                -membership -membership-slack "$MSLACK" -migrate-at "$MMIG" \
                -checkpoint-dir "$CKPT" -checkpoint-every 600ms \
                -dump "$TMP/cmm.proc.$p" \
                > "$LOGDIR/crash-mid-migration.attempt$attempt.proc.$p.log" 2>&1 &
            pids+=($!)
            PIDS+=($!)
        done

        # Kill the victim the moment the leader renders the schedule: the
        # tighter the poll, the more likely the SIGKILL lands inside the
        # decide-to-commit window with the migration moves still pending.
        killed=
        for ((i = 0; i < 200; i++)); do # up to 4s
            kill -0 "${pids[VICTIM]}" 2>/dev/null || break
            if grep -hq "issued scripted migration" \
                "$LOGDIR/crash-mid-migration.attempt$attempt.proc."*.log 2>/dev/null; then
                echo "== crash-mid-migration: schedule issued; SIGKILL process $VICTIM" >&2
                kill -9 "${pids[VICTIM]}" 2>/dev/null || true
                killed=1
                break
            fi
            sleep 0.02
        done

        crashed=
        for ((p = 0; p < PROCS; p++)); do
            if ((p == VICTIM)); then
                wait "${pids[$p]}" 2>/dev/null || true
                continue
            fi
            if ! wait "${pids[$p]}"; then
                echo "crash-mid-migration process $p failed (attempt $attempt); log follows:" >&2
                cat "$LOGDIR/crash-mid-migration.attempt$attempt.proc.$p.log" >&2
                crashed=1
            fi
        done
        PIDS=()
        for ((p = 0; p < PROCS; p++)); do
            cp "$LOGDIR/crash-mid-migration.attempt$attempt.proc.$p.log" "$LOGDIR/crash-mid-migration.proc.$p.log"
        done
        if [[ -n $crashed ]]; then
            continue
        fi
        if [[ -z $killed ]]; then
            echo "crash-mid-migration: the leader never issued the scripted migration (attempt $attempt/$MATTEMPTS)" >&2
            continue
        fi
        if ! grep -hq "decided crash-leave of process $VICTIM" \
            "$LOGDIR/crash-mid-migration.attempt$attempt.proc."*.log; then
            echo "crash-mid-migration: survivors never declared process $VICTIM dead (attempt $attempt/$MATTEMPTS)" >&2
            continue
        fi

        canon_max "$TMP"/cmm.proc.* > "$TMP/cmm.cluster.canon"
        canon_max "$TMP/cmm.single" > "$TMP/cmm.single.canon"
        if cmp -s "$TMP/cmm.cluster.canon" "$TMP/cmm.single.canon"; then
            echo "crash-mid-migration: merged final counts after SIGKILL inside the migration window == uninterrupted run ($(wc -l < "$TMP/cmm.single.canon") keys) [attempt $attempt]" | tee -a "$LOGDIR/verdict.txt"
            cmm_ok=1
            break
        fi
        echo "crash-mid-migration: OUTPUT MISMATCH (attempt $attempt/$MATTEMPTS; see $LOGDIR)" >&2
        diff "$TMP/cmm.single.canon" "$TMP/cmm.cluster.canon" | head -20 >&2 || true
    done
    if [[ -z $cmm_ok ]]; then
        echo "crash-mid-migration: no attempt passed the gauntlet (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        fail=1
    fi
fi

if [[ $TARGET == autoscale || $TARGET == all ]]; then
    # (a) Adaptive multiset equivalence: cluster -auto vs single-process
    # -auto. The two runs migrate at different epochs (the cluster controller
    # decides from asynchronously merged telemetry), but frontier-ordered
    # application makes the outputs invariant to the migration schedule.
    run_cluster keycount keycount-auto \
        -rate "$RATE" -duration "$DURATION" -bins 4 -domain 4096 \
        -auto load-balance -strategy optimized -batch 4 \
        -workload hotshift:0.85,16,500,512 -migrate-at 0
    sort "$TMP"/keycount-auto.proc.* > "$TMP/keycount-auto.cluster.sorted"
    sort "$TMP/keycount-auto.single" > "$TMP/keycount-auto.single.sorted"
    if cmp -s "$TMP/keycount-auto.cluster.sorted" "$TMP/keycount-auto.single.sorted"; then
        echo "autoscale: cluster -auto output multiset == single-process -auto ($(wc -l < "$TMP/keycount-auto.single.sorted") records)" | tee -a "$LOGDIR/verdict.txt"
    else
        echo "autoscale: OUTPUT MISMATCH under -auto (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        diff "$TMP/keycount-auto.single.sorted" "$TMP/keycount-auto.cluster.sorted" | head -20 >&2 || true
        fail=1
    fi
    if ! grep -q "^# decision" "$LOGDIR/keycount-auto.proc.0.log"; then
        echo "autoscale: the elected controller recorded no decisions (see $LOGDIR/keycount-auto.proc.0.log)" | tee -a "$LOGDIR/verdict.txt" >&2
        fail=1
    fi

    # (b) Settled-latency gauntlet: the full adaptive loop over real
    # processes. Parse the load-balance run's per-phase settled p99 from the
    # controller process's log and require every phase under the threshold.
    # The bound is tight against wall-clock latency on a shared host, so a
    # failed attempt is retried: sustained host contention lifts a whole
    # run's floor past the bound no matter what the controller does, and a
    # clean attempt on the same binary proves the control loop settles.
    # Every attempt's logs are kept.
    P99MS=${AUTOSCALE_P99MS:-10}
    ATTEMPTS=${AUTOSCALE_ATTEMPTS:-3}
    go build -o "$TMP/experiments" ./cmd/experiments
    autoscale_ok=
    for ((attempt = 1; attempt <= ATTEMPTS; attempt++)); do
        pick_ports
        echo "== autoscale: $PROCS-process experiments -exp autoscale on $HOSTS (attempt $attempt/$ATTEMPTS)" >&2
        pids=()
        for ((p = 0; p < PROCS; p++)); do
            "$TMP/experiments" -exp autoscale -workers "$WORKERS" \
                -hosts "$HOSTS" -process "$p" \
                > "$LOGDIR/autoscale.attempt$attempt.proc.$p.log" 2>&1 &
            pids+=($!)
            PIDS+=($!)
        done
        crashed=
        for ((p = 0; p < PROCS; p++)); do
            if ! wait "${pids[$p]}"; then
                echo "autoscale experiments process $p failed; log follows:" >&2
                cat "$LOGDIR/autoscale.attempt$attempt.proc.$p.log" >&2
                crashed=1
            fi
        done
        PIDS=()
        for ((p = 0; p < PROCS; p++)); do
            cp "$LOGDIR/autoscale.attempt$attempt.proc.$p.log" "$LOGDIR/autoscale.proc.$p.log"
        done
        if [[ -n $crashed ]]; then
            continue
        fi
        settled=$(sed -n '/--- policy=load-balance/,$p' "$LOGDIR/autoscale.proc.0.log" \
            | grep -o 'settled p99=[0-9.]*' | cut -d= -f2 || true)
        if [[ -z $settled ]]; then
            echo "autoscale: no settled-p99 phases in the load-balance run (see $LOGDIR/autoscale.proc.0.log)" >&2
            continue
        fi
        # A phase fails when it settled at or above the bound, or never
        # settled at all (0.00 means every tail window was a frontier stall).
        bad=$(echo "$settled" | awk -v t="$P99MS" '$1 + 0 >= t || $1 + 0 == 0 { n++ } END { print n + 0 }')
        if [[ $bad == 0 ]]; then
            echo "autoscale: every phase settled p99 < ${P99MS}ms ($(echo "$settled" | tr '\n' ' ')) [attempt $attempt]" | tee -a "$LOGDIR/verdict.txt"
            autoscale_ok=1
            break
        fi
        echo "autoscale: $bad phase(s) settled at >= ${P99MS}ms ($(echo "$settled" | tr '\n' ' '); attempt $attempt/$ATTEMPTS)" >&2
    done
    if [[ -z $autoscale_ok ]]; then
        echo "autoscale: no attempt settled every phase below ${P99MS}ms (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        fail=1
    fi
fi

if [[ $TARGET == nexmark || $TARGET == all ]]; then
    run_cluster nexmark nexmark-q4 \
        -query q4 -impl megaphone -rate "$RATE" -duration "$DURATION" -bins 4 \
        -strategy batched -batch 4 -migrate-at 700ms
    # Keep the last line per (epoch, category): dump lines are
    # "<epoch> {<category> <avg>}" and each (epoch, category) is produced by
    # exactly one worker's batch, written atomically.
    canon_q4() { awk '{ v[$1" "$2] = $0 } END { for (k in v) print v[k] }' "$@" | sort; }
    canon_q4 "$TMP"/nexmark-q4.proc.* > "$TMP/q4.cluster.canon"
    canon_q4 "$TMP/nexmark-q4.single" > "$TMP/q4.single.canon"
    if cmp -s "$TMP/q4.cluster.canon" "$TMP/q4.single.canon"; then
        echo "nexmark q4: cluster end-of-epoch aggregates == single-process ($(wc -l < "$TMP/q4.single.canon") keys)" | tee -a "$LOGDIR/verdict.txt"
    else
        echo "nexmark q4: OUTPUT MISMATCH (see $LOGDIR)" | tee -a "$LOGDIR/verdict.txt" >&2
        diff "$TMP/q4.single.canon" "$TMP/q4.cluster.canon" | head -20 >&2 || true
        fail=1
    fi
fi

exit $fail
