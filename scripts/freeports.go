// Command freeports prints N free localhost TCP addresses, comma-joined,
// for scripts/cluster.sh to hand to every process of a local cluster. The
// ports are bound (concurrently, so they are distinct) and released just
// before printing; the window until the cluster processes re-bind them is
// small and a collision only fails the smoke run, not silently.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
)

func main() {
	n := 3
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "usage: freeports [n]\n")
			os.Exit(2)
		}
		n = v
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	fmt.Println(strings.Join(addrs, ","))
}
