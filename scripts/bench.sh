#!/usr/bin/env bash
# bench.sh — run the runtime hot-path benchmarks and emit BENCH_runtime.json,
# the perf trajectory record for the engine's inner loop: sustained records/s
# and p99 latency of the saturating steady-state ablation, plus allocs/op of
# the route->exchange->apply micro-benchmark and the tracker apply path.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT=${1:-BENCH_runtime.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "running steady-state ablation (saturating, ~5s)..." >&2
go test -run xxx -bench 'BenchmarkAblationBinsSteadyState' -benchtime 1x -benchmem . | tee -a "$TMP" >&2
echo "running runtime micro-benchmarks..." >&2
go test -run xxx -bench 'BenchmarkExchangeHotPath' -benchmem ./internal/dataflow/ | tee -a "$TMP" >&2
go test -run xxx -bench 'BenchmarkApplySteady' -benchmem ./internal/progress/ | tee -a "$TMP" >&2

awk '
BEGIN { print "{"; print "  \"generated_by\": \"scripts/bench.sh\","; print "  \"benchmarks\": {"; n = 0 }
/^Benchmark/ {
    name = $1
    if (n++) printf ",\n"
    printf "    \"%s\": {", name
    first = 1
    # fields after the iteration count come in value/unit pairs
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        if (!first) printf ", "
        printf "\"%s\": %s", unit, $i
        first = 0
    }
    printf "}"
}
END { print "\n  }"; print "}" }
' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
