#!/usr/bin/env bash
# bench.sh — run the runtime hot-path benchmarks and emit BENCH_runtime.json,
# the perf trajectory record for the engine's inner loop: sustained records/s
# and p99 latency of the saturating steady-state ablation, plus allocs/op of
# the route->exchange->apply micro-benchmarks, the tracker apply path, and
# the cross-process transport.
#
# The benchmark set is DISCOVERED with `go test -list`: every benchmark in
# the runtime packages (internal/core, internal/dataflow, internal/progress,
# internal/transport) is run and recorded automatically, so new ones cannot
# silently fall out of BENCH_runtime.json or scripts/bench_compare.sh's
# regression guard. The root package is the one exception — its figure
# benchmarks are multi-minute paper reproductions, so only the steady-state
# ablation is pinned by name there, and any other root benchmark is LISTED
# LOUDLY at the end as not covered by the perf record.
#
# One non-`go test` entry rides along: BenchmarkClusterThroughput3Proc, a real
# 3-process loopback keycount cluster driven past saturation, whose sustained
# records/s (best of 3 runs) is parsed from the harness's `# throughput` line
# and written into the same JSON — so cross-process wire regressions are
# caught by the same bench_compare.sh guard as the in-process paths. Set
# BENCH_SKIP_CLUSTER=1 to skip it (e.g. on machines without spare ports).
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT=${1:-BENCH_runtime.json}
TMP=$(mktemp)
CLUSTER_PIDS=()
cleanup() {
    [ ${#CLUSTER_PIDS[@]} -gt 0 ] && kill "${CLUSTER_PIDS[@]}" 2>/dev/null
    rm -rf "$TMP" "$CLUSTER_TMP"
}
CLUSTER_TMP=$(mktemp -d)
trap cleanup EXIT

# run_pkg PKG BENCHTIME COUNT [FILTER] — list the package's benchmarks
# matching FILTER (default: all) and run exactly that set COUNT times.
run_pkg() {
    local pkg=$1 benchtime=$2 count=$3 filter=${4:-'^Benchmark'}
    local list pat
    list=$(go test -run xxx -list "$filter" "$pkg" | grep '^Benchmark' || true)
    if [ -z "$list" ]; then
        echo "bench.sh: no benchmarks matching $filter in $pkg" >&2
        return 1
    fi
    pat=$(printf '%s\n' "$list" | paste -sd'|' -)
    echo "running $pkg ($(printf '%s\n' "$list" | wc -l) benchmarks: $(echo $list))..." >&2
    go test -run xxx -bench "^($pat)\$" -benchtime "$benchtime" -count "$count" -benchmem "$pkg" | tee -a "$TMP" >&2
}

# The saturating ablation is heavy (several seconds per sub-benchmark) and a
# single open-loop iteration is noisy (cold caches and machine drift read
# 15-25% slow, which would trip the regression guard spuriously), so it runs
# three times and the JSON keeps each benchmark's best run. Everything else
# in the runtime packages runs once at a fixed benchtime, which already
# averages over many iterations.
run_pkg . 1x 3 '^BenchmarkAblationBinsSteadyState$'
run_pkg ./internal/core/ 1s 1
run_pkg ./internal/dataflow/ 1s 1
run_pkg ./internal/progress/ 1s 1
run_pkg ./internal/transport/ 1s 1

# Cluster-mode throughput: a 3-process keycount on loopback, driven at a
# rate well past single-machine capacity so records/elapsed measures the
# sustained cross-process throughput (coalesced frames, striped connections,
# progress exchange — the whole wire path), not the offered load. Best of
# three runs, like the ablation: cold runs on a shared machine read slow.
# The result is appended to $TMP as a synthetic benchmark line in `go test`
# format so the awk stage below records and guards it like any other.
if [ "${BENCH_SKIP_CLUSTER:-0}" != 1 ]; then
    CPROCS=3
    echo "running cluster throughput ($CPROCS-process keycount, best of 3)..." >&2
    go build -o "$CLUSTER_TMP/keycount" ./cmd/keycount
    best=0
    for attempt in 1 2 3; do
        HOSTS=$(go run ./scripts/freeports.go "$CPROCS")
        CLUSTER_PIDS=()
        for ((p = 1; p < CPROCS; p++)); do
            "$CLUSTER_TMP/keycount" -hosts "$HOSTS" -process "$p" -workers 1 \
                -rate 6000000 -duration 2s -migrate-at 0 \
                >"$CLUSTER_TMP/proc$p.out" 2>&1 &
            CLUSTER_PIDS+=($!)
        done
        if ! "$CLUSTER_TMP/keycount" -hosts "$HOSTS" -process 0 -workers 1 \
            -rate 6000000 -duration 2s -migrate-at 0 \
            >"$CLUSTER_TMP/proc0.out" 2>&1; then
            echo "bench.sh: cluster attempt $attempt failed:" >&2
            tail -5 "$CLUSTER_TMP"/proc*.out >&2
            kill "${CLUSTER_PIDS[@]}" 2>/dev/null || true
            wait "${CLUSTER_PIDS[@]}" 2>/dev/null || true
            CLUSTER_PIDS=()
            continue
        fi
        wait "${CLUSTER_PIDS[@]}"
        CLUSTER_PIDS=()
        rps=$(awk '/^# throughput /{for(i=1;i<=NF;i++) if ($i ~ /^records_s=/) {sub(/^records_s=/,"",$i); print $i}}' "$CLUSTER_TMP/proc0.out")
        if [ -z "$rps" ]; then
            echo "bench.sh: cluster attempt $attempt printed no throughput line" >&2
            continue
        fi
        echo "  attempt $attempt: $rps records/s" >&2
        best=$(awk -v a="$best" -v b="$rps" 'BEGIN{print (b > a ? b : a)}')
    done
    if [ "$best" = 0 ]; then
        echo "bench.sh: all cluster throughput attempts failed" >&2
        exit 1
    fi
    # go-test-format line: iterations, ns per record, sustained records/s.
    awk -v r="$best" 'BEGIN{printf "BenchmarkClusterThroughput3Proc 1 %.1f ns/op %d records_s\n", 1e9 / r, r}' >> "$TMP"
fi

# Announce root-package benchmarks the perf record does not cover, so adding
# one is a visible decision rather than a silent gap.
uncovered=$(go test -run xxx -list '^Benchmark' . | grep '^Benchmark' | grep -v '^BenchmarkAblationBinsSteadyState$' || true)
if [ -n "$uncovered" ]; then
    echo "note: root-package benchmarks NOT in the runtime perf record (paper figures; see EXPERIMENTS.md):" >&2
    printf '    %s\n' $uncovered >&2
fi

# Emit JSON, keeping the best run per benchmark: highest records_s when the
# benchmark reports throughput, lowest ns/op otherwise.
awk '
/^Benchmark/ {
    name = $1
    fields = ""
    score = -$3 # default: lower ns/op (field 3) is better
    first = 1
    # fields after the iteration count come in value/unit pairs
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        if (!first) fields = fields ", "
        fields = fields "\"" unit "\": " $i
        first = 0
        if (unit == "records_s") score = $i
    }
    if (!(name in best) || score > bestScore[name]) {
        best[name] = fields
        bestScore[name] = score
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    print "{"
    print "  \"generated_by\": \"scripts/bench.sh\","
    print "  \"benchmarks\": {"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": {%s}%s\n", order[i], best[order[i]], (i < n ? "," : "")
    }
    print "  }"
    print "}"
}
' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
