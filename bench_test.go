// Package megaphone's root benchmarks regenerate the paper's tables and
// figures as testing.B benchmarks: one benchmark per experiment, each
// reporting the metrics the paper plots as custom benchmark units
// (max-latency ms, migration duration s, percentiles). Absolute numbers
// reflect this repository's single-process substrate; the shapes — who wins,
// by roughly what factor, where crossovers fall — are the reproduction
// targets recorded in EXPERIMENTS.md.
//
// Run everything:    go test -bench=. -benchmem
// One figure:        go test -bench=BenchmarkFigure16 -benchtime=1x
package megaphone_test

import (
	"fmt"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/keycount"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

// benchDuration keeps every measurement run short enough for a full
// -bench=. pass while leaving room for steady state around the migration.
const (
	benchDuration  = 4 * time.Second
	benchMigrateAt = 2 * time.Second
	benchRate      = 100_000
	benchWorkers   = 4
)

// runKeycount is the shared body of the key-count figure benchmarks.
func runKeycount(b *testing.B, cfg keycount.RunConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := keycount.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MigrationSpans) > 0 {
			sp := res.MigrationSpans[0]
			b.ReportMetric(sp.MaxLatency, "mig-max-ms")
			b.ReportMetric(sp.Duration, "mig-dur-s")
		}
		b.ReportMetric(float64(res.Hist.Quantile(0.99))/1e6, "p99-ms")
		b.ReportMetric(float64(res.Hist.Max())/1e6, "max-ms")
		b.ReportMetric(float64(res.Records)/res.Elapsed, "records/s")
	}
}

// BenchmarkFigure01 — the headline comparison: all-at-once vs fluid vs
// optimized migration of a large keyed state.
func BenchmarkFigure01(b *testing.B) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Optimized} {
		b.Run(st.String(), func(b *testing.B) {
			runKeycount(b, keycount.RunConfig{
				Params: keycount.Params{
					Variant: keycount.HashCount,
					LogBins: 8,
					Domain:  1 << 21,
					Preload: true,
				},
				Workers:   benchWorkers,
				Rate:      benchRate,
				Duration:  benchDuration,
				Strategy:  st,
				Batch:     16,
				MigrateAt: benchMigrateAt,
			})
		})
	}
}

// BenchmarkTable01 — lines of code of the NEXMark implementations.
func BenchmarkTable01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		native, mega, err := nexmark.LoC()
		if err != nil {
			b.Fatal(err)
		}
		var n, m int
		for _, v := range native {
			n += v
		}
		for _, v := range mega {
			m += v
		}
		b.ReportMetric(float64(n), "native-loc")
		b.ReportMetric(float64(m), "megaphone-loc")
	}
}

// benchQuery is the shared body of the NEXMark figure benchmarks
// (Figures 5-12): the second, re-balancing migration of each query under
// all-at-once and batched strategies.
func benchQuery(b *testing.B, q string) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Batched} {
		b.Run(st.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := nexmark.Run(nexmark.RunConfig{
					Query:     q,
					Params:    nexmark.Params{Impl: nexmark.Megaphone, LogBins: 8},
					Workers:   benchWorkers,
					Rate:      benchRate,
					Duration:  benchDuration,
					Strategy:  st,
					Batch:     16,
					MigrateAt: benchMigrateAt,
				})
				if err != nil {
					b.Fatal(err)
				}
				if n := len(res.MigrationSpans); n > 0 {
					sp := res.MigrationSpans[n-1]
					b.ReportMetric(sp.MaxLatency, "mig-max-ms")
					b.ReportMetric(sp.Duration, "mig-dur-s")
				}
				b.ReportMetric(float64(res.Hist.Quantile(0.99))/1e6, "p99-ms")
			}
		})
	}
}

// BenchmarkFigure05 — Q1 (stateless): no migration disruption.
func BenchmarkFigure05(b *testing.B) { benchQuery(b, "q1") }

// BenchmarkFigure06 — Q2 (stateless): no migration disruption.
func BenchmarkFigure06(b *testing.B) { benchQuery(b, "q2") }

// BenchmarkFigure07 — Q3 incremental join (state grows without bound).
func BenchmarkFigure07(b *testing.B) { benchQuery(b, "q3") }

// BenchmarkFigure08 — Q4 closing-price averages (bounded state).
func BenchmarkFigure08(b *testing.B) { benchQuery(b, "q4") }

// BenchmarkFigure09 — Q5 sliding-window hot items (dilated).
func BenchmarkFigure09(b *testing.B) { benchQuery(b, "q5") }

// BenchmarkFigure10 — Q6 per-seller closing averages.
func BenchmarkFigure10(b *testing.B) { benchQuery(b, "q6") }

// BenchmarkFigure11 — Q7 highest bid (minimal state; strategies equal).
func BenchmarkFigure11(b *testing.B) { benchQuery(b, "q7") }

// BenchmarkFigure12 — Q8 windowed person/seller join (dilated).
func BenchmarkFigure12(b *testing.B) { benchQuery(b, "q8") }

// benchOverhead is the shared body of Figures 13-15: steady-state latency
// percentiles as the bin count grows, against the native implementation.
func benchOverhead(b *testing.B, v keycount.Variant, native keycount.Variant, domain int64) {
	for _, lb := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("bins=2^%d", lb), func(b *testing.B) {
			runKeycount(b, keycount.RunConfig{
				Params:   keycount.Params{Variant: v, LogBins: lb, Domain: domain, Preload: true},
				Workers:  benchWorkers,
				Rate:     benchRate,
				Duration: benchDuration,
			})
		})
	}
	b.Run("native", func(b *testing.B) {
		runKeycount(b, keycount.RunConfig{
			Params:   keycount.Params{Variant: native, LogBins: 4, Domain: domain},
			Workers:  benchWorkers,
			Rate:     benchRate,
			Duration: benchDuration,
		})
	})
}

// BenchmarkFigure13 — hash-count overhead vs bin count.
func BenchmarkFigure13(b *testing.B) {
	benchOverhead(b, keycount.HashCount, keycount.NativeHash, 1<<20)
}

// BenchmarkFigure14 — key-count overhead vs bin count.
func BenchmarkFigure14(b *testing.B) {
	benchOverhead(b, keycount.KeyCount, keycount.NativeKey, 1<<20)
}

// BenchmarkFigure15 — key-count overhead, larger domain.
func BenchmarkFigure15(b *testing.B) {
	benchOverhead(b, keycount.KeyCount, keycount.NativeKey, 1<<23)
}

// benchSweep runs one migration configuration (Figures 16-18 points).
func benchSweep(b *testing.B, st plan.Strategy, logBins int, domain int64) {
	runKeycount(b, keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: logBins,
			Domain:  domain,
			Preload: true,
		},
		Workers:   benchWorkers,
		Rate:      benchRate,
		Duration:  benchDuration,
		Strategy:  st,
		Batch:     16,
		MigrateAt: benchMigrateAt,
	})
}

// BenchmarkFigure16 — latency vs duration while bins vary (fixed domain).
func BenchmarkFigure16(b *testing.B) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, lb := range []int{4, 6, 8, 10} {
			b.Run(fmt.Sprintf("%s/bins=2^%d", st, lb), func(b *testing.B) {
				benchSweep(b, st, lb, 1<<21)
			})
		}
	}
}

// BenchmarkFigure17 — latency vs duration while the domain varies.
func BenchmarkFigure17(b *testing.B) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, d := range []int64{1 << 19, 1 << 20, 1 << 21, 1 << 22} {
			b.Run(fmt.Sprintf("%s/domain=%dM", st, d>>20), func(b *testing.B) {
				benchSweep(b, st, 8, d)
			})
		}
	}
}

// BenchmarkFigure18 — domain and bins grow together (fixed keys per bin):
// fluid/batched max latency should stay flat while duration grows.
func BenchmarkFigure18(b *testing.B) {
	cfgs := []struct {
		logBins int
		domain  int64
	}{{6, 1 << 19}, {7, 1 << 20}, {8, 1 << 21}, {9, 1 << 22}}
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, c := range cfgs {
			b.Run(fmt.Sprintf("%s/bins=2^%d", st, c.logBins), func(b *testing.B) {
				benchSweep(b, st, c.logBins, c.domain)
			})
		}
	}
}

// BenchmarkFigure19 — offered load vs max latency per strategy.
func BenchmarkFigure19(b *testing.B) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		for _, rate := range []int{50_000, 100_000, 200_000, 400_000} {
			b.Run(fmt.Sprintf("%s/rate=%d", st, rate), func(b *testing.B) {
				runKeycount(b, keycount.RunConfig{
					Params: keycount.Params{
						Variant: keycount.HashCount,
						LogBins: 8,
						Domain:  1 << 21,
						Preload: true,
					},
					Workers:   benchWorkers,
					Rate:      rate,
					Duration:  benchDuration,
					Strategy:  st,
					Batch:     16,
					MigrateAt: benchMigrateAt,
				})
			})
		}
	}
}

// BenchmarkFigure20 — peak heap per strategy: all-at-once spikes.
func BenchmarkFigure20(b *testing.B) {
	for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched} {
		b.Run(st.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := keycount.Run(keycount.RunConfig{
					Params: keycount.Params{
						Variant: keycount.HashCount,
						LogBins: 8,
						Domain:  1 << 22,
						Preload: true,
					},
					Workers:   benchWorkers,
					Rate:      benchRate,
					Duration:  benchDuration,
					Strategy:  st,
					Batch:     16,
					MigrateAt: benchMigrateAt,
					Memory:    true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Memory.Max()/(1<<20), "peak-heap-MiB")
				b.ReportMetric(res.Memory.Quantile(0.5)/(1<<20), "p50-heap-MiB")
			}
		})
	}
}

// BenchmarkMigrationAblationCodec — end-to-end migration latency per
// transfer codec: gob (reflective baseline) vs the hand-rolled binary
// codec vs direct pointer handoff (the in-process lower bound — the cost
// Megaphone pays to model cross-process state movement). The per-bin
// encode+decode micro-benchmark is keycount.BenchmarkMigrationCodec.
func BenchmarkMigrationAblationCodec(b *testing.B) {
	for _, tr := range []struct {
		name string
		t    core.Codec
	}{{"gob", core.TransferGob}, {"binary", core.TransferBinary}, {"direct", core.TransferDirect}} {
		b.Run(tr.name, func(b *testing.B) {
			runKeycount(b, keycount.RunConfig{
				Params: keycount.Params{
					Variant:  keycount.HashCount,
					LogBins:  8,
					Domain:   1 << 21,
					Transfer: tr.t,
					Preload:  true,
				},
				Workers:   benchWorkers,
				Rate:      benchRate,
				Duration:  benchDuration,
				Strategy:  plan.AllAtOnce,
				MigrateAt: benchMigrateAt,
			})
		})
	}
}

// BenchmarkAblationOptimized — plain batched vs the Section 4.4 optimized
// plan (bipartite matching + drain gaps) at equal batch size.
func BenchmarkAblationOptimized(b *testing.B) {
	for _, st := range []plan.Strategy{plan.Batched, plan.Optimized} {
		b.Run(st.String(), func(b *testing.B) {
			runKeycount(b, keycount.RunConfig{
				Params: keycount.Params{
					Variant: keycount.HashCount,
					LogBins: 8,
					Domain:  1 << 21,
					Preload: true,
				},
				Workers:   benchWorkers,
				Rate:      benchRate,
				Duration:  benchDuration,
				Strategy:  st,
				Batch:     8,
				MigrateAt: benchMigrateAt,
			})
		})
	}
}

// BenchmarkAblationBinsSteadyState — pure routing-table overhead: steady
// state throughput of the megaphone operator as the bin count grows, with
// no migration at all (complements Figures 13-15 with allocation counts).
// The offered rate is set far above what the substrate sustains and the
// epochs are fine-grained, so records/s (records / wall-clock until
// drained) measures the runtime's actual capacity in the paper's
// latency-conscious operating regime rather than the open-loop pacing.
func BenchmarkAblationBinsSteadyState(b *testing.B) {
	for _, lb := range []int{4, 10, 16} {
		b.Run(fmt.Sprintf("bins=2^%d", lb), func(b *testing.B) {
			runKeycount(b, keycount.RunConfig{
				Params:     keycount.Params{Variant: keycount.KeyCount, LogBins: lb, Domain: 1 << 20, Preload: true},
				Workers:    benchWorkers,
				Rate:       24_000_000,
				EpochEvery: 250 * time.Microsecond,
				Duration:   benchDuration / 8,
			})
		})
	}
}
