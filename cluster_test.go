// Cluster equivalence: the acceptance test of the multi-process runtime. A
// 3-process local cluster (three meshes over loopback TCP, each running its
// own Execution with its own progress tracker, exactly what three OS
// processes would run) executes keycount and NEXMark q4 under an active
// migration plan, and the output record multiset must equal that of the
// single-process run with the same total worker count. scripts/cluster.sh
// performs the same check against the real binaries in real processes.
package megaphone_test

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/keycount"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

// localClusterSpecs pre-binds n loopback listeners and returns one
// ClusterSpec per process.
func localClusterSpecs(t *testing.T, n int) []dataflow.ClusterSpec {
	t.Helper()
	hosts := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range hosts {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		hosts[i] = ln.Addr().String()
	}
	specs := make([]dataflow.ClusterSpec, n)
	for i := range specs {
		specs[i] = dataflow.ClusterSpec{
			Hosts:       hosts,
			Process:     i,
			Listener:    lns[i],
			DialTimeout: 15 * time.Second,
		}
	}
	return specs
}

// collector is a concurrency-safe line multiset.
type collector struct {
	mu    sync.Mutex
	lines []string
}

func (c *collector) add(line string) {
	c.mu.Lock()
	c.lines = append(c.lines, line)
	c.mu.Unlock()
}

func (c *collector) canonical() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Strings(c.lines)
	return strings.Join(c.lines, "\n")
}

func TestClusterKeycountEquivalence(t *testing.T) {
	const procs, wpp = 3, 1
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 12,
			Preload: true,
		},
		Workers:    0, // set per run
		Rate:       20000,
		Duration:   1200 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.Batched,
		Batch:      4,
		MigrateAt:  400 * time.Millisecond,
		MigrateTwo: true,
	}

	// Single-process reference with the same total worker count.
	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 || len(refRes.MigrationSpans) == 0 {
		t.Fatalf("reference run degenerate: %d records, %d migrations", refRes.Records, len(refRes.MigrationSpans))
	}

	// 3-process cluster run.
	specs := localClusterSpecs(t, procs)
	var clu collector
	var wg sync.WaitGroup
	var mu sync.Mutex
	var clusterRecords int64
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Sink = clu.add
			res, err := keycount.Run(cfg)
			errs[p] = err
			mu.Lock()
			clusterRecords += res.Records
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	if clusterRecords != refRes.Records {
		t.Fatalf("cluster injected %d records, single-process %d", clusterRecords, refRes.Records)
	}
	if got, want := clu.canonical(), ref.canonical(); got != want {
		t.Fatalf("cluster output multiset differs from single-process run (cluster %d lines, single %d lines)",
			len(clu.lines), len(ref.lines))
	}
}

// epochCollector canonicalizes running-aggregate outputs: q4 emits one
// running average per closed auction, and the order of same-epoch closings
// within one category is inherently nondeterministic (it is already
// unstable across two identical single-process runs). The deterministic
// unit is the *last* value per (epoch, key) — the end-of-epoch aggregate
// state, which frontier-ordered application fixes exactly — so the
// collector keeps, per output batch, only each line's final occurrence
// keyed by (epoch, first space-separated field). Each key belongs to
// exactly one batch per epoch (one bin owner per time), so keep-last per
// batch composes into a deterministic cluster-wide multiset.
type epochCollector struct {
	mu   sync.Mutex
	last map[string]string // "epoch key" -> final line
	n    int               // total records observed
}

func (c *epochCollector) add(t nexmark.Time, lines []string) {
	c.mu.Lock()
	if c.last == nil {
		c.last = map[string]string{}
	}
	c.n += len(lines)
	for _, line := range lines {
		key := line
		if i := strings.IndexByte(line, ' '); i >= 0 {
			key = line[:i]
		}
		c.last[fmt.Sprintf("%d %s", uint64(t), key)] = line
	}
	c.mu.Unlock()
}

func (c *epochCollector) canonical() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.last))
	for k, v := range c.last {
		out = append(out, k+" -> "+v)
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func TestClusterNexmarkQ4Equivalence(t *testing.T) {
	const procs, wpp = 3, 1
	base := nexmark.RunConfig{
		Query: "q4",
		Params: nexmark.Params{
			Impl:    nexmark.Megaphone,
			LogBins: 4,
		},
		Gen:        nexmark.GenConfig{ActiveAuctions: 100, ActivePeople: 100, AuctionEpochs: 30},
		Rate:       20000,
		Duration:   1200 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.Batched,
		Batch:      4,
		MigrateAt:  400 * time.Millisecond,
	}

	var ref epochCollector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Params.Sink = ref.add
	refRes, err := nexmark.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no events")
	}
	if ref.n == 0 {
		t.Fatal("reference run produced no outputs (q4 should close auctions)")
	}

	specs := localClusterSpecs(t, procs)
	var clu epochCollector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Params.Sink = clu.add
			_, errs[p] = nexmark.Run(cfg)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	if clu.n != ref.n {
		t.Fatalf("cluster emitted %d q4 records, single-process %d", clu.n, ref.n)
	}
	if got, want := clu.canonical(), ref.canonical(); got != want {
		t.Fatalf("cluster q4 end-of-epoch aggregates differ from single-process run (cluster %d keys, single %d keys)",
			len(clu.last), len(ref.last))
	}
}

// TestClusterRejectsDirectCodec pins the configuration guard: pointer
// handoff cannot cross process boundaries.
func TestClusterRejectsDirectCodec(t *testing.T) {
	cfg := keycount.RunConfig{
		Params: keycount.Params{
			Variant:  keycount.HashCount,
			LogBins:  4,
			Domain:   1 << 10,
			Transfer: core.TransferDirect,
		},
		Cluster: &dataflow.ClusterSpec{
			Hosts:   []string{"127.0.0.1:1", "127.0.0.1:2"},
			Process: 0,
		},
	}
	if _, err := keycount.Run(cfg); err == nil || !strings.Contains(err.Error(), "direct") {
		t.Fatalf("expected direct-codec rejection, got %v", err)
	}
}

// TestClusterAutoscaleEquivalence is the adaptive half of the equivalence
// story: a hot-shift workload under -auto (LoadBalance) in a 3-process
// cluster must produce the same output multiset as the single-process run
// with the same total worker count. The migrations themselves differ — the
// cluster's elected controller decides from asynchronously merged telemetry,
// so its decision epochs are not reproducible — but Property 1 makes the
// outputs invariant to when (and whether) any migration runs, which is
// exactly what this pins.
func TestClusterAutoscaleEquivalence(t *testing.T) {
	const procs, wpp = 3, 1
	newAuto := func() *plan.AutoOptions {
		return &plan.AutoOptions{
			// The hot set here spreads 3/2/3 bins over the three workers, a
			// true max/mean of ~1.13 — the band must sit below that so every
			// sampled window proposes a rebalance deterministically, rather
			// than only when burst noise pushes a window past the trigger.
			Policy:   plan.LoadBalance{Hysteresis: 0.1},
			Strategy: plan.Optimized,
			Batch:    4,
			// Sample fast enough for several decisions inside the short run.
			SampleEvery: 100,
			Cooldown:    200,
		}
	}
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.KeyCount,
			LogBins: 4,
			Domain:  1 << 12,
			Preload: true,
		},
		Workers:    0, // set per run
		Rate:       20000,
		Duration:   1500 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Workload: harness.Workload{
			Kind:        harness.HotShift,
			HotFraction: 0.85,
			HotKeys:     16,
			// One bin's span times two: the hot set concentrates on a
			// power-of-two residue class so one worker draws most of it.
			HotStride:  uint64((1 << 12) >> 4 * 2),
			ShiftEvery: 500,
		},
	}

	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Auto = newAuto()
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no records")
	}

	specs := localClusterSpecs(t, procs)
	var clu collector
	var wg sync.WaitGroup
	var mu sync.Mutex
	var clusterRecords int64
	results := make([]harness.Result, procs)
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Auto = newAuto()
			cfg.Sink = clu.add
			res, err := keycount.Run(cfg)
			results[p], errs[p] = res, err
			mu.Lock()
			clusterRecords += res.Records
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	if clusterRecords != refRes.Records {
		t.Fatalf("cluster injected %d records, single-process %d", clusterRecords, refRes.Records)
	}
	if got, want := clu.canonical(), ref.canonical(); got != want {
		t.Fatalf("cluster -auto output multiset differs from single-process -auto run (cluster %d lines, single %d lines)",
			len(clu.lines), len(ref.lines))
	}
	// The elected controller (process 0 stays alive throughout, so it is the
	// sole leader) must actually have decided something, and only it may have.
	for p, res := range results {
		for _, d := range res.Decisions {
			if d.Origin != 0 {
				t.Fatalf("process %d recorded a decision from origin %d; only process 0 may decide", p, d.Origin)
			}
		}
	}
	if len(results[0].Decisions) == 0 {
		t.Fatal("cluster leader took no decisions against a hot-shift workload")
	}
}
