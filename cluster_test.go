// Cluster equivalence: the acceptance test of the multi-process runtime. A
// 3-process local cluster (three meshes over loopback TCP, each running its
// own Execution with its own progress tracker, exactly what three OS
// processes would run) executes keycount and NEXMark q4 under an active
// migration plan, and the output record multiset must equal that of the
// single-process run with the same total worker count. scripts/cluster.sh
// performs the same check against the real binaries in real processes.
package megaphone_test

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/keycount"
	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

// localClusterSpecs pre-binds n loopback listeners and returns one
// ClusterSpec per process.
func localClusterSpecs(t *testing.T, n int) []dataflow.ClusterSpec {
	t.Helper()
	hosts := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range hosts {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		hosts[i] = ln.Addr().String()
	}
	specs := make([]dataflow.ClusterSpec, n)
	for i := range specs {
		specs[i] = dataflow.ClusterSpec{
			Hosts:       hosts,
			Process:     i,
			Listener:    lns[i],
			DialTimeout: 15 * time.Second,
		}
	}
	return specs
}

// collector is a concurrency-safe line multiset.
type collector struct {
	mu    sync.Mutex
	lines []string
}

func (c *collector) add(line string) {
	c.mu.Lock()
	c.lines = append(c.lines, line)
	c.mu.Unlock()
}

func (c *collector) canonical() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Strings(c.lines)
	return strings.Join(c.lines, "\n")
}

func TestClusterKeycountEquivalence(t *testing.T) {
	const procs, wpp = 3, 1
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 12,
			Preload: true,
		},
		Workers:    0, // set per run
		Rate:       20000,
		Duration:   1200 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.Batched,
		Batch:      4,
		MigrateAt:  400 * time.Millisecond,
		MigrateTwo: true,
	}

	// Single-process reference with the same total worker count.
	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 || len(refRes.MigrationSpans) == 0 {
		t.Fatalf("reference run degenerate: %d records, %d migrations", refRes.Records, len(refRes.MigrationSpans))
	}

	// 3-process cluster run.
	specs := localClusterSpecs(t, procs)
	var clu collector
	var wg sync.WaitGroup
	var mu sync.Mutex
	var clusterRecords int64
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Sink = clu.add
			res, err := keycount.Run(cfg)
			errs[p] = err
			mu.Lock()
			clusterRecords += res.Records
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	if clusterRecords != refRes.Records {
		t.Fatalf("cluster injected %d records, single-process %d", clusterRecords, refRes.Records)
	}
	if got, want := clu.canonical(), ref.canonical(); got != want {
		t.Fatalf("cluster output multiset differs from single-process run (cluster %d lines, single %d lines)",
			len(clu.lines), len(ref.lines))
	}
}

// epochCollector canonicalizes running-aggregate outputs: q4 emits one
// running average per closed auction, and the order of same-epoch closings
// within one category is inherently nondeterministic (it is already
// unstable across two identical single-process runs). The deterministic
// unit is the *last* value per (epoch, key) — the end-of-epoch aggregate
// state, which frontier-ordered application fixes exactly — so the
// collector keeps, per output batch, only each line's final occurrence
// keyed by (epoch, first space-separated field). Each key belongs to
// exactly one batch per epoch (one bin owner per time), so keep-last per
// batch composes into a deterministic cluster-wide multiset.
type epochCollector struct {
	mu   sync.Mutex
	last map[string]string // "epoch key" -> final line
	n    int               // total records observed
}

func (c *epochCollector) add(t nexmark.Time, lines []string) {
	c.mu.Lock()
	if c.last == nil {
		c.last = map[string]string{}
	}
	c.n += len(lines)
	for _, line := range lines {
		key := line
		if i := strings.IndexByte(line, ' '); i >= 0 {
			key = line[:i]
		}
		c.last[fmt.Sprintf("%d %s", uint64(t), key)] = line
	}
	c.mu.Unlock()
}

func (c *epochCollector) canonical() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.last))
	for k, v := range c.last {
		out = append(out, k+" -> "+v)
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func TestClusterNexmarkQ4Equivalence(t *testing.T) {
	const procs, wpp = 3, 1
	base := nexmark.RunConfig{
		Query: "q4",
		Params: nexmark.Params{
			Impl:    nexmark.Megaphone,
			LogBins: 4,
		},
		Gen:        nexmark.GenConfig{ActiveAuctions: 100, ActivePeople: 100, AuctionEpochs: 30},
		Rate:       20000,
		Duration:   1200 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.Batched,
		Batch:      4,
		MigrateAt:  400 * time.Millisecond,
	}

	var ref epochCollector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Params.Sink = ref.add
	refRes, err := nexmark.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no events")
	}
	if ref.n == 0 {
		t.Fatal("reference run produced no outputs (q4 should close auctions)")
	}

	specs := localClusterSpecs(t, procs)
	var clu epochCollector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Params.Sink = clu.add
			_, errs[p] = nexmark.Run(cfg)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	if clu.n != ref.n {
		t.Fatalf("cluster emitted %d q4 records, single-process %d", clu.n, ref.n)
	}
	if got, want := clu.canonical(), ref.canonical(); got != want {
		t.Fatalf("cluster q4 end-of-epoch aggregates differ from single-process run (cluster %d keys, single %d keys)",
			len(clu.last), len(ref.last))
	}
}

// TestClusterRejectsDirectCodec pins the configuration guard: pointer
// handoff cannot cross process boundaries.
func TestClusterRejectsDirectCodec(t *testing.T) {
	cfg := keycount.RunConfig{
		Params: keycount.Params{
			Variant:  keycount.HashCount,
			LogBins:  4,
			Domain:   1 << 10,
			Transfer: core.TransferDirect,
		},
		Cluster: &dataflow.ClusterSpec{
			Hosts:   []string{"127.0.0.1:1", "127.0.0.1:2"},
			Process: 0,
		},
	}
	if _, err := keycount.Run(cfg); err == nil || !strings.Contains(err.Error(), "direct") {
		t.Fatalf("expected direct-codec rejection, got %v", err)
	}
}

// TestClusterRejectsAutoController pins the other configuration guard:
// per-process AutoControllers would plan from partial load views.
func TestClusterRejectsAutoController(t *testing.T) {
	cfg := keycount.RunConfig{
		Params: keycount.Params{Variant: keycount.HashCount, LogBins: 4, Domain: 1 << 10},
		Auto:   &plan.AutoOptions{Policy: plan.LoadBalance{}, Strategy: plan.Batched, Batch: 4},
		Cluster: &dataflow.ClusterSpec{
			Hosts:   []string{"127.0.0.1:1", "127.0.0.1:2"},
			Process: 0,
		},
	}
	if _, err := keycount.Run(cfg); err == nil || !strings.Contains(err.Error(), "auto-controller") {
		t.Fatalf("expected auto-controller rejection, got %v", err)
	}
}
