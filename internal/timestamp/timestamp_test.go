package timestamp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestScalarOrderLaws checks the total-order laws with testing/quick.
func TestScalarOrderLaws(t *testing.T) {
	reflexive := func(a uint64) bool { return Scalar(a).LessEqual(Scalar(a)) }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	antisymmetric := func(a, b uint64) bool {
		x, y := Scalar(a), Scalar(b)
		if x.LessEqual(y) && y.LessEqual(x) {
			return x == y
		}
		return true
	}
	if err := quick.Check(antisymmetric, nil); err != nil {
		t.Error(err)
	}
	total := func(a, b uint64) bool {
		x, y := Scalar(a), Scalar(b)
		return x.LessEqual(y) || y.LessEqual(x)
	}
	if err := quick.Check(total, nil); err != nil {
		t.Error(err)
	}
	joinIsMax := func(a, b uint64) bool {
		x, y := Scalar(a), Scalar(b)
		j := x.Join(y)
		return x.LessEqual(j) && y.LessEqual(j) && (j == x || j == y)
	}
	if err := quick.Check(joinIsMax, nil); err != nil {
		t.Error(err)
	}
}

// TestProductLatticeLaws checks the partial-order and lattice laws of
// Product with testing/quick.
func TestProductLatticeLaws(t *testing.T) {
	mk := func(a, b uint16) Product { return Product{Scalar(a), Scalar(b)} }
	bound := func(a, b, c, d uint16) bool {
		x, y := mk(a, b), mk(c, d)
		j, m := x.Join(y), x.Meet(y)
		return x.LessEqual(j) && y.LessEqual(j) && m.LessEqual(x) && m.LessEqual(y)
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Error(err)
	}
	transitive := func(a, b, c, d, e, f uint16) bool {
		x, y, z := mk(a, b), mk(c, d), mk(e, f)
		if x.LessEqual(y) && y.LessEqual(z) {
			return x.LessEqual(z)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Error(err)
	}
	// Incomparability exists: (1,0) and (0,1).
	if mk(1, 0).LessEqual(mk(0, 1)) || mk(0, 1).LessEqual(mk(1, 0)) {
		t.Error("products (1,0) and (0,1) should be incomparable")
	}
}

// TestAntichainInvariant checks that after arbitrary insertions no element
// of the antichain is less-or-equal another.
func TestAntichainInvariant(t *testing.T) {
	prop := func(raw []uint16) bool {
		a := NewAntichain[Product]()
		for i := 0; i+1 < len(raw); i += 2 {
			a.Insert(Product{Scalar(raw[i] % 16), Scalar(raw[i+1] % 16)})
		}
		el := a.Elements()
		for i := range el {
			for j := range el {
				if i != j && el[i].LessEqual(el[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAntichainDominates: after inserting a set, every inserted element is
// in advance of the antichain.
func TestAntichainDominates(t *testing.T) {
	prop := func(raw []uint16) bool {
		a := NewAntichain[Product]()
		var all []Product
		for i := 0; i+1 < len(raw); i += 2 {
			p := Product{Scalar(raw[i] % 16), Scalar(raw[i+1] % 16)}
			all = append(all, p)
			a.Insert(p)
		}
		for _, p := range all {
			if !a.LessEqual(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAntichainInsertSemantics covers insert/replace cases explicitly.
func TestAntichainInsertSemantics(t *testing.T) {
	a := NewAntichain[Product]()
	if !a.Insert(Product{2, 2}) {
		t.Fatal("insert into empty failed")
	}
	if a.Insert(Product{3, 3}) {
		t.Fatal("dominated element inserted")
	}
	if !a.Insert(Product{1, 3}) {
		t.Fatal("incomparable element rejected")
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d, want 2", a.Len())
	}
	if !a.Insert(Product{0, 0}) {
		t.Fatal("dominating element rejected")
	}
	if a.Len() != 1 {
		t.Fatalf("after dominating insert len = %d, want 1", a.Len())
	}
}

// TestMutableAntichainFrontier compares the incremental frontier against a
// from-scratch recomputation under random count updates.
func TestMutableAntichainFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMutableAntichain[Scalar]()
	counts := make(map[Scalar]int)
	for step := 0; step < 5000; step++ {
		tm := Scalar(rng.Intn(32))
		delta := 1
		if counts[tm] > 0 && rng.Intn(2) == 0 {
			delta = -1
		}
		counts[tm] += delta
		if counts[tm] == 0 {
			delete(counts, tm)
		}
		m.Update(tm, delta)

		want := NewAntichain[Scalar]()
		for tt := range counts {
			want.Insert(tt)
		}
		if !m.Frontier().Equal(want) {
			t.Fatalf("step %d: frontier %v, want %v", step, m.Frontier().Elements(), want.Elements())
		}
	}
}

// TestInAdvanceOf checks Definition 2 against examples from the paper.
func TestInAdvanceOf(t *testing.T) {
	// "a time 6 is in advance of 5"
	if !InAdvanceOf(Scalar(6), []Scalar{5}) {
		t.Error("6 should be in advance of frontier {5}")
	}
	if InAdvanceOf(Scalar(4), []Scalar{5}) {
		t.Error("4 should not be in advance of frontier {5}")
	}
	// Empty frontier: nothing is in advance of it.
	if InAdvanceOf(Scalar(4), nil) {
		t.Error("nothing is in advance of the empty frontier")
	}
}
