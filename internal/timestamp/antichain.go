package timestamp

// Antichain is a set of mutually incomparable timestamps, used to represent
// a frontier (Definition 1): no element is strictly greater than another,
// and all future message timestamps are in advance of some element.
//
// The zero value is an empty antichain, which represents the frontier of a
// completed computation (no timestamps can arrive).
type Antichain[T Timestamp[T]] struct {
	elements []T
}

// NewAntichain returns an antichain containing the minimal elements of ts.
func NewAntichain[T Timestamp[T]](ts ...T) *Antichain[T] {
	a := &Antichain[T]{}
	for _, t := range ts {
		a.Insert(t)
	}
	return a
}

// Insert adds t to the antichain if no existing element is less than or
// equal to t, removing any elements that t is strictly less than. It
// reports whether t was inserted.
func (a *Antichain[T]) Insert(t T) bool {
	for _, e := range a.elements {
		if e.LessEqual(t) {
			return false
		}
	}
	keep := a.elements[:0]
	for _, e := range a.elements {
		if !t.LessEqual(e) {
			keep = append(keep, e)
		}
	}
	a.elements = append(keep, t)
	return true
}

// LessEqual reports whether some element of the antichain is less than or
// equal to t; that is, whether t is in advance of the frontier.
func (a *Antichain[T]) LessEqual(t T) bool {
	for _, e := range a.elements {
		if e.LessEqual(t) {
			return true
		}
	}
	return false
}

// LessThan reports whether some element of the antichain is strictly less
// than t.
func (a *Antichain[T]) LessThan(t T) bool {
	for _, e := range a.elements {
		if e.LessEqual(t) && e != t {
			return true
		}
	}
	return false
}

// Elements returns the antichain's elements. The returned slice aliases the
// antichain's storage and must not be modified.
func (a *Antichain[T]) Elements() []T { return a.elements }

// Len returns the number of elements in the antichain.
func (a *Antichain[T]) Len() int { return len(a.elements) }

// Empty reports whether the antichain has no elements.
func (a *Antichain[T]) Empty() bool { return len(a.elements) == 0 }

// Clear removes all elements.
func (a *Antichain[T]) Clear() { a.elements = a.elements[:0] }

// Equal reports whether a and b contain the same elements (as sets).
func (a *Antichain[T]) Equal(b *Antichain[T]) bool {
	if len(a.elements) != len(b.elements) {
		return false
	}
	for _, e := range a.elements {
		found := false
		for _, f := range b.elements {
			if e == f {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Clone returns a copy of the antichain.
func (a *Antichain[T]) Clone() *Antichain[T] {
	c := &Antichain[T]{elements: make([]T, len(a.elements))}
	copy(c.elements, a.elements)
	return c
}

// MutableAntichain tracks a multiset of timestamps under count updates and
// maintains the antichain of minimal elements with positive accumulated
// count. This is the data structure behind frontier computation: pointstamp
// occurrence counts change as messages are produced and consumed, and the
// frontier is the set of minimal still-occupied timestamps.
type MutableAntichain[T Timestamp[T]] struct {
	counts   map[T]int
	frontier Antichain[T]
	dirty    bool
}

// NewMutableAntichain returns an empty mutable antichain.
func NewMutableAntichain[T Timestamp[T]]() *MutableAntichain[T] {
	return &MutableAntichain[T]{counts: make(map[T]int)}
}

// Update adds delta to the occurrence count of t and reports whether the
// frontier may have changed. Counts may transiently accumulate to zero;
// entries at zero are dropped.
func (m *MutableAntichain[T]) Update(t T, delta int) bool {
	if delta == 0 {
		return false
	}
	c := m.counts[t] + delta
	if c < 0 {
		panic("timestamp: occurrence count went negative")
	}
	if c == 0 {
		delete(m.counts, t)
	} else {
		m.counts[t] = c
	}
	m.dirty = true
	return true
}

// Frontier returns the antichain of minimal timestamps with positive count.
func (m *MutableAntichain[T]) Frontier() *Antichain[T] {
	if m.dirty {
		m.frontier.Clear()
		for t := range m.counts {
			m.frontier.Insert(t)
		}
		m.dirty = false
	}
	return &m.frontier
}

// LessThan reports whether some still-occupied timestamp is strictly less
// than t.
func (m *MutableAntichain[T]) LessThan(t T) bool { return m.Frontier().LessThan(t) }

// LessEqual reports whether some still-occupied timestamp is less than or
// equal to t.
func (m *MutableAntichain[T]) LessEqual(t T) bool { return m.Frontier().LessEqual(t) }

// Empty reports whether no timestamps are occupied.
func (m *MutableAntichain[T]) Empty() bool { return len(m.counts) == 0 }
