// Package timestamp provides logical timestamps for timely dataflow.
//
// Timestamps are elements of a join-semilattice with a partial order. The
// dataflow runtime in this repository uses totally ordered Scalar times for
// its hot path, but frontiers are defined over partially ordered times in
// general (Definition 1 of the Megaphone paper), so this package also
// provides Product timestamps and Antichain frontiers in their general,
// partially ordered form.
package timestamp

import (
	"fmt"
	"math"
)

// Timestamp is the constraint satisfied by logical timestamp types.
//
// LessEqual must be a partial order (reflexive, antisymmetric, transitive),
// and Join must compute the least upper bound of the receiver and argument.
type Timestamp[T any] interface {
	comparable
	// LessEqual reports whether the receiver is less than or equal to t in
	// the timestamp partial order.
	LessEqual(t T) bool
	// Join returns the least upper bound of the receiver and t.
	Join(t T) T
	// Meet returns the greatest lower bound of the receiver and t.
	Meet(t T) T
}

// Scalar is a totally ordered timestamp: an unsigned integer, typically
// interpreted as nanoseconds of event time or as an epoch counter.
type Scalar uint64

// MaxScalar is the greatest Scalar timestamp. The runtime reserves it as a
// sentinel meaning "no further times" (an empty frontier); user data must
// carry timestamps strictly less than MaxScalar.
const MaxScalar Scalar = math.MaxUint64

// LessEqual reports s <= t.
func (s Scalar) LessEqual(t Scalar) bool { return s <= t }

// Less reports s < t.
func (s Scalar) Less(t Scalar) bool { return s < t }

// Join returns the maximum of s and t.
func (s Scalar) Join(t Scalar) Scalar {
	if s >= t {
		return s
	}
	return t
}

// Meet returns the minimum of s and t.
func (s Scalar) Meet(t Scalar) Scalar {
	if s <= t {
		return s
	}
	return t
}

// String formats the scalar, rendering the sentinel as "∞".
func (s Scalar) String() string {
	if s == MaxScalar {
		return "∞"
	}
	return fmt.Sprintf("%d", uint64(s))
}

// Product is a partially ordered pair of timestamps, ordered coordinate-wise:
// (a, b) <= (c, d) iff a <= c and b <= d. Product timestamps arise in nested
// scopes (outer epoch, inner iteration) and exercise the general, set-valued
// frontier machinery.
type Product struct {
	Outer Scalar
	Inner Scalar
}

// LessEqual reports whether p <= q coordinate-wise.
func (p Product) LessEqual(q Product) bool {
	return p.Outer <= q.Outer && p.Inner <= q.Inner
}

// Join returns the coordinate-wise maximum of p and q.
func (p Product) Join(q Product) Product {
	return Product{p.Outer.Join(q.Outer), p.Inner.Join(q.Inner)}
}

// Meet returns the coordinate-wise minimum of p and q.
func (p Product) Meet(q Product) Product {
	return Product{p.Outer.Meet(q.Outer), p.Inner.Meet(q.Inner)}
}

// String formats the product as "(outer, inner)".
func (p Product) String() string { return fmt.Sprintf("(%v, %v)", p.Outer, p.Inner) }

// InAdvanceOf reports whether time t is in advance of frontier elements
// (Definition 2 of the paper): t is greater than or equal to some element.
// An empty frontier has nothing in advance of it.
func InAdvanceOf[T Timestamp[T]](t T, frontier []T) bool {
	for _, f := range frontier {
		if f.LessEqual(t) {
			return true
		}
	}
	return false
}
