// Package binenc provides the primitive append/decode helpers shared by
// implementations of core.BinaryState and core.BinaryRec: varint and
// fixed-width integers, strings, and booleans, all in the append-to-slice
// style of the standard library's encoding/binary Append functions.
//
// Encoders append to a caller-supplied buffer and return the extended slice;
// decoders consume from the front of a slice and return the remainder, so a
// marshal/unmarshal pair composes by threading the buffer through the
// fields in order. Decoders never panic on short or malformed input; they
// return ErrShort (possibly wrapped) so a corrupt migration payload surfaces
// as an error on the receiving worker rather than a crash.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShort reports a truncated or malformed encoding.
var ErrShort = errors.New("binenc: short or malformed encoding")

// Count decodes a length prefix and validates it against the bytes that
// remain: every counted element must consume at least minBytes bytes, so a
// corrupt prefix fails here instead of sizing a huge allocation. Use it
// before make(map/slice, n) in decoders.
func Count(data []byte, minBytes int) (uint64, []byte, error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if minBytes > 0 && n > uint64(len(data))/uint64(minBytes) {
		return 0, nil, fmt.Errorf("count %d exceeds remaining %d bytes: %w", n, len(data), ErrShort)
	}
	return n, data, nil
}

// AppendUvarint appends x in unsigned varint encoding.
//
//megalint:hotpath
func AppendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// Uvarint decodes an unsigned varint from the front of data.
func Uvarint(data []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("uvarint: %w", ErrShort)
	}
	return x, data[n:], nil
}

// AppendVarint appends x in zig-zag signed varint encoding.
//
//megalint:hotpath
func AppendVarint(buf []byte, x int64) []byte {
	return binary.AppendVarint(buf, x)
}

// Varint decodes a zig-zag signed varint from the front of data.
func Varint(data []byte) (int64, []byte, error) {
	x, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("varint: %w", ErrShort)
	}
	return x, data[n:], nil
}

// AppendU64 appends x as a fixed-width little-endian 64-bit value. Fixed
// width trades a few bytes for branch-free decoding; use it for dense
// numeric arrays where most values are large or uniformly distributed.
//
//megalint:hotpath
func AppendU64(buf []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, x)
}

// U64 decodes a fixed-width little-endian 64-bit value.
func U64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("u64: %w", ErrShort)
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// AppendU64s appends a length-prefixed slice of fixed-width 64-bit values.
//
//megalint:hotpath
func AppendU64s(buf []byte, xs []uint64) []byte {
	buf = AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = AppendU64(buf, x)
	}
	return buf
}

// U64s decodes a length-prefixed slice of fixed-width 64-bit values.
func U64s(data []byte) ([]uint64, []byte, error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data))/8 {
		return nil, nil, fmt.Errorf("u64s: need %d values: %w", n, ErrShort)
	}
	xs := make([]uint64, n)
	for i := range xs {
		xs[i], data, _ = U64(data)
	}
	return xs, data, nil
}

// AppendString appends a length-prefixed string.
//
//megalint:hotpath
func AppendString(buf []byte, s string) []byte {
	buf = AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// String decodes a length-prefixed string.
func String(data []byte) (string, []byte, error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(data)) < n {
		return "", nil, fmt.Errorf("string: need %d bytes: %w", n, ErrShort)
	}
	return string(data[:n]), data[n:], nil
}

// AppendBool appends a boolean as one byte.
//
//megalint:hotpath
func AppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Bool decodes a one-byte boolean.
func Bool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("bool: %w", ErrShort)
	}
	return data[0] != 0, data[1:], nil
}
