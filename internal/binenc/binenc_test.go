package binenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestRoundTrips: every append/decode pair reconstructs its input and
// consumes exactly the bytes it wrote.
func TestRoundTrips(t *testing.T) {
	if err := quick.Check(func(x uint64, pre []byte) bool {
		buf := AppendUvarint(append([]byte(nil), pre...), x)
		got, rest, err := Uvarint(buf[len(pre):])
		return err == nil && got == x && len(rest) == 0
	}, nil); err != nil {
		t.Error("uvarint:", err)
	}
	if err := quick.Check(func(x int64) bool {
		got, rest, err := Varint(AppendVarint(nil, x))
		return err == nil && got == x && len(rest) == 0
	}, nil); err != nil {
		t.Error("varint:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		got, rest, err := U64(AppendU64(nil, x))
		return err == nil && got == x && len(rest) == 0
	}, nil); err != nil {
		t.Error("u64:", err)
	}
	if err := quick.Check(func(s string) bool {
		got, rest, err := String(AppendString(nil, s))
		return err == nil && got == s && len(rest) == 0
	}, nil); err != nil {
		t.Error("string:", err)
	}
	if err := quick.Check(func(xs []uint64) bool {
		got, rest, err := U64s(AppendU64s(nil, xs))
		if err != nil || len(rest) != 0 || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error("u64s:", err)
	}
}

// TestComposition: heterogeneous fields thread through one buffer.
func TestComposition(t *testing.T) {
	buf := AppendUvarint(nil, 300)
	buf = AppendString(buf, "item")
	buf = AppendBool(buf, true)
	buf = AppendU64(buf, math.MaxUint64)
	buf = AppendVarint(buf, -77)

	x, rest, err := Uvarint(buf)
	if err != nil || x != 300 {
		t.Fatalf("uvarint: %v %v", x, err)
	}
	s, rest, err := String(rest)
	if err != nil || s != "item" {
		t.Fatalf("string: %q %v", s, err)
	}
	b, rest, err := Bool(rest)
	if err != nil || !b {
		t.Fatalf("bool: %v %v", b, err)
	}
	u, rest, err := U64(rest)
	if err != nil || u != math.MaxUint64 {
		t.Fatalf("u64: %v %v", u, err)
	}
	v, rest, err := Varint(rest)
	if err != nil || v != -77 {
		t.Fatalf("varint: %v %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

// TestShortInputs: truncated encodings error rather than panic, at every
// truncation point.
func TestShortInputs(t *testing.T) {
	full := AppendString(AppendU64(AppendUvarint(nil, 1<<40), 42), "hello")
	decodeAll := func(data []byte) error {
		_, data, err := Uvarint(data)
		if err != nil {
			return err
		}
		if _, data, err = U64(data); err != nil {
			return err
		}
		_, _, err = String(data)
		return err
	}
	if err := decodeAll(full); err != nil {
		t.Fatalf("full payload failed: %v", err)
	}
	for i := 0; i < len(full); i++ {
		if decodeAll(full[:i]) == nil {
			t.Fatalf("truncation at %d decoded fully", i)
		}
	}
	if _, _, err := Bool(nil); err == nil {
		t.Error("Bool(nil) succeeded")
	}
	if _, _, err := String([]byte{200}); err == nil {
		t.Error("String on bare continuation byte succeeded")
	}
	// A declared length far beyond the buffer must not allocate or read out
	// of range.
	huge := AppendUvarint(nil, math.MaxUint64)
	if _, _, err := String(huge); err == nil {
		t.Error("String with absurd length succeeded")
	}
	if _, _, err := U64s(huge); err == nil {
		t.Error("U64s with absurd length succeeded")
	}
}

// TestAppendExtends: appending to a buffer with existing content preserves
// the prefix.
func TestAppendExtends(t *testing.T) {
	pre := []byte("prefix")
	buf := AppendString(append([]byte(nil), pre...), "tail")
	if !bytes.HasPrefix(buf, pre) {
		t.Fatalf("prefix clobbered: %q", buf)
	}
}
