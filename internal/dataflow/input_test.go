package dataflow_test

import (
	"testing"

	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// buildTrivial returns an execution with one input and a sink.
func buildTrivial() (*dataflow.Execution, *dataflow.InputHandle[int]) {
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var in *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[int](w, "in")
		in = h
		operators.Sink(w, "sink", s, func(dataflow.Time, []int) {})
	})
	return exec, in
}

// TestSendBehindEpochPanics: sending at a time earlier than the epoch is a
// contract violation and must fail loudly.
func TestSendBehindEpochPanics(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.AdvanceTo(10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SendAt behind epoch did not panic")
			}
		}()
		in.SendAt(5, 1)
	}()
	in.Close()
	exec.Wait()
}

// TestAdvanceBackwardsPanics: epochs are monotone.
func TestAdvanceBackwardsPanics(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.AdvanceTo(10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo backwards did not panic")
			}
		}()
		in.AdvanceTo(3)
	}()
	in.Close()
	exec.Wait()
}

// TestSendAfterClosePanics: a closed input rejects records.
func TestSendAfterClosePanics(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SendAt after Close did not panic")
			}
		}()
		in.SendAt(1, 1)
	}()
	exec.Wait()
}

// TestAdvanceAfterCloseIsNoop: advancing a closed input is tolerated.
func TestAdvanceAfterCloseIsNoop(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.Close()
	in.AdvanceTo(100) // must not panic
	exec.Wait()
}

// TestEmptySendIsNoop: zero-record batches do not create pointstamps.
func TestEmptySendIsNoop(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.SendAt(1)
	in.SendBatchAt(2, nil)
	in.Close()
	exec.Wait()
	if !exec.Tracker().Idle() {
		t.Error("tracker not idle after empty sends")
	}
}

// TestImmediateClose: a dataflow whose inputs close without any data
// terminates.
func TestImmediateClose(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	in.Close()
	exec.Wait()
}

// TestManyEpochsNoData: pure epoch advancement drains cleanly.
func TestManyEpochsNoData(t *testing.T) {
	exec, in := buildTrivial()
	exec.Start()
	for e := dataflow.Time(1); e <= 10000; e++ {
		in.AdvanceTo(e)
	}
	in.Close()
	exec.Wait()
}
