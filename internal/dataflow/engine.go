// Package dataflow is a timely-dataflow-style streaming runtime: a fixed
// dataflow graph of operators is instantiated on every worker, records flow
// along exchange channels carrying logical timestamps, and a shared progress
// tracker (internal/progress) reports to every operator input a frontier of
// timestamps that may still arrive.
//
// The package reproduces the subset of timely dataflow that Megaphone
// depends on: asynchronous data-parallel workers, logical timestamps,
// frontiers, capability holds, exchange/pipeline/broadcast channel contracts
// ("pacts"), inputs with epochs, and probes for out-of-band frontier
// observation. Dataflows are acyclic and operators never advance message
// timestamps, which keeps the progress summary exact.
//
// Workers are goroutines; cross-worker channels within a process are Go
// channels. With a Mesh (Config.Mesh) one dataflow spans several OS
// processes: remote edges serialize through per-edge wire codecs onto a
// framed TCP transport and progress deltas are broadcast so every process's
// tracker converges. See DESIGN.md for why the in-process substitution
// preserves the paper's behaviour and for the mesh's ordering guarantees.
package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"megaphone/internal/progress"
	"megaphone/internal/timestamp"
)

// Time is the logical timestamp carried by every record batch.
type Time = timestamp.Scalar

// None is the frontier value meaning "no further timestamps": the port or
// computation has completed.
const None = timestamp.MaxScalar

// Config configures an execution.
type Config struct {
	// Workers is the number of worker goroutines in this process. Defaults
	// to 1. With a Mesh, every process contributes Workers workers and the
	// execution spans Workers * Mesh.Procs() data-parallel workers.
	Workers int
	// InboxSize is the per-worker channel buffer, in batches. Defaults to
	// 4096.
	InboxSize int
	// Mesh, when non-nil, spreads the execution across OS processes: this
	// process runs workers [Process*Workers, (Process+1)*Workers) of the
	// global index space, cross-process edges serialize through the
	// transport, and progress deltas are broadcast so every process's
	// tracker converges. nil keeps today's single-process execution.
	Mesh *Mesh
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 4096
	}
}

// message is one timestamped batch of records in flight to a worker.
type message struct {
	edge progress.Edge
	time Time
	data any // a []T, owned by the receiver
}

// canonEdge is the canonical (worker-independent) description of an edge.
type canonEdge struct {
	dst progress.Port
}

// Execution owns a dataflow computation: the shared graph summary, the
// tracker, and the workers. Build the graph with Build, start the workers
// with Start, drive any inputs, and Wait for completion.
type Execution struct {
	cfg     Config
	gb      *progress.GraphBuilder
	tracker *progress.Tracker
	workers []*Worker // this process's workers, indexed by local position

	// Multi-process state: nil mesh means totalWorkers == cfg.Workers and
	// firstGlobal == 0, i.e. exactly the single-process execution.
	mesh         *Mesh
	totalWorkers int
	firstGlobal  int         // global index of workers[0]
	edgeCodecs   []wireCodec // per canonical edge, registered by Connect

	// canonical structure, registered by worker 0 and verified by others
	canonNodes []struct{ in, out int }
	canonEdges []canonEdge

	pendingHolds []pendingHold

	// Membership views: which processes' workers are live, per timestamp
	// range. Immutable snapshots swapped atomically; see InstallView.
	views atomic.Pointer[[]memView]

	// Pause/halt machinery for membership barriers (see Pause, Halt).
	pauseMu   sync.Mutex
	pauseCond *sync.Cond
	pauseReq  atomic.Bool
	pausedN   int
	halted    atomic.Bool

	started bool
	wg      sync.WaitGroup
}

// memView is one membership view: from time `from` onward, workers of
// process p participate iff active[p]. Partitioners consult the view for
// the timestamp they are sending at, so a reconfiguration commits at a
// chosen epoch boundary rather than at some racy wall-clock instant.
type memView struct {
	from    Time
	active  []bool // per process
	workers []int  // global indices of workers on active processes
	wpp     int    // workers per process
	full    bool   // every process active (fast path)
}

// workerActive reports whether global worker index w participates.
func (v *memView) workerActive(w int) bool {
	return v.full || v.active[w/v.wpp]
}

// viewAt returns the membership view governing sends at time t.
func (e *Execution) viewAt(t Time) *memView {
	vs := *e.views.Load()
	for i := len(vs) - 1; i > 0; i-- {
		if t >= vs[i].from {
			return &vs[i]
		}
	}
	return &vs[0]
}

// makeView assembles a view snapshot from a per-process activity vector.
func (e *Execution) makeView(from Time, active []bool) memView {
	procs := 1
	if e.mesh != nil {
		procs = e.mesh.procs
	}
	if len(active) != procs {
		panic(fmt.Sprintf("dataflow: view names %d processes, cluster has %d", len(active), procs))
	}
	v := memView{from: from, active: append([]bool(nil), active...), wpp: e.cfg.Workers, full: true}
	for p, a := range v.active {
		if !a {
			v.full = false
			continue
		}
		for i := 0; i < e.cfg.Workers; i++ {
			v.workers = append(v.workers, p*e.cfg.Workers+i)
		}
	}
	if len(v.workers) == 0 {
		panic("dataflow: membership view with no active process")
	}
	return v
}

// InstallView declares that from time `from` onward the workers of process
// p participate iff active[p]. Every process must install the same view
// before any worker sends at a time >= from (the membership protocol
// chooses `from` with a margin beyond every input's current epoch, exactly
// like migration commit times). Views must be installed in increasing
// `from` order; reinstalling the current boundary replaces it.
func (e *Execution) InstallView(from Time, active []bool) {
	nv := e.makeView(from, active)
	for {
		old := e.views.Load()
		vs := *old
		last := vs[len(vs)-1]
		if from < last.from {
			panic(fmt.Sprintf("dataflow: view at %v installed after view at %v", from, last.from))
		}
		next := make([]memView, len(vs), len(vs)+1)
		copy(next, vs)
		if from == last.from {
			next[len(next)-1] = nv
		} else {
			next = append(next, nv)
		}
		if e.views.CompareAndSwap(old, &next) {
			return
		}
	}
}

// ActiveAt reports whether process p's workers participate at time t.
func (e *Execution) ActiveAt(t Time, p int) bool {
	v := e.viewAt(t)
	return v.full || v.active[p]
}

// NewExecution creates an execution with the given configuration.
func NewExecution(cfg Config) *Execution {
	cfg.defaults()
	e := &Execution{cfg: cfg, gb: progress.NewGraphBuilder()}
	e.pauseCond = sync.NewCond(&e.pauseMu)
	e.totalWorkers = cfg.Workers
	var act []bool
	if cfg.Mesh != nil {
		cfg.Mesh.attach(e)
		e.mesh = cfg.Mesh
		e.totalWorkers = cfg.Workers * cfg.Mesh.procs
		e.firstGlobal = cfg.Mesh.proc * cfg.Workers
		act = cfg.Mesh.initialActive()
	} else {
		act = []bool{true}
	}
	views := []memView{e.makeView(0, act)}
	e.views.Store(&views)
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{
			exec:  e,
			index: e.firstGlobal + i,
			local: i,
			inbox: make(chan message, cfg.InboxSize),
			wake:  make(chan struct{}, 1),
		}
		if e.mesh != nil {
			w.coalBuf = make([][]byte, e.mesh.procs)
		}
		w.ctx.w = w
		e.workers = append(e.workers, w)
	}
	return e
}

// Build runs the graph constructor once per worker. The constructor must be
// deterministic: every worker must declare the same operators and edges in
// the same order. Worker 0's run registers the canonical structure; later
// runs are verified against it.
func (e *Execution) Build(build func(w *Worker)) {
	if e.started {
		panic("dataflow: Build after Start")
	}
	for _, w := range e.workers {
		build(w)
	}
	e.tracker = e.gb.Build()
	// Initial holds were recorded against port coordinates before the
	// tracker existed; resolve them to locations and apply. In a mesh,
	// every process's tracker must account the initial holds of all
	// processes' worker instances; the graph build is deterministic and
	// identical everywhere, so each process scales its own holds by the
	// count of *initially active* processes instead of exchanging them
	// (absent roster slots contribute nothing until they join, at which
	// point the membership barrier rebuilds every tracker from exchanged
	// inventories — see HoldInventory).
	procs := 1
	if e.mesh != nil {
		procs = 0
		for _, a := range e.mesh.initialActive() {
			if a {
				procs++
			}
		}
		e.tracker.TolerateNegativeCounts()
	}
	var b progress.Batch
	for _, h := range e.pendingHolds {
		b.Add(e.tracker.CapLocation(h.port), h.time, procs)
	}
	e.tracker.Apply(&b)
	for _, w := range e.workers {
		w.finalize()
	}
}

// Tracker exposes the progress tracker (for probes and tests).
func (e *Execution) Tracker() *progress.Tracker { return e.tracker }

// Start launches the worker goroutines.
func (e *Execution) Start() {
	if e.tracker == nil {
		panic("dataflow: Start before Build")
	}
	e.started = true
	if e.mesh != nil {
		e.mesh.start()
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *Worker) {
			defer e.wg.Done()
			w.run()
		}(w)
	}
}

// Wait blocks until the computation completes: all inputs closed, all
// messages drained, and all capability holds dropped. In a mesh this spans
// the whole cluster — the local tracker only drains once every process's
// deltas cancelled — and Wait additionally runs the cross-process shutdown
// barrier before returning, so the transport is closed afterwards.
func (e *Execution) Wait() {
	e.wg.Wait()
	if e.mesh != nil {
		e.mesh.finish()
	}
}

// Err reports the fatal cross-process fabric error that aborted this
// execution, if any: a peer session unreachable past its dial timeout kills
// the transport, halts the local workers (so Wait returns instead of
// wedging) and lands here. Nil for single-process executions and for runs
// that completed or shut down in an orderly way. Check it after Wait.
func (e *Execution) Err() error {
	if e.mesh == nil {
		return nil
	}
	return e.mesh.Err()
}

// Pause parks every local worker at a safe point and returns once all are
// parked: no operator logic is running, so operator-owned state (capability
// holds in particular) may be read by the caller without races. Workers stay
// parked until Resume. Pause is the local half of a cluster-wide membership
// barrier: it is only meaningful once the processes have also drained data
// in flight among themselves (frontier at the agreed epoch, wire counters
// stable), which the membership protocol establishes before calling it.
func (e *Execution) Pause() {
	e.pauseReq.Store(true)
	for _, w := range e.workers {
		w.poke()
	}
	e.pauseMu.Lock()
	for e.pausedN < len(e.workers) {
		e.pauseCond.Wait()
	}
	e.pauseMu.Unlock()
}

// Resume releases workers parked by Pause and waits until all have left the
// pause point.
func (e *Execution) Resume() {
	e.pauseMu.Lock()
	e.pauseReq.Store(false)
	e.pauseCond.Broadcast()
	for e.pausedN > 0 {
		e.pauseCond.Wait()
	}
	e.pauseMu.Unlock()
	for _, w := range e.workers {
		w.poke()
	}
}

// Halt makes every local worker exit its run loop regardless of tracker
// state. A leaving process cannot wait for the global computation to drain
// (it runs on without us); Halt is its local exit, and the crash fixtures'
// stand-in for process death. Do not call while workers are parked in Pause
// (Resume first).
func (e *Execution) Halt() {
	e.halted.Store(true)
	for _, w := range e.workers {
		w.poke()
	}
}

// HoldInventory appends one (+1) delta per live capability hold of this
// process's operator instances — the process's genuine contribution to the
// global pointstamp multiset at quiescence (messages in flight and queued
// batches are excluded, but at a membership barrier there are none). Must
// be called while workers are parked in Pause; holds are worker-owned.
func (e *Execution) HoldInventory(b *progress.Batch) {
	for _, w := range e.workers {
		for _, op := range w.ops {
			for port, h := range op.holds {
				if h != None {
					b.Add(e.tracker.CapLocation(progress.Port{Node: op.node, Port: port}), h, 1)
				}
			}
		}
	}
}

// PurgeDeferred invokes every local operator's registered purge (see
// OpBuilder.OnPurge) with the given cut, rewriting each operator's capability
// holds to what the purge returns. Must be called while workers are parked in
// Pause and must be followed by ResetProgress: holds are rewritten without
// progress deltas, which only the subsequent tracker rebuild can account.
func (e *Execution) PurgeDeferred(cut Time) {
	for _, w := range e.workers {
		for _, op := range w.ops {
			if op.purge == nil {
				continue
			}
			holds := op.purge(cut)
			if len(holds) != op.numOut {
				panic(fmt.Sprintf("dataflow: %s purge returned %d holds for %d output ports", op.name, len(holds), op.numOut))
			}
			op.holdCount = 0
			for port, h := range holds {
				op.holds[port] = h
				if h != None {
					op.holdCount++
				}
			}
		}
	}
}

// AppliedBounds reports the applied bound of every local worker, keyed by
// global worker index: the minimum over the worker's operators that
// registered one (see OpBuilder.OnBound). Workers without a bound-reporting
// operator are absent from the map. Must be called while workers are parked
// in Pause: bounds are operator state.
func (e *Execution) AppliedBounds() map[int]Time {
	out := make(map[int]Time)
	for _, w := range e.workers {
		for _, op := range w.ops {
			if op.bound == nil {
				continue
			}
			b := op.bound()
			if cur, ok := out[w.index]; !ok || b < cur {
				out[w.index] = b
			}
		}
	}
	return out
}

// ResetProgress rebuilds the local tracker from a summed inventory batch
// (see progress.Tracker.ResetCounts) and re-dirties every worker.
func (e *Execution) ResetProgress(b *progress.Batch) {
	e.tracker.ResetCounts(b)
	for _, w := range e.workers {
		w.poke()
	}
}

// Run is a convenience for Build + Start + Wait with no external input
// driving (inputs must be driven from within operator logic or closed during
// build).
func (e *Execution) Run(build func(w *Worker)) {
	e.Build(build)
	e.Start()
	e.Wait()
}

// poller reports pending out-of-band work (e.g. staged input) for one
// operator, so the worker can activate exactly that operator.
type poller struct {
	op      *opInstance
	pending func() bool
}

// pendingWatch defers an out-of-band frontier watch until the tracker
// exists (WatchFrontier is called during graph construction).
type pendingWatch struct {
	node progress.Node
	port progress.Port
}

// Worker is one data-parallel worker: it owns an instance of every operator
// in the dataflow and an inbox for batches sent to it by peers.
//
// Scheduling is dirty-set driven: an operator runs only when it was
// activated — it has queued input, the frontier of one of its input ports
// changed since it last computed frontiers (detected by comparing the
// tracker's per-port epochs, without locking), an out-of-band poller (staged
// input) reports work, or a watched port's frontier moved while the operator
// holds a capability. The sweep that detects activations still visits every
// operator (a few atomic loads each), but the expensive part of a wakeup —
// running logic, recomputing frontiers under the lock, applying deltas — is
// proportional to what actually changed rather than to the graph size.
type Worker struct {
	exec  *Execution
	index int // global worker index (equal to local in single-process runs)
	local int // position within this process's workers

	ops     []*opInstance // indexed by node id
	inbox   chan message
	wake    chan struct{}
	pollers []poller
	nodeSeq int // build-time counter for canonical verification
	edgeSeq int

	activeQ []*opInstance // FIFO of activated operators
	ctx     OpCtx         // reusable scheduling context (batch/remote/local scratch)

	wireBuf []byte // reusable cross-process record encode scratch
	progBuf []byte // reusable cross-process progress frame scratch

	// Cross-process coalescing state (mesh executions only): per destination
	// process, encoded records staged during the current scheduling, flushed
	// as one frame at the scheduling boundary or the size threshold.
	// coalDirty lists the destinations touched this scheduling.
	coalBuf   [][]byte
	coalDirty []int

	// Recycled batch envelopes, one free list per element type (see
	// batch.go). Only this worker's goroutine touches them.
	envPools []envPool

	pendingWatches []pendingWatch
}

// Index returns this worker's global index in [0, Peers).
func (w *Worker) Index() int { return w.index }

// Peers returns the number of workers across all processes.
func (w *Worker) Peers() int { return w.exec.totalWorkers }

// poke wakes the worker if it is parked.
//
//megalint:hotpath
func (w *Worker) poke() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// finalize resolves scheduling state that needs the frozen graph: dense
// port ids for epoch comparisons and deferred frontier watches.
func (w *Worker) finalize() {
	tr := w.exec.tracker
	for _, op := range w.ops {
		op.finalize(w)
		op.portIDs = op.portIDs[:0]
		for i := 0; i < op.numIn; i++ {
			op.portIDs = append(op.portIDs, tr.PortID(progress.Port{Node: op.node, Port: i}))
		}
		op.seenEpoch = make([]uint64, op.numIn)
		op.fdirty = true
	}
	for _, pw := range w.pendingWatches {
		op := w.ops[pw.node]
		op.watchIDs = append(op.watchIDs, tr.PortID(pw.port))
		op.watchSeen = append(op.watchSeen, 0)
	}
	w.pendingWatches = nil
}

// WatchFrontier registers an out-of-band frontier dependency: the operator
// that produces s is re-activated whenever the frontier at probe p's port
// may have moved, for as long as the operator holds a capability. Operators
// whose logic consults a probe (Megaphone's F waits for the S output
// frontier before shipping state) need this; dirty-set scheduling would
// otherwise never re-run them when only the probed frontier changed.
func (w *Worker) WatchFrontier(s StreamCore, p *Probe) {
	if s.w != w {
		panic("dataflow: WatchFrontier with a stream from a different worker")
	}
	w.pendingWatches = append(w.pendingWatches, pendingWatch{node: s.src.Node, port: p.port})
}

// activate queues op for scheduling if it is not already queued.
//
//megalint:hotpath
func (w *Worker) activate(op *opInstance) {
	if !op.active {
		op.active = true
		w.activeQ = append(w.activeQ, op)
	}
}

// route places an inbound message on the owning operator's input queue and
// activates the operator.
//
//megalint:hotpath
func (w *Worker) route(m message) {
	dst := w.exec.canonEdges[m.edge].dst
	op := w.ops[dst.Node]
	op.queues[dst.Port] = append(op.queues[dst.Port], batchIn{time: m.time, data: m.data})
	w.activate(op)
}

// drainInbox moves all currently queued inbound messages to operator queues.
//
//megalint:hotpath
func (w *Worker) drainInbox() bool {
	any := false
	for {
		select {
		case m := <-w.inbox:
			w.route(m)
			any = true
		default:
			return any
		}
	}
}

// sweep activates operators with out-of-band or frontier-driven work: input
// operators whose poller reports staged records, operators whose input-port
// epochs moved since their frontiers were last computed, and
// capability-holding operators whose watched ports moved. It reads only the
// tracker's atomics — no locks. Reports whether anything was activated.
//
//megalint:hotpath
func (w *Worker) sweep() bool {
	tr := w.exec.tracker
	any := false
	for i := range w.pollers {
		if w.pollers[i].pending() && !w.pollers[i].op.active {
			w.activate(w.pollers[i].op)
			any = true
		}
	}
	for _, op := range w.ops {
		if !op.fdirty {
			for j, id := range op.portIDs {
				if tr.PortEpoch(id) != op.seenEpoch[j] {
					op.fdirty = true
					break
				}
			}
		}
		if op.fdirty && !op.active {
			w.activate(op)
			any = true
		}
		if op.holdCount > 0 {
			for j, id := range op.watchIDs {
				if e := tr.PortEpoch(id); e != op.watchSeen[j] {
					op.watchSeen[j] = e
					if !op.active {
						w.activate(op)
						any = true
					}
				}
			}
		}
	}
	return any
}

// run is the worker event loop: drain inbound batches, run the activated
// operators (running one may activate others), and park until new work can
// exist. The loop exits when the tracker reports no live pointstamps
// anywhere.
// pausePoint parks the worker inside Pause's barrier until Resume.
func (w *Worker) pausePoint() {
	e := w.exec
	e.pauseMu.Lock()
	e.pausedN++
	e.pauseCond.Broadcast()
	for e.pauseReq.Load() {
		e.pauseCond.Wait()
	}
	e.pausedN--
	e.pauseCond.Broadcast()
	e.pauseMu.Unlock()
}

func (w *Worker) run() {
	tr := w.exec.tracker
	for {
		if w.exec.halted.Load() {
			return
		}
		if w.exec.pauseReq.Load() {
			w.pausePoint()
			continue
		}
		w.drainInbox()
		w.sweep()
		for i := 0; i < len(w.activeQ); i++ {
			op := w.activeQ[i]
			op.active = false
			w.schedule(op)
		}
		w.activeQ = w.activeQ[:0]
		v, idle := tr.Snapshot()
		if idle {
			return
		}
		// Park. Register the wake latch before the re-checks so a progress
		// change between a check and the select is not lost: any effective
		// Apply after registration pokes it. A stale latched token only
		// causes one harmless extra loop.
		tr.Notify(w.wake)
		moved := w.drainInbox()
		if w.sweep() {
			moved = true
		}
		if v2, _ := tr.Snapshot(); moved || v2 != v {
			continue
		}
		select {
		case m := <-w.inbox:
			w.route(m)
		case <-w.wake:
		}
	}
}

// schedule runs one operator's logic with a context exposing its queued
// input, input frontiers, and output ports, then atomically applies the
// progress consequences and releases any cross-worker sends.
//
// Frontiers are recomputed (one tracker lock) only when an input port's
// epoch moved since the last computation; otherwise the cached values are
// exact. The context's delta batch and send buffers are reused across
// schedulings, so a steady-state scheduling performs one lock acquisition
// (the Apply) and no allocations.
//
//megalint:hotpath
func (w *Worker) schedule(op *opInstance) {
	tr := w.exec.tracker
	if op.fdirty {
		// Record epochs before reading frontiers: a concurrent change lands
		// either in the values read (harmless) or in a later epoch bump that
		// re-dirties the operator.
		for j, id := range op.portIDs {
			op.seenEpoch[j] = tr.PortEpoch(id)
		}
		op.fcache = tr.Frontiers(op.node, op.numIn, op.fcache)
		op.minF = None
		for _, f := range op.fcache {
			if f < op.minF {
				op.minF = f
			}
		}
		op.fdirty = false
	}
	c := &w.ctx
	c.op = op
	c.frontiers = op.fcache
	c.minFrontier = op.minF
	c.batch.Reset()
	c.remote = c.remote[:0]
	c.local = c.local[:0]
	op.logic(c)
	// First make all produced pointstamps and hold changes visible, then
	// release the messages themselves: a receiver can never observe a
	// message whose pointstamp is unaccounted. Across processes the same
	// invariant holds per connection: the progress broadcast is enqueued
	// before this scheduling's data frames, and the transport preserves
	// per-peer FIFO order.
	tr.Apply(&c.batch)
	if w.exec.mesh != nil && len(c.batch.Deltas) > 0 {
		w.broadcastProgress(&c.batch)
	}
	for i := range c.remote {
		w.send(c.remote[i])
	}
	if len(w.coalDirty) > 0 {
		// Ship the records staged for remote processes before this
		// scheduling ends: coalescing batches within a scheduling, never
		// across them.
		w.flushRemotes()
	}
	for i := range c.local {
		w.route(c.local[i])
	}
	c.op = nil
}

// send delivers a message to a peer worker: remote peers go through the
// mesh (whose per-peer queues never block, so no cross-process send
// deadlock exists), local peers through their inbox channel, draining our
// own inbox while the peer's inbox is full to avoid send-send deadlocks.
//
//megalint:hotpath
func (w *Worker) send(m outMsg) {
	li := m.peer - w.exec.firstGlobal
	if li < 0 || li >= len(w.exec.workers) {
		w.sendRemote(m)
		return
	}
	target := w.exec.workers[li]
	for {
		select {
		case target.inbox <- m.msg:
			target.poke()
			return
		default:
			if !w.drainInbox() {
				// Peer is full and we have nothing to drain; block for real.
				target.inbox <- m.msg
				target.poke()
				return
			}
		}
	}
}

type outMsg struct {
	peer int
	msg  message
}

func (w *Worker) String() string { return fmt.Sprintf("worker[%d/%d]", w.index, w.Peers()) }
