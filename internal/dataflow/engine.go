// Package dataflow is a timely-dataflow-style streaming runtime: a fixed
// dataflow graph of operators is instantiated on every worker, records flow
// along exchange channels carrying logical timestamps, and a shared progress
// tracker (internal/progress) reports to every operator input a frontier of
// timestamps that may still arrive.
//
// The package reproduces the subset of timely dataflow that Megaphone
// depends on: asynchronous data-parallel workers, logical timestamps,
// frontiers, capability holds, exchange/pipeline/broadcast channel contracts
// ("pacts"), inputs with epochs, and probes for out-of-band frontier
// observation. Dataflows are acyclic and operators never advance message
// timestamps, which keeps the progress summary exact.
//
// Workers are goroutines within one process; cross-worker channels are Go
// channels. See DESIGN.md for why this substitution preserves the paper's
// behaviour.
package dataflow

import (
	"fmt"
	"sync"

	"megaphone/internal/progress"
	"megaphone/internal/timestamp"
)

// Time is the logical timestamp carried by every record batch.
type Time = timestamp.Scalar

// None is the frontier value meaning "no further timestamps": the port or
// computation has completed.
const None = timestamp.MaxScalar

// Config configures an execution.
type Config struct {
	// Workers is the number of worker goroutines. Defaults to 1.
	Workers int
	// InboxSize is the per-worker channel buffer, in batches. Defaults to
	// 4096.
	InboxSize int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 4096
	}
}

// message is one timestamped batch of records in flight to a worker.
type message struct {
	edge progress.Edge
	time Time
	data any // a []T, owned by the receiver
}

// canonEdge is the canonical (worker-independent) description of an edge.
type canonEdge struct {
	dst progress.Port
}

// Execution owns a dataflow computation: the shared graph summary, the
// tracker, and the workers. Build the graph with Build, start the workers
// with Start, drive any inputs, and Wait for completion.
type Execution struct {
	cfg     Config
	gb      *progress.GraphBuilder
	tracker *progress.Tracker
	workers []*Worker

	// canonical structure, registered by worker 0 and verified by others
	canonNodes []struct{ in, out int }
	canonEdges []canonEdge

	pendingHolds []pendingHold

	started bool
	wg      sync.WaitGroup
}

// NewExecution creates an execution with the given configuration.
func NewExecution(cfg Config) *Execution {
	cfg.defaults()
	e := &Execution{cfg: cfg, gb: progress.NewGraphBuilder()}
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{
			exec:  e,
			index: i,
			inbox: make(chan message, cfg.InboxSize),
			wake:  make(chan struct{}, 1),
		}
		e.workers = append(e.workers, w)
	}
	return e
}

// Build runs the graph constructor once per worker. The constructor must be
// deterministic: every worker must declare the same operators and edges in
// the same order. Worker 0's run registers the canonical structure; later
// runs are verified against it.
func (e *Execution) Build(build func(w *Worker)) {
	if e.started {
		panic("dataflow: Build after Start")
	}
	for _, w := range e.workers {
		build(w)
	}
	e.tracker = e.gb.Build()
	// Initial holds were recorded against port coordinates before the
	// tracker existed; resolve them to locations and apply.
	var b progress.Batch
	for _, h := range e.pendingHolds {
		b.Add(e.tracker.CapLocation(h.port), h.time, 1)
	}
	e.tracker.Apply(&b)
	for _, w := range e.workers {
		w.finalize()
	}
}

// Tracker exposes the progress tracker (for probes and tests).
func (e *Execution) Tracker() *progress.Tracker { return e.tracker }

// Start launches the worker goroutines.
func (e *Execution) Start() {
	if e.tracker == nil {
		panic("dataflow: Start before Build")
	}
	e.started = true
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *Worker) {
			defer e.wg.Done()
			w.run()
		}(w)
	}
}

// Wait blocks until the computation completes: all inputs closed, all
// messages drained, and all capability holds dropped.
func (e *Execution) Wait() { e.wg.Wait() }

// Run is a convenience for Build + Start + Wait with no external input
// driving (inputs must be driven from within operator logic or closed during
// build).
func (e *Execution) Run(build func(w *Worker)) {
	e.Build(build)
	e.Start()
	e.Wait()
}

// Worker is one data-parallel worker: it owns an instance of every operator
// in the dataflow and an inbox for batches sent to it by peers.
type Worker struct {
	exec  *Execution
	index int

	ops      []*opInstance // indexed by node id
	inbox    chan message
	wake     chan struct{}
	pollers  []func() bool // report pending out-of-band work (e.g. staged input)
	nodeSeq  int           // build-time counter for canonical verification
	edgeSeq  int
	frontier []Time // scratch
}

// Index returns this worker's index in [0, Peers).
func (w *Worker) Index() int { return w.index }

// Peers returns the number of workers.
func (w *Worker) Peers() int { return w.exec.cfg.Workers }

// poke wakes the worker if it is parked.
func (w *Worker) poke() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// finalize wires each operator's outgoing edges after the whole graph is
// known.
func (w *Worker) finalize() {
	for _, op := range w.ops {
		op.finalize(w)
	}
}

// route places an inbound message on the owning operator's input queue.
func (w *Worker) route(m message) {
	dst := w.exec.canonEdges[m.edge].dst
	op := w.ops[dst.Node]
	op.queues[dst.Port] = append(op.queues[dst.Port], batchIn{time: m.time, data: m.data})
}

// drainInbox moves all currently queued inbound messages to operator queues.
func (w *Worker) drainInbox() bool {
	any := false
	for {
		select {
		case m := <-w.inbox:
			w.route(m)
			any = true
		default:
			return any
		}
	}
}

// hasLocalWork reports whether any operator has queued input or staged
// out-of-band work.
func (w *Worker) hasLocalWork() bool {
	for _, op := range w.ops {
		for _, q := range op.queues {
			if len(q) > 0 {
				return true
			}
		}
	}
	for _, p := range w.pollers {
		if p() {
			return true
		}
	}
	return false
}

// run is the worker event loop: drain inbound batches, schedule every
// operator, and park until new work can exist. The loop exits when the
// tracker reports no live pointstamps anywhere.
func (w *Worker) run() {
	tr := w.exec.tracker
	for {
		v := tr.Version()
		w.drainInbox()
		for _, op := range w.ops {
			w.schedule(op)
		}
		if tr.Idle() {
			return
		}
		// Park. Take the wait channel before the re-checks so a progress
		// change between a check and the select is not lost. If anything
		// changed anywhere since this iteration began, some operator may
		// have been scheduled against a stale frontier — loop again.
		wc := tr.WaitChan()
		if w.drainInbox() || w.hasLocalWork() || tr.Version() != v {
			continue
		}
		select {
		case m := <-w.inbox:
			w.route(m)
		case <-w.wake:
		case <-wc:
		}
	}
}

// schedule runs one operator's logic with a context exposing its queued
// input, input frontiers, and output ports, then atomically applies the
// progress consequences and releases any cross-worker sends.
func (w *Worker) schedule(op *opInstance) {
	c := OpCtx{w: w, op: op}
	w.frontier = w.exec.tracker.Frontiers(op.node, op.numIn, w.frontier)
	c.frontiers = w.frontier
	c.minFrontier = None
	for _, f := range c.frontiers {
		if f < c.minFrontier {
			c.minFrontier = f
		}
	}
	op.logic(&c)
	// First make all produced pointstamps and hold changes visible, then
	// release the messages themselves: a receiver can never observe a
	// message whose pointstamp is unaccounted.
	w.exec.tracker.Apply(&c.batch)
	for _, m := range c.remote {
		w.send(m)
	}
	for _, m := range c.local {
		w.route(m)
	}
}

// send delivers a message to a peer worker, draining our own inbox while the
// peer's inbox is full to avoid send-send deadlocks.
func (w *Worker) send(m outMsg) {
	target := w.exec.workers[m.peer]
	for {
		select {
		case target.inbox <- m.msg:
			target.poke()
			return
		default:
			if !w.drainInbox() {
				// Peer is full and we have nothing to drain; block for real.
				target.inbox <- m.msg
				target.poke()
				return
			}
		}
	}
}

type outMsg struct {
	peer int
	msg  message
}

func (w *Worker) String() string { return fmt.Sprintf("worker[%d/%d]", w.index, w.Peers()) }
