package dataflow_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// TestPipelineMap checks that a single-worker map dataflow delivers every
// record exactly once and completes.
func TestPipelineMap(t *testing.T) {
	var sum atomic.Int64
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var input *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[int](w, "input")
		input = in
		doubled := operators.Map(w, "double", s, func(x int) int { return 2 * x })
		operators.Sink(w, "sink", doubled, func(_ dataflow.Time, data []int) {
			for _, x := range data {
				sum.Add(int64(x))
			}
		})
	})
	exec.Start()
	for i := 1; i <= 100; i++ {
		input.SendAt(dataflow.Time(i), i)
	}
	input.Close()
	exec.Wait()
	if got, want := sum.Load(), int64(100*101); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestExchangeDistributes checks that records exchanged by key land on the
// worker the hash designates, with multiple workers.
func TestExchangeDistributes(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	seen := make(map[int]int) // record -> worker index
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	inputs := make([]*dataflow.InputHandle[int], 0, workers)
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[int](w, "input")
		inputs = append(inputs, in)
		ex := operators.ExchangeBy(w, "exchange", s, func(x int) uint64 { return uint64(x) })
		idx := w.Index()
		operators.Sink(w, "sink", ex, func(_ dataflow.Time, data []int) {
			mu.Lock()
			for _, x := range data {
				seen[x] = idx
			}
			mu.Unlock()
		})
	})
	exec.Start()
	for i := 0; i < 1000; i++ {
		inputs[i%workers].SendAt(dataflow.Time(i), i)
	}
	for _, in := range inputs {
		in.Close()
	}
	exec.Wait()
	if len(seen) != 1000 {
		t.Fatalf("received %d records, want 1000", len(seen))
	}
	for x, w := range seen {
		if want := x % workers; w != want {
			t.Errorf("record %d landed on worker %d, want %d", x, w, want)
		}
	}
}

// TestProbeTracksEpochs verifies that a probe's frontier follows the input
// epoch and reaches None at completion.
func TestProbeTracksEpochs(t *testing.T) {
	exec := dataflow.NewExecution(dataflow.Config{Workers: 2})
	var input *dataflow.InputHandle[int]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[int](w, "input")
		if w.Index() == 0 {
			input = in
		} else {
			in.Close()
		}
		p := dataflow.NewProbe(w, s)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	input.SendAt(5, 1, 2, 3)
	input.AdvanceTo(10)
	waitUntil(t, func() bool { return !probe.LessThan(10) })
	if probe.Done() {
		t.Fatalf("probe done before input closed")
	}
	input.Close()
	exec.Wait()
	if !probe.Done() {
		t.Fatalf("probe not done after completion")
	}
}

// TestUnaryNotifyOrdersTimes verifies the frontier-driven operator sees
// times in order even when sent out of order within an epoch window.
func TestUnaryNotifyOrdersTimes(t *testing.T) {
	var mu sync.Mutex
	var order []dataflow.Time
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var input *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[int](w, "input")
		input = in
		out := operators.UnaryNotify(w, "notify", s, dataflow.Pipeline[int]{},
			func() struct{} { return struct{}{} },
			func(tm dataflow.Time, data []int, _ struct{}, emit func(int)) {
				mu.Lock()
				order = append(order, tm)
				mu.Unlock()
				for _, x := range data {
					emit(x)
				}
			})
		operators.Sink(w, "sink", out, func(dataflow.Time, []int) {})
	})
	exec.Start()
	// Send at out-of-order times within the open epoch.
	input.SendAt(7, 1)
	input.SendAt(3, 2)
	input.SendAt(5, 3)
	input.Close()
	exec.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("saw %d times, want 3", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("times out of order: %v", order)
		}
	}
}

// TestStateMachineCounts runs the canonical word-count on the native state
// machine across workers and checks totals.
func TestStateMachineCounts(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	final := make(map[string]int)
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	inputs := make([]*dataflow.InputHandle[operators.KV[string, int]], 0, workers)
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[operators.KV[string, int]](w, "input")
		inputs = append(inputs, in)
		counts := operators.StateMachine(w, "count", s,
			func(k string) uint64 { return hashString(k) },
			func(k string, v int, st *int, emit func(operators.KV[string, int])) {
				*st += v
				emit(operators.KV[string, int]{Key: k, Val: *st})
			})
		operators.Sink(w, "sink", counts, func(_ dataflow.Time, data []operators.KV[string, int]) {
			mu.Lock()
			for _, kv := range data {
				if kv.Val > final[kv.Key] {
					final[kv.Key] = kv.Val
				}
			}
			mu.Unlock()
		})
	})
	exec.Start()
	words := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 500; i++ {
		w := words[i%len(words)]
		inputs[i%workers].SendAt(dataflow.Time(i), operators.KV[string, int]{Key: w, Val: 1})
	}
	for _, in := range inputs {
		in.Close()
	}
	exec.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, w := range words {
		if final[w] != 100 {
			t.Errorf("count[%s] = %d, want 100", w, final[w])
		}
	}
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// waitUntil polls cond until it holds or a deadline passes. It must yield
// between polls: the condition is advanced by the worker goroutines, and a
// busy spin can exhaust its iterations before the scheduler ever runs them.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
