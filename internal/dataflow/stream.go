package dataflow

// Stream is a typed stream of timestamped batches of T. Batches are
// immutable once sent: multiple consumers may observe the same underlying
// slice and must not modify it.
type Stream[T any] struct {
	core StreamCore
}

// Core returns the type-erased stream.
func (s Stream[T]) Core() StreamCore { return s.core }

// Valid reports whether the stream was produced by a builder.
func (s Stream[T]) Valid() bool { return s.core.Valid() }

// Typed wraps a type-erased stream; the caller asserts its element type.
func Typed[T any](c StreamCore) Stream[T] { return Stream[T]{core: c} }

// Pact is a parallelization contract: it decides how batches on an edge are
// routed between workers.
type Pact[T any] interface {
	partitioner(peers int) Partitioner
}

// Pipeline keeps batches on the worker that produced them.
type Pipeline[T any] struct{}

func (Pipeline[T]) partitioner(peers int) Partitioner { return nil }

// Exchange routes each record to the worker given by its hash modulo the
// number of workers.
type Exchange[T any] struct {
	Hash func(T) uint64
}

func (e Exchange[T]) partitioner(peers int) Partitioner {
	hash := e.Hash
	if peers == 1 {
		// Identity: ship the (already boxed) input batch itself.
		out := make([]any, 1)
		return func(data any) []any {
			if len(data.([]T)) == 0 {
				return nil
			}
			out[0] = data
			return out
		}
	}
	return partitionBy[T](peers, func(r T) int { return int(hash(r) % uint64(peers)) })
}

// ExchangeTo routes each record to the worker index returned by To. This is
// the indirection Megaphone introduces: the routing decision is made by the
// sender against its routing table rather than by a static hash.
//
// The produced partitions never alias the input batch (they are copied into
// a fresh buffer), so a sender may reuse its input buffer across sends on
// ports whose edges all carry ExchangeTo.
type ExchangeTo[T any] struct {
	To func(T) int
}

func (e ExchangeTo[T]) partitioner(peers int) Partitioner {
	return partitionBy[T](peers, e.To)
}

// partitionBy builds a partitioner that splits each batch by a per-record
// destination. Records for all peers are copied into one contiguous buffer
// (the only allocation that outlives the call; it is owned by the
// receivers), and the result slice, destination table, and offset tables
// are scratch reused across calls — partitioners are per-worker and only
// invoked from their worker's scheduling loop.
func partitionBy[T any](peers int, to func(T) int) Partitioner {
	out := make([]any, peers)
	offs := make([]int32, peers+1)
	cur := make([]int32, peers)
	var dest []int32
	return func(data any) []any {
		in := data.([]T)
		if len(in) == 0 {
			return nil
		}
		if cap(dest) < len(in) {
			dest = make([]int32, len(in))
		}
		dest = dest[:len(in)]
		for i := range offs {
			offs[i] = 0
		}
		for i, r := range in {
			p := to(r)
			dest[i] = int32(p)
			offs[p+1]++
		}
		for p := 0; p < peers; p++ {
			offs[p+1] += offs[p]
			cur[p] = offs[p]
		}
		buf := make([]T, len(in))
		for i, r := range in {
			p := dest[i]
			buf[cur[p]] = r
			cur[p]++
		}
		for p := 0; p < peers; p++ {
			if a, b := offs[p], offs[p+1]; a < b {
				out[p] = buf[a:b:b]
			} else {
				out[p] = nil
			}
		}
		return out
	}
}

// Broadcast delivers every batch to every worker.
type Broadcast[T any] struct{}

func (Broadcast[T]) partitioner(peers int) Partitioner {
	out := make([]any, peers)
	return func(data any) []any {
		if len(data.([]T)) == 0 {
			return nil
		}
		for i := range out {
			// Share the boxed batch: batches are immutable after send.
			out[i] = data
		}
		return out
	}
}

// Connect attaches stream s to the next input of builder b under pact p,
// returning the input port index. In a multi-process execution Connect also
// registers the edge's wire codec (derived from T), which is what lets the
// edge's batches cross process boundaries; edges wired through the untyped
// AddInput cannot.
func Connect[T any](b *OpBuilder, s Stream[T], p Pact[T]) int {
	i := b.AddInput(s.core, p.partitioner(b.w.Peers()))
	if b.w.exec.mesh != nil {
		b.codecs[i] = wireCodecFor[T]()
	}
	return i
}

// SendBatch emits a typed batch on output port o at time t.
func SendBatch[T any](c *OpCtx, o int, t Time, data []T) {
	if len(data) == 0 {
		return
	}
	c.Send(o, t, data)
}

// ForEachBatch drains input i, invoking f once per batch with its typed
// contents.
func ForEachBatch[T any](c *OpCtx, i int, f func(t Time, data []T)) {
	c.ForEach(i, func(t Time, data any) { f(t, data.([]T)) })
}

// Output returns output port o of the built streams as a typed stream.
func Output[T any](outs []StreamCore, o int) Stream[T] { return Typed[T](outs[o]) }
