package dataflow

// Stream is a typed stream of timestamped batches of T. Batches are
// immutable once sent: multiple consumers may observe the same underlying
// slice and must not modify it.
type Stream[T any] struct {
	core StreamCore
}

// Core returns the type-erased stream.
func (s Stream[T]) Core() StreamCore { return s.core }

// Valid reports whether the stream was produced by a builder.
func (s Stream[T]) Valid() bool { return s.core.Valid() }

// Typed wraps a type-erased stream; the caller asserts its element type.
func Typed[T any](c StreamCore) Stream[T] { return Stream[T]{core: c} }

// Pact is a parallelization contract: it decides how batches on an edge are
// routed between workers.
type Pact[T any] interface {
	partitioner(peers int) Partitioner
}

// Pipeline keeps batches on the worker that produced them.
type Pipeline[T any] struct{}

func (Pipeline[T]) partitioner(peers int) Partitioner { return nil }

// Exchange routes each record to the worker given by its hash modulo the
// number of workers.
type Exchange[T any] struct {
	Hash func(T) uint64
}

func (e Exchange[T]) partitioner(peers int) Partitioner {
	hash := e.Hash
	if peers == 1 {
		return func(data any) []any { return []any{data} }
	}
	return func(data any) []any {
		in := data.([]T)
		out := make([]any, peers)
		parts := make([][]T, peers)
		for _, r := range in {
			p := int(hash(r) % uint64(peers))
			parts[p] = append(parts[p], r)
		}
		for i, p := range parts {
			if len(p) > 0 {
				out[i] = p
			}
		}
		return out
	}
}

// ExchangeTo routes each record to the worker index returned by To. This is
// the indirection Megaphone introduces: the routing decision is made by the
// sender against its routing table rather than by a static hash.
type ExchangeTo[T any] struct {
	To func(T) int
}

func (e ExchangeTo[T]) partitioner(peers int) Partitioner {
	to := e.To
	return func(data any) []any {
		in := data.([]T)
		out := make([]any, peers)
		parts := make([][]T, peers)
		for _, r := range in {
			p := to(r)
			parts[p] = append(parts[p], r)
		}
		for i, p := range parts {
			if len(p) > 0 {
				out[i] = p
			}
		}
		return out
	}
}

// Broadcast delivers every batch to every worker.
type Broadcast[T any] struct{}

func (Broadcast[T]) partitioner(peers int) Partitioner {
	return func(data any) []any {
		in := data.([]T)
		out := make([]any, peers)
		for i := range out {
			// Share the slice: batches are immutable after send.
			out[i] = in
		}
		return out
	}
}

// Connect attaches stream s to the next input of builder b under pact p,
// returning the input port index.
func Connect[T any](b *OpBuilder, s Stream[T], p Pact[T]) int {
	return b.AddInput(s.core, p.partitioner(b.w.Peers()))
}

// SendBatch emits a typed batch on output port o at time t.
func SendBatch[T any](c *OpCtx, o int, t Time, data []T) {
	if len(data) == 0 {
		return
	}
	c.Send(o, t, data)
}

// ForEachBatch drains input i, invoking f once per batch with its typed
// contents.
func ForEachBatch[T any](c *OpCtx, i int, f func(t Time, data []T)) {
	c.ForEach(i, func(t Time, data any) { f(t, data.([]T)) })
}

// Output returns output port o of the built streams as a typed stream.
func Output[T any](outs []StreamCore, o int) Stream[T] { return Typed[T](outs[o]) }
