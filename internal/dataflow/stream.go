package dataflow

// Stream is a typed stream of timestamped batches of T. Batches are
// immutable once sent: multiple consumers may observe the same underlying
// slice and must not modify it.
type Stream[T any] struct {
	core StreamCore
}

// Core returns the type-erased stream.
func (s Stream[T]) Core() StreamCore { return s.core }

// Valid reports whether the stream was produced by a builder.
func (s Stream[T]) Valid() bool { return s.core.Valid() }

// Typed wraps a type-erased stream; the caller asserts its element type.
func Typed[T any](c StreamCore) Stream[T] { return Stream[T]{core: c} }

// Pact is a parallelization contract: it decides how batches on an edge are
// routed between workers.
type Pact[T any] interface {
	partitioner(w *Worker) Partitioner
}

// Pipeline keeps batches on the worker that produced them.
type Pipeline[T any] struct{}

func (Pipeline[T]) partitioner(w *Worker) Partitioner { return nil }

// Exchange routes each record to the worker given by its hash modulo the
// number of workers. The hash spread is stateless load distribution, so
// membership awareness is safe here: a record whose hash lands on a worker
// that is inactive at the send time is remapped onto an active worker
// (deterministically per target, arbitrary across senders — the receiving
// operator must not depend on which peer a record arrives at, which holds
// for Megaphone's F router by construction).
type Exchange[T any] struct {
	Hash func(T) uint64
}

func (e Exchange[T]) partitioner(w *Worker) Partitioner {
	hash := e.Hash
	peers := w.Peers()
	if peers == 1 {
		// Identity: ship the (already boxed) input batch itself.
		out := make([]any, 1)
		return func(t Time, data any) []any {
			if len(asBatch[T](data)) == 0 {
				return nil
			}
			out[0] = data
			return out
		}
	}
	ex := w.exec
	return partitionBy[T](w, peers, func(t Time, r T) int {
		p := int(hash(r) % uint64(peers))
		if v := ex.viewAt(t); !v.full && !v.workerActive(p) {
			p = v.workers[p%len(v.workers)]
		}
		return p
	})
}

// ExchangeTo routes each record to the worker index returned by To. This is
// the indirection Megaphone introduces: the routing decision is made by the
// sender against its routing table rather than by a static hash.
//
// ExchangeTo is deliberately NOT membership-aware: its destinations are
// assignment-driven (bin ownership), and the membership protocol's
// invariant is that no bin is ever assigned to an inactive worker at a
// committed time. A violation should surface as a wedged frontier in
// equivalence tests, not be papered over by silent rerouting.
//
// The produced partitions never alias the input batch (they are copied into
// a fresh buffer), so a sender may reuse its input buffer across sends on
// ports whose edges all carry ExchangeTo.
type ExchangeTo[T any] struct {
	To func(T) int
}

func (e ExchangeTo[T]) partitioner(w *Worker) Partitioner {
	to := e.To
	return partitionBy[T](w, w.Peers(), func(_ Time, r T) int { return to(r) })
}

// partitionBy builds a partitioner that splits each batch by a per-record
// destination. Each non-empty partition is a borrowed envelope (refs=0;
// Send takes the receivers' references) drawn from the worker's free list,
// so a warmed steady state partitions without allocating; the result
// slice, destination table, and count tables are scratch reused across
// calls — partitioners are per-worker and only invoked from their worker's
// scheduling loop.
func partitionBy[T any](w *Worker, peers int, to func(Time, T) int) Partitioner {
	out := make([]any, peers)
	envs := make([]*batchEnv[T], peers)
	counts := make([]int32, peers)
	var dest []int32
	return func(t Time, data any) []any {
		in := asBatch[T](data)
		if len(in) == 0 {
			return nil
		}
		if cap(dest) < len(in) {
			dest = make([]int32, len(in))
		}
		dest = dest[:len(in)]
		for i := range counts {
			counts[i] = 0
		}
		for i, r := range in {
			p := to(t, r)
			dest[i] = int32(p)
			counts[p]++
		}
		for p := 0; p < peers; p++ {
			if counts[p] == 0 {
				envs[p] = nil
				out[p] = nil
				continue
			}
			e := getEnv[T](w, int(counts[p]))
			envs[p] = e
			out[p] = e
		}
		for i, r := range in {
			e := envs[dest[i]]
			e.s = append(e.s, r)
		}
		return out
	}
}

// Broadcast delivers every batch to every worker active at the batch's
// time. Inactive workers are skipped, not caught up later: a process that
// joins is seeded with the consolidated effect of everything it missed
// (assignment history, migrated state), exactly as a restored process is.
type Broadcast[T any] struct{}

func (Broadcast[T]) partitioner(w *Worker) Partitioner {
	out := make([]any, w.Peers())
	ex := w.exec
	return func(t Time, data any) []any {
		if len(asBatch[T](data)) == 0 {
			return nil
		}
		v := ex.viewAt(t)
		for i := range out {
			if v.workerActive(i) {
				// Share the boxed batch: batches are immutable after send.
				out[i] = data
			} else {
				out[i] = nil
			}
		}
		return out
	}
}

// Connect attaches stream s to the next input of builder b under pact p,
// returning the input port index. In a multi-process execution Connect also
// registers the edge's wire codec (derived from T), which is what lets the
// edge's batches cross process boundaries; edges wired through the untyped
// AddInput cannot.
func Connect[T any](b *OpBuilder, s Stream[T], p Pact[T]) int {
	i := b.AddInput(s.core, p.partitioner(b.w))
	if b.w.exec.mesh != nil {
		b.codecs[i] = wireCodecFor[T]()
	}
	return i
}

// SendBatch emits a typed batch on output port o at time t. The records are
// copied into a recycled envelope, so the caller keeps ownership of data
// and may reuse it immediately — forwarding a slice received from
// ForEachBatch is safe.
//
//megalint:hotpath
func SendBatch[T any](c *OpCtx, o int, t Time, data []T) {
	if len(data) == 0 {
		return
	}
	env := getEnv[T](c.w, len(data))
	env.s = append(env.s, data...)
	env.refs.Store(1)
	c.Send(o, t, env)
}

// ForEachBatch drains input i, invoking f once per batch with its typed
// contents. The slice is only valid during the callback; copy records out
// to retain them.
//
//megalint:hotpath
func ForEachBatch[T any](c *OpCtx, i int, f func(t Time, data []T)) {
	//megalint:allow hotalloc one adapter closure per drain, amortized over the whole batch run
	c.ForEach(i, func(t Time, data any) { f(t, asBatch[T](data)) })
}

// Output returns output port o of the built streams as a typed stream.
func Output[T any](outs []StreamCore, o int) Stream[T] { return Typed[T](outs[o]) }
