package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"megaphone/internal/binenc"
)

// wireCodec serializes one edge's batches (a []T boxed as any) for
// cross-process delivery. enc appends the batch's encoding to buf; dec
// reconstructs a freshly allocated batch from a payload (which it must not
// retain — the wire buffer is transient). Both must be safe for concurrent
// use: encoding runs on every sending worker, decoding on every inbound
// connection's goroutine.
type wireCodec struct {
	enc func(data any, buf []byte) []byte
	dec func(payload []byte) (any, error)
}

// wireRec is the per-record binary contract, the structural twin of
// core.BinaryRec (declared here too so the runtime does not import core,
// which sits above it). Types implementing it on their pointer receiver ride
// the hand-rolled encoding; everything else falls back to gob.
type wireRec interface {
	AppendBinaryRec(buf []byte) []byte
	DecodeBinaryRec(data []byte) ([]byte, error)
}

// wireCapableRec refines wireRec for generic types whose support depends on
// their type parameters (core.Either, core's routed envelope).
type wireCapableRec interface{ BinaryCapable() bool }

// wireCodecFor resolves the codec for element type T: per-record binary
// when *T implements the contract (and is capable), a fixed-width fast path
// for raw uint64 streams, gob otherwise.
func wireCodecFor[T any]() wireCodec {
	var z T
	if br, ok := any(&z).(wireRec); ok {
		if c, refines := br.(wireCapableRec); !refines || c.BinaryCapable() {
			return wireCodec{enc: encodeWireRecs[T], dec: decodeWireRecs[T]}
		}
	}
	if _, ok := any(z).(uint64); ok {
		return wireCodec{enc: encodeWireU64s, dec: decodeWireU64s}
	}
	return wireCodec{enc: encodeWireGob[T], dec: decodeWireGob[T]}
}

func encodeWireRecs[T any](data any, buf []byte) []byte {
	s := asBatch[T](data)
	buf = binenc.AppendUvarint(buf, uint64(len(s)))
	for i := range s {
		buf = any(&s[i]).(wireRec).AppendBinaryRec(buf)
	}
	return buf
}

func decodeWireRecs[T any](payload []byte) (any, error) {
	n, payload, err := binenc.Count(payload, 1) // every record is >= 1 byte
	if err != nil {
		return nil, fmt.Errorf("batch length: %w", err)
	}
	out := make([]T, n)
	for i := range out {
		if payload, err = any(&out[i]).(wireRec).DecodeBinaryRec(payload); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after batch", len(payload))
	}
	return out, nil
}

func encodeWireU64s(data any, buf []byte) []byte {
	return binenc.AppendU64s(buf, asBatch[uint64](data))
}

func decodeWireU64s(payload []byte) (any, error) {
	s, rest, err := binenc.U64s(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after batch", len(rest))
	}
	return s, nil
}

// The gob fallback trades speed for universality: any exported-field type
// crosses the wire without per-type code, at gob's reflection cost. Hot
// exchange edges (the megaphone routed envelope, state chunks, control
// moves) all implement the binary contract and never take this path.
func encodeWireGob[T any](data any, buf []byte) []byte {
	w := bytes.NewBuffer(buf)
	if err := gob.NewEncoder(w).Encode(asBatch[T](data)); err != nil {
		panic(fmt.Sprintf("dataflow: gob-encoding %T batch: %v", data, err))
	}
	return w.Bytes()
}

func decodeWireGob[T any](payload []byte) (any, error) {
	var out []T
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&out); err != nil {
		return nil, fmt.Errorf("gob batch: %w", err)
	}
	return out, nil
}
