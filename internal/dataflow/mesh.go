package dataflow

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"megaphone/internal/binenc"
	"megaphone/internal/progress"
	"megaphone/internal/transport"
)

// ClusterSpec describes one process's membership in a multi-process
// execution: the address of every process and this process's index.
type ClusterSpec struct {
	// Hosts lists one TCP address per process, identical on every process.
	Hosts []string
	// Process is this process's index into Hosts.
	Process int
	// MaxFrame bounds one wire frame (transport.DefaultMaxFrame when 0).
	// Workers coalesce many exchanged batches into one frame, but a single
	// batch is never split, so MaxFrame must exceed the largest encoded
	// batch a worker can emit (state migration batches are bounded by the
	// operator's ChunkBytes).
	MaxFrame int
	// Conns is the number of TCP connections per peer process pair
	// (default 1). Workers stripe their traffic over the connections by
	// worker index: each worker's progress-before-data order is preserved
	// on its own lane, and lanes run on separate sockets, send loops, and
	// receive goroutines, scaling the wire across cores. Every process
	// must configure the same value.
	Conns int
	// CoalesceBytes caps how many encoded batch bytes a worker buffers per
	// destination process before flushing them as one data frame (default
	// 128 KiB, clamped under MaxFrame). Buffers also flush at every
	// scheduling boundary, so coalescing never delays a batch beyond the
	// scheduling that produced it.
	CoalesceBytes int
	// DialTimeout bounds connection establishment, covering peers that
	// start late (default 30s).
	DialTimeout time.Duration
	// Generation distinguishes successive executions on the same host list:
	// it is mixed into the handshake's cluster id, so a process still
	// draining execution N rejects (and lets retry) a connection from a
	// peer that already started execution N+1, instead of resuming the old
	// session's sequence numbers against the new session's retention
	// (which would lose frames). Drivers that run several executions in
	// sequence (cmd/experiments) increment it per run, identically on
	// every process; single-execution runs leave it zero.
	Generation uint64
	// Listener optionally pre-binds Hosts[Process] (tests use this to pick
	// free ports without a bind race).
	Listener net.Listener
	// Logf, when non-nil, receives transport lifecycle messages.
	Logf func(format string, args ...any)
	// Absent marks roster slots that are not part of the initial membership:
	// Hosts is the full fixed roster (including processes expected to join
	// later), Absent says which slots start empty. Present processes neither
	// dial nor wait for absent slots; a process whose own slot is marked
	// absent is a late joiner and dials every present peer itself. Nil means
	// all slots present (the static-cluster behavior).
	Absent []bool
	// MembershipEpoch is the membership view version this process believes
	// in when it handshakes. A late joiner is handed the current epoch out
	// of band (by the operator or harness); the value rides the hello so a
	// future admission check can refuse joiners with a stale view.
	MembershipEpoch uint64
}

// Frame kinds of the mesh protocol, layered on the transport's opaque user
// kinds. Per-peer FIFO matters: a scheduling's progress batch is enqueued
// before its data batches, so a remote process always accounts a message's
// pointstamp before it can observe the message.
const (
	kindProgress = transport.KindUser + 0 // one progress.Batch, applied atomically
	kindData     = transport.KindUser + 1 // one exchanged batch for one worker
	kindGraph    = transport.KindUser + 2 // graph digest, first frame per peer
	kindCtrl     = transport.KindUser + 3 // opaque control-plane frame (load telemetry, decisions)
)

// Mesh is the cross-process fabric of an execution: in-process workers keep
// the zero-copy channel path, remote workers are reached by serializing
// batches (via the per-edge wire codecs registered at Connect time) onto
// the framed TCP transport, and every worker scheduling's progress deltas
// are broadcast so all processes' trackers converge on the same frontiers.
//
// Join a mesh with JoinMesh, hand it to NewExecution via Config.Mesh, and
// use the execution exactly as in the single-process case. A mesh serves
// one execution; processes running several executions in sequence join a
// fresh mesh for each.
type Mesh struct {
	tr    *transport.Transport
	procs int
	proc  int
	exec  *Execution
	ready chan struct{} // closed at Execution.Start; gates inbound dispatch

	// Per-peer progress decode scratch. Frames from one peer may arrive on
	// several striped connections whose receive goroutines run concurrently,
	// so each peer's scratch is guarded by its mutex (uncontended with one
	// lane; progress decode is far off the data hot path regardless).
	scratch   []*progress.Batch
	scratchMu []sync.Mutex

	// coalesce is the per-destination buffering threshold for outbound data
	// records (see ClusterSpec.CoalesceBytes).
	coalesce int

	// active[p] says whether roster slot p currently participates in the
	// dataflow. Broadcast paths (progress, graph digest, control) skip
	// inactive slots; point sends to them are a protocol violation that the
	// transport surfaces by dropping (retired) or queueing (absent). Flipped
	// by Activate/Retire under membership transitions, read concurrently by
	// every worker goroutine.
	activeInit []bool
	active     []atomic.Bool

	// retired[p] says slot p is gone for good (drain-left or declared dead),
	// as opposed to merely absent (a standby that may still join). Workers
	// consult it on the send path: a message for a retired slot is dropped at
	// the source with no progress delta — the transport would discard the
	// frame anyway, and a recorded pointstamp for it could never cancel (the
	// dead process will not consume the message), wedging the frontier at the
	// message's time forever. Pre-retirement sends to a crashed peer do leak
	// such phantom counts; the membership barrier's tracker rebuild wipes
	// those, and this flag keeps post-barrier sends (e.g. a migration that
	// straddled the death executing late) from minting new ones.
	retired []atomic.Bool

	// sentN/recvN count dataflow frames (progress, data, graph — not ctrl)
	// exchanged with each peer. The membership barrier uses their cluster-
	// wide sums as a Safra-style stability check: only when every member's
	// sent total equals the matching recv totals over consecutive control
	// rounds is the fabric quiescent enough to rebuild progress state.
	sentN []atomic.Uint64
	recvN []atomic.Uint64

	// finMode selects the shutdown barrier: 0 full FIN exchange, 1 leave
	// (one-sided FIN, don't wait for peers'), 2 abandon (close without
	// barrier — used when this process is declared dead or panicking).
	finMode atomic.Int32

	// ctrlMu serializes every control-plane dispatch: inbound frames from
	// different peers, and the drain of frames buffered before the handler
	// was registered. Control traffic is a few small frames per sampling
	// window, so one lock is cheaper than per-peer machinery.
	ctrlMu      sync.Mutex
	ctrlHandler func(from int, payload []byte)
	ctrlPending []ctrlFrame

	// fatalMu guards fatalErr (the transport's fatal failure, if any) and the
	// exec pointer's visibility to the fatal hook, which may fire before the
	// mesh is attached to an execution.
	fatalMu  sync.Mutex
	fatalErr error
}

// ctrlFrame is a control frame buffered before SetControlHandler; the
// payload is copied because the transport reuses its receive buffer.
type ctrlFrame struct {
	from    int
	payload []byte
}

// JoinMesh connects this process to its cluster: it binds the local
// listener, handshakes with every peer (retrying while they start), and
// returns once all sessions are up.
func JoinMesh(spec ClusterSpec) (*Mesh, error) {
	if len(spec.Hosts) < 2 {
		return nil, fmt.Errorf("dataflow: a cluster needs at least 2 hosts, got %d", len(spec.Hosts))
	}
	if spec.Process < 0 || spec.Process >= len(spec.Hosts) {
		return nil, fmt.Errorf("dataflow: process %d out of range for %d hosts", spec.Process, len(spec.Hosts))
	}
	if spec.Absent != nil && len(spec.Absent) != len(spec.Hosts) {
		return nil, fmt.Errorf("dataflow: Absent has %d entries for %d hosts", len(spec.Absent), len(spec.Hosts))
	}
	m := &Mesh{
		procs: len(spec.Hosts),
		proc:  spec.Process,
		ready: make(chan struct{}),
	}
	m.scratch = make([]*progress.Batch, len(spec.Hosts))
	for i := range m.scratch {
		m.scratch[i] = &progress.Batch{}
	}
	m.scratchMu = make([]sync.Mutex, len(spec.Hosts))
	maxFrame := spec.MaxFrame
	if maxFrame <= 0 {
		maxFrame = transport.DefaultMaxFrame
	}
	m.coalesce = spec.CoalesceBytes
	if m.coalesce <= 0 {
		m.coalesce = 128 << 10
	}
	if lim := maxFrame - 64; m.coalesce > lim {
		m.coalesce = lim
	}
	m.activeInit = make([]bool, len(spec.Hosts))
	m.active = make([]atomic.Bool, len(spec.Hosts))
	m.retired = make([]atomic.Bool, len(spec.Hosts))
	m.sentN = make([]atomic.Uint64, len(spec.Hosts))
	m.recvN = make([]atomic.Uint64, len(spec.Hosts))
	for i := range m.activeInit {
		up := spec.Absent == nil || !spec.Absent[i]
		m.activeInit[i] = up
		m.active[i].Store(up)
	}
	h := fnv.New64a()
	h.Write([]byte(strings.Join(spec.Hosts, ",")))
	clusterID := (h.Sum64() | 1) + spec.Generation*0x9e3779b97f4a7c15
	if clusterID == 0 {
		clusterID = 1 // 0 would make the transport re-derive it unsalted
	}
	tr, err := transport.Dial(transport.Config{
		Addrs:           spec.Hosts,
		Index:           spec.Process,
		ClusterID:       clusterID,
		MaxFrame:        spec.MaxFrame,
		DialTimeout:     spec.DialTimeout,
		Conns:           spec.Conns,
		Listener:        spec.Listener,
		Logf:            spec.Logf,
		Absent:          spec.Absent,
		MembershipEpoch: spec.MembershipEpoch,
		Fatal:           m.onFatal,
	}, m.onFrame)
	if err != nil {
		return nil, err
	}
	m.tr = tr
	return m, nil
}

// Procs returns the cluster's process count.
func (m *Mesh) Procs() int { return m.procs }

// Process returns this process's index.
func (m *Mesh) Process() int { return m.proc }

// initialActive returns the membership at execution start (roster minus the
// slots marked Absent). NewExecution seeds the time-0 membership view and
// the initial capability holds from it.
func (m *Mesh) initialActive() []bool {
	return append([]bool(nil), m.activeInit...)
}

// Active reports whether roster slot p currently participates.
func (m *Mesh) Active(p int) bool { return m.active[p].Load() }

// Activate marks roster slot p live: broadcast paths start including it.
// Called on every member (including the joiner itself, for its own slot is
// already live from its perspective) when a join commits.
func (m *Mesh) Activate(p int) { m.active[p].Store(true) }

// RetirePeer marks roster slot p gone — left or declared dead. Broadcast
// paths stop including it, the transport drops queued and future frames to
// it, stands down its redial loop, and the shutdown barrier stops waiting
// for its FIN. Irreversible for this execution (a returning process must
// rejoin under a new generation).
func (m *Mesh) RetirePeer(p int) {
	m.active[p].Store(false)
	m.retired[p].Store(true)
	m.tr.Retire(p)
}

// Retired reports whether roster slot p has been retired (vs. absent or
// live). Read by the worker send path; see the field comment.
func (m *Mesh) Retired(p int) bool { return m.retired[p].Load() }

// Leave switches this process's shutdown barrier to the one-sided variant:
// announce FIN and wait for the peers to ack our frames, but do not require
// their FINs (they keep running). Used by drain-leave.
func (m *Mesh) Leave() { m.finMode.Store(1) }

// Abandon switches this process's shutdown to an unceremonious close, no
// barrier at all. Crash-simulation fixtures use it to model SIGKILL without
// leaking the transport's goroutines into later tests.
func (m *Mesh) Abandon() { m.finMode.Store(2) }

// SetMembershipEpoch records the membership view version this process now
// believes in; future transport handshakes carry it.
func (m *Mesh) SetMembershipEpoch(e uint64) { m.tr.SetMembershipEpoch(e) }

// MembershipEpoch returns the last value passed to SetMembershipEpoch (or
// the ClusterSpec value).
func (m *Mesh) MembershipEpoch() uint64 { return m.tr.MembershipEpoch() }

// DataCounters snapshots the per-peer dataflow frame counters: sent[p] and
// recv[p] count progress/data/graph frames exchanged with slot p since the
// mesh joined. Counter reads are individually atomic but the snapshot is
// not; the membership barrier compensates by requiring cluster-wide sums to
// be stable across consecutive control rounds.
func (m *Mesh) DataCounters() (sent, recv []uint64) {
	sent = make([]uint64, m.procs)
	recv = make([]uint64, m.procs)
	for p := 0; p < m.procs; p++ {
		sent[p] = m.sentN[p].Load()
		recv[p] = m.recvN[p].Load()
	}
	return sent, recv
}

// BroadcastControl ships one opaque control-plane frame to every peer
// process. Control frames ride the same exactly-once per-peer-FIFO transport
// sessions as progress and data, but are invisible to the dataflow: the
// layer above (plan's cluster control plane) owns their encoding. Safe to
// call from any goroutine once the mesh is joined.
func (m *Mesh) BroadcastControl(payload []byte) {
	for p := 0; p < m.procs; p++ {
		if p == m.proc {
			continue
		}
		// Control reaches every connected peer, not just active dataflow
		// participants: a late joiner is connected (Joined) before the
		// membership barrier activates it, and the admission protocol itself
		// rides these frames.
		if m.active[p].Load() || m.tr.Joined(p) {
			m.tr.Send(p, kindCtrl, payload)
		}
	}
}

// SetControlHandler registers the sink for inbound control frames and
// delivers, in arrival order, any frames that arrived before registration.
// Buffering matters because control payloads are increments (load deltas):
// dropping the frames that race execution startup would permanently skew
// the receiver's view. The handler runs serialized — frames from all peers
// and the buffered backlog never overlap — on transport receive goroutines,
// so it must not block on dataflow progress.
func (m *Mesh) SetControlHandler(h func(from int, payload []byte)) {
	m.ctrlMu.Lock()
	defer m.ctrlMu.Unlock()
	m.ctrlHandler = h
	for _, f := range m.ctrlPending {
		h(f.from, f.payload)
	}
	m.ctrlPending = nil
}

// onFatal reacts to the transport dying irrecoverably (a peer unreachable
// past its dial timeout): record the cause and halt the local workers, which
// would otherwise wait forever for progress from the dead session. The run
// then unwinds through Execution.Wait and the error surfaces via Err.
func (m *Mesh) onFatal(err error) {
	m.fatalMu.Lock()
	if m.fatalErr == nil {
		m.fatalErr = err
	}
	e := m.exec
	m.fatalMu.Unlock()
	if e != nil {
		e.Halt()
	}
}

// Err returns the fatal transport error that killed this mesh, or nil.
func (m *Mesh) Err() error {
	m.fatalMu.Lock()
	err := m.fatalErr
	m.fatalMu.Unlock()
	if err != nil {
		return err
	}
	if m.tr != nil {
		return m.tr.Err()
	}
	return nil
}

// attach binds the mesh to its execution (called by NewExecution).
func (m *Mesh) attach(e *Execution) {
	m.fatalMu.Lock()
	if m.exec != nil {
		m.fatalMu.Unlock()
		panic("dataflow: mesh already attached to an execution (join a fresh mesh per execution)")
	}
	m.exec = e
	fatal := m.fatalErr
	m.fatalMu.Unlock()
	if fatal != nil {
		// The transport died between JoinMesh and the execution's build:
		// halting now (before Start) makes the workers exit immediately
		// instead of wedging on the dead fabric.
		e.Halt()
	}
}

// start announces this process's graph digest to every peer (the first
// frame it sends, ahead of any worker traffic) and releases inbound
// dispatch; the execution's tracker and edge codecs exist by now. The
// digest turns a cluster whose processes built different dataflows —
// divergent flags shift every canonical edge id, which would silently
// misroute or misdecode cross-process batches — into an immediate, clearly
// attributed failure at the receiver.
func (m *Mesh) start() {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], m.exec.graphDigest())
	for p := 0; p < m.procs; p++ {
		if p != m.proc && m.active[p].Load() {
			m.tr.Send(p, kindGraph, buf[:])
			m.sentN[p].Add(1)
		}
	}
	close(m.ready)
}

// graphDigest summarizes the canonical dataflow structure and worker
// topology for the cross-process identity check.
func (e *Execution) graphDigest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(e.totalWorkers))
	put(uint64(e.cfg.Workers))
	put(uint64(len(e.canonNodes)))
	for _, n := range e.canonNodes {
		put(uint64(n.in)<<32 | uint64(n.out))
	}
	for _, ed := range e.canonEdges {
		put(uint64(ed.dst.Node)<<32 | uint64(ed.dst.Port))
	}
	return h.Sum64()
}

// finish runs the cluster-wide shutdown barrier after the local workers
// drained: announce FIN, wait for every peer's FIN (by which point all
// their frames have been handled), and close the transport. A process that
// called Leave runs the one-sided variant (peers keep running); one that
// called Abandon just closes.
func (m *Mesh) finish() {
	if m.Err() != nil {
		// The transport already died; there is no barrier left to run. The
		// cause reaches the caller through Execution.Err, not a panic.
		m.tr.Close()
		return
	}
	switch m.finMode.Load() {
	case 2:
		m.tr.Close()
	case 1:
		if err := m.tr.FinishLeave(60 * time.Second); err != nil {
			if m.tr.Err() != nil {
				return // died mid-barrier; surfaced via Err
			}
			panic(err)
		}
	default:
		if err := m.tr.Finish(60 * time.Second); err != nil {
			if m.tr.Err() != nil {
				return
			}
			panic(err)
		}
	}
}

// onFrame dispatches one inbound frame. It runs on a transport receive
// goroutine; frames from one peer arrive in per-lane FIFO order, so a
// worker's progress deltas are always applied before the data they cover
// (the worker keys both by its index), and its delta batches apply in
// generation order. Frames from different lanes of one peer may be handled
// concurrently — safe because the tracker already serializes Apply and
// cross-worker interleaving is indistinguishable from the cross-process
// interleaving the tracker tolerates.
//
//megalint:hotpath
func (m *Mesh) onFrame(from int, kind byte, payload []byte) {
	<-m.ready
	if kind != kindCtrl {
		m.recvN[from].Add(1)
	}
	e := m.exec
	switch kind {
	case kindGraph:
		theirs := binary.BigEndian.Uint64(payload)
		if ours := e.graphDigest(); theirs != ours {
			panic(fmt.Sprintf("dataflow: process %d built a different dataflow graph (digest %016x, ours %016x): every process of a cluster must run with identical configuration apart from its process index",
				from, theirs, ours))
		}
	case kindProgress:
		m.scratchMu[from].Lock()
		b := m.scratch[from]
		err := b.DecodeWire(payload)
		if err == nil {
			e.tracker.Apply(b)
		}
		m.scratchMu[from].Unlock()
		if err != nil {
			panic(fmt.Sprintf("dataflow: corrupt progress frame from process %d: %v", from, err))
		}
	case kindData:
		// One data frame carries a run of coalesced records, each
		// [worker][edge][time][len][payload] with uvarint header fields.
		for len(payload) > 0 {
			worker, rest, err := binenc.Uvarint(payload)
			if err == nil {
				var edge, tm, n uint64
				if edge, rest, err = binenc.Uvarint(rest); err == nil {
					if tm, rest, err = binenc.Uvarint(rest); err == nil {
						if n, rest, err = binenc.Uvarint(rest); err == nil {
							if n > uint64(len(rest)) {
								//megalint:allow hotalloc corrupt-frame error path; panics below
								err = fmt.Errorf("record of %d bytes exceeds frame remainder %d", n, len(rest))
							} else {
								err = m.deliverData(int(worker), progress.Edge(edge), Time(tm), rest[:n])
								payload = rest[n:]
							}
						}
					}
				}
			}
			if err != nil {
				panic(fmt.Sprintf("dataflow: corrupt data frame from process %d: %v", from, err))
			}
		}
	case kindCtrl:
		m.ctrlMu.Lock()
		if m.ctrlHandler == nil {
			// The transport recycles payload after this call returns, so the
			// backlog keeps its own copy.
			//megalint:allow hotalloc control frames only queue before handler registration, a startup-only window
			cp := append([]byte(nil), payload...)
			m.ctrlPending = append(m.ctrlPending, ctrlFrame{from: from, payload: cp})
		} else {
			m.ctrlHandler(from, payload)
		}
		m.ctrlMu.Unlock()
	default:
		panic(fmt.Sprintf("dataflow: unknown mesh frame kind %d from process %d", kind, from))
	}
}

// deliverData decodes one exchanged batch and routes it to the owning local
// worker's inbox. The decoded batch is freshly allocated (the wire payload
// is transient), so ownership passes to the receiving operator as with the
// in-process path.
//
//megalint:hotpath
func (m *Mesh) deliverData(worker int, edge progress.Edge, t Time, payload []byte) error {
	e := m.exec
	li := worker - e.firstGlobal
	if li < 0 || li >= len(e.workers) {
		//megalint:allow hotalloc corrupt-frame error path; the caller panics on it
		return fmt.Errorf("worker %d is not local to process %d", worker, m.proc)
	}
	if int(edge) >= len(e.edgeCodecs) || e.edgeCodecs[edge].dec == nil {
		//megalint:allow hotalloc corrupt-frame error path; the caller panics on it
		return fmt.Errorf("edge %d has no wire codec", edge)
	}
	data, err := e.edgeCodecs[edge].dec(payload)
	if err != nil {
		//megalint:allow hotalloc corrupt-frame error path; the caller panics on it
		return fmt.Errorf("edge %d payload: %w", edge, err)
	}
	w := e.workers[li]
	w.inbox <- message{edge: edge, time: t, data: data}
	w.poke()
	return nil
}

// sendRemote stages one outbound message for a remote worker: the batch is
// serialized with its edge's wire codec into the worker-owned scratch
// buffer and appended — behind a compact record header — to the worker's
// coalescing buffer for the destination process. The buffer is flushed as
// one multi-record frame when it reaches the mesh's coalescing threshold or,
// at the latest, at the end of the scheduling that produced it (so
// coalescing adds no latency and buffers are always empty between
// schedulings, which the membership barrier's quiescence check relies on).
//
//megalint:hotpath
func (w *Worker) sendRemote(m outMsg) {
	e := w.exec
	edge := m.msg.edge
	if int(edge) >= len(e.edgeCodecs) || e.edgeCodecs[edge].enc == nil {
		panic(fmt.Sprintf("dataflow: edge %d crosses processes but has no wire codec (connect it with dataflow.Connect)", edge))
	}
	rec := e.edgeCodecs[edge].enc(m.msg.data, w.wireBuf[:0])
	w.wireBuf = rec
	releaseAny(w, m.msg.data) // the remote's reference: encoded, copy owned by us
	dst := m.peer / e.cfg.Workers
	buf := w.coalBuf[dst]
	if len(buf) > 0 && len(buf)+len(rec)+4*binary.MaxVarintLen64 > e.mesh.coalesce {
		w.flushRemote(dst)
		buf = w.coalBuf[dst]
	}
	if len(buf) == 0 {
		w.coalDirty = append(w.coalDirty, dst)
	}
	buf = binenc.AppendUvarint(buf, uint64(m.peer))
	buf = binenc.AppendUvarint(buf, uint64(edge))
	buf = binenc.AppendUvarint(buf, uint64(m.msg.time))
	buf = binenc.AppendUvarint(buf, uint64(len(rec)))
	buf = append(buf, rec...)
	w.coalBuf[dst] = buf
}

// flushRemote ships this worker's coalescing buffer for process dst as one
// data frame, keyed by the worker's local index so all of the worker's
// traffic — this frame and the progress broadcast that preceded it — rides
// one FIFO lane. The transport copies the payload into pooled frame storage,
// so the buffer is immediately reusable.
//
//megalint:hotpath
func (w *Worker) flushRemote(dst int) {
	buf := w.coalBuf[dst]
	if len(buf) == 0 {
		return
	}
	e := w.exec
	e.mesh.tr.SendKeyed(dst, w.local, kindData, buf)
	e.mesh.sentN[dst].Add(1)
	w.coalBuf[dst] = buf[:0]
}

// flushRemotes flushes every destination staged during the current
// scheduling, in first-touched order.
//
//megalint:hotpath
func (w *Worker) flushRemotes() {
	for _, dst := range w.coalDirty {
		w.flushRemote(dst)
	}
	w.coalDirty = w.coalDirty[:0]
}

// broadcastProgress ships one scheduling's (already coalesced) progress
// batch to every remote process, keyed by the worker's local index. It must
// run before the scheduling's remote data flush: per-lane FIFO then
// guarantees every receiver accounts the produced pointstamps before it can
// observe the messages (data and progress from one worker share a lane).
//
//megalint:hotpath
func (w *Worker) broadcastProgress(b *progress.Batch) {
	e := w.exec
	if !e.mesh.active[e.mesh.proc].Load() {
		// A joiner that has not been admitted yet keeps its progress local:
		// the members' trackers never accounted its initial holds, so its
		// deltas would corrupt their frontiers. The membership barrier
		// rebuilds every tracker from explicit inventories at admission.
		return
	}
	buf := w.progBuf[:0]
	buf = b.AppendWire(buf)
	w.progBuf = buf
	for p := 0; p < e.mesh.procs; p++ {
		if p == e.mesh.proc || !e.mesh.active[p].Load() {
			continue
		}
		e.mesh.tr.SendKeyed(p, w.local, kindProgress, buf)
		e.mesh.sentN[p].Add(1)
	}
}
