package dataflow_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// TestNoLostWakeups races frontier changes against parking workers: drivers
// send tiny batches at future times and advance epochs irregularly, so
// deferred (frontier-driven) work keeps becoming ready while workers park.
// A scheduler that loses an activation — an operator with newly processable
// deferred work that is never re-run — hangs the drain and fails the
// deadline; a scheduler that schedules against stale frontiers trips the
// ordering check. Run with -race in CI.
func TestNoLostWakeups(t *testing.T) {
	const (
		workers = 4
		rounds  = 30
		epochs  = 40
	)
	for round := 0; round < rounds; round++ {
		var got atomic.Int64
		var misordered atomic.Int64
		exec := dataflow.NewExecution(dataflow.Config{Workers: workers, InboxSize: 2})
		inputs := make([]*dataflow.InputHandle[int], 0, workers)
		exec.Build(func(w *dataflow.Worker) {
			in, s := dataflow.NewInput[int](w, "input")
			inputs = append(inputs, in)
			// Exchange so every record crosses workers, then a notify
			// operator so every record defers until its time completes.
			ordered := operators.UnaryNotify(w, "order", s,
				dataflow.Exchange[int]{Hash: func(x int) uint64 { return uint64(x) * 0x9e3779b97f4a7c15 }},
				func() *dataflow.Time { last := dataflow.Time(0); return &last },
				func(tm dataflow.Time, data []int, last *dataflow.Time, emit func(int)) {
					if tm < *last {
						misordered.Add(1)
					}
					*last = tm
					for _, x := range data {
						emit(x)
					}
				})
			operators.Sink(w, "sink", ordered, func(_ dataflow.Time, data []int) {
				got.Add(int64(len(data)))
			})
		})
		exec.Start()

		var sent atomic.Int64
		done := make(chan struct{})
		for wi := range inputs {
			go func(wi int) {
				rng := rand.New(rand.NewSource(int64(round*workers + wi)))
				in := inputs[wi]
				for e := 1; e <= epochs; e++ {
					// Post-date some records so they sit deferred until the
					// epoch advances past them.
					n := rng.Intn(4)
					for i := 0; i < n; i++ {
						in.SendAt(dataflow.Time(e+rng.Intn(3)), wi*1000+e*10+i)
						sent.Add(1)
					}
					in.AdvanceTo(dataflow.Time(e))
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
				}
				in.Close()
			}(wi)
		}
		go func() {
			exec.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: drain deadlocked (lost wakeup); tracker:\n%s",
				round, exec.Tracker().Dump())
		}
		if got.Load() != sent.Load() {
			t.Fatalf("round %d: received %d records, sent %d", round, got.Load(), sent.Load())
		}
		if misordered.Load() != 0 {
			t.Fatalf("round %d: %d batches delivered behind the frontier", round, misordered.Load())
		}
	}
}

// exchangeWorkload drives epochs*perEpoch records through an
// input -> exchange -> sink dataflow on two workers: the
// route -> exchange -> apply hot path with no operator work on top.
// The driver paces itself against a probe with a bounded number of epochs
// in flight, the way the cluster harnesses do: an unpaced loop measures the
// allocator growing unbounded staging queues (and defeats the runtime's
// batch-buffer recycling, which needs consumption to keep up with
// production), not the per-record routing cost.
func exchangeWorkload(epochs, perEpoch int) {
	const window = 32
	exec := dataflow.NewExecution(dataflow.Config{Workers: 2})
	var inputs []*dataflow.InputHandle[uint64]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		in, s := dataflow.NewInput[uint64](w, "input")
		inputs = append(inputs, in)
		ex := operators.ExchangeBy(w, "exchange", s, func(x uint64) uint64 { return x })
		probe = dataflow.NewProbe(w, ex)
		operators.Sink(w, "sink", ex, func(dataflow.Time, []uint64) {})
	})
	exec.Start()
	for e := 1; e <= epochs; e++ {
		for wi, in := range inputs {
			batch := make([]uint64, perEpoch)
			for i := range batch {
				batch[i] = uint64(wi*perEpoch + i)
			}
			in.SendBatchAt(dataflow.Time(e), batch)
			in.AdvanceTo(dataflow.Time(e))
		}
		for e > window && probe.LessThan(dataflow.Time(e-window)) {
			time.Sleep(5 * time.Microsecond)
		}
	}
	for _, in := range inputs {
		in.Close()
	}
	exec.Wait()
}

// BenchmarkExchangeHotPath measures the per-record cost of the
// route -> exchange -> apply path (allocs/op is the regression target; the
// driver's one batch per epoch is part of the measurement).
func BenchmarkExchangeHotPath(b *testing.B) {
	b.ReportAllocs()
	exchangeWorkload(b.N, 256)
}

// TestExchangePathAllocsPerRecord pins the allocation count of the exchange
// hot path: the seed runtime spent ~1 allocation per record here (fresh
// OpCtx, per-peer append growth, map multiset churn). With recycled batch
// envelopes the steady state is 2 allocations per 512-record epoch — the
// driver's own input batches; partitions, forwarding copies, and interface
// boxes all come from the per-worker envelope pools — so the budget is
// 0.02 allocs/record, leaving ~4x headroom for map/slice growth.
func TestExchangePathAllocsPerRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin is not meaningful under -short")
	}
	const epochs, perEpoch = 200, 256
	// Warm up one run (lazy growth of queues, scratch, heaps), then measure.
	exchangeWorkload(epochs, perEpoch)
	allocs := testing.AllocsPerRun(3, func() {
		exchangeWorkload(epochs, perEpoch)
	})
	perRecord := allocs / float64(epochs*perEpoch*2)
	if perRecord > 0.02 {
		t.Errorf("exchange hot path allocates %.4f allocs/record (budget 0.02); run BenchmarkExchangeHotPath -benchmem to investigate", perRecord)
	}
}
