package dataflow

import (
	"sync"
	"testing"
)

// pooled counts the envelopes across all of w's per-type free lists.
func pooled(w *Worker) int {
	n := 0
	for i := range w.envPools {
		n += len(w.envPools[i].free)
	}
	return n
}

// TestEnvelopeRefcountAndPool pins the envelope lifecycle at the unit
// level: borrowed vs owned creation, per-enqueue references, recycling on
// the releasing worker, and type-segregated free lists serving each element
// type its own envelopes.
func TestEnvelopeRefcountAndPool(t *testing.T) {
	w := &Worker{}

	// Borrowed envelope: one consumer reference, recycled on release.
	e := getEnv[uint64](w, 8)
	e.s = append(e.s, 1, 2, 3)
	e.incref()
	e.release(w)
	if pooled(w) != 1 {
		t.Fatalf("pool has %d envelopes after release, want 1", pooled(w))
	}
	if got := getEnv[uint64](w, 4); got != e {
		t.Fatalf("pool did not return the recycled envelope")
	} else if len(got.s) != 0 {
		t.Fatalf("recycled envelope not cleared: %v", got.s)
	}
	// Shared envelope (broadcast): recycled only by the last release.
	sh := getEnv[uint64](w, 4) // reuses e; pool is empty again
	sh.incref()
	sh.incref()
	sh.incref() // three consumers
	sh.release(w)
	sh.release(w)
	if pooled(w) != 0 {
		t.Fatalf("envelope recycled with a consumer outstanding")
	}
	sh.release(w)
	if pooled(w) != 1 {
		t.Fatalf("envelope not recycled by its last consumer")
	}

	// Owned envelope dropped without consumers (retired destination, no
	// out edges) recycles immediately. adoptEnv reuses the pooled struct,
	// so the pool round-trips through empty and back to one.
	ow := adoptEnv(w, []uint64{7})
	if pooled(w) != 0 {
		t.Fatalf("adoptEnv did not reuse the pooled envelope")
	}
	ow.release(w)
	if pooled(w) != 1 {
		t.Fatalf("owned envelope without consumers not recycled")
	}

	// Type segregation: each element type is served from its own list, so
	// a uint64 envelope sitting in the pool never satisfies (or blocks) a
	// string request.
	es := getEnv[string](w, 2)
	es.s = append(es.s, "x")
	es.incref()
	es.release(w)
	if got := getEnv[string](w, 1); got != es {
		t.Fatalf("per-type pool did not return the string envelope")
	}
	if got := getEnv[uint64](w, 1); got.refs.Load() != 0 {
		t.Fatalf("pooled uint64 envelope came back with refs %d", got.refs.Load())
	}
}

// TestEnvelopeConcurrentRelease exercises the atomic refcount: many
// goroutines releasing a shared envelope concurrently (as broadcast
// consumers on different workers do) must recycle it exactly once.
func TestEnvelopeConcurrentRelease(t *testing.T) {
	const consumers = 16
	for round := 0; round < 200; round++ {
		e := &batchEnv[int]{}
		for i := 0; i < consumers; i++ {
			e.incref()
		}
		ws := make([]*Worker, consumers)
		var wg sync.WaitGroup
		for i := 0; i < consumers; i++ {
			ws[i] = &Worker{}
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				e.release(w)
			}(ws[i])
		}
		wg.Wait()
		n := 0
		for _, w := range ws {
			n += pooled(w)
		}
		if n != 1 {
			t.Fatalf("round %d: shared envelope recycled %d times, want 1", round, n)
		}
	}
}

// TestSendBatchCopies pins the aliasing contract that makes forwarding
// safe: SendBatch leaves the caller's slice untouched and owned by the
// caller, so operators like Inspect and Concat may forward the very slice
// they received from ForEachBatch while the runtime recycles the original
// envelope underneath.
func TestSendBatchCopies(t *testing.T) {
	exec := NewExecution(Config{Workers: 1})
	var in *InputHandle[uint64]
	var got []uint64
	exec.Build(func(w *Worker) {
		h, s := NewInput[uint64](w, "in")
		in = h
		fwd := w.NewOp("forward", 1)
		Connect(fwd, s, Pipeline[uint64]{})
		outs := fwd.Build(func(c *OpCtx) {
			ForEachBatch(c, 0, func(t Time, data []uint64) {
				SendBatch(c, 0, t, data) // forward the borrowed slice
				// The batch must still be intact after SendBatch returns.
				for i, v := range data {
					if v != uint64(i)*3 {
						panic("SendBatch mutated the caller's slice")
					}
				}
			})
		})
		sink := w.NewOp("sink", 0)
		Connect(sink, Typed[uint64](outs[0]), Pipeline[uint64]{})
		sink.Build(func(c *OpCtx) {
			ForEachBatch(c, 0, func(_ Time, data []uint64) {
				got = append(got, data...)
			})
		})
	})
	exec.Start()
	const n = 64
	for e := 1; e <= 20; e++ {
		batch := make([]uint64, n)
		for i := range batch {
			batch[i] = uint64(i) * 3
		}
		in.SendBatchAt(Time(e), batch)
		in.AdvanceTo(Time(e + 1))
	}
	in.Close()
	exec.Wait()
	if len(got) != 20*n {
		t.Fatalf("sink saw %d records, want %d", len(got), 20*n)
	}
	for i, v := range got {
		if v != uint64(i%n)*3 {
			t.Fatalf("record %d corrupted: got %d want %d (buffer recycled while referenced?)", i, v, uint64(i%n)*3)
		}
	}
}
