package dataflow

import (
	"fmt"

	"megaphone/internal/progress"
)

// batchIn is a queued inbound batch awaiting consumption by an operator.
type batchIn struct {
	time Time
	data any
}

// outEdgeInst is one outgoing edge of an operator output port on a specific
// worker: the canonical edge id plus this worker's partitioner.
type outEdgeInst struct {
	edge progress.Edge
	dst  progress.Port
	part Partitioner
}

// opInstance is one worker's instance of an operator.
type opInstance struct {
	node     progress.Node
	name     string
	numIn    int
	numOut   int
	queues   [][]batchIn
	holds    []Time          // current capability hold per output port; None = none
	inEdges  []progress.Edge // canonical edge id feeding each input port
	outEdges [][]outEdgeInst
	logic    func(*OpCtx)
	purge    func(cut Time) []Time // see OpBuilder.OnPurge; nil = nothing to purge
	bound    func() Time           // see OpBuilder.OnBound; nil = no state to bound

	// Scheduling state, owned by the worker goroutine (see Worker.sweep).
	active    bool     // queued in the worker's activation set
	holdCount int      // output ports with a live hold
	portIDs   []int    // dense tracker ids of the input ports
	seenEpoch []uint64 // port epochs when fcache was computed
	watchIDs  []int    // out-of-band watched ports (WatchFrontier)
	watchSeen []uint64
	fcache    []Time // cached input frontiers, exact while !fdirty
	minF      Time   // min of fcache (None when no inputs)
	fdirty    bool
}

func (op *opInstance) finalize(w *Worker) {
	if op.logic == nil {
		panic(fmt.Sprintf("dataflow: operator %q built without logic", op.name))
	}
}

// Partitioner splits a batch (a []T boxed as any) into per-worker batches.
// The result is indexed by worker; nil entries mean "nothing for that
// worker". A nil Partitioner is the pipeline contract: the batch stays on
// the sending worker. The timestamp is the batch's send time: pacts that
// are membership-aware (Exchange, Broadcast) consult the view governing
// that time, so reconfigurations commit at epoch boundaries.
//
// The returned slice is only read until the next call on the same worker, so
// implementations reuse it across calls; empty partitions must be nil (the
// runtime does not re-check lengths). A partitioner may return the input
// batch itself as a partition (Broadcast does; Exchange does for a single
// peer), in which case the input is owned by the receivers afterwards.
type Partitioner func(t Time, data any) []any

// StreamCore identifies a stream of timestamped batches: the output port of
// the operator that produces it. It is worker-specific only in that it was
// obtained from some worker's builder; the port coordinates are canonical.
type StreamCore struct {
	w   *Worker
	src progress.Port
}

// Valid reports whether the stream was produced by a builder.
func (s StreamCore) Valid() bool { return s.w != nil }

// OpBuilder declares one operator during graph construction.
type OpBuilder struct {
	w       *Worker
	name    string
	numOut  int
	inputs  []StreamCore
	parts   []Partitioner
	codecs  []wireCodec // per input edge; zero value = cannot cross processes
	node    progress.Node
	purgeFn func(cut Time) []Time
	boundFn func() Time
	holdsAt []struct {
		port int
		time Time
	}
}

// NewOp starts the declaration of an operator with the given number of
// output ports.
func (w *Worker) NewOp(name string, outputs int) *OpBuilder {
	return &OpBuilder{w: w, name: name, numOut: outputs}
}

// AddInput connects a stream to the next input port of the operator under
// construction using the given partitioner (nil = pipeline), returning the
// input port index.
func (b *OpBuilder) AddInput(s StreamCore, part Partitioner) int {
	if s.w != b.w {
		panic("dataflow: stream from a different worker")
	}
	b.inputs = append(b.inputs, s)
	b.parts = append(b.parts, part)
	b.codecs = append(b.codecs, wireCodec{})
	return len(b.inputs) - 1
}

// OnPurge registers the operator's deferred-work purge: called (with workers
// parked in Pause, so operator state is safe to touch) when a crash barrier
// discards every record at times >= cut — unapplied input that will be
// re-injected from its deterministic source after the barrier. The callback
// must drop such records from the operator's own buffers and return the
// operator's new capability hold per output port (None = no hold). Hold
// bookkeeping is rewritten directly, without progress deltas: a purge is
// always followed by ResetProgress, which rebuilds every tracker from the
// post-purge holds.
func (b *OpBuilder) OnPurge(f func(cut Time) []Time) {
	b.purgeFn = f
}

// OnBound registers the operator's applied-bound report: a callback returning
// the earliest timestamp the operator has not yet folded into its state —
// every record strictly below the bound is applied, none at or above it is.
// A crash barrier collects the bounds (Execution.AppliedBounds) to compute
// per-bin replay windows: applications above the purge cut survive a crash on
// the workers that made them, so replaying from the cut alone would apply
// those records twice. Called only while workers are parked in Pause.
func (b *OpBuilder) OnBound(f func() Time) {
	b.boundFn = f
}

// InitialHold grants the operator a capability hold at time t on the given
// output port from the start of the computation. Source operators (inputs)
// need this to be allowed to send unprompted.
func (b *OpBuilder) InitialHold(port int, t Time) {
	b.holdsAt = append(b.holdsAt, struct {
		port int
		time Time
	}{port, t})
}

// Build registers the operator with the given logic and returns its output
// streams. The logic runs whenever the worker schedules the operator; it
// must consume queued input via the context and may send, hold, and drop
// capabilities.
func (b *OpBuilder) Build(logic func(*OpCtx)) []StreamCore {
	w := b.w
	e := w.exec

	// Canonical registration (this process's first worker) or verification
	// (others). In a mesh every process registers the same canonical
	// structure independently — the build is deterministic — so edge and
	// node ids agree cluster-wide.
	if w.local == 0 {
		node := e.gb.AddNode(b.name, len(b.inputs), b.numOut)
		e.canonNodes = append(e.canonNodes, struct{ in, out int }{len(b.inputs), b.numOut})
		b.node = node
		for i, in := range b.inputs {
			edge := e.gb.AddEdge(in.src, progress.Port{Node: node, Port: i})
			e.canonEdges = append(e.canonEdges, canonEdge{dst: progress.Port{Node: node, Port: i}})
			e.edgeCodecs = append(e.edgeCodecs, b.codecs[i])
			_ = edge
		}
	} else {
		if w.nodeSeq >= len(e.canonNodes) {
			panic(fmt.Sprintf("dataflow: worker %d built extra operator %q", w.index, b.name))
		}
		cn := e.canonNodes[w.nodeSeq]
		if cn.in != len(b.inputs) || cn.out != b.numOut {
			panic(fmt.Sprintf("dataflow: worker %d operator %q differs from canonical graph", w.index, b.name))
		}
		b.node = progress.Node(w.nodeSeq)
	}
	w.nodeSeq++

	op := &opInstance{
		node:   b.node,
		name:   b.name,
		numIn:  len(b.inputs),
		numOut: b.numOut,
		queues: make([][]batchIn, len(b.inputs)),
		holds:  make([]Time, b.numOut),
		logic:  logic,
		purge:  b.purgeFn,
		bound:  b.boundFn,
	}
	for i := range op.holds {
		op.holds[i] = None
	}
	w.ops = append(w.ops, op)

	// Wire this worker's instances of the inbound edges into the producing
	// operators' outgoing edge lists. Edge ids are assigned in declaration
	// order, matching the canonical registration above.
	for i, in := range b.inputs {
		edgeID := progress.Edge(w.edgeSeq)
		w.edgeSeq++
		op.inEdges = append(op.inEdges, edgeID)
		src := w.ops[in.src.Node]
		src.outEdges = ensureLen(src.outEdges, in.src.Port+1)
		src.outEdges[in.src.Port] = append(src.outEdges[in.src.Port], outEdgeInst{
			edge: edgeID,
			dst:  progress.Port{Node: b.node, Port: i},
			part: b.parts[i],
		})
	}

	// Record initial holds. Every worker's instance holds its own
	// capability, so each contributes one occurrence at the shared
	// (node, port) location. Locations cannot be computed until the graph
	// freezes, so stash the port coordinates; Execution.Build resolves them.
	for _, h := range b.holdsAt {
		if op.holds[h.port] == None {
			op.holdCount++
		}
		op.holds[h.port] = h.time
		e.pendingHolds = append(e.pendingHolds, pendingHold{
			port: progress.Port{Node: b.node, Port: h.port},
			time: h.time,
		})
	}

	outs := make([]StreamCore, b.numOut)
	for i := range outs {
		outs[i] = StreamCore{w: w, src: progress.Port{Node: b.node, Port: i}}
	}
	return outs
}

type pendingHold struct {
	port progress.Port
	time Time
}

func ensureLen[T any](s [][]T, n int) [][]T {
	for len(s) < n {
		s = append(s, nil)
	}
	return s
}

// OpCtx is the scheduling context handed to operator logic: queued input,
// input frontiers, and output capabilities. All progress consequences of one
// scheduling (consumed input, produced output, hold changes) are applied
// atomically after the logic returns.
type OpCtx struct {
	w           *Worker
	op          *opInstance
	frontiers   []Time
	minFrontier Time
	batch       progress.Batch
	remote      []outMsg
	local       []message
}

// Index returns the worker index.
func (c *OpCtx) Index() int { return c.w.index }

// Peers returns the number of workers.
func (c *OpCtx) Peers() int { return c.w.Peers() }

// Frontier returns the frontier of input port i: the least timestamp that
// may still arrive there (None when the input is complete).
func (c *OpCtx) Frontier(i int) Time { return c.frontiers[i] }

// NumQueued reports the number of batches queued on input i.
func (c *OpCtx) NumQueued(i int) int { return len(c.op.queues[i]) }

// ForEach drains input port i, invoking f once per queued batch. The data
// argument is the batch the producer sent; it is only valid during the
// callback — the runtime may recycle the buffer afterwards, so a callee
// that wants to keep records must copy them out (every forwarding path,
// SendBatch included, already does).
//
//megalint:hotpath
func (c *OpCtx) ForEach(i int, f func(t Time, data any)) {
	q := c.op.queues[i]
	if len(q) == 0 {
		return
	}
	// Reuse the queue's backing array: nothing appends to it while the
	// operator's logic runs (inbound routing happens between schedulings,
	// and this operator's own sends are released after its logic returns).
	c.op.queues[i] = q[:0]
	loc := c.w.exec.tracker.EdgeLocation(c.op.inEdges[i])
	for _, b := range q {
		c.batch.Add(loc, b.time, -1)
		f(b.time, b.data)
		releaseAny(c.w, b.data)
	}
	clear(q) // drop batch references before the backing array is reused
}

// Send emits a batch (a []T or *batchEnv[T] boxed as any) at time t on
// output port o. The batch is routed along every edge attached to the port
// according to each edge's partitioner; empty partitions are filtered by
// the partitioners themselves (typed code can check emptiness, the runtime
// cannot). Send panics if t is not covered by a held capability or by the
// operator's input frontier.
//
// Send consumes one reference to data: each enqueue (local or remote) takes
// its own reference, and the creator's is dropped on return, so an owned
// envelope with no consumers recycles immediately.
//
//megalint:hotpath
func (c *OpCtx) Send(o int, t Time, data any) {
	c.assertCanSendAt(o, t)
	if o >= len(c.op.outEdges) {
		releaseAny(c.w, data) // no consumers
		return
	}
	for _, oe := range c.op.outEdges[o] {
		if oe.part == nil {
			// Pipeline: deliver locally.
			c.batch.Add(c.w.exec.tracker.EdgeLocation(oe.edge), t, 1)
			increfAny(data)
			c.local = append(c.local, message{edge: oe.edge, time: t, data: data})
			continue
		}
		parts := oe.part(t, data)
		for peer, pd := range parts {
			if pd == nil {
				continue
			}
			m := message{edge: oe.edge, time: t, data: pd}
			if peer == c.w.index {
				c.batch.Add(c.w.exec.tracker.EdgeLocation(oe.edge), t, 1)
				increfAny(pd)
				c.local = append(c.local, m)
			} else if mesh := c.w.exec.mesh; mesh == nil || !mesh.Retired(peer/c.w.exec.cfg.Workers) {
				c.batch.Add(c.w.exec.tracker.EdgeLocation(oe.edge), t, 1)
				increfAny(pd)
				c.remote = append(c.remote, outMsg{peer: peer, msg: m})
			} else if pd != data {
				// The destination slot is retired and the partition was built
				// for it alone: recycle it. (When the partitioner forwarded the
				// input itself, the release below covers it.) The message is
				// dropped without a pointstamp, which could never cancel
				// (nothing will consume it) and would wedge the frontier at t.
				// A migration that straddled a death ships its dead-bound bins
				// into this void; the bins are in the crash's lost set and
				// their restore rebuilds them from the checkpoint.
				releaseAny(c.w, pd)
			}
		}
	}
	releaseAny(c.w, data)
}

//megalint:hotpath
func (c *OpCtx) assertCanSendAt(o int, t Time) {
	if h := c.op.holds[o]; h != None && t >= h {
		return
	}
	if t >= c.minFrontier {
		// Covered by a timestamp that may still arrive on some input; the
		// batch being reacted to is accounted at the input edge until this
		// scheduling's deltas apply atomically.
		return
	}
	panic(fmt.Sprintf("dataflow: %s sent at %v without capability (hold=%v, frontier=%v)",
		c.op.name, t, c.op.holds[o], c.minFrontier))
}

// Hold sets the capability hold of output port o to time t, allowing the
// operator to send at times >= t in future schedulings. Holding at a time
// earlier than the current hold or before the input frontier is rejected
// unless covered by the previous hold.
//
//megalint:hotpath
func (c *OpCtx) Hold(o int, t Time) {
	prev := c.op.holds[o]
	if t == prev {
		return
	}
	// A hold move is valid when covered by the previous hold (downgrade) or
	// by the input frontier (a fresh acquisition justified by input that may
	// still arrive, e.g. a batch consumed in this very scheduling).
	if !(prev != None && t >= prev) && !(t >= c.minFrontier) && c.op.numIn > 0 {
		panic(fmt.Sprintf("dataflow: %s held at %v uncovered (prev=%v, frontier=%v)",
			c.op.name, t, prev, c.minFrontier))
	}
	loc := c.w.exec.tracker.CapLocation(progress.Port{Node: c.op.node, Port: o})
	if prev != None {
		c.batch.Add(loc, prev, -1)
	} else if t != None {
		c.op.holdCount++
	}
	c.batch.Add(loc, t, 1)
	c.op.holds[o] = t
}

// DropHold releases the capability hold of output port o.
//
//megalint:hotpath
func (c *OpCtx) DropHold(o int) {
	prev := c.op.holds[o]
	if prev == None {
		return
	}
	loc := c.w.exec.tracker.CapLocation(progress.Port{Node: c.op.node, Port: o})
	c.batch.Add(loc, prev, -1)
	c.op.holds[o] = None
	c.op.holdCount--
}

// HeldAt returns the current hold of output port o (None if none).
func (c *OpCtx) HeldAt(o int) Time { return c.op.holds[o] }
