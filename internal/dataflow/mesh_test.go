package dataflow

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"
)

// joinLocalMeshes builds an n-process cluster inside this test process:
// n meshes over loopback TCP with pre-bound listeners. Optional tweak
// functions adjust each spec before joining (striping, coalescing, ...).
func joinLocalMeshes(t *testing.T, n int, tweaks ...func(*ClusterSpec)) []*Mesh {
	t.Helper()
	lns := make([]net.Listener, n)
	hosts := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		hosts[i] = ln.Addr().String()
	}
	meshes := make([]*Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := ClusterSpec{
				Hosts:       hosts,
				Process:     i,
				Listener:    lns[i],
				DialTimeout: 10 * time.Second,
			}
			for _, tw := range tweaks {
				tw(&spec)
			}
			meshes[i], errs[i] = JoinMesh(spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	return meshes
}

// kcOut is a per-key running count, the output of the test dataflow. It has
// no BinaryRec implementation on purpose: it only travels Pipeline edges.
type kcOut struct{ K, C uint64 }

// buildKeyCount wires input -> exchange-by-key -> stateful count -> sink on
// one worker, returning the input handle. Outputs are reported through
// collect (called on the worker goroutine).
func buildKeyCount(w *Worker, collect func(kcOut)) *InputHandle[uint64] {
	in, s := NewInput[uint64](w, "in")
	b := w.NewOp("count", 1)
	Connect(b, s, Exchange[uint64]{Hash: func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }})
	counts := map[uint64]uint64{}
	outs := b.Build(func(c *OpCtx) {
		ForEachBatch(c, 0, func(t Time, data []uint64) {
			out := make([]kcOut, 0, len(data))
			for _, k := range data {
				counts[k]++
				out = append(out, kcOut{K: k, C: counts[k]})
			}
			SendBatch(c, 0, t, out)
		})
	})
	res := Typed[kcOut](outs[0])
	sb := w.NewOp("sink", 0)
	Connect(sb, res, Pipeline[kcOut]{})
	sb.Build(func(c *OpCtx) {
		ForEachBatch(c, 0, func(t Time, data []kcOut) {
			for _, o := range data {
				collect(o)
			}
		})
	})
	return in
}

// genKeys is the deterministic per-(global worker, epoch) input, with heavy
// key collisions across workers so the exchange really mixes traffic.
func genKeys(worker int, epoch int) []uint64 {
	out := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		out = append(out, uint64((epoch*13+i*7+worker)%23))
	}
	return out
}

// runKeyCountProcess runs one process's share of the clustered key count:
// wpp workers, epochs of deterministic input, outputs appended to sink.
func runKeyCountProcess(mesh *Mesh, wpp, epochs int, sink *[]kcOut, mu *sync.Mutex) {
	exec := NewExecution(Config{Workers: wpp, Mesh: mesh})
	var handles []*InputHandle[uint64]
	exec.Build(func(w *Worker) {
		h := buildKeyCount(w, func(o kcOut) {
			mu.Lock()
			*sink = append(*sink, o)
			mu.Unlock()
		})
		handles = append(handles, h)
	})
	exec.Start()
	for e := 1; e <= epochs; e++ {
		for li, h := range handles {
			global := mesh.Process()*wpp + li
			h.SendBatchAt(Time(e), genKeys(global, e))
		}
		for _, h := range handles {
			h.AdvanceTo(Time(e + 1))
		}
	}
	for _, h := range handles {
		h.Close()
	}
	exec.Wait()
}

// TestMeshKeyCountEquivalence runs the same keyed computation as one
// process with 6 workers and as a 3-process x 2-worker cluster over
// loopback TCP, and requires identical output multisets.
func TestMeshKeyCountEquivalence(t *testing.T) {
	testMeshKeyCountEquivalence(t)
}

// TestMeshKeyCountEquivalenceStriped is the same equivalence check with the
// cluster side striped over 3 connections per peer pair and a tiny
// coalescing threshold, so record batches split across many multi-record
// frames on many lanes. Output must still match the single-process run
// exactly: per-lane FIFO keyed by sending worker keeps each worker's
// progress ahead of its data.
func TestMeshKeyCountEquivalenceStriped(t *testing.T) {
	testMeshKeyCountEquivalence(t, func(s *ClusterSpec) {
		s.Conns = 3
		s.CoalesceBytes = 64
	})
}

func testMeshKeyCountEquivalence(t *testing.T, tweaks ...func(*ClusterSpec)) {
	const procs, wpp, epochs = 3, 2, 40

	// Single-process reference.
	var refMu sync.Mutex
	var ref []kcOut
	exec := NewExecution(Config{Workers: procs * wpp})
	var handles []*InputHandle[uint64]
	exec.Build(func(w *Worker) {
		h := buildKeyCount(w, func(o kcOut) {
			refMu.Lock()
			ref = append(ref, o)
			refMu.Unlock()
		})
		handles = append(handles, h)
	})
	exec.Start()
	for e := 1; e <= epochs; e++ {
		for wi, h := range handles {
			h.SendBatchAt(Time(e), genKeys(wi, e))
		}
		for _, h := range handles {
			h.AdvanceTo(Time(e + 1))
		}
	}
	for _, h := range handles {
		h.Close()
	}
	exec.Wait()

	// Clustered run.
	meshes := joinLocalMeshes(t, procs, tweaks...)
	var cluMu sync.Mutex
	var clu []kcOut
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			runKeyCountProcess(meshes[p], wpp, epochs, &clu, &cluMu)
		}(p)
	}
	wg.Wait()

	if got, want := canonKC(clu), canonKC(ref); got != want {
		t.Fatalf("cluster output multiset differs from single-process run:\ncluster (%d recs):\n%.2000s\nsingle (%d recs):\n%.2000s",
			len(clu), got, len(ref), want)
	}
}

func canonKC(recs []kcOut) string {
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = fmt.Sprintf("%d:%d", r.K, r.C)
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestMeshControlChannel pins the control-plane channel the cluster
// AutoController rides on: BroadcastControl reaches every peer exactly once
// in per-sender FIFO order, frames sent before the receiving execution
// starts (or before a handler is registered) are buffered and replayed in
// arrival order rather than dropped, and handler invocations on one mesh
// never overlap.
func TestMeshControlChannel(t *testing.T) {
	const procs, perSender = 3, 4
	meshes := joinLocalMeshes(t, procs)

	// First half of the traffic goes out before any execution starts and
	// before any handler exists: the mesh must hold it.
	for p, m := range meshes {
		for i := 0; i < perSender/2; i++ {
			m.BroadcastControl([]byte{byte(p), byte(i)})
		}
	}

	// Trivial identical executions to open inbound dispatch.
	handles := make([]*InputHandle[uint64], procs)
	execs := make([]*Execution, procs)
	for p := range meshes {
		exec := NewExecution(Config{Workers: 1, Mesh: meshes[p]})
		exec.Build(func(w *Worker) {
			in, s := NewInput[uint64](w, "in")
			handles[p] = in
			b := w.NewOp("sink", 0)
			Connect(b, s, Pipeline[uint64]{})
			b.Build(func(c *OpCtx) { ForEachBatch(c, 0, func(Time, []uint64) {}) })
		})
		exec.Start()
		execs[p] = exec
	}

	type rec struct {
		from    int
		payload []byte
	}
	var mu sync.Mutex
	recv := make([][]rec, procs)
	overlaps := make([]int32, procs)
	var overlapped bool
	for p := range meshes {
		p := p
		meshes[p].SetControlHandler(func(from int, payload []byte) {
			mu.Lock()
			overlaps[p]++
			if overlaps[p] != 1 {
				overlapped = true
			}
			recv[p] = append(recv[p], rec{from, append([]byte(nil), payload...)})
			overlaps[p]--
			mu.Unlock()
		})
	}

	// Second half lands with handlers registered: direct dispatch.
	for p, m := range meshes {
		for i := perSender / 2; i < perSender; i++ {
			m.BroadcastControl([]byte{byte(p), byte(i)})
		}
	}

	want := (procs - 1) * perSender
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := true
		for p := range recv {
			if len(recv[p]) < want {
				done = false
			}
		}
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for p := range execs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			handles[p].Close()
			execs[p].Wait()
		}(p)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if overlapped {
		t.Error("control handler invocations overlapped on one mesh")
	}
	for p := range recv {
		if len(recv[p]) != want {
			t.Fatalf("process %d received %d control frames, want %d: %v", p, len(recv[p]), want, recv[p])
		}
		// Per-sender FIFO: each peer's frames arrive as seq 0,1,2,...
		next := make(map[int]byte)
		for _, r := range recv[p] {
			if len(r.payload) != 2 {
				t.Fatalf("process %d: malformed payload %v", p, r.payload)
			}
			sender := int(r.payload[0])
			if sender == p {
				t.Fatalf("process %d received its own broadcast", p)
			}
			if sender != r.from {
				t.Fatalf("process %d: frame from %d claims sender %d", p, r.from, sender)
			}
			if r.payload[1] != next[sender] {
				t.Fatalf("process %d: sender %d out of order: got seq %d, want %d", p, sender, r.payload[1], next[sender])
			}
			next[sender]++
		}
	}
}

// TestMeshBroadcastAndFrontier checks that broadcast edges reach every
// worker of every process exactly once per sender, and that cluster-wide
// completion (Wait) observes remote frontier movement.
func TestMeshBroadcastAndFrontier(t *testing.T) {
	const procs, wpp = 2, 2
	meshes := joinLocalMeshes(t, procs)
	var mu sync.Mutex
	got := map[[2]uint64]int{} // (sender worker, value) -> deliveries
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			exec := NewExecution(Config{Workers: wpp, Mesh: meshes[p]})
			var handles []*InputHandle[uint64]
			exec.Build(func(w *Worker) {
				in, s := NewInput[uint64](w, "in")
				handles = append(handles, in)
				b := w.NewOp("bcast-sink", 0)
				Connect(b, s, Broadcast[uint64]{})
				b.Build(func(c *OpCtx) {
					ForEachBatch(c, 0, func(tm Time, data []uint64) {
						mu.Lock()
						for _, v := range data {
							got[[2]uint64{v >> 32, v & 0xffffffff}]++
						}
						mu.Unlock()
					})
				})
			})
			exec.Start()
			for li, h := range handles {
				global := uint64(p*wpp + li)
				h.SendAt(1, global<<32|1, global<<32|2)
				h.Close()
			}
			exec.Wait()
		}(p)
	}
	wg.Wait()

	total := procs * wpp
	if len(got) != total*2 {
		t.Fatalf("got %d distinct (sender, value) pairs, want %d", len(got), total*2)
	}
	for k, n := range got {
		if n != total {
			t.Fatalf("value %v delivered %d times, want %d (once per worker)", k, n, total)
		}
	}
}
