package dataflow

import (
	"megaphone/internal/progress"
)

// Probe observes the frontier on a dataflow edge from outside the dataflow
// (timely's `probe`). Megaphone's F operators use probes to monitor the
// output frontier of the S operators, and harnesses use probes to measure
// end-to-end latency.
//
// A probe is implemented as a sink operator: it consumes and discards the
// batches of the probed stream, and exposes the progress tracker's frontier
// at its own input port, which by construction is the frontier of the
// probed stream.
type Probe struct {
	tracker func() *progress.Tracker
	port    progress.Port
}

// NewProbe attaches a probe to stream s on worker w and returns its handle.
// Every worker must attach its own probe instance (the graph must be
// identical on all workers); the returned handles are interchangeable since
// the frontier is global.
func NewProbe[T any](w *Worker, s Stream[T]) *Probe {
	b := w.NewOp("probe", 0)
	Connect(b, s, Pipeline[T]{})
	node := progress.Node(w.nodeSeq) // assigned by Build below
	b.Build(func(c *OpCtx) {
		c.ForEach(0, func(Time, any) {})
	})
	return &Probe{
		tracker: func() *progress.Tracker { return w.exec.tracker },
		port:    progress.Port{Node: node, Port: 0},
	}
}

// Frontier returns the least timestamp that may still arrive at the probe,
// or None if the probed stream is complete.
func (p *Probe) Frontier() Time { return p.tracker().Frontier(p.port) }

// LessThan reports whether the probe's frontier is strictly less than t:
// that is, whether a record with time less than t could still be in flight.
func (p *Probe) LessThan(t Time) bool {
	f := p.Frontier()
	return f < t
}

// Done reports whether the probed stream has completed.
func (p *Probe) Done() bool { return p.Frontier() == None }
