package dataflow

import (
	"testing"

	"megaphone/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: worker event
// loops must exit with their execution and mesh-backed runs must join
// their transport goroutines on Finish.
func TestMain(m *testing.M) { leakcheck.Main(m) }
