package dataflow

import "sync/atomic"

// Batch envelopes make the record buffers flowing along edges recyclable.
// A batch traveling an edge as `any` is either a raw []T (remote decode,
// direct user sends — garbage-collected as before) or a *batchEnv[T], a
// refcounted wrapper whose buffer returns to a per-worker free list when
// its last consumer is done. Envelope pointers box into `any` without
// allocating, which is what takes the exchange hot path from one
// interface-box allocation per batch hop to zero.
//
// Ownership protocol:
//   - Wrappers created on behalf of a producer (adoptEnv for input staging,
//     SendBatch's copy) start with refs=1: the creator owns them until
//     OpCtx.Send drops that reference after enqueueing.
//   - Wrappers created by partitioners (partitionBy) start with refs=0:
//     they are borrowed until Send increfs them per enqueue, and released
//     outright if their destination turns out to be retired.
//   - Every enqueue (local inbox or remote outMsg) increfs; every consumer
//     (ForEach after the callback, sendRemote after encoding) releases.
//     The count reaches zero only when no reference remains, so a buffer is
//     never recycled while a queue, callback, or encoder can still see it.
//
// Free lists are per worker and only touched from that worker's goroutine
// (producers get from their own list, the final releaser puts to its own),
// so they need no locking; refs is atomic because a broadcast envelope is
// released concurrently by the workers that consumed it.
type batchEnv[T any] struct {
	s    []T
	refs atomic.Int32
}

// envPool is one worker's free list for a single envelope element type. The
// lists are segregated by type because a saturated dataflow releases
// envelopes in per-operator bursts: a single mixed stack buries one edge's
// type under hundreds of another's, and any bounded scan then misses
// constantly. typ is the typed-nil *batchEnv[T] boxed as `any` — interface
// equality on two typed nils compares just the type words, so the lookup
// needs no reflection.
type envPool struct {
	typ  any
	free []any // stack of *batchEnv[T] matching typ
}

// batchRef is the type-erased envelope handle OpCtx.Send and the consumers
// use; raw []T batches simply fail the assertion and are left to the GC.
type batchRef interface {
	incref()
	release(w *Worker)
}

//megalint:hotpath
func (e *batchEnv[T]) incref() { e.refs.Add(1) }

// release drops one reference; the last one clears the buffer (pooled
// buffers must not pin record-internal pointers — migrated state payloads
// can be large) and returns the envelope to w's free list for its type.
//
//megalint:hotpath
func (e *batchEnv[T]) release(w *Worker) {
	if e.refs.Add(-1) > 0 {
		return
	}
	clear(e.s)
	e.s = e.s[:0]
	key := any((*batchEnv[T])(nil))
	for i := range w.envPools {
		if p := &w.envPools[i]; p.typ == key {
			if len(p.free) < envPoolCap {
				p.free = append(p.free, e)
			}
			return
		}
	}
	//megalint:allow hotalloc first release of a new envelope type registers its pool; once per type per worker
	w.envPools = append(w.envPools, envPool{typ: key, free: []any{e}})
}

// envPoolCap bounds each per-type free list; overflow is left to the GC.
// The bound is sized for saturation: an open-loop driver running past
// capacity adopts and partitions whole backlogs in one scheduling, so the
// creation bursts between consumption rounds run to the hundreds of
// envelopes per edge.
const envPoolCap = 1024

// getEnv returns an envelope of element type T with capacity for n records
// and refs=0 (borrowed), reusing w's free list for T when it can. The pool
// list is a handful of entries (one per envelope type crossing this
// worker), so the linear type match stays cheaper than a map.
//
//megalint:hotpath
func getEnv[T any](w *Worker, n int) *batchEnv[T] {
	key := any((*batchEnv[T])(nil))
	for i := range w.envPools {
		p := &w.envPools[i]
		if p.typ != key {
			continue
		}
		if last := len(p.free) - 1; last >= 0 {
			e := p.free[last].(*batchEnv[T])
			p.free[last] = nil
			p.free = p.free[:last]
			e.refs.Store(0)
			if cap(e.s) < n {
				//megalint:allow hotalloc pool hit with undersized buffer: grows once, then sticks at high-water capacity
				e.s = make([]T, 0, n)
			}
			return e
		}
		break
	}
	//megalint:allow hotalloc pool miss: the free list is warm at steady state, misses only during ramp-up
	return &batchEnv[T]{s: make([]T, 0, n)}
}

// adoptEnv wraps a slice whose ownership the caller transfers to the
// runtime (input staging buffers) in an owned envelope: refs=1, released by
// Send after enqueueing. The envelope's pooled buffer, if any, is dropped
// in favor of the adopted one, which enters the pool when released.
//
//megalint:hotpath
func adoptEnv[T any](w *Worker, s []T) *batchEnv[T] {
	e := getEnv[T](w, 0)
	e.s = s
	e.refs.Store(1)
	return e
}

// asBatch unwraps the records of a batch traveling as `any`.
//
//megalint:hotpath
func asBatch[T any](data any) []T {
	if e, ok := data.(*batchEnv[T]); ok {
		return e.s
	}
	return data.([]T)
}

// increfAny / releaseAny apply the envelope protocol to a batch that may be
// a raw slice (no-ops there).
//
//megalint:hotpath
func increfAny(data any) {
	if r, ok := data.(batchRef); ok {
		r.incref()
	}
}

//megalint:hotpath
func releaseAny(w *Worker, data any) {
	if r, ok := data.(batchRef); ok {
		r.release(w)
	}
}
