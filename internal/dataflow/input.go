package dataflow

import (
	"fmt"
	"sync"

	"megaphone/internal/timestamp"
)

// InputHandle feeds timestamped records into a dataflow from outside the
// worker threads. Each worker has its own handle; a driver goroutine stages
// records and advances the handle's epoch, and the worker's input operator
// flushes staged records and downgrades its capability to the epoch.
//
// Handles are safe for use by one driver goroutine concurrently with the
// worker threads.
type InputHandle[T any] struct {
	mu     sync.Mutex
	staged []stagedBatch[T]
	spare  []stagedBatch[T] // recycled staging buffer (see schedule)
	epoch  Time
	closed bool
	dirty  bool // unflushed staging, epoch change, or close
	w      *Worker
}

type stagedBatch[T any] struct {
	time Time
	data []T
}

// NewInput declares an input operator on worker w and returns the handle
// that drives it together with its output stream. The input starts at epoch
// 0.
func NewInput[T any](w *Worker, name string) (*InputHandle[T], Stream[T]) {
	h := &InputHandle[T]{w: w}
	b := w.NewOp(name, 1)
	b.InitialHold(0, 0)
	outs := b.Build(func(c *OpCtx) {
		h.schedule(c)
	})
	w.pollers = append(w.pollers, poller{op: w.ops[len(w.ops)-1], pending: h.pending})
	return h, Typed[T](outs[0])
}

// SendAt stages a batch of records at time t. t must not be earlier than the
// handle's current epoch. The records are copied, so callers may pass a
// retained slice variadically.
func (h *InputHandle[T]) SendAt(t Time, data ...T) {
	if len(data) == 0 {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		panic("dataflow: SendAt on closed input")
	}
	if t < h.epoch {
		h.mu.Unlock()
		panic(fmt.Sprintf("dataflow: SendAt(%v) behind epoch %v", t, h.epoch))
	}
	h.staged = append(h.staged, stagedBatch[T]{time: t, data: append([]T(nil), data...)})
	h.dirty = true
	h.mu.Unlock()
	h.w.poke()
}

// SendBatchAt stages an already-built batch at time t without copying.
// Ownership of data passes to the runtime, which recycles the buffer once
// the batch is consumed: the caller must not reuse or read the slice after
// the call.
func (h *InputHandle[T]) SendBatchAt(t Time, data []T) {
	if len(data) == 0 {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		panic("dataflow: SendAt on closed input")
	}
	if t < h.epoch {
		h.mu.Unlock()
		panic(fmt.Sprintf("dataflow: SendBatchAt(%v) behind epoch %v", t, h.epoch))
	}
	h.staged = append(h.staged, stagedBatch[T]{time: t, data: data})
	h.dirty = true
	h.mu.Unlock()
	h.w.poke()
}

// AdvanceTo raises the input's epoch to t, promising that no future record
// will carry a time earlier than t. Downstream frontiers advance once the
// worker flushes.
func (h *InputHandle[T]) AdvanceTo(t Time) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if t < h.epoch {
		h.mu.Unlock()
		panic(fmt.Sprintf("dataflow: AdvanceTo(%v) behind epoch %v", t, h.epoch))
	}
	h.epoch = t
	h.dirty = true
	h.mu.Unlock()
	h.w.poke()
}

// Epoch returns the handle's current epoch.
func (h *InputHandle[T]) Epoch() Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// Close marks the input complete. Staged records are still delivered; once
// flushed, the input's capability is dropped and downstream frontiers can
// empty.
func (h *InputHandle[T]) Close() {
	h.mu.Lock()
	h.closed = true
	h.dirty = true
	h.mu.Unlock()
	h.w.poke()
}

// Settled reports whether the worker has flushed every staged batch and
// epoch change of this handle into the dataflow. A membership barrier uses
// it on a joiner: the joiner's capability holds must reflect its advanced
// inputs before its hold inventory is meaningful, and unlike a member it
// has no converged output frontier to certify that.
func (h *InputHandle[T]) Settled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.dirty
}

// pending reports whether the worker has unflushed input work.
func (h *InputHandle[T]) pending() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dirty
}

// schedule runs on the worker thread: flush staged batches, then move the
// capability to the current epoch (or drop it when closed). The staging
// buffer is swapped with a spare and recycled so steady-state flushing does
// not allocate.
func (h *InputHandle[T]) schedule(c *OpCtx) {
	h.mu.Lock()
	staged := h.staged
	h.staged = h.spare[:0]
	h.spare = nil
	epoch := h.epoch
	closed := h.closed
	h.dirty = false
	h.mu.Unlock()

	for _, b := range staged {
		if len(b.data) > 0 {
			// The staged buffer is owned by the runtime (see SendBatchAt):
			// adopt it into an envelope so consumers recycle it.
			c.Send(0, b.time, adoptEnv(c.w, b.data))
		}
	}
	clear(staged) // drop record references before recycling
	h.mu.Lock()
	h.spare = staged[:0]
	h.mu.Unlock()

	if closed {
		c.DropHold(0)
		return
	}
	if cur := c.HeldAt(0); cur == timestamp.MaxScalar || epoch > cur {
		c.Hold(0, epoch)
	}
}
