package dataflow_test

import (
	"sync/atomic"
	"testing"

	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// TestProbeFrontierMonotone watches a probe while a notify-heavy dataflow
// runs and checks the observed frontier never regresses: capability
// re-acquisition at earlier times is always bundled atomically with the
// input message that justifies it, so no observer can see the frontier go
// backwards.
func TestProbeFrontierMonotone(t *testing.T) {
	exec := dataflow.NewExecution(dataflow.Config{Workers: 4})
	var ins []*dataflow.InputHandle[int]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[int](w, "in")
		ins = append(ins, h)
		out := operators.UnaryNotify(w, "hold-churn", s,
			dataflow.Exchange[int]{Hash: func(x int) uint64 { return uint64(x) }},
			func() struct{} { return struct{}{} },
			func(tm dataflow.Time, data []int, _ struct{}, emit func(int)) {
				for _, x := range data {
					emit(x)
				}
			})
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	stop := make(chan struct{})
	var regressed atomic.Bool
	go func() {
		last := dataflow.Time(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := probe.Frontier()
			if f < last {
				regressed.Store(true)
				return
			}
			last = f
		}
	}()

	for e := dataflow.Time(1); e <= 2000; e++ {
		for wi, h := range ins {
			h.SendAt(e, int(e)+wi)
		}
		for _, h := range ins {
			h.AdvanceTo(e + 1)
		}
	}
	for _, h := range ins {
		h.Close()
	}
	exec.Wait()
	close(stop)
	if regressed.Load() {
		t.Fatal("probe frontier regressed")
	}
}
