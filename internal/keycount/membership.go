package keycount

import (
	"fmt"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// runMembership is the dynamic-membership variant of Run: the cluster's
// roster may grow (an absent slot joins mid-run) and shrink (drain-leave and
// crash-leave) while the dataflow keeps running. Scripted migrations, the
// auto-controller, preload and whole-cluster recovery are rejected up front —
// membership owns the control bus, the assignment mirror, and the checkpoint
// restore path.
func runMembership(cfg RunConfig) (harness.Result, error) {
	switch {
	case cfg.Cluster == nil:
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires a cluster (-hosts)")
	case cfg.Auto != nil:
		return harness.Result{}, harness.MembershipSpecError("keycount", "-auto (the autoscaler control plane shares the control bus)")
	case cfg.MigrateAt > 0:
		return harness.Result{}, harness.MembershipSpecError("keycount", "scripted migrations (they would race the membership controller's assignment mirror)")
	case cfg.Recover:
		return harness.Result{}, harness.MembershipSpecError("keycount", "-recover (crash recovery is per-member, inside the run)")
	case cfg.Preload:
		return harness.Result{}, harness.MembershipSpecError("keycount", "preload (it targets the full-roster initial assignment, which membership reseeds)")
	case cfg.CheckpointDir == "":
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires -checkpoint-dir (crash-leave restores the dead member's bins from the latest complete checkpoint)")
	}
	var hashFn func(uint64) uint64
	switch cfg.Variant {
	case HashCount:
		hashFn = core.Mix64
	case KeyCount:
		hashFn = denseHasher(cfg.Domain)
	default:
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires a migrateable variant (hash or key), not %v", cfg.Variant)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = time.Millisecond
	}

	mesh, procs, proc, err := harness.JoinCluster("keycount", cfg.Cluster, cfg.Transfer, false)
	if err != nil {
		return harness.Result{}, err
	}
	totalWorkers := cfg.Workers * procs
	firstWorker := proc * cfg.Workers

	ckpt, duration, err := harness.PlanCheckpoints("keycount", cfg.CheckpointDir, cfg.CheckpointEvery,
		false, cfg.Transfer, totalWorkers, firstWorker, cfg.Workers, cfg.EpochEvery, cfg.Duration)
	if err != nil {
		return harness.Result{}, err
	}
	cfg.Duration = duration
	cfg.Params.Checkpoint = ckpt.Config

	exec := dataflow.NewExecution(dataflow.Config{Workers: cfg.Workers, Mesh: mesh})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	handles := &Handles{
		Hash: &core.Handle[uint64, HashState, Out]{},
		Key:  &core.Handle[uint64, ArrayState, Out]{},
	}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := Build(w, cfg.Params, ctlStream, data, handles)
		if cfg.Sink != nil {
			attachSink(w, out, cfg.Sink)
		}
		p := dataflow.NewProbe(w, out)
		if w.Index() == firstWorker {
			probe = p
		}
	})
	exec.Start()

	var initialActive []bool
	if cfg.Cluster.Absent != nil {
		initialActive = make([]bool, procs)
		for p := range initialActive {
			initialActive[p] = !cfg.Cluster.Absent[p]
		}
	}
	fab := harness.ClusterFabric{Execution: exec, Mesh: mesh}
	mc := plan.NewMembershipController(plan.MembershipOptions{
		Bus:            mesh,
		Fabric:         fab,
		Frontier:       probe.Frontier,
		Procs:          procs,
		Proc:           proc,
		WorkersPerProc: cfg.Workers,
		Bins:           1 << uint(cfg.LogBins),
		InitialActive:  initialActive,
		CheckpointDir:  cfg.CheckpointDir,
		Slack:          cfg.MembershipSlack,
		TickEvery:      cfg.EpochEvery,
		Logf:           cfg.Cluster.Logf,
	})

	domain := uint64(cfg.Domain)
	workload := cfg.Workload
	gen := func(w int, epoch int64, n int) []uint64 {
		out := make([]uint64, n)
		workload.Fill(out, domain, w, epoch)
		return out
	}
	logBins := cfg.LogBins
	binOf := func(k uint64) int { return core.BinOf(hashFn(k), logBins) }

	res, err := harness.RunMembership(fab, mc, dataIns, ctlIns, probe, gen, binOf, harness.MembershipRunOptions{
		Rate:            cfg.Rate,
		EpochEvery:      cfg.EpochEvery,
		Duration:        cfg.Duration,
		TotalInputs:     totalWorkers,
		CheckpointEvery: ckpt.Every,
		LeaveAt:         cfg.LeaveAt,
		CrashAt:         cfg.CrashAt,
		CheckpointDir:   cfg.CheckpointDir,
	})
	ckpt.Finish(&res)
	return res, err
}
