package keycount

import (
	"fmt"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// runMembership is the dynamic-membership variant of Run: the cluster's
// roster may grow (an absent slot joins mid-run) and shrink (drain-leave and
// crash-leave) while the dataflow keeps running. Scripted migrations route
// through the membership controller's schedule broadcast (so the move set
// stays canonical across leader failovers), preload consults the live-roster
// initial assignment, and -auto attaches the cluster autoscaler as a
// telemetry plane multiplexed onto the same control bus — the membership
// leader turns its load windows into standby admissions and drain-leaves.
// Only whole-cluster -recover stays rejected: recovery inside a membership
// run is per-member (crash-leave).
func runMembership(cfg RunConfig) (harness.Result, error) {
	switch {
	case cfg.Cluster == nil:
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires a cluster (-hosts)")
	case cfg.Recover:
		return harness.Result{}, harness.MembershipSpecError("keycount", "-recover (crash recovery is per-member, inside the run)")
	case cfg.CheckpointDir == "":
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires -checkpoint-dir (crash-leave restores the dead member's bins from the latest complete checkpoint)")
	case cfg.Auto != nil && cfg.ScaleOutAbove == 0 && cfg.ScaleInBelow == 0:
		return harness.Result{}, fmt.Errorf("keycount: -auto with dynamic membership drives elasticity from load thresholds; give -scale-out-above and/or -scale-in-below")
	}
	var hashFn func(uint64) uint64
	switch cfg.Variant {
	case HashCount:
		hashFn = core.Mix64
	case KeyCount:
		hashFn = denseHasher(cfg.Domain)
	default:
		return harness.Result{}, fmt.Errorf("keycount: dynamic membership requires a migrateable variant (hash or key), not %v", cfg.Variant)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = time.Millisecond
	}

	mesh, procs, proc, err := harness.JoinCluster("keycount", cfg.Cluster, cfg.Transfer, false)
	if err != nil {
		return harness.Result{}, err
	}
	totalWorkers := cfg.Workers * procs
	firstWorker := proc * cfg.Workers

	ckpt, duration, err := harness.PlanCheckpoints("keycount", cfg.CheckpointDir, cfg.CheckpointEvery,
		false, cfg.Transfer, totalWorkers, firstWorker, cfg.Workers, cfg.EpochEvery, cfg.Duration)
	if err != nil {
		return harness.Result{}, err
	}
	cfg.Duration = duration
	cfg.Params.Checkpoint = ckpt.Config

	var meter *core.LoadMeter
	if cfg.Auto != nil {
		meter = core.NewLoadMeter(totalWorkers, cfg.LogBins)
		cfg.Params.Meter = meter
		cfg.Auto.Meter = meter
	}

	exec := dataflow.NewExecution(dataflow.Config{Workers: cfg.Workers, Mesh: mesh})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	handles := &Handles{
		Hash: &core.Handle[uint64, HashState, Out]{},
		Key:  &core.Handle[uint64, ArrayState, Out]{},
	}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := Build(w, cfg.Params, ctlStream, data, handles)
		if cfg.Sink != nil {
			attachSink(w, out, cfg.Sink)
		}
		p := dataflow.NewProbe(w, out)
		if w.Index() == firstWorker {
			probe = p
		}
	})

	var initialActive []bool
	if cfg.Cluster.Absent != nil {
		initialActive = make([]bool, procs)
		for p := range initialActive {
			initialActive[p] = !cfg.Cluster.Absent[p]
		}
	}
	bins := 1 << uint(cfg.LogBins)

	// With -auto the two control planes share the mesh control channel
	// through a mux: autoscaler kinds below 10, membership at and above.
	var memBus plan.ControlBus = mesh
	var autoscale *plan.MembershipAutoscale
	var auto *plan.AutoController
	if cfg.Auto != nil {
		mux := plan.NewBusMux(mesh)
		memBus = mux.Membership()
		// In membership mode the autoscaler is telemetry-only: bin moves must
		// route through the membership plane, so its policy is forced Static
		// and it never drives the control inputs (nil handles).
		cfg.Auto.Policy = plan.Static{}
		cfg.Auto.Cluster = &plan.ClusterOptions{
			Bus:            mux.Auto(),
			Procs:          procs,
			Proc:           proc,
			WorkersPerProc: cfg.Workers,
			Logf:           cfg.Cluster.Logf,
		}
		auto = plan.NewAutoController(nil, probe, plan.Initial(bins, totalWorkers), *cfg.Auto)
		autoscale = &plan.MembershipAutoscale{
			Auto:     auto,
			HotRecs:  cfg.ScaleOutAbove,
			ColdRecs: cfg.ScaleInBelow,
			Sustain:  cfg.ScaleSustain,
			Cost:     cfg.Auto.Cost,
		}
	}

	fab := harness.ClusterFabric{Execution: exec, Mesh: mesh}
	mc := plan.NewMembershipController(plan.MembershipOptions{
		Bus:            memBus,
		Fabric:         fab,
		Frontier:       probe.Frontier,
		Procs:          procs,
		Proc:           proc,
		WorkersPerProc: cfg.Workers,
		Bins:           bins,
		InitialActive:  initialActive,
		CheckpointDir:  cfg.CheckpointDir,
		Slack:          cfg.MembershipSlack,
		TickEvery:      cfg.EpochEvery,
		Autoscale:      autoscale,
		Logf:           cfg.Cluster.Logf,
	})
	// Manifests record the roster live at each checkpoint epoch, so a
	// checkpoint taken after a death completes (and restores) without the
	// dead slots' manifests. Wired before Start: worker goroutines read the
	// config when a checkpoint command reaches them.
	ckpt.Config.LiveAt = mc.LiveWorkersAt

	if cfg.MigrateAt > 0 {
		// The Section 5 schedule, rendered against the live roster at decision
		// time: first imbalance onto half the live workers, then (MigrateTwo)
		// rebalance back across all of them. Every process registers the same
		// specs; only the leader renders and broadcasts the schedules.
		at := core.Time(cfg.MigrateAt / cfg.EpochEvery)
		mc.ScheduleMigration(plan.MigrationSpec{
			At:       at,
			Strategy: cfg.Strategy,
			Batch:    cfg.Batch,
			Target: func(cur plan.Assignment, live []int) plan.Assignment {
				return plan.Rebalance(len(cur), live[:(len(live)+1)/2])
			},
		})
		if cfg.MigrateTwo {
			end := core.Time(cfg.Duration / cfg.EpochEvery)
			at2 := at + (end-at)/2
			if cfg.MigrateTwoAt > 0 {
				at2 = core.Time(cfg.MigrateTwoAt / cfg.EpochEvery)
			}
			mc.ScheduleMigration(plan.MigrationSpec{
				At:       at2,
				Strategy: cfg.Strategy,
				Batch:    cfg.Batch,
				Target: func(cur plan.Assignment, live []int) plan.Assignment {
					return plan.Rebalance(len(cur), live)
				},
			})
		}
	}

	if cfg.Preload {
		// Preload against the membership initial assignment (live-only when
		// the roster starts with absent slots). A joiner owns no bins at
		// start, so this is naturally a no-op on its process.
		PreloadAssigned(cfg.Params, mc.Assignment(), handles, firstWorker, cfg.Workers)
	}
	exec.Start()

	domain := uint64(cfg.Domain)
	workload := cfg.Workload
	gen := func(w int, epoch int64, n int) []uint64 {
		out := make([]uint64, n)
		workload.Fill(out, domain, w, epoch)
		return out
	}
	logBins := cfg.LogBins
	binOf := func(k uint64) int { return core.BinOf(hashFn(k), logBins) }

	res, err := harness.RunMembership(fab, mc, dataIns, ctlIns, probe, gen, binOf, harness.MembershipRunOptions{
		Rate:            cfg.Rate,
		EpochEvery:      cfg.EpochEvery,
		Duration:        cfg.Duration,
		TotalInputs:     totalWorkers,
		CheckpointEvery: ckpt.Every,
		LeaveAt:         cfg.LeaveAt,
		CrashAt:         cfg.CrashAt,
		CheckpointDir:   cfg.CheckpointDir,
	})
	res.FinishAdaptive(auto, meter)
	ckpt.Finish(&res)
	return res, err
}
