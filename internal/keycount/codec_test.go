package keycount

import (
	"math/rand"
	"reflect"
	"testing"

	"megaphone/internal/core"
)

// TestHashStateCodec: hash-count bins reconstruct identically under gob and
// binary, from empty to paper-scale (domain 2^21 over 2^8 bins = 8192 keys
// per bin).
func TestHashStateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, 8192} {
		s := &HashState{M: make(map[uint64]uint64, size)}
		for i := 0; i < size; i++ {
			s.M[rng.Uint64()] = rng.Uint64() % 1000
		}
		bin := &core.BinState[uint64, HashState]{State: s}
		for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
			payload, err := codec.EncodeBin(bin, nil)
			if err != nil {
				t.Fatalf("%s size=%d: encode: %v", codec.Name(), size, err)
			}
			got := &core.BinState[uint64, HashState]{State: &HashState{M: make(map[uint64]uint64)}}
			if err := codec.DecodeBin(got, payload); err != nil {
				t.Fatalf("%s size=%d: decode: %v", codec.Name(), size, err)
			}
			if !reflect.DeepEqual(got.State, bin.State) {
				t.Fatalf("%s size=%d: state mismatch", codec.Name(), size)
			}
			if len(got.Pending) != 0 {
				t.Fatalf("%s size=%d: phantom pending records", codec.Name(), size)
			}
		}
	}
}

// TestArrayStateCodec: key-count dense bins reconstruct identically.
func TestArrayStateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{0, 1, 8192} {
		s := &ArrayState{Counts: make([]uint64, size)}
		for i := range s.Counts {
			s.Counts[i] = rng.Uint64() % 100
		}
		bin := &core.BinState[uint64, ArrayState]{State: s}
		for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
			payload, err := codec.EncodeBin(bin, nil)
			if err != nil {
				t.Fatalf("%s size=%d: encode: %v", codec.Name(), size, err)
			}
			got := &core.BinState[uint64, ArrayState]{State: &ArrayState{}}
			if err := codec.DecodeBin(got, payload); err != nil {
				t.Fatalf("%s size=%d: decode: %v", codec.Name(), size, err)
			}
			if size == 0 {
				if len(got.State.Counts) != 0 {
					t.Fatalf("%s: empty array grew to %d", codec.Name(), len(got.State.Counts))
				}
				continue
			}
			if !reflect.DeepEqual(got.State, bin.State) {
				t.Fatalf("%s size=%d: state mismatch", codec.Name(), size)
			}
		}
	}
}

// TestKeycountBinaryFastPath: the keycount states must take the binary
// format (tag 0x01), not the gob fallback — the whole point of the codec.
func TestKeycountBinaryFastPath(t *testing.T) {
	hb := &core.BinState[uint64, HashState]{State: &HashState{M: map[uint64]uint64{3: 1}}}
	ab := &core.BinState[uint64, ArrayState]{State: &ArrayState{Counts: []uint64{1, 2}}}
	for label, bin := range map[string]interface {
		AppendBinary([]byte) ([]byte, bool)
	}{"hash": hb, "array": ab} {
		if _, ok := bin.AppendBinary(nil); !ok {
			t.Fatalf("%s state does not satisfy the binary contract", label)
		}
	}
	p, err := core.TransferBinary.EncodeBin(hb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0x01 {
		t.Fatalf("hash-count bin fell back to gob (tag %#x)", p[0])
	}
}
