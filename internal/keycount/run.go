package keycount

import (
	"fmt"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// RunConfig configures a complete open-loop key-count run.
type RunConfig struct {
	Params
	// Workers is the number of workers in this process. In a cluster run
	// (Cluster non-nil) every process contributes Workers workers and the
	// execution spans Workers * len(Cluster.Hosts) workers total.
	Workers     int
	Rate        int           // records per second, cluster-wide
	Duration    time.Duration // total run
	EpochEvery  time.Duration // epoch granularity (default 1ms)
	ReportEvery time.Duration
	// Strategy and Batch configure the migration executed mid-run (at half
	// of the run, rebalancing 25% of the bins as in Section 5: half the
	// bins of half the workers move to the other half). MigrateAt <= 0
	// disables migration.
	Strategy   plan.Strategy
	Batch      int
	MigrateAt  time.Duration
	MigrateTwo bool // also run the re-balancing second migration
	// MigrateTwoAt pins the second migration's epoch explicitly; zero keeps
	// the default midpoint between MigrateAt and the end of the run.
	MigrateTwoAt time.Duration
	Memory       bool
	// Workload selects the key distribution (zero value = the paper's
	// uniform draw).
	Workload harness.Workload
	// Auto, when non-nil, installs a metering AutoController that issues
	// plans from measured load instead of the scheduled MigrateAt
	// migrations (which are then ignored). Auto.Meter is filled in by Run.
	Auto *plan.AutoOptions
	// Cluster, when non-nil, runs this process's share of a multi-process
	// execution: the process joins the mesh, runs Workers of the global
	// worker space, and injects its workers' share of the (deterministic)
	// input stream. Every process must be started with the same RunConfig
	// apart from Cluster.Process.
	Cluster *dataflow.ClusterSpec
	// CheckpointDir enables epoch-aligned checkpoints into this directory
	// (shared by every process of a local cluster); CheckpointEvery is the
	// cadence (default 1s). Requires a migrateable variant and a
	// serializing transfer codec.
	CheckpointDir   string
	CheckpointEvery time.Duration
	// Recover loads the newest complete checkpoint from CheckpointDir
	// before starting and resumes the (deterministic) input stream at its
	// epoch; Duration still names the original total run length, so the
	// recovered run ends at the same epoch an uninterrupted run would.
	Recover bool
	// Sink, when non-nil, receives one "key:count" line per output record,
	// for output-equivalence checks across runs. It is called from worker
	// goroutines and must be safe for concurrent use.
	Sink func(line string)
	// Membership enables the dynamic-membership control plane: the roster
	// may grow (Cluster.Absent slots joining mid-run) and shrink (drain- and
	// crash-leave) while the dataflow keeps running. Requires Cluster and
	// CheckpointDir; incompatible with Recover (crash recovery is per-member,
	// inside the run). Scripted migrations ride the membership schedule
	// broadcast, Preload consults the live-roster initial assignment, and
	// Auto attaches the autoscaler as a telemetry plane whose load windows
	// drive join/leave (see ScaleOutAbove/ScaleInBelow).
	Membership bool
	// LeaveAt makes this process request drain-leave once its drive loop
	// passes that epoch (with Membership).
	LeaveAt int64
	// MembershipSlack multiplies the membership controller's suspicion,
	// death and margin windows (plan.MembershipOptions.Slack): raise it
	// where scheduling jitter is large relative to the epoch interval.
	MembershipSlack int
	// CrashAt makes this process abandon the run abruptly at that epoch —
	// the in-process stand-in for SIGKILL (with Membership; see
	// harness.MembershipRunOptions.CrashAt).
	CrashAt int64
	// ScaleOutAbove and ScaleInBelow close the elasticity loop in
	// membership+auto runs (plan.MembershipAutoscale): mean records per live
	// worker per sampling window above which a registered standby is
	// admitted, and below which the coldest member is drain-left (0 disables
	// either direction). ScaleSustain is the number of consecutive windows
	// the signal must persist (default 3).
	ScaleOutAbove uint64
	ScaleInBelow  uint64
	ScaleSustain  int
}

// Run executes the benchmark and returns its measurements. In a cluster
// run the returned measurements are this process's local view (its own
// injected records and its local probe's latency observations).
func Run(cfg RunConfig) (harness.Result, error) {
	if cfg.Membership {
		return runMembership(cfg)
	}
	if cfg.Cluster != nil && cfg.Cluster.Absent != nil {
		return harness.Result{}, fmt.Errorf("keycount: a roster with absent slots requires dynamic membership (Membership)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = time.Millisecond
	}

	mesh, procs, proc, err := harness.JoinCluster("keycount", cfg.Cluster, cfg.Transfer, cfg.Auto != nil)
	if err != nil {
		return harness.Result{}, err
	}
	totalWorkers := cfg.Workers * procs
	firstWorker := proc * cfg.Workers

	if (cfg.CheckpointDir != "" || cfg.Recover) && cfg.OpName() == "" {
		return harness.Result{}, fmt.Errorf("keycount: checkpointing requires a migrateable variant (hash or key), not %v", cfg.Variant)
	}
	ckpt, duration, err := harness.PlanCheckpoints("keycount", cfg.CheckpointDir, cfg.CheckpointEvery,
		cfg.Recover, cfg.Transfer, totalWorkers, firstWorker, cfg.Workers, cfg.EpochEvery, cfg.Duration)
	if err != nil {
		return harness.Result{}, err
	}
	cfg.Duration = duration
	cfg.Params.Checkpoint = ckpt.Config
	cfg.Params.Restore = ckpt.Restore(cfg.OpName())

	var meter *core.LoadMeter
	if cfg.Auto != nil {
		meter = core.NewLoadMeter(totalWorkers, cfg.LogBins)
		cfg.Params.Meter = meter
		cfg.Auto.Meter = meter
		if mesh != nil {
			// Cluster-wide control plane: exchange load telemetry over the
			// mesh and let the elected lowest-index live process drive the
			// policy for everyone.
			cfg.Auto.Cluster = &plan.ClusterOptions{
				Bus:            mesh,
				Procs:          procs,
				Proc:           proc,
				WorkersPerProc: cfg.Workers,
				Logf:           cfg.Cluster.Logf,
			}
		}
	}

	exec := dataflow.NewExecution(dataflow.Config{Workers: cfg.Workers, Mesh: mesh})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	handles := &Handles{
		Hash: &core.Handle[uint64, HashState, Out]{},
		Key:  &core.Handle[uint64, ArrayState, Out]{},
	}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := Build(w, cfg.Params, ctlStream, data, handles)
		if cfg.Sink != nil {
			attachSink(w, out, cfg.Sink)
		}
		p := dataflow.NewProbe(w, out)
		if w.Index() == firstWorker {
			probe = p
		}
	})
	if cfg.Preload && cfg.Params.Restore == nil {
		// A restored run's bins (and their assignment) come from the
		// checkpoint; preloading against the initial assignment would
		// fight it.
		PreloadLocal(cfg.Params, totalWorkers, handles, firstWorker, cfg.Workers)
	}
	exec.Start()

	bins := 1 << uint(cfg.LogBins)
	ctl, auto := harness.NewDriver(cfg.Auto, ctlIns, probe, bins, totalWorkers, ckpt.InitialAssignment())

	var migrations []harness.Migration
	if cfg.Auto == nil && cfg.MigrateAt > 0 {
		initial := plan.Initial(bins, totalWorkers)
		// First migration: move the keys of half the workers to the other
		// half (25% of total state), producing an imbalanced assignment.
		var firstHalf []int
		for i := 0; i < (totalWorkers+1)/2; i++ {
			firstHalf = append(firstHalf, i)
		}
		imbalanced := plan.Rebalance(bins, firstHalf)
		epoch := int64(cfg.MigrateAt / cfg.EpochEvery)
		migrations = append(migrations, harness.Migration{
			AtEpoch: epoch,
			Plan:    plan.Build(cfg.Strategy, initial, imbalanced, cfg.Batch),
		})
		if cfg.MigrateTwo {
			epoch2 := epoch + (int64(cfg.Duration/cfg.EpochEvery)-epoch)/2
			if cfg.MigrateTwoAt > 0 {
				epoch2 = int64(cfg.MigrateTwoAt / cfg.EpochEvery)
			}
			migrations = append(migrations, harness.Migration{
				AtEpoch: epoch2,
				Plan:    plan.Build(cfg.Strategy, imbalanced, initial, cfg.Batch),
			})
		}
		migrations = ckpt.FilterMigrations(migrations)
	}

	domain := uint64(cfg.Domain)
	workload := cfg.Workload
	gen := func(w int, epoch int64, n int) []uint64 {
		out := make([]uint64, n)
		workload.Fill(out, domain, w, epoch)
		return out
	}

	res := harness.Run(exec, dataIns, ctl, probe, gen, harness.Options{
		Rate:            cfg.Rate,
		EpochEvery:      cfg.EpochEvery,
		Duration:        cfg.Duration,
		ReportEvery:     cfg.ReportEvery,
		SampleMemory:    cfg.Memory,
		Migrations:      migrations,
		TotalInputs:     totalWorkers,
		FirstInput:      firstWorker,
		CheckpointEvery: ckpt.Every,
		StartEpoch:      ckpt.StartEpoch,
	})
	res.FinishAdaptive(auto, meter)
	ckpt.Finish(&res)
	// A cluster run whose transport died (a peer unreachable past its dial
	// timeout) halts instead of wedging; surface the cause alongside the
	// partial measurements.
	return res, exec.Err()
}

// attachSink adds a per-worker sink operator that renders every output
// record as a line. Sinks are only attached when requested, so the default
// dataflow is unchanged.
func attachSink(w *dataflow.Worker, out dataflow.Stream[Out], sink func(string)) {
	b := w.NewOp("out-sink", 0)
	dataflow.Connect(b, out, dataflow.Pipeline[Out]{})
	b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t core.Time, data []Out) {
			for _, o := range data {
				sink(fmt.Sprintf("%d:%d", o.Key, o.Count))
			}
		})
	})
}
