package keycount

import (
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// RunConfig configures a complete open-loop key-count run.
type RunConfig struct {
	Params
	Workers     int
	Rate        int           // records per second
	Duration    time.Duration // total run
	EpochEvery  time.Duration // epoch granularity (default 1ms)
	ReportEvery time.Duration
	// Strategy and Batch configure the migration executed mid-run (at half
	// of the run, rebalancing 25% of the bins as in Section 5: half the
	// bins of half the workers move to the other half). MigrateAt <= 0
	// disables migration.
	Strategy   plan.Strategy
	Batch      int
	MigrateAt  time.Duration
	MigrateTwo bool // also run the re-balancing second migration
	Memory     bool
}

// Run executes the benchmark and returns its measurements.
func Run(cfg RunConfig) harness.Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = time.Millisecond
	}

	exec := dataflow.NewExecution(dataflow.Config{Workers: cfg.Workers})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	handles := &Handles{
		Hash: &core.Handle[uint64, HashState, Out]{},
		Key:  &core.Handle[uint64, ArrayState, Out]{},
	}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := Build(w, cfg.Params, ctlStream, data, handles)
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	if cfg.Preload {
		PreloadAll(cfg.Params, cfg.Workers, handles)
	}
	exec.Start()

	ctl := plan.NewController(ctlIns, probe)

	var migrations []harness.Migration
	if cfg.MigrateAt > 0 {
		bins := 1 << uint(cfg.LogBins)
		initial := plan.Initial(bins, cfg.Workers)
		// First migration: move the keys of half the workers to the other
		// half (25% of total state), producing an imbalanced assignment.
		var firstHalf []int
		for i := 0; i < (cfg.Workers+1)/2; i++ {
			firstHalf = append(firstHalf, i)
		}
		imbalanced := plan.Rebalance(bins, firstHalf)
		epoch := int64(cfg.MigrateAt / cfg.EpochEvery)
		migrations = append(migrations, harness.Migration{
			AtEpoch: epoch,
			Plan:    plan.Build(cfg.Strategy, initial, imbalanced, cfg.Batch),
		})
		if cfg.MigrateTwo {
			migrations = append(migrations, harness.Migration{
				AtEpoch: epoch + (int64(cfg.Duration/cfg.EpochEvery)-epoch)/2,
				Plan:    plan.Build(cfg.Strategy, imbalanced, initial, cfg.Batch),
			})
		}
	}

	domain := uint64(cfg.Domain)
	gen := func(w int, epoch int64, n int) []uint64 {
		out := make([]uint64, n)
		seed := core.Mix64(uint64(epoch)*31 + uint64(w))
		for i := range out {
			seed = core.Mix64(seed + uint64(i) + 1)
			out[i] = seed % domain
		}
		return out
	}

	return harness.Run(exec, dataIns, ctl, probe, gen, harness.Options{
		Rate:         cfg.Rate,
		EpochEvery:   cfg.EpochEvery,
		Duration:     cfg.Duration,
		ReportEvery:  cfg.ReportEvery,
		SampleMemory: cfg.Memory,
		Migrations:   migrations,
	})
}
