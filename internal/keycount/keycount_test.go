package keycount_test

import (
	"testing"
	"time"

	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

// TestRunWithMigration runs a short open-loop hash-count with a fluid
// migration and checks the run completes with records processed and the
// migration observed.
func TestRunWithMigration(t *testing.T) {
	for _, strat := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched, plan.Optimized} {
		t.Run(strat.String(), func(t *testing.T) {
			res, err := keycount.Run(keycount.RunConfig{
				Params: keycount.Params{
					Variant: keycount.HashCount,
					LogBins: 4,
					Domain:  1 << 12,
				},
				Workers:    2,
				Rate:       20000,
				Duration:   1500 * time.Millisecond,
				EpochEvery: time.Millisecond,
				Strategy:   strat,
				Batch:      4,
				MigrateAt:  500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Records == 0 {
				t.Fatal("no records injected")
			}
			if res.Hist.Count() == 0 {
				t.Fatal("no latencies recorded")
			}
			if len(res.MigrationSpans) != 1 {
				t.Fatalf("got %d migration spans, want 1", len(res.MigrationSpans))
			}
			sp := res.MigrationSpans[0]
			if sp.End < sp.Start {
				t.Errorf("span ends before it starts: %+v", sp)
			}
			t.Logf("%s: records=%d spans=%+v p99=%v", strat, res.Records, res.MigrationSpans, res.Hist.Quantile(0.99))
		})
	}
}

// TestVariantsComplete smoke-tests every variant end to end.
func TestVariantsComplete(t *testing.T) {
	for _, v := range []keycount.Variant{keycount.HashCount, keycount.KeyCount, keycount.NativeHash, keycount.NativeKey} {
		t.Run(v.String(), func(t *testing.T) {
			res, err := keycount.Run(keycount.RunConfig{
				Params: keycount.Params{
					Variant: v,
					LogBins: 4,
					Domain:  1 << 10,
					Preload: true,
				},
				Workers:  2,
				Rate:     10000,
				Duration: 400 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Records == 0 || res.Hist.Count() == 0 {
				t.Fatalf("variant %v produced no measurements", v)
			}
		})
	}
}
