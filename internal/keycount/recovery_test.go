package keycount_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

// maxCounts folds "key:count" sink lines into the maximum count seen per
// key. keycount's counts are cumulative and deterministic per epoch, so a
// run's final per-key count equals its maximum emitted count — a view that
// is insensitive to the duplicate emissions a crash-recovery replay
// produces and to output lost in the crash (recovery re-emits everything
// from the checkpoint epoch on).
type maxCounts struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (c *maxCounts) add(line string) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return
	}
	n, err := strconv.ParseUint(line[i+1:], 10, 64)
	if err != nil {
		return
	}
	key := line[:i]
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	if n > c.m[key] {
		c.m[key] = n
	}
	c.mu.Unlock()
}

func (c *maxCounts) merge(o *maxCounts) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for k, v := range o.m {
		c.mu.Lock()
		if v > c.m[k] {
			c.m[k] = v
		}
		c.mu.Unlock()
	}
}

func diffMax(t *testing.T, want, got map[string]uint64) {
	t.Helper()
	bad := 0
	for k, v := range want {
		if got[k] != v {
			if bad < 5 {
				t.Errorf("key %s: final count %d, want %d", k, got[k], v)
			}
			bad++
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			if bad < 5 {
				t.Errorf("key %s: emitted only by the recovered run", k)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d keys diverge", bad)
	}
}

// TestRecoveryEquivalence pins the checkpoint/restore contract end to end
// in one process: a run cut short mid-stream (state abandoned, exactly what
// a crash leaves behind on disk) and recovered from its newest checkpoint
// produces the same final per-key counts as an uninterrupted run — with a
// migration before the checkpoint, so the restored assignment is not the
// initial one.
func TestRecoveryEquivalence(t *testing.T) {
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: true,
		},
		Workers:    2,
		Rate:       20000,
		Duration:   900 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.AllAtOnce,
		MigrateAt:  150 * time.Millisecond,
	}

	var ref maxCounts
	refCfg := base
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 || len(refRes.MigrationSpans) == 0 {
		t.Fatalf("reference degenerate: %d records, %d migrations", refRes.Records, len(refRes.MigrationSpans))
	}

	dir := t.TempDir()
	var phase1 maxCounts
	crashed := base
	crashed.Duration = 550 * time.Millisecond // "crash" mid-run
	crashed.CheckpointDir = dir
	crashed.CheckpointEvery = 200 * time.Millisecond
	crashed.Sink = phase1.add
	res1, err := keycount.Run(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Checkpoints) == 0 {
		t.Fatal("crashed run completed no checkpoints")
	}

	var phase2 maxCounts
	recovered := base
	recovered.CheckpointDir = dir
	recovered.CheckpointEvery = 200 * time.Millisecond
	recovered.Recover = true
	recovered.Sink = phase2.add
	res2, err := keycount.Run(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RestoreEpoch < 200 || res2.RestoreEpoch > 550 {
		t.Fatalf("recovered from epoch %d, expected a checkpoint in [200, 550]", res2.RestoreEpoch)
	}

	merged := &maxCounts{m: make(map[string]uint64)}
	merged.merge(&phase1)
	merged.merge(&phase2)
	diffMax(t, ref.m, merged.m)
}

// TestRecoverWithoutCheckpointFails: recovery is explicit about an empty
// checkpoint directory instead of silently starting fresh.
func TestRecoverWithoutCheckpointFails(t *testing.T) {
	cfg := keycount.RunConfig{
		Params:        keycount.Params{Variant: keycount.HashCount, LogBins: 4, Domain: 1 << 10},
		Workers:       1,
		Rate:          1000,
		Duration:      20 * time.Millisecond,
		CheckpointDir: t.TempDir(),
		Recover:       true,
	}
	if _, err := keycount.Run(cfg); err == nil || !strings.Contains(err.Error(), "no complete checkpoint") {
		t.Fatalf("expected a no-checkpoint error, got %v", err)
	}
}

// TestCheckpointWriteFailureNonFatal: an unwritable checkpoint directory
// must not kill the run — the epoch is simply never committed (so recovery
// would fall back to an earlier one), and the stream keeps flowing.
func TestCheckpointWriteFailureNonFatal(t *testing.T) {
	cfg := keycount.RunConfig{
		Params:          keycount.Params{Variant: keycount.HashCount, LogBins: 4, Domain: 1 << 10},
		Workers:         1,
		Rate:            2000,
		Duration:        120 * time.Millisecond,
		EpochEvery:      time.Millisecond,
		CheckpointDir:   "/dev/null/not-a-directory",
		CheckpointEvery: 40 * time.Millisecond,
	}
	res, err := keycount.Run(cfg)
	if err != nil {
		t.Fatalf("run died on an unwritable checkpoint dir: %v", err)
	}
	if res.Records == 0 {
		t.Fatal("run injected no records")
	}
	if len(res.Checkpoints) != 0 {
		t.Fatalf("reported %d completed checkpoints into an unwritable dir", len(res.Checkpoints))
	}
}

// TestAutoRecover: a policy-driven run checkpoints and recovers too (the
// AutoController is reseeded from the restored assignment; see
// harness.NewDriver).
func TestAutoRecover(t *testing.T) {
	dir := t.TempDir()
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: true,
		},
		Workers:         2,
		Rate:            10000,
		Duration:        500 * time.Millisecond,
		EpochEvery:      time.Millisecond,
		CheckpointDir:   dir,
		CheckpointEvery: 150 * time.Millisecond,
		Auto:            &plan.AutoOptions{Policy: plan.LoadBalance{Hysteresis: 0.1}, Strategy: plan.Batched, Batch: 4, SampleEvery: 50, Cooldown: 50},
	}
	crashed := base
	crashed.Duration = 350 * time.Millisecond
	if _, err := keycount.Run(crashed); err != nil {
		t.Fatal(err)
	}
	rec := base
	rec.Auto = &plan.AutoOptions{Policy: plan.LoadBalance{Hysteresis: 0.1}, Strategy: plan.Batched, Batch: 4, SampleEvery: 50, Cooldown: 50}
	rec.Recover = true
	res, err := keycount.Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoreEpoch == 0 {
		t.Fatal("auto-controlled recovery did not restore a checkpoint")
	}
}

// TestCheckpointRejectsNativeVariant: native variants have no migrateable
// state to drain.
func TestCheckpointRejectsNativeVariant(t *testing.T) {
	cfg := keycount.RunConfig{
		Params:        keycount.Params{Variant: keycount.NativeHash, LogBins: 4, Domain: 1 << 10},
		CheckpointDir: t.TempDir(),
	}
	if _, err := keycount.Run(cfg); err == nil || !strings.Contains(err.Error(), "migrateable") {
		t.Fatalf("expected a variant error, got %v", err)
	}
}
