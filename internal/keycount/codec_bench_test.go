package keycount

import (
	"fmt"
	"math/rand"
	"testing"

	"megaphone/internal/core"
)

// BenchmarkMigrationCodec measures encode+decode throughput of one
// migrating key-count bin per codec — the per-bin cost at the heart of the
// paper's migration-latency model. Run with:
//
//	go test -bench Migration -run xxx ./internal/keycount/
//
// TransferBinary must beat TransferGob here; the end-to-end effect on
// migration latency is measured by cmd/experiments -exp codec.
func BenchmarkMigrationCodec(b *testing.B) {
	// 8192 keys per bin matches the paper's headline setup (domain 2^21,
	// 2^8 bins); 64 keys models many small bins.
	for _, keys := range []int{64, 8192} {
		rng := rand.New(rand.NewSource(3))
		hash := &HashState{M: make(map[uint64]uint64, keys)}
		arr := &ArrayState{Counts: make([]uint64, keys)}
		for i := 0; i < keys; i++ {
			hash.M[rng.Uint64()] = rng.Uint64() % 1000
			arr.Counts[i] = rng.Uint64() % 1000
		}
		hashBin := &core.BinState[uint64, HashState]{State: hash}
		arrBin := &core.BinState[uint64, ArrayState]{State: arr}
		for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
			b.Run(fmt.Sprintf("hash/keys=%d/%s", keys, codec.Name()), func(b *testing.B) {
				benchCodec(b, codec, hashBin, func() *HashState { return &HashState{M: make(map[uint64]uint64)} })
			})
			b.Run(fmt.Sprintf("array/keys=%d/%s", keys, codec.Name()), func(b *testing.B) {
				benchCodec(b, codec, arrBin, func() *ArrayState { return &ArrayState{} })
			})
		}
	}
}

// benchCodec runs the encode+decode loop for one bin shape, reporting
// payload size and per-operation throughput.
func benchCodec[S any](b *testing.B, codec core.Codec, bin *core.BinState[uint64, S], newState func() *S) {
	payload, err := codec.EncodeBin(bin, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(payload)), "payload-bytes")
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := codec.EncodeBin(bin, payload[:0])
		if err != nil {
			b.Fatal(err)
		}
		got := &core.BinState[uint64, S]{State: newState()}
		if err := codec.DecodeBin(got, buf); err != nil {
			b.Fatal(err)
		}
	}
}
