package keycount

import (
	"megaphone/internal/binenc"
)

// Binary migration encodings (core.BinaryState) for the key-count state
// types, used by core.TransferBinary. Neither variant schedules post-dated
// records, so no core.BinaryRec implementation is needed for the uint64
// record type: pending lists are always empty at migration time.

// AppendBinaryState implements core.BinaryState: count of entries, then
// varint key/count pairs (keys within a bin share their high bits, so
// varints stay short only for small domains — the map layout dominates
// either way).
func (s *HashState) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.M)))
	for k, v := range s.M {
		buf = binenc.AppendU64(buf, k)
		buf = binenc.AppendUvarint(buf, v)
	}
	return buf
}

// DecodeBinaryState implements core.BinaryState.
func (s *HashState) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 9) // fixed 8-byte key + >= 1-byte count
	if err != nil {
		return nil, err
	}
	s.M = make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		var k, v uint64
		if k, data, err = binenc.U64(data); err != nil {
			return nil, err
		}
		if v, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		s.M[k] = v
	}
	return data, nil
}

// AppendBinaryState implements core.BinaryState: the dense count array as
// length-prefixed fixed-width values.
func (s *ArrayState) AppendBinaryState(buf []byte) []byte {
	return binenc.AppendU64s(buf, s.Counts)
}

// DecodeBinaryState implements core.BinaryState.
func (s *ArrayState) DecodeBinaryState(data []byte) ([]byte, error) {
	counts, data, err := binenc.U64s(data)
	if err != nil {
		return nil, err
	}
	s.Counts = counts
	return data, nil
}
