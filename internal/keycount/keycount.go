// Package keycount implements the counting micro-benchmark of Sections 5.2
// and 5.3 of the Megaphone paper: a stream of identifiers drawn uniformly
// from a domain, with the query reporting the cumulative count of each
// identifier. Two variants exist: "hash count" whose bins are hash maps, and
// "key count" whose bins are dense arrays (removing hashing cost); each also
// has a native (non-migratable) implementation for the overhead comparison.
package keycount

import (
	"math/bits"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Variant selects the benchmark implementation.
type Variant int

const (
	// HashCount uses per-bin hash maps and a mixed key hash.
	HashCount Variant = iota
	// KeyCount uses per-bin dense arrays indexed by key.
	KeyCount
	// NativeHash is the non-migratable timely state machine with a map.
	NativeHash
	// NativeKey is the non-migratable version with one dense array.
	NativeKey
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case HashCount:
		return "hash-count"
	case KeyCount:
		return "key-count"
	case NativeHash:
		return "native-hash"
	case NativeKey:
		return "native-key"
	default:
		return "unknown"
	}
}

// Params configures the benchmark dataflow.
type Params struct {
	Variant  Variant
	LogBins  int             // megaphone bin count (power of two)
	Domain   int64           // number of distinct keys; must be a power of two
	Transfer core.Codec      // migration codec (gob when nil)
	Preload  bool            // pre-create one entry per key before starting
	Meter    *core.LoadMeter // per-bin load metering (nil disables)
	// ServiceNanos simulates per-record service time: each worker's fold
	// accumulates the owed nanoseconds and sleeps them off in coarse
	// chunks, capping that worker's serial throughput at 1e9/ServiceNanos
	// records/s. Because the cost is slept rather than burned, the cap is
	// machine-independent — skew scenarios saturate a single worker at
	// laptop rates without needing real cores behind every worker. 0
	// disables.
	ServiceNanos int64
	// Checkpoint enables epoch-aligned checkpoints of the migrateable
	// variants (nil disables); Restore installs a loaded checkpoint before
	// the run starts. See core.CheckpointConfig / core.LoadRestore.
	Checkpoint *core.CheckpointConfig
	Restore    *core.Restore
}

// OpName returns the megaphone operator name of a migrateable variant —
// the checkpoint subdirectory its state is drained into ("" for native
// variants, which have no migrateable state).
func (p Params) OpName() string {
	switch p.Variant {
	case HashCount:
		return "hash-count"
	case KeyCount:
		return "key-count"
	default:
		return ""
	}
}

// serviceSleeper levies simulated service time. Fine-grained sleeps drown
// in timer granularity, so it accumulates owed time and sleeps it off in
// chunks, crediting the overshoot back. The chunk is kept well under the
// epoch interval: while a worker sleeps it processes nothing — including
// progress traffic — so millisecond chunks would add a milliseconds-scale
// floor to every epoch's completion latency once a dozen workers sleep
// independently. One per worker instance.
type serviceSleeper struct {
	perRecord int64
	owed      int64
}

const sleepChunk = int64(250 * time.Microsecond)

func (s *serviceSleeper) apply() {
	s.owed += s.perRecord
	if s.owed >= sleepChunk {
		d := time.Duration(s.owed)
		start := time.Now()
		time.Sleep(d)
		s.owed -= int64(time.Since(start))
	}
}

// Out is the query's output: the key and its updated cumulative count.
type Out struct {
	Key   uint64
	Count uint64
}

// HashState is the per-bin map state of the hash-count variant.
type HashState struct {
	M map[uint64]uint64
}

// ArrayState is the per-bin dense state of the key-count variant.
type ArrayState struct {
	Counts []uint64
}

// logDomain returns log2 of the (power-of-two) domain.
func logDomain(domain int64) int {
	l := bits.TrailingZeros64(uint64(domain))
	if int64(1)<<uint(l) != domain {
		panic("keycount: domain must be a power of two")
	}
	return l
}

// DenseHash positions key uniformly by its value: the top bits of the hash
// are the key's bits, so each bin covers a contiguous key range and dense
// per-bin arrays apply.
func DenseHash(key uint64, domain int64) uint64 {
	return key << uint(64-logDomain(domain))
}

// denseHasher returns DenseHash with the domain's shift hoisted out: the
// hash runs once per record on the routing hot path, where recomputing (and
// re-validating) log2(domain) per call is measurable.
func denseHasher(domain int64) func(uint64) uint64 {
	shift := uint(64 - logDomain(domain))
	return func(key uint64) uint64 { return key << shift }
}

// Build wires the counting query on worker w, fed by data (keys) and, for
// migrateable variants, steered by control. It returns the output stream.
// handle is optional instrumentation shared across workers (allocate one
// per run and pass the same pointer to every worker's Build call).
type Handles struct {
	Hash *core.Handle[uint64, HashState, Out]
	Key  *core.Handle[uint64, ArrayState, Out]
}

// Build constructs the benchmark dataflow for one worker.
func Build(w *dataflow.Worker, p Params, control dataflow.Stream[core.Move], data dataflow.Stream[uint64], h *Handles) dataflow.Stream[Out] {
	var svc *serviceSleeper
	if p.ServiceNanos > 0 {
		svc = &serviceSleeper{perRecord: p.ServiceNanos}
	}
	switch p.Variant {
	case HashCount:
		return core.Unary(w,
			core.Config{Name: "hash-count", LogBins: p.LogBins, Transfer: p.Transfer, Meter: p.Meter,
				Checkpoint: p.Checkpoint, Restore: p.Restore},
			control, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func() *HashState { return &HashState{M: make(map[uint64]uint64)} },
			func(t core.Time, k uint64, s *HashState, _ *core.Notificator[uint64, HashState, Out], emit func(Out)) {
				if svc != nil {
					svc.apply()
				}
				s.M[k]++
				emit(Out{Key: k, Count: s.M[k]})
			},
			h.Hash)
	case KeyCount:
		binSpan := p.Domain >> uint(p.LogBins)
		if binSpan < 1 {
			binSpan = 1
		}
		domain := p.Domain
		return core.Unary(w,
			core.Config{Name: "key-count", LogBins: p.LogBins, Transfer: p.Transfer, Meter: p.Meter,
				Checkpoint: p.Checkpoint, Restore: p.Restore},
			control, data,
			denseHasher(domain),
			func() *ArrayState { return &ArrayState{Counts: make([]uint64, binSpan)} },
			func(t core.Time, k uint64, s *ArrayState, _ *core.Notificator[uint64, ArrayState, Out], emit func(Out)) {
				if svc != nil {
					svc.apply()
				}
				slot := k & uint64(binSpan-1)
				s.Counts[slot]++
				emit(Out{Key: k, Count: s.Counts[slot]})
			},
			h.Key)
	case NativeHash:
		return operators.UnaryNotify(w, "native-hash-count", data,
			dataflow.Exchange[uint64]{Hash: func(k uint64) uint64 { return core.Mix64(k) }},
			func() map[uint64]uint64 { return make(map[uint64]uint64) },
			func(t core.Time, keys []uint64, m map[uint64]uint64, emit func(Out)) {
				for _, k := range keys {
					m[k]++
					emit(Out{Key: k, Count: m[k]})
				}
			})
	case NativeKey:
		domain := p.Domain
		peers := uint64(w.Peers())
		return operators.UnaryNotify(w, "native-key-count", data,
			dataflow.Exchange[uint64]{Hash: func(k uint64) uint64 { return k }},
			func() []uint64 {
				// Each worker owns ~domain/peers keys; size for the worst
				// case to keep indexing branch-free.
				return make([]uint64, (uint64(domain)+peers-1)/peers+1)
			},
			func(t core.Time, keys []uint64, counts []uint64, emit func(Out)) {
				for _, k := range keys {
					slot := k / peers
					counts[slot]++
					emit(Out{Key: k, Count: counts[slot]})
				}
			})
	default:
		panic("keycount: unknown variant")
	}
}

// PreloadAll initializes one entry per key across all workers' bins
// according to the initial assignment.
func PreloadAll(p Params, peers int, h *Handles) {
	PreloadLocal(p, peers, h, 0, peers)
}

// PreloadLocal preloads only the bins initially assigned to workers in
// [first, first+n): in a cluster run each process holds state for its own
// workers only, and the initial assignment is computed against the global
// worker count.
func PreloadLocal(p Params, peers int, h *Handles, first, n int) {
	bins := 1 << uint(p.LogBins)
	assign := make([]int, bins)
	for b := range assign {
		assign[b] = core.InitialWorker(b, peers)
	}
	PreloadAssigned(p, assign, h, first, n)
}

// PreloadAssigned preloads the bins the given assignment places on workers in
// [first, first+n). Dynamic-membership runs pass the membership controller's
// initial (live-roster) assignment, under which absent slots own no bins.
func PreloadAssigned(p Params, assign []int, h *Handles, first, n int) {
	local := func(w int) bool { return w >= first && w < first+n }
	switch p.Variant {
	case HashCount:
		// Touch each bin's map with a representative spread of keys. A full
		// preload of huge domains is prohibitive in tests; pre-size maps.
		for b, w := range assign {
			if !local(w) {
				continue
			}
			h.Hash.Preload(w, b, func(s *HashState) {
				if s.M == nil {
					s.M = make(map[uint64]uint64)
				}
			})
		}
	case KeyCount:
		for b, w := range assign {
			if !local(w) {
				continue
			}
			h.Key.Preload(w, b, func(s *ArrayState) {})
		}
	}
}
