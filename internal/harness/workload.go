package harness

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"megaphone/internal/core"
)

// WorkloadKind selects a key distribution for generated streams.
type WorkloadKind int

const (
	// Uniform draws keys uniformly from the domain (the paper's keycount
	// workload).
	Uniform WorkloadKind = iota
	// Zipf draws keys from a power-law distribution: low keys are hot, and
	// under a dense (range-partitioned) hash the hot keys concentrate in a
	// few bins — the static-skew scenario.
	Zipf
	// HotShift sends a fraction of records to a small hot key set whose
	// location jumps around the domain every ShiftEvery epochs — the moving
	// hotspot an adaptive controller must chase.
	HotShift
)

// String names the kind.
func (k WorkloadKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case HotShift:
		return "hotshift"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// Workload describes the key distribution of a generated stream. The zero
// value is the uniform workload. Generation is deterministic in (Seed,
// worker, epoch, position): the same configuration replays the same stream.
type Workload struct {
	Kind WorkloadKind
	// ZipfS is the power-law exponent for Zipf (> 1; default 1.25). Larger
	// values concentrate more of the traffic on fewer keys.
	ZipfS float64
	// HotFraction is the share of HotShift records drawn from the hot set
	// (default 0.9).
	HotFraction float64
	// HotKeys is the hot set size for HotShift (default 4).
	HotKeys uint64
	// HotStride spaces the hot keys (default 1, a contiguous hot range).
	// Under a dense (range-partitioned) hash, a stride of
	// binSpan*workers places every hot key in bins of one worker's residue
	// class — the worst-case hotspot for the initial round-robin
	// assignment. It must divide the domain for the hot set to stay exact
	// across wraps.
	HotStride uint64
	// ShiftEvery is the epoch period of HotShift's hot-set jumps
	// (0 = the hot set never moves).
	ShiftEvery int64
	// Seed perturbs the deterministic generation.
	Seed uint64
}

func (wl Workload) defaults() Workload {
	if wl.ZipfS <= 1 {
		wl.ZipfS = 1.25
	}
	if wl.HotFraction <= 0 || wl.HotFraction > 1 {
		wl.HotFraction = 0.9
	}
	if wl.HotKeys == 0 {
		wl.HotKeys = 4
	}
	if wl.HotStride == 0 {
		wl.HotStride = 1
	}
	return wl
}

// String renders the workload in the form ParseWorkload accepts.
func (wl Workload) String() string {
	wl = wl.defaults()
	switch wl.Kind {
	case Zipf:
		return fmt.Sprintf("zipf:%g", wl.ZipfS)
	case HotShift:
		if wl.HotStride > 1 {
			return fmt.Sprintf("hotshift:%g,%d,%d,%d", wl.HotFraction, wl.HotKeys, wl.ShiftEvery, wl.HotStride)
		}
		return fmt.Sprintf("hotshift:%g,%d,%d", wl.HotFraction, wl.HotKeys, wl.ShiftEvery)
	default:
		return "uniform"
	}
}

// ParseWorkload parses a workload spec: "uniform", "zipf[:S]", or
// "hotshift[:FRACTION,KEYS,EVERY]" (e.g. "zipf:1.5",
// "hotshift:0.9,8,2000").
func ParseWorkload(s string) (Workload, error) {
	name, args, _ := strings.Cut(s, ":")
	var wl Workload
	switch name {
	case "uniform", "":
		if args != "" {
			return wl, fmt.Errorf("harness: uniform workload takes no arguments")
		}
		return wl, nil
	case "zipf":
		wl.Kind = Zipf
		if args != "" {
			s, err := strconv.ParseFloat(args, 64)
			if err != nil || s <= 1 {
				return wl, fmt.Errorf("harness: zipf exponent %q (want a number > 1)", args)
			}
			wl.ZipfS = s
		}
		return wl, nil
	case "hotshift":
		wl.Kind = HotShift
		if args == "" {
			return wl, nil
		}
		parts := strings.Split(args, ",")
		if len(parts) != 3 && len(parts) != 4 {
			return wl, fmt.Errorf("harness: hotshift wants FRACTION,KEYS,EVERY[,STRIDE], got %q", args)
		}
		frac, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || frac <= 0 || frac > 1 {
			return wl, fmt.Errorf("harness: hotshift fraction %q (want 0 < f <= 1)", parts[0])
		}
		keys, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil || keys == 0 {
			return wl, fmt.Errorf("harness: hotshift key count %q", parts[1])
		}
		every, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || every < 0 {
			return wl, fmt.Errorf("harness: hotshift shift period %q", parts[2])
		}
		wl.HotFraction, wl.HotKeys, wl.ShiftEvery = frac, keys, every
		if len(parts) == 4 {
			stride, err := strconv.ParseUint(parts[3], 10, 64)
			if err != nil || stride == 0 {
				return wl, fmt.Errorf("harness: hotshift stride %q", parts[3])
			}
			wl.HotStride = stride
		}
		return wl, nil
	default:
		return wl, fmt.Errorf("harness: unknown workload %q (want uniform, zipf or hotshift)", name)
	}
}

// Fill writes one batch of keys in [0, domain) for the given worker and
// epoch. The uniform case reproduces the original keycount generator
// exactly (a Mix64 chain), so existing figures are unchanged.
func (wl Workload) Fill(out []uint64, domain uint64, worker int, epoch int64) {
	wl = wl.defaults()
	seed := core.Mix64(uint64(epoch)*31 + uint64(worker) + wl.Seed)
	switch wl.Kind {
	case Zipf:
		// Inverse-CDF sampling of a bounded power law with density ∝ x^-s on
		// [1, domain]: rank 1 is the hottest key. Exact Zipf normalization is
		// not needed for a skew workload — the head concentration matches.
		oneMinusS := 1 - wl.ZipfS
		edge := math.Pow(float64(domain), oneMinusS) - 1
		for i := range out {
			seed = core.Mix64(seed + uint64(i) + 1)
			u := float64(seed>>11) / (1 << 53)
			rank := math.Pow(1+u*edge, 1/oneMinusS)
			k := uint64(rank) - 1
			if k >= domain {
				k = domain - 1
			}
			out[i] = k
		}
	case HotShift:
		phase := uint64(0)
		if wl.ShiftEvery > 0 {
			phase = uint64(epoch / wl.ShiftEvery)
		}
		base := core.Mix64(0x9e3779b97f4a7c15*(phase+1)^wl.Seed) % domain
		cut := uint64(wl.HotFraction * (1 << 53))
		for i := range out {
			seed = core.Mix64(seed + uint64(i) + 1)
			if seed>>11 < cut {
				out[i] = (base + (seed%wl.HotKeys)*wl.HotStride) % domain
			} else {
				out[i] = seed % domain
			}
		}
	default:
		for i := range out {
			seed = core.Mix64(seed + uint64(i) + 1)
			out[i] = seed % domain
		}
	}
}

// HotBase returns the base key of the HotShift hot set at the given epoch
// (instrumentation: experiments report where the hotspot was).
func (wl Workload) HotBase(domain uint64, epoch int64) uint64 {
	wl = wl.defaults()
	phase := uint64(0)
	if wl.ShiftEvery > 0 {
		phase = uint64(epoch / wl.ShiftEvery)
	}
	return core.Mix64(0x9e3779b97f4a7c15*(phase+1)^wl.Seed) % domain
}
