package harness_test

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

// The kill-and-recover acceptance test: a real 3-OS-process cluster (this
// test binary re-execs itself as the workers), one process SIGKILLed
// mid-stream, the survivors reaped, and the whole cluster restarted with
// -recover. The merged output must match an uninterrupted run — the same
// check scripts/cluster.sh's recovery mode performs against the real
// binaries in CI.

const (
	chaosRoleEnv    = "MEGAPHONE_CHAOS_ROLE"
	chaosHostsEnv   = "MEGAPHONE_CHAOS_HOSTS"
	chaosProcEnv    = "MEGAPHONE_CHAOS_PROCESS"
	chaosDirEnv     = "MEGAPHONE_CHAOS_DIR"
	chaosDumpEnv    = "MEGAPHONE_CHAOS_DUMP"
	chaosRecoverEnv = "MEGAPHONE_CHAOS_RECOVER"
	chaosGenEnv     = "MEGAPHONE_CHAOS_GENERATION"
	chaosAutoEnv    = "MEGAPHONE_CHAOS_AUTO"
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosRoleEnv) == "keycount" {
		chaosWorkerMain()
		return
	}
	os.Exit(m.Run())
}

// chaosRunConfig is the one keycount configuration every phase of the
// scenario shares: the cluster processes (1 worker each), the recovery
// processes, and the in-process reference (Workers overridden to the
// cluster's total). A migration lands before the first checkpoint so the
// recovered assignment differs from the initial one.
func chaosRunConfig() keycount.RunConfig {
	return keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 11,
			Preload: true,
		},
		Workers:         1,
		Rate:            20000,
		Duration:        2400 * time.Millisecond,
		EpochEvery:      time.Millisecond,
		Strategy:        plan.Batched,
		Batch:           4,
		MigrateAt:       500 * time.Millisecond,
		CheckpointEvery: 300 * time.Millisecond,
	}
}

// chaosWorkerMain is one cluster process, configured by environment.
func chaosWorkerMain() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	proc, err := strconv.Atoi(os.Getenv(chaosProcEnv))
	if err != nil {
		fail(err)
	}
	gen, _ := strconv.ParseUint(os.Getenv(chaosGenEnv), 10, 64)
	cfg := chaosRunConfig()
	cfg.Cluster = &dataflow.ClusterSpec{
		Hosts:       strings.Split(os.Getenv(chaosHostsEnv), ","),
		Process:     proc,
		DialTimeout: 15 * time.Second,
		Generation:  gen,
	}
	cfg.CheckpointDir = os.Getenv(chaosDirEnv)
	cfg.Recover = os.Getenv(chaosRecoverEnv) == "1"
	if os.Getenv(chaosAutoEnv) == "1" {
		// Adaptive mode for the leader-failover scenario: no scripted
		// migrations or checkpoints, an AutoController per process, and the
		// control-plane lifecycle logged so the supervisor can observe the
		// election from outside.
		cfg.CheckpointDir = ""
		cfg.CheckpointEvery = 0
		cfg.Auto = &plan.AutoOptions{
			Policy:      plan.LoadBalance{Hysteresis: 0.25},
			Strategy:    plan.Optimized,
			Batch:       4,
			SampleEvery: 100,
			Cooldown:    200,
		}
		cfg.Workload = harness.Workload{
			Kind:        harness.HotShift,
			HotFraction: 0.85,
			HotKeys:     16,
			HotStride:   uint64(1 << 11 >> 4 * 2),
			ShiftEvery:  600,
		}
		cfg.Duration = 10 * time.Second
		cfg.Cluster.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sink, finish, err := harness.LineSink(os.Getenv(chaosDumpEnv))
	if err != nil {
		fail(err)
	}
	cfg.Sink = sink
	res, err := keycount.Run(cfg)
	if err != nil {
		fail(err)
	}
	if err := finish(); err != nil {
		fail(err)
	}
	if res.RestoreEpoch > 0 {
		fmt.Printf("# recovered from checkpoint epoch %d (load %.3fs)\n", res.RestoreEpoch, res.RestoreSeconds)
	}
	fmt.Printf("# records=%d checkpoints=%d\n", res.Records, len(res.Checkpoints))
	os.Exit(0)
}

// freeHosts binds and releases n loopback ports. The tiny bind race is the
// same one scripts/freeports.go accepts for the shell gauntlet.
func freeHosts(t *testing.T, n int) []string {
	t.Helper()
	hosts := make([]string, n)
	for i := range hosts {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = ln.Addr().String()
		ln.Close()
	}
	return hosts
}

// maxCountsOf folds "key:count" dump files into per-key maxima — the final
// count per key, since keycount's counts only grow and recovery re-emits
// every epoch from the checkpoint on (see keycount's recovery test for the
// argument in full).
func maxCountsOf(t *testing.T, paths ...string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("dump %s: %v", p, err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			i := strings.IndexByte(line, ':')
			if i < 0 {
				continue
			}
			n, err := strconv.ParseUint(line[i+1:], 10, 64)
			if err != nil {
				continue
			}
			if n > out[line[:i]] {
				out[line[:i]] = n
			}
		}
		// A SIGKILLed process leaves a torn buffered tail; scanner errors on
		// it are expected and the lost lines are re-covered by recovery.
		f.Close()
	}
	return out
}

func TestClusterKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes and runs ~8s")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const procs = 3
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")

	// Uninterrupted reference, in-process, same total worker count.
	var mu sync.Mutex
	ref := make(map[string]uint64)
	refCfg := chaosRunConfig()
	refCfg.Workers = procs
	refCfg.CheckpointEvery = 0
	refCfg.Sink = func(line string) {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			return
		}
		n, _ := strconv.ParseUint(line[i+1:], 10, 64)
		mu.Lock()
		if n > ref[line[:i]] {
			ref[line[:i]] = n
		}
		mu.Unlock()
	}
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 || len(refRes.MigrationSpans) == 0 {
		t.Fatalf("reference degenerate: %d records, %d migrations", refRes.Records, len(refRes.MigrationSpans))
	}

	hosts := freeHosts(t, procs)
	spawn := func(phase string, generation int) *harness.Chaos {
		c := &harness.Chaos{}
		for p := 0; p < procs; p++ {
			c.Procs = append(c.Procs, harness.ChaosProc{
				Name: fmt.Sprintf("%s-proc%d", phase, p),
				Path: exe,
				Args: []string{"-test.run", "xxx"}, // the role env short-circuits TestMain before flags matter
				Env: []string{
					chaosRoleEnv + "=keycount",
					chaosHostsEnv + "=" + strings.Join(hosts, ","),
					chaosProcEnv + "=" + strconv.Itoa(p),
					chaosDirEnv + "=" + ckptDir,
					chaosDumpEnv + "=" + filepath.Join(dir, fmt.Sprintf("dump-%s-%d", phase, p)),
					chaosRecoverEnv + "=" + map[string]string{"phase1": "0", "phase2": "1"}[phase],
					chaosGenEnv + "=" + strconv.Itoa(generation),
				},
				Log: filepath.Join(dir, fmt.Sprintf("log-%s-%d", phase, p)),
			})
		}
		if err := c.StartAll(); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Phase 1: run, then SIGKILL process 1 mid-stream and reap the rest
	// (their in-memory state dies with them; only the checkpoints survive).
	phase1 := spawn("phase1", 1)
	time.Sleep(1300 * time.Millisecond)
	if err := phase1.Kill(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	phase1.KillAll()
	phase1.WaitAll(20 * time.Second) // exit errors are the point here

	epoch, _, ok, err := core.LatestCheckpoint(ckptDir, procs)
	if err != nil || !ok {
		t.Fatalf("no complete checkpoint on disk after the kill (ok=%v err=%v)", ok, err)
	}
	if epoch < 300 {
		t.Fatalf("latest checkpoint epoch %d, want >= 300", epoch)
	}

	// Phase 2: restart the whole cluster in recovery mode.
	phase2 := spawn("phase2", 2)
	for p, st := range phase2.WaitAll(60 * time.Second) {
		if st.Err != nil {
			log, _ := os.ReadFile(filepath.Join(dir, fmt.Sprintf("log-phase2-%d", p)))
			t.Fatalf("recovery process %d failed (killed=%v): %v\n%s", p, st.Killed, st.Err, log)
		}
	}
	for p := 0; p < procs; p++ {
		log, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("log-phase2-%d", p)))
		if err != nil || !strings.Contains(string(log), "# recovered from checkpoint epoch") {
			t.Fatalf("recovery process %d did not report restoring a checkpoint:\n%s", p, log)
		}
	}

	// Merged phase-1 + phase-2 output must equal the uninterrupted run.
	var dumps []string
	for _, phase := range []string{"phase1", "phase2"} {
		for p := 0; p < procs; p++ {
			path := filepath.Join(dir, fmt.Sprintf("dump-%s-%d", phase, p))
			if _, err := os.Stat(path); err == nil {
				dumps = append(dumps, path)
			}
		}
	}
	got := maxCountsOf(t, dumps...)
	bad := 0
	for k, v := range ref {
		if got[k] != v {
			if bad < 5 {
				t.Errorf("key %s: final count %d, want %d", k, got[k], v)
			}
			bad++
		}
	}
	for k := range got {
		if _, okk := ref[k]; !okk {
			if bad < 5 {
				t.Errorf("key %s: emitted only by the recovered cluster", k)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d keys diverge between the killed-and-recovered cluster and the uninterrupted run (recovered from epoch %d)", bad, epoch)
	}
}

// TestClusterLeaderFailover kills the elected cluster controller (process 0,
// the lowest index) in a real 3-OS-process adaptive cluster and asserts the
// control plane's succession protocol from outside: process 1 — and only
// process 1 — announces taking over, after the heartbeat suspicion window.
// The in-process variant (plan's TestClusterControllerElectionFailover)
// additionally pins the no-conflicting-plan guarantees; this one pins that
// the whole stack — mesh control channel, telemetry heartbeats, election —
// behaves the same over real sockets between real processes.
func TestClusterLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes and runs ~5s")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const procs = 3
	dir := t.TempDir()
	hosts := freeHosts(t, procs)
	takeoverMsg := "assumed cluster-controller leadership"

	c := &harness.Chaos{}
	logPath := func(p int) string { return filepath.Join(dir, fmt.Sprintf("log-auto-%d", p)) }
	for p := 0; p < procs; p++ {
		c.Procs = append(c.Procs, harness.ChaosProc{
			Name: fmt.Sprintf("auto-proc%d", p),
			Path: exe,
			Args: []string{"-test.run", "xxx"}, // the role env short-circuits TestMain before flags matter
			Env: []string{
				chaosRoleEnv + "=keycount",
				chaosHostsEnv + "=" + strings.Join(hosts, ","),
				chaosProcEnv + "=" + strconv.Itoa(p),
				chaosDumpEnv + "=" + filepath.Join(dir, fmt.Sprintf("dump-auto-%d", p)),
				chaosAutoEnv + "=1",
				chaosGenEnv + "=1",
			},
			Log: logPath(p),
		})
	}
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer c.KillAll()

	// Let the cluster mesh up and process 0 lead for a while, then kill it
	// the way machines die.
	time.Sleep(1200 * time.Millisecond)
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}

	// Succession is announced within roughly SuspectAfter sampling windows
	// (4 x 100ms here); poll generously, then stop the survivors before the
	// transport's redial deadline turns the stalled dataflow into a panic.
	deadline := time.Now().Add(20 * time.Second)
	var took bool
	for time.Now().Before(deadline) {
		log1, _ := os.ReadFile(logPath(1))
		if strings.Contains(string(log1), takeoverMsg) {
			took = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	c.KillAll()
	c.WaitAll(20 * time.Second) // exit errors are the point: everyone was killed

	log1, _ := os.ReadFile(logPath(1))
	log2, _ := os.ReadFile(logPath(2))
	if !took {
		t.Fatalf("process 1 never announced taking over after the leader died\nproc1 log:\n%s\nproc2 log:\n%s", log1, log2)
	}
	if !strings.Contains(string(log1), "cluster controller is now process 1") {
		t.Errorf("process 1 did not log the controller change:\n%s", log1)
	}
	// Process 1 kept heartbeating throughout, so process 2 must never have
	// considered itself the controller — no second, conflicting driver.
	if strings.Contains(string(log2), takeoverMsg) {
		t.Errorf("process 2 also assumed leadership — two concurrent controllers:\n%s", log2)
	}
	if strings.Contains(string(log2), "cluster controller is now process 2") {
		t.Errorf("process 2 believed itself the controller:\n%s", log2)
	}
}
