package harness

import (
	"fmt"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// JoinCluster is the shared cluster-mode front door of the workload
// runners: it validates the preconditions every multi-process run shares —
// a serializing transfer codec (pointer handoff cannot cross process
// boundaries) and scripted rather than policy-driven control (a
// per-process AutoController would meter only its own workers and plan
// against a view in which every remote worker looks idle) — then joins the
// mesh. A nil spec is the single-process case: no mesh, one process,
// index 0.
func JoinCluster(workload string, spec *dataflow.ClusterSpec, transfer core.Codec, auto bool) (mesh *dataflow.Mesh, procs, proc int, err error) {
	if spec == nil {
		return nil, 1, 0, nil
	}
	if transfer != nil && core.IsDirectCodec(transfer) {
		return nil, 0, 0, fmt.Errorf("%s: the direct transfer codec cannot cross process boundaries; use gob or binary", workload)
	}
	if auto {
		return nil, 0, 0, fmt.Errorf("%s: the auto-controller is not supported in cluster runs (per-process load views diverge); use scripted migrations", workload)
	}
	mesh, err = dataflow.JoinMesh(*spec)
	if err != nil {
		return nil, 0, 0, err
	}
	return mesh, mesh.Procs(), mesh.Process(), nil
}
