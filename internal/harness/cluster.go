package harness

import (
	"fmt"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// JoinCluster is the shared cluster-mode front door of the workload
// runners: it validates the preconditions every multi-process run shares —
// a serializing transfer codec (pointer handoff cannot cross process
// boundaries) — then joins the mesh. A nil spec is the single-process case:
// no mesh, one process, index 0.
//
// Auto-controlled cluster runs are supported: workload runners wire the
// returned mesh into plan.ClusterOptions so load telemetry is exchanged
// over the mesh control channel and the elected lowest-index live process
// drives the policy cluster-wide (the auto parameter is retained so the
// harness remains the single choke point should a future mode need to
// reject it again).
func JoinCluster(workload string, spec *dataflow.ClusterSpec, transfer core.Codec, auto bool) (mesh *dataflow.Mesh, procs, proc int, err error) {
	if spec == nil {
		return nil, 1, 0, nil
	}
	if transfer != nil && core.IsDirectCodec(transfer) {
		return nil, 0, 0, fmt.Errorf("%s: the direct transfer codec cannot cross process boundaries; use gob or binary", workload)
	}
	mesh, err = dataflow.JoinMesh(*spec)
	if err != nil {
		return nil, 0, 0, err
	}
	return mesh, mesh.Procs(), mesh.Process(), nil
}
