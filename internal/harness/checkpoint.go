package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/plan"
)

// CheckpointStat summarizes one checkpoint epoch across this process's
// workers.
type CheckpointStat struct {
	Epoch int64
	Bins  int     // bins drained (sum over workers)
	Bytes int64   // payload bytes written (sum over workers)
	Write float64 // max per-worker write seconds (workers write in parallel)
}

// CheckpointCollector aggregates core.CheckpointConfig.OnCheckpoint
// callbacks (which arrive per worker, on worker goroutines) into per-epoch
// stats for Result.Checkpoints.
type CheckpointCollector struct {
	mu    sync.Mutex
	stats map[int64]*CheckpointStat
}

// Note is the OnCheckpoint callback; install it with
// core.CheckpointConfig{OnCheckpoint: c.Note}.
func (c *CheckpointCollector) Note(epoch core.Time, worker, bins int, bytes int64, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats == nil {
		c.stats = make(map[int64]*CheckpointStat)
	}
	st := c.stats[int64(epoch)]
	if st == nil {
		st = &CheckpointStat{Epoch: int64(epoch)}
		c.stats[int64(epoch)] = st
	}
	st.Bins += bins
	st.Bytes += bytes
	if s := elapsed.Seconds(); s > st.Write {
		st.Write = s
	}
}

// Stats returns the collected checkpoints in epoch order.
func (c *CheckpointCollector) Stats() []CheckpointStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CheckpointStat, 0, len(c.stats))
	for _, st := range c.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// CheckpointPlan is a run's resolved checkpoint/recovery configuration —
// the part of RunConfig.{CheckpointDir,CheckpointEvery,Recover} handling
// every workload runner shares. Build it with PlanCheckpoints; the zero
// value (StartEpoch 1, everything else disabled) is a fresh,
// non-checkpointing run.
type CheckpointPlan struct {
	// Every is the checkpoint cadence in epochs (Options.CheckpointEvery;
	// 0 disables).
	Every int64
	// StartEpoch is the first epoch to drive (Options.StartEpoch): the
	// restored checkpoint's epoch when recovering, 1 otherwise.
	StartEpoch int64
	// Config is the operator-facing checkpoint configuration (nil when
	// checkpointing is disabled), wired to this plan's collector.
	Config *core.CheckpointConfig
	// Restores maps operator names to their loaded checkpoints (nil when
	// not recovering).
	Restores map[string]*core.Restore

	collector      *CheckpointCollector
	recovered      bool
	restoreSeconds float64
}

// PlanCheckpoints validates a run's checkpoint flags and, when recovering,
// loads the newest complete checkpoint for every operator found under dir.
// It returns the plan and the run duration to use — trimmed to the
// schedule remaining after the restore epoch, so a recovered run ends at
// the same epoch the uninterrupted run would have. workload prefixes
// errors; the per-workload "does this dataflow have migrateable state"
// check stays with the caller.
func PlanCheckpoints(workload, dir string, every time.Duration, recover bool,
	transfer core.Codec, totalWorkers, firstWorker, workers int,
	epochEvery, duration time.Duration) (*CheckpointPlan, time.Duration, error) {

	p := &CheckpointPlan{StartEpoch: 1}
	if dir == "" && !recover {
		return p, duration, nil
	}
	if transfer != nil && core.IsDirectCodec(transfer) {
		return nil, 0, fmt.Errorf("%s: checkpointing requires a serializing transfer codec, not direct", workload)
	}
	if recover {
		if dir == "" {
			return nil, 0, fmt.Errorf("%s: -recover needs -checkpoint-dir", workload)
		}
		loadStart := time.Now()
		epoch, ops, ok, err := core.LatestCheckpoint(dir, totalWorkers)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, fmt.Errorf("%s: no complete checkpoint under %s", workload, dir)
		}
		p.Restores = make(map[string]*core.Restore, len(ops))
		for _, op := range ops {
			r, err := core.LoadRestore(dir, op, epoch, totalWorkers, firstWorker, workers, core.CodecName(transfer))
			if err != nil {
				return nil, 0, err
			}
			p.Restores[op] = r
		}
		p.StartEpoch = int64(epoch)
		p.recovered = true
		p.restoreSeconds = time.Since(loadStart).Seconds()
		remaining := duration - time.Duration(p.StartEpoch-1)*epochEvery
		if remaining <= 0 {
			return nil, 0, fmt.Errorf("%s: checkpoint epoch %d is past the run's %v duration", workload, p.StartEpoch, duration)
		}
		duration = remaining
	}
	if dir != "" {
		p.collector = &CheckpointCollector{}
		p.Config = &core.CheckpointConfig{Dir: dir, OnCheckpoint: p.collector.Note}
		if every <= 0 {
			every = time.Second
		}
		if p.Every = int64(every / epochEvery); p.Every < 1 {
			p.Every = 1
		}
	}
	return p, duration, nil
}

// Restore returns the loaded checkpoint of one operator, or nil for a
// fresh run (or an operator absent from the checkpoint).
func (p *CheckpointPlan) Restore(op string) *core.Restore {
	if p.Restores == nil {
		return nil
	}
	return p.Restores[op]
}

// InitialAssignment returns the bin assignment a recovering run's
// controllers must start from, or nil for a fresh run. Every operator of a
// dataflow shares one control stream, so their checkpointed assignments
// are identical and any one of them serves.
func (p *CheckpointPlan) InitialAssignment() plan.Assignment {
	for _, r := range p.Restores {
		return append(plan.Assignment(nil), r.Assignment...)
	}
	return nil
}

// FilterMigrations drops scheduled migrations whose epoch precedes the
// restore point: they are already reflected in the restored assignment
// (and control commands are not replayed); outputs do not depend on them
// either way (Property 1).
func (p *CheckpointPlan) FilterMigrations(migrations []Migration) []Migration {
	if p.StartEpoch <= 1 {
		return migrations
	}
	kept := migrations[:0]
	for _, m := range migrations {
		if m.AtEpoch > p.StartEpoch {
			kept = append(kept, m)
		}
	}
	return kept
}

// Finish backfills the plan's measurements into a run result.
func (p *CheckpointPlan) Finish(res *Result) {
	if p.collector != nil {
		res.Checkpoints = p.collector.Stats()
	}
	if p.recovered {
		res.RestoreEpoch = p.StartEpoch
		res.RestoreSeconds = p.restoreSeconds
	}
}
