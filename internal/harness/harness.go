// Package harness drives dataflows the way the paper's evaluation does: an
// open-loop source supplies input at a specified rate even if the system
// becomes unresponsive (e.g. during a migration), a prober measures the lag
// of the output frontier behind each epoch's injection deadline, and
// per-window latency distributions are collected every reporting interval.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/metrics"
	"megaphone/internal/plan"
)

// Options configures an open-loop run. Logical time is the epoch index:
// epoch e's records are injected at wall time start + e*EpochEvery.
type Options struct {
	// Rate is the total offered load in records per second.
	Rate int
	// EpochEvery is the epoch granularity (default 1ms): inputs advance
	// their frontier once per epoch.
	EpochEvery time.Duration
	// Duration is the total run length.
	Duration time.Duration
	// ReportEvery is the latency timeline window (default 250ms, as in the
	// paper).
	ReportEvery time.Duration
	// SampleMemory enables heap sampling into the memory series.
	SampleMemory bool
	// Migrations schedules plans to start at given epochs; each waits for
	// the previous to complete.
	Migrations []Migration
	// TotalInputs and FirstInput describe this process's share of a
	// multi-process run: the cluster has TotalInputs data inputs overall
	// and this process drives the ones at global indexes [FirstInput,
	// FirstInput+len(inputs)). Rate is split across TotalInputs and the
	// generator sees global worker indexes, so the cluster-wide input
	// stream is identical to a single-process run with TotalInputs
	// workers. Zero TotalInputs means len(inputs) (single process).
	TotalInputs int
	FirstInput  int
	// CheckpointEvery issues a checkpoint command on the control stream at
	// every epoch divisible by it (0 disables). The cadence is a pure
	// function of the epoch, so every process of a cluster issues the same
	// commands and the operators merge them into one checkpoint per epoch.
	CheckpointEvery int64
	// StartEpoch is the first epoch driven (default 1). Recovery runs set
	// it to the restored checkpoint's epoch: the generator re-produces
	// epochs from there, which together with the restored state yields the
	// same outputs an uninterrupted run would have emitted from that epoch
	// on. No checkpoint is issued at StartEpoch itself (it would overwrite
	// the checkpoint just restored from).
	StartEpoch int64
}

// Migration schedules a plan to start at a given epoch.
type Migration struct {
	AtEpoch int64
	Plan    plan.Plan
}

// Driver paces migrations and advances the control epochs: the harness
// calls Tick once per epoch and consults Idle/Start/Span for scheduled
// migrations; Checkpoint injects a checkpoint command at the current epoch
// (before Tick advances past it). Both plan.Controller (scripted plans) and
// plan.AutoController (policy-driven plans) satisfy it.
type Driver interface {
	Tick(now core.Time)
	Idle() bool
	Start(p plan.Plan)
	Span() (start, end core.Time, ok bool)
	Checkpoint(now core.Time)
	Close()
}

// Result carries a run's measurements.
type Result struct {
	// Timeline is the per-window latency series (max/p99/p50/p25).
	Timeline *metrics.Timeline
	// Hist is the per-epoch latency distribution over the whole run.
	Hist *metrics.Histogram
	// Memory is the sampled heap size in bytes over time.
	Memory *metrics.Series
	// MigrationSpans records, for each scheduled migration, the wall-clock
	// seconds (relative to run start) at which its plan started and ended
	// and the maximum latency (ms) observed while it ran.
	MigrationSpans []Span
	// Epochs is the last epoch driven (the count, except in recovery runs,
	// which start at Options.StartEpoch rather than 1).
	Epochs int64
	// Records is the number of records injected.
	Records int64
	// Elapsed is the wall-clock seconds from injection start until the
	// dataflow fully drained. When the system keeps up with the offered
	// rate this is ~Duration; when it falls behind, Records/Elapsed is the
	// system's actual sustained throughput.
	Elapsed float64
	// Decisions lists the decisions an AutoController took during the run —
	// issued reconfigurations and cost-model declines alike, including, in
	// cluster runs, decisions mirrored from the elected controller process
	// (filled in by workload runners that install one; empty for scripted
	// migrations).
	Decisions []plan.Decision
	// Load is the final cumulative load snapshot when the run was metered
	// (nil otherwise).
	Load *core.LoadSnapshot
	// Checkpoints lists the completed checkpoints of a checkpointing run
	// (filled in by workload runners from the operator's OnCheckpoint
	// instrumentation; empty otherwise).
	Checkpoints []CheckpointStat
	// RestoreEpoch and RestoreSeconds describe a recovery run: the epoch
	// the run resumed from and the wall-clock cost of loading and
	// verifying the checkpoint (both zero for fresh runs).
	RestoreEpoch   int64
	RestoreSeconds float64
}

// NewDriver wires a run's migration driver: a plain plan.Controller for
// scripted plans, or — when auto is non-nil — an AutoController over
// initial (the default round-robin assignment when nil; a recovering run
// passes its CheckpointPlan.InitialAssignment so the controller's view of
// bin ownership matches the restored routing history). The AutoController
// is also returned directly so the runner can collect its decisions (nil
// otherwise); auto.Meter must already be set.
func NewDriver(auto *plan.AutoOptions, handles []*dataflow.InputHandle[core.Move], probe *dataflow.Probe, bins, workers int, initial plan.Assignment) (Driver, *plan.AutoController) {
	if auto == nil {
		return plan.NewController(handles, probe), nil
	}
	if initial == nil {
		initial = plan.Initial(bins, workers)
	}
	a := plan.NewAutoController(handles, probe, initial, *auto)
	return a, a
}

// FinishAdaptive backfills an auto-controlled run's Decisions and final
// Load into the result; a no-op when auto is nil.
func (r *Result) FinishAdaptive(auto *plan.AutoController, meter *core.LoadMeter) {
	if auto == nil {
		return
	}
	r.Decisions = auto.Decisions()
	r.Load = meter.Snapshot(nil)
}

// FprintAdaptive writes the decision log and per-worker load report of an
// auto-controlled run — the `# decision` / `# applied records per worker`
// lines shared by every binary. It is a no-op for unmetered runs.
func (r *Result) FprintAdaptive(w io.Writer) {
	for i, d := range r.Decisions {
		if d.Declined {
			fmt.Fprintf(w, "# decision %d: epoch=%d policy=%s DECLINED reason=%s moves=%d window-records=%d volume=%d gain=%d origin=%d\n",
				i+1, int64(d.Epoch), d.Policy, d.Reason, d.Moves, d.WindowRecs, d.Volume, d.Gain, d.Origin)
			continue
		}
		fmt.Fprintf(w, "# decision %d: epoch=%d policy=%s moves=%d steps=%d window-records=%d origin=%d\n",
			i+1, int64(d.Epoch), d.Policy, d.Moves, d.Steps, d.WindowRecs, d.Origin)
	}
	if r.Load != nil {
		total := r.Load.TotalRecs()
		fmt.Fprintf(w, "# applied records per worker:")
		for wi, recs := range r.Load.WorkerRecs {
			share := 0.0
			if total > 0 {
				share = 100 * float64(recs) / float64(total)
			}
			fmt.Fprintf(w, " w%d=%d (%.1f%%)", wi, recs, share)
		}
		fmt.Fprintln(w)
	}
}

// Span is one migration's execution window.
type Span struct {
	Start, End float64 // seconds since run start
	MaxLatency float64 // ms, max observed in [Start, End]
	Duration   float64 // seconds
}

// Gen produces worker w's records for epoch e. The harness splits Rate
// evenly across workers; n is the record budget for this call.
type Gen[T any] func(w int, epoch int64, n int) []T

// Run drives the execution open-loop and returns its measurements.
//
// inputs are the per-worker data handles; ctl is the migration controller
// (its Tick both paces plans and advances the control epochs); probe
// observes the dataflow output.
func Run[T any](
	exec *dataflow.Execution,
	inputs []*dataflow.InputHandle[T],
	ctl Driver,
	probe *dataflow.Probe,
	gen Gen[T],
	opts Options,
) Result {
	if opts.EpochEvery <= 0 {
		opts.EpochEvery = time.Millisecond
	}
	if opts.ReportEvery <= 0 {
		opts.ReportEvery = 250 * time.Millisecond
	}
	totalEpochs := int64(opts.Duration / opts.EpochEvery)
	perEpoch := int64(float64(opts.Rate) * opts.EpochEvery.Seconds())
	workers := len(inputs)
	totalInputs := opts.TotalInputs
	if totalInputs <= 0 {
		totalInputs = workers
	}
	startEpoch := opts.StartEpoch
	if startEpoch <= 0 {
		startEpoch = 1
	}
	endEpoch := startEpoch + totalEpochs - 1

	res := Result{
		Timeline: metrics.NewTimeline(),
		Hist:     &metrics.Histogram{},
		Memory:   &metrics.Series{Name: "heap-bytes"},
	}

	// Cluster processes reach Run staggered by their own join and preload
	// times, and injection is paced off this process's wall clock — so
	// without alignment, one late process holds every epoch's completion a
	// constant offset behind an early process's deadlines for the whole
	// run, which reads as a flat latency plateau from t=0. Align on
	// cluster-wide readiness: open the data inputs at the start epoch, tick
	// the driver once at the preceding epoch (no plan is active yet, so the
	// only effect is advancing the control stream to the start epoch too),
	// and wait for the output frontier to confirm every process has done
	// the same before starting the clock.
	for _, in := range inputs {
		in.AdvanceTo(core.Time(startEpoch))
	}
	ctl.Tick(core.Time(startEpoch - 1))
	for {
		f := probe.Frontier()
		if f == core.None || int64(f) >= startEpoch {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}

	start := time.Now()
	deadline := func(e int64) time.Time {
		return start.Add(time.Duration(e-startEpoch+1) * opts.EpochEvery)
	}

	// Prober: watch the output frontier; when it passes epoch e, the
	// latency of e is now - deadline(e).
	var probeWG sync.WaitGroup
	stopProbe := make(chan struct{})
	var mu sync.Mutex
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		lastReported := startEpoch - 1 // epochs <= lastReported measured
		nextFlush := start.Add(opts.ReportEvery)
		nextMem := start
		for {
			now := time.Now()
			f := probe.Frontier()
			var passed int64
			if f == core.None {
				passed = endEpoch
			} else {
				passed = int64(f) - 1 // epochs strictly below the frontier are complete
			}
			if passed > endEpoch {
				passed = endEpoch
			}
			for e := lastReported + 1; e <= passed; e++ {
				lat := now.Sub(deadline(e)).Nanoseconds()
				mu.Lock()
				res.Timeline.Record(lat)
				res.Hist.Record(lat)
				mu.Unlock()
			}
			// The frontier may transiently regress (operators can acquire
			// earlier capabilities while covered by their input frontier);
			// completed epochs stay completed.
			if passed > lastReported {
				lastReported = passed
			}

			if !now.Before(nextFlush) {
				mu.Lock()
				res.Timeline.Flush(now.Sub(start).Seconds())
				mu.Unlock()
				nextFlush = nextFlush.Add(opts.ReportEvery)
			}
			if opts.SampleMemory && !now.Before(nextMem) {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mu.Lock()
				res.Memory.Add(now.Sub(start).Seconds(), float64(ms.HeapAlloc))
				mu.Unlock()
				nextMem = now.Add(100 * time.Millisecond)
			}
			select {
			case <-stopProbe:
				// Final pass to catch the tail.
				if lastReported >= endEpoch {
					return
				}
			default:
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	migIdx := 0
	type pendingSpan struct{ started bool }
	var spanStates []pendingSpan
	for range opts.Migrations {
		spanStates = append(spanStates, pendingSpan{})
	}

	// Open-loop injection: epoch e's records go in at deadline(e) — or as
	// soon as possible if we are running behind, without ever skipping.
	for e := startEpoch; e <= endEpoch; e++ {
		if d := time.Until(deadline(e)); d > 0 {
			time.Sleep(d)
		}
		t := core.Time(e)
		for w := 0; w < workers; w++ {
			g := opts.FirstInput + w // global worker index
			n := int(perEpoch / int64(totalInputs))
			if int64(g) < perEpoch%int64(totalInputs) {
				n++
			}
			if n > 0 {
				batch := gen(g, e, n)
				inputs[w].SendBatchAt(t, batch)
				res.Records += int64(len(batch))
			}
		}
		if opts.CheckpointEvery > 0 && e%opts.CheckpointEvery == 0 && e != startEpoch {
			ctl.Checkpoint(t)
		}
		if migIdx < len(opts.Migrations) && e >= opts.Migrations[migIdx].AtEpoch && ctl.Idle() {
			if !spanStates[migIdx].started {
				ctl.Start(opts.Migrations[migIdx].Plan)
				spanStates[migIdx].started = true
			} else {
				// The plan has completed (controller idle again).
				s, eEnd, ok := ctl.Span()
				if ok {
					res.MigrationSpans = append(res.MigrationSpans, Span{
						Start: float64(s) * opts.EpochEvery.Seconds(),
						End:   float64(eEnd) * opts.EpochEvery.Seconds(),
					})
				}
				migIdx++
			}
		}
		ctl.Tick(t)
		for _, in := range inputs {
			in.AdvanceTo(t + 1)
		}
		res.Epochs = e
	}

	// Shut down: close inputs, drain, stop measurement.
	ctl.Close()
	for _, in := range inputs {
		in.Close()
	}
	exec.Wait()
	res.Elapsed = time.Since(start).Seconds()
	close(stopProbe)
	probeWG.Wait()
	mu.Lock()
	res.Timeline.Flush(time.Since(start).Seconds())
	mu.Unlock()

	// A plan that completed only while draining is captured here.
	if migIdx < len(opts.Migrations) && spanStates[migIdx].started {
		if s, eEnd, ok := ctl.Span(); ok {
			res.MigrationSpans = append(res.MigrationSpans, Span{
				Start: float64(s) * opts.EpochEvery.Seconds(),
				End:   float64(eEnd) * opts.EpochEvery.Seconds(),
			})
		}
	}

	// Fill in migration span latencies.
	for i := range res.MigrationSpans {
		sp := &res.MigrationSpans[i]
		sp.MaxLatency = res.Timeline.MaxOver(sp.Start, sp.End+0.5)
		sp.Duration = sp.End - sp.Start
	}
	return res
}
