package harness

import (
	"bufio"
	"os"
	"sync"
)

// LineSink returns a concurrency-safe buffered line writer into path and a
// finish function that flushes and closes it. Workload runners hand the
// writer to their output sinks (which run on worker goroutines) for
// cross-run output-equivalence checks; see cmd/keycount and cmd/nexmark's
// -dump flags.
func LineSink(path string) (write func(line string), finish func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var mu sync.Mutex
	write = func(line string) {
		mu.Lock()
		w.WriteString(line)
		w.WriteByte('\n')
		mu.Unlock()
	}
	finish = func() error {
		mu.Lock()
		defer mu.Unlock()
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return write, finish, nil
}
