package harness_test

import (
	"reflect"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// TestNewDriverRestoredInitial: a recovering run's AutoController must
// start from the restored assignment, not the initial round-robin —
// otherwise every post-recovery plan diffs against ownership the cluster
// no longer has.
func TestNewDriverRestoredInitial(t *testing.T) {
	meter := core.NewLoadMeter(2, 2)
	restored := plan.Assignment{1, 1, 0, 0}
	_, auto := harness.NewDriver(
		&plan.AutoOptions{Meter: meter, Policy: plan.Static{}, Strategy: plan.Batched, Batch: 1},
		nil, nil, 4, 2, restored)
	if auto == nil {
		t.Fatal("auto options did not produce an AutoController")
	}
	if got := auto.Current(); !reflect.DeepEqual(got, restored) {
		t.Fatalf("AutoController starts from %v, want the restored %v", got, restored)
	}
	_, auto = harness.NewDriver(
		&plan.AutoOptions{Meter: meter, Policy: plan.Static{}, Strategy: plan.Batched, Batch: 1},
		nil, nil, 4, 2, nil)
	if got := auto.Current(); !reflect.DeepEqual(got, plan.Initial(4, 2)) {
		t.Fatalf("fresh AutoController starts from %v, want round-robin", got)
	}
}

// TestPlanCheckpointsTrimsDuration: a recovered run's schedule ends where
// the uninterrupted run's would have.
func TestPlanCheckpointsTrimsDuration(t *testing.T) {
	p, dur, err := harness.PlanCheckpoints("test", "", 0, false, nil, 2, 0, 2, time.Millisecond, time.Second)
	if err != nil || dur != time.Second || p.StartEpoch != 1 || p.Every != 0 {
		t.Fatalf("fresh plan: %+v dur=%v err=%v", p, dur, err)
	}
	if _, _, err := harness.PlanCheckpoints("test", "", 0, true, nil, 2, 0, 2, time.Millisecond, time.Second); err == nil {
		t.Fatal("recover without a dir must fail")
	}
	if _, _, err := harness.PlanCheckpoints("test", t.TempDir(), 0, false, core.TransferDirect, 2, 0, 2, time.Millisecond, time.Second); err == nil {
		t.Fatal("direct codec must be rejected")
	}
}
