package harness_test

import (
	"testing"

	"megaphone/internal/harness"
)

func fill(wl harness.Workload, domain uint64, worker int, epoch int64, n int) []uint64 {
	out := make([]uint64, n)
	wl.Fill(out, domain, worker, epoch)
	return out
}

// TestWorkloadParse round-trips the flag syntax.
func TestWorkloadParse(t *testing.T) {
	cases := []struct {
		in   string
		want harness.WorkloadKind
		bad  bool
	}{
		{"uniform", harness.Uniform, false},
		{"zipf", harness.Zipf, false},
		{"zipf:1.5", harness.Zipf, false},
		{"hotshift", harness.HotShift, false},
		{"hotshift:0.8,16,2000", harness.HotShift, false},
		{"zipf:0.5", 0, true},
		{"hotshift:0.8", 0, true},
		{"hotshift:2,4,5", 0, true},
		{"pareto", 0, true},
		{"uniform:3", 0, true},
	}
	for _, c := range cases {
		wl, err := harness.ParseWorkload(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseWorkload(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", c.in, err)
			continue
		}
		if wl.Kind != c.want {
			t.Errorf("ParseWorkload(%q).Kind = %v, want %v", c.in, wl.Kind, c.want)
		}
		// String renders something Parse accepts again.
		if _, err := harness.ParseWorkload(wl.String()); err != nil {
			t.Errorf("round-trip of %q failed: %v", c.in, err)
		}
	}
}

// TestWorkloadDeterminism: the same coordinates replay the same keys, and
// different workers/epochs decorrelate.
func TestWorkloadDeterminism(t *testing.T) {
	for _, wl := range []harness.Workload{
		{},
		{Kind: harness.Zipf},
		{Kind: harness.HotShift, ShiftEvery: 10},
	} {
		a := fill(wl, 1<<16, 1, 7, 256)
		b := fill(wl, 1<<16, 1, 7, 256)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if !same {
			t.Errorf("%v: generation not deterministic", wl)
		}
		c := fill(wl, 1<<16, 2, 7, 256)
		diff := 0
		for i := range a {
			if a[i] != c[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("%v: workers fully correlated", wl)
		}
	}
}

// TestWorkloadUniformSpread: uniform keys hit all quarters of the domain
// roughly evenly.
func TestWorkloadUniformSpread(t *testing.T) {
	const domain, n = 1 << 16, 1 << 14
	quarters := make([]int, 4)
	for e := int64(1); e <= 16; e++ {
		for _, k := range fill(harness.Workload{}, domain, 0, e, n/16) {
			quarters[k/(domain/4)]++
		}
	}
	for q, c := range quarters {
		if c < n/8 || c > n/2 {
			t.Errorf("quarter %d holds %d of %d keys", q, c, n)
		}
	}
}

// TestWorkloadZipfHead: the zipf head (top 1% of the key space) carries a
// large share of the traffic, and larger exponents concentrate it more.
func TestWorkloadZipfHead(t *testing.T) {
	const domain, n = 1 << 16, 1 << 15
	headShare := func(s float64) float64 {
		head := 0
		total := 0
		for e := int64(1); e <= 8; e++ {
			for _, k := range fill(harness.Workload{Kind: harness.Zipf, ZipfS: s}, domain, 0, e, n/8) {
				if k < domain/100 {
					head++
				}
				total++
			}
		}
		return float64(head) / float64(total)
	}
	mild := headShare(1.1)
	steep := headShare(1.5)
	if mild < 0.3 {
		t.Errorf("zipf(1.1) head share %.2f, want >= 0.3", mild)
	}
	if steep <= mild {
		t.Errorf("zipf(1.5) head share %.2f not above zipf(1.1) %.2f", steep, mild)
	}
}

// TestWorkloadHotShift: the configured fraction lands in the hot set, and
// the hot set moves across shift boundaries.
func TestWorkloadHotShift(t *testing.T) {
	const domain, n = 1 << 16, 1 << 14
	wl := harness.Workload{Kind: harness.HotShift, HotFraction: 0.8, HotKeys: 4, ShiftEvery: 100}

	inHot := func(epoch int64) float64 {
		base := wl.HotBase(domain, epoch)
		hot := 0
		keys := fill(wl, domain, 0, epoch, n)
		for _, k := range keys {
			if (k-base)%domain < wl.HotKeys {
				hot++
			}
		}
		return float64(hot) / float64(len(keys))
	}
	if share := inHot(5); share < 0.7 || share > 0.9 {
		t.Errorf("hot share %.2f, want ~0.8", share)
	}
	if wl.HotBase(domain, 5) == wl.HotBase(domain, 105) {
		t.Error("hot set did not move across a shift boundary")
	}
	if wl.HotBase(domain, 5) != wl.HotBase(domain, 95) {
		t.Error("hot set moved within a shift period")
	}
}
