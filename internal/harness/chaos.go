// Chaos drives failure injection for multi-process runs: it supervises a
// set of real OS processes (the cluster's workers), kills one mid-run the
// way an operator's machine dies — SIGKILL, no flushing, no goodbyes — and
// restarts the cluster in recovery mode. The recovery equivalence tests and
// scripts/cluster.sh's kill-and-recover mode are built on it.
package harness

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ChaosProc describes one supervised process.
type ChaosProc struct {
	Name string   // label for logs and errors
	Path string   // binary to execute
	Args []string // arguments (argv[1:])
	Env  []string // extra environment entries, appended to os.Environ()
	Log  string   // file receiving combined stdout+stderr ("" discards)
}

// Chaos supervises one generation of cluster processes. Create it with the
// process specs, StartAll, then Kill/Signal/WaitAll as the scenario
// demands. A Chaos value is not safe for concurrent method calls.
type Chaos struct {
	Procs []ChaosProc

	cmds []*exec.Cmd
	logs []*os.File
	done []chan error // closed after Wait returns; carries the exit error
}

// StartAll launches every process. On error, already-started processes are
// killed.
func (c *Chaos) StartAll() error {
	c.cmds = make([]*exec.Cmd, len(c.Procs))
	c.logs = make([]*os.File, len(c.Procs))
	c.done = make([]chan error, len(c.Procs))
	for i := range c.Procs {
		if err := c.start(i); err != nil {
			c.KillAll()
			return err
		}
	}
	return nil
}

func (c *Chaos) start(i int) error {
	p := c.Procs[i]
	cmd := exec.Command(p.Path, p.Args...)
	cmd.Env = append(os.Environ(), p.Env...)
	if p.Log != "" {
		f, err := os.Create(p.Log)
		if err != nil {
			return fmt.Errorf("chaos: log for %s: %w", p.Name, err)
		}
		c.logs[i] = f
		cmd.Stdout = f
		cmd.Stderr = f
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: starting %s: %w", p.Name, err)
	}
	c.cmds[i] = cmd
	ch := make(chan error, 1)
	c.done[i] = ch
	go func() {
		ch <- cmd.Wait()
		close(ch)
	}()
	return nil
}

// Kill delivers SIGKILL to process i — the abrupt machine-death failure
// mode checkpoints exist for. It does not wait for the exit.
func (c *Chaos) Kill(i int) error {
	if c.cmds[i] == nil || c.cmds[i].Process == nil {
		return fmt.Errorf("chaos: %s not running", c.Procs[i].Name)
	}
	return c.cmds[i].Process.Signal(syscall.SIGKILL)
}

// KillAll SIGKILLs every process that was started (best effort).
func (c *Chaos) KillAll() {
	for i := range c.cmds {
		if c.cmds[i] != nil && c.cmds[i].Process != nil {
			c.cmds[i].Process.Signal(syscall.SIGKILL)
		}
	}
}

// Wait blocks until process i exits (or the timeout elapses) and returns
// its exit error (nil for success).
func (c *Chaos) Wait(i int, timeout time.Duration) error {
	select {
	case err := <-c.done[i]:
		c.closeLog(i)
		return err
	case <-time.After(timeout):
		return fmt.Errorf("chaos: %s did not exit within %v", c.Procs[i].Name, timeout)
	}
}

// WaitAll waits for every started process, killing stragglers once the
// timeout elapses, and returns the per-process exit errors.
func (c *Chaos) WaitAll(timeout time.Duration) []error {
	errs := make([]error, len(c.cmds))
	var wg sync.WaitGroup
	deadline := time.After(timeout)
	killed := make(chan struct{})
	go func() {
		select {
		case <-deadline:
			c.KillAll()
		case <-killed:
		}
	}()
	for i := range c.cmds {
		if c.cmds[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = <-c.done[i]
		}(i)
	}
	wg.Wait()
	close(killed)
	for i := range c.cmds {
		c.closeLog(i)
	}
	return errs
}

func (c *Chaos) closeLog(i int) {
	if c.logs[i] != nil {
		c.logs[i].Close()
		c.logs[i] = nil
	}
}
