// Chaos drives failure injection for multi-process runs: it supervises a
// set of real OS processes (the cluster's workers), kills one mid-run the
// way an operator's machine dies — SIGKILL, no flushing, no goodbyes — and
// restarts the cluster in recovery mode. The recovery equivalence tests and
// scripts/cluster.sh's kill-and-recover mode are built on it.
package harness

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ChaosProc describes one supervised process.
type ChaosProc struct {
	Name string   // label for logs and errors
	Path string   // binary to execute
	Args []string // arguments (argv[1:])
	Env  []string // extra environment entries, appended to os.Environ()
	Log  string   // file receiving combined stdout+stderr ("" discards)
}

// Chaos supervises one generation of cluster processes. Create it with the
// process specs, StartAll, then Kill/Signal/WaitAll as the scenario
// demands. A Chaos value is not safe for concurrent method calls.
type Chaos struct {
	Procs []ChaosProc

	cmds   []*exec.Cmd
	logs   []*os.File
	done   []chan error // closed after Wait returns; carries the exit error
	exited []atomic.Bool
	gen    []int // incarnation count; restarts append to the log
}

func (c *Chaos) ensure() {
	if c.cmds == nil {
		c.cmds = make([]*exec.Cmd, len(c.Procs))
		c.logs = make([]*os.File, len(c.Procs))
		c.done = make([]chan error, len(c.Procs))
		c.exited = make([]atomic.Bool, len(c.Procs))
		c.gen = make([]int, len(c.Procs))
	}
}

// StartAll launches every process. On error, already-started processes are
// killed.
func (c *Chaos) StartAll() error {
	c.ensure()
	for i := range c.Procs {
		if err := c.start(i); err != nil {
			c.KillAll()
			return err
		}
	}
	return nil
}

// Start launches process i, which must not already be running. The
// supervision tables are sized lazily, so a gauntlet may bring up a subset
// with Start and add the rest later — the join scenario's late roster slot.
func (c *Chaos) Start(i int) error {
	c.ensure()
	if c.running(i) {
		return fmt.Errorf("chaos: %s is already running", c.Procs[i].Name)
	}
	return c.start(i)
}

// Restart launches a fresh incarnation of process i, first waiting up to
// the timeout for the previous one (if any) to exit. The new incarnation
// appends to the same log file, so one artifact holds the full history.
func (c *Chaos) Restart(i int, timeout time.Duration) error {
	c.ensure()
	if c.cmds[i] != nil {
		select {
		case <-c.done[i]:
		case <-time.After(timeout):
			return fmt.Errorf("chaos: %s still running after %v; kill it before Restart", c.Procs[i].Name, timeout)
		}
		c.closeLog(i)
	}
	return c.start(i)
}

// running reports whether incarnation i was started and has not exited.
func (c *Chaos) running(i int) bool {
	return c.cmds[i] != nil && !c.exited[i].Load()
}

func (c *Chaos) start(i int) error {
	p := c.Procs[i]
	cmd := exec.Command(p.Path, p.Args...)
	cmd.Env = append(os.Environ(), p.Env...)
	if p.Log != "" {
		flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if c.gen[i] > 0 {
			flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(p.Log, flags, 0o644)
		if err != nil {
			return fmt.Errorf("chaos: log for %s: %w", p.Name, err)
		}
		c.logs[i] = f
		cmd.Stdout = f
		cmd.Stderr = f
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: starting %s: %w", p.Name, err)
	}
	c.cmds[i] = cmd
	c.gen[i]++
	c.exited[i].Store(false)
	ch := make(chan error, 1)
	c.done[i] = ch
	go func() {
		err := cmd.Wait()
		c.exited[i].Store(true)
		ch <- err
		close(ch)
	}()
	return nil
}

// Kill delivers SIGKILL to process i — the abrupt machine-death failure
// mode checkpoints exist for. It does not wait for the exit.
func (c *Chaos) Kill(i int) error {
	if c.cmds[i] == nil || c.cmds[i].Process == nil {
		return fmt.Errorf("chaos: %s not running", c.Procs[i].Name)
	}
	return c.cmds[i].Process.Signal(syscall.SIGKILL)
}

// KillAll SIGKILLs every process that was started (best effort).
func (c *Chaos) KillAll() {
	for i := range c.cmds {
		if c.cmds[i] != nil && c.cmds[i].Process != nil {
			c.cmds[i].Process.Signal(syscall.SIGKILL)
		}
	}
}

// Wait blocks until process i exits (or the timeout elapses) and returns
// its exit error (nil for success).
func (c *Chaos) Wait(i int, timeout time.Duration) error {
	select {
	case err := <-c.done[i]:
		c.closeLog(i)
		return err
	case <-time.After(timeout):
		return fmt.Errorf("chaos: %s did not exit within %v", c.Procs[i].Name, timeout)
	}
}

// ExitStatus is one process's outcome from WaitAll.
type ExitStatus struct {
	Err    error // exit error (nil: clean exit, or the process was never started)
	Killed bool  // true when WaitAll SIGKILLed it as a straggler at the timeout
}

// WaitAll waits for every started process, killing stragglers once the
// timeout elapses, and returns the per-process outcomes. A straggler's
// status has Killed set so a gauntlet failure names the actual culprit
// instead of blaming whatever exit error the SIGKILL produced.
func (c *Chaos) WaitAll(timeout time.Duration) []ExitStatus {
	sts := make([]ExitStatus, len(c.cmds))
	var wg sync.WaitGroup
	deadline := time.After(timeout)
	finished := make(chan struct{})
	go func() {
		select {
		case <-deadline:
			for i := range c.cmds {
				if c.cmds[i] != nil && !c.exited[i].Load() {
					sts[i].Killed = true
				}
			}
			c.KillAll()
		case <-finished:
		}
	}()
	for i := range c.cmds {
		if c.cmds[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sts[i].Err = <-c.done[i]
		}(i)
	}
	wg.Wait()
	close(finished)
	for i := range c.cmds {
		c.closeLog(i)
	}
	return sts
}

func (c *Chaos) closeLog(i int) {
	if c.logs[i] != nil {
		c.logs[i].Close()
		c.logs[i] = nil
	}
}
