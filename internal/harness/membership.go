package harness

import (
	"fmt"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/metrics"
	"megaphone/internal/plan"
)

// ClusterFabric bundles the two halves of the runtime the membership
// protocol drives: the local execution (pause/resume, hold inventory,
// tracker reset, views) and the mesh (peer activity, counters, membership
// epoch). Together they satisfy plan.Fabric.
type ClusterFabric struct {
	*dataflow.Execution
	*dataflow.Mesh
}

var _ plan.Fabric = ClusterFabric{}

// MembershipRunOptions configures RunMembership. Every process of the run
// must use identical values apart from LeaveAt.
type MembershipRunOptions struct {
	// Rate is the cluster-wide offered load in records per second;
	// EpochEvery the epoch granularity; Duration the total run length
	// measured from the base start epoch — a joiner admitted at epoch J
	// drives [J, end] of the same global epoch range, so every process
	// computes the same end epoch from the same flags.
	Rate       int
	EpochEvery time.Duration
	Duration   time.Duration
	// TotalInputs is the cluster-wide input count (the full roster's worker
	// count, absent slots included: their slots are covered by the live
	// processes, so the input multiset is membership-independent).
	TotalInputs int
	// CheckpointEvery issues a checkpoint command at every epoch divisible
	// by it. Required in practice: crash-leave restores from the latest
	// complete checkpoint.
	CheckpointEvery int64
	// LeaveAt, when positive, makes this process request drain-leave once
	// its loop passes that epoch.
	LeaveAt int64
	// CrashAt, when positive, makes this process abandon the run abruptly
	// when its loop reaches that epoch: no input close, no goodbye, no FIN —
	// the in-process stand-in for SIGKILL (multi-process fixtures use the
	// real signal). Survivors must declare the slot dead and recover. Keep
	// it away from commit epochs; a process parked in a barrier cannot
	// crash through this hook.
	CrashAt int64
	// CheckpointDir, when set together with CrashAt, delays the abandon
	// until a complete full-roster checkpoint exists: without one the dead
	// member's bins are unrecoverable and the survivors can never declare
	// the death (the scenario every crash fixture scripts is a kill after a
	// durable checkpoint, matching the declaration gate). On a loaded
	// machine the probe frontier can lag the wall-clock epoch by hundreds of
	// epochs, so an unconditional abandon at CrashAt could outrun the first
	// checkpoint's completion.
	CheckpointDir string
}

// RunMembership drives one process of a dynamic-membership run: the
// open-loop injection of Run, plus the membership controller's transitions —
// admission barrier for a joiner, drain-out for a leaver, crash barrier and
// bounded input replay when a member is declared dead. Latency probing and
// migration scheduling are deliberately absent: membership runs measure
// output equivalence, not latency, and scripted migrations would race the
// controller's assignment mirror.
func RunMembership[T any](
	fab ClusterFabric,
	mc *plan.MembershipController,
	inputs []*dataflow.InputHandle[T],
	ctl []*dataflow.InputHandle[core.Move],
	probe *dataflow.Probe,
	gen Gen[T],
	binOf func(T) int,
	opts MembershipRunOptions,
) (Result, error) {
	if opts.EpochEvery <= 0 {
		opts.EpochEvery = time.Millisecond
	}
	totalInputs := int64(opts.TotalInputs)
	perEpoch := int64(float64(opts.Rate) * opts.EpochEvery.Seconds())
	nOf := func(g int64) int {
		n := perEpoch / totalInputs
		if g < perEpoch%totalInputs {
			n++
		}
		return int(n)
	}
	endEpoch := int64(opts.Duration / opts.EpochEvery) // base start epoch is 1

	res := Result{Timeline: metrics.NewTimeline(), Hist: &metrics.Histogram{}, Memory: &metrics.Series{Name: "heap-bytes"}}

	settle := func() {
		for {
			ok := true
			for _, in := range inputs {
				ok = ok && in.Settled()
			}
			for _, h := range ctl {
				ok = ok && h.Settled()
			}
			if ok {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Entry: members start at the base epoch and seed the live-only
	// assignment; a joiner asks for admission, advances straight to the
	// commit epoch, and runs the admission barrier before its first epoch.
	startEpoch := int64(1)
	if mc.Joiner() {
		tr, err := mc.AwaitAdmission()
		if err != nil {
			return res, err
		}
		for _, in := range inputs {
			in.AdvanceTo(tr.Epoch)
		}
		for _, h := range ctl {
			h.AdvanceTo(tr.Epoch)
		}
		settle()
		mc.RunBarrier(tr)
		startEpoch = int64(tr.Epoch)
	} else {
		for _, in := range inputs {
			in.AdvanceTo(core.Time(startEpoch))
		}
		for _, h := range ctl {
			h.AdvanceTo(core.Time(startEpoch))
		}
		if mv := mc.InitialMoves(); len(mv) > 0 {
			ctl[0].SendAt(core.Time(startEpoch), mv...)
		}
		// Align on cluster-wide readiness before starting the clock, as Run
		// does: the output frontier reaches the start epoch only once every
		// live process has opened its inputs there.
		for {
			if f := probe.Frontier(); f == core.None || int64(f) >= startEpoch {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	start := time.Now()
	deadline := func(e int64) time.Time {
		return start.Add(time.Duration(e-startEpoch+1) * opts.EpochEvery)
	}

	// replay re-injects, at the crash commit epoch, this process's replay
	// share of the input window the barrier established as lost — per bin,
	// the epochs in [BinCut[bin], Epoch): from the checkpoint epoch for the
	// dead member's bins (their state rolled back there), from the owner's
	// applied bound for everyone else's (applications below it survived in
	// place; records at or above it were purged).
	replay := func(tr *plan.Transition, br plan.BarrierResult, at core.Time) int64 {
		lo := int64(tr.Epoch)
		for _, c := range br.BinCut {
			if int64(c) < lo {
				lo = int64(c)
			}
		}
		var injected int64
		for _, g := range mc.ReplaySlots(tr.Epoch) {
			n := nOf(int64(g))
			if n == 0 {
				continue
			}
			for e := lo; e < int64(tr.Epoch); e++ {
				batch := gen(g, e, n)
				kept := batch[:0]
				for _, r := range batch {
					if core.Time(e) >= br.BinCut[binOf(r)] {
						kept = append(kept, r)
					}
				}
				if len(kept) > 0 {
					inputs[0].SendBatchAt(at, kept)
					injected += int64(len(kept))
				}
			}
		}
		return injected
	}

	leaveCommit := int64(-1) // commit epoch of this process's own drain
	leaveRequested := false
	departing := false
	recoverable := func() bool {
		if opts.CheckpointDir == "" {
			return true
		}
		_, _, ok, err := core.LatestCheckpoint(opts.CheckpointDir, int(totalInputs))
		return err == nil && ok
	}
	for e := startEpoch; e <= endEpoch; e++ {
		if opts.CrashAt > 0 && e >= opts.CrashAt && recoverable() {
			fab.Mesh.Abandon()
			fab.Execution.Halt()
			fab.Execution.Wait()
			res.Elapsed = time.Since(start).Seconds()
			return res, nil
		}
		if d := time.Until(deadline(e)); d > 0 {
			time.Sleep(d)
		}
		t := core.Time(e)

		if tr := mc.NextCommit(); tr != nil && t == tr.Epoch {
			switch tr.Kind {
			case plan.TransitionDrain:
				mc.CommitDrain(tr)
				if tr.Slot == mc.Proc() {
					leaveCommit = e
				}
			default: // join (member side) or crash-leave
				settle()
				br := mc.RunBarrier(tr)
				if tr.Kind == plan.TransitionCrash {
					res.Records += replay(tr, br, t)
				}
			}
		}

		if mv := mc.MovesAt(t); len(mv) > 0 {
			ctl[0].SendAt(t, mv...)
		}
		if opts.CheckpointEvery > 0 && e%opts.CheckpointEvery == 0 && e != startEpoch {
			ctl[0].SendAt(t, core.CheckpointMove())
		}
		for _, g := range mc.Covered(t) {
			n := nOf(int64(g))
			if n == 0 {
				continue
			}
			batch := gen(g, e, n)
			h := inputs[g%len(inputs)]
			if first := mc.Proc() * len(inputs); g >= first && g < first+len(inputs) {
				h = inputs[g-first]
			}
			h.SendBatchAt(t, batch)
			res.Records += int64(len(batch))
		}
		mc.Tick(t)
		for _, in := range inputs {
			in.AdvanceTo(t + 1)
		}
		for _, h := range ctl {
			h.AdvanceTo(t + 1)
		}
		res.Epochs = e

		if opts.LeaveAt > 0 && e >= opts.LeaveAt && !leaveRequested {
			mc.RequestLeave()
			leaveRequested = true
		}
		if leaveCommit >= 0 {
			// Drained out once the frontier passes the commit epoch: the
			// moves at it executed, so our bins are shipped and installed.
			if f := probe.Frontier(); f == core.None || int64(f) > leaveCommit {
				departing = true
				res.Epochs = e
				break
			}
		}
	}

	if departing {
		// Depart: close inputs (the flush drops our capability holds and the
		// progress broadcast retires them cluster-wide), wait for our own
		// frontier to confirm the drops were applied — at which point the
		// retirement frames are queued ahead of anything we send next — then
		// say goodbye (survivors retire this slot on receipt) and FIN out
		// one-sidedly.
		holdEpoch := res.Epochs + 1 // inputs were advanced here before the break
		for _, h := range ctl {
			h.Close()
		}
		for _, in := range inputs {
			in.Close()
		}
		for {
			if f := probe.Frontier(); f == core.None || int64(f) > holdEpoch {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		fab.Mesh.Leave()
		mc.Goodbye()
		fab.Execution.Halt()
		fab.Execution.Wait()
		res.Elapsed = time.Since(start).Seconds()
		return res, nil
	}

	// Normal shutdown: close inputs and drain. A process that outlived a
	// drained or dead peer reaches this with the peer retired, so the
	// shutdown barrier does not wait for it.
	for _, h := range ctl {
		h.Close()
	}
	for _, in := range inputs {
		in.Close()
	}
	fab.Execution.Wait()
	res.Elapsed = time.Since(start).Seconds()
	return res, fab.Execution.Err()
}

// MembershipSpecError builds the common validation error for options that
// membership mode rejects.
func MembershipSpecError(workload, what string) error {
	return fmt.Errorf("%s: %s cannot be combined with dynamic membership", workload, what)
}
