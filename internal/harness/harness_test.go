package harness_test

import (
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/operators"
	"megaphone/internal/plan"
)

// TestOpenLoopRun drives a trivial dataflow and checks the harness's
// accounting: epochs driven, records injected at the configured rate, and
// latencies measured for (nearly) every epoch.
func TestOpenLoopRun(t *testing.T) {
	const workers = 2
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var ins []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, _ := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		h, s := dataflow.NewInput[uint64](w, "in")
		ins = append(ins, h)
		doubled := operators.Map(w, "x2", s, func(x uint64) uint64 { return 2 * x })
		p := dataflow.NewProbe(w, doubled)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()
	ctl := plan.NewController(ctlIns, probe)

	opts := harness.Options{
		Rate:        10_000,
		EpochEvery:  time.Millisecond,
		Duration:    500 * time.Millisecond,
		ReportEvery: 100 * time.Millisecond,
	}
	res := harness.Run(exec, ins, ctl, probe,
		func(w int, epoch int64, n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(epoch)
			}
			return out
		}, opts)

	wantEpochs := int64(opts.Duration / opts.EpochEvery)
	if res.Epochs != wantEpochs {
		t.Errorf("epochs = %d, want %d", res.Epochs, wantEpochs)
	}
	wantRecords := int64(opts.Rate) * int64(opts.Duration) / int64(time.Second)
	if res.Records < wantRecords*9/10 || res.Records > wantRecords*11/10 {
		t.Errorf("records = %d, want ~%d", res.Records, wantRecords)
	}
	if res.Hist.Count() != wantEpochs {
		t.Errorf("latency count = %d, want %d (one per epoch)", res.Hist.Count(), wantEpochs)
	}
	if got := len(res.Timeline.Samples()); got < 4 {
		t.Errorf("timeline samples = %d, want >= 4", got)
	}
	// Open loop on an idle system: p50 should be at most a few epochs.
	if p50 := res.Hist.Quantile(0.5); p50 > (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("p50 latency %v suspiciously high for trivial dataflow", time.Duration(p50))
	}
}
