package harness_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"megaphone/internal/harness"
)

// Supervisor-level tests for the Chaos process harness: single-process Start,
// Restart incarnations sharing one log artifact, and WaitAll's killed-vs-exited
// reporting. These use throwaway shell processes, not cluster workers.

func shellProc(name, script, log string) harness.ChaosProc {
	return harness.ChaosProc{Name: name, Path: "/bin/sh", Args: []string{"-c", script}, Log: log}
}

func TestChaosStartRejectsRunning(t *testing.T) {
	c := &harness.Chaos{Procs: []harness.ChaosProc{shellProc("sleeper", "sleep 30", "")}}
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(0); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Fatalf("second Start of a running process: err = %v, want 'already running'", err)
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(0, 10*time.Second); err == nil {
		t.Fatal("SIGKILLed process exited cleanly")
	}
	// Once exited, the slot is free again.
	c.Procs[0] = shellProc("sleeper", "true", "")
	if err := c.Start(0); err != nil {
		t.Fatalf("Start after exit: %v", err)
	}
	if err := c.Wait(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestChaosRestartAppendsLog(t *testing.T) {
	log := filepath.Join(t.TempDir(), "proc.log")
	c := &harness.Chaos{Procs: []harness.ChaosProc{shellProc("worker", "echo incarnation; sleep 30", log)}}
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	// Restart must refuse while the previous incarnation is still running.
	if err := c.Restart(0, 200*time.Millisecond); err == nil || !strings.Contains(err.Error(), "still running") {
		t.Fatalf("Restart over a live process: err = %v, want 'still running'", err)
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	// After the kill, Restart reaps the old incarnation and starts a new one
	// appending to the same log.
	if err := c.Restart(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait until the new incarnation has written its line before killing it.
	deadline := time.Now().Add(10 * time.Second)
	var data []byte
	for {
		var err error
		data, err = os.ReadFile(log)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Count(string(data), "incarnation") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log holds %d incarnation lines, want 2 (restart must append, not truncate):\n%s",
				strings.Count(string(data), "incarnation"), data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Kill(0)
	if sts := c.WaitAll(10 * time.Second); len(sts) != 1 {
		t.Fatalf("WaitAll statuses: %v", sts)
	}
}

func TestChaosWaitAllReportsKilledStragglers(t *testing.T) {
	c := &harness.Chaos{Procs: []harness.ChaosProc{
		shellProc("quick", "true", ""),
		shellProc("straggler", "sleep 60", ""),
		shellProc("never-started", "true", ""),
	}}
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sts := c.WaitAll(2 * time.Second)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("WaitAll took %v; the straggler was not killed at the timeout", elapsed)
	}
	if len(sts) != 3 {
		t.Fatalf("WaitAll returned %d statuses, want 3", len(sts))
	}
	if sts[0].Err != nil || sts[0].Killed {
		t.Fatalf("clean exit reported as %+v", sts[0])
	}
	if sts[1].Err == nil || !sts[1].Killed {
		t.Fatalf("straggler reported as %+v, want a kill with Killed=true", sts[1])
	}
	if sts[2].Err != nil || sts[2].Killed {
		t.Fatalf("never-started process reported as %+v, want zero status", sts[2])
	}
}
