// Package metrics provides the measurement machinery of the paper's
// evaluation: latencies recorded "in units of nanoseconds ... in a histogram
// of logarithmically-sized bins" (Section 5), percentile and CCDF
// extraction, and windowed latency timelines.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// subBucketBits is the number of linear subdivisions per power of two,
// giving ~3% relative resolution (HDR-style log-linear binning).
const subBucketBits = 5

const subBuckets = 1 << subBucketBits

// Histogram is a log-linear histogram of non-negative int64 values
// (typically latencies in nanoseconds). The zero value is ready to use.
type Histogram struct {
	counts [64 * subBuckets]int64
	total  int64
	max    int64
	min    int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // position of the top bit
	shift := exp - subBucketBits
	sub := int(v>>uint(shift)) & (subBuckets - 1)
	return (shift+1)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	return (int64(subBuckets) + int64(sub)) << uint(shift)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
	if h.total == 1 || v < h.min {
		h.min = v
	}
}

// RecordN adds n observations of the same value.
func (h *Histogram) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)] += n
	h.total += n
	if v > h.max {
		h.max = v
	}
	if h.total == n || v < h.min {
		h.min = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the value at quantile q in [0, 1], with bucket
// resolution. Quantile(1) returns the exact maximum.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds the observations of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// CCDFPoint is one point of a complementary cumulative distribution: the
// fraction of observations strictly greater than Value.
type CCDFPoint struct {
	Value    int64
	Fraction float64
}

// CCDF returns the complementary CDF over the occupied buckets, suitable for
// regenerating Figures 13-15.
func (h *Histogram) CCDF() []CCDFPoint {
	if h.total == 0 {
		return nil
	}
	var pts []CCDFPoint
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		frac := float64(h.total-seen) / float64(h.total)
		pts = append(pts, CCDFPoint{Value: bucketLow(i), Fraction: frac})
	}
	return pts
}

// Summary formats selected percentiles in milliseconds, mirroring the
// paper's overhead tables (90%, 99%, 99.99%, max).
func (h *Histogram) Summary() string {
	ms := func(v int64) float64 { return float64(v) / 1e6 }
	return fmt.Sprintf("90%%=%.2fms 99%%=%.2fms 99.99%%=%.2fms max=%.2fms",
		ms(h.Quantile(0.90)), ms(h.Quantile(0.99)), ms(h.Quantile(0.9999)), ms(h.Max()))
}
