package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestBucketRoundTrip: bucketLow(bucketOf(v)) <= v and the relative error is
// bounded by the sub-bucket resolution.
func TestBucketRoundTrip(t *testing.T) {
	prop := func(raw uint32) bool {
		v := int64(raw)
		b := bucketOf(v)
		low := bucketLow(b)
		if low > v {
			return false
		}
		// Relative resolution: low >= v * (1 - 2/subBuckets).
		return float64(v-low) <= float64(v)/float64(subBuckets)*2+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBucketMonotone: bucket index is monotone in the value.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

// TestQuantilesAgainstSort compares histogram quantiles with exact ones.
func TestQuantilesAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h Histogram
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		h.Record(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 0.9999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		// Log-linear buckets guarantee ~2/subBuckets relative error.
		lo := float64(exact) * 0.9
		hi := float64(exact)*1.1 + 2
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q=%v: got %d, exact %d", q, got, exact)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %d, want max %d", h.Quantile(1), h.Max())
	}
}

// TestCCDFMonotone: CCDF fractions are non-increasing and end at 0.
func TestCCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(int64(rng.Intn(1 << 24)))
	}
	pts := h.CCDF()
	if len(pts) == 0 {
		t.Fatal("empty CCDF")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction > pts[i-1].Fraction {
			t.Fatalf("CCDF not monotone at %d", i)
		}
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("CCDF values not increasing at %d", i)
		}
	}
	if last := pts[len(pts)-1].Fraction; last != 0 {
		t.Fatalf("CCDF does not end at 0: %v", last)
	}
}

// TestMerge: merging histograms equals recording everything in one.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all Histogram
	for i := 0; i < 3000; i++ {
		v := int64(rng.Intn(1 << 30))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge mismatch: count %d/%d max %d/%d", a.Count(), all.Count(), a.Max(), all.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged quantile %v differs", q)
		}
	}
}

// TestTimelineWindows: flushed samples expose per-window percentiles and
// reset between windows.
func TestTimelineWindows(t *testing.T) {
	tl := NewTimeline()
	tl.Record(1e6) // 1ms
	tl.Record(2e6)
	tl.Flush(0.25)
	tl.Record(100e6) // 100ms spike
	tl.Flush(0.5)
	tl.Flush(0.75) // empty window
	s := tl.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3", len(s))
	}
	if s[0].Max > 3 || s[0].Max < 1.9 {
		t.Errorf("window 0 max = %v, want ~2", s[0].Max)
	}
	if s[1].Max < 90 {
		t.Errorf("window 1 max = %v, want ~100", s[1].Max)
	}
	if s[2].Max != 0 {
		t.Errorf("empty window max = %v, want 0", s[2].Max)
	}
	if got := tl.MaxOver(0, 1); got < 90 {
		t.Errorf("MaxOver = %v, want >= 90", got)
	}
}

// TestSeries covers Series helpers.
func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	if s.Max() != 99 {
		t.Errorf("max = %v", s.Max())
	}
	if q := s.Quantile(0.5); q < 48 || q > 51 {
		t.Errorf("median = %v", q)
	}
}
