package metrics

import (
	"fmt"
	"io"
	"sort"
)

// TimelineSample is one reporting window of a latency timeline: the paper's
// Figures 5-12 plot max, p99, p50 and p25 per 250 ms window.
type TimelineSample struct {
	At  float64 // window end, seconds since run start
	Max float64 // milliseconds
	P99 float64
	P50 float64
	P25 float64
}

// Timeline accumulates per-window latency distributions.
type Timeline struct {
	window  *Histogram
	samples []TimelineSample
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{window: &Histogram{}}
}

// Record adds a latency observation (nanoseconds) to the current window.
func (tl *Timeline) Record(ns int64) { tl.window.Record(ns) }

// Flush closes the current window at time at (seconds) and starts the next.
// Empty windows produce a zero sample, keeping the time axis regular.
func (tl *Timeline) Flush(at float64) {
	h := tl.window
	ms := func(v int64) float64 { return float64(v) / 1e6 }
	tl.samples = append(tl.samples, TimelineSample{
		At:  at,
		Max: ms(h.Max()),
		P99: ms(h.Quantile(0.99)),
		P50: ms(h.Quantile(0.50)),
		P25: ms(h.Quantile(0.25)),
	})
	h.Reset()
}

// Samples returns the flushed windows.
func (tl *Timeline) Samples() []TimelineSample { return tl.samples }

// MaxOver returns the maximum latency (ms) over samples with At in [from,
// to], and the duration of the sub-interval with samples above threshold.
func (tl *Timeline) MaxOver(from, to float64) float64 {
	max := 0.0
	for _, s := range tl.samples {
		if s.At >= from && s.At <= to && s.Max > max {
			max = s.Max
		}
	}
	return max
}

// Fprint writes the timeline as aligned rows: time, max, p99, p50, p25 —
// the series the paper's latency figures plot.
func (tl *Timeline) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s\n", "time[s]", "max[ms]", "p99[ms]", "p50[ms]", "p25[ms]")
	for _, s := range tl.samples {
		fmt.Fprintf(w, "%10.2f %12.3f %12.3f %12.3f %12.3f\n", s.At, s.Max, s.P99, s.P50, s.P25)
	}
}

// Series is a generic named time series (e.g. memory over time, Figure 20).
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SeriesPoint is one (time, value) observation.
type SeriesPoint struct {
	At    float64
	Value float64
}

// Add appends an observation.
func (s *Series) Add(at, value float64) {
	s.Points = append(s.Points, SeriesPoint{At: at, Value: value})
}

// Max returns the maximum value in the series (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Quantile returns the q-quantile of the series values.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	vals := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vals[i] = p.Value
	}
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

// Fprint writes the series as rows.
func (s *Series) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%10s %14s  # %s\n", "time[s]", "value", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%10.2f %14.3f\n", p.At, p.Value)
	}
}
