package plan

import (
	"testing"

	"megaphone/internal/core"
)

func TestDecisionFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		d      Decision
		assign Assignment
	}{
		{"issued", Decision{Epoch: 1234, Policy: "load-balance", Moves: 3, Steps: 2,
			WindowRecs: 9999, Volume: 555, Gain: 777, Origin: 2}, Assignment{0, 1, 2, 0}},
		{"declined", Decision{Epoch: 88, Policy: "load-balance", Moves: 5, Steps: 5,
			WindowRecs: 12, Declined: true, Reason: ReasonVolume, Volume: 1 << 40, Gain: 3, Origin: 0}, nil},
		{"empty strings", Decision{Epoch: 0}, Assignment{}},
	}
	for _, tc := range cases {
		buf := appendDecisionFrame(nil, tc.d, tc.assign)
		if buf[0] != ctrlKindDecision {
			t.Fatalf("%s: kind byte %d", tc.name, buf[0])
		}
		got, assign, err := parseDecisionFrame(buf[1:])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.d {
			t.Fatalf("%s: got %+v, want %+v", tc.name, got, tc.d)
		}
		if len(assign) != len(tc.assign) {
			t.Fatalf("%s: assignment %v, want %v", tc.name, assign, tc.assign)
		}
		for b := range assign {
			if assign[b] != tc.assign[b] {
				t.Fatalf("%s: assignment %v, want %v", tc.name, assign, tc.assign)
			}
		}
	}
}

func TestDecisionFrameTruncationErrors(t *testing.T) {
	full := appendDecisionFrame(nil, Decision{Epoch: 42, Policy: "load-balance",
		Reason: "x", Moves: 1, Steps: 1, WindowRecs: 2, Volume: 3, Gain: 4, Origin: 1},
		Assignment{1, 0})
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := parseDecisionFrame(full[1:cut]); err == nil {
			t.Fatalf("truncation at %d of %d parsed cleanly", cut, len(full))
		}
	}
}

func FuzzDecisionFrameParse(f *testing.F) {
	f.Add(appendDecisionFrame(nil, Decision{Epoch: 7, Policy: "p", Origin: 1}, Assignment{0, 1})[1:])
	f.Fuzz(func(t *testing.T, data []byte) {
		parseDecisionFrame(data) // must not panic
	})
}

// TestAutoControllerCostGateDeclines exercises the cost gate end to end on a
// single process: a policy that always proposes a huge-volume move is vetoed
// by the model, the decline lands in Decisions with its reason, and no plan
// ever starts.
func TestAutoControllerCostGateDeclines(t *testing.T) {
	const workers, logBins = 2, 2
	meter := core.NewLoadMeter(workers, logBins)
	a := &AutoController{
		Controller: NewController(nil, nil),
		opts: AutoOptions{
			Meter:  meter,
			Policy: flipBin0{},
			Cost:   &CostModel{MigrateNanosPerRec: 1 << 40}, // any volume is ruinous
		},
		current: Initial(1<<logBins, workers),
		source:  meter,
		lastHot: -1,
	}
	a.opts.defaults()
	// Hand-feed a window and cumulative state instead of running a dataflow.
	// Bins 0 and 2 are hot on worker 0; shedding bin 0 to worker 1 drops the
	// max from 5ms to 3ms — a real gain, vetoed purely on volume.
	a.window = &core.LoadSnapshot{Workers: workers, Bins: 1 << logBins,
		BinRecs:     []uint64{2000, 0, 3000, 0},
		BinNanos:    []uint64{2_000_000, 0, 3_000_000, 0},
		WorkerRecs:  []uint64{5000, 0},
		WorkerNanos: []uint64{5_000_000, 0},
	}
	a.prev = &core.LoadSnapshot{Workers: workers, Bins: 1 << logBins,
		BinRecs:  []uint64{90_000, 0, 0, 0},
		BinNanos: make([]uint64, 4),
	}
	a.decide(100)
	ds := a.Decisions()
	if len(ds) != 1 || !ds[0].Declined {
		t.Fatalf("expected one declined decision, got %+v", ds)
	}
	if ds[0].Reason != ReasonVolume {
		t.Fatalf("reason = %q, want %q", ds[0].Reason, ReasonVolume)
	}
	if ds[0].Volume != 90_000 {
		t.Fatalf("volume = %d, want the moved bin's cumulative 90000", ds[0].Volume)
	}
	if !a.Idle() {
		t.Fatal("a declined decision started a plan")
	}
	if a.cooldown != a.opts.Cooldown {
		t.Fatalf("decline did not arm the cooldown: %d", a.cooldown)
	}
	// The assignment is unchanged.
	if cur := a.Current(); cur[0] != 0 {
		t.Fatalf("declined decision mutated the assignment: %v", cur)
	}
}

// flipBin0 always proposes moving bin 0 to the other worker.
type flipBin0 struct{}

func (flipBin0) Name() string { return "flip-bin0" }

func (flipBin0) Target(current Assignment, _ *core.LoadSnapshot) (Assignment, bool) {
	target := append(Assignment(nil), current...)
	target[0] = 1 - target[0]
	return target, true
}
