package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"megaphone/internal/core"
)

// TestDiffRoundTrip: applying Diff(from, to) to from yields to.
func TestDiffRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bins := 1 << (2 + rng.Intn(6))
		peers := 1 + rng.Intn(8)
		from := Initial(bins, peers)
		to := make(Assignment, bins)
		for b := range to {
			to[b] = rng.Intn(peers)
		}
		got := append(Assignment(nil), from...)
		for _, m := range Diff(from, to) {
			got[m.Bin] = m.Worker
		}
		for b := range to {
			if got[b] != to[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStrategiesCoverAllMoves: every strategy's plan contains exactly the
// diff's moves, partitioned into steps.
func TestStrategiesCoverAllMoves(t *testing.T) {
	from := Initial(64, 4)
	to := Rebalance(64, []int{0, 1})
	want := Diff(from, to)
	for _, s := range []Strategy{AllAtOnce, Fluid, Batched, Optimized} {
		p := Build(s, from, to, 8)
		if got := p.NumMoves(); got != len(want) {
			t.Errorf("%v: %d moves, want %d", s, got, len(want))
		}
		seen := make(map[int]int)
		for _, st := range p.Steps {
			for _, m := range st.Moves {
				seen[m.Bin] = m.Worker
			}
		}
		for _, m := range want {
			if seen[m.Bin] != m.Worker {
				t.Errorf("%v: move for bin %d missing or wrong", s, m.Bin)
			}
		}
	}
}

// TestStepShapes: all-at-once is one step; fluid is one move per step;
// batched respects the batch size.
func TestStepShapes(t *testing.T) {
	from := Initial(64, 4)
	to := Rebalance(64, []int{0, 1})
	n := len(Diff(from, to))

	if p := Build(AllAtOnce, from, to, 0); len(p.Steps) != 1 || len(p.Steps[0].Moves) != n {
		t.Errorf("all-at-once steps = %d", len(p.Steps))
	}
	if p := Build(Fluid, from, to, 0); len(p.Steps) != n {
		t.Errorf("fluid steps = %d, want %d", len(p.Steps), n)
	} else {
		for _, s := range p.Steps {
			if len(s.Moves) != 1 {
				t.Errorf("fluid step has %d moves", len(s.Moves))
			}
		}
	}
	if p := Build(Batched, from, to, 8); len(p.Steps) != (n+7)/8 {
		t.Errorf("batched steps = %d, want %d", len(p.Steps), (n+7)/8)
	}
}

// TestMatchingDisjointness: within each optimized step, no source or
// destination worker appears twice (the bipartite-matching property of
// Section 4.4).
func TestMatchingDisjointness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bins := 1 << (3 + rng.Intn(5))
		peers := 2 + rng.Intn(6)
		from := Initial(bins, peers)
		to := make(Assignment, bins)
		for b := range to {
			to[b] = rng.Intn(peers)
		}
		p := Build(Optimized, from, to, 1+rng.Intn(16))
		for _, st := range p.Steps {
			src := make(map[int]bool)
			dst := make(map[int]bool)
			for _, m := range st.Moves {
				if src[from[m.Bin]] || dst[m.Worker] {
					return false
				}
				src[from[m.Bin]] = true
				dst[m.Worker] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOptimizedHasGaps: optimized steps request the drain gap.
func TestOptimizedHasGaps(t *testing.T) {
	p := Build(Optimized, Initial(16, 4), Rebalance(16, []int{0}), 4)
	if len(p.Steps) == 0 {
		t.Fatal("no steps")
	}
	for i, s := range p.Steps {
		if !s.Gap {
			t.Errorf("step %d missing gap", i)
		}
	}
	_ = core.Move{}
}
