package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPrefixDefaultRoute: everything routes to the default initially.
func TestPrefixDefaultRoute(t *testing.T) {
	tbl := NewPrefixTable()
	for _, h := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		if w := tbl.Lookup(h); w != 0 {
			t.Errorf("Lookup(%x) = %d, want 0", h, w)
		}
	}
}

// TestPrefixLongestMatch: a more specific route wins.
func TestPrefixLongestMatch(t *testing.T) {
	tbl := NewPrefixTable()
	tbl.Insert(1<<63, 1, 1)   // 1xxx... -> 1
	tbl.Insert(3<<62, 2, 2)   // 11xx... -> 2
	tbl.Insert(0xF<<60, 4, 3) // 1111... -> 3
	cases := []struct {
		hash uint64
		want int
	}{
		{0x0000000000000000, 0},
		{0x7fffffffffffffff, 0},
		{0x8000000000000000, 1}, // 10...
		{0xc000000000000000, 2}, // 110...
		{0xe000000000000000, 2}, // 1110...
		{0xf000000000000000, 3}, // 1111...
		{0xffffffffffffffff, 3},
	}
	for _, c := range cases {
		if got := tbl.Lookup(c.hash); got != c.want {
			t.Errorf("Lookup(%x) = %d, want %d", c.hash, got, c.want)
		}
	}
}

// TestPrefixSplitMerge: splitting then merging restores routing.
func TestPrefixSplitMerge(t *testing.T) {
	tbl := NewPrefixTable()
	if !tbl.Split(0, 0, 1, 2) {
		t.Fatal("split of default route failed")
	}
	if tbl.Lookup(0) != 1 || tbl.Lookup(1<<63) != 2 {
		t.Fatalf("split routing wrong: %d, %d", tbl.Lookup(0), tbl.Lookup(1<<63))
	}
	if tbl.Split(0, 0, 9, 9) {
		t.Fatal("split of a consumed route should fail")
	}
	if !tbl.Merge(0, 0, 7) {
		t.Fatal("merge failed")
	}
	if tbl.Lookup(0) != 7 || tbl.Lookup(^uint64(0)) != 7 {
		t.Fatal("merge routing wrong")
	}
	if tbl.Len() != 1 {
		t.Fatalf("routes = %d, want 1", tbl.Len())
	}
}

// TestPrefixCompileAgreesWithLookup: the compiled per-bin assignment equals
// per-hash lookups at bin granularity, under random splits.
func TestPrefixCompileAgreesWithLookup(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewPrefixTable()
		// Random refinement: repeatedly split a random existing route.
		tbl.Split(0, 0, rng.Intn(4), rng.Intn(4))
		for i := 0; i < 20; i++ {
			h := rng.Uint64()
			l := rng.Intn(8)
			tbl.Split(h, l, rng.Intn(4), rng.Intn(4))
		}
		const logBins = 8
		a := tbl.Compile(logBins)
		for b := 0; b < 1<<logBins; b++ {
			hash := uint64(b) << (64 - logBins)
			if a[b] != tbl.Lookup(hash) {
				return false
			}
			// Any hash within the bin routes identically when no route is
			// longer than logBins bits... check a random offset too when
			// routes are short.
			_ = hash
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPrefixMovesTo: reconfiguring via the prefix table produces moves that
// transform the compiled assignments.
func TestPrefixMovesTo(t *testing.T) {
	tbl := NewPrefixTable()
	const logBins = 4
	from := tbl.Compile(logBins) // all to worker 0
	tbl.Split(0, 0, 0, 1)        // top half of hash space to worker 1
	moves := tbl.MovesTo(from, logBins)
	if len(moves) != 8 {
		t.Fatalf("moves = %d, want 8 (half the bins)", len(moves))
	}
	for _, m := range moves {
		if m.Bin < 8 || m.Worker != 1 {
			t.Errorf("unexpected move %+v", m)
		}
	}
}
