// Package plan builds and drives migration plans: the all-at-once, fluid,
// and batched strategies of Section 3.3 of the Megaphone paper, plus the
// Section 4.4 optimizations (bipartite-matching step grouping and inter-step
// gaps). A Controller feeds the resulting command sequence into a
// megaphone control stream, pacing each step on the completion of the
// previous one as observed through a probe.
package plan

import (
	"fmt"
	"sort"

	"megaphone/internal/core"
)

// Strategy selects how a reconfiguration is revealed to the dataflow.
type Strategy int

const (
	// AllAtOnce supplies every changed bin at one common timestamp — the
	// partial pause-and-resume behaviour of existing systems.
	AllAtOnce Strategy = iota
	// Fluid migrates one bin at a time, awaiting completion in between.
	Fluid
	// Batched migrates fixed-size groups of bins, awaiting completion
	// between groups: the latency/duration compromise.
	Batched
	// Optimized is Batched plus bipartite matching (steps whose moves have
	// pairwise distinct source and destination workers, so no worker
	// serializes two transfers in one step) and an idle gap after each step
	// to drain enqueued records before the next one begins.
	Optimized
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case AllAtOnce:
		return "all-at-once"
	case Fluid:
		return "fluid"
	case Batched:
		return "batched"
	case Optimized:
		return "optimized"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Assignment maps every bin to its worker.
type Assignment []int

// Initial returns the default round-robin assignment of bins to peers.
func Initial(bins, peers int) Assignment {
	a := make(Assignment, bins)
	for b := range a {
		a[b] = core.InitialWorker(b, peers)
	}
	return a
}

// Rebalance returns the assignment that round-robins bins across the given
// worker subset (e.g. half the workers, for the paper's imbalance step).
func Rebalance(bins int, workers []int) Assignment {
	a := make(Assignment, bins)
	for b := range a {
		a[b] = workers[b%len(workers)]
	}
	return a
}

// Diff returns the moves that turn assignment from into to.
func Diff(from, to Assignment) []core.Move {
	var moves []core.Move
	for b := range from {
		if from[b] != to[b] {
			moves = append(moves, core.Move{Bin: b, Worker: to[b]})
		}
	}
	return moves
}

// Step is one pacing unit of a plan: a set of moves issued at a common
// timestamp, optionally followed by an idle gap awaited before the next
// step.
type Step struct {
	Moves []core.Move
	Gap   bool // await one extra completed epoch after this step
}

// Plan is an ordered sequence of steps. Steps are issued one at a time; each
// waits for the previous one's timestamp to clear the output frontier.
type Plan struct {
	Strategy Strategy
	Steps    []Step
}

// Build renders the moves from one assignment to another into a plan under
// the given strategy. batch is the step size for Batched/Optimized (ignored
// otherwise; Fluid uses 1, AllAtOnce uses everything).
func Build(strategy Strategy, from, to Assignment, batch int) Plan {
	moves := Diff(from, to)
	p := Plan{Strategy: strategy}
	switch strategy {
	case AllAtOnce:
		if len(moves) > 0 {
			p.Steps = []Step{{Moves: moves}}
		}
	case Fluid:
		for _, m := range moves {
			p.Steps = append(p.Steps, Step{Moves: []core.Move{m}})
		}
	case Batched:
		if batch <= 0 {
			batch = 16
		}
		for len(moves) > 0 {
			n := batch
			if n > len(moves) {
				n = len(moves)
			}
			p.Steps = append(p.Steps, Step{Moves: moves[:n]})
			moves = moves[n:]
		}
	case Optimized:
		if batch <= 0 {
			batch = 16
		}
		for _, group := range matchSteps(from, moves, batch) {
			p.Steps = append(p.Steps, Step{Moves: group, Gap: true})
		}
	default:
		panic("plan: unknown strategy")
	}
	return p
}

// matchSteps greedily edge-colours the bipartite multigraph whose edges are
// moves from source worker to destination worker: each resulting group uses
// every worker at most once as a source and at most once as a destination,
// so no worker serializes two transfers within a step. Groups are then
// capped at the batch size.
func matchSteps(from Assignment, moves []core.Move, batch int) [][]core.Move {
	remaining := make([]core.Move, len(moves))
	copy(remaining, moves)
	// Deterministic order: heaviest-contention sources first.
	sort.SliceStable(remaining, func(i, j int) bool {
		if from[remaining[i].Bin] != from[remaining[j].Bin] {
			return from[remaining[i].Bin] < from[remaining[j].Bin]
		}
		return remaining[i].Bin < remaining[j].Bin
	})
	var groups [][]core.Move
	for len(remaining) > 0 {
		usedSrc := make(map[int]bool)
		usedDst := make(map[int]bool)
		var group []core.Move
		var rest []core.Move
		for _, m := range remaining {
			src := from[m.Bin]
			if len(group) < batch && !usedSrc[src] && !usedDst[m.Worker] {
				usedSrc[src] = true
				usedDst[m.Worker] = true
				group = append(group, m)
			} else {
				rest = append(rest, m)
			}
		}
		groups = append(groups, group)
		remaining = rest
	}
	return groups
}

// NumMoves returns the total number of moves in the plan.
func (p Plan) NumMoves() int {
	n := 0
	for _, s := range p.Steps {
		n += len(s.Moves)
	}
	return n
}
