package plan

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"megaphone/internal/binenc"
	"megaphone/internal/core"
	"megaphone/internal/progress"
)

// This file is the membership control plane: it reconfigures the live worker
// space of a running cluster at epoch boundaries. Three transitions exist —
// join (an absent roster slot comes up and is admitted), drain-leave (a
// member migrates its bins away and departs cleanly), and crash-leave (a
// member is declared dead and its bins are rebuilt from the latest complete
// checkpoint). The leader (lowest live index, heartbeat-elected exactly like
// the autoscaler's control plane in cluster.go) decides each transition and
// broadcasts it with a commit epoch chosen a margin ahead of the present;
// every member applies the transition when its drive loop reaches that epoch,
// so membership changes commit at frontier-aligned epoch boundaries exactly
// like bin migrations do.
//
// Join and crash-leave additionally need a cluster-wide progress barrier: the
// progress trackers of the members do not account a joiner's capability holds
// (nor, after a crash, can they cancel the dead member's), so at the commit
// epoch every participant drains to quiescence, pauses its workers, exchanges
// an explicit inventory of its capability holds, and rebuilds its tracker
// from the summed inventories (dataflow.Execution.ResetProgress). Quiescence
// is certified Safra-style: the per-peer dataflow frame counters of all
// participants must match pairwise and stay unchanged over consecutive
// control rounds. Drain-leave needs no barrier — the leaver retires its holds
// through ordinary progress broadcasts before departing.

// TransitionKind distinguishes the membership transitions.
type TransitionKind int

const (
	// TransitionJoin admits an absent roster slot at the commit epoch.
	TransitionJoin TransitionKind = iota
	// TransitionDrain removes a member that asked to leave: its bins migrate
	// away at the commit epoch and it departs once the migration completes.
	TransitionDrain
	// TransitionCrash removes a member declared dead: at the commit epoch the
	// survivors rebuild its bins from a checkpoint and purge-and-replay the
	// unapplied input window.
	TransitionCrash
)

func (k TransitionKind) String() string {
	switch k {
	case TransitionJoin:
		return "join"
	case TransitionDrain:
		return "drain-leave"
	case TransitionCrash:
		return "crash-leave"
	}
	return fmt.Sprintf("TransitionKind(%d)", int(k))
}

// Transition is one decided membership change, mirrored identically on every
// member. The drive loop commits it when its epoch loop reaches Epoch.
type Transition struct {
	Kind     TransitionKind
	Slot     int       // roster process joining, leaving, or dead
	Epoch    core.Time // commit epoch (view switch, barrier, move injection)
	MemEpoch uint64    // membership epoch after the transition

	// Ckpt is the checkpoint epoch a crash-leave restores from; DeadBins are
	// the bins rebuilt from it (the dead member's bins at the crash).
	Ckpt     core.Time
	DeadBins []int
}

// BarrierResult reports what a membership barrier established.
type BarrierResult struct {
	// Cut is the purge boundary of a crash barrier: the common wedged
	// frontier of the participants, below which every record is applied
	// everywhere. For a join barrier Cut equals the commit epoch (nothing
	// was purged).
	Cut core.Time
	// BinCut, set only by a crash barrier, is the per-bin replay boundary:
	// for every bin b, records at epochs in [BinCut[b], Epoch) must be
	// re-injected from the deterministic source, and no record below it may
	// be. A dead bin rolls back to the checkpoint, so its boundary is the
	// checkpoint epoch. A surviving bin keeps its live state, whose content
	// is bounded by its owner's applied bound, not by Cut: the global
	// frontier wedges at whatever the dead process last acknowledged, while
	// the survivors kept applying epochs past it. The bounds are reported at
	// pause time and exchanged with the hold inventories; replaying from Cut
	// alone would re-apply [Cut, bound) on every surviving bin.
	BinCut []core.Time
}

// Fabric is the slice of the dataflow runtime the membership protocol
// drives. dataflow.Execution plus dataflow.Mesh implement it together (see
// harness.ClusterFabric); membership unit tests substitute fakes.
type Fabric interface {
	Pause()
	Resume()
	HoldInventory(b *progress.Batch)
	PurgeDeferred(cut core.Time)
	AppliedBounds() map[int]core.Time
	ResetProgress(b *progress.Batch)
	InstallView(from core.Time, active []bool)
	Activate(p int)
	RetirePeer(p int)
	SetMembershipEpoch(e uint64)
	DataCounters() (sent, recv []uint64)
}

// MembershipOptions configures a MembershipController.
type MembershipOptions struct {
	// Bus is the cluster control channel (required). With *dataflow.Mesh it
	// reaches joined-but-not-yet-active peers too, which admission needs.
	Bus ControlBus
	// Fabric is the runtime the barriers drive (required).
	Fabric Fabric
	// Frontier reports the probe frontier of the local process (required):
	// the barrier's quiescence condition reads it.
	Frontier func() core.Time
	// Procs, Proc, WorkersPerProc describe the fixed roster: Procs slots of
	// WorkersPerProc workers each, this process at index Proc.
	Procs, Proc    int
	WorkersPerProc int
	// Bins is the operator's total bin count (the assignment mirror's size).
	Bins int
	// InitialActive marks the roster slots live at start (nil = all). A
	// process whose own slot is false is a late joiner.
	InitialActive []bool
	// SuspectAfter is the number of consecutive local heartbeat windows
	// without a beat from a member before it is suspected (default 4);
	// DeathAfter is how many further windows until a suspected member is
	// declared dead (default SuspectAfter). Suspicion only pauses
	// leadership; declaration is irreversible.
	SuspectAfter int
	DeathAfter   int
	// Margin is the number of epochs between a decision and its commit
	// epoch; it must exceed the control-plane latency measured in epochs,
	// and a decision arriving at a member whose loop has already passed the
	// commit epoch is fatal (raise Margin). Default 8.
	Margin core.Time
	// CheckpointDir locates checkpoints for crash-leave recovery. Required
	// to declare a member dead: without a complete checkpoint the dead
	// member's bins are unrecoverable.
	CheckpointDir string
	// BarrierTimeout bounds one membership barrier (default 60s).
	BarrierTimeout time.Duration
	// Slack multiplies SuspectAfter, DeathAfter and Margin after
	// defaulting: one jitter-tolerance knob for environments where
	// scheduling latency is large relative to the tick interval
	// (race-instrumented fixtures, single-core CI machines). Default 1.
	Slack int
	// TickEvery, when positive, is the wall-clock floor between heartbeat
	// window advances: Tick always broadcasts a beat, but the suspicion
	// clock moves at most once per TickEvery. Without the floor a drive
	// loop catching up after a stall (a barrier, crash replay) bursts
	// through epochs in microseconds and suspects every peer before their
	// beats can cross the network. Real drivers pass their epoch interval;
	// zero (the default) advances on every Tick, which suits tests that
	// step virtual time.
	TickEvery time.Duration
	// Autoscale, when non-nil, drives elasticity from load telemetry: a
	// registered standby is admitted only when the cluster is saturated, and
	// the coldest member is drain-left on sustained underload. Without it a
	// Hello is admitted as soon as the leader is free to decide.
	Autoscale *MembershipAutoscale
	// Logf, when non-nil, receives membership lifecycle messages.
	Logf func(format string, args ...any)
}

// MembershipAutoscale closes the elasticity loop: the membership leader reads
// the autoscaler's cluster-wide load windows (the two planes share the mesh
// control channel through a BusMux) and turns sustained saturation into a
// standby admission and sustained underload into a drain-leave of the coldest
// member, with the scale-out priced by the migrate-or-not cost model.
type MembershipAutoscale struct {
	// Auto is the cluster autoscale controller on the mux'd auto plane
	// (required). The membership controller ticks it, so the drive loop only
	// ever calls MembershipController.Tick. Its policy should be Static: in
	// membership mode bin moves must route through the membership plane, and
	// the controller is wanted purely for its converged load telemetry.
	Auto *AutoController
	// HotRecs is the mean records per live worker per sampling window above
	// which the cluster counts as saturated (0 disables scale-out).
	HotRecs uint64
	// ColdRecs is the mean below which it counts as underloaded (0 disables
	// scale-in).
	ColdRecs uint64
	// Sustain is the number of consecutive windows a signal must persist
	// before the leader acts (default 3).
	Sustain int
	// Cost, when non-nil, gates a scale-out on the projected profitability of
	// the rebalance it implies (see CostModel); a declined proposal resets
	// the saturation streak, so the next attempt waits another Sustain
	// windows.
	Cost *CostModel
	// MinProcs is the scale-in floor: never drain below this many live
	// processes (default 2).
	MinProcs int
}

func (as *MembershipAutoscale) defaults() {
	if as.Sustain <= 0 {
		as.Sustain = 3
	}
	if as.MinProcs < 2 {
		as.MinProcs = 2
	}
}

func (o *MembershipOptions) defaults() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4
	}
	if o.DeathAfter <= 0 {
		o.DeathAfter = o.SuspectAfter
	}
	if o.Margin <= 0 {
		o.Margin = 8
	}
	if o.BarrierTimeout <= 0 {
		o.BarrierTimeout = 60 * time.Second
	}
	if o.Slack > 1 {
		o.SuspectAfter *= o.Slack
		o.DeathAfter *= o.Slack
		o.Margin *= core.Time(o.Slack)
	}
}

func (o *MembershipOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Membership control-plane payload kinds. They live above the autoscaler's
// kinds (1, 2) so the two planes can share one mesh control channel through a
// BusMux (see mux.go), which routes inbound frames by this first byte.
const (
	memKindBeat      byte = 10 // heartbeat
	memKindHello     byte = 11 // joiner asks for admission
	memKindLeaveReq  byte = 12 // member asks to drain out
	memKindDecision  byte = 13 // leader's transition decision
	memKindReady     byte = 14 // barrier: quiescence report (frontier + counters)
	memKindInv       byte = 15 // barrier: capability-hold inventory + applied bounds
	memKindDone      byte = 16 // barrier: tracker reset complete
	memKindGoodbye   byte = 17 // leaver's final control frame before its FIN
	memKindMigration byte = 18 // leader's rendered scripted-migration schedule
)

// memStep is one step of the membership timeline: from epoch `from` onward,
// roster slot p participates iff active[p].
type memStep struct {
	from   core.Time
	active []bool
}

// barSnap is one participant's quiescence report.
type barSnap struct {
	frontier   core.Time
	sent, recv []uint64
}

// invSnap is one participant's hold inventory (with the counters it saw at
// pause time, to certify nothing moved since its ready report) plus the
// applied bounds of its workers, keyed by global worker index.
type invSnap struct {
	barSnap
	batch  progress.Batch
	bounds map[int]core.Time
}

// timedMoves is a move batch every member injects on its local control input
// at the given epoch (duplicates across members canonicalize away).
type timedMoves struct {
	epoch core.Time
	moves []core.Move
}

// residentMove records one drained (injected) move: at `epoch`, bin moved
// from `from` to `to`. The log, together with the resident base, lets the
// controller reconstruct which worker actually held a bin's state at any
// epoch — the assignment mirror alone only knows the scheduled end state.
type residentMove struct {
	epoch    core.Time
	bin      int
	from, to int
}

// MigrationSpec is one scripted migration in membership mode. Every process
// registers the identical spec sequence before its drive loop starts (so a
// leader failover re-renders the same script); only the leader renders it
// into a fixed-epoch move schedule and broadcasts the result.
type MigrationSpec struct {
	// At is the earliest epoch the leader may decide this migration.
	At core.Time
	// Strategy and Batch render the diff into a plan, as in Build.
	Strategy Strategy
	Batch    int
	// Target returns the destination assignment given the current mirror and
	// the live worker set at decision time. It must be a pure function of its
	// arguments (leader failover may re-evaluate it), and may return nil to
	// skip the migration.
	Target func(current Assignment, liveWorkers []int) Assignment
}

// scriptedMig pairs a registered spec with its registration sequence number,
// which identifies it across processes in migration frames.
type scriptedMig struct {
	seq  uint64
	spec MigrationSpec
}

// MembershipController runs one process's half of the membership protocol.
// The drive loop owns Tick, NextCommit, RunBarrier, CommitDrain, MovesAt and
// Covered; the bus's serialized handler owns inbound frames. The two sides
// meet under mu (barrier collections, decisions) and a few atomics
// (heartbeat clocks).
type MembershipController struct {
	opts MembershipOptions

	mu   sync.Mutex
	cond *sync.Cond

	active   []bool // current (latest-decided) membership
	timeline []memStep
	memEpoch uint64
	assign   Assignment // mirror of the scheduled end-state bin assignment

	// resident is the assignment as actually executed so far: it advances
	// only when MovesAt drains an injection, and moveLog records each such
	// move. assign always equals resident with every pending injection
	// applied in epoch order (rebuildMirrorLocked maintains the invariant).
	resident Assignment
	moveLog  []residentMove
	// residencyFloor is the first epoch this process witnessed residency
	// from (0 for founding members, the join commit for a joiner): a crash
	// declaration must restore from a checkpoint at or above it, because the
	// move log below the floor is unknown here.
	residencyFloor core.Time

	pending    *Transition // decided, not yet committed by the drive loop
	settleAt   core.Time   // leader: no new decision until the loop passes this
	injections []timedMoves

	scripted []scriptedMig // registered migrations not yet rendered

	helloFrom  int // joiner slot awaiting admission; -1 none
	leaveFrom  int // member asking to drain; -1 none
	deadGone   []bool
	everActive []bool // slots that were ever live (drained-silent detection)

	// Autoscale state: the last consumed telemetry window and the streak
	// counters behind the Sustain gate.
	asWindowSeq           uint64
	hotStreak, coldStreak int

	joinDecision *Transition // joiner side: our own admission

	// Heartbeat clocks, as in clusterState: ticks counts local windows,
	// lastHeard[q] the ticks value when q last spoke, tickNano the wall
	// clock of the last window advance (TickEvery pacing).
	ticks     atomic.Int64
	tickNano  atomic.Int64
	lastTick  atomic.Int64
	lastHeard []atomic.Int64
	leader    bool
	everLed   bool
	guardTill core.Time // fresh leader: no decision until the loop passes this

	// Barrier collections, keyed by commit epoch (a fast peer may report for
	// a barrier this process has not entered yet).
	ready   map[core.Time]map[int]*barSnap
	invs    map[core.Time]map[int]*invSnap
	resetOK map[core.Time]map[int]bool

	beatBuf []byte
}

// NewMembershipController validates the options, seeds the timeline from the
// initial membership, and registers the bus handler (taking sole ownership of
// the bus: membership cannot share it with the autoscaler's control plane).
func NewMembershipController(opts MembershipOptions) *MembershipController {
	if opts.Bus == nil || opts.Fabric == nil || opts.Frontier == nil {
		panic("plan: MembershipOptions needs Bus, Fabric and Frontier")
	}
	if opts.Procs < 2 || opts.Proc < 0 || opts.Proc >= opts.Procs {
		panic("plan: MembershipOptions process index out of range")
	}
	if opts.WorkersPerProc <= 0 || opts.Bins <= 0 {
		panic("plan: MembershipOptions needs WorkersPerProc and Bins")
	}
	if opts.InitialActive != nil && len(opts.InitialActive) != opts.Procs {
		panic("plan: MembershipOptions.InitialActive length does not match Procs")
	}
	if opts.Autoscale != nil {
		if opts.Autoscale.Auto == nil {
			panic("plan: MembershipAutoscale needs the cluster AutoController for telemetry")
		}
		opts.Autoscale.defaults()
	}
	opts.defaults()
	mc := &MembershipController{
		opts:      opts,
		helloFrom: -1,
		leaveFrom: -1,
		deadGone:  make([]bool, opts.Procs),
		lastHeard: make([]atomic.Int64, opts.Procs),
		ready:     make(map[core.Time]map[int]*barSnap),
		invs:      make(map[core.Time]map[int]*invSnap),
		resetOK:   make(map[core.Time]map[int]bool),
	}
	mc.cond = sync.NewCond(&mc.mu)
	mc.active = make([]bool, opts.Procs)
	for p := range mc.active {
		mc.active[p] = opts.InitialActive == nil || opts.InitialActive[p]
	}
	mc.everActive = append([]bool(nil), mc.active...)
	mc.timeline = []memStep{{from: 0, active: append([]bool(nil), mc.active...)}}
	// With absent roster slots, the operator's built-in initial assignment
	// (round-robin over the full roster) would own bins with workers that do
	// not exist yet; start from a live-only assignment instead, reached via
	// InitialMoves at the first epoch.
	if live := participantsOf(mc.active); len(live) == opts.Procs {
		mc.assign = Initial(opts.Bins, opts.Procs*opts.WorkersPerProc)
	} else {
		mc.assign = Rebalance(opts.Bins, mc.liveWorkers(live))
	}
	mc.resident = append(Assignment(nil), mc.assign...)
	opts.Bus.SetControlHandler(mc.onControl)
	return mc
}

// ScheduleMigration registers a scripted migration. Every process must
// register the identical spec sequence before its drive loop starts; the
// leader renders each due spec into a fixed-epoch schedule and broadcasts it
// (memKindMigration), so the move set stays canonical cluster-wide.
func (mc *MembershipController) ScheduleMigration(spec MigrationSpec) {
	if spec.Target == nil {
		panic("plan: MigrationSpec needs a Target function")
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.scripted = append(mc.scripted, scriptedMig{seq: uint64(len(mc.scripted)), spec: spec})
}

// LiveWorkersAt lists the global worker indices of the processes live at the
// given epoch. The checkpoint writer records it in manifests
// (core.CheckpointConfig.LiveAt), making checkpoints taken on a shrunk
// roster complete — and restorable — without the dead slots' manifests.
func (mc *MembershipController) LiveWorkersAt(e core.Time) []int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.liveWorkers(participantsOf(mc.activeAt(e)))
}

// Proc returns this process's roster index.
func (mc *MembershipController) Proc() int { return mc.opts.Proc }

// InitialMoves returns the moves every initially-live process injects at its
// first epoch so no bin starts owned by an absent roster slot (the
// operator's built-in initial assignment spans the full roster). Duplicate
// injections across processes canonicalize away. Empty when the roster
// starts complete.
func (mc *MembershipController) InitialMoves() []core.Move {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return Diff(Initial(mc.opts.Bins, mc.opts.Procs*mc.opts.WorkersPerProc), mc.assign)
}

// Joiner reports whether this process's own roster slot started absent.
func (mc *MembershipController) Joiner() bool {
	return mc.opts.InitialActive != nil && !mc.opts.InitialActive[mc.opts.Proc]
}

// MembershipEpoch returns the current membership view version.
func (mc *MembershipController) MembershipEpoch() uint64 {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.memEpoch
}

// Assignment returns a copy of the controller's bin-assignment mirror.
func (mc *MembershipController) Assignment() Assignment {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return append(Assignment(nil), mc.assign...)
}

// activeAt returns the membership view governing epoch e.
func (mc *MembershipController) activeAt(e core.Time) []bool {
	for i := len(mc.timeline) - 1; i >= 0; i-- {
		if mc.timeline[i].from <= e {
			return mc.timeline[i].active
		}
	}
	return mc.timeline[0].active
}

// participants lists the processes active at epoch e, ascending.
func (mc *MembershipController) participants(e core.Time) []int {
	act := mc.activeAt(e)
	var out []int
	for p, a := range act {
		if a {
			out = append(out, p)
		}
	}
	return out
}

// Covered returns the global input slots (worker indices) this process
// drives at epoch e: its own workers' slots, plus a deterministic share of
// the slots belonging to inactive roster processes — every member computes
// the same partition, so each orphan slot is driven exactly once and the
// cluster-wide input multiset per epoch is independent of membership.
func (mc *MembershipController) Covered(e core.Time) []int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	act := mc.activeAt(e)
	if !act[mc.opts.Proc] {
		return nil
	}
	live := make([]int, 0, mc.opts.Procs)
	for p, a := range act {
		if a {
			live = append(live, p)
		}
	}
	w := mc.opts.WorkersPerProc
	var out []int
	for p, a := range act {
		for i := 0; i < w; i++ {
			g := p*w + i
			if a {
				if p == mc.opts.Proc {
					out = append(out, g)
				}
			} else if live[g%len(live)] == mc.opts.Proc {
				out = append(out, g)
			}
		}
	}
	return out
}

// ReplaySlots partitions the full input slot space among the processes live
// at epoch e; the crash replay uses it so every lost record is re-injected
// by exactly one survivor.
func (mc *MembershipController) ReplaySlots(e core.Time) []int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	live := make([]int, 0, mc.opts.Procs)
	for p, a := range mc.activeAt(e) {
		if a {
			live = append(live, p)
		}
	}
	var out []int
	total := mc.opts.Procs * mc.opts.WorkersPerProc
	for g := 0; g < total; g++ {
		if live[g%len(live)] == mc.opts.Proc {
			out = append(out, g)
		}
	}
	return out
}

// NextCommit returns the decided transition the drive loop has not committed
// yet, or nil. The loop commits it when its epoch reaches Transition.Epoch
// (RunBarrier for join and crash-leave, CommitDrain for drain-leave).
func (mc *MembershipController) NextCommit() *Transition {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.pending
}

// MovesAt removes and returns the control moves every member injects on its
// local control input at epoch e (nil when none). Draining an injection
// advances the resident assignment and appends to the move log, so the
// controller can later tell executed moves apart from still-scheduled ones.
func (mc *MembershipController) MovesAt(e core.Time) []core.Move {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	var out []core.Move
	kept := mc.injections[:0]
	for _, tm := range mc.injections {
		if tm.epoch == e {
			out = append(out, tm.moves...)
		} else {
			kept = append(kept, tm)
		}
	}
	mc.injections = kept
	for _, m := range out {
		if m.IsCheckpoint() || m.Bin < 0 || m.Bin >= len(mc.resident) {
			continue
		}
		if old := mc.resident[m.Bin]; old != m.Worker {
			mc.moveLog = append(mc.moveLog, residentMove{epoch: e, bin: m.Bin, from: old, to: m.Worker})
			mc.resident[m.Bin] = m.Worker
		}
	}
	return out
}

// rebuildMirrorLocked recomputes the assignment mirror as the resident
// assignment with every pending injection applied in epoch order. Called
// after anything changes the injection set.
func (mc *MembershipController) rebuildMirrorLocked() {
	mc.assign = append(mc.assign[:0], mc.resident...)
	idx := make([]int, len(mc.injections))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return mc.injections[idx[a]].epoch < mc.injections[idx[b]].epoch
	})
	for _, i := range idx {
		for _, m := range mc.injections[i].moves {
			if !m.IsCheckpoint() && m.Bin >= 0 && m.Bin < len(mc.assign) {
				mc.assign[m.Bin] = m.Worker
			}
		}
	}
}

// residentAtLocked reconstructs which worker held each bin's state as of
// moves executed strictly before epoch t: the resident base with every move
// log entry at or above t undone, newest first.
func (mc *MembershipController) residentAtLocked(t core.Time) Assignment {
	out := append(Assignment(nil), mc.resident...)
	for i := len(mc.moveLog) - 1; i >= 0; i-- {
		if e := mc.moveLog[i]; e.epoch >= t {
			out[e.bin] = e.from
		}
	}
	return out
}

// Tick runs once per drive-loop epoch: it broadcasts the heartbeat, advances
// the suspicion clock, ticks the attached autoscaler (when configured), and —
// on the leader — decides any pending transition, due scripted migration, or
// elasticity action.
func (mc *MembershipController) Tick(now core.Time) {
	if as := mc.opts.Autoscale; as != nil {
		// The auto plane samples and converges telemetry on the same drive
		// goroutine; its policy is Static in membership mode, so it never
		// issues moves of its own.
		as.Auto.Tick(now)
	}
	mc.lastTick.Store(int64(now))
	mc.beatBuf = append(mc.beatBuf[:0], memKindBeat)
	mc.opts.Bus.BroadcastControl(mc.beatBuf)
	advance := true
	if d := int64(mc.opts.TickEvery); d > 0 {
		nano := time.Now().UnixNano()
		advance = nano-mc.tickNano.Load() >= d
		if advance {
			mc.tickNano.Store(nano)
		}
	}
	if advance {
		n := mc.ticks.Add(1)
		mc.lastHeard[mc.opts.Proc].Store(n)
	}

	mc.mu.Lock()
	defer mc.mu.Unlock()
	// A recorded request can have been satisfied by a decision made
	// elsewhere (every process records inbound requests, not just the
	// leader that decides them); drop it rather than re-deciding it after
	// a leadership change.
	if mc.helloFrom >= 0 && mc.active[mc.helloFrom] {
		mc.helloFrom = -1
	}
	if mc.leaveFrom >= 0 && !mc.active[mc.leaveFrom] {
		mc.leaveFrom = -1
	}
	if !mc.electLocked(now) {
		return
	}
	if mc.pending != nil || now < mc.settleAt || now < mc.guardTill {
		return
	}
	// A crash must be decidable even while a migration's schedule is still
	// in flight (the decision reconciles the pending moves); every other
	// transition waits for the injection queue to drain first, which keeps
	// joins and drains from ever overlapping a migration.
	if dead := mc.deadCandidateLocked(); dead >= 0 {
		mc.decideCrashLocked(now, dead)
		return
	}
	if len(mc.injections) > 0 {
		return
	}
	switch {
	case mc.helloFrom >= 0 && mc.opts.Autoscale == nil:
		mc.decideJoinLocked(now, mc.helloFrom)
	case mc.leaveFrom >= 0:
		mc.decideDrainLocked(now, mc.leaveFrom)
	default:
		if !mc.decideScriptedLocked(now) {
			mc.autoscaleLocked(now)
		}
	}
}

// suspected reports whether member q has missed more than SuspectAfter
// heartbeat windows (never true of the local process).
func (mc *MembershipController) suspected(q int) bool {
	if q == mc.opts.Proc {
		return false
	}
	return mc.ticks.Load()-mc.lastHeard[q].Load() > int64(mc.opts.SuspectAfter)
}

// electLocked re-evaluates leadership: lowest unsuspected current member. A
// process that acquires leadership mid-run (not process 0 at startup) must
// wait Margin epochs before deciding, so a dying leader's in-flight decision
// either surfaces (it was broadcast) or never happened.
func (mc *MembershipController) electLocked(now core.Time) bool {
	lead := false
	for q := 0; q < mc.opts.Procs; q++ {
		if !mc.active[q] || mc.deadGone[q] {
			continue
		}
		if q == mc.opts.Proc {
			lead = true
		}
		if q == mc.opts.Proc || !mc.suspected(q) {
			lead = lead && q == mc.opts.Proc
			break
		}
	}
	if lead && !mc.leader {
		if !(mc.opts.Proc == 0 && !mc.everLed) {
			mc.guardTill = now + mc.opts.Margin
			mc.opts.logf("megaphone: process %d assumed membership leadership at epoch %d", mc.opts.Proc, now)
		}
		mc.everLed = true
	}
	mc.leader = lead
	return lead
}

// deadCandidateLocked returns a member to declare dead: silent for
// SuspectAfter+DeathAfter windows, not already retired, and either active or
// once-active (a drain-leaver that went silent before its goodbye still holds
// capabilities that wedge the frontier; only a crash declaration with its
// barrier can clear them).
func (mc *MembershipController) deadCandidateLocked() int {
	n := mc.ticks.Load()
	for q := 0; q < mc.opts.Procs; q++ {
		if q == mc.opts.Proc || mc.deadGone[q] || !mc.everActive[q] {
			continue
		}
		if n-mc.lastHeard[q].Load() > int64(mc.opts.SuspectAfter+mc.opts.DeathAfter) {
			return q
		}
	}
	return -1
}

// RequestLeave asks the leader to drain this process out. Idempotent; the
// decision arrives like any other and the drive loop commits it at its epoch.
func (mc *MembershipController) RequestLeave() {
	mc.mu.Lock()
	self := mc.leader
	if self && mc.leaveFrom < 0 {
		mc.leaveFrom = mc.opts.Proc
	}
	mc.mu.Unlock()
	if !self {
		mc.opts.Bus.BroadcastControl([]byte{memKindLeaveReq})
	}
}

// AwaitAdmission is the joiner's entry point: broadcast the admission request
// and block until the leader's join decision arrives. The caller must then
// advance every local input to the returned transition's epoch and call
// RunBarrier.
func (mc *MembershipController) AwaitAdmission() (*Transition, error) {
	if !mc.Joiner() {
		panic("plan: AwaitAdmission on a process that is not a joiner")
	}
	mc.opts.Bus.BroadcastControl([]byte{memKindHello})
	deadline := time.Now().Add(mc.opts.BarrierTimeout)
	mc.mu.Lock()
	defer mc.mu.Unlock()
	for mc.joinDecision == nil {
		if !mc.waitLocked(deadline) {
			return nil, fmt.Errorf("plan: process %d: no admission decision within %v", mc.opts.Proc, mc.opts.BarrierTimeout)
		}
	}
	return mc.joinDecision, nil
}

// Goodbye is the leaver's final control frame: the survivors retire the slot
// on receipt. Sent after the leaver observed its drain complete (probe
// frontier past the commit epoch), so per-peer FIFO guarantees every dataflow
// frame it ever sent is already delivered.
func (mc *MembershipController) Goodbye() {
	mc.opts.Bus.BroadcastControl([]byte{memKindGoodbye})
}

// waitLocked waits on the condition variable with a deadline; returns false
// once the deadline passed. The timer wakes the wait via Broadcast.
func (mc *MembershipController) waitLocked(deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t := time.AfterFunc(d, func() {
		mc.mu.Lock()
		mc.cond.Broadcast()
		mc.mu.Unlock()
	})
	mc.cond.Wait()
	t.Stop()
	return time.Now().Before(deadline)
}

// liveWorkers lists the global worker indices of the given processes.
func (mc *MembershipController) liveWorkers(procs []int) []int {
	var out []int
	for _, p := range procs {
		for i := 0; i < mc.opts.WorkersPerProc; i++ {
			out = append(out, p*mc.opts.WorkersPerProc+i)
		}
	}
	return out
}

// decideJoinLocked renders and broadcasts the admission of `slot`. The seed
// moves replay the resident assignment at the commit epoch — a no-op for the
// members, the routing history for the joiner — and the rebalance moves a
// margin later migrate bins onto the joiner's workers through the ordinary
// prepare/complete migration path. Only called with an empty injection
// queue, so resident and mirror agree.
func (mc *MembershipController) decideJoinLocked(now core.Time, slot int) {
	commit := now + mc.opts.Margin
	after := append([]bool(nil), mc.active...)
	after[slot] = true
	tr := &Transition{Kind: TransitionJoin, Slot: slot, Epoch: commit, MemEpoch: mc.memEpoch + 1}
	seed := Diff(Initial(mc.opts.Bins, mc.opts.Procs*mc.opts.WorkersPerProc), mc.resident)
	rebalEpoch := commit + mc.opts.Margin
	target := Rebalance(mc.opts.Bins, mc.liveWorkers(participantsOf(after)))
	rebal := Diff(mc.resident, target)
	mc.helloFrom = -1
	mc.broadcastDecisionLocked(tr, after, [][2]any{{commit, seed}, {rebalEpoch, rebal}}, target)
}

// decideDrainLocked renders and broadcasts the departure of `slot`: its bins
// move round-robin onto the survivors at the commit epoch.
func (mc *MembershipController) decideDrainLocked(now core.Time, slot int) {
	commit := now + mc.opts.Margin
	after := append([]bool(nil), mc.active...)
	after[slot] = false
	tr := &Transition{Kind: TransitionDrain, Slot: slot, Epoch: commit, MemEpoch: mc.memEpoch + 1}
	moves, target := mc.reassignLocked(slot, after)
	mc.leaveFrom = -1
	mc.broadcastDecisionLocked(tr, after, [][2]any{{commit, moves}}, target)
}

// decideCrashLocked declares `slot` dead, provided a complete checkpoint
// exists to rebuild its bins from (without one the state is unrecoverable,
// so declaration waits for the next checkpoint to complete — and, under
// roster-aware completeness, a checkpoint whose live roster still lists the
// dead slot can only complete with its manifests, so a death during a
// checkpoint's commit defers to the next full epoch). Unlike joins and
// drains, a crash may be decided while a migration schedule is in flight:
// the decision classifies every bin the dead slot's state ever touched since
// the checkpoint as lost, restores those from the checkpoint, and rewrites
// the still-pending moves so none ships state into the retired slot.
func (mc *MembershipController) decideCrashLocked(now core.Time, slot int) {
	if mc.opts.CheckpointDir == "" {
		panic(fmt.Sprintf("plan: process %d is dead but membership has no CheckpointDir to restore from (run with checkpointing enabled)", slot))
	}
	peers := mc.opts.Procs * mc.opts.WorkersPerProc
	ckpt, _, ok, err := core.LatestCheckpoint(mc.opts.CheckpointDir, peers)
	if err != nil {
		panic(fmt.Sprintf("plan: scanning %s for a checkpoint to restore process %d from: %v", mc.opts.CheckpointDir, slot, err))
	}
	if !ok {
		mc.opts.logf("megaphone: process %d is dead but no complete checkpoint exists yet; deferring declaration", slot)
		return
	}
	if ckpt < mc.residencyFloor {
		mc.opts.logf("megaphone: process %d is dead but the latest complete checkpoint (epoch %d) predates this leader's admission (epoch %d); deferring declaration",
			slot, ckpt, mc.residencyFloor)
		return
	}
	commit := now + mc.opts.Margin
	after := append([]bool(nil), mc.active...)
	after[slot] = false
	tr := &Transition{Kind: TransitionCrash, Slot: slot, Epoch: commit, MemEpoch: mc.memEpoch + 1, Ckpt: ckpt}
	moves, target := mc.crashReassignLocked(slot, after, ckpt, commit)
	for _, m := range moves {
		tr.DeadBins = append(tr.DeadBins, m.Bin)
	}
	mc.broadcastDecisionLocked(tr, after, [][2]any{{commit, moves}}, target)
}

// crashReassignLocked classifies the bins lost with `slot` and renders their
// restore moves. A bin is lost when its state is not reliably held by a
// survivor: it resides on the dead slot, or any executed move at or after the
// checkpoint epoch touched it (its state transited mid-flight machinery the
// dead slot participated in — restoring from the checkpoint and replaying is
// always correct, so the classification is deliberately conservative), or a
// still-pending move targets the dead slot (the ship would land in the
// void). Restore targets round-robin over the survivors' workers, skipping a
// bin's owner-at-commit: the engine only executes a restore at a worker that
// did not already own the bin, so restoring in place would silently keep the
// live (possibly incomplete) state while the replay double-applied on top.
func (mc *MembershipController) crashReassignLocked(slot int, after []bool, ckpt, commit core.Time) ([]core.Move, Assignment) {
	w := mc.opts.WorkersPerProc
	lost := make([]bool, len(mc.assign))
	for b, owner := range mc.resident {
		if owner/w == slot {
			lost[b] = true
		}
	}
	for _, e := range mc.moveLog {
		if e.epoch >= ckpt {
			lost[e.bin] = true
		}
	}
	for _, tm := range mc.injections {
		for _, m := range tm.moves {
			if !m.IsCheckpoint() && m.Worker >= 0 && m.Worker/w == slot {
				lost[m.Bin] = true
			}
		}
	}
	// Owner at the commit epoch: resident plus every pending move below the
	// commit (they will have executed by the time the restores do).
	cur := append(Assignment(nil), mc.resident...)
	for _, tm := range mc.injections {
		if tm.epoch >= commit {
			continue
		}
		for _, m := range tm.moves {
			if !m.IsCheckpoint() && m.Bin >= 0 && m.Bin < len(cur) {
				cur[m.Bin] = m.Worker
			}
		}
	}
	lw := mc.liveWorkers(participantsOf(after))
	target := append(Assignment(nil), mc.assign...)
	var moves []core.Move
	i := 0
	for b := range lost {
		if !lost[b] {
			continue
		}
		nw := lw[i%len(lw)]
		i++
		if nw == cur[b] {
			if len(lw) < 2 {
				// A single surviving worker already owning the bin: the
				// restore could never execute. Leave the bin on its live
				// state (only reachable in 1-worker-per-process fixtures).
				mc.opts.logf("megaphone: bin %d survives on the only remaining worker %d; skipping its restore", b, nw)
				continue
			}
			nw = lw[i%len(lw)]
			i++
		}
		target[b] = nw
		moves = append(moves, core.RestoreMove(b, nw, ckpt))
	}
	return moves, target
}

// reassignLocked computes the moves that take slot's bins away round-robin
// onto the remaining members' workers (the drain-leave path; only called
// with an empty injection queue, so mirror and residency agree). Returns the
// moves and the post-transition assignment.
func (mc *MembershipController) reassignLocked(slot int, after []bool) ([]core.Move, Assignment) {
	w := mc.opts.WorkersPerProc
	lw := mc.liveWorkers(participantsOf(after))
	target := append(Assignment(nil), mc.assign...)
	var moves []core.Move
	i := 0
	for b, owner := range mc.assign {
		if owner/w != slot {
			continue
		}
		nw := lw[i%len(lw)]
		i++
		target[b] = nw
		moves = append(moves, core.Move{Bin: b, Worker: nw})
	}
	return moves, target
}

// decideScriptedLocked renders the next due scripted migration (if any) into
// a fixed-epoch move schedule and broadcasts it. Returns whether a migration
// was issued. Frontier-paced stepping (the Controller's contract) is not
// available here — every process must inject the identical moves at the
// identical epochs — so steps land a fixed stride apart instead: one epoch
// plus the step's own gap.
func (mc *MembershipController) decideScriptedLocked(now core.Time) bool {
	for len(mc.scripted) > 0 {
		sm := mc.scripted[0]
		if sm.spec.At > now {
			return false
		}
		cur := append(Assignment(nil), mc.assign...)
		tgt := sm.spec.Target(cur, mc.liveWorkers(participantsOf(mc.active)))
		var pl Plan
		if tgt != nil {
			pl = Build(sm.spec.Strategy, mc.assign, tgt, sm.spec.Batch)
		}
		commit := now + mc.opts.Margin
		var schedule []timedMoves
		at := commit
		for _, st := range pl.Steps {
			schedule = append(schedule, timedMoves{epoch: at, moves: st.Moves})
			at++
			if st.Gap {
				at++
			}
		}
		// Broadcast even an empty schedule: it retires the spec's sequence
		// number on every process, so a failed-over leader cannot re-render a
		// migration its predecessor already decided was a no-op.
		mc.broadcastMigrationLocked(sm.seq, schedule)
		if len(schedule) > 0 {
			mc.opts.logf("megaphone: process %d issued scripted migration %d: %d steps over epochs [%d, %d]",
				mc.opts.Proc, sm.seq, len(schedule), commit, at-1)
			return true
		}
	}
	return false
}

// autoscaleLocked is the leader's elasticity evaluator: once per completed
// telemetry window it compares the mean per-live-worker record volume
// against the hot and cold thresholds, and on a sustained signal admits the
// registered standby (scale-out, priced by the cost model) or drain-leaves
// the coldest member (scale-in).
func (mc *MembershipController) autoscaleLocked(now core.Time) {
	as := mc.opts.Autoscale
	if as == nil {
		return
	}
	seq := as.Auto.WindowSeq()
	if seq == mc.asWindowSeq || !as.Auto.TelemetryCovered() {
		return
	}
	mc.asWindowSeq = seq
	window, cumulative := as.Auto.Window()
	if window == nil {
		return
	}
	live := participantsOf(mc.active)
	lw := mc.liveWorkers(live)
	var total uint64
	for _, w := range lw {
		total += window.WorkerRecs[w]
	}
	mean := total / uint64(len(lw))
	if as.HotRecs > 0 && mean >= as.HotRecs {
		mc.hotStreak++
	} else {
		mc.hotStreak = 0
	}
	if as.ColdRecs > 0 && mean <= as.ColdRecs {
		mc.coldStreak++
	} else {
		mc.coldStreak = 0
	}
	switch {
	case mc.hotStreak >= as.Sustain && mc.helloFrom >= 0:
		slot := mc.helloFrom
		after := append([]bool(nil), mc.active...)
		after[slot] = true
		if as.Cost != nil {
			tgt := Rebalance(mc.opts.Bins, mc.liveWorkers(participantsOf(after)))
			if v := as.Cost.Evaluate(mc.assign, tgt, window, cumulative, mc.hotStreak); !v.Migrate {
				mc.opts.logf("megaphone: process %d: saturation sustained but the cost model declined admitting standby %d (%s: volume %d, gain %d)",
					mc.opts.Proc, slot, v.Reason, v.VolumeRecs, v.GainNanos)
				mc.hotStreak = 0
				return
			}
		}
		mc.opts.logf("megaphone: process %d: cluster saturated for %d windows (mean %d recs/worker ≥ %d); admitting standby %d",
			mc.opts.Proc, mc.hotStreak, mean, as.HotRecs, slot)
		mc.hotStreak, mc.coldStreak = 0, 0
		mc.decideJoinLocked(now, slot)
	case mc.coldStreak >= as.Sustain && len(live) > as.MinProcs && mc.helloFrom < 0:
		coldest, coldRecs := -1, uint64(0)
		for _, p := range live {
			var recs uint64
			for i := 0; i < mc.opts.WorkersPerProc; i++ {
				recs += window.WorkerRecs[p*mc.opts.WorkersPerProc+i]
			}
			if coldest < 0 || recs < coldRecs {
				coldest, coldRecs = p, recs
			}
		}
		mc.opts.logf("megaphone: process %d: cluster underloaded for %d windows (mean %d recs/worker ≤ %d); drain-leaving coldest member %d (%d recs)",
			mc.opts.Proc, mc.coldStreak, mean, as.ColdRecs, coldest, coldRecs)
		mc.hotStreak, mc.coldStreak = 0, 0
		mc.decideDrainLocked(now, coldest)
	}
}

func participantsOf(active []bool) []int {
	var out []int
	for p, a := range active {
		if a {
			out = append(out, p)
		}
	}
	return out
}

// broadcastDecisionLocked encodes, broadcasts, and locally applies one
// decision. schedule pairs are (epoch, moves).
func (mc *MembershipController) broadcastDecisionLocked(tr *Transition, after []bool, schedule [][2]any, target Assignment) {
	buf := []byte{memKindDecision}
	buf = binenc.AppendUvarint(buf, uint64(tr.Kind))
	buf = binenc.AppendUvarint(buf, uint64(tr.Slot))
	buf = binenc.AppendUvarint(buf, uint64(tr.Epoch))
	buf = binenc.AppendUvarint(buf, tr.MemEpoch)
	buf = binenc.AppendUvarint(buf, uint64(tr.Ckpt))
	buf = binenc.AppendUvarint(buf, uint64(len(schedule)))
	for _, se := range schedule {
		buf = binenc.AppendUvarint(buf, uint64(se[0].(core.Time)))
		moves := se[1].([]core.Move)
		buf = binenc.AppendUvarint(buf, uint64(len(moves)))
		for i := range moves {
			buf = moves[i].AppendBinaryRec(buf)
		}
	}
	mc.opts.Bus.BroadcastControl(buf)
	mc.opts.logf("megaphone: process %d decided %v of process %d at epoch %d (membership epoch %d, checkpoint %d)",
		mc.opts.Proc, tr.Kind, tr.Slot, tr.Epoch, tr.MemEpoch, tr.Ckpt)
	mc.applyDecisionLocked(tr, scheduleOf(schedule))
	_ = target
}

func scheduleOf(schedule [][2]any) []timedMoves {
	var out []timedMoves
	for _, se := range schedule {
		out = append(out, timedMoves{epoch: se[0].(core.Time), moves: se[1].([]core.Move)})
	}
	return out
}

// broadcastMigrationLocked encodes and broadcasts a rendered migration
// schedule, then applies it locally.
func (mc *MembershipController) broadcastMigrationLocked(seq uint64, schedule []timedMoves) {
	buf := []byte{memKindMigration}
	buf = binenc.AppendUvarint(buf, seq)
	buf = binenc.AppendUvarint(buf, uint64(len(schedule)))
	for _, tm := range schedule {
		buf = binenc.AppendUvarint(buf, uint64(tm.epoch))
		buf = binenc.AppendUvarint(buf, uint64(len(tm.moves)))
		for i := range tm.moves {
			buf = tm.moves[i].AppendBinaryRec(buf)
		}
	}
	mc.opts.Bus.BroadcastControl(buf)
	mc.applyMigrationLocked(seq, schedule)
}

// applyMigrationLocked installs a rendered migration schedule: retire the
// spec's sequence number, queue the injections, and rebuild the mirror. Runs
// on the decider and, via onControl, on every member.
func (mc *MembershipController) applyMigrationLocked(seq uint64, schedule []timedMoves) {
	if len(schedule) > 0 {
		if last := core.Time(mc.lastTick.Load()); schedule[0].epoch <= last {
			panic(fmt.Sprintf("plan: process %d received a migration schedule starting at epoch %d but its loop is already at %d; raise the membership margin",
				mc.opts.Proc, schedule[0].epoch, last))
		}
	}
	kept := mc.scripted[:0]
	for _, sm := range mc.scripted {
		if sm.seq != seq {
			kept = append(kept, sm)
		}
	}
	mc.scripted = kept
	mc.injections = append(mc.injections, schedule...)
	mc.rebuildMirrorLocked()
}

// applyDecisionLocked applies one decision to the local state: timeline and
// view, assignment mirror, move injections, peer retirement, and the pending
// commit the drive loop will pick up. Runs on the decider and, via
// onControl, on every member that receives the broadcast.
func (mc *MembershipController) applyDecisionLocked(tr *Transition, schedule []timedMoves) {
	if last := core.Time(mc.lastTick.Load()); tr.Epoch <= last {
		panic(fmt.Sprintf("plan: process %d received a %v decision committing at epoch %d but its loop is already at %d; raise the membership margin",
			mc.opts.Proc, tr.Kind, tr.Epoch, last))
	}
	after := append([]bool(nil), mc.active...)
	after[tr.Slot] = tr.Kind == TransitionJoin
	mc.timeline = append(mc.timeline, memStep{from: tr.Epoch, active: after})
	mc.active = after
	mc.memEpoch = tr.MemEpoch
	viewFrom := tr.Epoch
	if tr.Kind == TransitionDrain {
		// The drain moves are broadcast at the commit epoch and the leaver
		// itself must execute them — it is the worker that ships the departing
		// bins' state. A view excluding it at that exact epoch would make the
		// broadcast pact skip it, so the engine view flips one epoch later.
		// The plan timeline above still flips at the commit epoch: input
		// coverage hands over exactly there.
		viewFrom++
	}
	mc.opts.Fabric.InstallView(viewFrom, after)
	mc.opts.Fabric.SetMembershipEpoch(tr.MemEpoch)
	if tr.Kind == TransitionCrash {
		mc.reconcilePendingLocked(tr, schedule)
	}
	mc.injections = append(mc.injections, schedule...)
	switch tr.Kind {
	case TransitionCrash:
		// Stop queueing frames to the dead slot immediately; the barrier at
		// the commit epoch wipes the resulting phantom message counts.
		mc.deadGone[tr.Slot] = true
		mc.opts.Fabric.RetirePeer(tr.Slot)
		// Move-log entries below the restore checkpoint can never matter
		// again (every later declaration restores from an epoch at or above
		// this one — checkpoints only move forward).
		keptLog := mc.moveLog[:0]
		for _, e := range mc.moveLog {
			if e.epoch >= tr.Ckpt {
				keptLog = append(keptLog, e)
			}
		}
		mc.moveLog = keptLog
	case TransitionJoin:
		// The joiner starts its heartbeat clock now; give it a fresh window.
		mc.everActive[tr.Slot] = true
		mc.lastHeard[tr.Slot].Store(mc.ticks.Load())
		if tr.Slot == mc.opts.Proc {
			// Our own admission: the seed moves replay the leader's resident
			// assignment over the operator's built-in initial one, so that is
			// the residency base to apply them to. History below the commit
			// epoch is unknown here — the floor records that.
			mc.resident = Initial(mc.opts.Bins, mc.opts.Procs*mc.opts.WorkersPerProc)
			mc.moveLog = nil
			mc.residencyFloor = tr.Epoch
		}
	}
	mc.rebuildMirrorLocked()
	if mc.helloFrom == tr.Slot && mc.active[tr.Slot] {
		mc.helloFrom = -1
	}
	if mc.leaveFrom == tr.Slot && !mc.active[tr.Slot] {
		mc.leaveFrom = -1
	}
	mc.settleAt = tr.Epoch + 2*mc.opts.Margin
	if tr.Kind == TransitionJoin && tr.Slot == mc.opts.Proc {
		mc.joinDecision = tr
	} else {
		mc.pending = tr
	}
	mc.cond.Broadcast()
}

// reconcilePendingLocked rewrites the not-yet-drained injection queue of a
// crash decision so no surviving move ships state into the retired slot, and
// no move collides with a restore at the commit epoch. Three regimes, keyed
// by each batch's epoch against the commit:
//
//   - below: left untouched. The margin only guarantees batches at or above
//     the commit are undrained everywhere, so rewriting earlier ones could
//     diverge from a process that already injected the originals — and the
//     canonical-move-set invariant (same epoch, same bin, same target on
//     every process) is load-bearing. A ship into the dead slot lands in the
//     void; the bin is in the lost set and its restore rebuilds it.
//   - at the commit: moves whose bin is being restored are dropped. Keeping
//     them would put a plain move and a restore for the same bin at the same
//     epoch, and the old owner's ship would race the checkpoint install.
//   - above: moves targeting the dead slot are redirected to the bin's
//     restore target, where they degrade to no-ops (the engine skips a move
//     whose target already owns the bin).
func (mc *MembershipController) reconcilePendingLocked(tr *Transition, schedule []timedMoves) {
	w := mc.opts.WorkersPerProc
	rt := make(map[int]int)
	for _, tm := range schedule {
		for _, m := range tm.moves {
			if !m.IsCheckpoint() {
				rt[m.Bin] = m.Worker
			}
		}
	}
	for ti := range mc.injections {
		tm := &mc.injections[ti]
		switch {
		case tm.epoch < tr.Epoch:
		case tm.epoch == tr.Epoch:
			kept := tm.moves[:0]
			for _, m := range tm.moves {
				if _, restored := rt[m.Bin]; restored && !m.IsCheckpoint() {
					continue
				}
				kept = append(kept, m)
			}
			tm.moves = kept
		default:
			for i := range tm.moves {
				m := &tm.moves[i]
				if m.IsCheckpoint() || m.Worker < 0 || m.Worker/w != tr.Slot {
					continue
				}
				if nw, ok := rt[m.Bin]; ok {
					m.Worker = nw
				} else {
					// Only reachable through the single-surviving-worker
					// degenerate case, where the restore was skipped: pin the
					// bin where its state lives.
					m.Worker = mc.resident[m.Bin]
				}
			}
		}
	}
}

// CommitDrain marks a drain-leave transition committed: the drive loop calls
// it at the commit epoch, right before injecting the drain moves MovesAt
// returns for that epoch. No barrier runs — the leaver retires its holds via
// ordinary progress broadcasts as its inputs close.
func (mc *MembershipController) CommitDrain(tr *Transition) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.pending == tr {
		mc.pending = nil
	}
}

// RunBarrier executes the membership barrier of a join or crash-leave
// transition on the drive-loop goroutine. On entry every local input handle
// must already be advanced to tr.Epoch (the joiner's pre-advanced from its
// initial epoch). On return the transition is committed: workers resumed,
// membership view active, tracker rebuilt. For crash-leave the caller must
// then re-inject the purged window per BarrierResult.Cut.
func (mc *MembershipController) RunBarrier(tr *Transition) BarrierResult {
	deadline := time.Now().Add(mc.opts.BarrierTimeout)
	parts := func() []int {
		mc.mu.Lock()
		defer mc.mu.Unlock()
		return mc.participants(tr.Epoch)
	}()
	joining := tr.Kind == TransitionJoin && tr.Slot == mc.opts.Proc

	// Phase 1: quiescence. Broadcast (frontier, counters) rounds until every
	// participant reports, the reports match pairwise, and nothing changed
	// across two consecutive rounds. A joiner's own tracker holds only
	// pre-admission garbage, so it reports the commit epoch as its frontier;
	// the members report their real probe frontier, which at quiescence is
	// the commit epoch (join) or the wedged cut (crash-leave).
	var stable map[int]*barSnap
	for tries := 0; ; tries++ {
		snap := mc.reportReady(tr, joining)
		cur := mc.collectReady(tr.Epoch, snap)
		if ok, cut := barrierQuiesced(parts, cur, tr); ok {
			if prevEqual(stable, cur, parts) {
				stable = cur
				_ = cut
				break
			}
			stable = cur
		} else {
			stable = nil
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("plan: process %d: %v barrier at epoch %d did not quiesce within %v",
				mc.opts.Proc, tr.Kind, tr.Epoch, mc.opts.BarrierTimeout))
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, cut := barrierQuiesced(parts, stable, tr)

	// Phase 2: pause, purge (crash only), inventory. With workers parked no
	// new dataflow frames can be created, and the stability certificate says
	// none are in flight, so the capability holds now inventoried are the
	// complete global pointstamp multiset. The applied bounds ride along:
	// each worker's state reflects applications up to its own bound, which
	// at a crash sits at or above the wedged cut, and the replay windows
	// must respect every one of them.
	mc.opts.Fabric.Pause()
	bounds := mc.opts.Fabric.AppliedBounds()
	if tr.Kind == TransitionCrash {
		mc.opts.Fabric.PurgeDeferred(cut)
	}
	var inv progress.Batch
	mc.opts.Fabric.HoldInventory(&inv)
	mc.broadcastInventory(tr.Epoch, stable[mc.opts.Proc], &inv, bounds)
	others, allBounds := mc.collectInventories(tr.Epoch, parts, stable, deadline, &inv, bounds)

	// Phase 3: rebuild the tracker from the summed inventories and commit
	// the membership. Every participant resets to the same baseline before
	// anyone resumes (phase 4's rendezvous), so no post-reset delta can
	// arrive at a participant that has not reset yet.
	mc.opts.Fabric.ResetProgress(others)
	if tr.Kind == TransitionJoin {
		mc.opts.Fabric.Activate(tr.Slot)
		mc.lastHeard[tr.Slot].Store(mc.ticks.Load())
	}

	// Phase 4: wait for every participant's reset before resuming workers.
	mc.opts.Bus.BroadcastControl(binenc.AppendUvarint([]byte{memKindDone}, uint64(tr.Epoch)))
	mc.awaitResetDone(tr.Epoch, parts, deadline)
	mc.opts.Fabric.Resume()

	// Every participant just proved liveness through the barrier's frame
	// exchange; restart their heartbeat windows so the post-barrier
	// catch-up burst cannot suspect them over pre-barrier silence.
	n := mc.ticks.Load()
	for _, p := range parts {
		mc.lastHeard[p].Store(n)
	}

	res := BarrierResult{Cut: cut}
	mc.mu.Lock()
	if tr.Kind == TransitionCrash {
		res.BinCut = mc.binCutLocked(tr, cut, allBounds)
	}
	if mc.pending == tr {
		mc.pending = nil
	}
	if joining {
		mc.joinDecision = nil
	}
	delete(mc.ready, tr.Epoch)
	delete(mc.invs, tr.Epoch)
	delete(mc.resetOK, tr.Epoch)
	mc.mu.Unlock()
	mc.opts.logf("megaphone: process %d: %v barrier at epoch %d complete (cut %d, membership epoch %d)",
		mc.opts.Proc, tr.Kind, tr.Epoch, cut, tr.MemEpoch)
	return res
}

// binCutLocked renders a crash barrier's per-bin replay boundaries from the
// exchanged applied bounds: the checkpoint epoch for restored bins (their
// state rolled back there), the owner's applied bound for everyone else's
// (its state holds every application below the bound and none above). The
// owner consulted is the one holding the bin's state at pause time — the
// residency as of the restore checkpoint, not the mirror: every bin moved at
// or after the checkpoint is in the restore set anyway, and a bin scheduled
// to move but not yet shipped still has its state (and bound) at the old
// owner. Every participant computes the same boundaries from the same
// exchanged bounds and the same move log. A missing owner bound falls back
// to the wedged cut, which is correct whenever the owner never applied past
// it.
func (mc *MembershipController) binCutLocked(tr *Transition, cut core.Time, bounds map[int]core.Time) []core.Time {
	dead := make(map[int]bool, len(tr.DeadBins))
	for _, b := range tr.DeadBins {
		dead[b] = true
	}
	owners := mc.residentAtLocked(tr.Ckpt)
	out := make([]core.Time, len(owners))
	for b, owner := range owners {
		switch bo, ok := bounds[owner]; {
		case dead[b]:
			out[b] = tr.Ckpt
		case ok:
			out[b] = bo
		default:
			out[b] = cut
		}
	}
	return out
}

// reportReady broadcasts this round's quiescence report and returns it.
func (mc *MembershipController) reportReady(tr *Transition, joining bool) *barSnap {
	sent, recv := mc.opts.Fabric.DataCounters()
	f := mc.opts.Frontier()
	if joining {
		f = tr.Epoch
	}
	buf := []byte{memKindReady}
	buf = binenc.AppendUvarint(buf, uint64(tr.Epoch))
	buf = appendSnap(buf, f, sent, recv)
	mc.opts.Bus.BroadcastControl(buf)
	return &barSnap{frontier: f, sent: sent, recv: recv}
}

// collectReady merges our own report with the latest received per peer.
func (mc *MembershipController) collectReady(epoch core.Time, own *barSnap) map[int]*barSnap {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	cur := make(map[int]*barSnap, len(mc.ready[epoch])+1)
	for p, s := range mc.ready[epoch] {
		cur[p] = s
	}
	cur[mc.opts.Proc] = own
	return cur
}

// barrierQuiesced evaluates the quiescence conditions over one round's
// reports and, when met, returns the agreed cut: the common frontier of the
// participants at a join (the commit epoch), the minimum of their wedged
// frontiers at a crash.
// Every epoch below the cut is fully applied everywhere; above it,
// applications vary per worker (the frontier wedges at whatever the dead
// process last acknowledged, not at what the survivors have applied), which
// is what the per-worker applied bounds exchanged with the inventories
// account for.
func barrierQuiesced(parts []int, snaps map[int]*barSnap, tr *Transition) (bool, core.Time) {
	var cut core.Time
	for i, p := range parts {
		s := snaps[p]
		if s == nil {
			return false, 0
		}
		switch {
		case i == 0:
			cut = s.frontier
		case tr.Kind == TransitionCrash:
			// Survivors' frontiers need not agree after a crash: the dead
			// process's final progress broadcasts may have reached one
			// survivor and not another, so their trackers diverge by those
			// deltas and wedge at permanently different floors. Demanding
			// equality would never quiesce. The minimum is the sound cut —
			// every epoch below it is fully applied at every survivor — and
			// phase 3's tracker rebuild erases the divergence itself.
			if s.frontier < cut {
				cut = s.frontier
			}
		case s.frontier != cut:
			return false, 0
		}
	}
	if tr.Kind == TransitionJoin && cut != tr.Epoch {
		return false, 0
	}
	for _, p := range parts {
		for _, q := range parts {
			if p == q {
				continue
			}
			if snaps[p].sent[q] != snaps[q].recv[p] {
				return false, 0
			}
		}
	}
	return true, cut
}

// prevEqual reports whether two consecutive rounds' reports are identical
// over the participants (the stability half of the Safra certificate).
func prevEqual(prev, cur map[int]*barSnap, parts []int) bool {
	if prev == nil {
		return false
	}
	for _, p := range parts {
		a, b := prev[p], cur[p]
		if a == nil || b == nil || a.frontier != b.frontier {
			return false
		}
		for i := range a.sent {
			if a.sent[i] != b.sent[i] || a.recv[i] != b.recv[i] {
				return false
			}
		}
	}
	return true
}

// broadcastInventory ships this process's hold inventory and applied bounds,
// tagged with the counters from its stable ready report so receivers can
// certify nothing moved in between.
func (mc *MembershipController) broadcastInventory(epoch core.Time, snap *barSnap, inv *progress.Batch, bounds map[int]core.Time) {
	buf := []byte{memKindInv}
	buf = binenc.AppendUvarint(buf, uint64(epoch))
	buf = appendSnap(buf, snap.frontier, snap.sent, snap.recv)
	buf = binenc.AppendUvarint(buf, uint64(len(bounds)))
	for w, b := range bounds {
		buf = binenc.AppendUvarint(buf, uint64(w))
		buf = binenc.AppendUvarint(buf, uint64(b))
	}
	buf = inv.AppendWire(buf)
	mc.opts.Bus.BroadcastControl(buf)
}

// collectInventories waits for every other participant's inventory, verifies
// its counters still match the stability certificate, and folds all deltas
// (including our own) into one batch and all applied bounds into one map.
func (mc *MembershipController) collectInventories(epoch core.Time, parts []int, stable map[int]*barSnap, deadline time.Time, own *progress.Batch, ownBounds map[int]core.Time) (*progress.Batch, map[int]core.Time) {
	sum := &progress.Batch{}
	sum.Deltas = append(sum.Deltas, own.Deltas...)
	bounds := make(map[int]core.Time, len(ownBounds)*len(parts))
	for w, b := range ownBounds {
		bounds[w] = b
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	for _, p := range parts {
		if p == mc.opts.Proc {
			continue
		}
		for mc.invs[epoch][p] == nil {
			if !mc.waitLocked(deadline) {
				panic(fmt.Sprintf("plan: process %d: no hold inventory from process %d for the barrier at epoch %d within %v",
					mc.opts.Proc, p, epoch, mc.opts.BarrierTimeout))
			}
		}
		is := mc.invs[epoch][p]
		want := stable[p]
		for i := range is.sent {
			if is.sent[i] != want.sent[i] || is.recv[i] != want.recv[i] {
				panic(fmt.Sprintf("plan: process %d: process %d's frame counters moved between quiescence and pause at the barrier at epoch %d",
					mc.opts.Proc, p, epoch))
			}
		}
		sum.Deltas = append(sum.Deltas, is.batch.Deltas...)
		for w, b := range is.bounds {
			bounds[w] = b
		}
	}
	return sum, bounds
}

// awaitResetDone blocks until every other participant confirmed its tracker
// reset for the barrier at the given epoch.
func (mc *MembershipController) awaitResetDone(epoch core.Time, parts []int, deadline time.Time) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	for _, p := range parts {
		if p == mc.opts.Proc {
			continue
		}
		for !mc.resetOK[epoch][p] {
			if !mc.waitLocked(deadline) {
				panic(fmt.Sprintf("plan: process %d: process %d did not confirm its tracker reset for the barrier at epoch %d within %v",
					mc.opts.Proc, p, epoch, mc.opts.BarrierTimeout))
			}
		}
	}
}

func appendSnap(buf []byte, f core.Time, sent, recv []uint64) []byte {
	buf = binenc.AppendUvarint(buf, uint64(f))
	buf = binenc.AppendUvarint(buf, uint64(len(sent)))
	for _, v := range sent {
		buf = binenc.AppendUvarint(buf, v)
	}
	for _, v := range recv {
		buf = binenc.AppendUvarint(buf, v)
	}
	return buf
}

func parseSnap(data []byte) (*barSnap, []byte, error) {
	f, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	n64, data, err := binenc.Count(data, 1)
	if err != nil {
		return nil, nil, err
	}
	n := int(n64)
	s := &barSnap{frontier: core.Time(f), sent: make([]uint64, n), recv: make([]uint64, n)}
	for i := 0; i < n; i++ {
		if s.sent[i], data, err = binenc.Uvarint(data); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < n; i++ {
		if s.recv[i], data, err = binenc.Uvarint(data); err != nil {
			return nil, nil, err
		}
	}
	return s, data, nil
}

// onControl handles one inbound membership frame. Runs on the bus's
// serialized handler context.
func (mc *MembershipController) onControl(from int, payload []byte) {
	if len(payload) == 0 {
		return
	}
	kind, body := payload[0], payload[1:]
	if kind == memKindBeat {
		mc.lastHeard[from].Store(mc.ticks.Load())
		return
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	switch kind {
	case memKindHello:
		mc.lastHeard[from].Store(mc.ticks.Load())
		if !mc.active[from] && !mc.deadGone[from] {
			mc.helloFrom = from
		}
	case memKindLeaveReq:
		if mc.active[from] {
			mc.leaveFrom = from
		}
	case memKindGoodbye:
		if mc.active[from] || !mc.deadGone[from] {
			mc.deadGone[from] = true
			mc.opts.Fabric.RetirePeer(from)
			mc.opts.logf("megaphone: process %d: process %d said goodbye; retired", mc.opts.Proc, from)
		}
	case memKindDecision:
		tr, schedule, err := parseDecision(body)
		if err != nil {
			panic(fmt.Sprintf("plan: process %d: corrupt membership decision from %d: %v", mc.opts.Proc, from, err))
		}
		mc.applyDecisionLocked(tr, schedule)
	case memKindMigration:
		seq, rest, err := binenc.Uvarint(body)
		var schedule []timedMoves
		if err == nil {
			schedule, _, err = parseSchedule(rest)
		}
		if err != nil {
			panic(fmt.Sprintf("plan: process %d: corrupt migration schedule from %d: %v", mc.opts.Proc, from, err))
		}
		mc.applyMigrationLocked(seq, schedule)
	case memKindReady, memKindInv, memKindDone:
		e, rest, err := binenc.Uvarint(body)
		if err != nil {
			panic(fmt.Sprintf("plan: process %d: corrupt membership barrier frame from %d: %v", mc.opts.Proc, from, err))
		}
		epoch := core.Time(e)
		switch kind {
		case memKindReady:
			s, _, err := parseSnap(rest)
			if err != nil {
				panic(fmt.Sprintf("plan: process %d: corrupt barrier ready frame from %d: %v", mc.opts.Proc, from, err))
			}
			if mc.ready[epoch] == nil {
				mc.ready[epoch] = make(map[int]*barSnap)
			}
			mc.ready[epoch][from] = s
		case memKindInv:
			s, rest2, err := parseSnap(rest)
			if err != nil {
				panic(fmt.Sprintf("plan: process %d: corrupt barrier inventory frame from %d: %v", mc.opts.Proc, from, err))
			}
			is := &invSnap{barSnap: *s}
			nb, rest2, err := binenc.Count(rest2, 2)
			if err != nil {
				panic(fmt.Sprintf("plan: process %d: corrupt barrier inventory bounds from %d: %v", mc.opts.Proc, from, err))
			}
			is.bounds = make(map[int]core.Time, nb)
			for i := uint64(0); i < nb; i++ {
				var w, b uint64
				if w, rest2, err = binenc.Uvarint(rest2); err == nil {
					b, rest2, err = binenc.Uvarint(rest2)
				}
				if err != nil {
					panic(fmt.Sprintf("plan: process %d: corrupt barrier inventory bounds from %d: %v", mc.opts.Proc, from, err))
				}
				is.bounds[int(w)] = core.Time(b)
			}
			if err := is.batch.DecodeWire(rest2); err != nil {
				panic(fmt.Sprintf("plan: process %d: corrupt barrier inventory batch from %d: %v", mc.opts.Proc, from, err))
			}
			if mc.invs[epoch] == nil {
				mc.invs[epoch] = make(map[int]*invSnap)
			}
			mc.invs[epoch][from] = is
		case memKindDone:
			if mc.resetOK[epoch] == nil {
				mc.resetOK[epoch] = make(map[int]bool)
			}
			mc.resetOK[epoch][from] = true
		}
		mc.cond.Broadcast()
	default:
		mc.opts.logf("megaphone: process %d: unknown membership payload kind %d from %d", mc.opts.Proc, kind, from)
	}
}

// parseSchedule decodes a [count]{[epoch][nmoves][moves]} move schedule, as
// appended by both decision and migration frames.
func parseSchedule(data []byte) ([]timedMoves, []byte, error) {
	ns, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	var schedule []timedMoves
	for s := uint64(0); s < ns; s++ {
		var e, nm uint64
		if e, data, err = binenc.Uvarint(data); err != nil {
			return nil, nil, err
		}
		if nm, data, err = binenc.Uvarint(data); err != nil {
			return nil, nil, err
		}
		tm := timedMoves{epoch: core.Time(e), moves: make([]core.Move, nm)}
		for i := range tm.moves {
			if data, err = tm.moves[i].DecodeBinaryRec(data); err != nil {
				return nil, nil, err
			}
		}
		schedule = append(schedule, tm)
	}
	return schedule, data, nil
}

// parseDecision decodes a decision frame (sans kind byte).
func parseDecision(data []byte) (*Transition, []timedMoves, error) {
	var k, slot, epoch, mem, ckpt uint64
	var err error
	if k, data, err = binenc.Uvarint(data); err != nil {
		return nil, nil, err
	}
	if slot, data, err = binenc.Uvarint(data); err != nil {
		return nil, nil, err
	}
	if epoch, data, err = binenc.Uvarint(data); err != nil {
		return nil, nil, err
	}
	if mem, data, err = binenc.Uvarint(data); err != nil {
		return nil, nil, err
	}
	if ckpt, data, err = binenc.Uvarint(data); err != nil {
		return nil, nil, err
	}
	tr := &Transition{Kind: TransitionKind(k), Slot: int(slot), Epoch: core.Time(epoch), MemEpoch: mem, Ckpt: core.Time(ckpt)}
	schedule, _, err := parseSchedule(data)
	if err != nil {
		return nil, nil, err
	}
	if tr.Kind == TransitionCrash {
		for _, tm := range schedule {
			for _, m := range tm.moves {
				if m.IsRestore() {
					tr.DeadBins = append(tr.DeadBins, m.Bin)
				}
			}
		}
	}
	return tr, schedule, nil
}
