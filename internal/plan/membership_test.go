package plan_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/plan"
	"megaphone/internal/progress"
)

// fakeFabric records every call the membership protocol makes against the
// runtime, and hands each process one distinctive capability-hold delta so the
// barrier's inventory summation is observable.
type fakeFabric struct {
	procs int
	hold  progress.CountDelta

	frontier atomic.Int64 // what Frontier() reports

	mu        sync.Mutex
	events    []string
	views     []fakeView
	retired   []int
	activated []int
	memEpochs []uint64
	purgeCuts []core.Time
	reset     []progress.CountDelta // deltas of the last ResetProgress batch
	bounds    map[int]core.Time     // what AppliedBounds() reports
}

type fakeView struct {
	from   core.Time
	active []bool
}

func newFakeFabric(proc, procs int) *fakeFabric {
	return &fakeFabric{
		procs: procs,
		hold:  progress.CountDelta{Loc: progress.Location(100 + proc), Time: 7, Delta: proc + 1},
	}
}

func (f *fakeFabric) event(e string) {
	f.mu.Lock()
	f.events = append(f.events, e)
	f.mu.Unlock()
}

func (f *fakeFabric) Pause()  { f.event("pause") }
func (f *fakeFabric) Resume() { f.event("resume") }

func (f *fakeFabric) HoldInventory(b *progress.Batch) {
	b.Add(f.hold.Loc, f.hold.Time, f.hold.Delta)
	f.event("inventory")
}

func (f *fakeFabric) PurgeDeferred(cut core.Time) {
	f.mu.Lock()
	f.purgeCuts = append(f.purgeCuts, cut)
	f.mu.Unlock()
	f.event("purge")
}

func (f *fakeFabric) AppliedBounds() map[int]core.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]core.Time, len(f.bounds))
	for w, b := range f.bounds {
		out[w] = b
	}
	return out
}

func (f *fakeFabric) ResetProgress(b *progress.Batch) {
	f.mu.Lock()
	f.reset = append([]progress.CountDelta(nil), b.Deltas...)
	f.mu.Unlock()
	f.event("reset")
}

func (f *fakeFabric) InstallView(from core.Time, active []bool) {
	f.mu.Lock()
	f.views = append(f.views, fakeView{from: from, active: append([]bool(nil), active...)})
	f.mu.Unlock()
}

func (f *fakeFabric) Activate(p int) {
	f.mu.Lock()
	f.activated = append(f.activated, p)
	f.mu.Unlock()
	f.event("activate")
}

func (f *fakeFabric) RetirePeer(p int) {
	f.mu.Lock()
	f.retired = append(f.retired, p)
	f.mu.Unlock()
}

func (f *fakeFabric) SetMembershipEpoch(e uint64) {
	f.mu.Lock()
	f.memEpochs = append(f.memEpochs, e)
	f.mu.Unlock()
}

func (f *fakeFabric) DataCounters() (sent, recv []uint64) {
	return make([]uint64, f.procs), make([]uint64, f.procs)
}

func (f *fakeFabric) Frontier() core.Time {
	return core.Time(f.frontier.Load())
}

// eventOrder asserts the named events all happened, in the given relative
// order (other events may interleave).
func (f *fakeFabric) eventOrder(t *testing.T, proc int, want ...string) {
	t.Helper()
	f.mu.Lock()
	events := append([]string(nil), f.events...)
	f.mu.Unlock()
	i := 0
	for _, e := range events {
		if i < len(want) && e == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("process %d fabric events %v do not contain %v in order", proc, events, want)
	}
}

func (f *fakeFabric) retiredSlots() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.retired...)
}

// writeFakeCheckpoint fabricates a complete checkpoint at the given epoch:
// completeness is judged per worker against the roster the manifests record
// (core.LatestCheckpoint), which is all the membership controller's
// declaration gate reads. The manifests are real (parseable) but empty of
// bins.
func writeFakeCheckpoint(t *testing.T, dir string, epoch core.Time, workers int) {
	t.Helper()
	ed := filepath.Join(dir, "count", fmt.Sprintf("epoch-%d", epoch))
	if err := os.MkdirAll(ed, 0o777); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		m := core.Manifest{Op: "count", Epoch: uint64(epoch), Worker: w, Peers: workers, Codec: "binary"}
		data, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(ed, fmt.Sprintf("manifest-w%d.json", w)), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

type memCluster struct {
	hub  *fakeHub
	fabs []*fakeFabric
	mcs  []*plan.MembershipController
}

func newMemCluster(t *testing.T, procs, wpp, bins int, initialActive []bool, mutate func(p int, o *plan.MembershipOptions)) *memCluster {
	t.Helper()
	c := &memCluster{hub: newFakeHub(procs)}
	for p := 0; p < procs; p++ {
		fab := newFakeFabric(p, procs)
		opts := plan.MembershipOptions{
			Bus:            c.hub.buses[p],
			Fabric:         fab,
			Frontier:       fab.Frontier,
			Procs:          procs,
			Proc:           p,
			WorkersPerProc: wpp,
			Bins:           bins,
			InitialActive:  initialActive,
			Margin:         4,
			BarrierTimeout: 20 * time.Second,
			Logf:           t.Logf,
		}
		if mutate != nil {
			mutate(p, &opts)
		}
		c.fabs = append(c.fabs, fab)
		c.mcs = append(c.mcs, plan.NewMembershipController(opts))
	}
	return c
}

// TestMembershipInitialAssignment pins the live-only reseed: with absent
// roster slots no bin may start owned by a worker that does not exist yet, and
// InitialMoves must carry every live process from the operator's built-in
// full-roster assignment to the live-only one.
func TestMembershipInitialAssignment(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	c := newMemCluster(t, procs, wpp, bins, []bool{true, true, false}, nil)

	assign := c.mcs[0].Assignment()
	if len(assign) != bins {
		t.Fatalf("assignment has %d bins, want %d", len(assign), bins)
	}
	for b, w := range assign {
		if w/wpp == 2 {
			t.Fatalf("bin %d starts owned by worker %d of the absent process 2", b, w)
		}
	}
	moves := c.mcs[0].InitialMoves()
	if len(moves) == 0 {
		t.Fatal("an incomplete roster must need initial moves")
	}
	got := plan.Initial(bins, procs*wpp)
	for _, m := range moves {
		got[m.Bin] = m.Worker
	}
	for b := range got {
		if got[b] != assign[b] {
			t.Fatalf("initial moves applied to the built-in assignment give bin %d to %d, mirror says %d", b, got[b], assign[b])
		}
	}
	// Every live process computes the identical move set (duplicate
	// injections must canonicalize away, so they must not differ).
	m1 := c.mcs[1].InitialMoves()
	if len(m1) != len(moves) {
		t.Fatalf("processes disagree on initial moves: %d vs %d", len(moves), len(m1))
	}
	for i := range moves {
		if moves[i].Bin != m1[i].Bin || moves[i].Worker != m1[i].Worker {
			t.Fatalf("initial move %d differs across processes: %+v vs %+v", i, moves[i], m1[i])
		}
	}

	full := newMemCluster(t, procs, wpp, bins, nil, nil)
	if mv := full.mcs[0].InitialMoves(); len(mv) != 0 {
		t.Fatalf("a complete roster needs no initial moves, got %d", len(mv))
	}
}

// TestMembershipCoveredPartition pins the input-coverage invariant: the live
// processes partition the full global slot space (their own slots plus the
// absent processes' slots) with no gaps and no overlaps, so the cluster-wide
// input multiset per epoch is independent of membership. Same for the
// crash-replay partition.
func TestMembershipCoveredPartition(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	c := newMemCluster(t, procs, wpp, bins, []bool{true, true, false}, nil)

	if got := c.mcs[2].Covered(5); got != nil {
		t.Fatalf("an inactive process covers no slots, got %v", got)
	}
	seen := make(map[int]int)
	for p := 0; p < 2; p++ {
		for _, g := range c.mcs[p].Covered(5) {
			if prev, dup := seen[g]; dup {
				t.Fatalf("slot %d covered by both process %d and %d", g, prev, p)
			}
			seen[g] = p
		}
	}
	for g := 0; g < procs*wpp; g++ {
		if _, ok := seen[g]; !ok {
			t.Fatalf("slot %d covered by no live process", g)
		}
	}

	replay := make(map[int]int)
	for p := 0; p < 2; p++ {
		for _, g := range c.mcs[p].ReplaySlots(5) {
			if prev, dup := replay[g]; dup {
				t.Fatalf("replay slot %d owned by both process %d and %d", g, prev, p)
			}
			replay[g] = p
		}
	}
	for g := 0; g < procs*wpp; g++ {
		if _, ok := replay[g]; !ok {
			t.Fatalf("replay slot %d owned by no live process", g)
		}
	}
}

// TestMembershipJoinProtocol runs the whole admission path over the fake bus:
// hello, leader decision (mirrored to every process including the joiner),
// seed and rebalance move schedules, and the three-party admission barrier
// with inventory exchange and synchronized reset.
func TestMembershipJoinProtocol(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	const margin = core.Time(4)
	c := newMemCluster(t, procs, wpp, bins, []bool{true, true, false}, nil)

	if !c.mcs[2].Joiner() {
		t.Fatal("process 2 must identify as a joiner")
	}

	admitted := make(chan *plan.Transition, 1)
	go func() {
		tr, err := c.mcs[2].AwaitAdmission()
		if err != nil {
			t.Error(err)
		}
		admitted <- tr
	}()

	var tr0 *plan.Transition
	var decidedAt core.Time
	for e := core.Time(1); e <= 200; e++ {
		c.mcs[0].Tick(e)
		c.mcs[1].Tick(e)
		if tr0 = c.mcs[0].NextCommit(); tr0 != nil {
			decidedAt = e
			break
		}
		time.Sleep(time.Millisecond)
	}
	if tr0 == nil {
		t.Fatal("leader never decided the join")
	}
	if tr0.Kind != plan.TransitionJoin || tr0.Slot != 2 || tr0.MemEpoch != 1 {
		t.Fatalf("unexpected join decision %+v", tr0)
	}
	if tr0.Epoch != decidedAt+margin {
		t.Fatalf("join commits at %d, want decision epoch %d + margin %d", tr0.Epoch, decidedAt, margin)
	}
	tr1 := c.mcs[1].NextCommit()
	if tr1 == nil || tr1.Kind != tr0.Kind || tr1.Slot != tr0.Slot || tr1.Epoch != tr0.Epoch || tr1.MemEpoch != tr0.MemEpoch {
		t.Fatalf("follower's mirrored decision %+v does not match the leader's %+v", tr1, tr0)
	}
	var tr2 *plan.Transition
	select {
	case tr2 = <-admitted:
	case <-time.After(10 * time.Second):
		t.Fatal("joiner never received its admission")
	}
	if tr2.Epoch != tr0.Epoch || tr2.Slot != 2 {
		t.Fatalf("joiner's admission %+v does not match the decision %+v", tr2, tr0)
	}

	// All three assignment mirrors agree, and the rebalance put bins on the
	// joiner's workers.
	a0 := c.mcs[0].Assignment()
	joinerOwns := false
	for b, w := range a0 {
		if c.mcs[1].Assignment()[b] != w || c.mcs[2].Assignment()[b] != w {
			t.Fatalf("assignment mirrors diverge at bin %d", b)
		}
		if w/wpp == 2 {
			joinerOwns = true
		}
	}
	if !joinerOwns {
		t.Fatalf("rebalance moved no bin onto the joiner: %v", a0)
	}

	// The move schedule: seed moves at the commit epoch (the joiner's routing
	// history), rebalance moves a margin later, at least one onto the joiner.
	seed := c.mcs[1].MovesAt(tr0.Epoch)
	if len(seed) == 0 {
		t.Fatal("no seed moves at the commit epoch")
	}
	for _, m := range seed {
		if m.IsRestore() || m.IsCheckpoint() {
			t.Fatalf("seed move %+v is not a plain move", m)
		}
	}
	rebal := c.mcs[1].MovesAt(tr0.Epoch + margin)
	ontoJoiner := false
	for _, m := range rebal {
		if m.Worker/wpp == 2 {
			ontoJoiner = true
		}
	}
	if !ontoJoiner {
		t.Fatalf("rebalance moves %v send nothing to the joiner", rebal)
	}

	// The admission barrier: members report the commit epoch as their
	// frontier (the loop is quiesced there), the joiner reports it
	// synthetically. Everyone must pause, exchange inventories, reset to the
	// same summed baseline, and only then resume.
	c.fabs[0].frontier.Store(int64(tr0.Epoch))
	c.fabs[1].frontier.Store(int64(tr0.Epoch))
	trs := []*plan.Transition{tr0, tr1, tr2}
	results := make([]plan.BarrierResult, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p] = c.mcs[p].RunBarrier(trs[p])
		}(p)
	}
	wg.Wait()

	for p := 0; p < procs; p++ {
		if results[p].Cut != tr0.Epoch {
			t.Fatalf("process %d: join barrier cut %d, want the commit epoch %d", p, results[p].Cut, tr0.Epoch)
		}
		c.fabs[p].eventOrder(t, p, "pause", "inventory", "reset", "activate", "resume")
		if len(c.fabs[p].purgeCuts) != 0 {
			t.Fatalf("process %d: a join barrier must not purge, got cuts %v", p, c.fabs[p].purgeCuts)
		}
		if len(c.fabs[p].activated) != 1 || c.fabs[p].activated[0] != 2 {
			t.Fatalf("process %d: Activate calls %v, want exactly [2]", p, c.fabs[p].activated)
		}
		v := c.fabs[p].views
		if len(v) != 1 || v[0].from != tr0.Epoch || !v[0].active[0] || !v[0].active[1] || !v[0].active[2] {
			t.Fatalf("process %d: installed views %+v, want one all-active view from %d", p, v, tr0.Epoch)
		}
		if len(c.fabs[p].memEpochs) != 1 || c.fabs[p].memEpochs[0] != 1 {
			t.Fatalf("process %d: membership epochs %v, want [1]", p, c.fabs[p].memEpochs)
		}
		// The reset baseline must sum every participant's inventory: each
		// process contributed one distinctive hold delta.
		found := make(map[progress.Location]int)
		for _, d := range c.fabs[p].reset {
			found[d.Loc] = d.Delta
		}
		for q := 0; q < procs; q++ {
			want := c.fabs[q].hold
			if found[want.Loc] != want.Delta {
				t.Fatalf("process %d: reset batch %v is missing process %d's hold %+v", p, c.fabs[p].reset, q, want)
			}
		}
		if got := c.mcs[p].MembershipEpoch(); got != 1 {
			t.Fatalf("process %d: membership epoch %d after the join, want 1", p, got)
		}
	}
}

// TestMembershipDrainProtocol pins drain-leave: the leader renders a plain
// (non-restore) move schedule that empties the leaver's bins at the commit
// epoch, no barrier and no purge happen, and the goodbye frame retires the
// slot on the survivors.
func TestMembershipDrainProtocol(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	const margin = core.Time(4)
	c := newMemCluster(t, procs, wpp, bins, nil, nil)

	c.mcs[2].RequestLeave()
	var tr *plan.Transition
	var decidedAt core.Time
	for e := core.Time(1); e <= 200; e++ {
		c.mcs[0].Tick(e)
		c.mcs[1].Tick(e)
		c.mcs[2].Tick(e)
		if tr = c.mcs[0].NextCommit(); tr != nil {
			decidedAt = e
			break
		}
	}
	if tr == nil {
		t.Fatal("leader never decided the drain")
	}
	if tr.Kind != plan.TransitionDrain || tr.Slot != 2 || tr.Epoch != decidedAt+margin {
		t.Fatalf("unexpected drain decision %+v (decided at %d)", tr, decidedAt)
	}
	for p := 0; p < procs; p++ {
		if got := c.mcs[p].NextCommit(); got == nil || got.Kind != plan.TransitionDrain || got.Slot != 2 {
			t.Fatalf("process %d did not mirror the drain decision: %+v", p, got)
		}
		for b, w := range c.mcs[p].Assignment() {
			if w/wpp == 2 {
				t.Fatalf("process %d: bin %d still assigned to the leaver after the decision", p, b)
			}
		}
	}
	moves := c.mcs[0].MovesAt(tr.Epoch)
	if len(moves) == 0 {
		t.Fatal("drain decision carries no moves")
	}
	for _, m := range moves {
		if m.IsRestore() {
			t.Fatalf("drain move %+v must be a plain migration, not a restore", m)
		}
		if m.Worker/wpp == 2 {
			t.Fatalf("drain move %+v targets the leaver", m)
		}
	}

	c.mcs[0].CommitDrain(tr)
	if c.mcs[0].NextCommit() != nil {
		t.Fatal("CommitDrain did not clear the pending transition")
	}

	// Before the goodbye the leaver is still a mesh peer; after it the
	// survivors retire the slot. The leaver itself never retires anyone.
	if got := c.fabs[0].retiredSlots(); len(got) != 0 {
		t.Fatalf("survivor retired %v before the goodbye", got)
	}
	c.mcs[2].Goodbye()
	for p := 0; p < 2; p++ {
		if got := c.fabs[p].retiredSlots(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("process %d retired %v after the goodbye, want [2]", p, got)
		}
	}
	if got := c.fabs[2].retiredSlots(); len(got) != 0 {
		t.Fatalf("the leaver retired %v", got)
	}
}

// TestMembershipCrashProtocol pins crash-leave end to end minus the real
// dataflow: declaration is gated on a complete checkpoint, the decision
// carries restore moves for exactly the dead member's bins, the dead slot is
// retired immediately, and the two-survivor barrier purges at the common
// wedged frontier and reports it as the replay cut.
func TestMembershipCrashProtocol(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	dir := t.TempDir()
	c := newMemCluster(t, procs, wpp, bins, nil, func(p int, o *plan.MembershipOptions) {
		o.SuspectAfter = 2
		o.DeathAfter = 2
		o.CheckpointDir = dir
	})

	// Process 2 never ticks. Without a complete checkpoint its death may be
	// suspected but never declared.
	e := core.Time(1)
	for ; e <= 12; e++ {
		c.mcs[0].Tick(e)
		c.mcs[1].Tick(e)
	}
	if tr := c.mcs[0].NextCommit(); tr != nil {
		t.Fatalf("death declared with no complete checkpoint: %+v", tr)
	}

	writeFakeCheckpoint(t, dir, 6, procs*wpp)
	var tr *plan.Transition
	for ; e <= 200; e++ {
		c.mcs[0].Tick(e)
		c.mcs[1].Tick(e)
		if tr = c.mcs[0].NextCommit(); tr != nil {
			break
		}
	}
	if tr == nil {
		t.Fatal("death never declared after the checkpoint completed")
	}
	if tr.Kind != plan.TransitionCrash || tr.Slot != 2 || tr.Ckpt != 6 {
		t.Fatalf("unexpected crash decision %+v", tr)
	}

	// The dead member's bins — exactly the ones the initial assignment gave
	// its workers — become restore moves, and both survivors agree.
	deadBins := make(map[int]bool)
	for b, w := range plan.Initial(bins, procs*wpp) {
		if w/wpp == 2 {
			deadBins[b] = true
		}
	}
	if len(tr.DeadBins) != len(deadBins) {
		t.Fatalf("DeadBins %v, want the %d bins of process 2", tr.DeadBins, len(deadBins))
	}
	for _, b := range tr.DeadBins {
		if !deadBins[b] {
			t.Fatalf("DeadBins %v includes bin %d, which process 2 never owned", tr.DeadBins, b)
		}
	}
	tr1 := c.mcs[1].NextCommit()
	if tr1 == nil || tr1.Kind != plan.TransitionCrash || tr1.Ckpt != tr.Ckpt || len(tr1.DeadBins) != len(tr.DeadBins) {
		t.Fatalf("survivor's mirrored crash decision %+v does not match %+v", tr1, tr)
	}
	moves := c.mcs[0].MovesAt(tr.Epoch)
	if len(moves) != len(deadBins) {
		t.Fatalf("crash schedule has %d moves, want %d", len(moves), len(deadBins))
	}
	for _, m := range moves {
		if !m.IsRestore() {
			t.Fatalf("crash move %+v must be a restore command", m)
		}
	}
	c.mcs[1].MovesAt(tr1.Epoch) // keep the mirrors symmetric

	// The dead slot is retired on both survivors the moment the decision
	// lands, so no more dataflow frames queue toward it.
	for p := 0; p < 2; p++ {
		if got := c.fabs[p].retiredSlots(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("process %d retired %v at the decision, want [2]", p, got)
		}
	}

	// The crash barrier: both survivors wedge at a common frontier below the
	// commit epoch; the barrier purges there and reports it as the cut. The
	// survivors' workers report applied bounds at or above the cut (worker 0
	// and 2 applied past it — the wedged frontier only reflects what the
	// dead process acknowledged), which must surface as per-bin replay
	// boundaries: the checkpoint epoch for the dead member's bins, the
	// owner's bound for the rest.
	cut := tr.Epoch - 2
	c.fabs[0].frontier.Store(int64(cut))
	c.fabs[1].frontier.Store(int64(cut))
	wantBound := map[int]core.Time{0: cut + 1, 1: cut, 2: cut + 3, 3: cut}
	c.fabs[0].bounds = map[int]core.Time{0: wantBound[0], 1: wantBound[1]}
	c.fabs[1].bounds = map[int]core.Time{2: wantBound[2], 3: wantBound[3]}
	var wg sync.WaitGroup
	results := make([]plan.BarrierResult, 2)
	trs := []*plan.Transition{tr, tr1}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p] = c.mcs[p].RunBarrier(trs[p])
		}(p)
	}
	wg.Wait()
	for p := 0; p < 2; p++ {
		if results[p].Cut != cut {
			t.Fatalf("process %d: crash barrier cut %d, want the wedged frontier %d", p, results[p].Cut, cut)
		}
		c.fabs[p].eventOrder(t, p, "pause", "purge", "inventory", "reset", "resume")
		if cuts := c.fabs[p].purgeCuts; len(cuts) != 1 || cuts[0] != cut {
			t.Fatalf("process %d: purge cuts %v, want [%d]", p, cuts, cut)
		}
		if len(c.fabs[p].activated) != 0 {
			t.Fatalf("process %d: a crash barrier must not activate anyone, got %v", p, c.fabs[p].activated)
		}
		if len(results[p].BinCut) != bins {
			t.Fatalf("process %d: BinCut has %d entries, want %d", p, len(results[p].BinCut), bins)
		}
		for b, owner := range plan.Initial(bins, procs*wpp) {
			want := wantBound[owner]
			if deadBins[b] {
				want = tr.Ckpt
			}
			if got := results[p].BinCut[b]; got != want {
				t.Fatalf("process %d: BinCut[%d] = %d, want %d (owner %d, dead %v)", p, b, got, want, owner, deadBins[b])
			}
		}
	}
}

// TestMembershipDeathBoundary pins the declaration clock and the takeover
// guard on the membership controller: a fresh leader may not declare a death
// before its guard clears even when the silence already qualifies, and a late
// heartbeat from the suspect cancels the declaration entirely (leadership
// snaps back to the lower index).
func TestMembershipDeathBoundary(t *testing.T) {
	const procs, wpp, bins = 3, 2, 8
	const suspectAfter, deathAfter, margin = 2, 2, 3

	setup := func(t *testing.T) *memCluster {
		dir := t.TempDir()
		writeFakeCheckpoint(t, dir, 1, procs*wpp)
		return newMemCluster(t, procs, wpp, bins, nil, func(p int, o *plan.MembershipOptions) {
			o.SuspectAfter = suspectAfter
			o.DeathAfter = deathAfter
			o.Margin = margin
			o.CheckpointDir = dir
		})
	}

	// Processes 0 and 2 are silent; process 1 ticks alone. It suspects
	// process 0 once its silence exceeds SuspectAfter (tick 3), arming the
	// takeover guard until tick 3+margin. Process 0's silence qualifies for
	// death at tick 5, but the guard must hold the declaration until tick 6.
	t.Run("takeover-guard", func(t *testing.T) {
		c := setup(t)
		for e := core.Time(1); e <= suspectAfter+deathAfter+1; e++ { // ticks 1..5
			c.mcs[1].Tick(e)
			if tr := c.mcs[1].NextCommit(); tr != nil {
				t.Fatalf("tick %d: death declared before the takeover guard cleared: %+v", e, tr)
			}
		}
		c.mcs[1].Tick(6)
		tr := c.mcs[1].NextCommit()
		if tr == nil || tr.Kind != plan.TransitionCrash || tr.Slot != 0 {
			t.Fatalf("tick 6: want the death of process 0 declared, got %+v", tr)
		}
		if tr.Epoch != 6+margin {
			t.Fatalf("death commits at %d, want %d", tr.Epoch, 6+margin)
		}
	})

	// Same silence, but process 0 beats once right before the would-be
	// declaration: the late beat un-suspects it, leadership returns to it,
	// and no death is ever declared while it keeps beating.
	t.Run("late-beat-cancels", func(t *testing.T) {
		c := setup(t)
		for e := core.Time(1); e <= suspectAfter+deathAfter+1; e++ { // ticks 1..5
			c.mcs[1].Tick(e)
		}
		c.mcs[0].Tick(6) // the late beat
		for e := core.Time(6); e <= 20; e++ {
			c.mcs[1].Tick(e)
			if e%2 == 0 {
				// Processes 0 and 2 keep beating from now on: 0's return
				// hands leadership back, and 2 must not become a candidate
				// once 0 resumes leading.
				c.mcs[0].Tick(e)
				c.mcs[2].Tick(e)
			}
			if tr := c.mcs[1].NextCommit(); tr != nil {
				t.Fatalf("tick %d: death declared after the suspect resumed beating: %+v", e, tr)
			}
		}
	})
}

// TestMembershipMarginViolationPanics pins the commit-epoch safety check: a
// decision whose commit epoch a member's drive loop has already passed is
// unrecoverable and must panic with advice to raise the margin.
func TestMembershipMarginViolationPanics(t *testing.T) {
	const procs, wpp, bins = 2, 2, 8
	c := newMemCluster(t, procs, wpp, bins, nil, nil)

	// Process 1's loop is far ahead; process 0 (leader) decides a drain with
	// commit epoch decision+margin, far in process 1's past. The synchronous
	// fake bus delivers the decision on the decider's goroutine, so the
	// receiver's panic surfaces here.
	c.mcs[1].Tick(100)
	c.mcs[1].RequestLeave()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on a decision whose commit epoch already passed")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "raise the membership margin") {
			t.Fatalf("panic %q does not point at the margin", msg)
		}
	}()
	c.mcs[0].Tick(1)
}
