package plan_test

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

// fuzzMigN controls the iteration count of the migration-equivalence fuzz
// test: the default keeps `go test` fast; raise it for soak runs, e.g.
//
//	go test ./internal/plan/ -run FuzzlikeMigrationEquivalence -fuzzmig.n=100
var fuzzMigN = flag.Int("fuzzmig.n", 4, "iterations of the migration-equivalence fuzz test")

// outTuple is one observed output: a (time, key, value) triple. The
// multiset of tuples is deterministic for a counting dataflow regardless of
// intra-epoch apply order, so runs compare bit-exactly after sorting.
type outTuple struct {
	t   core.Time
	key uint64
	val uint64
}

// fuzzInput is the generated workload of one fuzz iteration.
type fuzzInput struct {
	workers int
	logBins int
	// recs[w] lists (time, key) records injected at worker w.
	recs [][]outTuple // val unused on input
	maxT core.Time
}

// fuzzPlans is a sequence of reconfigurations: each starts once the
// previous completed and startAt has passed.
type fuzzPlans struct {
	startAt []core.Time
	plans   []plan.Plan
}

// runCounting executes a counting dataflow over in, driving the plans
// through a Controller, and returns every emitted (time, key, count) tuple
// sorted.
func runCounting(t *testing.T, in fuzzInput, plans fuzzPlans) []outTuple {
	t.Helper()
	var mu sync.Mutex
	var got []outTuple

	exec := dataflow.NewExecution(dataflow.Config{Workers: in.workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		dIn, data := dataflow.NewInput[core.KV[uint64, int64]](w, "data")
		dataIns = append(dataIns, dIn)
		counts := core.StateMachine(w,
			core.Config{Name: "count", LogBins: in.logBins},
			ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func(k uint64, v int64, st *uint64, emit func(core.KV[uint64, uint64])) {
				*st += uint64(v)
				emit(core.KV[uint64, uint64]{Key: k, Val: *st})
			}, nil)
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, counts, dataflow.Pipeline[core.KV[uint64, uint64]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(tm core.Time, kvs []core.KV[uint64, uint64]) {
				mu.Lock()
				for _, kv := range kvs {
					got = append(got, outTuple{t: tm, key: kv.Key, val: kv.Val})
				}
				mu.Unlock()
			})
		})
		p := dataflow.NewProbe(w, counts)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	ctl := plan.NewController(ctlIns, probe)
	// Per-worker records grouped by time for epoch-ordered injection.
	byTime := make([]map[core.Time][]uint64, in.workers)
	for w, recs := range in.recs {
		byTime[w] = make(map[core.Time][]uint64)
		for _, r := range recs {
			byTime[w][r.t] = append(byTime[w][r.t], r.key)
		}
	}

	next := 0
	for epoch := core.Time(1); epoch < 100000; epoch++ {
		for w := range byTime {
			for _, k := range byTime[w][epoch] {
				dataIns[w].SendAt(epoch, core.KV[uint64, int64]{Key: k, Val: 1})
			}
		}
		if next < len(plans.plans) && epoch >= plans.startAt[next] && ctl.Idle() {
			ctl.Start(plans.plans[next])
			next++
		}
		ctl.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		// Pace the driver so step completions are observed.
		for probe.Frontier()+8 < epoch {
			runtime.Gosched()
		}
		if epoch > in.maxT && next == len(plans.plans) && ctl.Idle() {
			break
		}
	}
	if next != len(plans.plans) || !ctl.Idle() {
		t.Fatalf("plans did not complete: %d/%d started, idle=%v", next, len(plans.plans), ctl.Idle())
	}
	ctl.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()

	sort.Slice(got, func(i, j int) bool {
		if got[i].t != got[j].t {
			return got[i].t < got[j].t
		}
		if got[i].key != got[j].key {
			return got[i].key < got[j].key
		}
		return got[i].val < got[j].val
	})
	return got
}

// genFuzzInput draws a random workload.
func genFuzzInput(rng *rand.Rand) fuzzInput {
	in := fuzzInput{
		workers: 1 + rng.Intn(4),
		logBins: 2 + rng.Intn(3),
	}
	in.maxT = core.Time(40 + rng.Intn(60))
	in.recs = make([][]outTuple, in.workers)
	n := 200 + rng.Intn(400)
	keys := 8 + rng.Intn(56)
	for i := 0; i < n; i++ {
		w := rng.Intn(in.workers)
		in.recs[w] = append(in.recs[w], outTuple{
			t:   core.Time(1 + rng.Intn(int(in.maxT))),
			key: uint64(rng.Intn(keys)),
		})
	}
	return in
}

// genFuzzPlans draws a random sequence of reconfigurations rendered under
// the given strategy.
func genFuzzPlans(rng *rand.Rand, in fuzzInput, st plan.Strategy) fuzzPlans {
	bins := 1 << uint(in.logBins)
	cur := plan.Initial(bins, in.workers)
	var out fuzzPlans
	steps := 1 + rng.Intn(3)
	for s := 0; s < steps; s++ {
		target := append(plan.Assignment(nil), cur...)
		for b := range target {
			if rng.Intn(2) == 0 {
				target[b] = rng.Intn(in.workers) // may be a self-move
			}
		}
		batch := 1 + rng.Intn(5)
		out.startAt = append(out.startAt, core.Time(1+rng.Intn(int(in.maxT))))
		out.plans = append(out.plans, plan.Build(st, cur, target, batch))
		cur = target
	}
	return out
}

// TestFuzzlikeMigrationEquivalence drives random assignment sequences
// through all four strategies and asserts bit-exact output equivalence
// against a no-migration run of the same input (Property 1 of the paper,
// under Controller pacing rather than hand-fed moves). Seeded: failures
// reproduce by iteration index.
func TestFuzzlikeMigrationEquivalence(t *testing.T) {
	for iter := 0; iter < *fuzzMigN; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + iter)))
			in := genFuzzInput(rng)
			want := runCounting(t, in, fuzzPlans{})
			if len(want) == 0 {
				t.Fatal("reference run produced no output")
			}
			for _, st := range []plan.Strategy{plan.AllAtOnce, plan.Fluid, plan.Batched, plan.Optimized} {
				plans := genFuzzPlans(rand.New(rand.NewSource(int64(5000+iter*10+int(st)))), in, st)
				got := runCounting(t, in, plans)
				if len(got) != len(want) {
					t.Fatalf("%v: %d outputs, want %d", st, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: output %d = %+v, want %+v", st, i, got[i], want[i])
					}
				}
			}
		})
	}
}
