package plan

import (
	"fmt"

	"megaphone/internal/core"
)

// Policy decides reconfigurations from measured load: the role the paper
// assigns to an external controller such as DS2, Dhalion or Chi (Section
// 4.4). A policy inspects the load observed over the last sampling window
// and either proposes a new bin-to-worker assignment or declines to act.
//
// Policies must be deterministic: the same (current, load) inputs yield the
// same target, so experiment runs reproduce.
type Policy interface {
	// Name identifies the policy in flags and experiment output.
	Name() string
	// Target returns the desired assignment given the current one and the
	// load of the last window; ok is false when no reconfiguration is
	// warranted. Implementations must not mutate current and must return a
	// fresh Assignment when ok is true.
	Target(current Assignment, load *core.LoadSnapshot) (Assignment, bool)
}

// Default policy tuning: a rebalance triggers only when the hottest worker
// exceeds the mean load by DefaultHysteresis, and windows with fewer than
// DefaultMinRecords records are ignored entirely (an idle system has nothing
// worth moving, and tiny samples are noise).
const (
	DefaultHysteresis = 0.25
	DefaultMinRecords = 1024
)

// PolicyByName resolves the policies reachable from command-line flags.
func PolicyByName(name string, hysteresis float64) (Policy, error) {
	switch name {
	case "load-balance":
		return LoadBalance{Hysteresis: hysteresis}, nil
	case "static":
		return Static{}, nil
	default:
		return nil, fmt.Errorf("plan: unknown policy %q (want load-balance or static)", name)
	}
}

// Static never reconfigures: the do-nothing baseline that still meters, so
// ablations can report per-worker load without acting on it.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Target implements Policy.
func (Static) Target(Assignment, *core.LoadSnapshot) (Assignment, bool) { return nil, false }

// LoadBalance greedily drains overloaded workers: while some worker exceeds
// the mean window load by the hysteresis fraction, its heaviest bin whose
// move strictly reduces the pairwise imbalance is reassigned to the
// currently least-loaded worker. The result is a small diff — bins on
// balanced workers never move — rather than a full repack.
type LoadBalance struct {
	// Hysteresis is the tolerated overload fraction above the mean before
	// any bin moves (DefaultHysteresis when 0). Small imbalances inside the
	// band never trigger a plan, so the system cannot thrash.
	Hysteresis float64
	// MinRecords ignores windows with fewer records (DefaultMinRecords when
	// 0; negative values disable the floor).
	MinRecords int
	// MaxMoves caps the moves of one decision (0 = bounded only by the bin
	// count).
	MaxMoves int
}

// Name implements Policy.
func (p LoadBalance) Name() string { return "load-balance" }

// Target implements Policy.
func (p LoadBalance) Target(current Assignment, load *core.LoadSnapshot) (Assignment, bool) {
	if belowFloor(load, p.MinRecords) {
		return nil, false
	}
	workers := allWorkers(load.Workers)
	target := append(Assignment(nil), current...)
	moves := greedyBalance(target, load.BinRecs, workers, hyst(p.Hysteresis), p.MaxMoves)
	return target, moves > 0
}

// ScaleOut spreads load over an enlarged worker set: bins assigned outside
// the set are pulled in, and the greedy balancer then drains whichever
// members exceed the mean by the hysteresis band — newly added (empty)
// workers are the least loaded, so bins flow onto them first.
type ScaleOut struct {
	// Workers is the target worker set (must be non-empty; indices must be
	// valid for the execution).
	Workers []int
	// Hysteresis and MinRecords as in LoadBalance.
	Hysteresis float64
	MinRecords int
	// MaxMoves caps the moves of one decision (0 = bounded only by the bin
	// count).
	MaxMoves int
}

// Name implements Policy.
func (p ScaleOut) Name() string { return fmt.Sprintf("scale-out(%d)", len(p.Workers)) }

// Target implements Policy.
func (p ScaleOut) Target(current Assignment, load *core.LoadSnapshot) (Assignment, bool) {
	if len(p.Workers) == 0 {
		return nil, false
	}
	if belowFloor(load, p.MinRecords) {
		return nil, false
	}
	target := append(Assignment(nil), current...)
	moves := drainExcluded(target, load.BinRecs, p.Workers)
	moves += greedyBalance(target, load.BinRecs, p.Workers, hyst(p.Hysteresis), p.MaxMoves)
	return target, moves > 0
}

// ScaleIn drains every worker outside the retained set: their bins move
// (heaviest first) onto the least-loaded retained worker. It fires whenever
// any bin lives outside the set, regardless of load volume, and leaves bins
// already on retained workers untouched.
type ScaleIn struct {
	// Workers is the retained worker set (must be non-empty).
	Workers []int
}

// Name implements Policy.
func (p ScaleIn) Name() string { return fmt.Sprintf("scale-in(%d)", len(p.Workers)) }

// Target implements Policy.
func (p ScaleIn) Target(current Assignment, load *core.LoadSnapshot) (Assignment, bool) {
	if len(p.Workers) == 0 {
		return nil, false
	}
	target := append(Assignment(nil), current...)
	moves := drainExcluded(target, load.BinRecs, p.Workers)
	return target, moves > 0
}

func hyst(h float64) float64 {
	if h <= 0 {
		return DefaultHysteresis
	}
	return h
}

func belowFloor(load *core.LoadSnapshot, minRecords int) bool {
	floor := uint64(DefaultMinRecords)
	switch {
	case minRecords > 0:
		floor = uint64(minRecords)
	case minRecords < 0:
		floor = 0
	}
	return load.TotalRecs() < floor
}

func allWorkers(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// drainExcluded reassigns every bin not owned by a member of the set to the
// least-loaded member, heaviest bins first, mutating target in place and
// returning the number of moves.
func drainExcluded(target Assignment, binLoad []uint64, set []int) int {
	member := make(map[int]bool, len(set))
	for _, w := range set {
		member[w] = true
	}
	loads := make(map[int]uint64, len(set))
	for _, w := range set {
		loads[w] = 0
	}
	var outside []int
	for b, w := range target {
		if member[w] {
			loads[w] += binLoad[b]
		} else {
			outside = append(outside, b)
		}
	}
	// Heaviest first: LPT packing onto the running least-loaded member.
	// Ties break on the lower bin index for determinism.
	sortBinsByLoadDesc(outside, binLoad)
	for _, b := range outside {
		dst := set[0]
		for _, w := range set[1:] {
			if loads[w] < loads[dst] {
				dst = w
			}
		}
		target[b] = dst
		loads[dst] += binLoad[b]
	}
	return len(outside)
}

// greedyBalance repeatedly moves the heaviest eligible bin from the most
// loaded to the least loaded worker of the set while the most loaded worker
// exceeds the mean by the hysteresis fraction. A bin is eligible when its
// load is non-zero and strictly smaller than the pairwise load gap, so every
// move strictly shrinks the gap and the loop terminates. Mutates target in
// place and returns the number of moves.
func greedyBalance(target Assignment, binLoad []uint64, set []int, hysteresis float64, maxMoves int) int {
	if len(set) < 2 {
		return 0
	}
	loads := make([]uint64, 0, len(set))
	index := make(map[int]int, len(set)) // worker -> position in set
	var total uint64
	for i, w := range set {
		index[w] = i
		loads = append(loads, 0)
	}
	for b, w := range target {
		i, ok := index[w]
		if !ok {
			// Bins outside the set are invisible to the balancer; callers
			// drain them first when that matters.
			continue
		}
		loads[i] += binLoad[b]
		total += binLoad[b]
	}
	trigger := float64(total) / float64(len(set)) * (1 + hysteresis)
	if maxMoves <= 0 {
		maxMoves = len(target)
	}
	moves := 0
	for iter := 0; iter < len(target) && moves < maxMoves; iter++ {
		src, dst := 0, 0
		for i := range loads {
			if loads[i] > loads[src] {
				src = i
			}
			if loads[i] < loads[dst] {
				dst = i
			}
		}
		if float64(loads[src]) <= trigger || src == dst {
			break
		}
		gap := loads[src] - loads[dst]
		// Heaviest bin on src that strictly improves; lower bin index wins
		// ties for determinism.
		best, bestLoad := -1, uint64(0)
		for b, w := range target {
			if w != set[src] {
				continue
			}
			l := binLoad[b]
			if l == 0 || l >= gap {
				continue
			}
			if l > bestLoad {
				best, bestLoad = b, l
			}
		}
		if best < 0 {
			break // src's load is a single indivisible bin (or all-zero)
		}
		target[best] = set[dst]
		loads[src] -= bestLoad
		loads[dst] += bestLoad
		moves++
	}
	return moves
}

// sortBinsByLoadDesc orders bins by descending load, breaking ties on the
// lower bin index (insertion sort: the slices involved are small).
func sortBinsByLoadDesc(bins []int, binLoad []uint64) {
	for i := 1; i < len(bins); i++ {
		b := bins[i]
		j := i - 1
		for j >= 0 && (binLoad[bins[j]] < binLoad[b] ||
			(binLoad[bins[j]] == binLoad[b] && bins[j] > b)) {
			bins[j+1] = bins[j]
			j--
		}
		bins[j+1] = b
	}
}
