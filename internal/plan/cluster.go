package plan

import (
	"sync/atomic"

	"megaphone/internal/binenc"
	"megaphone/internal/core"
)

// This file makes the AutoController cluster-wide. Every process samples its
// own LoadMeter rows on the same cadence and broadcasts the increments as
// core.LoadDelta frames over the mesh control channel; each process folds
// the deltas it receives into a core.ClusterLoadView, so all of them
// converge on the same worker×bin load matrix. Exactly one process — the
// lowest-index one believed alive — acts on that matrix: it runs the policy
// and cost model and issues plans through its own Controller, whose control
// moves broadcast to every worker in the cluster (bin ownership is a pure
// function of the move set, so a single sender suffices). Deltas double as
// heartbeats: a process that misses SuspectAfter consecutive sampling
// windows is suspected dead and the next index takes over — but a fresh
// leader may not decide until the frontier passes its takeover epoch, which
// proves every move the previous leader issued has fully applied, so a
// takeover can never interleave a conflicting plan with a dying one.

// ControlBus is the cluster control channel the AutoController piggybacks
// on: broadcast to every peer, receive from all of them serialized.
// *dataflow.Mesh implements it; tests substitute in-memory buses.
type ControlBus interface {
	BroadcastControl(payload []byte)
	SetControlHandler(h func(from int, payload []byte))
}

// ClusterOptions extends AutoOptions to a multi-process cluster.
type ClusterOptions struct {
	// Bus is the control channel (required).
	Bus ControlBus
	// Procs and Proc are the cluster's process count and this process's
	// index; WorkersPerProc is the per-process worker count (uniform), so
	// process p owns meter rows [p*WorkersPerProc, (p+1)*WorkersPerProc).
	Procs, Proc    int
	WorkersPerProc int
	// SuspectAfter is the number of consecutive local sampling windows
	// without a heartbeat from a peer before it is suspected dead (default
	// 4). Election reacts within roughly SuspectAfter×SampleEvery epochs.
	SuspectAfter int
	// OnLeadership observes leadership transitions of this process
	// (instrumentation; called on the ticking goroutine).
	OnLeadership func(leader bool, epoch core.Time)
	// Logf, when non-nil, receives control-plane lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *ClusterOptions) defaults() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4
	}
}

func (o *ClusterOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Control-plane payload kinds (first byte of every frame on the bus).
const (
	ctrlKindLoad     byte = 1 // core.LoadDelta heartbeat
	ctrlKindDecision byte = 2 // leader decision, mirrored by followers
)

// clusterState is the per-process half of the distributed control plane.
// The ticking goroutine owns sampling, election and decisions; transport
// receive goroutines (serialized by the bus) own inbound merge and
// mirroring. The two sides meet only through atomics and the
// AutoController's dmu.
type clusterState struct {
	opts ClusterOptions
	view *core.ClusterLoadView

	meter      *core.LoadMeter
	firstLocal int

	// Outgoing delta state (ticking goroutine only): previous cumulative
	// row values, so each broadcast carries increments.
	seq                 uint64
	prevRecs, prevNanos [][]uint64
	rowRecs, rowNanos   []uint64
	outDelta            core.LoadDelta
	outBuf              []byte
	leader, everLed     bool
	takeoverEpoch       core.Time // fresh leader may not decide until frontier passes this
	takeoverGuard       bool
	lastLeader          int

	// samples counts local sampling windows; lastHeard[q] is the samples
	// value when process q was last heard from. Written on the ticking
	// goroutine (samples, own row) and transport goroutines (peer rows).
	samples   atomic.Int64
	lastHeard []atomic.Int64
	// heard[q] latches once any load delta from process q has been folded
	// into the view, so the leader can tell "no telemetry yet" apart from
	// "quiet window" and defer decisions until the view covers the cluster.
	heard []atomic.Bool

	// Inbound decode state (bus-serialized handler only).
	inDelta core.LoadDelta
	lastSeq []uint64 // highest delta seq folded per origin
}

func newClusterState(meter *core.LoadMeter, opts ClusterOptions) *clusterState {
	if opts.Bus == nil {
		panic("plan: ClusterOptions needs a Bus")
	}
	if opts.Procs < 2 || opts.Proc < 0 || opts.Proc >= opts.Procs {
		panic("plan: ClusterOptions process index out of range")
	}
	if opts.WorkersPerProc <= 0 || opts.Procs*opts.WorkersPerProc != meter.Workers() {
		panic("plan: ClusterOptions worker layout does not match the meter")
	}
	opts.defaults()
	first := opts.Proc * opts.WorkersPerProc
	cs := &clusterState{
		opts:       opts,
		view:       core.NewClusterLoadView(meter, first, opts.WorkersPerProc),
		meter:      meter,
		firstLocal: first,
		rowRecs:    make([]uint64, meter.Bins()),
		rowNanos:   make([]uint64, meter.Bins()),
		lastHeard:  make([]atomic.Int64, opts.Procs),
		heard:      make([]atomic.Bool, opts.Procs),
		lastSeq:    make([]uint64, opts.Procs),
		lastLeader: -1,
	}
	cs.prevRecs = make([][]uint64, opts.WorkersPerProc)
	cs.prevNanos = make([][]uint64, opts.WorkersPerProc)
	cs.outDelta.Rows = make([]core.LoadDeltaRow, opts.WorkersPerProc)
	for r := 0; r < opts.WorkersPerProc; r++ {
		cs.prevRecs[r] = make([]uint64, meter.Bins())
		cs.prevNanos[r] = make([]uint64, meter.Bins())
		cs.outDelta.Rows[r] = core.LoadDeltaRow{
			Recs:  make([]uint64, meter.Bins()),
			Nanos: make([]uint64, meter.Bins()),
		}
	}
	return cs
}

// sample broadcasts this window's local row increments (always, even when
// empty: the delta is also the heartbeat) and advances the local sample
// clock. Ticking goroutine only.
func (cs *clusterState) sample() {
	bins := cs.meter.Bins()
	cs.seq++
	d := &cs.outDelta
	d.Proc = cs.opts.Proc
	d.Seq = cs.seq
	d.FirstWorker = cs.firstLocal
	d.Bins = bins
	for r := 0; r < cs.opts.WorkersPerProc; r++ {
		cs.meter.ReadRow(cs.firstLocal+r, cs.rowRecs, cs.rowNanos)
		for b := 0; b < bins; b++ {
			d.Rows[r].Recs[b] = cs.rowRecs[b] - cs.prevRecs[r][b]
			d.Rows[r].Nanos[b] = cs.rowNanos[b] - cs.prevNanos[r][b]
			cs.prevRecs[r][b] = cs.rowRecs[b]
			cs.prevNanos[r][b] = cs.rowNanos[b]
		}
	}
	cs.outBuf = append(cs.outBuf[:0], ctrlKindLoad)
	cs.outBuf = core.AppendLoadDelta(cs.outBuf, d)
	cs.opts.Bus.BroadcastControl(cs.outBuf)
	n := cs.samples.Add(1)
	cs.lastHeard[cs.opts.Proc].Store(n)
}

// leaderIndex returns the lowest process index not currently suspected.
// This process is never suspected of itself, so the scan always terminates
// at cs.opts.Proc.
func (cs *clusterState) leaderIndex() int {
	n := cs.samples.Load()
	for q := 0; q < cs.opts.Procs; q++ {
		if q == cs.opts.Proc {
			return q
		}
		if n-cs.lastHeard[q].Load() <= int64(cs.opts.SuspectAfter) {
			return q
		}
	}
	return cs.opts.Proc
}

// elect re-evaluates leadership at a sampling boundary and returns whether
// this process currently leads. Acquiring leadership any way other than
// being process 0 at startup arms the takeover guard: no decision until the
// frontier passes the takeover epoch, proving every move a previous leader
// issued (necessarily at an earlier epoch) has been applied cluster-wide.
func (cs *clusterState) elect(now core.Time) bool {
	idx := cs.leaderIndex()
	if cs.lastLeader >= 0 && idx != cs.lastLeader {
		cs.opts.logf("megaphone: process %d: cluster controller is now process %d (was %d) at epoch %d",
			cs.opts.Proc, idx, cs.lastLeader, now)
	}
	cs.lastLeader = idx
	lead := idx == cs.opts.Proc
	switch {
	case lead && !cs.leader:
		if cs.opts.Proc == 0 && !cs.everLed {
			// Process 0's startup leadership has no predecessor whose
			// in-flight plan could conflict; decide freely.
		} else {
			cs.takeoverEpoch = now
			cs.takeoverGuard = true
			cs.opts.logf("megaphone: process %d assumed cluster-controller leadership at epoch %d",
				cs.opts.Proc, now)
		}
		cs.everLed = true
		if cs.opts.OnLeadership != nil {
			cs.opts.OnLeadership(true, now)
		}
	case !lead && cs.leader:
		cs.opts.logf("megaphone: process %d ceded cluster-controller leadership at epoch %d",
			cs.opts.Proc, now)
		if cs.opts.OnLeadership != nil {
			cs.opts.OnLeadership(false, now)
		}
	}
	cs.leader = lead
	return lead
}

// covered reports whether the merged view spans the whole cluster: every
// peer has either contributed at least one load delta or is suspected dead.
// Until then a leader's window is mostly its own local rows, and a plan
// rendered from it would chase a phantom imbalance — the decision defers to
// the next sampling boundary instead.
func (cs *clusterState) covered() bool {
	n := cs.samples.Load()
	for q := 0; q < cs.opts.Procs; q++ {
		if q == cs.opts.Proc || cs.heard[q].Load() {
			continue
		}
		if n-cs.lastHeard[q].Load() <= int64(cs.opts.SuspectAfter) {
			return false
		}
	}
	return true
}

// mayDecide reports whether the takeover guard (if armed) has cleared:
// frontier strictly past the takeover epoch, or an empty frontier (the
// dataflow drained, nothing can be in flight).
func (cs *clusterState) mayDecide(frontier core.Time) bool {
	if !cs.takeoverGuard {
		return true
	}
	if frontier == core.None || frontier > cs.takeoverEpoch {
		cs.takeoverGuard = false
		return true
	}
	return false
}

// appendDecisionFrame encodes a leader decision (issued or declined) for
// followers to mirror. assign is the new in-effect assignment (nil when
// declined: nothing changed).
func appendDecisionFrame(buf []byte, d Decision, assign Assignment) []byte {
	buf = append(buf, ctrlKindDecision)
	buf = binenc.AppendUvarint(buf, uint64(d.Origin))
	buf = binenc.AppendUvarint(buf, uint64(d.Epoch))
	buf = binenc.AppendBool(buf, d.Declined)
	buf = binenc.AppendString(buf, d.Policy)
	buf = binenc.AppendString(buf, d.Reason)
	buf = binenc.AppendUvarint(buf, uint64(d.Moves))
	buf = binenc.AppendUvarint(buf, uint64(d.Steps))
	buf = binenc.AppendUvarint(buf, d.WindowRecs)
	buf = binenc.AppendUvarint(buf, d.Volume)
	buf = binenc.AppendUvarint(buf, d.Gain)
	buf = binenc.AppendUvarint(buf, uint64(len(assign)))
	for _, w := range assign {
		buf = binenc.AppendUvarint(buf, uint64(w))
	}
	return buf
}

// parseDecisionFrame decodes a decision frame (sans the kind byte).
func parseDecisionFrame(data []byte) (Decision, Assignment, error) {
	var d Decision
	var origin, epoch, moves, steps, bins uint64
	var err error
	if origin, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if epoch, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if d.Declined, data, err = binenc.Bool(data); err != nil {
		return d, nil, err
	}
	if d.Policy, data, err = binenc.String(data); err != nil {
		return d, nil, err
	}
	if d.Reason, data, err = binenc.String(data); err != nil {
		return d, nil, err
	}
	if moves, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if steps, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if d.WindowRecs, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if d.Volume, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if d.Gain, data, err = binenc.Uvarint(data); err != nil {
		return d, nil, err
	}
	if bins, data, err = binenc.Count(data, 1); err != nil {
		return d, nil, err
	}
	var assign Assignment
	if bins > 0 {
		assign = make(Assignment, bins)
		for b := range assign {
			var w uint64
			if w, data, err = binenc.Uvarint(data); err != nil {
				return d, nil, err
			}
			assign[b] = int(w)
		}
	}
	d.Origin = int(origin)
	d.Epoch = core.Time(epoch)
	d.Moves = int(moves)
	d.Steps = int(steps)
	return d, assign, nil
}

// onControl handles one inbound control frame. Runs on the bus's serialized
// handler context, never on the ticking goroutine.
func (a *AutoController) onControl(from int, payload []byte) {
	cs := a.cluster
	if len(payload) == 0 {
		cs.opts.logf("megaphone: process %d: empty control frame from %d", cs.opts.Proc, from)
		return
	}
	switch payload[0] {
	case ctrlKindLoad:
		d := &cs.inDelta
		if err := core.DecodeLoadDelta(payload[1:], d); err != nil {
			cs.opts.logf("megaphone: process %d: dropping control frame from %d: %v", cs.opts.Proc, from, err)
			return
		}
		if d.Proc < 0 || d.Proc >= cs.opts.Procs {
			cs.opts.logf("megaphone: process %d: load delta claims origin %d of %d", cs.opts.Proc, d.Proc, cs.opts.Procs)
			return
		}
		if d.Seq <= cs.lastSeq[d.Proc] {
			return // duplicate or stale (transport is exactly-once; belt and braces)
		}
		if err := cs.view.Apply(d); err != nil {
			cs.opts.logf("megaphone: process %d: dropping load delta from %d: %v", cs.opts.Proc, from, err)
			return
		}
		cs.lastSeq[d.Proc] = d.Seq
		cs.lastHeard[d.Proc].Store(cs.samples.Load())
		cs.heard[d.Proc].Store(true)
	case ctrlKindDecision:
		d, assign, err := parseDecisionFrame(payload[1:])
		if err != nil {
			cs.opts.logf("megaphone: process %d: dropping decision frame from %d: %v", cs.opts.Proc, from, err)
			return
		}
		if d.Origin == cs.opts.Proc {
			return // our own broadcast echoed back through a relay; impossible today
		}
		a.dmu.Lock()
		if !d.Declined && len(assign) == len(a.current) {
			copy(a.current, assign)
		}
		a.decisions = append(a.decisions, d)
		a.dmu.Unlock()
	default:
		cs.opts.logf("megaphone: process %d: unknown control payload kind %d from %d", cs.opts.Proc, payload[0], from)
	}
}
