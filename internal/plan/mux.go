package plan

import "sync"

// BusMux multiplexes the autoscale and membership control planes onto one
// ControlBus (one mesh control channel). Outbound frames pass straight
// through; inbound frames route on their first byte — the autoscaler's kinds
// sit below 10 (ctrlKindLoad, ctrlKindDecision), the membership kinds at 10
// and above — so each plane sees exactly the frames it would have seen owning
// the bus alone. Frames arriving before a plane has registered its handler
// are buffered and replayed on registration, preserving the underlying bus's
// no-frame-lost contract for late-constructed controllers.
type BusMux struct {
	bus ControlBus

	mu      sync.Mutex
	auto    func(from int, payload []byte)
	mem     func(from int, payload []byte)
	autoLog []muxFrame
	memLog  []muxFrame
}

type muxFrame struct {
	from    int
	payload []byte
}

// NewBusMux wraps the bus and takes over its control handler. Both plane
// views must be claimed (SetControlHandler called) by controllers on the same
// process; delivery within a plane stays serialized because the underlying
// bus serializes its handler.
func NewBusMux(bus ControlBus) *BusMux {
	m := &BusMux{bus: bus}
	bus.SetControlHandler(m.dispatch)
	return m
}

func (m *BusMux) dispatch(from int, payload []byte) {
	if len(payload) == 0 {
		return
	}
	// The handler lookup is under mu, but the call is not: plane handlers may
	// broadcast (the bus must not be re-entered under our lock), and the
	// underlying bus already serializes deliveries.
	m.mu.Lock()
	h, log := &m.mem, &m.memLog
	if payload[0] < memKindBeat {
		h, log = &m.auto, &m.autoLog
	}
	if *h == nil {
		*log = append(*log, muxFrame{from: from, payload: append([]byte(nil), payload...)})
		m.mu.Unlock()
		return
	}
	deliver := *h
	m.mu.Unlock()
	deliver(from, payload)
}

// Auto returns the autoscale plane's view of the bus.
func (m *BusMux) Auto() ControlBus { return &muxPlane{m: m, mem: false} }

// Membership returns the membership plane's view of the bus.
func (m *BusMux) Membership() ControlBus { return &muxPlane{m: m, mem: true} }

type muxPlane struct {
	m   *BusMux
	mem bool
}

func (p *muxPlane) BroadcastControl(payload []byte) {
	p.m.bus.BroadcastControl(payload)
}

func (p *muxPlane) SetControlHandler(h func(from int, payload []byte)) {
	p.m.mu.Lock()
	var backlog []muxFrame
	if p.mem {
		p.m.mem, backlog, p.m.memLog = h, p.m.memLog, nil
	} else {
		p.m.auto, backlog, p.m.autoLog = h, p.m.autoLog, nil
	}
	p.m.mu.Unlock()
	for _, f := range backlog {
		h(f.from, f.payload)
	}
}
