package plan

import (
	"sync"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// Controller feeds a migration plan into a megaphone control stream, one
// step per timestamp, pacing each step on the completion of the previous
// one. It plays the role of the external controller of Section 4.4 (the
// paper names DS2, Dhalion and Chi as candidate sources of the commands).
//
// The harness calls Tick once per epoch, before advancing the control
// epochs past it; the controller may inject that epoch's commands during the
// call. Drive every worker's control handle through the controller so their
// epochs advance in lockstep.
type Controller struct {
	mu      sync.Mutex
	handles []*dataflow.InputHandle[core.Move]
	probe   *dataflow.Probe

	plan     Plan
	next     int       // index of the next step to issue
	waitFor  core.Time // timestamp of the outstanding step; core.None when idle
	cooldown int       // idle ticks still owed after the last step (gap)
	active   bool

	// OnStepIssued and OnStepDone observe plan execution (instrumentation).
	OnStepIssued func(step int, t core.Time)
	OnStepDone   func(step int, t core.Time)

	started core.Time
	ended   core.Time
	haveEnd bool
}

// NewController returns a controller over the given per-worker control
// handles and output probe.
func NewController(handles []*dataflow.InputHandle[core.Move], probe *dataflow.Probe) *Controller {
	return &Controller{handles: handles, probe: probe, waitFor: core.None}
}

// Start schedules plan for execution beginning at the next tick. It must
// not be called while a previous plan is still executing.
func (c *Controller) Start(p Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active {
		panic("plan: controller already executing a plan")
	}
	c.plan = p
	c.next = 0
	c.waitFor = core.None
	c.cooldown = 0
	c.active = len(p.Steps) > 0
	c.haveEnd = false
	c.started = 0
	c.ended = 0
}

// Tick advances the controller at epoch now: it issues the next step when
// the previous one has completed (and any gap has elapsed), then advances
// every control handle to now+1. Call exactly once per epoch.
func (c *Controller) Tick(now core.Time) {
	c.mu.Lock()
	if c.active {
		if c.waitFor != core.None {
			if f := c.probe.Frontier(); f > c.waitFor || f == core.None {
				if c.OnStepDone != nil {
					c.OnStepDone(c.next-1, now)
				}
				step := c.plan.Steps[c.next-1]
				if step.Gap {
					c.cooldown = 1
				}
				c.waitFor = core.None
				if c.next >= len(c.plan.Steps) {
					c.active = false
					c.ended = now
					c.haveEnd = true
				}
			}
		}
		if c.active && c.waitFor == core.None {
			if c.cooldown > 0 {
				c.cooldown--
			} else {
				step := c.plan.Steps[c.next]
				if c.next == 0 {
					c.started = now
				}
				c.handles[0].SendAt(now, step.Moves...)
				c.waitFor = now
				if c.OnStepIssued != nil {
					c.OnStepIssued(c.next, now)
				}
				c.next++
			}
		}
	}
	handles := c.handles
	c.mu.Unlock()
	for _, h := range handles {
		h.AdvanceTo(now + 1)
	}
}

// Checkpoint injects a checkpoint command at epoch now. Call before Tick
// advances the control epochs past now; like plan steps, the command goes
// out on the first handle and the broadcast pact fans it to every worker.
// In a cluster every process issues the command at the same epoch (the
// cadence is deterministic) and the operator canonicalizes the merged
// same-time copies into one checkpoint.
func (c *Controller) Checkpoint(now core.Time) {
	c.mu.Lock()
	handle := c.handles[0]
	c.mu.Unlock()
	handle.SendAt(now, core.CheckpointMove())
}

// Close closes every control handle.
func (c *Controller) Close() {
	for _, h := range c.handles {
		h.Close()
	}
}

// Idle reports whether no plan is executing.
func (c *Controller) Idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.active
}

// Span returns the epochs at which the last completed plan started and
// ended, and whether a plan has completed.
func (c *Controller) Span() (start, end core.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started, c.ended, c.haveEnd
}
