package plan_test

import (
	"reflect"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/plan"
)

// snap builds a LoadSnapshot over the given per-bin record counts for a
// worker count.
func snap(workers int, binRecs []uint64) *core.LoadSnapshot {
	return &core.LoadSnapshot{Workers: workers, Bins: len(binRecs), BinRecs: binRecs}
}

func maxLoad(a plan.Assignment, load *core.LoadSnapshot) uint64 {
	loads := load.RecsUnder(a, nil)
	m := loads[0]
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// TestLoadBalanceHysteresis: balanced and mildly imbalanced loads inside
// the hysteresis band produce no plan; an idle window never triggers.
func TestLoadBalanceHysteresis(t *testing.T) {
	p := plan.LoadBalance{Hysteresis: 0.25, MinRecords: -1}
	cur := plan.Initial(4, 2)

	// Perfectly balanced: bins alternate workers, equal loads.
	if _, ok := p.Target(cur, snap(2, []uint64{100, 100, 100, 100})); ok {
		t.Error("balanced load triggered a rebalance")
	}
	// 10% imbalance, inside the 25% band.
	if _, ok := p.Target(cur, snap(2, []uint64{110, 100, 110, 100})); ok {
		t.Error("in-band imbalance triggered a rebalance")
	}
	// Idle window with the default record floor.
	floor := plan.LoadBalance{}
	if _, ok := floor.Target(cur, snap(2, []uint64{10, 0, 0, 0})); ok {
		t.Error("near-idle window triggered a rebalance")
	}
}

// TestLoadBalanceDrainsHotWorker: a worker hoarding the hot bins sheds them
// until it is inside the hysteresis band, moving as few bins as possible.
func TestLoadBalanceDrainsHotWorker(t *testing.T) {
	// 8 bins, 2 workers: worker 0 owns the even bins, which carry all load.
	load := snap(2, []uint64{400, 0, 300, 0, 200, 0, 100, 0})
	cur := plan.Initial(8, 2)
	p := plan.LoadBalance{Hysteresis: 0.25, MinRecords: -1}

	target, ok := p.Target(cur, load)
	if !ok {
		t.Fatal("skewed load did not trigger a rebalance")
	}
	if maxLoad(cur, load) != 1000 {
		t.Fatalf("test setup wrong: initial max load %d", maxLoad(cur, load))
	}
	// Mean is 500; 25% band allows 625. The greedy drain must bring worker 0
	// under that.
	if got := maxLoad(target, load); got > 625 {
		t.Errorf("post-balance max load %d, want <= 625", got)
	}
	// Zero-load bins never move.
	for b, w := range target {
		if load.BinRecs[b] == 0 && w != cur[b] {
			t.Errorf("zero-load bin %d moved", b)
		}
	}
	// Deterministic: same inputs, same answer.
	again, _ := p.Target(cur, load)
	if !reflect.DeepEqual(target, again) {
		t.Error("policy is not deterministic")
	}
}

// TestLoadBalanceIndivisibleBin: when one bin carries all the load, no move
// can help and the policy declines rather than thrashing.
func TestLoadBalanceIndivisibleBin(t *testing.T) {
	load := snap(2, []uint64{1000, 0, 0, 0})
	p := plan.LoadBalance{MinRecords: -1}
	if _, ok := p.Target(plan.Initial(4, 2), load); ok {
		t.Error("an indivisible hot bin produced a plan")
	}
}

// TestLoadBalanceMaxMoves caps the diff size.
func TestLoadBalanceMaxMoves(t *testing.T) {
	load := snap(2, []uint64{100, 0, 100, 0, 100, 0, 100, 0})
	cur := plan.Initial(8, 2)
	p := plan.LoadBalance{MinRecords: -1, MaxMoves: 1}
	target, ok := p.Target(cur, load)
	if !ok {
		t.Fatal("no plan")
	}
	if n := len(plan.Diff(cur, target)); n != 1 {
		t.Errorf("MaxMoves=1 produced %d moves", n)
	}
}

// TestScaleOutSpreadsToNewWorkers: enlarging the worker set pulls load onto
// the empty newcomers.
func TestScaleOutSpreadsToNewWorkers(t *testing.T) {
	// All 8 bins on workers {0,1}, equal loads; scale out to {0,1,2,3}.
	cur := plan.Initial(8, 2)
	load := snap(4, []uint64{100, 100, 100, 100, 100, 100, 100, 100})
	p := plan.ScaleOut{Workers: []int{0, 1, 2, 3}, MinRecords: -1}
	target, ok := p.Target(cur, load)
	if !ok {
		t.Fatal("scale-out did not act")
	}
	loads := load.RecsUnder(target, nil)
	for w, l := range loads {
		if l == 0 {
			t.Errorf("worker %d still idle after scale-out: loads %v", w, loads)
		}
	}
	if got := maxLoad(target, load); got > 250 {
		t.Errorf("post-scale-out max load %d, want <= 250", got)
	}
	// Once spread, the policy goes quiet (no thrash).
	if _, ok := p.Target(target, load); ok {
		t.Error("scale-out re-triggered on a balanced assignment")
	}
}

// TestScaleInDrainsExcludedWorkers: bins leave the departing workers and
// land LPT-packed on the survivors; bins already on survivors stay put.
func TestScaleInDrainsExcludedWorkers(t *testing.T) {
	cur := plan.Initial(8, 4) // bins 0..7 round-robin over 4 workers
	load := snap(4, []uint64{8, 7, 6, 5, 4, 3, 2, 1})
	p := plan.ScaleIn{Workers: []int{0, 1}}
	target, ok := p.Target(cur, load)
	if !ok {
		t.Fatal("scale-in did not act")
	}
	for b, w := range target {
		if w != 0 && w != 1 {
			t.Errorf("bin %d still on excluded worker %d", b, w)
		}
		if cur[b] == 0 || cur[b] == 1 {
			if w != cur[b] {
				t.Errorf("bin %d moved between survivors", b)
			}
		}
	}
	// Idempotent once drained.
	if _, ok := p.Target(target, load); ok {
		t.Error("scale-in re-triggered after draining")
	}
	// Zero-load snapshots still drain (scale-in has no record floor).
	if _, ok := p.Target(cur, snap(4, make([]uint64, 8))); !ok {
		t.Error("scale-in ignored an idle window")
	}
}
