package plan

import (
	"sync"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// AutoOptions configures an AutoController.
type AutoOptions struct {
	// Meter is the load source (required). Its bin count fixes the
	// assignment size.
	Meter *core.LoadMeter
	// Policy turns sampled load windows into target assignments (required).
	Policy Policy
	// Strategy and Batch render each decision into a plan (Batch as in
	// Build).
	Strategy Strategy
	Batch    int
	// SampleEvery is the number of ticks between load samples and policy
	// evaluations; with the harness's default 1 ms epochs the default of 250
	// matches the paper's 250 ms reporting interval.
	SampleEvery int
	// Cooldown is the number of idle ticks owed after a plan completes
	// before the next decision may be taken, so consecutive reconfigurations
	// never chain back-to-back (default 2*SampleEvery).
	Cooldown int
	// OnDecision observes each issued reconfiguration (instrumentation).
	OnDecision func(d Decision)
}

func (o *AutoOptions) defaults() {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 250
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * o.SampleEvery
	}
}

// Decision records one autonomous reconfiguration.
type Decision struct {
	// Epoch is the tick at which the plan was issued.
	Epoch core.Time
	// Policy is the deciding policy's name.
	Policy string
	// Moves and Steps size the issued plan.
	Moves, Steps int
	// WindowRecs is the record count of the load window that triggered the
	// decision.
	WindowRecs uint64
}

// AutoController closes the control loop the paper leaves to an external
// controller: it samples a LoadMeter every SampleEvery ticks, asks its
// Policy for a target assignment over the sampled window, and when the
// policy acts, renders the diff into a plan under the configured Strategy
// and feeds it to the embedded Controller — which paces the steps exactly
// as it does for hand-written plans. A cooldown between reconfigurations
// keeps the loop stable while a migration's own disturbance drains.
//
// Tick it once per epoch in place of a plain Controller (it satisfies the
// harness Driver contract).
type AutoController struct {
	*Controller
	opts    AutoOptions
	current Assignment

	ticks    int
	cooldown int // idle ticks still owed before the next decision

	prev, cur, window *core.LoadSnapshot

	// dmu guards decisions and current: both are written on the ticking
	// goroutine and may be read from any other.
	dmu       sync.Mutex
	decisions []Decision
}

// NewAutoController returns an auto controller over the given control
// handles and probe, starting from the initial assignment (len(initial)
// must equal the meter's bin count).
func NewAutoController(handles []*dataflow.InputHandle[core.Move], probe *dataflow.Probe, initial Assignment, opts AutoOptions) *AutoController {
	if opts.Meter == nil {
		panic("plan: AutoController needs a LoadMeter")
	}
	if opts.Policy == nil {
		panic("plan: AutoController needs a Policy")
	}
	if len(initial) != opts.Meter.Bins() {
		panic("plan: initial assignment size does not match the meter's bins")
	}
	opts.defaults()
	a := &AutoController{
		Controller: NewController(handles, probe),
		opts:       opts,
		current:    append(Assignment(nil), initial...),
	}
	// Seed the previous snapshot so the first window is a true delta.
	a.prev = opts.Meter.Snapshot(nil)
	return a
}

// Tick samples and decides on the sampling grid, then delegates epoch
// advancement (and plan pacing) to the embedded Controller. Call exactly
// once per epoch from the driving goroutine.
func (a *AutoController) Tick(now core.Time) {
	if a.Idle() && a.cooldown > 0 {
		a.cooldown--
	}
	a.ticks++
	if a.ticks%a.opts.SampleEvery == 0 {
		a.cur = a.opts.Meter.Snapshot(a.cur)
		a.window = a.cur.Delta(a.prev, a.window)
		a.prev, a.cur = a.cur, a.prev
		if a.Idle() && a.cooldown == 0 {
			a.decide(now)
		}
	}
	a.Controller.Tick(now)
}

// decide asks the policy for a target over the current window and issues
// the resulting plan, if any.
func (a *AutoController) decide(now core.Time) {
	target, ok := a.opts.Policy.Target(a.current, a.window)
	if !ok {
		return
	}
	p := Build(a.opts.Strategy, a.current, target, a.opts.Batch)
	if len(p.Steps) == 0 {
		return
	}
	a.Controller.Start(p)
	a.dmu.Lock()
	a.current = target
	a.dmu.Unlock()
	a.cooldown = a.opts.Cooldown
	d := Decision{
		Epoch:      now,
		Policy:     a.opts.Policy.Name(),
		Moves:      p.NumMoves(),
		Steps:      len(p.Steps),
		WindowRecs: a.window.TotalRecs(),
	}
	a.dmu.Lock()
	a.decisions = append(a.decisions, d)
	a.dmu.Unlock()
	if a.opts.OnDecision != nil {
		a.opts.OnDecision(d)
	}
}

// Decisions returns the reconfigurations issued so far.
func (a *AutoController) Decisions() []Decision {
	a.dmu.Lock()
	defer a.dmu.Unlock()
	return append([]Decision(nil), a.decisions...)
}

// Current returns the assignment the controller believes is in effect (or
// being installed, while a plan executes).
func (a *AutoController) Current() Assignment {
	a.dmu.Lock()
	defer a.dmu.Unlock()
	return append(Assignment(nil), a.current...)
}
