package plan

import (
	"sync"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// AutoOptions configures an AutoController.
type AutoOptions struct {
	// Meter is the load source (required). Its bin count fixes the
	// assignment size.
	Meter *core.LoadMeter
	// Policy turns sampled load windows into target assignments (required).
	Policy Policy
	// Strategy and Batch render each decision into a plan (Batch as in
	// Build).
	Strategy Strategy
	Batch    int
	// SampleEvery is the number of ticks between load samples and policy
	// evaluations; with the harness's default 1 ms epochs the default of 250
	// matches the paper's 250 ms reporting interval.
	SampleEvery int
	// Cooldown is the number of idle ticks owed after a plan completes
	// before the next decision may be taken, so consecutive reconfigurations
	// never chain back-to-back (default 2*SampleEvery).
	Cooldown int
	// Cost, when non-nil, gates every policy proposal on projected
	// profitability (see CostModel): unprofitable proposals are declined,
	// and declines are recorded in Decisions like issued plans. Nil means
	// every policy proposal is issued, as before.
	Cost *CostModel
	// Cluster, when non-nil, runs the control loop cluster-wide: load
	// telemetry is exchanged over the bus, and only the elected lowest-index
	// live process decides (see ClusterOptions). Nil means single-process.
	Cluster *ClusterOptions
	// OnDecision observes each decision this process makes, issued or
	// declined (instrumentation; not called for mirrored remote decisions).
	OnDecision func(d Decision)
}

func (o *AutoOptions) defaults() {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 250
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * o.SampleEvery
	}
}

// Decision records one autonomous reconfiguration — issued or, when a cost
// model vetoed the policy's proposal, declined.
type Decision struct {
	// Epoch is the tick at which the decision was taken.
	Epoch core.Time
	// Policy is the deciding policy's name.
	Policy string
	// Moves and Steps size the (proposed or issued) plan.
	Moves, Steps int
	// WindowRecs is the record count of the load window that triggered the
	// decision.
	WindowRecs uint64
	// Declined marks a proposal the cost model judged unprofitable; no plan
	// was issued. Reason is one of the cost model's Reason constants.
	Declined bool
	Reason   string
	// Volume and Gain are the cost model's two sides of the trade: state
	// records behind the moved bins, and service nanos recovered over the
	// credited horizon (both 0 when no cost model is configured).
	Volume, Gain uint64
	// Origin is the index of the process that took the decision (0 in
	// single-process runs; every cluster process records every decision).
	Origin int
}

// AutoController closes the control loop the paper leaves to an external
// controller: it samples a LoadMeter every SampleEvery ticks, asks its
// Policy for a target assignment over the sampled window, and when the
// policy acts, renders the diff into a plan under the configured Strategy
// and feeds it to the embedded Controller — which paces the steps exactly
// as it does for hand-written plans. A cooldown between reconfigurations
// keeps the loop stable while a migration's own disturbance drains.
//
// Tick it once per epoch in place of a plain Controller (it satisfies the
// harness Driver contract).
type AutoController struct {
	*Controller
	opts    AutoOptions
	current Assignment

	ticks    int
	cooldown int // idle ticks still owed before the next decision

	// source is what gets sampled: the meter itself, or the merged
	// cluster-wide view in cluster mode.
	source            loadSource
	prev, cur, window *core.LoadSnapshot
	windowSeq         uint64 // completed sampling windows (see WindowSeq)

	// lastHot and stability track how long the same worker has been the
	// window's hottest (consecutive sampling windows); the cost model's
	// stability cap consumes it.
	lastHot   int
	stability int

	// cluster is the distributed control plane state (nil single-process).
	cluster *clusterState
	decBuf  []byte

	// dmu guards decisions and current: both are written on the ticking
	// goroutine (and, in cluster mode, by mirrored remote decisions on bus
	// handler goroutines) and may be read from any other.
	dmu       sync.Mutex
	decisions []Decision
}

// loadSource is anything snapshotable like a LoadMeter; *core.LoadMeter and
// *core.ClusterLoadView both qualify.
type loadSource interface {
	Snapshot(into *core.LoadSnapshot) *core.LoadSnapshot
}

// NewAutoController returns an auto controller over the given control
// handles and probe, starting from the initial assignment (len(initial)
// must equal the meter's bin count).
func NewAutoController(handles []*dataflow.InputHandle[core.Move], probe *dataflow.Probe, initial Assignment, opts AutoOptions) *AutoController {
	if opts.Meter == nil {
		panic("plan: AutoController needs a LoadMeter")
	}
	if opts.Policy == nil {
		panic("plan: AutoController needs a Policy")
	}
	if len(initial) != opts.Meter.Bins() {
		panic("plan: initial assignment size does not match the meter's bins")
	}
	opts.defaults()
	a := &AutoController{
		Controller: NewController(handles, probe),
		opts:       opts,
		current:    append(Assignment(nil), initial...),
		source:     opts.Meter,
		lastHot:    -1,
	}
	if opts.Cluster != nil {
		a.cluster = newClusterState(opts.Meter, *opts.Cluster)
		a.source = a.cluster.view
		// Registering the handler also drains any control frames that beat
		// us here, so no peer's telemetry or decision is ever lost.
		opts.Cluster.Bus.SetControlHandler(a.onControl)
	}
	// Seed the previous snapshot so the first window is a true delta.
	a.prev = a.source.Snapshot(nil)
	return a
}

// Tick samples and decides on the sampling grid, then delegates epoch
// advancement (and plan pacing) to the embedded Controller. Call exactly
// once per epoch from the driving goroutine.
func (a *AutoController) Tick(now core.Time) {
	if a.Idle() && a.cooldown > 0 {
		a.cooldown--
	}
	a.ticks++
	if a.ticks%a.opts.SampleEvery == 0 {
		if a.cluster != nil {
			// Broadcast this window's local row increments first (the delta
			// is also our heartbeat), then sample the merged view.
			a.cluster.sample()
		}
		a.cur = a.source.Snapshot(a.cur)
		a.window = a.cur.Delta(a.prev, a.window)
		a.prev, a.cur = a.cur, a.prev
		a.windowSeq++
		a.observeStability()
		lead := true
		if a.cluster != nil {
			// Only the elected leader decides; a fresh leader not until the
			// frontier proves its predecessor's moves have drained, and no
			// leader until every live peer's telemetry has reached the view —
			// a window of mostly-local rows reads as a phantom imbalance.
			lead = a.cluster.elect(now) && a.cluster.mayDecide(a.probe.Frontier()) &&
				a.cluster.covered()
		}
		if lead && a.Idle() && a.cooldown == 0 {
			a.decide(now)
		}
	}
	a.Controller.Tick(now)
}

// observeStability extends or resets the run of windows in which the same
// worker has been hottest. Service time is the signal when measured; record
// counts otherwise.
func (a *AutoController) observeStability() {
	loads := a.window.WorkerNanos
	if a.window.TotalNanos() == 0 {
		loads = a.window.WorkerRecs
	}
	hot := 0
	for w, l := range loads {
		if l > loads[hot] {
			hot = w
		}
	}
	if hot == a.lastHot {
		a.stability++
	} else {
		a.lastHot = hot
		a.stability = 1
	}
}

// decide asks the policy for a target over the current window, gates the
// proposal through the cost model (when configured), and issues the
// resulting plan. Both outcomes are recorded; neither repeats before the
// cooldown elapses.
func (a *AutoController) decide(now core.Time) {
	a.dmu.Lock()
	current := append(Assignment(nil), a.current...)
	a.dmu.Unlock()
	target, ok := a.opts.Policy.Target(current, a.window)
	if !ok {
		return
	}
	p := Build(a.opts.Strategy, current, target, a.opts.Batch)
	if len(p.Steps) == 0 {
		return
	}
	d := Decision{
		Epoch:      now,
		Policy:     a.opts.Policy.Name(),
		Moves:      p.NumMoves(),
		Steps:      len(p.Steps),
		WindowRecs: a.window.TotalRecs(),
		Origin:     a.origin(),
	}
	if a.opts.Cost != nil {
		// a.prev holds the newest cumulative snapshot after the swap in
		// Tick; its per-bin record counts proxy the state volume to move.
		v := a.opts.Cost.Evaluate(current, target, a.window, a.prev, a.stability)
		d.Volume, d.Gain = v.VolumeRecs, v.GainNanos
		if !v.Migrate {
			d.Declined, d.Reason = true, v.Reason
			a.cooldown = a.opts.Cooldown
			a.record(d, nil)
			return
		}
	}
	a.Controller.Start(p)
	a.dmu.Lock()
	a.current = target
	a.dmu.Unlock()
	a.cooldown = a.opts.Cooldown
	a.record(d, target)
}

// origin returns this process's decision origin index.
func (a *AutoController) origin() int {
	if a.opts.Cluster != nil {
		return a.opts.Cluster.Proc
	}
	return 0
}

// record appends a decision locally and, in cluster mode, broadcasts it so
// followers mirror it (and the new assignment, when one was issued) into
// their own records — every process's Result.Decisions converges.
func (a *AutoController) record(d Decision, assign Assignment) {
	a.dmu.Lock()
	a.decisions = append(a.decisions, d)
	a.dmu.Unlock()
	if a.cluster != nil {
		a.decBuf = appendDecisionFrame(a.decBuf[:0], d, assign)
		a.cluster.opts.Bus.BroadcastControl(a.decBuf)
	}
	if a.opts.OnDecision != nil {
		a.opts.OnDecision(d)
	}
}

// WindowSeq counts the sampling windows completed so far; a consumer on the
// ticking goroutine can use a change in it as "a fresh window is available".
// Like Window, it must only be read from the goroutine that calls Tick.
func (a *AutoController) WindowSeq() uint64 { return a.windowSeq }

// Window returns the newest completed sampling window and the cumulative
// snapshot it was cut from (nil before the first window). Ticking-goroutine
// only; the returned snapshots are reused by the next sample.
func (a *AutoController) Window() (window, cumulative *core.LoadSnapshot) {
	return a.window, a.prev
}

// TelemetryCovered reports whether, in cluster mode, every live peer's load
// telemetry has reached the merged view for the current window (always true
// single-process). A window missing a peer's rows reads as a phantom
// imbalance, so consumers should skip it.
func (a *AutoController) TelemetryCovered() bool {
	if a.cluster == nil {
		return true
	}
	return a.cluster.covered()
}

// Decisions returns the reconfigurations issued so far.
func (a *AutoController) Decisions() []Decision {
	a.dmu.Lock()
	defer a.dmu.Unlock()
	return append([]Decision(nil), a.decisions...)
}

// Current returns the assignment the controller believes is in effect (or
// being installed, while a plan executes).
func (a *AutoController) Current() Assignment {
	a.dmu.Lock()
	defer a.dmu.Unlock()
	return append(Assignment(nil), a.current...)
}
