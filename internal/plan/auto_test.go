package plan_test

import (
	"runtime"
	"sync"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

// TestAutoControllerRebalancesSkew closes the whole loop on a real
// dataflow: a skewed stream hammers bins that all start on worker 0, the
// meter observes it, the LoadBalance policy proposes a spread, and the
// AutoController installs it — after which the hot bins live elsewhere and
// the counts are still exact.
func TestAutoControllerRebalancesSkew(t *testing.T) {
	const (
		workers = 2
		logBins = 3
		bins    = 1 << logBins
		epochs  = 600
		perTick = 16
	)
	meter := core.NewLoadMeter(workers, logBins)

	var mu sync.Mutex
	counts := map[uint64]uint64{}
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	handle := &core.Handle[uint64, core.MapState[uint64, uint64], core.KV[uint64, uint64]]{}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := core.Unary(w,
			core.Config{Name: "skew-count", LogBins: logBins, Meter: meter},
			ctlStream, data,
			// Identity binning: key k lands in bin k, so the skew below is
			// fully controlled.
			func(k uint64) uint64 { return k << (64 - logBins) },
			func() *core.MapState[uint64, uint64] {
				return &core.MapState[uint64, uint64]{M: make(map[uint64]uint64)}
			},
			func(tm core.Time, k uint64, s *core.MapState[uint64, uint64], _ *core.Notificator[uint64, core.MapState[uint64, uint64], core.KV[uint64, uint64]], emit func(core.KV[uint64, uint64])) {
				s.M[k]++
				emit(core.KV[uint64, uint64]{Key: k, Val: s.M[k]})
			}, handle)
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, out, dataflow.Pipeline[core.KV[uint64, uint64]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(_ core.Time, kvs []core.KV[uint64, uint64]) {
				mu.Lock()
				for _, kv := range kvs {
					if kv.Val > counts[kv.Key] {
						counts[kv.Key] = kv.Val
					}
				}
				mu.Unlock()
			})
		})
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	initial := plan.Initial(bins, workers)
	auto := plan.NewAutoController(ctlIns, probe, initial, plan.AutoOptions{
		Meter:       meter,
		Policy:      plan.LoadBalance{Hysteresis: 0.2, MinRecords: 64},
		Strategy:    plan.Fluid,
		SampleEvery: 50,
		Cooldown:    100,
	})

	// Skew: every record hits an even bin — the round-robin initial
	// assignment puts all even bins on worker 0.
	sent := uint64(0)
	expect := map[uint64]uint64{}
	for epoch := core.Time(1); epoch <= epochs; epoch++ {
		for w := 0; w < workers; w++ {
			for i := 0; i < perTick; i++ {
				k := uint64(2 * ((int(epoch) + w + i) % (bins / 2)))
				dataIns[w].SendAt(epoch, k)
				sent++
				expect[k]++
			}
		}
		auto.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		// Pace the driver so completions are observed within the budget.
		for probe.Frontier()+8 < epoch {
			runtime.Gosched()
		}
	}
	// Let any in-flight plan finish before closing.
	for epoch := core.Time(epochs + 1); !auto.Idle() && epoch < epochs+5000; epoch++ {
		auto.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		runtime.Gosched()
	}
	auto.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()

	decisions := auto.Decisions()
	if len(decisions) == 0 {
		t.Fatal("auto controller never acted on the skew")
	}
	for _, d := range decisions {
		if d.Moves == 0 || d.Steps == 0 {
			t.Errorf("decision with empty plan: %+v", d)
		}
		if d.Policy != "load-balance" {
			t.Errorf("decision from policy %q", d.Policy)
		}
	}
	// The final assignment must have shed hot bins from worker 0.
	final := auto.Current()
	movedHot := 0
	for b := 0; b < bins; b += 2 {
		if final[b] != 0 {
			movedHot++
		}
	}
	if movedHot == 0 {
		t.Errorf("no hot bin left worker 0: final assignment %v", final)
	}
	// Correctness under autonomous migration: counts are exact.
	mu.Lock()
	defer mu.Unlock()
	for k, want := range expect {
		if counts[k] != want {
			t.Errorf("count[%d] = %d, want %d", k, counts[k], want)
		}
	}
	// The meter saw every application.
	if got := meter.Snapshot(nil).TotalRecs(); got != sent {
		t.Errorf("meter saw %d records, sent %d", got, sent)
	}
}

// TestAutoControllerCooldown: after a decision, no further decision can be
// taken for Cooldown idle ticks even if the load stays skewed.
func TestAutoControllerCooldown(t *testing.T) {
	const workers, logBins = 2, 2
	meter := core.NewLoadMeter(workers, logBins)

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		out := core.Unary(w,
			core.Config{Name: "cool-count", LogBins: logBins, Meter: meter},
			ctlStream, data,
			func(k uint64) uint64 { return k << (64 - logBins) },
			func() *uint64 { return new(uint64) },
			func(tm core.Time, k uint64, s *uint64, _ *core.Notificator[uint64, uint64, uint64], emit func(uint64)) {
				*s++
			}, nil)
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	auto := plan.NewAutoController(ctlIns, probe, plan.Initial(1<<logBins, workers), plan.AutoOptions{
		Meter:       meter,
		Policy:      alwaysMove{},
		Strategy:    plan.AllAtOnce,
		SampleEvery: 10,
		Cooldown:    1 << 30, // effectively infinite
	})
	for epoch := core.Time(1); epoch <= 300; epoch++ {
		dataIns[0].SendAt(epoch, 0)
		auto.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		for probe.Frontier()+8 < epoch {
			runtime.Gosched()
		}
	}
	for epoch := core.Time(301); !auto.Idle() && epoch < 5000; epoch++ {
		auto.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		runtime.Gosched()
	}
	auto.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()
	if n := len(auto.Decisions()); n != 1 {
		t.Errorf("cooldown violated: %d decisions, want exactly 1", n)
	}
}

// alwaysMove is a test policy that always flips bin 0 to the other worker.
type alwaysMove struct{}

func (alwaysMove) Name() string { return "always-move" }

func (alwaysMove) Target(current plan.Assignment, _ *core.LoadSnapshot) (plan.Assignment, bool) {
	target := append(plan.Assignment(nil), current...)
	target[0] = 1 - target[0]
	return target, true
}
