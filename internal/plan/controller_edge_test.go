package plan_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
	"megaphone/internal/plan"
)

// ctlRig is a minimal dataflow for exercising the Controller in isolation:
// the probe watches a plain data input (its frontier is exactly what the
// test advances it to), and the control stream drains into a counting sink.
type ctlRig struct {
	exec  *dataflow.Execution
	data  *dataflow.InputHandle[int]
	ctlIn []*dataflow.InputHandle[core.Move]
	probe *dataflow.Probe
	moves *atomic.Int64 // control commands observed downstream
}

func newCtlRig(t *testing.T) *ctlRig {
	t.Helper()
	rig := &ctlRig{moves: &atomic.Int64{}}
	rig.exec = dataflow.NewExecution(dataflow.Config{Workers: 1})
	rig.exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		rig.ctlIn = append(rig.ctlIn, ctl)
		operators.Sink(w, "ctl-sink", ctlStream, func(_ core.Time, ms []core.Move) {
			rig.moves.Add(int64(len(ms)))
		})
		in, data := dataflow.NewInput[int](w, "data")
		rig.data = in
		rig.probe = dataflow.NewProbe(w, data)
	})
	rig.exec.Start()
	return rig
}

// waitFrontier spins until the probed frontier passes want (or is None).
func (r *ctlRig) waitFrontier(t *testing.T, want core.Time) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		f := r.probe.Frontier()
		if f > want || f == core.None {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("frontier stuck at %v awaiting > %v", f, want)
		}
		runtime.Gosched()
	}
}

func (r *ctlRig) shutdown(ctl *plan.Controller) {
	ctl.Close()
	r.data.Close()
	r.exec.Wait()
}

// twoMovePlan builds a plan with one move per step under Fluid.
func twoMovePlan() plan.Plan {
	return plan.Build(plan.Fluid,
		plan.Assignment{0, 1}, plan.Assignment{1, 0}, 0)
}

// TestControllerEmptyPlan: starting an empty plan leaves the controller
// idle, never reports a span, and ticking remains harmless.
func TestControllerEmptyPlan(t *testing.T) {
	rig := newCtlRig(t)
	ctl := plan.NewController(rig.ctlIn, rig.probe)
	ctl.Start(plan.Plan{})
	if !ctl.Idle() {
		t.Fatal("controller busy after empty plan")
	}
	for e := core.Time(1); e <= 5; e++ {
		ctl.Tick(e)
		rig.data.AdvanceTo(e + 1)
	}
	if _, _, ok := ctl.Span(); ok {
		t.Error("empty plan reported a span")
	}
	if n := rig.moves.Load(); n != 0 {
		t.Errorf("empty plan sent %d moves", n)
	}
	rig.shutdown(ctl)
}

// TestControllerSingleStepOneTick: a one-step plan issues on the first tick
// and completes on the very next tick once the frontier has passed the
// issue epoch.
func TestControllerSingleStepOneTick(t *testing.T) {
	rig := newCtlRig(t)
	ctl := plan.NewController(rig.ctlIn, rig.probe)
	var issued, done []core.Time
	ctl.OnStepIssued = func(step int, tm core.Time) { issued = append(issued, tm) }
	ctl.OnStepDone = func(step int, tm core.Time) { done = append(done, tm) }

	ctl.Start(plan.Plan{Steps: []plan.Step{{Moves: []core.Move{{Bin: 0, Worker: 1}}}}})
	ctl.Tick(1) // issues the step at epoch 1
	rig.data.AdvanceTo(3)
	rig.waitFrontier(t, 1)
	ctl.Tick(2) // observes completion
	if !ctl.Idle() {
		t.Fatal("single-step plan not complete after one observed completion")
	}
	if len(issued) != 1 || issued[0] != 1 {
		t.Errorf("issued = %v, want [1]", issued)
	}
	if len(done) != 1 || done[0] != 2 {
		t.Errorf("done = %v, want [2]", done)
	}
	if start, end, ok := ctl.Span(); !ok || start != 1 || end != 2 {
		t.Errorf("span = (%v, %v, %v), want (1, 2, true)", start, end, ok)
	}
	rig.shutdown(ctl)
}

// TestControllerFrontierNoneMidPlan: when the probed computation drains to
// the empty frontier (core.None) while a plan is mid-flight, the controller
// treats outstanding steps as complete and finishes the plan instead of
// hanging.
func TestControllerFrontierNoneMidPlan(t *testing.T) {
	rig := newCtlRig(t)
	ctl := plan.NewController(rig.ctlIn, rig.probe)
	ctl.Start(twoMovePlan())
	ctl.Tick(1) // step 0 issued
	// The probed input drains entirely: frontier goes to None mid-plan.
	rig.data.Close()
	rig.waitFrontier(t, core.None-1)
	ctl.Tick(2) // step 0 done (None), step 1 issued
	ctl.Tick(3) // step 1 done
	if !ctl.Idle() {
		t.Fatal("plan did not complete against a drained probe")
	}
	if start, end, ok := ctl.Span(); !ok || start != 1 || end != 3 {
		t.Errorf("span = (%v, %v, %v), want (1, 3, true)", start, end, ok)
	}
	ctl.Close()
	rig.exec.Wait()
}

// TestControllerBackToBackStart: a second Start right after completion runs
// the new plan; a Start while active panics.
func TestControllerBackToBackStart(t *testing.T) {
	rig := newCtlRig(t)
	ctl := plan.NewController(rig.ctlIn, rig.probe)

	run := func(base core.Time) {
		ctl.Start(plan.Plan{Steps: []plan.Step{{Moves: []core.Move{{Bin: 0, Worker: 1}}}}})
		if ctl.Idle() {
			t.Fatal("controller idle right after Start")
		}
		// A concurrent Start must panic while the plan is active.
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Start while active did not panic")
				}
			}()
			ctl.Start(twoMovePlan())
		}()
		ctl.Tick(base)
		rig.data.AdvanceTo(base + 2)
		rig.waitFrontier(t, base)
		ctl.Tick(base + 1)
		if !ctl.Idle() {
			t.Fatalf("plan starting at %v did not complete", base)
		}
	}
	run(1)
	run(3) // back-to-back: reuses the controller immediately after completion
	if start, end, ok := ctl.Span(); !ok || start != 3 || end != 4 {
		t.Errorf("span after second plan = (%v, %v, %v), want (3, 4, true)", start, end, ok)
	}
	if n := rig.moves.Load(); n != 2 {
		t.Errorf("observed %d moves downstream, want 2", n)
	}
	rig.shutdown(ctl)
}

// TestControllerCallbackOrdering: under concurrent Idle/Span readers (run
// with -race), OnStepIssued/OnStepDone strictly alternate per step and
// never overlap: issued(i) <= done(i) <= issued(i+1).
func TestControllerCallbackOrdering(t *testing.T) {
	rig := newCtlRig(t)
	ctl := plan.NewController(rig.ctlIn, rig.probe)

	type ev struct {
		kind string
		step int
		at   core.Time
	}
	var evs []ev
	ctl.OnStepIssued = func(step int, tm core.Time) { evs = append(evs, ev{"issued", step, tm}) }
	ctl.OnStepDone = func(step int, tm core.Time) { evs = append(evs, ev{"done", step, tm}) }

	// Hammer the read-side API from another goroutine while the plan runs.
	stop := make(chan struct{})
	raced := make(chan struct{})
	go func() {
		defer close(raced)
		for {
			select {
			case <-stop:
				return
			default:
				ctl.Idle()
				ctl.Span()
			}
		}
	}()

	p := plan.Build(plan.Fluid, plan.Initial(8, 2), plan.Rebalance(8, []int{1}), 0)
	ctl.Start(p)
	epoch := core.Time(1)
	for ; !ctl.Idle() && epoch < 5000; epoch++ {
		ctl.Tick(epoch)
		rig.data.AdvanceTo(epoch + 1)
		rig.waitFrontier(t, epoch)
	}
	close(stop)
	<-raced
	if !ctl.Idle() {
		t.Fatal("plan did not complete")
	}

	want := 0 // next expected event index: alternate issued/done per step
	for i, e := range evs {
		step, kind := want/2, "issued"
		if want%2 == 1 {
			kind = "done"
		}
		if e.kind != kind || e.step != step {
			t.Fatalf("event %d = %+v, want %s step %d (history %+v)", i, e, kind, step, evs)
		}
		if i > 0 && e.at < evs[i-1].at {
			t.Fatalf("event %d at %v before predecessor at %v", i, e.at, evs[i-1].at)
		}
		want++
	}
	if want != 2*len(p.Steps) {
		t.Fatalf("saw %d events, want %d", want, 2*len(p.Steps))
	}
	rig.shutdown(ctl)
}
