package plan

import (
	"fmt"

	"megaphone/internal/core"
)

// PrefixTable is the Section 4.4 alternative to flat binning: a
// longest-prefix-match routing table over the key-hash space, as in Internet
// routing tables. Instead of a fixed power-of-two array of bins, routes are
// (prefix, length) pairs; a key follows the longest matching prefix of its
// hash. Prefixes can be split into two children (refining migration
// granularity where state is hot) and sibling routes merged back, which is
// exactly the run-time re-binning the paper's binning cannot do.
//
// PrefixTable is a planning-side structure: it compiles to per-bin
// assignments at a chosen granularity, so plans built from it drive the
// unmodified core operators.
type PrefixTable struct {
	routes map[prefix]int // prefix -> worker
}

// prefix is the top Len bits of a hash, stored left-aligned in Bits.
type prefix struct {
	Bits uint64
	Len  int
}

// NewPrefixTable returns a table with a single default route (the empty
// prefix) to worker 0.
func NewPrefixTable() *PrefixTable {
	return &PrefixTable{routes: map[prefix]int{{0, 0}: 0}}
}

// Lookup returns the worker owning hash under longest-prefix match.
func (t *PrefixTable) Lookup(hash uint64) int {
	for l := 64; l >= 0; l-- {
		p := prefix{Bits: topBits(hash, l), Len: l}
		if w, ok := t.routes[p]; ok {
			return w
		}
	}
	panic("plan: prefix table has no default route")
}

func topBits(hash uint64, l int) uint64 {
	if l == 0 {
		return 0
	}
	return hash >> (64 - uint(l)) << (64 - uint(l))
}

// Insert installs a route for the top `length` bits of hash.
func (t *PrefixTable) Insert(hash uint64, length, worker int) {
	if length < 0 || length > 64 {
		panic(fmt.Sprintf("plan: prefix length %d out of range", length))
	}
	t.routes[prefix{Bits: topBits(hash, length), Len: length}] = worker
}

// Split refines the route at (hash, length) into its two children, assigning
// the given workers to the 0- and 1-extension respectively. It reports
// whether a route existed to split.
func (t *PrefixTable) Split(hash uint64, length, worker0, worker1 int) bool {
	p := prefix{Bits: topBits(hash, length), Len: length}
	if _, ok := t.routes[p]; !ok {
		return false
	}
	if length >= 64 {
		return false
	}
	delete(t.routes, p)
	child0 := prefix{Bits: p.Bits, Len: length + 1}
	child1 := prefix{Bits: p.Bits | 1<<(63-uint(length)), Len: length + 1}
	t.routes[child0] = worker0
	t.routes[child1] = worker1
	return true
}

// Merge collapses the two children of (hash, length) back into one route to
// worker. It reports whether both children existed.
func (t *PrefixTable) Merge(hash uint64, length, worker int) bool {
	if length >= 64 {
		return false
	}
	bits := topBits(hash, length)
	child0 := prefix{Bits: bits, Len: length + 1}
	child1 := prefix{Bits: bits | 1<<(63-uint(length)), Len: length + 1}
	_, ok0 := t.routes[child0]
	_, ok1 := t.routes[child1]
	if !ok0 || !ok1 {
		return false
	}
	delete(t.routes, child0)
	delete(t.routes, child1)
	t.routes[prefix{Bits: bits, Len: length}] = worker
	return true
}

// Len returns the number of installed routes.
func (t *PrefixTable) Len() int { return len(t.routes) }

// Compile renders the table as a per-bin assignment at 2^logBins
// granularity, so that plans built from prefix routes can drive the core
// operators' flat bins.
func (t *PrefixTable) Compile(logBins int) Assignment {
	bins := 1 << uint(logBins)
	a := make(Assignment, bins)
	for b := 0; b < bins; b++ {
		hash := uint64(b) << (64 - uint(logBins))
		a[b] = t.Lookup(hash)
	}
	return a
}

// MovesTo returns the moves that reconfigure a compiled assignment `from`
// into this table's routing at the same granularity.
func (t *PrefixTable) MovesTo(from Assignment, logBins int) []core.Move {
	return Diff(from, t.Compile(logBins))
}
