package plan

import (
	"testing"

	"megaphone/internal/core"
)

// nopBus satisfies ControlBus for tests that only exercise the local half of
// the control plane (heartbeat clocks, election) and never need delivery.
type nopBus struct{}

func (nopBus) BroadcastControl([]byte)             {}
func (nopBus) SetControlHandler(func(int, []byte)) {}

// newSuspectState builds a clusterState for process `proc` of a three-process
// roster, so leaderIndex scans real lower-indexed peers.
func newSuspectState(proc, suspectAfter int) *clusterState {
	const procs, wpp, logBins = 3, 2, 2
	meter := core.NewLoadMeter(procs*wpp, logBins)
	return newClusterState(meter, ClusterOptions{
		Bus:            nopBus{},
		Procs:          procs,
		Proc:           proc,
		WorkersPerProc: wpp,
		SuspectAfter:   suspectAfter,
	})
}

// heard simulates the inbound fold path of a load delta from process q: the
// handler stores the current local sample clock (cluster.go onControl).
func heard(cs *clusterState, q int) {
	cs.lastHeard[q].Store(cs.samples.Load())
	cs.heard[q].Store(true)
}

// TestSuspicionNeverWithRegularBeats pins the healthy side of the suspicion
// boundary: a peer heard from at least once every SuspectAfter-1 sampling
// windows is never suspected, so leadership never strays from it.
func TestSuspicionNeverWithRegularBeats(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(2, suspectAfter)
	for w := 1; w <= 12*suspectAfter; w++ {
		cs.sample()
		if w%(suspectAfter-1) == 0 {
			heard(cs, 0)
			heard(cs, 1)
		}
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d: leaderIndex = %d; a peer beating every %d windows must never be suspected",
				w, got, suspectAfter-1)
		}
	}
}

// TestSuspicionBoundaryExact pins the exact suspicion edge: a peer that goes
// silent survives SuspectAfter windows of silence and is suspected on the
// next one (silence strictly greater than SuspectAfter windows).
func TestSuspicionBoundaryExact(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(2, suspectAfter)
	heard(cs, 0) // last sign of life at sample clock 0
	heard(cs, 1)
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1) // peer 1 stays chatty; only peer 0 goes silent
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d of %d: peer 0 suspected one window early (leaderIndex = %d)",
				w, suspectAfter, got)
		}
	}
	cs.sample()
	heard(cs, 1)
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("window %d: peer 0 still unsuspected after more than SuspectAfter silent windows (leaderIndex = %d)",
			suspectAfter+1, got)
	}
}

// TestSuspicionLateBeatUnsuspects pins recovery: a suspected peer that
// resumes its heartbeat is unsuspected at once and takes leadership back.
func TestSuspicionLateBeatUnsuspects(t *testing.T) {
	const suspectAfter = 3
	cs := newSuspectState(2, suspectAfter)
	for w := 1; w <= suspectAfter+2; w++ {
		cs.sample()
		heard(cs, 1)
	}
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("setup: peer 0 should be suspected (leaderIndex = %d)", got)
	}
	heard(cs, 0) // the late beat
	if got := cs.leaderIndex(); got != 0 {
		t.Fatalf("after a late beat peer 0 must be unsuspected (leaderIndex = %d)", got)
	}
	// And suspicion re-arms from the new clock, not the old one.
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1)
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d after recovery: suspicion re-armed early (leaderIndex = %d)", w, got)
		}
	}
	cs.sample()
	heard(cs, 1)
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("suspicion did not re-arm after recovery (leaderIndex = %d)", got)
	}
}

// TestSuspicionCoverageGate pins covered(): a silent peer that never sent
// telemetry blocks coverage until its silence exceeds the suspect window.
func TestSuspicionCoverageGate(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(0, suspectAfter)
	heard(cs, 1)
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1)
		if cs.covered() {
			t.Fatalf("window %d: covered with peer 2 unheard and not yet suspect", w)
		}
	}
	cs.sample()
	heard(cs, 1)
	if !cs.covered() {
		t.Fatal("peer 2 silent past the suspect window must count as covered (suspicion stands in for telemetry)")
	}
}
