package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/progress"
)

// nopBus satisfies ControlBus for tests that only exercise the local half of
// the control plane (heartbeat clocks, election) and never need delivery.
type nopBus struct{}

func (nopBus) BroadcastControl([]byte)             {}
func (nopBus) SetControlHandler(func(int, []byte)) {}

// newSuspectState builds a clusterState for process `proc` of a three-process
// roster, so leaderIndex scans real lower-indexed peers.
func newSuspectState(proc, suspectAfter int) *clusterState {
	const procs, wpp, logBins = 3, 2, 2
	meter := core.NewLoadMeter(procs*wpp, logBins)
	return newClusterState(meter, ClusterOptions{
		Bus:            nopBus{},
		Procs:          procs,
		Proc:           proc,
		WorkersPerProc: wpp,
		SuspectAfter:   suspectAfter,
	})
}

// heard simulates the inbound fold path of a load delta from process q: the
// handler stores the current local sample clock (cluster.go onControl).
func heard(cs *clusterState, q int) {
	cs.lastHeard[q].Store(cs.samples.Load())
	cs.heard[q].Store(true)
}

// TestSuspicionNeverWithRegularBeats pins the healthy side of the suspicion
// boundary: a peer heard from at least once every SuspectAfter-1 sampling
// windows is never suspected, so leadership never strays from it.
func TestSuspicionNeverWithRegularBeats(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(2, suspectAfter)
	for w := 1; w <= 12*suspectAfter; w++ {
		cs.sample()
		if w%(suspectAfter-1) == 0 {
			heard(cs, 0)
			heard(cs, 1)
		}
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d: leaderIndex = %d; a peer beating every %d windows must never be suspected",
				w, got, suspectAfter-1)
		}
	}
}

// TestSuspicionBoundaryExact pins the exact suspicion edge: a peer that goes
// silent survives SuspectAfter windows of silence and is suspected on the
// next one (silence strictly greater than SuspectAfter windows).
func TestSuspicionBoundaryExact(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(2, suspectAfter)
	heard(cs, 0) // last sign of life at sample clock 0
	heard(cs, 1)
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1) // peer 1 stays chatty; only peer 0 goes silent
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d of %d: peer 0 suspected one window early (leaderIndex = %d)",
				w, suspectAfter, got)
		}
	}
	cs.sample()
	heard(cs, 1)
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("window %d: peer 0 still unsuspected after more than SuspectAfter silent windows (leaderIndex = %d)",
			suspectAfter+1, got)
	}
}

// TestSuspicionLateBeatUnsuspects pins recovery: a suspected peer that
// resumes its heartbeat is unsuspected at once and takes leadership back.
func TestSuspicionLateBeatUnsuspects(t *testing.T) {
	const suspectAfter = 3
	cs := newSuspectState(2, suspectAfter)
	for w := 1; w <= suspectAfter+2; w++ {
		cs.sample()
		heard(cs, 1)
	}
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("setup: peer 0 should be suspected (leaderIndex = %d)", got)
	}
	heard(cs, 0) // the late beat
	if got := cs.leaderIndex(); got != 0 {
		t.Fatalf("after a late beat peer 0 must be unsuspected (leaderIndex = %d)", got)
	}
	// And suspicion re-arms from the new clock, not the old one.
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1)
		if got := cs.leaderIndex(); got != 0 {
			t.Fatalf("window %d after recovery: suspicion re-armed early (leaderIndex = %d)", w, got)
		}
	}
	cs.sample()
	heard(cs, 1)
	if got := cs.leaderIndex(); got != 1 {
		t.Fatalf("suspicion did not re-arm after recovery (leaderIndex = %d)", got)
	}
}

// TestSuspicionCoverageGate pins covered(): a silent peer that never sent
// telemetry blocks coverage until its silence exceeds the suspect window.
func TestSuspicionCoverageGate(t *testing.T) {
	const suspectAfter = 4
	cs := newSuspectState(0, suspectAfter)
	heard(cs, 1)
	for w := 1; w <= suspectAfter; w++ {
		cs.sample()
		heard(cs, 1)
		if cs.covered() {
			t.Fatalf("window %d: covered with peer 2 unheard and not yet suspect", w)
		}
	}
	cs.sample()
	heard(cs, 1)
	if !cs.covered() {
		t.Fatal("peer 2 silent past the suspect window must count as covered (suspicion stands in for telemetry)")
	}
}

// nullFabric satisfies Fabric for declaration-gate tests that never run a
// barrier: only the decision-time calls (RetirePeer, InstallView,
// SetMembershipEpoch) land, and nothing observes them.
type nullFabric struct{}

func (nullFabric) Pause()                               {}
func (nullFabric) Resume()                              {}
func (nullFabric) HoldInventory(b *progress.Batch)      {}
func (nullFabric) PurgeDeferred(cut core.Time)          {}
func (nullFabric) AppliedBounds() map[int]core.Time     { return nil }
func (nullFabric) ResetProgress(b *progress.Batch)      {}
func (nullFabric) InstallView(from core.Time, a []bool) {}
func (nullFabric) Activate(p int)                       {}
func (nullFabric) RetirePeer(p int)                     {}
func (nullFabric) SetMembershipEpoch(e uint64)          {}
func (nullFabric) DataCounters() (sent, recv []uint64)  { return nil, nil }

// writeManifests writes manifest files for the given workers at one epoch,
// each recording the given live roster (nil = full roster). Writing a strict
// subset of a manifest's live set models a checkpoint caught mid-commit.
func writeManifests(t *testing.T, dir string, epoch core.Time, peers int, workers, live []int) {
	t.Helper()
	ed := filepath.Join(dir, "count", fmt.Sprintf("epoch-%d", epoch))
	if err := os.MkdirAll(ed, 0o777); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		m := core.Manifest{Op: "count", Epoch: uint64(epoch), Worker: w, Peers: peers, Live: live, Codec: "binary"}
		data, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(ed, fmt.Sprintf("manifest-w%d.json", w)), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// newDeclTicker builds a membership controller for process 1 of a
// three-process roster whose peers stay silent: ticking it alone walks
// process 0 through suspicion into death declaration, gated on a complete
// checkpoint in dir.
func newDeclTicker(t *testing.T, dir string) *MembershipController {
	t.Helper()
	return NewMembershipController(MembershipOptions{
		Bus:            nopBus{},
		Fabric:         nullFabric{},
		Frontier:       func() core.Time { return core.None },
		Procs:          3,
		Proc:           1,
		WorkersPerProc: 2,
		Bins:           8,
		SuspectAfter:   2,
		DeathAfter:     2,
		Margin:         3,
		CheckpointDir:  dir,
		Logf:           t.Logf,
	})
}

// TestDeathDeclarationWaitsForCompleteEpoch pins the declaration gate against
// a checkpoint caught mid-commit: suspicion escalates to death-qualification
// while only some of an epoch's live workers have committed their manifests,
// and the declaration must wait — an epoch is complete only when every worker
// the manifests record as live has committed. Once the missing manifest
// lands, the declaration proceeds with that epoch as the restore cut.
func TestDeathDeclarationWaitsForCompleteEpoch(t *testing.T) {
	const peers = 6 // 3 procs * 2 workers
	dir := t.TempDir()
	mc := newDeclTicker(t, dir)

	// A full-roster checkpoint at epoch 2, missing worker 5's manifest: the
	// crash fired mid-commit. Silence qualifies process 0 for death at tick
	// 5; the incomplete epoch must hold the declaration indefinitely.
	writeManifests(t, dir, 2, peers, []int{0, 1, 2, 3, 4}, nil)
	e := core.Time(1)
	for ; e <= 30; e++ {
		mc.Tick(e)
		if tr := mc.NextCommit(); tr != nil {
			t.Fatalf("tick %d: death declared against an incomplete checkpoint epoch: %+v", e, tr)
		}
	}

	// The straggler commits: the epoch is now complete under the roster the
	// manifests record, and the declaration must follow.
	writeManifests(t, dir, 2, peers, []int{5}, nil)
	var tr *Transition
	for ; e <= 60; e++ {
		mc.Tick(e)
		if tr = mc.NextCommit(); tr != nil {
			break
		}
	}
	if tr == nil {
		t.Fatal("death never declared after the checkpoint epoch completed")
	}
	if tr.Kind != TransitionCrash || tr.Slot != 0 || tr.Ckpt != 2 {
		t.Fatalf("crash decision %+v, want process 0 dead with restore cut at epoch 2", tr)
	}
}

// TestDeathDeclarationAcceptsShrunkRoster pins the other half of roster-aware
// completeness: a checkpoint whose manifests record a shrunk live roster is
// complete once exactly those live workers committed — the absent slots'
// missing manifests must not hold the declaration (they will never arrive).
func TestDeathDeclarationAcceptsShrunkRoster(t *testing.T) {
	const peers = 6
	dir := t.TempDir()
	mc := newDeclTicker(t, dir)

	// Workers 2..5 (processes 1 and 2) are the recorded live roster; the
	// suspect's workers 0 and 1 have no manifests, by design.
	writeManifests(t, dir, 3, peers, []int{2, 3, 4, 5}, []int{2, 3, 4, 5})
	var tr *Transition
	for e := core.Time(1); e <= 60; e++ {
		mc.Tick(e)
		if tr = mc.NextCommit(); tr != nil {
			break
		}
	}
	if tr == nil {
		t.Fatal("death never declared against a complete shrunk-roster checkpoint")
	}
	if tr.Kind != TransitionCrash || tr.Slot != 0 || tr.Ckpt != 3 {
		t.Fatalf("crash decision %+v, want process 0 dead with restore cut at epoch 3", tr)
	}
}
