package plan

import (
	"testing"

	"megaphone/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: control buses,
// autoscaler loops, and cluster harness processes all must shut down with
// the runs that started them.
func TestMain(m *testing.M) { leakcheck.Main(m) }
