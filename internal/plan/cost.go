package plan

import "megaphone/internal/core"

// CostModel decides whether a proposed reconfiguration pays for itself,
// following Volnes et al. ("To Migrate or not to Migrate"): a migration is
// worth issuing only when the imbalance it recovers over a credible horizon
// exceeds the one-time cost of moving the state. Policies stay pure load
// balancers; the model is a gate the AutoController applies to their output,
// and a gated-off decision is still recorded (Declined) so experiments can
// assert that restraint happened.
//
// Everything is denominated in service nanoseconds, the meter's own unit:
//
//	cost = VolumeRecs·MigrateNanosPerRec + StallNanos
//	gain = (max worker nanos under current − max worker nanos under target)
//	       per window, credited over Horizon windows
//
// VolumeRecs approximates state size by the cumulative records routed to the
// moved bins — every applied record left state behind, so the bins that
// absorbed the most records carry the most state.
type CostModel struct {
	// MigrateNanosPerRec prices extracting, shipping and installing one
	// record's worth of state (default 250ns — loopback TCP plus codec work;
	// calibrate upward for real networks or fat values).
	MigrateNanosPerRec uint64
	// StallNanos is the fixed disturbance of one reconfiguration: control
	// broadcast, frontier waits, cache refill (default 1e6 = 1ms, roughly one
	// epoch of disruption at harness cadence).
	StallNanos uint64
	// HorizonWindows is how many future sampling windows the projected gain
	// is credited for (default 8). A short horizon demands migrations that
	// repay quickly; an infinite one would accept any positive gain.
	HorizonWindows int
	// NominalServiceNanos prices one record when the window carries no
	// measured service time (records counted but nanos zero — synthetic
	// workloads with free apply functions). Default 100.
	NominalServiceNanos uint64
	// CapToStability caps the credited horizon at the observed stability of
	// the load shape (the number of consecutive windows the same worker has
	// been hottest). A hot set that rotated one window ago earns a 1-window
	// horizon: if it is about to rotate again, chasing it is a losing trade.
	CapToStability bool
}

// DefaultCostModel returns the model with all defaults.
func DefaultCostModel() *CostModel {
	return &CostModel{}
}

// Decline reasons recorded in Decision.Reason.
const (
	ReasonNoMoves = "no-moves"
	ReasonNoGain  = "no-projected-gain"
	ReasonVolume  = "volume-exceeds-recovery"
)

// Verdict is one cost-model evaluation.
type Verdict struct {
	// Migrate reports whether the reconfiguration is worth issuing.
	Migrate bool
	// Reason is empty when Migrate, else one of the Reason constants.
	Reason string
	// VolumeRecs is the cumulative record count behind the moved bins (the
	// state-size proxy priced by MigrateNanosPerRec).
	VolumeRecs uint64
	// CostNanos and GainNanos are the two sides of the trade: one-time cost
	// vs gain credited over Horizon windows.
	CostNanos, GainNanos uint64
	// Horizon is the number of windows the gain was credited for (after any
	// stability cap).
	Horizon int
}

func (m *CostModel) migrateNanosPerRec() uint64 {
	if m.MigrateNanosPerRec == 0 {
		return 250
	}
	return m.MigrateNanosPerRec
}

func (m *CostModel) stallNanos() uint64 {
	if m.StallNanos == 0 {
		return 1_000_000
	}
	return m.StallNanos
}

func (m *CostModel) horizonWindows() int {
	if m.HorizonWindows <= 0 {
		return 8
	}
	return m.HorizonWindows
}

func (m *CostModel) nominalServiceNanos() uint64 {
	if m.NominalServiceNanos == 0 {
		return 100
	}
	return m.NominalServiceNanos
}

// Evaluate judges moving from current to target given the last window's load
// and the cumulative snapshot (for state volume). stabilityWindows is the
// number of consecutive windows the same worker has been hottest, ≥ 1; it
// only matters when CapToStability is set.
func (m *CostModel) Evaluate(current, target Assignment, window, cumulative *core.LoadSnapshot, stabilityWindows int) Verdict {
	moved := false
	var volume uint64
	for b := range current {
		if current[b] != target[b] {
			moved = true
			volume += cumulative.BinRecs[b]
		}
	}
	if !moved {
		return Verdict{Reason: ReasonNoMoves}
	}

	// Project each worker's service time under both assignments. When the
	// window carries no measured service time, fall back to records at the
	// nominal rate so synthetic workloads still get a meaningful projection.
	perWindowGain := m.projectedGain(current, target, window)

	horizon := m.horizonWindows()
	if m.CapToStability {
		if stabilityWindows < 1 {
			stabilityWindows = 1
		}
		if stabilityWindows < horizon {
			horizon = stabilityWindows
		}
	}
	v := Verdict{
		VolumeRecs: volume,
		CostNanos:  volume*m.migrateNanosPerRec() + m.stallNanos(),
		GainNanos:  perWindowGain * uint64(horizon),
		Horizon:    horizon,
	}
	switch {
	case perWindowGain == 0:
		v.Reason = ReasonNoGain
	case v.GainNanos <= v.CostNanos:
		v.Reason = ReasonVolume
	default:
		v.Migrate = true
	}
	return v
}

// projectedGain returns the per-window reduction of the hottest worker's
// service time if the window's traffic repeated under target instead of
// current (0 when target is no better).
func (m *CostModel) projectedGain(current, target Assignment, window *core.LoadSnapshot) uint64 {
	var curLoad, tgtLoad []uint64
	if window.TotalNanos() > 0 {
		curLoad = window.NanosUnder(current, nil)
		tgtLoad = window.NanosUnder(target, nil)
	} else {
		nominal := m.nominalServiceNanos()
		curLoad = window.RecsUnder(current, nil)
		tgtLoad = window.RecsUnder(target, nil)
		for i := range curLoad {
			curLoad[i] *= nominal
			tgtLoad[i] *= nominal
		}
	}
	curMax := maxOf(curLoad)
	tgtMax := maxOf(tgtLoad)
	if tgtMax >= curMax {
		return 0
	}
	return curMax - tgtMax
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
