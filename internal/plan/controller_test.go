package plan_test

import (
	"runtime"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

// TestControllerPacesSteps drives a real miniature megaphone dataflow and
// checks that the controller issues one step per completion, in order, and
// reports the span once done.
func TestControllerPacesSteps(t *testing.T) {
	const workers = 2
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "data")
		dataIns = append(dataIns, in)
		out := core.StateMachine(w, core.Config{Name: "count", LogBins: 3},
			ctlStream, data,
			core.Mix64,
			func(k uint64, v int64, st *int64, emit func(int64)) {
				*st += v
				emit(*st)
			}, nil)
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	ctl := plan.NewController(ctlIns, probe)
	var issuedAt []core.Time
	var doneAt []core.Time
	ctl.OnStepIssued = func(step int, tm core.Time) { issuedAt = append(issuedAt, tm) }
	ctl.OnStepDone = func(step int, tm core.Time) { doneAt = append(doneAt, tm) }

	p := plan.Build(plan.Fluid, plan.Initial(8, workers), plan.Rebalance(8, []int{1}), 0)
	wantSteps := len(p.Steps)
	if wantSteps == 0 {
		t.Fatal("empty plan")
	}

	started := false
	for epoch := core.Time(1); epoch < 5000 && (!started || !ctl.Idle()); epoch++ {
		dataIns[int(epoch)%workers].SendAt(epoch, core.KV[uint64, int64]{Key: uint64(epoch % 16), Val: 1})
		if epoch == 5 {
			ctl.Start(p)
			started = true
		}
		ctl.Tick(epoch)
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		// Pace the driver so the output frontier keeps up; otherwise step
		// completions are never observed within the epoch budget.
		for probe.Frontier()+4 < epoch {
			runtime.Gosched()
		}
	}
	if !ctl.Idle() {
		t.Fatal("plan did not complete")
	}
	ctl.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()

	if len(issuedAt) != wantSteps {
		t.Fatalf("issued %d steps, want %d", len(issuedAt), wantSteps)
	}
	if len(doneAt) != wantSteps {
		t.Fatalf("done %d steps, want %d", len(doneAt), wantSteps)
	}
	for i := 1; i < len(issuedAt); i++ {
		if issuedAt[i] <= issuedAt[i-1] {
			t.Errorf("steps not strictly paced: %v", issuedAt)
		}
	}
	// Each step completes no earlier than its issue epoch.
	for i := range issuedAt {
		if doneAt[i] < issuedAt[i] {
			t.Errorf("step %d done at %v before issued at %v", i, doneAt[i], issuedAt[i])
		}
	}
	if start, end, ok := ctl.Span(); !ok || end < start {
		t.Errorf("span = (%v, %v, %v)", start, end, ok)
	}
}
