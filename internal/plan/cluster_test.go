package plan_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/plan"
)

// fakeHub wires N fakeBus endpoints into an in-memory cluster control
// channel with the same contract as dataflow.Mesh: per-receiver serialized
// handlers, frames buffered until the handler registers, broadcast never
// loops back to the sender. Delivery runs synchronously on the sender's
// goroutine, which both preserves per-sender FIFO (the seq-dedup in the
// control plane assumes it) and maximizes cross-goroutine shared-state
// traffic for the race detector.
type fakeHub struct {
	buses []*fakeBus
}

type fakeBus struct {
	hub  *fakeHub
	proc int

	mu      sync.Mutex
	handler func(from int, payload []byte)
	pending []fakeFrame
	// dead simulates a crashed process: its outbound frames vanish.
	dead atomic.Bool
}

type fakeFrame struct {
	from    int
	payload []byte
}

func newFakeHub(procs int) *fakeHub {
	h := &fakeHub{}
	for p := 0; p < procs; p++ {
		h.buses = append(h.buses, &fakeBus{hub: h, proc: p})
	}
	return h
}

func (b *fakeBus) BroadcastControl(payload []byte) {
	if b.dead.Load() {
		return
	}
	cp := append([]byte(nil), payload...)
	for _, peer := range b.hub.buses {
		if peer.proc != b.proc {
			peer.deliver(b.proc, cp)
		}
	}
}

func (b *fakeBus) deliver(from int, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.handler == nil {
		b.pending = append(b.pending, fakeFrame{from: from, payload: payload})
		return
	}
	b.handler(from, payload)
}

func (b *fakeBus) SetControlHandler(h func(from int, payload []byte)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handler = h
	for _, f := range b.pending {
		h(f.from, f.payload)
	}
	b.pending = nil
}

// miniProc is one simulated cluster process: its own two-worker execution
// (so its probe and control stream are real) plus an AutoController whose
// ClusterOptions ride the fake hub.
type miniProc struct {
	exec    *dataflow.Execution
	dataIns []*dataflow.InputHandle[uint64]
	auto    *plan.AutoController
	probe   *dataflow.Probe
}

func startMiniProc(t *testing.T, hub *fakeHub, proc, procs, workersPerProc, logBins int, onLead func(lead bool, epoch core.Time)) *miniProc {
	t.Helper()
	bins := 1 << logBins
	meter := core.NewLoadMeter(procs*workersPerProc, logBins)
	mp := &miniProc{}
	var ctlIns []*dataflow.InputHandle[core.Move]
	mp.exec = dataflow.NewExecution(dataflow.Config{Workers: workersPerProc})
	mp.exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		mp.dataIns = append(mp.dataIns, in)
		out := core.Unary(w,
			core.Config{Name: "elect-count", LogBins: logBins},
			ctlStream, data,
			func(k uint64) uint64 { return k << (64 - logBins) },
			func() *uint64 { return new(uint64) },
			func(tm core.Time, k uint64, s *uint64, _ *core.Notificator[uint64, uint64, uint64], emit func(uint64)) {
				*s++
			}, nil)
		p := dataflow.NewProbe(w, out)
		if w.Index() == 0 {
			mp.probe = p
		}
	})
	mp.exec.Start()
	mp.auto = plan.NewAutoController(ctlIns, mp.probe, plan.Initial(bins, workersPerProc), plan.AutoOptions{
		Meter:       meter,
		Policy:      alwaysMove{},
		Strategy:    plan.AllAtOnce,
		SampleEvery: 10,
		Cooldown:    20,
		Cluster: &plan.ClusterOptions{
			Bus:            hub.buses[proc],
			Procs:          procs,
			Proc:           proc,
			WorkersPerProc: workersPerProc,
			SuspectAfter:   3,
			OnLeadership:   onLead,
			Logf:           t.Logf,
		},
	})
	return mp
}

// tick drives one epoch: controller tick, input advance, and a bounded wait
// for the local frontier so the execution never runs unboundedly behind.
func (mp *miniProc) tick(epoch core.Time) {
	mp.auto.Tick(epoch)
	for _, h := range mp.dataIns {
		h.AdvanceTo(epoch + 1)
	}
	for mp.probe.Frontier()+8 < epoch {
		runtime.Gosched()
	}
}

// run drives the process's epoch loop on its own goroutine until stop is
// closed, then drains and shuts the execution down.
func (mp *miniProc) run(stop <-chan struct{}, afterTick func(epoch core.Time) bool) {
	epoch := core.Time(1)
	for {
		select {
		case <-stop:
			mp.shutdown(epoch)
			return
		default:
		}
		mp.tick(epoch)
		if afterTick != nil && afterTick(epoch) {
			mp.abandon()
			return
		}
		epoch++
	}
}

// shutdown lets any in-flight plan finish, then closes cleanly.
func (mp *miniProc) shutdown(epoch core.Time) {
	for ; !mp.auto.Idle() && epoch < 1_000_000; epoch++ {
		mp.auto.Tick(epoch)
		for _, h := range mp.dataIns {
			h.AdvanceTo(epoch + 1)
		}
		runtime.Gosched()
	}
	mp.auto.Close()
	for _, h := range mp.dataIns {
		h.Close()
	}
	mp.exec.Wait()
}

// abandon closes without waiting for plan completion: the process "died".
func (mp *miniProc) abandon() {
	mp.auto.Close()
	for _, h := range mp.dataIns {
		h.Close()
	}
	mp.exec.Wait()
}

// TestClusterControllerElectionFailover kills the lowest-index process the
// moment it issues its first plan and asserts the distributed control
// plane's safety story: process 1 (not 2) takes over after the suspect
// window, it issues nothing until the takeover guard clears (so its plans
// cannot conflict with the dead leader's in-flight one), and the survivors'
// decision logs agree. Run under -race: ticking goroutines, fake-bus
// delivery and assertions all overlap.
func TestClusterControllerElectionFailover(t *testing.T) {
	const procs, workersPerProc, logBins = 3, 2, 2
	hub := newFakeHub(procs)

	type leadEvent struct {
		proc  int
		lead  bool
		epoch core.Time
	}
	var leadMu sync.Mutex
	var leads []leadEvent
	onLead := func(proc int) func(bool, core.Time) {
		return func(lead bool, epoch core.Time) {
			leadMu.Lock()
			leads = append(leads, leadEvent{proc: proc, lead: lead, epoch: epoch})
			leadMu.Unlock()
		}
	}

	var mps [procs]*miniProc
	for p := 0; p < procs; p++ {
		mps[p] = startMiniProc(t, hub, p, procs, workersPerProc, logBins, onLead(p))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Keep the live processes' epoch clocks within ~1.5 sampling windows of
	// each other: failure detection counts local samples since a peer's last
	// heartbeat, so an artificially starved goroutine must not read as dead.
	var epochs [procs]atomic.Int64
	var alive [procs]atomic.Bool
	for p := range alive {
		alive[p].Store(true)
	}
	pace := func(p int, e core.Time) {
		epochs[p].Store(int64(e))
		for {
			lag := false
			for q := 0; q < procs; q++ {
				if q == p || !alive[q].Load() {
					continue
				}
				if int64(e) > epochs[q].Load()+15 {
					lag = true
				}
			}
			if !lag {
				return
			}
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Process 0 dies mid-plan: the first tick after its first decision is
	// issued (the plan is still executing), its heartbeats stop and its
	// loop exits without draining.
	var died atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		mps[0].run(stop, func(e core.Time) bool {
			if len(mps[0].auto.Decisions()) > 0 {
				hub.buses[0].dead.Store(true)
				alive[0].Store(false)
				died.Store(true)
				return true
			}
			pace(0, e)
			return false
		})
	}()
	for p := 1; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			mps[p].run(stop, func(e core.Time) bool {
				pace(p, e)
				return false
			})
		}()
	}

	// Let the survivors detect the death, elect process 1, and decide at
	// least once under the new leadership.
	deadline := time.After(30 * time.Second)
	for {
		if died.Load() {
			if hasOwnDecision(mps[1].auto.Decisions(), 1) {
				break
			}
		}
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("process 1 never decided after the takeover; its decisions: %+v", mps[1].auto.Decisions())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	// Leadership: process 1 took over, process 2 never led.
	leadMu.Lock()
	events := append([]leadEvent(nil), leads...)
	leadMu.Unlock()
	var takeoverEpoch core.Time
	tookOver := false
	for _, e := range events {
		if e.proc == 2 && e.lead {
			t.Fatalf("process 2 assumed leadership: %+v", events)
		}
		if e.proc == 1 && e.lead && !tookOver {
			tookOver = true
			takeoverEpoch = e.epoch
		}
	}
	if !tookOver {
		t.Fatalf("process 1 never assumed leadership: %+v", events)
	}

	// No conflicting plan: every decision process 1 made itself came
	// strictly after its takeover epoch (the guard forces at least one full
	// sampling window so the dead leader's moves drained first), and no
	// decision anywhere originates from process 2.
	for p := 1; p < procs; p++ {
		for _, d := range mps[p].auto.Decisions() {
			if d.Origin == 2 {
				t.Fatalf("process 2 issued a decision: %+v", d)
			}
			if d.Origin == 1 && d.Epoch <= takeoverEpoch {
				t.Fatalf("process 1 decided at epoch %d, at or before its takeover epoch %d", d.Epoch, takeoverEpoch)
			}
		}
	}

	// Mirroring: the dead leader's decision reached the survivors, and both
	// survivors agree on the (origin, epoch) decision log.
	d1, d2 := mps[1].auto.Decisions(), mps[2].auto.Decisions()
	if !hasOwnDecision(d1, 0) || !hasOwnDecision(d2, 0) {
		t.Fatalf("the first leader's decision was not mirrored: p1=%+v p2=%+v", d1, d2)
	}
	if !hasOwnDecision(d2, 1) {
		t.Fatalf("the new leader's decision was not mirrored to process 2: %+v", d2)
	}
}

// TestClusterControllerCoverageGate pins the telemetry-coverage gate: a
// leader must not render plans from a load window that lacks telemetry from
// live peers (such a window is mostly the leader's own rows and reads as a
// phantom imbalance). Coverage is reached either by hearing a load delta
// from every peer, or by suspecting the silent ones dead.
func TestClusterControllerCoverageGate(t *testing.T) {
	const procs, workersPerProc, logBins = 3, 2, 2

	// Silent peers: processes 1 and 2 exist in the spec but never tick.
	// With SampleEvery=10 and SuspectAfter=3, process 0 samples at epochs
	// 10, 20, ... and the unheard peers stay "live but unreported" through
	// its third sample — so the always-moving policy must stay muzzled
	// until epoch 40, when suspicion finally stands in for telemetry.
	t.Run("suspicion", func(t *testing.T) {
		hub := newFakeHub(procs)
		mp := startMiniProc(t, hub, 0, procs, workersPerProc, logBins, nil)
		e := core.Time(1)
		for ; e <= 39; e++ {
			mp.tick(e)
		}
		if ds := mp.auto.Decisions(); len(ds) != 0 {
			t.Fatalf("leader decided before its view covered the cluster: %+v", ds)
		}
		for ; e <= 200; e++ {
			mp.tick(e)
			if len(mp.auto.Decisions()) > 0 {
				break
			}
		}
		ds := mp.auto.Decisions()
		if len(ds) == 0 {
			t.Fatal("leader never decided after the silent peers became suspect")
		}
		if ds[0].Epoch < 40 {
			t.Fatalf("leader decided at epoch %d, before the suspect window elapsed", ds[0].Epoch)
		}
		mp.shutdown(e + 1)
	})

	// Live peers: all three processes tick in lockstep, followers first, so
	// their first load deltas reach process 0 before its own first sampling
	// boundary — the first decision then lands at the first possible epoch.
	t.Run("telemetry", func(t *testing.T) {
		hub := newFakeHub(procs)
		var mps [procs]*miniProc
		for p := 0; p < procs; p++ {
			mps[p] = startMiniProc(t, hub, p, procs, workersPerProc, logBins, nil)
		}
		for e := core.Time(1); e <= 10; e++ {
			mps[1].tick(e)
			mps[2].tick(e)
			mps[0].tick(e)
		}
		ds := mps[0].auto.Decisions()
		if len(ds) == 0 || ds[0].Epoch != 10 || ds[0].Origin != 0 {
			t.Fatalf("leader with full telemetry should decide at its first sampling boundary; got %+v", ds)
		}
		for p, mp := range mps {
			if p != 0 {
				if dsp := mp.auto.Decisions(); !hasOwnDecision(dsp, 0) {
					t.Fatalf("process %d did not mirror the leader's decision: %+v", p, dsp)
				}
			}
			mp.shutdown(11)
		}
	})
}

func hasOwnDecision(ds []plan.Decision, origin int) bool {
	for _, d := range ds {
		if d.Origin == origin {
			return true
		}
	}
	return false
}
