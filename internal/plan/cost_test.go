package plan

import (
	"testing"

	"megaphone/internal/core"
)

// snap builds a LoadSnapshot from per-bin nanos (recs derived at 1 rec per
// 1000ns) under the given assignment.
func snap(assign Assignment, workers int, binNanos []uint64) *core.LoadSnapshot {
	s := &core.LoadSnapshot{
		Workers:     workers,
		Bins:        len(binNanos),
		BinNanos:    append([]uint64(nil), binNanos...),
		BinRecs:     make([]uint64, len(binNanos)),
		WorkerRecs:  make([]uint64, workers),
		WorkerNanos: make([]uint64, workers),
	}
	for b, n := range binNanos {
		s.BinRecs[b] = n / 1000
		s.WorkerNanos[assign[b]] += n
		s.WorkerRecs[assign[b]] += n / 1000
	}
	return s
}

// TestCostModelGoldenDecisions pins the migrate/decline verdicts for the
// canonical scenarios from the issue: profitable rebalances migrate, while
// "hot set about to rotate" and "volume exceeds recovery" decline.
func TestCostModelGoldenDecisions(t *testing.T) {
	// 4 bins on 2 workers; bins 0,1 -> worker 0, bins 2,3 -> worker 1.
	current := Assignment{0, 0, 1, 1}
	balanced := Assignment{0, 1, 1, 0} // swaps one hot bin per side

	cases := []struct {
		name      string
		model     CostModel
		target    Assignment
		window    []uint64 // per-bin window nanos
		cumRecs   []uint64 // per-bin cumulative recs (state volume)
		stability int
		migrate   bool
		reason    string
	}{
		{
			name: "profitable rebalance migrates",
			// Worker 0 carries 8ms/window vs worker 1's 2ms; moving bin 1
			// brings the max down to 6ms. Gain 2ms/window × 8 windows = 16ms
			// against ~1ms stall + tiny volume.
			model:   CostModel{},
			target:  Assignment{0, 1, 1, 1},
			window:  []uint64{4e6, 4e6, 1e6, 1e6},
			cumRecs: []uint64{100, 100, 100, 100},
			migrate: true,
		},
		{
			name:    "identical target declines with no-moves",
			model:   CostModel{},
			target:  append(Assignment(nil), current...),
			window:  []uint64{4e6, 4e6, 1e6, 1e6},
			cumRecs: []uint64{100, 100, 100, 100},
			reason:  ReasonNoMoves,
		},
		{
			name: "volume exceeds recovery declines",
			// The same 2ms/window gain, but the moved bin carries 10M
			// cumulative records: 10M × 250ns = 2.5s of migration work against
			// 16ms of credited gain.
			model:   CostModel{},
			target:  Assignment{0, 1, 1, 1},
			window:  []uint64{4e6, 4e6, 1e6, 1e6},
			cumRecs: []uint64{0, 10_000_000, 0, 0},
			reason:  ReasonVolume,
		},
		{
			name: "hot set about to rotate declines",
			// A freshly rotated hot set (stability=1) earns a 1-window
			// horizon: 2ms of credit cannot repay 1ms stall + 1M recs moved.
			model:     CostModel{CapToStability: true},
			target:    Assignment{0, 1, 1, 1},
			window:    []uint64{4e6, 4e6, 1e6, 1e6},
			cumRecs:   []uint64{0, 1_000_000, 0, 0},
			stability: 1,
			reason:    ReasonVolume,
		},
		{
			name: "stable hot set migrates despite the cap",
			// Same trade, but the hot worker has held for 100 windows: the
			// horizon cap is the model's own default again.
			model:     CostModel{CapToStability: true},
			target:    Assignment{0, 1, 1, 1},
			window:    []uint64{4e6, 4e6, 1e6, 1e6},
			cumRecs:   []uint64{0, 10_000, 0, 0},
			stability: 100,
			migrate:   true,
		},
		{
			name: "no projected gain declines",
			// The swap reshuffles bins without lowering the hottest worker.
			model:   CostModel{},
			target:  balanced,
			window:  []uint64{3e6, 2e6, 2e6, 3e6},
			cumRecs: []uint64{10, 10, 10, 10},
			reason:  ReasonNoGain,
		},
		{
			name: "recs-only window uses the nominal rate",
			// No measured nanos: 40k recs gap × 100ns nominal = 4ms/window
			// gain × 8 windows vs 1ms stall + 100 recs × 250ns.
			model:   CostModel{},
			target:  Assignment{0, 1, 1, 1},
			window:  nil, // per-bin recs set below via cumRecs-style helper
			cumRecs: []uint64{100, 100, 100, 100},
			migrate: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var window *core.LoadSnapshot
			if tc.window != nil {
				window = snap(current, 2, tc.window)
			} else {
				window = &core.LoadSnapshot{
					Workers:  2,
					Bins:     4,
					BinRecs:  []uint64{40_000, 40_000, 10_000, 10_000},
					BinNanos: make([]uint64, 4),
				}
			}
			cumulative := &core.LoadSnapshot{
				Workers: 2, Bins: 4,
				BinRecs:  append([]uint64(nil), tc.cumRecs...),
				BinNanos: make([]uint64, 4),
			}
			v := tc.model.Evaluate(current, tc.target, window, cumulative, tc.stability)
			if v.Migrate != tc.migrate {
				t.Fatalf("migrate = %v, want %v (verdict %+v)", v.Migrate, tc.migrate, v)
			}
			if !tc.migrate && v.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q (verdict %+v)", v.Reason, tc.reason, v)
			}
			if tc.migrate && v.Reason != "" {
				t.Fatalf("migrating verdict carries reason %q", v.Reason)
			}
		})
	}
}

// TestCostModelVerdictAccounting pins the arithmetic: volume sums only moved
// bins, cost is volume×rate+stall, gain is per-window delta×horizon.
func TestCostModelVerdictAccounting(t *testing.T) {
	current := Assignment{0, 0, 1, 1}
	target := Assignment{0, 1, 1, 1}
	window := snap(current, 2, []uint64{4e6, 4e6, 1e6, 1e6})
	cumulative := &core.LoadSnapshot{
		Workers: 2, Bins: 4,
		BinRecs:  []uint64{111, 2000, 333, 444}, // only bin 1 moves
		BinNanos: make([]uint64, 4),
	}
	m := CostModel{MigrateNanosPerRec: 10, StallNanos: 500, HorizonWindows: 4}
	v := m.Evaluate(current, target, window, cumulative, 0)
	if v.VolumeRecs != 2000 {
		t.Fatalf("volume = %d, want 2000 (moved bins only)", v.VolumeRecs)
	}
	if want := uint64(2000*10 + 500); v.CostNanos != want {
		t.Fatalf("cost = %d, want %d", v.CostNanos, want)
	}
	// current max = 8e6 (worker 0), target max = 6e6 (worker 1) → 2e6/window.
	if want := uint64(2e6 * 4); v.GainNanos != want {
		t.Fatalf("gain = %d, want %d", v.GainNanos, want)
	}
	if v.Horizon != 4 {
		t.Fatalf("horizon = %d, want 4", v.Horizon)
	}
	if !v.Migrate {
		t.Fatalf("profitable trade declined: %+v", v)
	}
}

// TestCostModelHysteresisEdges drives the gate right at the break-even
// boundary: gain == cost must decline (strict inequality keeps the loop from
// thrashing on a wash), gain == cost+1 must migrate.
func TestCostModelHysteresisEdges(t *testing.T) {
	// Both bins start on worker 0; the target offloads bin 1 to worker 1, so
	// gain per window = (a+b) − max(a,b) = min(a,b) and volume = cumRecs[1].
	current := Assignment{0, 0}
	target := Assignment{0, 1}
	m := CostModel{MigrateNanosPerRec: 1, StallNanos: 1, HorizonWindows: 1}

	eval := func(binNanos []uint64, cumRecs []uint64) Verdict {
		w := snap(current, 2, binNanos)
		c := &core.LoadSnapshot{Workers: 2, Bins: 2,
			BinRecs: cumRecs, BinNanos: make([]uint64, 2)}
		return m.Evaluate(current, target, w, c, 0)
	}

	// Bin 1 carries nothing: offloading it gains zero.
	if v := eval([]uint64{100, 0}, []uint64{4, 8}); v.Migrate || v.Reason != ReasonNoGain {
		t.Fatalf("zero-gain offload migrated: %+v", v)
	}
	// Volume 8 at 1ns/rec + 1ns stall = cost 9. Gain == cost exactly must
	// decline: a wash trade that migrated would let the loop thrash forever.
	if v := eval([]uint64{100, 9}, []uint64{4, 8}); v.GainNanos != v.CostNanos {
		t.Fatalf("setup wrong: gain %d cost %d", v.GainNanos, v.CostNanos)
	} else if v.Migrate {
		t.Fatalf("break-even trade migrated: %+v", v)
	}
	// One more nano of gain tips it over.
	if v := eval([]uint64{100, 10}, []uint64{4, 8}); !v.Migrate {
		t.Fatalf("gain=cost+1 declined: %+v", v)
	}
}

// TestCostModelDefaults pins the documented default constants.
func TestCostModelDefaults(t *testing.T) {
	var m CostModel
	if m.migrateNanosPerRec() != 250 || m.stallNanos() != 1_000_000 ||
		m.horizonWindows() != 8 || m.nominalServiceNanos() != 100 {
		t.Fatalf("defaults drifted: rate=%d stall=%d horizon=%d nominal=%d",
			m.migrateNanosPerRec(), m.stallNanos(), m.horizonWindows(), m.nominalServiceNanos())
	}
}
