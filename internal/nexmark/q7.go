package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q7 — HIGHEST BID. Report the highest bid of each tumbling window. State
// is a single value per window, but the query requires a data exchange to
// combine worker-local pre-aggregations into the global maximum; because
// state is so small, migration strategies are indistinguishable (Figure 11).

// Q7Out is one window's highest bid.
type Q7Out struct {
	Window Time
	Price  uint64
	Bidder uint64
}

// q7State maps open windows to their highest bid so far.
type q7State struct {
	Windows map[Time]Q7Out
}

func newQ7State() *q7State { return &q7State{Windows: make(map[Time]Q7Out)} }

// q7Pre pre-aggregates the per-worker maximum of each window — this is the
// hand-tuned optimization the paper's native implementations include.
func q7Pre(w *dataflow.Worker, windowEpochs Time, bids dataflow.Stream[Bid]) dataflow.Stream[Q7Out] {
	return operators.UnaryScheduled(w, "q7-pre", bids,
		dataflow.Pipeline[Bid]{},
		func() map[Time]Q7Out { return make(map[Time]Q7Out) },
		func(t Time, data []Bid, s map[Time]Q7Out, schedule func(Time), emit func(Q7Out)) {
			for _, b := range data {
				win := b.DateTime / windowEpochs * windowEpochs
				if cur := s[win]; b.Price > cur.Price {
					s[win] = Q7Out{Window: win, Price: b.Price, Bidder: b.Bidder}
					schedule(win + windowEpochs)
				}
			}
			for win, best := range s {
				if win+windowEpochs <= t {
					emit(best)
					delete(s, win)
				}
			}
		})
}

// BuildQ7 builds query 7 under the chosen implementation.
func BuildQ7(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q7Out] {
	p.defaults()
	bids := Bids(w, "q7-bids", events)
	pre := q7Pre(w, p.WindowEpochs, bids)
	if p.Impl == Native {
		// BEGIN Q7 NATIVE
		return operators.UnaryScheduled(w, "q7-max", pre,
			dataflow.Exchange[Q7Out]{Hash: func(o Q7Out) uint64 { return core.Mix64(uint64(o.Window)) }},
			func() map[Time]Q7Out { return make(map[Time]Q7Out) },
			func(t Time, data []Q7Out, s map[Time]Q7Out, schedule func(Time), emit func(Q7Out)) {
				for _, o := range data {
					if cur := s[o.Window]; o.Price > cur.Price {
						s[o.Window] = o
						schedule(t + 1)
					}
				}
				for win, best := range s {
					if win < t {
						emit(best)
						delete(s, win)
					}
				}
			})
		// END Q7 NATIVE
	}
	// BEGIN Q7 MEGAPHONE
	return core.Unary(w,
		p.config("q7-max"),
		ctl, pre,
		func(o Q7Out) uint64 { return core.Mix64(uint64(o.Window)) },
		newQ7State,
		func(t Time, o Q7Out, s *q7State, n *core.Notificator[Q7Out, q7State, Q7Out], emit func(Q7Out)) {
			if o.Price == 0 && o.Bidder == 0 {
				// Window-close marker.
				if best, ok := s.Windows[o.Window]; ok {
					emit(best)
					delete(s.Windows, o.Window)
				}
				return
			}
			if _, seen := s.Windows[o.Window]; !seen {
				n.NotifyAt(t+1, Q7Out{Window: o.Window})
			}
			if cur := s.Windows[o.Window]; o.Price > cur.Price {
				s.Windows[o.Window] = o
			}
		}, nil)
	// END Q7 MEGAPHONE
}
