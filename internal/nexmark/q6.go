package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q6 — AVERAGE SELLING PRICE BY SELLER. Report the average closing price of
// the last ten auctions of each seller. Shares the closed-auctions stage
// with Q4; the per-seller ring of prices grows with the set of sellers
// (Figure 10).

// Q6Out is one seller's updated average.
type Q6Out struct {
	Seller  uint64
	Average uint64
}

// q6Ring is the last-ten price ring of one seller.
type q6Ring struct {
	Prices [10]uint64
	Len    int
	Next   int
}

func (r *q6Ring) push(p uint64) uint64 {
	r.Prices[r.Next] = p
	r.Next = (r.Next + 1) % len(r.Prices)
	if r.Len < len(r.Prices) {
		r.Len++
	}
	var sum uint64
	for i := 0; i < r.Len; i++ {
		sum += r.Prices[i]
	}
	return sum / uint64(r.Len)
}

// BuildQ6 builds query 6 under the chosen implementation.
func BuildQ6(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q6Out] {
	p.defaults()
	if p.Impl == Native {
		// BEGIN Q6 NATIVE
		closed := closedAuctionsNative(w, "q6-closed", events)
		pairs := operators.Map(w, "q6-kv", closed, func(ca ClosedAuction) operators.KV[uint64, uint64] {
			return operators.KV[uint64, uint64]{Key: ca.Seller, Val: ca.Price}
		})
		return operators.StateMachine(w, "q6-avg", pairs, core.Mix64,
			func(k uint64, price uint64, r *q6Ring, emit func(Q6Out)) {
				emit(Q6Out{Seller: k, Average: r.push(price)})
			})
		// END Q6 NATIVE
	}
	// BEGIN Q6 MEGAPHONE
	closed := closedAuctionsMegaphone(w, "q6-closed", p, ctl, events)
	pairs := operators.Map(w, "q6-kv", closed, func(ca ClosedAuction) core.KV[uint64, uint64] {
		return core.KV[uint64, uint64]{Key: ca.Seller, Val: ca.Price}
	})
	return core.StateMachine(w,
		p.config("q6-avg"),
		ctl, pairs, core.Mix64,
		func(k uint64, price uint64, r *q6Ring, emit func(Q6Out)) {
			emit(Q6Out{Seller: k, Average: r.push(price)})
		}, nil)
	// END Q6 MEGAPHONE
}
