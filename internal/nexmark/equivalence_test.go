package nexmark_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/nexmark"
	"megaphone/internal/operators"
	"megaphone/internal/plan"
)

// collectQuery runs one query over a fixed deterministic event prefix,
// optionally migrating mid-stream, and returns the multiset of outputs
// rendered as strings. Both implementations consume identical input, so
// Property 1 (correctness) requires identical output multisets.
func collectQuery(t *testing.T, q string, impl nexmark.Impl, migrate bool) map[string]int {
	t.Helper()
	const (
		workers  = 2
		epochs   = 200
		perEpoch = 100
		logBins  = 4
	)
	var mu sync.Mutex
	out := make(map[string]int)

	params := nexmark.Params{Impl: impl, LogBins: logBins, WindowEpochs: 40, SlideEpochs: 8}
	gen := nexmark.NewGen(nexmark.GenConfig{ActiveAuctions: 50, ActivePeople: 50, AuctionEpochs: 25})

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[nexmark.Event]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, events := dataflow.NewInput[nexmark.Event](w, "events")
		dataIns = append(dataIns, in)
		// Build the query and capture its outputs via an Inspect shim: we
		// re-build by name but wrap the stream in a sink before probing.
		p := buildCollected(w, q, params, ctlStream, events, func(s string) {
			mu.Lock()
			out[s]++
			mu.Unlock()
		})
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()
	ctl := plan.NewController(ctlIns, probe)

	var mig plan.Plan
	if migrate {
		mig = plan.Build(plan.Batched, plan.Initial(1<<logBins, workers),
			plan.Rebalance(1<<logBins, []int{1}), 3)
	}
	for e := core.Time(1); e <= epochs; e++ {
		for w := 0; w < workers; w++ {
			batch := gen.Batch(w, workers, e, perEpoch, perEpoch/workers)
			dataIns[w].SendBatchAt(e, batch)
		}
		if migrate && e == epochs/2 {
			ctl.Start(mig)
		}
		ctl.Tick(e)
		for _, h := range dataIns {
			h.AdvanceTo(e + 1)
		}
	}
	// Let any in-flight plan finish before closing.
	for e := core.Time(epochs + 1); !ctl.Idle(); e++ {
		ctl.Tick(e)
		for _, h := range dataIns {
			h.AdvanceTo(e + 1)
		}
	}
	ctl.Close()
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()
	return out
}

// buildCollected mirrors nexmark.BuildQuery but funnels outputs to collect.
// Queries whose record-level outputs depend on within-timestamp application
// order (running averages in q4/q6) are projected to an order-insensitive
// view: the multiset of aggregation keys, i.e. one entry per closed auction,
// which still exercises expiry timing, winning-bid selection and routing.
func buildCollected(w *dataflow.Worker, q string, p nexmark.Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[nexmark.Event], collect func(string)) *dataflow.Probe {
	switch q {
	case "q1":
		return sinkAndProbe(w, nexmark.BuildQ1(w, p, ctl, events), collect, nil)
	case "q2":
		return sinkAndProbe(w, nexmark.BuildQ2(w, p, ctl, events), collect, nil)
	case "q3":
		return sinkAndProbe(w, nexmark.BuildQ3(w, p, ctl, events), collect, nil)
	case "q4":
		return sinkAndProbe(w, nexmark.BuildQ4(w, p, ctl, events), collect,
			func(o nexmark.Q4Out) string { return fmt.Sprintf("category=%d", o.Category) })
	case "q6":
		return sinkAndProbe(w, nexmark.BuildQ6(w, p, ctl, events), collect,
			func(o nexmark.Q6Out) string { return fmt.Sprintf("seller=%d", o.Seller) })
	case "q7":
		return sinkAndProbe(w, nexmark.BuildQ7(w, p, ctl, events), collect, nil)
	case "q8":
		return sinkAndProbe(w, nexmark.BuildQ8(w, p, ctl, events), collect, nil)
	default:
		panic("unsupported query in equivalence test: " + q)
	}
}

func sinkAndProbe[T any](w *dataflow.Worker, s dataflow.Stream[T], collect func(string), format func(T) string) *dataflow.Probe {
	if format == nil {
		format = func(r T) string { return fmt.Sprintf("%+v", r) }
	}
	operators.Sink(w, "collect", s, func(_ core.Time, data []T) {
		for _, r := range data {
			collect(format(r))
		}
	})
	return dataflow.NewProbe(w, s)
}

// TestImplementationsAgree: for every deterministic query, the native and
// Megaphone implementations — the latter with a mid-stream migration —
// produce identical output multisets (Property 1 at system scale).
func TestImplementationsAgree(t *testing.T) {
	// Q5 is excluded: its native and megaphone variants report windows on
	// slightly different (both valid) activity conditions. Q8 used to be
	// compared with a tolerance because its join was order-sensitive for a
	// person and an auction arriving in the same epoch and at the expiry
	// boundary; both implementations now apply a canonical within-epoch
	// order (expirations, then registrations, then joins — see q8.go), so
	// every query compares exactly.
	for _, q := range []string{"q1", "q2", "q3", "q4", "q6", "q7", "q8"} {
		q := q
		t.Run(q, func(t *testing.T) {
			t.Parallel()
			native := collectQuery(t, q, nexmark.Native, false)
			mega := collectQuery(t, q, nexmark.Megaphone, true)
			diffMultisets(t, q, native, mega)
		})
	}
}

func diffMultisets(t *testing.T, q string, a, b map[string]int) {
	t.Helper()
	var keys []string
	total := 0
	for k, c := range a {
		keys = append(keys, k)
		total += c
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	bad := 0
	var examples []string
	for _, k := range keys {
		if a[k] != b[k] {
			bad++
			if len(examples) < 5 {
				examples = append(examples, fmt.Sprintf("%q native=%d megaphone=%d", k, a[k], b[k]))
			}
		}
	}
	if bad > 0 {
		for _, e := range examples {
			t.Errorf("%s: output %s", q, e)
		}
		t.Errorf("%s: %d of %d outputs differ", q, bad, total)
	}
	if len(a) == 0 {
		t.Errorf("%s: native produced no output", q)
	}
}
