package nexmark

import (
	"fmt"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/harness"
	"megaphone/internal/plan"
)

// RunConfig configures a complete open-loop NEXMark run.
type RunConfig struct {
	Query  string
	Params Params
	Gen    GenConfig
	// Workers is the number of workers in this process. In a cluster run
	// (Cluster non-nil) every process contributes Workers workers.
	Workers     int
	Rate        int // events per second, cluster-wide
	Duration    time.Duration
	EpochEvery  time.Duration
	ReportEvery time.Duration
	// Strategy/Batch/MigrateAt schedule the paper's two migrations: first
	// to an imbalanced assignment, then back (Section 5: "we initially
	// migrate half of the keys on half of the workers to the other half
	// ... then perform and report a second migration back").
	Strategy  plan.Strategy
	Batch     int
	MigrateAt time.Duration
	Memory    bool
	// Auto, when non-nil, installs a metering AutoController that issues
	// plans from measured load; the scheduled MigrateAt migrations are then
	// ignored. Auto.Meter is filled in by Run.
	Auto *plan.AutoOptions
	// Cluster, when non-nil, runs this process's share of a multi-process
	// execution (see keycount.RunConfig.Cluster; the semantics match).
	Cluster *dataflow.ClusterSpec
	// CheckpointDir/CheckpointEvery/Recover mirror keycount.RunConfig:
	// epoch-aligned checkpoints of every megaphone stage of the query, and
	// recovery from the newest complete checkpoint. Megaphone impl only.
	CheckpointDir   string
	CheckpointEvery time.Duration
	Recover         bool
}

// Run executes the query open-loop and returns its measurements. In a
// cluster run the measurements are this process's local view.
func Run(cfg RunConfig) (harness.Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EpochEvery <= 0 {
		cfg.EpochEvery = time.Millisecond
	}
	cfg.Params.defaults()

	if cfg.Cluster != nil && cfg.Cluster.Absent != nil {
		// Dynamic membership (absent roster slots joining and leaving) is a
		// keycount-only mode for now: the membership barrier pauses the
		// workers, inventories every capability hold and rebuilds the
		// trackers from it, which needs each operator's holds to be bounded
		// and purgeable at a cut epoch. nexmark's windowed operators (q5, q7,
		// q8) hold capabilities for every open window with no purge hook, so
		// the barrier can neither bound nor reconstruct their progress state.
		return harness.Result{}, fmt.Errorf("nexmark: dynamic membership (absent roster slots) is keycount-only — windowed operators have unbounded, unpurgeable capability holds")
	}
	mesh, procs, proc, err := harness.JoinCluster("nexmark", cfg.Cluster, cfg.Params.Transfer, cfg.Auto != nil)
	if err != nil {
		return harness.Result{}, err
	}
	totalWorkers := cfg.Workers * procs
	firstWorker := proc * cfg.Workers

	if (cfg.CheckpointDir != "" || cfg.Recover) && cfg.Params.Impl != Megaphone {
		return harness.Result{}, fmt.Errorf("nexmark: checkpointing requires the megaphone implementation")
	}
	ckpt, duration, err := harness.PlanCheckpoints("nexmark", cfg.CheckpointDir, cfg.CheckpointEvery,
		cfg.Recover, cfg.Params.Transfer, totalWorkers, firstWorker, cfg.Workers, cfg.EpochEvery, cfg.Duration)
	if err != nil {
		return harness.Result{}, err
	}
	cfg.Duration = duration
	cfg.Params.Checkpoint = ckpt.Config
	cfg.Params.Restore = ckpt.Restores

	var meter *core.LoadMeter
	if cfg.Auto != nil {
		meter = core.NewLoadMeter(totalWorkers, cfg.Params.LogBins)
		cfg.Params.Meter = meter
		cfg.Auto.Meter = meter
		if mesh != nil {
			// Cluster-wide control plane, as in keycount.Run: telemetry over
			// the mesh, one elected policy driver.
			cfg.Auto.Cluster = &plan.ClusterOptions{
				Bus:            mesh,
				Procs:          procs,
				Proc:           proc,
				WorkersPerProc: cfg.Workers,
				Logf:           cfg.Cluster.Logf,
			}
		}
	}

	exec := dataflow.NewExecution(dataflow.Config{Workers: cfg.Workers, Mesh: mesh})
	var dataIns []*dataflow.InputHandle[Event]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, events := dataflow.NewInput[Event](w, "events")
		dataIns = append(dataIns, in)
		p := BuildQuery(w, cfg.Query, cfg.Params, ctlStream, events)
		if w.Index() == firstWorker {
			probe = p
		}
	})
	exec.Start()

	bins := 1 << uint(cfg.Params.LogBins)
	ctl, auto := harness.NewDriver(cfg.Auto, ctlIns, probe, bins, totalWorkers, ckpt.InitialAssignment())

	var migrations []harness.Migration
	if cfg.Auto == nil && cfg.MigrateAt > 0 {
		initial := plan.Initial(bins, totalWorkers)
		var firstHalf []int
		for i := 0; i < (totalWorkers+1)/2; i++ {
			firstHalf = append(firstHalf, i)
		}
		imbalanced := plan.Rebalance(bins, firstHalf)
		epoch := int64(cfg.MigrateAt / cfg.EpochEvery)
		total := int64(cfg.Duration / cfg.EpochEvery)
		migrations = append(migrations,
			harness.Migration{AtEpoch: epoch, Plan: plan.Build(cfg.Strategy, initial, imbalanced, cfg.Batch)},
			harness.Migration{AtEpoch: epoch + (total-epoch)/2, Plan: plan.Build(cfg.Strategy, imbalanced, initial, cfg.Batch)},
		)
		migrations = ckpt.FilterMigrations(migrations)
	}

	gen := NewGen(cfg.Gen)
	perEpoch := int(float64(cfg.Rate) * cfg.EpochEvery.Seconds())
	peers := totalWorkers
	genFn := func(w int, epoch int64, n int) []Event {
		return gen.Batch(w, peers, Time(epoch), perEpoch, n)
	}

	res := harness.Run(exec, dataIns, ctl, probe, genFn, harness.Options{
		Rate:            cfg.Rate,
		EpochEvery:      cfg.EpochEvery,
		Duration:        cfg.Duration,
		ReportEvery:     cfg.ReportEvery,
		SampleMemory:    cfg.Memory,
		Migrations:      migrations,
		TotalInputs:     totalWorkers,
		FirstInput:      firstWorker,
		CheckpointEvery: ckpt.Every,
		StartEpoch:      ckpt.StartEpoch,
	})
	res.FinishAdaptive(auto, meter)
	ckpt.Finish(&res)
	return res, nil
}
