package nexmark_test

import (
	"testing"
	"time"

	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

// TestGeneratorProportions checks the 1:3:46 event mix and determinism.
func TestGeneratorProportions(t *testing.T) {
	g := nexmark.NewGen(nexmark.GenConfig{})
	var persons, auctions, bids int
	for n := uint64(0); n < 50_000; n++ {
		e := g.At(n, 1)
		switch e.Kind {
		case nexmark.PersonKind:
			persons++
		case nexmark.AuctionKind:
			auctions++
		case nexmark.BidKind:
			bids++
		}
	}
	if persons != 1000 || auctions != 3000 || bids != 46000 {
		t.Fatalf("proportions: persons=%d auctions=%d bids=%d", persons, auctions, bids)
	}
	// Determinism.
	for n := uint64(0); n < 100; n++ {
		if g.At(n, 7) != g.At(n, 7) {
			t.Fatalf("generator not deterministic at %d", n)
		}
	}
}

// TestGeneratorReferentialIntegrity checks bids reference existing auctions
// and auctions reference existing persons.
func TestGeneratorReferentialIntegrity(t *testing.T) {
	g := nexmark.NewGen(nexmark.GenConfig{})
	maxPerson := uint64(0)
	maxAuction := uint64(0)
	seenPerson := false
	for n := uint64(0); n < 20_000; n++ {
		e := g.At(n, 1)
		switch e.Kind {
		case nexmark.PersonKind:
			seenPerson = true
			if e.Person.ID > maxPerson {
				maxPerson = e.Person.ID
			}
		case nexmark.AuctionKind:
			if !seenPerson {
				t.Fatal("auction before any person")
			}
			if e.Auction.Seller > maxPerson {
				t.Fatalf("auction %d references future seller %d > %d", e.Auction.ID, e.Auction.Seller, maxPerson)
			}
			if e.Auction.ID > maxAuction {
				maxAuction = e.Auction.ID
			}
		case nexmark.BidKind:
			if e.Bid.Auction > maxAuction {
				t.Fatalf("bid references future auction %d > %d", e.Bid.Auction, maxAuction)
			}
			if e.Bid.Bidder > maxPerson {
				t.Fatalf("bid references future bidder %d > %d", e.Bid.Bidder, maxPerson)
			}
		}
	}
}

// runShort runs a query briefly under both implementations with a batched
// migration for the megaphone variant, requiring completion and output.
func runShort(t *testing.T, q string) {
	t.Helper()
	for _, impl := range []nexmark.Impl{nexmark.Native, nexmark.Megaphone} {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			t.Parallel()
			cfg := nexmark.RunConfig{
				Query: q,
				Params: nexmark.Params{
					Impl:         impl,
					LogBins:      4,
					WindowEpochs: 40,
					SlideEpochs:  8,
				},
				Gen:      nexmark.GenConfig{ActiveAuctions: 100, ActivePeople: 100, AuctionEpochs: 30},
				Workers:  2,
				Rate:     20_000,
				Duration: 700 * time.Millisecond,
			}
			if impl == nexmark.Megaphone {
				cfg.Strategy = plan.Batched
				cfg.Batch = 4
				cfg.MigrateAt = 250 * time.Millisecond
			}
			res, err := nexmark.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Records == 0 {
				t.Fatal("no records")
			}
			if res.Hist.Count() == 0 {
				t.Fatal("no latency measurements")
			}
			if impl == nexmark.Megaphone && len(res.MigrationSpans) == 0 {
				t.Error("no migration observed")
			}
		})
	}
}

func TestQ1(t *testing.T) { runShort(t, "q1") }
func TestQ2(t *testing.T) { runShort(t, "q2") }
func TestQ3(t *testing.T) { runShort(t, "q3") }
func TestQ4(t *testing.T) { runShort(t, "q4") }
func TestQ5(t *testing.T) { runShort(t, "q5") }
func TestQ6(t *testing.T) { runShort(t, "q6") }
func TestQ7(t *testing.T) { runShort(t, "q7") }
func TestQ8(t *testing.T) { runShort(t, "q8") }
