package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q4 — AVERAGE PRICE FOR A CATEGORY. Derive the stream of closed auctions
// (the winning bid of each auction at its expiry) from the bid and auction
// streams, then report the running average closing price per category. The
// closed-auction operator is keyed by auction id and accumulates relevant
// bids until the auction closes, at which point the auction is reported and
// removed — the number of live auctions, and so the state, stays bounded
// (Figure 8).

// ClosedAuction is an auction that reached its expiry, with its winning
// price.
type ClosedAuction struct {
	Auction  uint64
	Seller   uint64
	Category uint64
	Price    uint64
}

// Q4Out is the running average closing price of one category.
type Q4Out struct {
	Category uint64
	Average  uint64
}

// q4State hosts the open auctions of one key group and the bids that
// arrived before their auction within the same timestamp.
type q4State struct {
	Open    map[uint64]Auction
	Best    map[uint64]uint64
	Stashed map[uint64][]Bid
}

func newQ4State() *q4State {
	return &q4State{
		Open:    make(map[uint64]Auction),
		Best:    make(map[uint64]uint64),
		Stashed: make(map[uint64][]Bid),
	}
}

// q4Bid applies one bid to the open-auction state.
func (s *q4State) q4Bid(b Bid) {
	a, ok := s.Open[b.Auction]
	if !ok {
		s.Stashed[b.Auction] = append(s.Stashed[b.Auction], b)
		return
	}
	if b.DateTime <= a.Expires && b.Price >= a.InitialBid && b.Price > s.Best[b.Auction] {
		s.Best[b.Auction] = b.Price
	}
}

// q4Open registers a new auction and absorbs stashed bids.
func (s *q4State) q4Open(a Auction) {
	s.Open[a.ID] = a
	for _, b := range s.Stashed[a.ID] {
		s.q4Bid(b)
	}
	delete(s.Stashed, a.ID)
}

// q4Close finalizes an expired auction, returning its result if it sold.
func (s *q4State) q4Close(id uint64) (ClosedAuction, bool) {
	a, ok := s.Open[id]
	if !ok {
		return ClosedAuction{}, false
	}
	price, sold := s.Best[id], s.Best[id] > 0
	delete(s.Open, id)
	delete(s.Best, id)
	delete(s.Stashed, id)
	if !sold {
		return ClosedAuction{}, false
	}
	return ClosedAuction{Auction: a.ID, Seller: a.Seller, Category: a.Category, Price: price}, true
}

// closedAuctionsMegaphone builds the migrateable closed-auctions stage.
func closedAuctionsMegaphone(w *dataflow.Worker, name string, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[ClosedAuction] {
	bids := Bids(w, name+"-bids", events)
	auctions := Auctions(w, name+"-auctions", events)
	// BEGIN CLOSED MEGAPHONE
	return core.Binary(w,
		p.config(name),
		ctl, bids, auctions,
		func(b Bid) uint64 { return core.Mix64(b.Auction) },
		func(a Auction) uint64 { return core.Mix64(a.ID) },
		newQ4State,
		func(t Time, e core.Either[Bid, Auction], s *q4State,
			n *core.Notificator[core.Either[Bid, Auction], q4State, ClosedAuction], emit func(ClosedAuction)) {
			switch {
			case !e.IsRight:
				s.q4Bid(e.Left)
			case e.Right.Closed:
				if out, sold := s.q4Close(e.Right.ID); sold {
					emit(out)
				}
			default:
				a := e.Right
				s.q4Open(a)
				marker := Auction{ID: a.ID, Closed: true}
				n.NotifyAt(a.Expires+1, core.Right[Bid, Auction](marker))
			}
		}, nil)
	// END CLOSED MEGAPHONE
}

// closedAuctionsNative builds the native closed-auctions stage: the expiry
// index is a per-worker time wheel driven by scheduled notifications.
func closedAuctionsNative(w *dataflow.Worker, name string, events dataflow.Stream[Event]) dataflow.Stream[ClosedAuction] {
	bids := Bids(w, name+"-bids", events)
	auctions := Auctions(w, name+"-auctions", events)
	// BEGIN CLOSED NATIVE
	type wheelState struct {
		q4State
		expiring map[Time][]uint64
	}
	merged := mergeNative(w, name+"-merge", bids, auctions)
	return operators.UnaryScheduled(w, name+"-close", merged,
		dataflow.Exchange[core.Either[Bid, Auction]]{Hash: func(e core.Either[Bid, Auction]) uint64 {
			if e.IsRight {
				return core.Mix64(e.Right.ID)
			}
			return core.Mix64(e.Left.Auction)
		}},
		func() *wheelState {
			return &wheelState{q4State: *newQ4State(), expiring: make(map[Time][]uint64)}
		},
		func(t Time, data []core.Either[Bid, Auction], s *wheelState, schedule func(Time), emit func(ClosedAuction)) {
			for _, e := range data {
				if e.IsRight {
					a := e.Right
					s.q4Open(a)
					s.expiring[a.Expires+1] = append(s.expiring[a.Expires+1], a.ID)
					schedule(a.Expires + 1)
				} else {
					s.q4Bid(e.Left)
				}
			}
			for _, id := range s.expiring[t] {
				if out, sold := s.q4Close(id); sold {
					emit(out)
				}
			}
			delete(s.expiring, t)
		})
	// END CLOSED NATIVE
}

// BuildQ4 builds query 4 under the chosen implementation.
func BuildQ4(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q4Out] {
	p.defaults()
	if p.Impl == Native {
		// BEGIN Q4 NATIVE
		closed := closedAuctionsNative(w, "q4-closed", events)
		return operators.StateMachine(w, "q4-avg", operators.Map(w, "q4-kv", closed,
			func(ca ClosedAuction) operators.KV[uint64, uint64] {
				return operators.KV[uint64, uint64]{Key: ca.Category, Val: ca.Price}
			}),
			core.Mix64,
			func(k uint64, price uint64, st *[2]uint64, emit func(Q4Out)) {
				st[0] += price
				st[1]++
				emit(Q4Out{Category: k, Average: st[0] / st[1]})
			})
		// END Q4 NATIVE
	}
	// BEGIN Q4 MEGAPHONE
	closed := closedAuctionsMegaphone(w, "q4-closed", p, ctl, events)
	pairs := operators.Map(w, "q4-kv", closed, func(ca ClosedAuction) core.KV[uint64, uint64] {
		return core.KV[uint64, uint64]{Key: ca.Category, Val: ca.Price}
	})
	return core.StateMachine(w,
		p.config("q4-avg"),
		ctl, pairs,
		core.Mix64,
		func(k uint64, price uint64, st *[2]uint64, emit func(Q4Out)) {
			st[0] += price
			st[1]++
			emit(Q4Out{Category: k, Average: st[0] / st[1]})
		}, nil)
	// END Q4 MEGAPHONE
}
