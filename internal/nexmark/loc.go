package nexmark

import (
	"embed"
	"fmt"
	"strings"
)

//go:embed q1.go q2.go q3.go q4.go q5.go q6.go q7.go q8.go
var querySources embed.FS

// LoC reports the lines of code of each query's native and Megaphone
// implementations, counted between the BEGIN/END markers in the query
// sources — this regenerates Table 1 of the paper. Blank lines and comment
// markers are excluded.
func LoC() (native, megaphone map[string]int, err error) {
	native = make(map[string]int)
	megaphone = make(map[string]int)
	for i := 1; i <= 8; i++ {
		name := fmt.Sprintf("q%d", i)
		src, rerr := querySources.ReadFile(name + ".go")
		if rerr != nil {
			return nil, nil, fmt.Errorf("nexmark: reading %s.go: %w", name, rerr)
		}
		n, m := countMarked(string(src))
		native[name] = n
		megaphone[name] = m
	}
	// Q4 and Q6 share the closed-auctions stage defined in q4.go; charge
	// its lines to both, as the paper's per-query counts do.
	closedN, closedM := countSection(string(mustRead("q4.go")), "CLOSED NATIVE"), countSection(string(mustRead("q4.go")), "CLOSED MEGAPHONE")
	native["q6"] += closedN
	megaphone["q6"] += closedM
	return native, megaphone, nil
}

func mustRead(name string) []byte {
	b, err := querySources.ReadFile(name)
	if err != nil {
		panic(err)
	}
	return b
}

// countMarked counts the code lines in all NATIVE and MEGAPHONE sections of
// one source file.
func countMarked(src string) (native, megaphone int) {
	lines := strings.Split(src, "\n")
	mode := 0 // 0 none, 1 native, 2 megaphone
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.Contains(trimmed, "// BEGIN") && strings.Contains(trimmed, "NATIVE"):
			mode = 1
			continue
		case strings.Contains(trimmed, "// BEGIN") && strings.Contains(trimmed, "MEGAPHONE"):
			mode = 2
			continue
		case strings.Contains(trimmed, "// END"):
			mode = 0
			continue
		}
		if mode == 0 || trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		if mode == 1 {
			native++
		} else {
			megaphone++
		}
	}
	return native, megaphone
}

// countSection counts the code lines of one named marker section.
func countSection(src, section string) int {
	lines := strings.Split(src, "\n")
	in := false
	n := 0
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.Contains(trimmed, "// BEGIN "+section):
			in = true
			continue
		case strings.Contains(trimmed, "// END "+section):
			in = false
			continue
		}
		if in && trimmed != "" && !strings.HasPrefix(trimmed, "//") {
			n++
		}
	}
	return n
}
