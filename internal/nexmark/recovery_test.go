package nexmark_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/nexmark"
	"megaphone/internal/plan"
)

// epochLines collects sink output per epoch. Recovery replays every epoch
// from the checkpoint on, so merging phase 1 (pre-crash) and phase 2
// (recovered) takes each epoch's lines from the later phase that produced
// them — with q8's canonical within-epoch semantics the replayed epochs are
// bit-identical anyway, which this test pins.
type epochLines struct {
	mu sync.Mutex
	m  map[uint64][]string
}

func (c *epochLines) sink(t nexmark.Time, lines []string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64][]string)
	}
	c.m[uint64(t)] = append(c.m[uint64(t)], lines...)
	c.mu.Unlock()
}

// canon renders the per-epoch multisets canonically.
func (c *epochLines) canon() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	epochs := make([]uint64, 0, len(c.m))
	for e := range c.m {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	var b strings.Builder
	for _, e := range epochs {
		lines := append([]string(nil), c.m[e]...)
		sort.Strings(lines)
		fmt.Fprintf(&b, "%d: %s\n", e, strings.Join(lines, " | "))
	}
	return b.String()
}

// overlay returns c's epochs with o's epochs replacing any overlap.
func (c *epochLines) overlay(o *epochLines) *epochLines {
	out := &epochLines{m: make(map[uint64][]string)}
	for e, l := range c.m {
		out.m[e] = l
	}
	for e, l := range o.m {
		out.m[e] = l
	}
	return out
}

// TestQ8RecoveryEquivalence runs the windowed q8 join — whose bins carry
// pending post-dated expiry records across the checkpoint boundary — cut
// mid-stream and recovered, against an uninterrupted reference. Equal
// per-epoch output requires the restored bins' pending heaps to fire at
// exactly the epochs the uninterrupted run expires registrations at: this
// is the test that would catch a checkpoint that dropped or mistimed
// pending records.
func TestQ8RecoveryEquivalence(t *testing.T) {
	base := nexmark.RunConfig{
		Query: "q8",
		Params: nexmark.Params{
			Impl:         nexmark.Megaphone,
			LogBins:      4,
			WindowEpochs: 60,
		},
		Gen:        nexmark.GenConfig{ActiveAuctions: 50, ActivePeople: 50, AuctionEpochs: 25},
		Workers:    2,
		Rate:       20000,
		Duration:   700 * time.Millisecond,
		EpochEvery: time.Millisecond,
		Strategy:   plan.Batched,
		Batch:      4,
		MigrateAt:  120 * time.Millisecond,
	}

	var ref epochLines
	refCfg := base
	refCfg.Params.Sink = ref.sink
	if _, err := nexmark.Run(refCfg); err != nil {
		t.Fatal(err)
	}
	if len(ref.m) == 0 {
		t.Fatal("reference run produced no q8 output")
	}

	dir := t.TempDir()
	var phase1 epochLines
	crashed := base
	crashed.Duration = 400 * time.Millisecond
	crashed.CheckpointDir = dir
	crashed.CheckpointEvery = 150 * time.Millisecond
	crashed.Params.Sink = phase1.sink
	res1, err := nexmark.Run(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Checkpoints) == 0 {
		t.Fatal("crashed run completed no checkpoints")
	}

	var phase2 epochLines
	recovered := base
	recovered.CheckpointDir = dir
	recovered.CheckpointEvery = 150 * time.Millisecond
	recovered.Recover = true
	recovered.Params.Sink = phase2.sink
	res2, err := nexmark.Run(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RestoreEpoch < 150 || res2.RestoreEpoch > 400 {
		t.Fatalf("recovered from epoch %d, expected a checkpoint in [150, 400]", res2.RestoreEpoch)
	}

	merged := phase1.overlay(&phase2)
	if got, want := merged.canon(), ref.canon(); got != want {
		line := firstDiffLine(t, want, got)
		t.Fatalf("recovered q8 output differs from the uninterrupted run (restored at epoch %d): %s",
			res2.RestoreEpoch, line)
	}
}

func firstDiffLine(t *testing.T, want, got string) string {
	t.Helper()
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("first divergence:\n  want %q\n  got  %q", w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(w), len(g))
}
