// Package nexmark implements the NEXMark benchmark suite used by the
// paper's evaluation (Section 5.1): an auction site emitting a high-volume
// stream of persons, auctions and bids, and eight standing queries over it,
// each implemented twice — natively on timely-style operators, and on
// Megaphone's migrateable stateful operator interface.
package nexmark

import (
	"megaphone/internal/dataflow"
)

// Time aliases the runtime's logical timestamp (the epoch index).
type Time = dataflow.Time

// Kind discriminates the three event types.
type Kind uint8

// Event kinds, in generation order within each 50-event group (1 person,
// 3 auctions, 46 bids — the standard NEXMark proportions).
const (
	PersonKind Kind = iota
	AuctionKind
	BidKind
)

// Person is a new account on the auction site.
type Person struct {
	ID       uint64
	Name     string
	City     string
	State    string
	Email    string
	DateTime Time
}

// Auction is a newly listed item.
type Auction struct {
	ID         uint64
	Seller     uint64
	Category   uint64
	InitialBid uint64
	Expires    Time
	ItemName   string
	DateTime   Time
	// Closed marks the notificator's expiry marker in the closed-auctions
	// operator; generated auctions always carry false.
	Closed bool
}

// Bid is a bid on an open auction.
type Bid struct {
	Auction  uint64
	Bidder   uint64
	Price    uint64
	DateTime Time
}

// Event is one element of the input stream; exactly one payload is set
// according to Kind. A flat struct (rather than an interface) keeps batches
// contiguous and gob-friendly.
type Event struct {
	Kind    Kind
	Person  Person
	Auction Auction
	Bid     Bid
}

// Bids projects the bid sub-stream of an event stream.
func Bids(w *dataflow.Worker, name string, events dataflow.Stream[Event]) dataflow.Stream[Bid] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, events, dataflow.Pipeline[Event]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []Event) {
			var out []Bid
			for _, e := range data {
				if e.Kind == BidKind {
					out = append(out, e.Bid)
				}
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[Bid](outs[0])
}

// Auctions projects the auction sub-stream of an event stream.
func Auctions(w *dataflow.Worker, name string, events dataflow.Stream[Event]) dataflow.Stream[Auction] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, events, dataflow.Pipeline[Event]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []Event) {
			var out []Auction
			for _, e := range data {
				if e.Kind == AuctionKind {
					out = append(out, e.Auction)
				}
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[Auction](outs[0])
}

// Persons projects the person sub-stream of an event stream.
func Persons(w *dataflow.Worker, name string, events dataflow.Stream[Event]) dataflow.Stream[Person] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, events, dataflow.Pipeline[Event]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []Event) {
			var out []Person
			for _, e := range data {
				if e.Kind == PersonKind {
					out = append(out, e.Person)
				}
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[Person](outs[0])
}
