package nexmark_test

import (
	"testing"

	"megaphone/internal/nexmark"
)

// TestLoCTable: every query reports non-trivial line counts for both
// implementations (Table 1 machinery), and the stateful queries are shorter
// under Megaphone, as the paper reports.
func TestLoCTable(t *testing.T) {
	native, mega, err := nexmark.LoC()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		q := []string{"", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"}[i]
		if native[q] <= 0 || mega[q] <= 0 {
			t.Errorf("%s: native=%d megaphone=%d (markers missing?)", q, native[q], mega[q])
		}
	}
	for _, q := range []string{"q3", "q4", "q6", "q8"} {
		if mega[q] >= native[q] {
			t.Errorf("stateful %s: megaphone %d lines >= native %d; expected shorter", q, mega[q], native[q])
		}
	}
	for _, q := range []string{"q1", "q2"} {
		if mega[q] <= native[q] {
			t.Errorf("stateless %s: megaphone %d lines <= native %d; expected slightly longer", q, mega[q], native[q])
		}
	}
}

// TestGenBatchPartitions: workers jointly generate one interleaved global
// stream with no overlaps or gaps.
func TestGenBatchPartitions(t *testing.T) {
	g := nexmark.NewGen(nexmark.GenConfig{})
	const peers, perEpoch = 4, 100
	seen := make(map[nexmark.Event]int)
	for w := 0; w < peers; w++ {
		batch := g.Batch(w, peers, 3, perEpoch, perEpoch/peers)
		if len(batch) != perEpoch/peers {
			t.Fatalf("worker %d batch size %d", w, len(batch))
		}
		for _, e := range batch {
			seen[e]++
		}
	}
	if len(seen) != perEpoch {
		t.Fatalf("distinct events %d, want %d (overlap between workers)", len(seen), perEpoch)
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("event %+v generated %d times", e, c)
		}
	}
}
