package nexmark

import (
	"math/rand"
	"reflect"
	"testing"

	"megaphone/internal/core"
)

// codecPair runs one bin through gob and binary and checks both reconstruct
// the original exactly (state and pending layout).
func codecPair[R, S any](t *testing.T, label string, bin *core.BinState[R, S], newState func() *S) {
	t.Helper()
	for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
		payload, err := codec.EncodeBin(bin, nil)
		if err != nil {
			t.Fatalf("%s/%s: encode: %v", label, codec.Name(), err)
		}
		got := &core.BinState[R, S]{State: newState()}
		if err := codec.DecodeBin(got, payload); err != nil {
			t.Fatalf("%s/%s: decode: %v", label, codec.Name(), err)
		}
		if !reflect.DeepEqual(got.State, bin.State) {
			t.Fatalf("%s/%s: state mismatch\n got %+v\nwant %+v", label, codec.Name(), got.State, bin.State)
		}
		if !reflect.DeepEqual(got.Pending, bin.Pending) {
			t.Fatalf("%s/%s: pending mismatch\n got %+v\nwant %+v", label, codec.Name(), got.Pending, bin.Pending)
		}
	}
}

// requireBinaryFormat asserts the binary codec used its hand-rolled path
// (format tag 0x01) for this bin rather than falling back to gob.
func requireBinaryFormat[R, S any](t *testing.T, label string, bin *core.BinState[R, S]) {
	t.Helper()
	payload, err := core.TransferBinary.EncodeBin(bin, nil)
	if err != nil {
		t.Fatalf("%s: encode: %v", label, err)
	}
	if payload[0] != 0x01 {
		t.Fatalf("%s: fell back to gob (tag %#x) — BinaryState contract broken", label, payload[0])
	}
}

func randAuction(rng *rand.Rand) Auction {
	return Auction{
		ID:         rng.Uint64(),
		Seller:     rng.Uint64() % 1000,
		Category:   rng.Uint64() % 20,
		InitialBid: rng.Uint64() % 10000,
		Expires:    Time(rng.Intn(5000)),
		ItemName:   "item-" + string(rune('a'+rng.Intn(26))),
		DateTime:   Time(rng.Intn(5000)),
	}
}

func randBid(rng *rand.Rand) Bid {
	return Bid{
		Auction:  rng.Uint64() % 500,
		Bidder:   rng.Uint64() % 2000,
		Price:    rng.Uint64() % 100000,
		DateTime: Time(rng.Intn(5000)),
	}
}

func randPerson(rng *rand.Rand, id uint64) Person {
	return Person{
		ID:       id,
		Name:     "person",
		City:     "city",
		State:    "st",
		Email:    "a@example.com",
		DateTime: Time(rng.Intn(5000)),
	}
}

// TestQ4StateCodec: open auctions, best bids, stashed bids, and pending
// Either records (bids and expiry markers) round-trip identically.
func TestQ4StateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, size := range []int{0, 3, 500} {
		s := newQ4State()
		for i := 0; i < size; i++ {
			a := randAuction(rng)
			s.Open[a.ID] = a
			if i%2 == 0 {
				s.Best[a.ID] = rng.Uint64() % 5000
			}
			if i%3 == 0 {
				s.Stashed[a.ID] = []Bid{randBid(rng), randBid(rng)}
			}
		}
		bin := &core.BinState[core.Either[Bid, Auction], q4State]{State: s}
		for i := 0; i < size/2; i++ {
			bin.PushPending(Time(rng.Intn(100)), core.Left[Bid, Auction](randBid(rng)))
			bin.PushPending(Time(rng.Intn(100)), core.Right[Bid, Auction](Auction{ID: uint64(i), Closed: true}))
		}
		codecPair(t, "q4", bin, newQ4State)
		requireBinaryFormat(t, "q4", bin)
	}
}

// TestQ5StateCodec: slide counts and last-report markers round-trip, with
// pending slide-marker bids.
func TestQ5StateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := newQ5State()
	for i := 0; i < 200; i++ {
		s.Slides[Time(rng.Intn(1000))] = rng.Uint64() % 100
	}
	s.LastReport = 940
	bin := &core.BinState[Bid, q5State]{State: s}
	for i := 0; i < 40; i++ {
		bin.PushPending(Time(rng.Intn(100)), Bid{Auction: uint64(i)})
	}
	codecPair(t, "q5-count", bin, newQ5State)
	requireBinaryFormat(t, "q5-count", bin)

	w := newQ5WinnerState()
	for i := 0; i < 100; i++ {
		w.Best[Time(rng.Intn(1000))] = q5Best{Auction: rng.Uint64(), Count: rng.Uint64() % 500}
	}
	wbin := &core.BinState[Q5Count, q5WinnerState]{State: w}
	for i := 0; i < 20; i++ {
		wbin.PushPending(Time(rng.Intn(100)), Q5Count{Window: Time(i)})
	}
	codecPair(t, "q5-winner", wbin, newQ5WinnerState)
	requireBinaryFormat(t, "q5-winner", wbin)
}

// TestQ6RingCodec: the per-seller price ring round-trips inside MapState,
// the q6-avg operator's actual bin shape.
func TestQ6RingCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	newState := func() *core.MapState[uint64, q6Ring] {
		return &core.MapState[uint64, q6Ring]{M: make(map[uint64]q6Ring)}
	}
	s := newState()
	for i := 0; i < 300; i++ {
		var r q6Ring
		n := rng.Intn(15)
		for j := 0; j < n; j++ {
			r.push(rng.Uint64() % 10000)
		}
		s.M[rng.Uint64()%1000] = r
	}
	bin := &core.BinState[core.KV[uint64, uint64], core.MapState[uint64, q6Ring]]{State: s}
	codecPair(t, "q6-avg", bin, newState)
	requireBinaryFormat(t, "q6-avg", bin)
}

// TestQ7StateCodec: per-window maxima round-trip with pending window-close
// markers.
func TestQ7StateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newQ7State()
	for i := 0; i < 150; i++ {
		s.Windows[Time(rng.Intn(2000))] = Q7Out{
			Window: Time(rng.Intn(2000)),
			Price:  rng.Uint64() % 100000,
			Bidder: rng.Uint64() % 3000,
		}
	}
	bin := &core.BinState[Q7Out, q7State]{State: s}
	for i := 0; i < 25; i++ {
		bin.PushPending(Time(rng.Intn(100)), Q7Out{Window: Time(i * 60)})
	}
	codecPair(t, "q7", bin, newQ7State)
	requireBinaryFormat(t, "q7", bin)
}

// TestQ8StateCodec: recent registrations round-trip with pending expiry
// markers and auction-side records.
func TestQ8StateCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, size := range []int{0, 1000} {
		s := newQ8State()
		for i := 0; i < size; i++ {
			id := rng.Uint64() % 5000
			s.Since[id] = randPerson(rng, id)
		}
		bin := &core.BinState[core.Either[Person, Auction], q8State]{State: s}
		for i := 0; i < size/10; i++ {
			bin.PushPending(Time(rng.Intn(100)), core.Left[Person, Auction](Person{ID: uint64(i)}))
			bin.PushPending(Time(rng.Intn(100)), core.Right[Person, Auction](randAuction(rng)))
		}
		codecPair(t, "q8", bin, newQ8State)
		requireBinaryFormat(t, "q8", bin)
	}
}

// TestBinaryPayloadSmaller: on a large q8 bin (the paper's biggest state),
// the hand-rolled encoding must be materially smaller than gob's
// type-described stream.
func TestBinaryPayloadSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := newQ8State()
	for i := 0; i < 2000; i++ {
		id := rng.Uint64()
		s.Since[id] = randPerson(rng, id)
	}
	bin := &core.BinState[core.Either[Person, Auction], q8State]{State: s}
	gobP, err := core.TransferGob.EncodeBin(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	binP, err := core.TransferBinary.EncodeBin(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(binP) >= len(gobP) {
		t.Fatalf("binary payload %d >= gob payload %d", len(binP), len(gobP))
	}
	t.Logf("q8 2000-person bin: gob=%d bytes, binary=%d bytes (%.1f%%)",
		len(gobP), len(binP), 100*float64(len(binP))/float64(len(gobP)))
}
