package nexmark

import (
	"fmt"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// Impl selects the implementation family of a query.
type Impl int

const (
	// Native is the hand-tuned timely implementation (non-migratable).
	Native Impl = iota
	// Megaphone uses the migrateable stateful operator interface.
	Megaphone
)

// String names the implementation.
func (i Impl) String() string {
	if i == Native {
		return "native"
	}
	return "megaphone"
}

// Params configures a query instance.
type Params struct {
	Impl    Impl
	LogBins int
	// Transfer is the migration codec of the Megaphone variants (gob when
	// nil). The stateful q4–q8 state types and the MapState-backed
	// aggregation stages implement core.BinaryState, so core.TransferBinary
	// uses the fast binary encoding for them; bins of other state types
	// (e.g. q3's join state) transparently fall back to gob per bin.
	Transfer core.Codec
	// AuctionMod is Q2's filter modulus.
	AuctionMod uint64
	// WindowEpochs is the window length for Q5/Q7/Q8 (time-dilated as in
	// the paper); SlideEpochs is Q5's slide.
	WindowEpochs Time
	SlideEpochs  Time
	// Category is Q3's auction category filter.
	Category uint64
	// Meter receives per-bin load from every megaphone stage of the query
	// (nil disables metering). Stages share the meter, so it aggregates the
	// whole query's service load.
	Meter *core.LoadMeter
	// Sink, when non-nil, receives every output batch as rendered lines in
	// application order, together with its timestamp (for output-equivalence
	// checks across runs, e.g. cluster vs single-process; batch granularity
	// matters because running aggregates are only comparable at
	// end-of-epoch positions). Called from worker goroutines; must be safe
	// for concurrent use.
	Sink func(t Time, lines []string)
	// Checkpoint enables epoch-aligned checkpoints of every megaphone
	// stage of the query (each drains into its own subdirectory of
	// Checkpoint.Dir); Restore maps stage names to their loaded
	// checkpoints. Native implementations have no migrateable state and
	// ignore both.
	Checkpoint *core.CheckpointConfig
	Restore    map[string]*core.Restore
}

// config renders the megaphone operator Config for one of the query's
// stages.
func (p Params) config(name string) core.Config {
	cfg := core.Config{Name: name, LogBins: p.LogBins, Transfer: p.Transfer, Meter: p.Meter, Checkpoint: p.Checkpoint}
	if p.Restore != nil {
		cfg.Restore = p.Restore[name]
	}
	return cfg
}

func (p *Params) defaults() {
	if p.AuctionMod == 0 {
		p.AuctionMod = 13
	}
	if p.WindowEpochs == 0 {
		p.WindowEpochs = 60
	}
	if p.SlideEpochs == 0 {
		p.SlideEpochs = 10
	}
	if p.Category == 0 {
		p.Category = 10
	}
	if p.LogBins == 0 {
		p.LogBins = 8
	}
}

// QueryNames lists the implemented queries.
var QueryNames = []string{"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"}

// BuildQuery constructs the named query on worker w over the events stream,
// returning a probe on its output. Megaphone variants take their commands
// from ctl; native variants ignore it.
func BuildQuery(w *dataflow.Worker, name string, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) *dataflow.Probe {
	p.defaults()
	switch name {
	case "q1":
		return probeOf(w, p, BuildQ1(w, p, ctl, events))
	case "q2":
		return probeOf(w, p, BuildQ2(w, p, ctl, events))
	case "q3":
		return probeOf(w, p, BuildQ3(w, p, ctl, events))
	case "q4":
		return probeOf(w, p, BuildQ4(w, p, ctl, events))
	case "q5":
		return probeOf(w, p, BuildQ5(w, p, ctl, events))
	case "q6":
		return probeOf(w, p, BuildQ6(w, p, ctl, events))
	case "q7":
		return probeOf(w, p, BuildQ7(w, p, ctl, events))
	case "q8":
		return probeOf(w, p, BuildQ8(w, p, ctl, events))
	default:
		panic(fmt.Sprintf("nexmark: unknown query %q", name))
	}
}

func probeOf[T any](w *dataflow.Worker, p Params, s dataflow.Stream[T]) *dataflow.Probe {
	if p.Sink != nil {
		sink := p.Sink
		b := w.NewOp("out-sink", 0)
		dataflow.Connect(b, s, dataflow.Pipeline[T]{})
		b.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(t Time, data []T) {
				lines := make([]string, len(data))
				for i := range data {
					lines[i] = fmt.Sprintf("%v", data[i])
				}
				sink(t, lines)
			})
		})
	}
	return dataflow.NewProbe(w, s)
}

// mergeNative concatenates two streams into Either values for native binary
// operators.
func mergeNative[A, B any](w *dataflow.Worker, name string, s1 dataflow.Stream[A], s2 dataflow.Stream[B]) dataflow.Stream[core.Either[A, B]] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s1, dataflow.Pipeline[A]{})
	dataflow.Connect(b, s2, dataflow.Pipeline[B]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			out := make([]core.Either[A, B], len(data))
			for i, a := range data {
				out[i] = core.Left[A, B](a)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
		dataflow.ForEachBatch(c, 1, func(t Time, data []B) {
			out := make([]core.Either[A, B], len(data))
			for i, v := range data {
				out[i] = core.Right[A, B](v)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[core.Either[A, B]](outs[0])
}
