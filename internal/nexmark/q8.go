package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q8 — MONITOR NEW USERS. A windowed join between people who registered
// within the last window and auctions they opened as sellers. With the
// paper's twelve-hour windows this query can accumulate a massive amount of
// state; once reached, the peak size is maintained as old entries expire
// (Figure 12).
//
// Both implementations apply one canonical order within a timestamp t —
// (1) expire registrations whose window [reg, reg+window) has closed,
// (2) apply person registrations at t, (3) join auctions at t — so the
// output is a pure function of each epoch's event *set*. Without this the
// join is order-sensitive for a person and an auction arriving in the same
// epoch (their interleaving across exchange channels is scheduling
// dependent) and at the expiry boundary, which is what used to force a
// tolerance into the native-vs-megaphone equivalence test.

// Q8Out is one new seller detected.
type Q8Out struct {
	Person  uint64
	Name    string
	Auction uint64
}

// q8State maps recently registered person ids to their registration.
type q8State struct {
	Since map[uint64]Person
	// Within-epoch canonicalization: auctions whose seller was not yet
	// registered when they were applied wait here until the rest of their
	// epoch's persons arrive (step 2 before step 3 above, regardless of
	// arrival order). The buffer only describes epoch bufEpoch and is dead
	// the moment that epoch completes, and migrations and checkpoints only
	// happen on epoch boundaries — so it is deliberately unexported and
	// not part of the migrateable state (see codec.go).
	pending  map[uint64][]uint64
	bufEpoch Time
}

func newQ8State() *q8State { return &q8State{Since: make(map[uint64]Person)} }

// park holds an auction whose seller is not yet registered until the rest
// of its epoch's persons have been applied (canonical step 2 before step
// 3); the buffer resets lazily when the epoch changes.
func (s *q8State) park(t Time, a Auction) {
	if s.bufEpoch != t {
		s.bufEpoch = t
		if len(s.pending) > 0 {
			clear(s.pending)
		}
	}
	if s.pending == nil {
		s.pending = make(map[uint64][]uint64)
	}
	s.pending[a.Seller] = append(s.pending[a.Seller], a.ID)
}

// take returns (and forgets) the auctions parked this epoch for seller id.
func (s *q8State) take(t Time, id uint64) []uint64 {
	if s.bufEpoch != t {
		return nil
	}
	out := s.pending[id]
	delete(s.pending, id)
	return out
}

// BuildQ8 builds query 8 under the chosen implementation.
func BuildQ8(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q8Out] {
	p.defaults()
	people := Persons(w, "q8-people", events)
	auctions := Auctions(w, "q8-auctions", events)
	window := p.WindowEpochs

	if p.Impl == Native {
		// BEGIN Q8 NATIVE
		type wheel struct {
			q8State
			expiring map[Time][]uint64
		}
		merged := mergeNative(w, "q8-merge", people, auctions)
		return operators.UnaryScheduled(w, "q8-join", merged,
			dataflow.Exchange[core.Either[Person, Auction]]{Hash: func(e core.Either[Person, Auction]) uint64 {
				if e.IsRight {
					return core.Mix64(e.Right.Seller)
				}
				return core.Mix64(e.Left.ID)
			}},
			func() *wheel {
				return &wheel{q8State: *newQ8State(), expiring: make(map[Time][]uint64)}
			},
			func(t Time, data []core.Either[Person, Auction], s *wheel, schedule func(Time), emit func(Q8Out)) {
				// 1. Expirations due at t (window [reg, reg+window)).
				for _, id := range s.expiring[t] {
					if pe, ok := s.Since[id]; ok && pe.DateTime+window <= t {
						delete(s.Since, id)
					}
				}
				delete(s.expiring, t)
				// 2. Registrations at t.
				for _, e := range data {
					if !e.IsRight {
						pe := e.Left
						s.Since[pe.ID] = pe
						s.expiring[t+window] = append(s.expiring[t+window], pe.ID)
						schedule(t + window)
					}
				}
				// 3. Joins at t.
				for _, e := range data {
					if e.IsRight {
						if pe, ok := s.Since[e.Right.Seller]; ok {
							emit(Q8Out{Person: pe.ID, Name: pe.Name, Auction: e.Right.ID})
						}
					}
				}
			})
		// END Q8 NATIVE
	}
	// BEGIN Q8 MEGAPHONE
	return core.Binary(w,
		p.config("q8"),
		ctl, people, auctions,
		func(pe Person) uint64 { return core.Mix64(pe.ID) },
		func(a Auction) uint64 { return core.Mix64(a.Seller) },
		newQ8State,
		func(t Time, e core.Either[Person, Auction], s *q8State,
			n *core.Notificator[core.Either[Person, Auction], q8State, Q8Out], emit func(Q8Out)) {
			if e.IsRight {
				if pe, ok := s.Since[e.Right.Seller]; ok {
					emit(Q8Out{Person: pe.ID, Name: pe.Name, Auction: e.Right.ID})
				} else {
					// The seller may still register later this epoch.
					s.park(t, e.Right)
				}
				return
			}
			pe := e.Left
			if pe.Name == "" {
				// Expiry marker: pending records replay before the epoch's
				// fresh data, so this is canonical step 1.
				if old, ok := s.Since[pe.ID]; ok && old.DateTime+window <= t {
					delete(s.Since, pe.ID)
				}
				return
			}
			s.Since[pe.ID] = pe
			n.NotifyAt(t+window, core.Left[Person, Auction](Person{ID: pe.ID}))
			// Canonical step 2 before step 3: this epoch's earlier auctions.
			for _, a := range s.take(t, pe.ID) {
				emit(Q8Out{Person: pe.ID, Name: pe.Name, Auction: a})
			}
		}, nil)
	// END Q8 MEGAPHONE
}
