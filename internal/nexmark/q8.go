package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q8 — MONITOR NEW USERS. A windowed join between people who registered
// within the last window and auctions they opened as sellers. With the
// paper's twelve-hour windows this query can accumulate a massive amount of
// state; once reached, the peak size is maintained as old entries expire
// (Figure 12).

// Q8Out is one new seller detected.
type Q8Out struct {
	Person  uint64
	Name    string
	Auction uint64
}

// q8State maps recently registered person ids to their registration.
type q8State struct {
	Since map[uint64]Person
}

func newQ8State() *q8State { return &q8State{Since: make(map[uint64]Person)} }

// BuildQ8 builds query 8 under the chosen implementation.
func BuildQ8(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q8Out] {
	p.defaults()
	people := Persons(w, "q8-people", events)
	auctions := Auctions(w, "q8-auctions", events)
	window := p.WindowEpochs

	if p.Impl == Native {
		// BEGIN Q8 NATIVE
		type wheel struct {
			q8State
			expiring map[Time][]uint64
		}
		merged := mergeNative(w, "q8-merge", people, auctions)
		return operators.UnaryScheduled(w, "q8-join", merged,
			dataflow.Exchange[core.Either[Person, Auction]]{Hash: func(e core.Either[Person, Auction]) uint64 {
				if e.IsRight {
					return core.Mix64(e.Right.Seller)
				}
				return core.Mix64(e.Left.ID)
			}},
			func() *wheel {
				return &wheel{q8State: *newQ8State(), expiring: make(map[Time][]uint64)}
			},
			func(t Time, data []core.Either[Person, Auction], s *wheel, schedule func(Time), emit func(Q8Out)) {
				for _, e := range data {
					if !e.IsRight {
						pe := e.Left
						s.Since[pe.ID] = pe
						s.expiring[t+window] = append(s.expiring[t+window], pe.ID)
						schedule(t + window)
					} else if pe, ok := s.Since[e.Right.Seller]; ok {
						emit(Q8Out{Person: pe.ID, Name: pe.Name, Auction: e.Right.ID})
					}
				}
				for _, id := range s.expiring[t] {
					if pe, ok := s.Since[id]; ok && pe.DateTime+window <= t {
						delete(s.Since, id)
					}
				}
				delete(s.expiring, t)
			})
		// END Q8 NATIVE
	}
	// BEGIN Q8 MEGAPHONE
	return core.Binary(w,
		p.config("q8"),
		ctl, people, auctions,
		func(pe Person) uint64 { return core.Mix64(pe.ID) },
		func(a Auction) uint64 { return core.Mix64(a.Seller) },
		newQ8State,
		func(t Time, e core.Either[Person, Auction], s *q8State,
			n *core.Notificator[core.Either[Person, Auction], q8State, Q8Out], emit func(Q8Out)) {
			if !e.IsRight {
				pe := e.Left
				if pe.Name == "" {
					// Expiry marker: drop the registration if not renewed.
					if old, ok := s.Since[pe.ID]; ok && old.DateTime+window <= t {
						delete(s.Since, pe.ID)
					}
					return
				}
				s.Since[pe.ID] = pe
				n.NotifyAt(t+window, core.Left[Person, Auction](Person{ID: pe.ID}))
			} else if pe, ok := s.Since[e.Right.Seller]; ok {
				emit(Q8Out{Person: pe.ID, Name: pe.Name, Auction: e.Right.ID})
			}
		}, nil)
	// END Q8 MEGAPHONE
}
