package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q3 — LOCAL ITEM SUGGESTION. Incremental join of people in Oregon, Idaho
// or California with auctions in a category, keyed by person id = seller.
// The join state (both relations) grows without bound as the computation
// runs (Figure 7).

// Q3Out is one join result.
type Q3Out struct {
	Name    string
	City    string
	State   string
	Auction uint64
}

// q3State is the per-key join state: the person (if seen) and the auctions
// awaiting them.
type q3State struct {
	Persons  map[uint64]Person
	Auctions map[uint64][]Auction
}

func q3Wanted(state string) bool { return state == "OR" || state == "ID" || state == "CA" }

func newQ3State() *q3State {
	return &q3State{Persons: make(map[uint64]Person), Auctions: make(map[uint64][]Auction)}
}

// q3Apply is the shared join logic over one Either record.
func q3Apply(e core.Either[Person, Auction], s *q3State, emit func(Q3Out)) {
	if !e.IsRight {
		p := e.Left
		if _, dup := s.Persons[p.ID]; dup {
			return
		}
		s.Persons[p.ID] = p
		for _, a := range s.Auctions[p.ID] {
			emit(Q3Out{Name: p.Name, City: p.City, State: p.State, Auction: a.ID})
		}
	} else {
		a := e.Right
		if p, ok := s.Persons[a.Seller]; ok {
			emit(Q3Out{Name: p.Name, City: p.City, State: p.State, Auction: a.ID})
		}
		s.Auctions[a.Seller] = append(s.Auctions[a.Seller], a)
	}
}

// BuildQ3 builds query 3 under the chosen implementation.
func BuildQ3(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q3Out] {
	p.defaults()
	people := operators.Filter(w, "q3-people", Persons(w, "q3-persons", events),
		func(pe Person) bool { return q3Wanted(pe.State) })
	auctions := operators.Filter(w, "q3-auctions", Auctions(w, "q3-auction-src", events),
		func(a Auction) bool { return a.Category == p.Category })

	if p.Impl == Native {
		// BEGIN Q3 NATIVE
		merged := mergeNative(w, "q3-merge", people, auctions)
		return operators.UnaryNotify(w, "q3-join", merged,
			dataflow.Exchange[core.Either[Person, Auction]]{Hash: func(e core.Either[Person, Auction]) uint64 {
				if e.IsRight {
					return core.Mix64(e.Right.Seller)
				}
				return core.Mix64(e.Left.ID)
			}},
			newQ3State,
			func(t Time, data []core.Either[Person, Auction], s *q3State, emit func(Q3Out)) {
				for _, e := range data {
					q3Apply(e, s, emit)
				}
			})
		// END Q3 NATIVE
	}
	// BEGIN Q3 MEGAPHONE
	return core.Binary(w,
		p.config("q3"),
		ctl, people, auctions,
		func(pe Person) uint64 { return core.Mix64(pe.ID) },
		func(a Auction) uint64 { return core.Mix64(a.Seller) },
		newQ3State,
		func(t Time, e core.Either[Person, Auction], s *q3State, _ *core.Notificator[core.Either[Person, Auction], q3State, Q3Out], emit func(Q3Out)) {
			q3Apply(e, s, emit)
		}, nil)
	// END Q3 MEGAPHONE
}
