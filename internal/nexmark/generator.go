package nexmark

import (
	"fmt"

	"megaphone/internal/core"
)

// GenConfig parameterizes the event generator. The defaults model the
// reference generator's intrinsic properties at laptop scale: the number of
// active auctions is fixed regardless of rate, categories are uniform, and
// sellers and bidders are drawn from the live population with a hot-key
// skew.
type GenConfig struct {
	// ActiveAuctions bounds the set of auctions bids are drawn from.
	ActiveAuctions uint64
	// ActivePeople bounds the set of recently created people referenced by
	// bids and auctions.
	ActivePeople uint64
	// Categories is the number of auction categories.
	Categories uint64
	// AuctionEpochs is how many epochs an auction stays open (time
	// dilation is applied by scaling this, as the paper does for Q5/Q8).
	AuctionEpochs Time
	// HotRatio is the proportion (1/HotRatio of draws) of bids that go to
	// the hottest auction, modelling skew; 0 disables.
	HotRatio uint64
	// HotShiftEvery moves the hot auction every HotShiftEvery epochs: the
	// hot draws go to a pseudorandom live auction that jumps each period
	// instead of the newest one, so the hot bins wander the way an adaptive
	// controller must chase. 0 keeps the hot auction pinned to the newest.
	HotShiftEvery Time
}

func (c *GenConfig) defaults() {
	if c.ActiveAuctions == 0 {
		c.ActiveAuctions = 1000
	}
	if c.ActivePeople == 0 {
		c.ActivePeople = 1000
	}
	if c.Categories == 0 {
		c.Categories = 16
	}
	if c.AuctionEpochs == 0 {
		c.AuctionEpochs = 100
	}
}

// personProportion et al. are the standard NEXMark event proportions: out of
// every 50 events, 1 is a person, 3 are auctions and 46 are bids.
const (
	groupSize         = 50
	personProportion  = 1
	auctionProportion = 3
)

var usStates = []string{"OR", "ID", "CA", "WA", "AZ", "NV", "MT", "UT"}
var usCities = []string{"Portland", "Boise", "Palo Alto", "Seattle", "Phoenix", "Reno", "Helena", "Provo"}

// Gen deterministically produces the n-th event of the stream at a given
// epoch: the same (n, epoch) always yields the same event, so all workers
// can generate disjoint partitions of one global stream without
// coordination.
type Gen struct {
	cfg GenConfig
}

// NewGen returns a generator with defaults applied.
func NewGen(cfg GenConfig) *Gen {
	cfg.defaults()
	return &Gen{cfg: cfg}
}

// At returns event number n with event-time epoch.
func (g *Gen) At(n uint64, epoch Time) Event {
	group := n / groupSize
	rem := n % groupSize
	rng := core.Mix64(n*0x9e3779b97f4a7c15 + 1)

	switch {
	case rem < personProportion:
		id := group // one person per group
		return Event{Kind: PersonKind, Person: Person{
			ID:       id,
			Name:     fmt.Sprintf("person-%d", id),
			City:     usCities[rng%uint64(len(usCities))],
			State:    usStates[(rng>>8)%uint64(len(usStates))],
			Email:    fmt.Sprintf("p%d@example.com", id),
			DateTime: epoch,
		}}
	case rem < personProportion+auctionProportion:
		seq := group*auctionProportion + (rem - personProportion)
		seller := g.recentPerson(group, rng)
		return Event{Kind: AuctionKind, Auction: Auction{
			ID:         seq,
			Seller:     seller,
			Category:   rng >> 16 % g.cfg.Categories,
			InitialBid: 100 + rng%900,
			Expires:    epoch + g.cfg.AuctionEpochs,
			ItemName:   fmt.Sprintf("item-%d", seq),
			DateTime:   epoch,
		}}
	default:
		return Event{Kind: BidKind, Bid: Bid{
			Auction:  g.recentAuction(group, rng, epoch),
			Bidder:   g.recentPerson(group, rng>>13),
			Price:    100 + (rng>>24)%10000,
			DateTime: epoch,
		}}
	}
}

// recentAuction picks an auction id among the most recent ActiveAuctions
// listings, optionally skewed to the newest one (or, with HotShiftEvery, to
// a per-period pseudorandom one).
func (g *Gen) recentAuction(group, rng uint64, epoch Time) uint64 {
	maxSeq := group*auctionProportion + auctionProportion - 1
	if g.cfg.HotRatio > 0 && rng%g.cfg.HotRatio == 0 {
		if g.cfg.HotShiftEvery > 0 {
			phase := uint64(epoch/g.cfg.HotShiftEvery) + 1
			span := g.cfg.ActiveAuctions
			if maxSeq+1 < span {
				span = maxSeq + 1
			}
			return maxSeq - core.Mix64(phase*0x9e3779b97f4a7c15)%span
		}
		return maxSeq
	}
	span := g.cfg.ActiveAuctions
	if maxSeq+1 < span {
		span = maxSeq + 1
	}
	return maxSeq - (rng>>7)%span
}

// recentPerson picks a person id among the most recent ActivePeople
// accounts.
func (g *Gen) recentPerson(group, rng uint64) uint64 {
	maxID := group // persons created one per group
	span := g.cfg.ActivePeople
	if maxID+1 < span {
		span = maxID + 1
	}
	return maxID - (rng>>3)%span
}

// Batch produces n consecutive events for worker w at the given epoch,
// drawing from the worker's residue class of the global sequence so workers
// jointly generate one interleaved stream. perEpoch is the global number of
// events per epoch and peers the number of workers.
func (g *Gen) Batch(w, peers int, epoch Time, perEpoch, n int) []Event {
	base := uint64(epoch) * uint64(perEpoch)
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := base + uint64(i*peers+w)
		out = append(out, g.At(idx, epoch))
	}
	return out
}
