package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q2 — SELECTION. Keep bids whose auction id matches a modulus. Stateless
// (Figure 6).

// Q2Out is a matching (auction, price) pair.
type Q2Out struct {
	Auction uint64
	Price   uint64
}

// BuildQ2 builds query 2 under the chosen implementation.
func BuildQ2(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q2Out] {
	p.defaults()
	bids := Bids(w, "q2-bids", events)
	mod := p.AuctionMod
	if p.Impl == Native {
		// BEGIN Q2 NATIVE
		matching := operators.Filter(w, "q2-filter", bids, func(b Bid) bool {
			return b.Auction%mod == 0
		})
		return operators.Map(w, "q2-project", matching, func(b Bid) Q2Out {
			return Q2Out{Auction: b.Auction, Price: b.Price}
		})
		// END Q2 NATIVE
	}
	// BEGIN Q2 MEGAPHONE
	return core.Unary(w,
		p.config("q2"),
		ctl, bids,
		func(b Bid) uint64 { return core.Mix64(b.Auction) },
		func() *struct{} { return &struct{}{} },
		func(t Time, b Bid, _ *struct{}, _ *core.Notificator[Bid, struct{}, Q2Out], emit func(Q2Out)) {
			if b.Auction%mod == 0 {
				emit(Q2Out{Auction: b.Auction, Price: b.Price})
			}
		}, nil)
	// END Q2 MEGAPHONE
}
