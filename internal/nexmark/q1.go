package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q1 — CURRENCY CONVERSION. Transform each bid's price from dollars into a
// different currency. Stateless: migration moves no state (Figure 5).

// BuildQ1 builds query 1 under the chosen implementation.
func BuildQ1(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Bid] {
	p.defaults()
	bids := Bids(w, "q1-bids", events)
	if p.Impl == Native {
		// BEGIN Q1 NATIVE
		return operators.Map(w, "q1-convert", bids, func(b Bid) Bid {
			b.Price = b.Price * 89 / 100
			return b
		})
		// END Q1 NATIVE
	}
	// BEGIN Q1 MEGAPHONE
	return core.Unary(w,
		p.config("q1"),
		ctl, bids,
		func(b Bid) uint64 { return core.Mix64(b.Auction) },
		func() *struct{} { return &struct{}{} },
		func(t Time, b Bid, _ *struct{}, _ *core.Notificator[Bid, struct{}, Bid], emit func(Bid)) {
			b.Price = b.Price * 89 / 100
			emit(b)
		}, nil)
	// END Q1 MEGAPHONE
}
