package nexmark

import (
	"fmt"

	"megaphone/internal/binenc"
)

// Binary migration encodings (core.BinaryState / core.BinaryRec) for the
// NEXMark query state and event types, used by core.TransferBinary. Q4–Q8
// keep per-bin state that can grow large (open auctions, sliding windows,
// registration joins), so their migration payloads are the ones where the
// hand-rolled encoding pays off against gob. The stateless Q1/Q2 and the
// unbounded-join Q3 migrate MapState-shaped or empty bins, which the core
// codecs already cover.
//
// Q4 and Q8 additionally schedule post-dated records (auction expiries,
// registration expiries), so their record types — Bid, Auction, Person and
// their core.Either merges — implement core.BinaryRec, letting pending
// heaps migrate in the binary format too.

// --- Event records (core.BinaryRec) ---

// AppendBinaryRec implements core.BinaryRec.
func (b *Bid) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, b.Auction)
	buf = binenc.AppendUvarint(buf, b.Bidder)
	buf = binenc.AppendUvarint(buf, b.Price)
	return binenc.AppendUvarint(buf, uint64(b.DateTime))
}

// DecodeBinaryRec implements core.BinaryRec.
func (b *Bid) DecodeBinaryRec(data []byte) ([]byte, error) {
	var err error
	if b.Auction, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if b.Bidder, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if b.Price, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	t, data, err := binenc.Uvarint(data)
	b.DateTime = Time(t)
	return data, err
}

// AppendBinaryRec implements core.BinaryRec.
func (a *Auction) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, a.ID)
	buf = binenc.AppendUvarint(buf, a.Seller)
	buf = binenc.AppendUvarint(buf, a.Category)
	buf = binenc.AppendUvarint(buf, a.InitialBid)
	buf = binenc.AppendUvarint(buf, uint64(a.Expires))
	buf = binenc.AppendString(buf, a.ItemName)
	buf = binenc.AppendUvarint(buf, uint64(a.DateTime))
	return binenc.AppendBool(buf, a.Closed)
}

// DecodeBinaryRec implements core.BinaryRec.
func (a *Auction) DecodeBinaryRec(data []byte) ([]byte, error) {
	var err error
	if a.ID, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if a.Seller, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if a.Category, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if a.InitialBid, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	var t uint64
	if t, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	a.Expires = Time(t)
	if a.ItemName, data, err = binenc.String(data); err != nil {
		return nil, err
	}
	if t, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	a.DateTime = Time(t)
	a.Closed, data, err = binenc.Bool(data)
	return data, err
}

// AppendBinaryRec implements core.BinaryRec.
func (p *Person) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, p.ID)
	buf = binenc.AppendString(buf, p.Name)
	buf = binenc.AppendString(buf, p.City)
	buf = binenc.AppendString(buf, p.State)
	buf = binenc.AppendString(buf, p.Email)
	return binenc.AppendUvarint(buf, uint64(p.DateTime))
}

// DecodeBinaryRec implements core.BinaryRec.
func (p *Person) DecodeBinaryRec(data []byte) ([]byte, error) {
	var err error
	if p.ID, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if p.Name, data, err = binenc.String(data); err != nil {
		return nil, err
	}
	if p.City, data, err = binenc.String(data); err != nil {
		return nil, err
	}
	if p.State, data, err = binenc.String(data); err != nil {
		return nil, err
	}
	if p.Email, data, err = binenc.String(data); err != nil {
		return nil, err
	}
	t, data, err := binenc.Uvarint(data)
	p.DateTime = Time(t)
	return data, err
}

// AppendBinaryRec implements core.BinaryRec.
func (c *Q5Count) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(c.Window))
	buf = binenc.AppendUvarint(buf, c.Auction)
	return binenc.AppendUvarint(buf, c.Count)
}

// DecodeBinaryRec implements core.BinaryRec.
func (c *Q5Count) DecodeBinaryRec(data []byte) ([]byte, error) {
	w, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, err
	}
	c.Window = Time(w)
	if c.Auction, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	c.Count, data, err = binenc.Uvarint(data)
	return data, err
}

// AppendBinaryRec implements core.BinaryRec.
func (o *Q7Out) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(o.Window))
	buf = binenc.AppendUvarint(buf, o.Price)
	return binenc.AppendUvarint(buf, o.Bidder)
}

// DecodeBinaryRec implements core.BinaryRec.
func (o *Q7Out) DecodeBinaryRec(data []byte) ([]byte, error) {
	w, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, err
	}
	o.Window = Time(w)
	if o.Price, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	o.Bidder, data, err = binenc.Uvarint(data)
	return data, err
}

// --- Q4: open auctions (core.BinaryState) ---

// AppendBinaryState implements core.BinaryState.
func (s *q4State) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.Open)))
	for id, a := range s.Open {
		buf = binenc.AppendUvarint(buf, id)
		buf = a.AppendBinaryRec(buf)
	}
	buf = binenc.AppendUvarint(buf, uint64(len(s.Best)))
	for id, price := range s.Best {
		buf = binenc.AppendUvarint(buf, id)
		buf = binenc.AppendUvarint(buf, price)
	}
	buf = binenc.AppendUvarint(buf, uint64(len(s.Stashed)))
	for id, bids := range s.Stashed {
		buf = binenc.AppendUvarint(buf, id)
		buf = binenc.AppendUvarint(buf, uint64(len(bids)))
		for i := range bids {
			buf = bids[i].AppendBinaryRec(buf)
		}
	}
	return buf
}

// DecodeBinaryState implements core.BinaryState.
func (s *q4State) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 2)
	if err != nil {
		return nil, err
	}
	s.Open = make(map[uint64]Auction, n)
	for i := uint64(0); i < n; i++ {
		var id uint64
		if id, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		var a Auction
		if data, err = a.DecodeBinaryRec(data); err != nil {
			return nil, err
		}
		s.Open[id] = a
	}
	if n, data, err = binenc.Count(data, 2); err != nil {
		return nil, err
	}
	s.Best = make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		var id, price uint64
		if id, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		if price, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		s.Best[id] = price
	}
	if n, data, err = binenc.Count(data, 2); err != nil {
		return nil, err
	}
	s.Stashed = make(map[uint64][]Bid, n)
	for i := uint64(0); i < n; i++ {
		var id, m uint64
		if id, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		if m, data, err = binenc.Count(data, 4); err != nil { // 4 uvarints per bid
			return nil, err
		}
		bids := make([]Bid, m)
		for j := range bids {
			if data, err = bids[j].DecodeBinaryRec(data); err != nil {
				return nil, err
			}
		}
		s.Stashed[id] = bids
	}
	return data, nil
}

// --- Q5: sliding-window counts and per-window winners ---

// AppendBinaryState implements core.BinaryState.
func (s *q5State) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.Slides)))
	for start, c := range s.Slides {
		buf = binenc.AppendUvarint(buf, uint64(start))
		buf = binenc.AppendUvarint(buf, c)
	}
	return binenc.AppendUvarint(buf, uint64(s.LastReport))
}

// DecodeBinaryState implements core.BinaryState.
func (s *q5State) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 2)
	if err != nil {
		return nil, err
	}
	s.Slides = make(map[Time]uint64, n)
	for i := uint64(0); i < n; i++ {
		var start, c uint64
		if start, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		if c, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		s.Slides[Time(start)] = c
	}
	last, data, err := binenc.Uvarint(data)
	s.LastReport = Time(last)
	return data, err
}

// AppendBinaryState implements core.BinaryState.
func (s *q5WinnerState) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.Best)))
	for w, b := range s.Best {
		buf = binenc.AppendUvarint(buf, uint64(w))
		buf = binenc.AppendUvarint(buf, b.Auction)
		buf = binenc.AppendUvarint(buf, b.Count)
	}
	return buf
}

// DecodeBinaryState implements core.BinaryState.
func (s *q5WinnerState) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 3)
	if err != nil {
		return nil, err
	}
	s.Best = make(map[Time]q5Best, n)
	for i := uint64(0); i < n; i++ {
		var w uint64
		var b q5Best
		if w, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		if b.Auction, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		if b.Count, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		s.Best[Time(w)] = b
	}
	return data, nil
}

// --- Q6: last-ten price ring (core.BinaryRec, as a MapState value) ---

// AppendBinaryRec implements core.BinaryRec so MapState[uint64, q6Ring]
// (the q6-avg operator's bins) can migrate in binary form.
func (r *q6Ring) AppendBinaryRec(buf []byte) []byte {
	for _, p := range r.Prices {
		buf = binenc.AppendUvarint(buf, p)
	}
	buf = binenc.AppendUvarint(buf, uint64(r.Len))
	return binenc.AppendUvarint(buf, uint64(r.Next))
}

// DecodeBinaryRec implements core.BinaryRec.
func (r *q6Ring) DecodeBinaryRec(data []byte) ([]byte, error) {
	var err error
	for i := range r.Prices {
		if r.Prices[i], data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
	}
	var v uint64
	if v, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if v > uint64(len(r.Prices)) {
		return nil, fmt.Errorf("q6 ring Len %d exceeds %d slots: %w", v, len(r.Prices), binenc.ErrShort)
	}
	r.Len = int(v)
	if v, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	if v >= uint64(len(r.Prices)) {
		return nil, fmt.Errorf("q6 ring Next %d out of range: %w", v, binenc.ErrShort)
	}
	r.Next = int(v)
	return data, nil
}

// --- Q7: per-window maxima ---

// AppendBinaryState implements core.BinaryState.
func (s *q7State) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.Windows)))
	for w, o := range s.Windows {
		buf = binenc.AppendUvarint(buf, uint64(w))
		buf = o.AppendBinaryRec(buf)
	}
	return buf
}

// DecodeBinaryState implements core.BinaryState.
func (s *q7State) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 4)
	if err != nil {
		return nil, err
	}
	s.Windows = make(map[Time]Q7Out, n)
	for i := uint64(0); i < n; i++ {
		var w uint64
		if w, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		var o Q7Out
		if data, err = o.DecodeBinaryRec(data); err != nil {
			return nil, err
		}
		s.Windows[Time(w)] = o
	}
	return data, nil
}

// --- Q8: recent registrations ---

// AppendBinaryState implements core.BinaryState. Only Since is encoded:
// the within-epoch auction buffer (q8State.pending) describes a single,
// already-completed epoch by the time a bin can migrate or checkpoint, so
// it is dead state on arrival and deliberately omitted (gob omits it too,
// being unexported).
func (s *q8State) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(s.Since)))
	for id, p := range s.Since {
		buf = binenc.AppendUvarint(buf, id)
		buf = p.AppendBinaryRec(buf)
	}
	return buf
}

// DecodeBinaryState implements core.BinaryState.
func (s *q8State) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 2)
	if err != nil {
		return nil, err
	}
	s.Since = make(map[uint64]Person, n)
	for i := uint64(0); i < n; i++ {
		var id uint64
		if id, data, err = binenc.Uvarint(data); err != nil {
			return nil, err
		}
		var p Person
		if data, err = p.DecodeBinaryRec(data); err != nil {
			return nil, err
		}
		s.Since[id] = p
	}
	return data, nil
}
