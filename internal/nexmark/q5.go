package nexmark

import (
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// Q5 — HOT ITEMS. Report, at every slide boundary, the auction with the
// highest number of bids over the preceding window. Each auction maintains
// up to window/slide per-slide counts so totals can be reported and
// retracted as time advances; the paper dilates time so the sixty-minute
// window fits the run (Figure 9).

// Q5Count is one auction's bid count over the window ending at Window.
type Q5Count struct {
	Window  Time
	Auction uint64
	Count   uint64
}

// Q5Out is the hottest auction of one window.
type Q5Out struct {
	Window  Time
	Auction uint64
	Count   uint64
}

// q5State is the per-auction sliding-window state: bid counts per slide.
type q5State struct {
	Slides     map[Time]uint64 // slide start -> count
	LastReport Time            // dedups slide markers
}

func newQ5State() *q5State { return &q5State{Slides: make(map[Time]uint64)} }

// windowTotal sums the slides in (end-window, end] and prunes older ones.
func (s *q5State) windowTotal(end, window Time) uint64 {
	var total uint64
	for start, c := range s.Slides {
		if start+window <= end {
			delete(s.Slides, start)
			continue
		}
		if start < end {
			total += c
		}
	}
	return total
}

// q5CounterMegaphone emits per-auction window counts at slide boundaries.
func q5CounterMegaphone(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], bids dataflow.Stream[Bid]) dataflow.Stream[Q5Count] {
	slide, window := p.SlideEpochs, p.WindowEpochs
	// BEGIN Q5 MEGAPHONE COUNTER
	return core.Unary(w,
		p.config("q5-count"),
		ctl, bids,
		func(b Bid) uint64 { return core.Mix64(b.Auction) },
		newQ5State,
		func(t Time, b Bid, s *q5State, n *core.Notificator[Bid, q5State, Q5Count], emit func(Q5Count)) {
			if b.DateTime == 0 && b.Bidder == 0 && b.Price == 0 {
				// Slide marker: report the window ending at this boundary.
				// Markers may arrive more than once per slide; dedup.
				if t <= s.LastReport {
					return
				}
				s.LastReport = t
				if total := s.windowTotal(t, window); total > 0 {
					emit(Q5Count{Window: t, Auction: b.Auction, Count: total})
					// Keep reporting while the window stays non-empty.
					n.NotifyAt(t+slide, Bid{Auction: b.Auction})
				}
				return
			}
			start := b.DateTime / slide * slide
			if s.Slides[start] == 0 {
				n.NotifyAt(start+slide, Bid{Auction: b.Auction})
			}
			s.Slides[start]++
		}, nil)
	// END Q5 MEGAPHONE COUNTER
}

// q5Best is the current leader of one open window.
type q5Best struct {
	Auction uint64
	Count   uint64
}

// q5WinnerState maps open windows to their current leading auction.
type q5WinnerState struct {
	Best map[Time]q5Best
}

func newQ5WinnerState() *q5WinnerState { return &q5WinnerState{Best: make(map[Time]q5Best)} }

// q5Winner reduces per-auction counts to the hottest auction per window.
func q5WinnerMegaphone(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], counts dataflow.Stream[Q5Count]) dataflow.Stream[Q5Out] {
	// BEGIN Q5 MEGAPHONE WINNER
	return core.Unary(w,
		p.config("q5-winner"),
		ctl, counts,
		func(c Q5Count) uint64 { return core.Mix64(uint64(c.Window)) },
		newQ5WinnerState,
		func(t Time, c Q5Count, s *q5WinnerState, n *core.Notificator[Q5Count, q5WinnerState, Q5Out], emit func(Q5Out)) {
			if c.Auction == 0 && c.Count == 0 {
				// Window-close marker.
				if b, ok := s.Best[c.Window]; ok {
					emit(Q5Out{Window: c.Window, Auction: b.Auction, Count: b.Count})
					delete(s.Best, c.Window)
				}
				return
			}
			b, seen := s.Best[c.Window]
			if !seen {
				n.NotifyAt(c.Window+1, Q5Count{Window: c.Window})
			}
			if c.Count > b.Count {
				b = q5Best{Auction: c.Auction, Count: c.Count}
			}
			s.Best[c.Window] = b
		}, nil)
	// END Q5 MEGAPHONE WINNER
}

// BuildQ5 builds query 5 under the chosen implementation.
func BuildQ5(w *dataflow.Worker, p Params, ctl dataflow.Stream[core.Move], events dataflow.Stream[Event]) dataflow.Stream[Q5Out] {
	p.defaults()
	bids := Bids(w, "q5-bids", events)
	if p.Impl == Native {
		slide, window := p.SlideEpochs, p.WindowEpochs
		// BEGIN Q5 NATIVE
		counts := operators.UnaryScheduled(w, "q5-count", bids,
			dataflow.Exchange[Bid]{Hash: func(b Bid) uint64 { return core.Mix64(b.Auction) }},
			func() map[uint64]*q5State { return make(map[uint64]*q5State) },
			func(t Time, data []Bid, s map[uint64]*q5State, schedule func(Time), emit func(Q5Count)) {
				for _, b := range data {
					st, ok := s[b.Auction]
					if !ok {
						st = newQ5State()
						s[b.Auction] = st
					}
					start := b.DateTime / slide * slide
					st.Slides[start]++
					schedule(start + slide)
				}
				if t%slide == 0 {
					for auction, st := range s {
						if total := st.windowTotal(t, window); total > 0 {
							emit(Q5Count{Window: t, Auction: auction, Count: total})
							schedule(t + slide)
						} else if len(st.Slides) == 0 {
							delete(s, auction)
						}
					}
				}
			})
		type best struct {
			Auction uint64
			Count   uint64
		}
		return operators.UnaryScheduled(w, "q5-winner", counts,
			dataflow.Exchange[Q5Count]{Hash: func(c Q5Count) uint64 { return core.Mix64(uint64(c.Window)) }},
			func() map[Time]best { return make(map[Time]best) },
			func(t Time, data []Q5Count, s map[Time]best, schedule func(Time), emit func(Q5Out)) {
				for _, c := range data {
					if b := s[c.Window]; c.Count > b.Count {
						s[c.Window] = best{Auction: c.Auction, Count: c.Count}
						schedule(c.Window + 1)
					}
				}
				for window, b := range s {
					if window < t {
						emit(Q5Out{Window: window, Auction: b.Auction, Count: b.Count})
						delete(s, window)
					}
				}
			})
		// END Q5 NATIVE
	}
	counts := q5CounterMegaphone(w, p, ctl, bids)
	return q5WinnerMegaphone(w, p, ctl, counts)
}
