// Package progress implements timely-dataflow progress tracking: it counts
// outstanding pointstamps (logical timestamps on messages in flight and on
// capabilities held by operators) at every location of a dataflow graph and
// derives, for every operator input port, a frontier — a lower bound on the
// timestamps that may still arrive there (Definition 1 of the Megaphone
// paper).
//
// The paper's setting runs Naiad's distributed progress protocol across
// processes. This reproduction executes all workers in one process, so the
// tracker is a single shared structure updated atomically under a mutex:
// each worker applies the counts for the messages it consumed together with
// the counts for the messages and capability changes that consumption
// produced. Atomic batches preserve the protocol's safety property (a
// frontier never advances past a live pointstamp) and liveness property
// (frontiers advance once counts drain), which are the only properties the
// layers above rely on. See DESIGN.md, "Substitutions".
package progress

import "fmt"

// Node identifies an operator in the dataflow graph summary.
type Node int

// Edge identifies a channel between an operator output port and an operator
// input port.
type Edge int

// Port pairs a node with one of its port indexes.
type Port struct {
	Node Node
	Port int
}

// Location is a place where pointstamps accumulate: either an edge (messages
// queued or in flight) or an operator output port (capabilities held by the
// operator to produce future output).
type Location int

type edgeInfo struct {
	src Port // output port of the producing node
	dst Port // input port of the consuming node
}

type nodeInfo struct {
	inputs  int
	outputs int
	name    string
}

// GraphBuilder assembles the static summary of a dataflow graph: its nodes,
// their port counts, and the edges between ports. Build freezes the graph
// and returns a Tracker.
type GraphBuilder struct {
	nodes []nodeInfo
	edges []edgeInfo
}

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{}
}

// AddNode declares an operator with the given number of input and output
// ports and returns its identifier.
func (b *GraphBuilder) AddNode(name string, inputs, outputs int) Node {
	b.nodes = append(b.nodes, nodeInfo{inputs: inputs, outputs: outputs, name: name})
	return Node(len(b.nodes) - 1)
}

// AddEdge declares a channel from src to dst and returns its identifier.
func (b *GraphBuilder) AddEdge(src, dst Port) Edge {
	b.validatePort(src, false)
	b.validatePort(dst, true)
	b.edges = append(b.edges, edgeInfo{src: src, dst: dst})
	return Edge(len(b.edges) - 1)
}

func (b *GraphBuilder) validatePort(p Port, input bool) {
	if int(p.Node) < 0 || int(p.Node) >= len(b.nodes) {
		panic(fmt.Sprintf("progress: node %d out of range", p.Node))
	}
	n := b.nodes[p.Node]
	limit := n.outputs
	if input {
		limit = n.inputs
	}
	if p.Port < 0 || p.Port >= limit {
		panic(fmt.Sprintf("progress: port %d out of range for node %q", p.Port, n.name))
	}
}

// locations lays out the location index space: first all edges, then all
// (node, output-port) capability locations.
func (b *GraphBuilder) locations() (edgeLoc func(Edge) Location, capLoc func(Port) Location, total int) {
	capBase := len(b.edges)
	capOffset := make([]int, len(b.nodes))
	off := 0
	for i, n := range b.nodes {
		capOffset[i] = off
		off += n.outputs
	}
	total = capBase + off
	edgeLoc = func(e Edge) Location { return Location(e) }
	capLoc = func(p Port) Location { return Location(capBase + capOffset[p.Node] + p.Port) }
	return edgeLoc, capLoc, total
}

// reachability computes, for every node input port, the set of locations
// whose pointstamps could still result in a message arriving at that port.
// An operator is summarized conservatively: every input port can produce
// output on every output port without advancing the timestamp, which is
// exact for all operators in this repository (the dataflows are acyclic and
// no operator advances timestamps).
func (b *GraphBuilder) reachability() map[Port][]Location {
	edgeLoc, capLoc, _ := b.locations()

	// outEdges[src] lists edges leaving an output port.
	outEdges := make(map[Port][]Edge)
	for i, e := range b.edges {
		outEdges[e.src] = append(outEdges[e.src], Edge(i))
	}

	result := make(map[Port][]Location)
	for ni, n := range b.nodes {
		for ip := 0; ip < n.inputs; ip++ {
			target := Port{Node: Node(ni), Port: ip}
			result[target] = b.upstream(target, outEdges, edgeLoc, capLoc)
		}
	}
	return result
}

// upstream performs a reverse traversal from the target input port,
// collecting every edge and capability location that can reach it.
func (b *GraphBuilder) upstream(target Port, outEdges map[Port][]Edge, edgeLoc func(Edge) Location, capLoc func(Port) Location) []Location {
	var locs []Location
	seenLoc := make(map[Location]bool)
	addLoc := func(l Location) {
		if !seenLoc[l] {
			seenLoc[l] = true
			locs = append(locs, l)
		}
	}
	seenEdge := make(map[Edge]bool)
	seenInput := make(map[Port]bool)

	// Worklist of input ports whose incoming edges must be explored.
	work := []Port{target}
	seenInput[target] = true
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for i, e := range b.edges {
			if e.dst != in || seenEdge[Edge(i)] {
				continue
			}
			seenEdge[Edge(i)] = true
			addLoc(edgeLoc(Edge(i)))
			// The producing output port's capability can reach us.
			addLoc(capLoc(e.src))
			// Every input of the producing node can reach its outputs.
			srcNode := b.nodes[e.src.Node]
			for ip := 0; ip < srcNode.inputs; ip++ {
				p := Port{Node: e.src.Node, Port: ip}
				if !seenInput[p] {
					seenInput[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return locs
}
