package progress

import (
	"math/rand"
	"sync"
	"testing"
)

// linearGraph builds in -> mid -> out and returns the tracker plus the
// interesting ports and edges.
func linearGraph() (*Tracker, Port, Port, Edge, Edge) {
	b := NewGraphBuilder()
	in := b.AddNode("in", 0, 1)
	mid := b.AddNode("mid", 1, 1)
	out := b.AddNode("out", 1, 0)
	e1 := b.AddEdge(Port{in, 0}, Port{mid, 0})
	e2 := b.AddEdge(Port{mid, 0}, Port{out, 0})
	return b.Build(), Port{mid, 0}, Port{out, 0}, e1, e2
}

// TestFrontierFollowsCapability: the downstream frontier is the source's
// capability hold until messages appear.
func TestFrontierFollowsCapability(t *testing.T) {
	tr, midIn, outIn, _, _ := linearGraph()
	if f := tr.Frontier(midIn); f != None {
		t.Fatalf("empty graph frontier = %v, want None", f)
	}
	var b Batch
	srcCap := tr.CapLocation(Port{0, 0})
	b.Add(srcCap, 5, 1)
	tr.Apply(&b)
	if f := tr.Frontier(midIn); f != 5 {
		t.Fatalf("frontier = %v, want 5", f)
	}
	if f := tr.Frontier(outIn); f != 5 {
		t.Fatalf("downstream frontier = %v, want 5", f)
	}
	// Downgrade the hold.
	b.Reset()
	b.Add(srcCap, 5, -1)
	b.Add(srcCap, 9, 1)
	tr.Apply(&b)
	if f := tr.Frontier(outIn); f != 9 {
		t.Fatalf("after downgrade frontier = %v, want 9", f)
	}
}

// TestMessagesHoldFrontier: a message in flight pins the frontier at its
// time even if the capability has advanced.
func TestMessagesHoldFrontier(t *testing.T) {
	tr, midIn, outIn, e1, e2 := linearGraph()
	var b Batch
	srcCap := tr.CapLocation(Port{0, 0})
	b.Add(srcCap, 3, 1)
	tr.Apply(&b)

	// Send a message at 3, advance the cap to 10.
	b.Reset()
	b.Add(tr.EdgeLocation(e1), 3, 1)
	b.Add(srcCap, 3, -1)
	b.Add(srcCap, 10, 1)
	tr.Apply(&b)
	if f := tr.Frontier(midIn); f != 3 {
		t.Fatalf("frontier = %v, want 3 (message in flight)", f)
	}
	// mid consumes it and forwards at 3 in one atomic batch.
	b.Reset()
	b.Add(tr.EdgeLocation(e1), 3, -1)
	b.Add(tr.EdgeLocation(e2), 3, 1)
	tr.Apply(&b)
	if f := tr.Frontier(midIn); f != 10 {
		t.Fatalf("mid frontier = %v, want 10", f)
	}
	if f := tr.Frontier(outIn); f != 3 {
		t.Fatalf("out frontier = %v, want 3", f)
	}
	// out consumes; only the cap remains.
	b.Reset()
	b.Add(tr.EdgeLocation(e2), 3, -1)
	tr.Apply(&b)
	if f := tr.Frontier(outIn); f != 10 {
		t.Fatalf("out frontier = %v, want 10", f)
	}
	if tr.Idle() {
		t.Fatal("tracker idle with a live capability")
	}
	b.Reset()
	b.Add(srcCap, 10, -1)
	tr.Apply(&b)
	if !tr.Idle() {
		t.Fatal("tracker not idle after draining")
	}
}

// TestDiamondReachability: with two paths a frontier reflects both.
func TestDiamondReachability(t *testing.T) {
	b := NewGraphBuilder()
	src := b.AddNode("src", 0, 2)
	l := b.AddNode("left", 1, 1)
	r := b.AddNode("right", 1, 1)
	sink := b.AddNode("sink", 2, 0)
	b.AddEdge(Port{src, 0}, Port{l, 0})
	b.AddEdge(Port{src, 1}, Port{r, 0})
	eL := b.AddEdge(Port{l, 0}, Port{sink, 0})
	eR := b.AddEdge(Port{r, 0}, Port{sink, 1})
	tr := b.Build()

	var batch Batch
	batch.Add(tr.CapLocation(Port{src, 0}), 4, 1)
	batch.Add(tr.CapLocation(Port{src, 1}), 7, 1)
	tr.Apply(&batch)

	if f := tr.Frontier(Port{sink, 0}); f != 4 {
		t.Fatalf("sink.0 frontier = %v, want 4", f)
	}
	if f := tr.Frontier(Port{sink, 1}); f != 7 {
		t.Fatalf("sink.1 frontier = %v, want 7", f)
	}
	// A message on the left edge at 2 (covered by a left-op hold) only
	// affects sink input 0.
	batch.Reset()
	batch.Add(tr.CapLocation(Port{l, 0}), 2, 1)
	batch.Add(tr.EdgeLocation(eL), 2, 1)
	tr.Apply(&batch)
	if f := tr.Frontier(Port{sink, 0}); f != 2 {
		t.Fatalf("sink.0 frontier = %v, want 2", f)
	}
	if f := tr.Frontier(Port{sink, 1}); f != 7 {
		t.Fatalf("sink.1 frontier = %v, want 7", f)
	}
	_ = eR
}

// TestSafetyRandomized: under random but well-formed batches (consumption
// bundled with its productions), the frontier at a downstream port never
// exceeds the minimum live pointstamp that can reach it.
func TestSafetyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewGraphBuilder()
	src := b.AddNode("src", 0, 1)
	mid := b.AddNode("mid", 1, 1)
	sink := b.AddNode("sink", 1, 0)
	e1 := b.AddEdge(Port{src, 0}, Port{mid, 0})
	e2 := b.AddEdge(Port{mid, 0}, Port{sink, 0})
	tr := b.Build()

	type ps struct {
		loc  Location
		time Time
	}
	live := map[ps]int{}
	apply := func(batch *Batch) {
		for _, d := range batch.Deltas {
			live[ps{d.Loc, d.Time}] += d.Delta
			if live[ps{d.Loc, d.Time}] == 0 {
				delete(live, ps{d.Loc, d.Time})
			}
		}
		tr.Apply(batch)
	}

	capSrc := tr.CapLocation(Port{src, 0})
	var batch Batch
	batch.Add(capSrc, 0, 1)
	apply(&batch)
	epoch := Time(0)
	inflight1 := []Time{}
	inflight2 := []Time{}

	for step := 0; step < 3000; step++ {
		batch.Reset()
		switch rng.Intn(4) {
		case 0: // src sends at current epoch
			batch.Add(tr.EdgeLocation(e1), epoch, 1)
			inflight1 = append(inflight1, epoch)
		case 1: // src advances epoch
			batch.Add(capSrc, epoch, -1)
			epoch++
			batch.Add(capSrc, epoch, 1)
		case 2: // mid consumes one and forwards it
			if len(inflight1) > 0 {
				tm := inflight1[0]
				inflight1 = inflight1[1:]
				batch.Add(tr.EdgeLocation(e1), tm, -1)
				batch.Add(tr.EdgeLocation(e2), tm, 1)
				inflight2 = append(inflight2, tm)
			}
		case 3: // sink consumes
			if len(inflight2) > 0 {
				tm := inflight2[0]
				inflight2 = inflight2[1:]
				batch.Add(tr.EdgeLocation(e2), tm, -1)
			}
		}
		apply(&batch)

		// Safety: frontier(sink) <= any live pointstamp reaching the sink.
		f := tr.Frontier(Port{sink, 0})
		for p, c := range live {
			if c <= 0 {
				continue
			}
			if f > p.time {
				t.Fatalf("step %d: frontier %v passed live pointstamp %v at loc %d", step, f, p.time, p.loc)
			}
		}
	}
}

// TestConcurrentApply hammers Apply and Frontier from multiple goroutines
// (the race detector validates synchronization).
func TestConcurrentApply(t *testing.T) {
	tr, midIn, _, e1, _ := linearGraph()
	var wg sync.WaitGroup
	srcCap := tr.CapLocation(Port{0, 0})
	var init Batch
	init.Add(srcCap, 0, 1)
	tr.Apply(&init)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b Batch
			for i := 0; i < 1000; i++ {
				b.Reset()
				b.Add(tr.EdgeLocation(e1), Time(i), 1)
				tr.Apply(&b)
				_ = tr.Frontier(midIn)
				b.Reset()
				b.Add(tr.EdgeLocation(e1), Time(i), -1)
				tr.Apply(&b)
			}
		}(g)
	}
	wg.Wait()
	var b Batch
	b.Add(srcCap, 0, -1)
	tr.Apply(&b)
	if !tr.Idle() {
		t.Fatal("not idle after concurrent churn")
	}
}

// TestResetCountsRebuildsMultiset: ResetCounts discards every existing
// pointstamp — including entries no survivor could ever retire, the
// crash-leave wedge — and installs exactly the supplied inventory, bumping
// version, liveness, and every port epoch.
func TestResetCountsRebuildsMultiset(t *testing.T) {
	tr, midIn, outIn, e1, _ := linearGraph()
	var b Batch
	srcCap := tr.CapLocation(Port{0, 0})
	// A "dead member's" orphaned message at 2 plus a legitimate hold at 5.
	b.Add(tr.EdgeLocation(e1), 2, 1)
	b.Add(srcCap, 5, 1)
	tr.Apply(&b)
	if f := tr.Frontier(midIn); f != 2 {
		t.Fatalf("frontier = %v, want 2 (orphan wedges it)", f)
	}
	v, pe := tr.Version(), tr.PortEpoch(tr.PortID(midIn))

	// Rebuild from an inventory holding only the capability at 5.
	var inv Batch
	inv.Add(srcCap, 5, 1)
	tr.ResetCounts(&inv)
	if f := tr.Frontier(midIn); f != 5 {
		t.Fatalf("rebuilt frontier = %v, want 5 (orphan gone)", f)
	}
	if f := tr.Frontier(outIn); f != 5 {
		t.Fatalf("rebuilt downstream frontier = %v, want 5", f)
	}
	if tr.Idle() {
		t.Fatal("rebuilt tracker idle with a live capability")
	}
	if tr.Version() == v {
		t.Fatal("ResetCounts did not bump version")
	}
	if tr.PortEpoch(tr.PortID(midIn)) == pe {
		t.Fatal("ResetCounts did not bump port epochs")
	}

	// An empty inventory means done.
	var empty Batch
	tr.ResetCounts(&empty)
	if !tr.Idle() {
		t.Fatal("tracker not idle after empty rebuild")
	}
}
