package progress

import (
	"math/rand"
	"testing"
)

// twoNodeTracker builds input -> op with one edge, returning the tracker
// and the interesting locations.
func twoNodeTracker(t *testing.T) (tr *Tracker, edge Location, srcCap Location, dstPort Port) {
	t.Helper()
	b := NewGraphBuilder()
	src := b.AddNode("src", 0, 1)
	dst := b.AddNode("dst", 1, 0)
	e := b.AddEdge(Port{Node: src, Port: 0}, Port{Node: dst, Port: 0})
	tr = b.Build()
	return tr, tr.EdgeLocation(e), tr.CapLocation(Port{Node: src, Port: 0}), Port{Node: dst, Port: 0}
}

// TestNegativeToleranceConservative replays the canonical cross-process
// reordering: observer C sees B's consumption of a message before A's
// production of it. The frontier must never advance past the justification
// A still holds, the location must stay live, and the counts must settle
// once the missing batch arrives.
func TestNegativeToleranceConservative(t *testing.T) {
	tr, edge, cap0, port := twoNodeTracker(t)
	tr.TolerateNegativeCounts()

	// A holds a capability at time 5 (the justification for the message).
	var b Batch
	b.Add(cap0, 5, 1)
	tr.Apply(&b)

	// B's batch arrives first: consumed the message at 5 (which C has not
	// seen produced), and is otherwise empty.
	b.Reset()
	b.Add(edge, 5, -1)
	tr.Apply(&b)

	if got := tr.Frontier(port); got != 5 {
		t.Fatalf("frontier advanced to %v with A's capability at 5 still held", got)
	}
	if tr.Idle() {
		t.Fatal("tracker idle with a negative in-flight count")
	}

	// A's batch arrives late: produced the message at 5 and dropped the
	// capability.
	b.Reset()
	b.Add(edge, 5, 1)
	b.Add(cap0, 5, -1)
	tr.Apply(&b)

	if got := tr.Frontier(port); got != None {
		t.Fatalf("frontier = %v after all counts cancelled, want None", got)
	}
	if !tr.Idle() {
		t.Fatalf("tracker not idle after all counts cancelled:\n%s", tr.Dump())
	}
}

// TestNegativeMinSkipsNonPositive pins the frontier rule: a location whose
// earliest entry is negative exposes the earliest positive count as its
// minimum.
func TestNegativeMinSkipsNonPositive(t *testing.T) {
	tr, edge, cap0, port := twoNodeTracker(t)
	tr.TolerateNegativeCounts()
	var b Batch
	b.Add(cap0, 9, 1) // keep the computation live independently
	b.Add(edge, 3, -1)
	b.Add(edge, 7, 2)
	tr.Apply(&b)
	if got := tr.Frontier(port); got != 7 {
		t.Fatalf("frontier = %v, want 7 (the -1@3 entry is not a real message)", got)
	}
}

func TestNegativePanicsWithoutOptIn(t *testing.T) {
	tr, edge, _, _ := twoNodeTracker(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative count in single-process mode")
		}
	}()
	var b Batch
	b.Add(edge, 5, -1)
	tr.Apply(&b)
}

// TestShuffledBatchesConverge applies a set of per-worker FIFO batch
// streams in many random interleavings (batches atomic, streams in order —
// exactly the cross-process delivery model) and checks every interleaving
// ends drained with frontier None.
func TestShuffledBatchesConverge(t *testing.T) {
	type dd struct {
		loc   Location
		t     Time
		delta int
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tr, edge, cap0, port := twoNodeTracker(t)
		tr.TolerateNegativeCounts()

		// Stream A: hold cap, produce three messages, drop cap.
		streamA := [][]dd{
			{{cap0, 1, 1}},
			{{edge, 1, 1}, {edge, 2, 1}},
			{{edge, 3, 1}, {cap0, 1, -1}},
		}
		// Stream B: consume the three messages.
		streamB := [][]dd{
			{{edge, 1, -1}},
			{{edge, 2, -1}, {edge, 3, -1}},
		}
		idx := []int{0, 0}
		streams := [][][]dd{streamA, streamB}
		for idx[0] < len(streamA) || idx[1] < len(streamB) {
			s := rng.Intn(2)
			if idx[s] >= len(streams[s]) {
				s = 1 - s
			}
			var b Batch
			for _, d := range streams[s][idx[s]] {
				b.Add(d.loc, d.t, d.delta)
			}
			idx[s]++
			tr.Apply(&b)
		}
		if !tr.Idle() {
			t.Fatalf("trial %d: not idle after all batches:\n%s", trial, tr.Dump())
		}
		if got := tr.Frontier(port); got != None {
			t.Fatalf("trial %d: frontier %v, want None", trial, got)
		}
	}
}

func TestBatchWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var b Batch
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			b.Add(Location(rng.Intn(1000)), Time(rng.Uint64()>>rng.Intn(64)), rng.Intn(9)-4)
		}
		buf := b.AppendWire(nil)
		var got Batch
		got.Deltas = make([]CountDelta, 3) // ensure DecodeWire resets
		if err := got.DecodeWire(buf); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Deltas) != len(b.Deltas) {
			t.Fatalf("trial %d: %d deltas, want %d", trial, len(got.Deltas), len(b.Deltas))
		}
		for i := range b.Deltas {
			if got.Deltas[i] != b.Deltas[i] {
				t.Fatalf("trial %d delta %d: %+v != %+v", trial, i, got.Deltas[i], b.Deltas[i])
			}
		}
	}
}

func TestBatchWireRejectsGarbage(t *testing.T) {
	var b Batch
	if err := b.DecodeWire([]byte{0xff}); err == nil {
		t.Fatal("expected error on truncated varint")
	}
	good := (&Batch{Deltas: []CountDelta{{Loc: 1, Time: 2, Delta: 3}}}).AppendWire(nil)
	if err := b.DecodeWire(append(good, 0)); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}
