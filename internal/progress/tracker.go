package progress

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"megaphone/internal/timestamp"
)

// Time is the logical timestamp used on the runtime's hot path. The runtime
// is specialized to totally ordered Scalar times (all Megaphone evaluation
// workloads use integer event times); the general partially ordered frontier
// machinery lives in internal/timestamp.
type Time = timestamp.Scalar

// None is the frontier value of a completed port: no timestamps can arrive.
const None = timestamp.MaxScalar

// CountDelta records a change to the pointstamp count at a location.
type CountDelta struct {
	Loc   Location
	Time  Time
	Delta int
}

// Batch is a set of count changes applied atomically. A worker step bundles
// the -1s for messages it consumed with the +1s for the messages and
// capability changes that consumption produced, so no observer can see the
// consumption without its consequences.
type Batch struct {
	Deltas []CountDelta
}

// Add appends a delta to the batch.
func (b *Batch) Add(loc Location, t Time, delta int) {
	b.Deltas = append(b.Deltas, CountDelta{Loc: loc, Time: t, Delta: delta})
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.Deltas = b.Deltas[:0] }

func deltaBefore(a, b CountDelta) bool {
	return a.Loc < b.Loc || (a.Loc == b.Loc && a.Time < b.Time)
}

// coalesce merges deltas with the same (location, time) and drops the ones
// that cancel, in place. A scheduling's batch routinely contains such pairs
// (a hold moved and moved back, one +1 per peer on the same edge and time),
// and merging them before the lock shrinks the critical section. Operators
// emit deltas grouped by location in ascending time order, so the batch is
// usually already sorted and the sort is skipped.
func (b *Batch) coalesce() {
	d := b.Deltas
	if len(d) < 2 {
		return
	}
	for i := 1; i < len(d); i++ {
		if deltaBefore(d[i], d[i-1]) {
			slices.SortFunc(d, func(a, b CountDelta) int {
				switch {
				case deltaBefore(a, b):
					return -1
				case deltaBefore(b, a):
					return 1
				}
				return 0
			})
			break
		}
	}
	out := d[:0]
	for _, dd := range d {
		if n := len(out); n > 0 && out[n-1].Loc == dd.Loc && out[n-1].Time == dd.Time {
			out[n-1].Delta += dd.Delta
			if out[n-1].Delta == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, dd)
	}
	b.Deltas = out
}

// timeCount is one entry of a multiset: a live time and its occurrence count.
type timeCount struct {
	t Time
	n int
}

// multiset tracks occurrence counts of totally ordered times as a slice
// sorted ascending by time, with a dead prefix of length head: the live
// entries are entries[head:] and the minimum is entries[head]. Hot-path
// updates touch the ends — consumption retires the head in O(1), production
// appends just past the tail — so a deep backlog of live times (a saturated
// input staging thousands of epochs) costs O(1) amortized per update,
// unlike the map-based variant this replaces, whose minimum removal
// rescanned every live time.
//
// In a multi-process execution (negOK mode, see
// Tracker.TolerateNegativeCounts) counts can dip below zero transiently: a
// third process may apply worker B's "consumed the message" delta before
// worker A's "produced it" delta, because the two arrive on different
// connections. Negative entries are retained (they keep the location live,
// which the termination check needs) but a location's minimum considers
// only positive counts — the matching production is guaranteed to be
// counted at some upstream location, so frontiers remain conservative
// (the Naiad progress-protocol argument; see DESIGN.md).
type multiset struct {
	entries []timeCount
	head    int
}

func (m *multiset) min() Time {
	// In single-process mode every live entry is positive and this returns
	// entries[head].t on the first iteration; negative entries exist only
	// transiently under cross-process delta reordering.
	for i := m.head; i < len(m.entries); i++ {
		if m.entries[i].n > 0 {
			return m.entries[i].t
		}
	}
	return None
}

func (m *multiset) empty() bool { return m.head == len(m.entries) }

// update applies a count delta for time t and reports whether the multiset's
// minimum changed. negOK tolerates transiently negative counts (required
// for multi-process executions); without it a negative count panics, as it
// can only mean an accounting bug. In negOK mode the positional heuristics
// of applyDelta no longer determine the minimum (nonpositive entries are
// skipped by min), so the minimum is compared directly around the change.
func (m *multiset) update(t Time, delta int, negOK bool) (minChanged bool) {
	if negOK {
		oldMin := m.min()
		m.applyDelta(t, delta, true)
		return m.min() != oldMin
	}
	return m.applyDelta(t, delta, false)
}

// applyDelta mutates the multiset and reports whether the minimum changed
// under the single-process invariant that all counts stay positive (the
// return value is positional and meaningless when negOK allowed a negative
// entry — update recomputes it in that mode).
func (m *multiset) applyDelta(t Time, delta int, negOK bool) (minChanged bool) {
	e := m.entries
	// Fast paths: the head (consuming at the frontier) and the tail
	// (producing just past it) cover nearly all hot-path updates.
	i := m.head
	switch {
	case len(e) > m.head && e[m.head].t == t:
	case len(e) == m.head || e[len(e)-1].t < t:
		i = len(e)
	default:
		i = m.head + sort.Search(len(e)-m.head, func(k int) bool { return e[m.head+k].t >= t })
	}
	if i < len(e) && e[i].t == t {
		e[i].n += delta
		switch {
		case e[i].n < 0 && !negOK:
			panic(fmt.Sprintf("progress: count for time %v went negative", t))
		case e[i].n == 0:
			if i == m.head {
				m.head++
				// Reclaim the dead prefix once it dominates the slice.
				if m.head > 32 && m.head > len(e)/2 {
					m.entries = e[:copy(e, e[m.head:])]
					m.head = 0
				}
				return true
			}
			copy(e[i:], e[i+1:])
			m.entries = e[:len(e)-1]
			return false
		}
		return false
	}
	if delta == 0 {
		return false
	}
	if delta < 0 && !negOK {
		panic(fmt.Sprintf("progress: count for time %v went negative", t))
	}
	if m.head > 0 && i == m.head {
		// Insert just before the live head: reuse a dead slot.
		m.head--
		e[m.head] = timeCount{t: t, n: delta}
		return true
	}
	m.entries = append(e, timeCount{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = timeCount{t: t, n: delta}
	return i == m.head
}

// Tracker holds the live pointstamp counts for a frozen dataflow graph and
// answers frontier queries per input port. All methods are safe for
// concurrent use by multiple workers.
//
// Workers observe progress without the lock: version counts effective
// applies, live counts locations with pointstamps (zero means the
// computation is done), and portEpochs[i] is bumped whenever the frontier of
// input port i may have moved. All three are written under mu and read
// atomically, so the scheduler's idle checks and dirty-set sweeps cost no
// lock acquisitions.
type Tracker struct {
	mu       sync.Mutex
	locs     []multiset
	upstream map[Port][]Location
	edgeLoc  func(Edge) Location
	capLoc   func(Port) Location
	waiters  []chan<- struct{}

	version atomic.Uint64 // bumped by every effective Apply
	live    atomic.Int64  // number of locations with live pointstamps

	portIDs    map[Port]int // dense input-port index
	portEpochs []atomic.Uint64
	deps       [][]int32 // location -> dense ports whose frontier it feeds

	nodeNames []string

	negOK bool // tolerate transiently negative counts (multi-process mode)
}

// TolerateNegativeCounts switches the tracker into multi-process mode:
// count deltas from remote workers may be applied in an order where a
// message's consumption lands before its production, so per-(location,
// time) counts can dip below zero transiently. Negative entries keep their
// location live (termination stays exact) and are excluded from frontier
// minima (frontiers stay conservative). Call before the execution starts.
func (t *Tracker) TolerateNegativeCounts() {
	t.mu.Lock()
	t.negOK = true
	t.mu.Unlock()
}

// Build freezes the graph and returns its tracker.
func (b *GraphBuilder) Build() *Tracker {
	edgeLoc, capLoc, total := b.locations()
	t := &Tracker{
		locs:     make([]multiset, total),
		upstream: b.reachability(),
		edgeLoc:  edgeLoc,
		capLoc:   capLoc,
		portIDs:  make(map[Port]int),
		deps:     make([][]int32, total),
	}
	for p := range t.upstream {
		t.portIDs[p] = 0
	}
	// Dense ids in a deterministic order (node, then port).
	ports := make([]Port, 0, len(t.portIDs))
	for p := range t.portIDs {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].Node != ports[j].Node {
			return ports[i].Node < ports[j].Node
		}
		return ports[i].Port < ports[j].Port
	})
	t.portEpochs = make([]atomic.Uint64, len(ports))
	for i, p := range ports {
		t.portIDs[p] = i
		for _, loc := range t.upstream[p] {
			t.deps[loc] = append(t.deps[loc], int32(i))
		}
	}
	for _, n := range b.nodes {
		t.nodeNames = append(t.nodeNames, n.name)
	}
	return t
}

// EdgeLocation returns the location of an edge.
func (t *Tracker) EdgeLocation(e Edge) Location { return t.edgeLoc(e) }

// CapLocation returns the capability location of a node output port.
func (t *Tracker) CapLocation(p Port) Location { return t.capLoc(p) }

// PortID returns the dense index of a node input port, for use with
// PortEpoch. It panics if p is not an input port of the graph.
func (t *Tracker) PortID(p Port) int {
	id, ok := t.portIDs[p]
	if !ok {
		panic(fmt.Sprintf("progress: no input port %v", p))
	}
	return id
}

// PortEpoch returns a counter bumped whenever the frontier at the port may
// have changed. Workers compare epochs against remembered values to detect
// "frontier moved for this port" without locking or recomputing frontiers.
func (t *Tracker) PortEpoch(id int) uint64 { return t.portEpochs[id].Load() }

// Apply atomically applies a batch of count changes and wakes any frontier
// waiters. Deltas that cancel within the batch are dropped first; an empty
// or fully cancelling batch costs no lock acquisition.
func (t *Tracker) Apply(b *Batch) {
	b.coalesce()
	if len(b.Deltas) == 0 {
		return
	}
	t.mu.Lock()
	liveDelta := int64(0)
	for _, d := range b.Deltas {
		ms := &t.locs[d.Loc]
		wasEmpty := ms.empty()
		minChanged := ms.update(d.Time, d.Delta, t.negOK)
		if minChanged {
			for _, pid := range t.deps[d.Loc] {
				t.portEpochs[pid].Add(1)
			}
		}
		if isEmpty := ms.empty(); wasEmpty != isEmpty {
			if wasEmpty {
				liveDelta++
			} else {
				liveDelta--
			}
		}
	}
	if liveDelta != 0 {
		t.live.Add(liveDelta)
	}
	t.version.Add(1)
	// Poke registered waiters under the lock (non-blocking sends into
	// latched channels, so this cannot stall) and keep the list's backing
	// array for reuse. Waiters exist only while workers are parking, so
	// steady-state applies skip this entirely.
	for _, w := range t.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	t.waiters = t.waiters[:0]
	t.mu.Unlock()
}

// ResetCounts atomically replaces the tracker's entire pointstamp multiset
// with the contents of b, as if the tracker were freshly built and b were
// its first Apply. This is the crash-leave recovery primitive: after a
// member is declared dead, the global multiset contains its unretired
// pointstamps (productions whose consumptions died with it, and vice
// versa), which no surviving worker can ever retire — the frontier would
// wedge forever. The survivors instead exchange their local hold
// inventories (op capability holds and input capabilities — at agreed
// quiescence nothing else is genuinely outstanding), sum them identically,
// and each rebuilds its tracker from that consistent picture. All port
// epochs are bumped and waiters woken, since any frontier may have moved.
func (t *Tracker) ResetCounts(b *Batch) {
	b.coalesce()
	t.mu.Lock()
	for i := range t.locs {
		t.locs[i] = multiset{}
	}
	for _, d := range b.Deltas {
		t.locs[d.Loc].update(d.Time, d.Delta, t.negOK)
	}
	live := int64(0)
	for i := range t.locs {
		if !t.locs[i].empty() {
			live++
		}
	}
	t.live.Store(live)
	for i := range t.portEpochs {
		t.portEpochs[i].Add(1)
	}
	t.version.Add(1)
	for _, w := range t.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	t.waiters = t.waiters[:0]
	t.mu.Unlock()
}

// Frontier returns the least timestamp that may still arrive at the given
// node input port, or None if no more messages can arrive there.
func (t *Tracker) Frontier(p Port) Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frontierLocked(p)
}

func (t *Tracker) frontierLocked(p Port) Time {
	min := None
	for _, loc := range t.upstream[p] {
		if m := t.locs[loc].min(); m < min {
			min = m
		}
	}
	return min
}

// Frontiers returns the frontier of every input port of node n, for a node
// with the given number of inputs.
func (t *Tracker) Frontiers(n Node, inputs int, out []Time) []Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	out = out[:0]
	for i := 0; i < inputs; i++ {
		out = append(out, t.frontierLocked(Port{Node: n, Port: i}))
	}
	return out
}

// Idle reports whether no pointstamps remain anywhere in the graph, i.e. the
// computation has completed. Lock-free.
func (t *Tracker) Idle() bool { return t.live.Load() == 0 }

// Version returns a counter bumped on every effective Apply. Workers use it
// to detect progress changes that raced with their scheduling pass.
// Lock-free.
func (t *Tracker) Version() uint64 { return t.version.Load() }

// Snapshot returns the version and idleness in one lock-free read, for the
// worker run loop's park/exit decision.
func (t *Tracker) Snapshot() (version uint64, idle bool) {
	return t.version.Load(), t.live.Load() == 0
}

// Dump renders the live pointstamps for debugging: every location with
// counts, labelled with its index, in deterministic (location, time) order.
func (t *Tracker) Dump() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for i, m := range t.locs {
		if m.empty() {
			continue
		}
		fmt.Fprintf(&sb, "loc %d:", i)
		for _, e := range m.entries[m.head:] {
			fmt.Fprintf(&sb, " %v:%d", e.t, e.n)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Notify registers ch to receive one non-blocking signal at the next
// effective Apply; callers park on ch until progress is possible. The
// channel must be buffered (it acts as a latch: a signal arriving before
// the caller blocks is retained) and is owned by the caller, so parking
// allocates nothing. Registration is consumed by the next effective Apply;
// re-register before every park.
func (t *Tracker) Notify(ch chan<- struct{}) {
	t.mu.Lock()
	t.waiters = append(t.waiters, ch)
	t.mu.Unlock()
}
