package progress

import (
	"fmt"
	"sync"

	"megaphone/internal/timestamp"
)

// Time is the logical timestamp used on the runtime's hot path. The runtime
// is specialized to totally ordered Scalar times (all Megaphone evaluation
// workloads use integer event times); the general partially ordered frontier
// machinery lives in internal/timestamp.
type Time = timestamp.Scalar

// None is the frontier value of a completed port: no timestamps can arrive.
const None = timestamp.MaxScalar

// CountDelta records a change to the pointstamp count at a location.
type CountDelta struct {
	Loc   Location
	Time  Time
	Delta int
}

// Batch is a set of count changes applied atomically. A worker step bundles
// the -1s for messages it consumed with the +1s for the messages and
// capability changes that consumption produced, so no observer can see the
// consumption without its consequences.
type Batch struct {
	Deltas []CountDelta
}

// Add appends a delta to the batch.
func (b *Batch) Add(loc Location, t Time, delta int) {
	b.Deltas = append(b.Deltas, CountDelta{Loc: loc, Time: t, Delta: delta})
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.Deltas = b.Deltas[:0] }

// multiset tracks occurrence counts of totally ordered times with a cached
// minimum.
type multiset struct {
	counts map[Time]int
	min    Time // cached minimum; None when empty
}

func (m *multiset) update(t Time, delta int) {
	c := m.counts[t] + delta
	switch {
	case c < 0:
		panic(fmt.Sprintf("progress: count for time %v went negative", t))
	case c == 0:
		delete(m.counts, t)
		if t == m.min {
			m.rescan()
		}
	default:
		m.counts[t] = c
		if t < m.min {
			m.min = t
		}
	}
}

func (m *multiset) rescan() {
	m.min = None
	for t := range m.counts {
		if t < m.min {
			m.min = t
		}
	}
}

// Tracker holds the live pointstamp counts for a frozen dataflow graph and
// answers frontier queries per input port. All methods are safe for
// concurrent use by multiple workers.
type Tracker struct {
	mu        sync.Mutex
	locs      []multiset
	upstream  map[Port][]Location
	edgeLoc   func(Edge) Location
	capLoc    func(Port) Location
	nonEmpty  int    // number of locations with live pointstamps
	version   uint64 // bumped by every effective Apply
	waiters   []chan struct{}
	nodeNames []string
}

// Build freezes the graph and returns its tracker.
func (b *GraphBuilder) Build() *Tracker {
	edgeLoc, capLoc, total := b.locations()
	t := &Tracker{
		locs:     make([]multiset, total),
		upstream: b.reachability(),
		edgeLoc:  edgeLoc,
		capLoc:   capLoc,
	}
	for i := range t.locs {
		t.locs[i] = multiset{counts: make(map[Time]int), min: None}
	}
	for _, n := range b.nodes {
		t.nodeNames = append(t.nodeNames, n.name)
	}
	return t
}

// EdgeLocation returns the location of an edge.
func (t *Tracker) EdgeLocation(e Edge) Location { return t.edgeLoc(e) }

// CapLocation returns the capability location of a node output port.
func (t *Tracker) CapLocation(p Port) Location { return t.capLoc(p) }

// Apply atomically applies a batch of count changes and wakes any frontier
// waiters.
func (t *Tracker) Apply(b *Batch) {
	if len(b.Deltas) == 0 {
		return
	}
	t.mu.Lock()
	for _, d := range b.Deltas {
		ms := &t.locs[d.Loc]
		wasEmpty := len(ms.counts) == 0
		ms.update(d.Time, d.Delta)
		isEmpty := len(ms.counts) == 0
		if wasEmpty && !isEmpty {
			t.nonEmpty++
		} else if !wasEmpty && isEmpty {
			t.nonEmpty--
		}
	}
	t.version++
	waiters := t.waiters
	t.waiters = nil
	t.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Frontier returns the least timestamp that may still arrive at the given
// node input port, or None if no more messages can arrive there.
func (t *Tracker) Frontier(p Port) Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frontierLocked(p)
}

func (t *Tracker) frontierLocked(p Port) Time {
	min := None
	for _, loc := range t.upstream[p] {
		if m := t.locs[loc].min; m < min {
			min = m
		}
	}
	return min
}

// Frontiers returns the frontier of every input port of node n, for a node
// with the given number of inputs.
func (t *Tracker) Frontiers(n Node, inputs int, out []Time) []Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	out = out[:0]
	for i := 0; i < inputs; i++ {
		out = append(out, t.frontierLocked(Port{Node: n, Port: i}))
	}
	return out
}

// Idle reports whether no pointstamps remain anywhere in the graph, i.e. the
// computation has completed.
func (t *Tracker) Idle() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nonEmpty == 0
}

// Version returns a counter bumped on every effective Apply. Workers use it
// to detect progress changes that raced with their scheduling pass.
func (t *Tracker) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Dump renders the live pointstamps for debugging: every location with
// counts, labelled edge/cap with its index.
func (t *Tracker) Dump() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := ""
	for i, m := range t.locs {
		if len(m.counts) == 0 {
			continue
		}
		s += fmt.Sprintf("loc %d: %v\n", i, m.counts)
	}
	return s
}

// WaitChan returns a channel closed at the next count change; callers use it
// to park until progress is possible.
func (t *Tracker) WaitChan() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := make(chan struct{})
	t.waiters = append(t.waiters, w)
	return w
}
