package progress

import (
	"fmt"

	"megaphone/internal/binenc"
)

// Wire encoding of a delta batch, used to broadcast one worker scheduling's
// progress consequences to remote processes. Batches must be applied
// atomically at every receiver (consumptions together with the productions
// they caused), so one encoded payload always carries one whole batch.

// AppendWire appends the batch's encoding to buf and returns the extended
// slice: a delta count followed by (location, time, delta) triples in batch
// order.
func (b *Batch) AppendWire(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(b.Deltas)))
	for _, d := range b.Deltas {
		buf = binenc.AppendUvarint(buf, uint64(d.Loc))
		buf = binenc.AppendUvarint(buf, uint64(d.Time))
		buf = binenc.AppendVarint(buf, int64(d.Delta))
	}
	return buf
}

// DecodeWire replaces the batch's contents from an AppendWire payload,
// reusing the batch's capacity.
func (b *Batch) DecodeWire(data []byte) error {
	n, data, err := binenc.Count(data, 3) // every delta is >= 3 bytes
	if err != nil {
		return fmt.Errorf("progress: decoding delta count: %w", err)
	}
	b.Deltas = b.Deltas[:0]
	for i := uint64(0); i < n; i++ {
		var loc, t uint64
		var delta int64
		if loc, data, err = binenc.Uvarint(data); err != nil {
			return fmt.Errorf("progress: decoding delta location: %w", err)
		}
		if t, data, err = binenc.Uvarint(data); err != nil {
			return fmt.Errorf("progress: decoding delta time: %w", err)
		}
		if delta, data, err = binenc.Varint(data); err != nil {
			return fmt.Errorf("progress: decoding delta: %w", err)
		}
		b.Deltas = append(b.Deltas, CountDelta{Loc: Location(loc), Time: Time(t), Delta: int(delta)})
	}
	if len(data) != 0 {
		return fmt.Errorf("progress: %d trailing bytes after delta batch", len(data))
	}
	return nil
}
