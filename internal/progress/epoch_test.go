package progress

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// chain builds a two-node pipeline (src -> dst) and returns the tracker and
// the interesting locations: the edge into dst and src's capability.
func chain(t *testing.T) (tr *Tracker, edge Location, cap Location, dst Port) {
	t.Helper()
	b := NewGraphBuilder()
	src := b.AddNode("src", 0, 1)
	d := b.AddNode("dst", 1, 0)
	e := b.AddEdge(Port{Node: src, Port: 0}, Port{Node: d, Port: 0})
	tr = b.Build()
	return tr, tr.EdgeLocation(e), tr.CapLocation(Port{Node: src, Port: 0}), Port{Node: d, Port: 0}
}

// TestPortEpochBumpsOnlyOnMinChange verifies the dirty-set contract: the
// port epoch moves exactly when the frontier at the port may have moved.
func TestPortEpochBumpsOnlyOnMinChange(t *testing.T) {
	tr, edge, _, dst := chain(t)
	id := tr.PortID(dst)

	apply := func(tm Time, d int) {
		var b Batch
		b.Add(edge, tm, d)
		tr.Apply(&b)
	}

	e0 := tr.PortEpoch(id)
	apply(5, 1) // empty -> {5}: min changed
	if tr.PortEpoch(id) == e0 {
		t.Fatalf("epoch did not move when min appeared")
	}
	e1 := tr.PortEpoch(id)
	apply(7, 1) // {5} -> {5,7}: min unchanged
	if tr.PortEpoch(id) != e1 {
		t.Fatalf("epoch moved on non-min insert")
	}
	apply(5, 1) // second count at the min: min unchanged
	if tr.PortEpoch(id) != e1 {
		t.Fatalf("epoch moved on count increment at min")
	}
	apply(5, -1) // one of two counts at 5 drops: min unchanged
	if tr.PortEpoch(id) != e1 {
		t.Fatalf("epoch moved while min count remained")
	}
	apply(5, -1) // min retired: frontier moves to 7
	if tr.PortEpoch(id) == e1 {
		t.Fatalf("epoch did not move when min retired")
	}
	if got := tr.Frontier(dst); got != 7 {
		t.Fatalf("frontier = %v, want 7", got)
	}
}

// TestApplyCoalesces verifies that cancelling deltas are dropped before the
// lock: a net-zero batch is not an effective apply and must not bump the
// version (workers would otherwise wake for nothing).
func TestApplyCoalesces(t *testing.T) {
	tr, edge, cap, _ := chain(t)

	var b Batch
	b.Add(edge, 3, 1)
	b.Add(edge, 3, -1)
	b.Add(cap, 9, 1)
	b.Add(cap, 9, -1)
	v := tr.Version()
	tr.Apply(&b)
	if tr.Version() != v {
		t.Fatalf("net-zero batch bumped the version")
	}
	if !tr.Idle() {
		t.Fatalf("net-zero batch left live pointstamps:\n%s", tr.Dump())
	}

	// A transiently negative pair (the -1 before the +1) must also cancel
	// rather than panic: the batch is atomic, order within it is arbitrary.
	b.Reset()
	b.Add(edge, 4, -1)
	b.Add(edge, 4, 1)
	tr.Apply(&b)
	if !tr.Idle() {
		t.Fatalf("cancelling pair left live pointstamps")
	}
}

// TestMultisetMatchesReference drives one multiset with random updates and
// checks min/emptiness against a map reference.
func TestMultisetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var m multiset
	ref := map[Time]int{}
	refMin := func() Time {
		min := None
		for tm := range ref {
			if tm < min {
				min = tm
			}
		}
		return min
	}
	for i := 0; i < 200000; i++ {
		tm := Time(rng.Intn(64))
		if c := ref[tm]; c > 0 && rng.Intn(2) == 0 {
			m.update(tm, -1, false)
			if c == 1 {
				delete(ref, tm)
			} else {
				ref[tm] = c - 1
			}
		} else {
			m.update(tm, 1, false)
			ref[tm]++
		}
		if m.min() != refMin() {
			t.Fatalf("step %d: min = %v, want %v", i, m.min(), refMin())
		}
		if m.empty() != (len(ref) == 0) {
			t.Fatalf("step %d: empty = %v, want %v", i, m.empty(), len(ref) == 0)
		}
	}
}

// TestDumpDeterministic verifies Dump output is stable across calls (sorted
// locations and times), so test failures can diff it.
func TestDumpDeterministic(t *testing.T) {
	tr, edge, cap, _ := chain(t)
	var b Batch
	for i := 0; i < 20; i++ {
		b.Add(edge, Time(19-i), 1)
		b.Add(cap, Time(i%5), 1)
	}
	tr.Apply(&b)
	// Retire the minimum a few times: the multisets' dead prefixes must not
	// surface as zero-count entries.
	for i := 0; i < 3; i++ {
		b.Reset()
		b.Add(edge, Time(i), -1)
		tr.Apply(&b)
	}
	d := tr.Dump()
	if strings.Contains(d, ":0") {
		t.Fatalf("Dump shows retired (zero-count) times:\n%s", d)
	}
	for i := 0; i < 5; i++ {
		if tr.Dump() != d {
			t.Fatalf("Dump not deterministic")
		}
	}
	if !strings.Contains(d, fmt.Sprintf("loc %d:", edge)) {
		t.Fatalf("Dump missing edge location:\n%s", d)
	}
	// Times within a location must be ascending.
	for _, line := range strings.Split(strings.TrimSpace(d), "\n") {
		fields := strings.Fields(line)[2:]
		prev := -1
		for _, f := range fields {
			var tm, n int
			if _, err := fmt.Sscanf(f, "%d:%d", &tm, &n); err != nil {
				t.Fatalf("unparseable entry %q in %q", f, line)
			}
			if tm <= prev {
				t.Fatalf("times not ascending in %q", line)
			}
			prev = tm
		}
	}
}

// BenchmarkApplySteady measures the tracker's per-batch cost in the steady
// pattern one scheduling produces: consume at one time, produce at the next.
func BenchmarkApplySteady(b *testing.B) {
	gb := NewGraphBuilder()
	src := gb.AddNode("src", 0, 1)
	dst := gb.AddNode("dst", 1, 0)
	e := gb.AddEdge(Port{Node: src, Port: 0}, Port{Node: dst, Port: 0})
	tr := gb.Build()
	loc := tr.EdgeLocation(e)

	var batch Batch
	batch.Add(loc, 0, 1)
	tr.Apply(&batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		batch.Add(loc, Time(i), -1)
		batch.Add(loc, Time(i+1), 1)
		tr.Apply(&batch)
	}
}
