package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for i, p := range payloads {
		buf = AppendFrame(buf, KindUser+byte(i), uint64(i+1), p)
	}
	fr := NewFrameReader(bytes.NewReader(buf), 0)
	for i, p := range payloads {
		kind, seq, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != KindUser+byte(i) || seq != uint64(i+1) {
			t.Fatalf("frame %d: got kind=%d seq=%d", i, kind, seq)
		}
		if !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(payload), len(p))
		}
	}
	if _, _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("expected EOF at end, got %v", err)
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	buf := AppendFrame(nil, KindUser, 1, bytes.Repeat([]byte("z"), 4096))
	fr := NewFrameReader(bytes.NewReader(buf), 256)
	_, _, _, err := fr.Next()
	var tooBig ErrFrameTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
	if tooBig.Max != 256 {
		t.Fatalf("error carries max %d, want 256", tooBig.Max)
	}
}

func TestFrameTornReads(t *testing.T) {
	full := AppendFrame(nil, KindUser, 7, []byte("hello, torn world"))
	// A clean cut at the frame boundary is EOF; any cut inside the frame is
	// an unexpected EOF.
	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		_, _, _, err := fr.Next()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(full), 0)
	if _, _, _, err := fr.Next(); err != nil {
		t.Fatalf("full frame: %v", err)
	}
	if _, _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after full frame: got %v, want io.EOF", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	h := hello{ClusterID: 0xfeedface, From: 3, Procs: 5, RecvSeq: 42, MembershipEpoch: 7, Lane: 2, Lanes: 4}
	got, err := parseHello(appendHello(nil, h, Version))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

// TestBatchSubFrameRoundTrip pins the coalesced sub-frame format: a batch
// payload built from appendSubFrame walks back out of forEachSub with
// consecutive implicit sequence numbers and byte-identical bodies.
func TestBatchSubFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	var buf []byte
	for i, p := range payloads {
		buf = appendSubFrame(buf, KindUser+byte(i), p)
	}
	i := 0
	err := forEachSub(10, buf, func(seq uint64, kind byte, body []byte) bool {
		if seq != uint64(10+i) || kind != KindUser+byte(i) {
			t.Fatalf("sub %d: got seq=%d kind=%d", i, seq, kind)
		}
		if !bytes.Equal(body, payloads[i]) {
			t.Fatalf("sub %d: body mismatch (%d vs %d bytes)", i, len(body), len(payloads[i]))
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(payloads) {
		t.Fatalf("walked %d subs, want %d", i, len(payloads))
	}
}

// TestBatchTornAndMalformed: any truncation of a batch payload inside a
// sub-frame is a format error, and an early false from the callback stops the
// walk without an error (the caller aborted, the format is fine).
func TestBatchTornAndMalformed(t *testing.T) {
	full := appendSubFrame(appendSubFrame(nil, KindUser, []byte("first")), KindUser+1, []byte("second"))
	for cut := 1; cut < len(full); cut++ {
		// Cuts at sub-frame boundaries are valid shorter batches; all others
		// must error.
		if cut == subOverhead+len("first") {
			continue
		}
		n := 0
		if err := forEachSub(1, full[:cut], func(uint64, byte, []byte) bool { n++; return true }); err == nil {
			t.Fatalf("cut at %d accepted after %d subs", cut, n)
		}
	}
	// Zero-length sub frame (n < 1) is malformed, not an infinite loop.
	if err := forEachSub(1, []byte{0, 0, 0, 0, 16}, func(uint64, byte, []byte) bool { return true }); err == nil {
		t.Fatal("zero-length sub-frame accepted")
	}
	calls := 0
	if err := forEachSub(1, full, func(uint64, byte, []byte) bool { calls++; return false }); err != nil {
		t.Fatalf("early stop reported error: %v", err)
	}
	if calls != 1 {
		t.Fatalf("early stop walked %d subs, want 1", calls)
	}
}

// TestHandshakeVersion2Rejected pins the second compatibility break: a
// version-2 hello — 4 bytes shorter because it predates lane striping — is
// rejected as the version skew it is.
func TestHandshakeVersion2Rejected(t *testing.T) {
	p := appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2, RecvSeq: 3, MembershipEpoch: 4}, 2)
	if want := 4 + 2 + 8 + 2 + 2 + 8 + 8; len(p) != want {
		t.Fatalf("version-2 hello is %d bytes, want %d", len(p), want)
	}
	_, err := parseHello(p)
	if err == nil {
		t.Fatal("expected rejection of version-2 hello")
	}
	for _, sub := range []string{"version mismatch", "batched framing"} {
		if !bytes.Contains([]byte(err.Error()), []byte(sub)) {
			t.Fatalf("error %q does not mention %q", err, sub)
		}
	}
}

// TestHandshakeOldVersionRejected pins the compatibility break: a version-1
// hello — the true legacy wire format, 8 bytes shorter because it predates
// the membership epoch — is rejected as a version skew with an error that
// says so, not misreported as a truncated payload.
func TestHandshakeOldVersionRejected(t *testing.T) {
	p := appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2, RecvSeq: 3}, 1)
	if want := 4 + 2 + 8 + 2 + 2 + 8; len(p) != want {
		t.Fatalf("legacy hello is %d bytes, want %d", len(p), want)
	}
	_, err := parseHello(p)
	if err == nil {
		t.Fatal("expected rejection of version-1 hello")
	}
	for _, sub := range []string{"version mismatch", "membership-epoch"} {
		if !bytes.Contains([]byte(err.Error()), []byte(sub)) {
			t.Fatalf("error %q does not mention %q", err, sub)
		}
	}
}

// TestHandshakeCurrentVersionTruncated: a current-version hello with the
// membership epoch cut off is a length error, not a crash.
func TestHandshakeCurrentVersionTruncated(t *testing.T) {
	p := appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2, MembershipEpoch: 9}, Version)
	for cut := 6; cut < len(p); cut++ {
		if _, err := parseHello(p[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	h := hello{ClusterID: 1, From: 1, Procs: 2}
	_, err := parseHello(appendHello(nil, h, Version+1))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("version mismatch")) {
		t.Fatalf("expected version mismatch error, got %v", err)
	}
}

func TestHandshakeBadMagic(t *testing.T) {
	p := appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2}, Version)
	p[0] ^= 0xff
	if _, err := parseHello(p); err == nil {
		t.Fatal("expected bad magic error")
	}
}

func TestAppendFrameZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 512)
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendFrame(buf[:0], KindUser, 9, payload)
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocates %.1f times per frame, want 0", allocs)
	}
}

func FuzzFrameReader(f *testing.F) {
	f.Add(AppendFrame(nil, KindUser, 1, []byte("seed")))
	f.Add([]byte{0, 0, 0, 9, 16, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		for {
			_, _, _, err := fr.Next()
			if err != nil {
				return // any error is fine; panics and hangs are not
			}
		}
	})
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(16), uint64(1), []byte("payload"))
	f.Fuzz(func(t *testing.T, kind uint8, seq uint64, payload []byte) {
		buf := AppendFrame(nil, kind, seq, payload)
		fr := NewFrameReader(bytes.NewReader(buf), len(buf)+16)
		k, s, p, err := fr.Next()
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if k != kind || s != seq || !bytes.Equal(p, payload) {
			t.Fatalf("round trip mismatch: kind %d/%d seq %d/%d", k, kind, s, seq)
		}
	})
}

func FuzzParseHello(f *testing.F) {
	f.Add(appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2, RecvSeq: 3}, Version))
	f.Add(appendHello(nil, hello{ClusterID: 1, From: 1, Procs: 2, RecvSeq: 3, MembershipEpoch: 12}, Version))
	f.Add(appendHello(nil, hello{ClusterID: 9, From: 0, Procs: 4, RecvSeq: 8}, 1)) // legacy 26-byte format
	f.Fuzz(func(t *testing.T, data []byte) {
		parseHello(data) // must not panic
	})
}

// FuzzHelloRoundTrip: every hello survives encode/decode field-for-field at
// the current version (membership epoch included), and its version-1
// rendering is always rejected.
func FuzzHelloRoundTrip(f *testing.F) {
	f.Add(uint64(1), 1, 2, uint64(3), uint64(4))
	f.Add(uint64(0xfeedface), 3, 5, uint64(42), uint64(0))
	f.Fuzz(func(t *testing.T, cluster uint64, from, procs int, recvSeq, memEpoch uint64) {
		h := hello{ClusterID: cluster, From: from & 0xffff, Procs: procs & 0xffff,
			RecvSeq: recvSeq, MembershipEpoch: memEpoch}
		got, err := parseHello(appendHello(nil, h, Version))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got != h {
			t.Fatalf("round trip mismatch: got %+v, want %+v", got, h)
		}
		if _, err := parseHello(appendHello(nil, h, 1)); err == nil {
			t.Fatal("version-1 rendering accepted")
		}
	})
}
