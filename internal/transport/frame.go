// Package transport is the process-to-process wire of the distributed
// runtime: a length-prefixed framed protocol over TCP with per-peer send and
// receive goroutines, a connection handshake (magic, protocol version,
// cluster identity, process index, peer count), sequence-numbered frames
// with ack-based retention, and reconnect-with-backoff that replays unacked
// frames so a dropped connection loses nothing and delivers nothing twice.
//
// The package knows nothing about dataflow: frames carry an opaque kind byte
// (kinds >= KindUser belong to the layer above; see dataflow.Mesh) and a
// payload. What it guarantees is exactly what the progress protocol needs:
// per-peer FIFO delivery of every frame exactly once, across reconnects.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds. Kinds below KindUser are internal to the transport.
const (
	kindHello    byte = 0 // handshake, dialer -> acceptor
	kindHelloAck byte = 1 // handshake reply, acceptor -> dialer
	kindAck      byte = 2 // cumulative receive acknowledgement
	kindFin      byte = 3 // sender has no further frames (shutdown barrier)
	kindReject   byte = 4 // handshake rejection with a reason, acceptor -> dialer
	kindBatch    byte = 5 // coalesced run of numbered frames (see sub-frame format)

	// KindUser is the first frame kind available to the layer above.
	KindUser byte = 16
)

// Protocol constants.
const (
	// Magic opens every handshake payload.
	Magic uint32 = 0x4d475048 // "MGPH"
	// Version is the wire protocol version; a handshake with any other
	// version is rejected. Version 2 added the membership epoch to the
	// handshake (dynamic membership). Version 3 added batched framing and
	// multi-connection peers: the hello carries which lane of the peer pair
	// the connection is, and how many lanes the dialer was configured with
	// (the counts must agree or the acceptor's stripes would not line up
	// with the dialer's). Earlier versions are rejected rather than
	// defaulted so a stale binary cannot silently join with a framing the
	// rest of the cluster does not speak.
	Version uint16 = 3
	// DefaultMaxFrame bounds the total encoded size of one frame unless
	// Config.MaxFrame overrides it. Oversized frames are rejected on both
	// sides: Send reports it through the transport's fatal error path (the
	// layer above bounds its batches, so it is a configuration error, but a
	// data-dependent one — see Transport.Send) and the reader kills the
	// connection.
	DefaultMaxFrame = 64 << 20

	// frameOverhead is the fixed per-frame framing cost: a u32 length
	// (covering kind+seq+payload), a kind byte, and a u64 sequence number.
	frameOverhead = 4 + 1 + 8

	// subOverhead is the per-sub-frame cost inside a kindBatch frame: a u32
	// length (covering kind+payload) and a kind byte. The sequence number is
	// implicit — sub-frame i of a batch with first sequence s carries s+i —
	// which is what makes coalescing pay: 5 bytes instead of 13 per frame,
	// and one length-prefixed read instead of many.
	subOverhead = 4 + 1

	// defaultCoalesce caps how many payload bytes the send loop coalesces
	// into one kindBatch frame. Large enough to amortize framing and the
	// writev syscall, small enough to keep per-frame latency and the
	// receiver's contiguous read buffer modest.
	defaultCoalesce = 256 << 10
)

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// configured maximum; the connection carrying it is unusable (the stream
// cannot be resynchronized) and is closed.
type ErrFrameTooLarge struct {
	Declared, Max int
}

func (e ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("transport: frame of %d bytes exceeds max %d", e.Declared, e.Max)
}

// AppendFrame appends the encoding of one frame to buf and returns the
// extended slice. Sequence number 0 marks an unnumbered frame (handshake,
// ack); numbered frames start at 1.
func AppendFrame(buf []byte, kind byte, seq uint64, payload []byte) []byte {
	n := 1 + 8 + len(payload)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	return append(buf, payload...)
}

// FrameReader decodes frames from a byte stream, reusing one internal
// buffer. The payload returned by Next is valid only until the following
// call.
type FrameReader struct {
	r   io.Reader
	max int
	buf []byte
	hdr [4]byte
}

// NewFrameReader returns a reader enforcing the given maximum frame size
// (DefaultMaxFrame when max <= 0).
func NewFrameReader(r io.Reader, max int) *FrameReader {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &FrameReader{r: r, max: max}
}

// Next reads one frame. A short read anywhere inside a frame (a torn frame)
// surfaces as io.ErrUnexpectedEOF; a clean EOF between frames as io.EOF.
func (fr *FrameReader) Next() (kind byte, seq uint64, payload []byte, err error) {
	if _, err = io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[:]))
	if n < 1+8 {
		return 0, 0, nil, fmt.Errorf("transport: frame length %d below header size", n)
	}
	if n+4 > fr.max {
		return 0, 0, nil, ErrFrameTooLarge{Declared: n + 4, Max: fr.max}
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err = io.ReadFull(fr.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), body[9:], nil
}

// appendSubFrame appends the encoding of one coalesced sub-frame to buf: a
// u32 length covering kind+payload, the kind byte, and the payload. The
// sub-frame's sequence number is implicit in its position within the
// enclosing kindBatch frame. The send loop builds sub-frames with vectored
// writes instead of this helper; it exists for tests and documentation of
// the format.
func appendSubFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, kind)
	return append(buf, payload...)
}

// forEachSub walks the payload of a kindBatch frame, invoking f for each
// sub-frame with its implicit sequence number (firstSeq + position). f
// returns false to stop the walk early (the caller is tearing the
// connection down); forEachSub then returns nil — the walk's abort is the
// caller's doing, not a format error.
func forEachSub(firstSeq uint64, payload []byte, f func(seq uint64, kind byte, body []byte) bool) error {
	seq := firstSeq
	for len(payload) > 0 {
		if len(payload) < subOverhead {
			return fmt.Errorf("transport: %d trailing bytes inside a batch frame", len(payload))
		}
		n := int(binary.BigEndian.Uint32(payload))
		if n < 1 || subOverhead-1+n > len(payload) {
			return fmt.Errorf("transport: sub-frame length %d exceeds batch remainder %d", n, len(payload)-subOverhead+1)
		}
		if !f(seq, payload[4], payload[5:4+n]) {
			return nil
		}
		payload = payload[4+n:]
		seq++
	}
	return nil
}

// hello is the handshake payload exchanged on every new connection. RecvSeq
// resumes a broken session: it is the highest contiguous frame sequence the
// sender of the hello has received from its peer, so the peer replays
// everything after it.
type hello struct {
	ClusterID uint64
	From      int // process index of the hello's sender
	Procs     int // total roster size, verified to match
	RecvSeq   uint64
	// MembershipEpoch is the sender's current membership view version. The
	// roster (Procs) is fixed for a cluster's lifetime; which roster slots
	// are active changes at membership epochs, and a connection between two
	// processes whose views have diverged is still valid — the view is
	// reconciled by the control plane, not the transport — so the epoch is
	// carried for observability and for the acceptor to admit dials from
	// peers it has not itself activated yet.
	MembershipEpoch uint64
	// Lane identifies which of the peer pair's striped connections this
	// handshake establishes; Lanes is the dialer's configured connection
	// count per peer, verified to match the acceptor's (like Procs).
	Lane  int
	Lanes int
}

// appendHello encodes h at the given protocol version (the version argument
// exists so tests can forge a mismatching handshake). Version 1 emits the
// legacy 26-byte payload without the membership epoch and version 2 the
// 34-byte payload without the lane fields, exactly as an old build would, so
// rejection tests exercise the true old wire formats.
func appendHello(buf []byte, h hello, version uint16) []byte {
	buf = binary.BigEndian.AppendUint32(buf, Magic)
	buf = binary.BigEndian.AppendUint16(buf, version)
	buf = binary.BigEndian.AppendUint64(buf, h.ClusterID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.From))
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.Procs))
	buf = binary.BigEndian.AppendUint64(buf, h.RecvSeq)
	if version >= 2 {
		buf = binary.BigEndian.AppendUint64(buf, h.MembershipEpoch)
	}
	if version >= 3 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Lane))
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Lanes))
	}
	return buf
}

// parseHello decodes and validates a handshake payload.
func parseHello(p []byte) (hello, error) {
	if len(p) < 4+2 {
		return hello{}, fmt.Errorf("transport: handshake payload of %d bytes", len(p))
	}
	if m := binary.BigEndian.Uint32(p[0:4]); m != Magic {
		return hello{}, fmt.Errorf("transport: bad handshake magic %#x", m)
	}
	// Version is checked before length so an old hello (shorter payloads:
	// no membership epoch, no lane fields) is reported as the version skew
	// it is, not as a truncated payload.
	if v := binary.BigEndian.Uint16(p[4:6]); v != Version {
		switch v {
		case 1:
			return hello{}, fmt.Errorf("transport: protocol version mismatch: peer speaks 1, this build speaks %d (version 1 predates the membership-epoch handshake; upgrade the peer)", Version)
		case 2:
			return hello{}, fmt.Errorf("transport: protocol version mismatch: peer speaks 2, this build speaks %d (version 2 predates batched framing and multi-connection peers; upgrade the peer)", Version)
		}
		return hello{}, fmt.Errorf("transport: protocol version mismatch: peer speaks %d, this build speaks %d", v, Version)
	}
	if len(p) != 4+2+8+2+2+8+8+2+2 {
		return hello{}, fmt.Errorf("transport: handshake payload of %d bytes", len(p))
	}
	return hello{
		ClusterID:       binary.BigEndian.Uint64(p[6:14]),
		From:            int(binary.BigEndian.Uint16(p[14:16])),
		Procs:           int(binary.BigEndian.Uint16(p[16:18])),
		RecvSeq:         binary.BigEndian.Uint64(p[18:26]),
		MembershipEpoch: binary.BigEndian.Uint64(p[26:34]),
		Lane:            int(binary.BigEndian.Uint16(p[34:36])),
		Lanes:           int(binary.BigEndian.Uint16(p[36:38])),
	}, nil
}
