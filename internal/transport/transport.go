package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// rejectRetired is the reason payload of a kindReject frame sent to a
// dialer whose slot this process has retired.
const rejectRetired = "retired"

// errRetiredByPeer reports a dial rejected because the peer has retired us:
// the session is over for good, not merely interrupted.
var errRetiredByPeer = errors.New("transport: peer has retired this process")

// Config describes one process's membership in a cluster.
type Config struct {
	// Addrs lists one TCP address per process; Addrs[Index] is this
	// process's listen address. Every process must be given the same list
	// in the same order.
	Addrs []string
	// Index is this process's position in Addrs.
	Index int
	// ClusterID identifies the cluster in handshakes so stray processes
	// from another run are rejected. 0 derives it from Addrs, which every
	// process shares.
	ClusterID uint64
	// MaxFrame bounds the encoded size of one frame (DefaultMaxFrame if 0).
	MaxFrame int
	// DialTimeout bounds how long establishing (or re-establishing) any one
	// connection may take, covering peers that start late. Default 30s.
	DialTimeout time.Duration
	// AckEvery is the number of received frames between acknowledgements
	// (default 64); it bounds how much a sender retains for replay.
	AckEvery int
	// Conns is the number of TCP connections ("lanes") per peer pair
	// (default 1, max 64). Each lane is an independent FIFO exactly-once
	// session with its own sequence space, acks, and replay retention;
	// SendKeyed stripes frames over lanes by key, so everything sent under
	// one key stays FIFO while different keys use different connections
	// (and different cores) in parallel. Every process must configure the
	// same count — the handshake verifies it like the peer count.
	Conns int
	// Coalesce caps how many payload bytes the send loop packs into one
	// batch frame (defaultCoalesce if 0, never more than MaxFrame). Frames
	// larger than the cap travel alone, up to MaxFrame.
	Coalesce int
	// Listener, when non-nil, is a pre-bound listener for Addrs[Index]
	// (tests bind :0 first to pick free ports without a race).
	Listener net.Listener
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
	// Fatal, when non-nil, is invoked (once, from a transport goroutine) when
	// the transport dies irrecoverably — a non-retired peer unreachable for
	// DialTimeout of consecutive redial failures. By the time it runs the
	// transport is already torn down; the hook's job is to unwedge whatever
	// sits above (a dataflow blocked on the dead session) so the error can
	// surface through the normal shutdown path instead of a panic.
	Fatal func(err error)
	// Absent marks roster slots that are not members of the cluster when
	// this process starts. Addrs is the full fixed roster; membership is
	// which slots are live. Absent[i] for a peer means: do not dial it and
	// do not wait for it at startup — it may join later by dialing us.
	// Absent[Index] means this process is itself a late joiner: it dials
	// every live peer regardless of index order (the usual
	// higher-index-dials rule assumes everyone starts together).
	Absent []bool
	// MembershipEpoch is the initial membership view version carried in
	// handshakes; bump it via Transport.SetMembershipEpoch as views change.
	MembershipEpoch uint64
}

func (c *Config) defaults() {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 30 * time.Second
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 64
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Conns > 64 {
		c.Conns = 64
	}
	if c.Coalesce <= 0 {
		c.Coalesce = defaultCoalesce
	}
	if c.Coalesce > c.MaxFrame {
		c.Coalesce = c.MaxFrame
	}
	if c.ClusterID == 0 {
		h := fnv.New64a()
		h.Write([]byte(strings.Join(c.Addrs, ",")))
		c.ClusterID = h.Sum64() | 1 // never 0
	}
}

// Handler receives every user frame (kind >= KindUser), exactly once, in
// per-lane FIFO order: frames sent under one SendKeyed key arrive in send
// order, frames from different lanes of the same peer may be handled
// concurrently (with Conns == 1 this degenerates to the old per-peer FIFO).
// It runs on the receiving connection's goroutine; the payload is only valid
// for the duration of the call.
type Handler func(from int, kind byte, payload []byte)

// frame is one queued or retained outbound frame. data is pool-owned and
// recycled once the frame is acknowledged.
type frame struct {
	seq  uint64
	kind byte
	data []byte
}

// connIO pairs a connection with its buffered reader (the reader must
// survive the handshake-to-recvLoop handoff).
type connIO struct {
	c  net.Conn
	br *bufio.Reader
}

// peerSet is everything shared by the striped sessions ("lanes") to one
// remote process. Lifecycle operations (Retire, the shutdown barrier, the
// startup wait) apply to every lane; the per-session state lives on each
// lane's peer.
type peerSet struct {
	lanes []*peer
}

// peer is the state of one lane of one remote process: the outbound queue
// and retained frames, the live connection, and receive-side bookkeeping.
// With Conns == 1 a peer is exactly the old one-session-per-process state.
type peer struct {
	t      *Transport
	index  int
	lane   int
	dials  bool // we dial this peer (our index is higher, or we are a joiner)
	absent bool // roster slot inactive at our startup; may join later

	mu      sync.Mutex
	notify  chan struct{} // latched wake for the sender goroutine
	q       []frame       // enqueued, not yet written
	spareQ  []frame       // recycled batch backing array
	unacked []frame       // written on some conn, awaiting ack
	// unackedHead indexes the first retained frame in unacked: acks advance
	// the cursor instead of memmoving the (potentially large) retained tail
	// on every ack; the array compacts only when the dead prefix dominates.
	unackedHead int
	pool        [][]byte // recycled frame payload buffers
	sendSeq     uint64   // last assigned outbound sequence number
	ackedSeq    uint64   // highest outbound seq acked by the peer
	recvSeq     uint64   // highest contiguous inbound seq received
	lastAck     uint64   // recvSeq when we last enqueued an ack
	finRecvd    bool
	finSeq      uint64 // our FIN's seq (0 until Finish)
	inFlight    bool   // sender is mid-write on a batch taken from q
	joined      bool   // a connection was installed at least once
	retired     bool   // peer left the cluster for good; drop sends, no redial
	retiredUs   bool   // the peer rejected our dial as retired: it will never
	// ack another frame of ours, so shutdown barriers must not wait for it.
	// Set only on a leaver (survivors retire a departed member on its
	// goodbye, which can close the connection before the leaver's FIN is
	// acknowledged).

	conn    *connIO // adopted by the sender goroutine
	pending *struct {
		io       *connIO
		peerRecv uint64
	}
	redialing bool

	upOnce sync.Once
	up     chan struct{} // closed when the first conn is established

	// dispatch serializes inbound frame processing across connection
	// generations: after a reconnect, the old connection's receive loop can
	// still be draining frames buffered in its reader (or be blocked in the
	// handler) while the new connection's loop starts. Holding dispatch
	// around the whole receive step (sequence check, cursor update, handler
	// call) keeps the Handler contract — per-peer FIFO, exactly once — true
	// even across that overlap: the sequence discipline then deduplicates
	// and orders whichever loop runs first.
	dispatch sync.Mutex
}

// Transport is one process's endpoint of the cluster mesh: (N-1) * Conns
// reliable, FIFO, exactly-once frame sessions — Conns striped lanes per peer
// process.
type Transport struct {
	cfg      Config
	handler  Handler
	peers    []*peerSet
	ln       net.Listener
	memEpoch atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	fatalMu  sync.Mutex
	fatalErr error
}

// Dial joins the cluster: it binds the local listener, connects to every
// lower-indexed peer (retrying with backoff while they start), accepts
// connections from every higher-indexed peer, and returns once all N-1
// sessions are up. handler receives every inbound user frame.
func Dial(cfg Config, handler Handler) (*Transport, error) {
	cfg.defaults()
	if cfg.Index < 0 || cfg.Index >= len(cfg.Addrs) {
		return nil, fmt.Errorf("transport: index %d out of range for %d addrs", cfg.Index, len(cfg.Addrs))
	}
	t := &Transport{cfg: cfg, handler: handler, closed: make(chan struct{})}
	t.memEpoch.Store(cfg.MembershipEpoch)
	absent := func(i int) bool { return i < len(cfg.Absent) && cfg.Absent[i] }
	selfJoiner := absent(cfg.Index)
	for i := range cfg.Addrs {
		if i == cfg.Index {
			t.peers = append(t.peers, nil)
			continue
		}
		ps := &peerSet{}
		for l := 0; l < cfg.Conns; l++ {
			ps.lanes = append(ps.lanes, &peer{
				t:      t,
				index:  i,
				lane:   l,
				dials:  cfg.Index > i || selfJoiner,
				absent: absent(i),
				notify: make(chan struct{}, 1),
				up:     make(chan struct{}),
			})
		}
		t.peers = append(t.peers, ps)
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Index])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Index], err)
		}
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()

	for _, ps := range t.peers {
		if ps == nil {
			continue
		}
		for _, p := range ps.lanes {
			t.wg.Add(1)
			go p.sendLoop()
			if p.dials && !p.absent {
				p.mu.Lock()
				p.startRedialLocked()
				p.mu.Unlock()
			}
		}
	}

	waited := 0
	deadline := time.After(cfg.DialTimeout)
	for _, ps := range t.peers {
		if ps == nil || ps.lanes[0].absent {
			continue
		}
		waited++
		for _, p := range ps.lanes {
			select {
			case <-p.up:
			case <-deadline:
				t.Close()
				return nil, fmt.Errorf("transport: process %d: peer %d (lane %d) did not connect within %v",
					cfg.Index, p.index, p.lane, cfg.DialTimeout)
			}
		}
	}
	t.logf("transport: process %d/%d connected to %d peers over %d lanes each",
		cfg.Index, len(cfg.Addrs), waited, cfg.Conns)
	return t, nil
}

// Index returns this process's index.
func (t *Transport) Index() int { return t.cfg.Index }

// Procs returns the cluster's process count.
func (t *Transport) Procs() int { return len(t.cfg.Addrs) }

// MaxFrame returns the configured frame size bound.
func (t *Transport) MaxFrame() int { return t.cfg.MaxFrame }

// SetMembershipEpoch updates the membership view version carried in any
// future handshake (reconnects and accepted joins).
func (t *Transport) SetMembershipEpoch(e uint64) { t.memEpoch.Store(e) }

// MembershipEpoch returns the current membership view version.
func (t *Transport) MembershipEpoch() uint64 { return t.memEpoch.Load() }

// Retire removes a peer from the mesh for good: its session is torn down,
// reconnect attempts stop (no DialTimeout panic for a declared-dead peer),
// queued and retained frames are dropped, further Sends to it are dropped
// silently, and the shutdown barriers skip it. Used after a drain-leave FIN
// or a declared crash death; there is no un-retire.
func (t *Transport) Retire(i int) {
	ps := t.peers[i]
	if ps == nil {
		return
	}
	already := true
	for _, p := range ps.lanes {
		p.mu.Lock()
		already = already && p.retired
		p.retired = true
		if p.conn != nil {
			p.conn.c.Close()
			p.conn = nil
		}
		if p.pending != nil {
			p.pending.io.c.Close()
			p.pending = nil
		}
		for _, f := range p.q {
			if f.data != nil {
				p.putBufLocked(f.data)
			}
		}
		p.q = p.q[:0]
		for _, f := range p.unacked[p.unackedHead:] {
			if f.data != nil {
				p.putBufLocked(f.data)
			}
		}
		p.unacked = p.unacked[:0]
		p.unackedHead = 0
		p.mu.Unlock()
		p.upOnce.Do(func() { close(p.up) })
		p.poke()
	}
	if !already {
		t.logf("transport: process %d: retired peer %d", t.cfg.Index, i)
	}
}

// Retired reports whether peer i has been retired.
func (t *Transport) Retired(i int) bool {
	ps := t.peers[i]
	if ps == nil {
		return false
	}
	p := ps.lanes[0] // Retire flips every lane together
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retired
}

// Joined reports whether a session with peer i was ever installed (on any
// lane — a joiner's lanes come up one dial at a time). An absent roster slot
// flips to joined when the late process dials in; the mesh's control-plane
// broadcast uses this to reach a joiner that is connected but not yet an
// active dataflow participant.
func (t *Transport) Joined(i int) bool {
	ps := t.peers[i]
	if ps == nil {
		return false
	}
	for _, p := range ps.lanes {
		p.mu.Lock()
		ok := p.joined && !p.retired
		p.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

func (t *Transport) isClosed() bool {
	select {
	case <-t.closed:
		return true
	default:
		return false
	}
}

// Send enqueues one user frame to a peer process and copies payload, so
// the caller's buffer is immediately reusable. It never blocks on the
// network: the per-peer queue is deliberately unbounded, which is what
// rules out cross-process send deadlocks (a worker blocked sending to a
// peer whose worker is blocked sending back). The flip side is that
// memory, not backpressure, absorbs a stalled peer — retention stays small
// only while the peer drains and acks; if it stops doing either, queued
// and retained frames grow until the peer recovers or the run is killed.
// The enqueue itself is allocation-free at steady state: the payload copy
// lands in a recycled buffer and the queue reuses its backing array.
//
// An oversized frame (payload beyond MaxFrame) is not a recoverable
// condition — the layer above sized its batches against MaxFrame, so the
// session's framing contract is broken — but it is data-dependent, so it is
// reported through the transport's fatal error path (the frame is dropped,
// the transport tears down, and the Fatal hook unwedges the layer above)
// rather than by panicking on whichever worker goroutine happened to send it.
//
//megalint:hotpath
func (t *Transport) Send(to int, kind byte, payload []byte) {
	t.sendLane(to, 0, kind, payload)
}

// SendKeyed enqueues one user frame to a peer process on the lane selected
// by key (key modulo the configured connection count). Frames sharing a key
// are delivered in send order; frames under different keys may be reordered
// relative to each other. With Conns == 1 SendKeyed is Send.
//
//megalint:hotpath
func (t *Transport) SendKeyed(to, key int, kind byte, payload []byte) {
	t.sendLane(to, key, kind, payload)
}

//megalint:hotpath
func (t *Transport) sendLane(to, key int, kind byte, payload []byte) {
	if kind < KindUser {
		panic(fmt.Sprintf("transport: Send with reserved kind %d", kind))
	}
	if frameOverhead+len(payload) > t.cfg.MaxFrame {
		//megalint:allow hotalloc oversized-frame fatal path: the transport tears down after this
		t.fail(fmt.Errorf("transport: process %d: send of %d bytes to peer %d: %w",
			t.cfg.Index, len(payload), to,
			ErrFrameTooLarge{Declared: frameOverhead + len(payload), Max: t.cfg.MaxFrame}))
		return
	}
	ps := t.peers[to]
	if ps == nil {
		panic(fmt.Sprintf("transport: Send to self (process %d)", to))
	}
	if key < 0 {
		key = -key
	}
	ps.lanes[key%len(ps.lanes)].enqueue(kind, payload, true)
}

// enqueue appends one frame (numbered when numbered is true) to the peer's
// outbound queue, copying payload into a pooled buffer.
//
//megalint:hotpath
func (p *peer) enqueue(kind byte, payload []byte, numbered bool) {
	p.mu.Lock()
	if p.retired {
		p.mu.Unlock()
		return
	}
	buf := p.getBufLocked(len(payload))
	buf = append(buf[:0], payload...)
	var seq uint64
	if numbered {
		p.sendSeq++
		seq = p.sendSeq
	}
	p.q = append(p.q, frame{seq: seq, kind: kind, data: buf})
	p.mu.Unlock()
	p.poke()
}

//megalint:hotpath
func (p *peer) poke() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// getBufLocked pops a recycled payload buffer with enough capacity, or
// allocates one.
//
//megalint:hotpath
func (p *peer) getBufLocked(n int) []byte {
	if l := len(p.pool); l > 0 {
		buf := p.pool[l-1]
		p.pool = p.pool[:l-1]
		if cap(buf) >= n {
			return buf
		}
	}
	//megalint:allow hotalloc pool miss or undersized buffer: the pool is warm at steady state
	return make([]byte, 0, n)
}

//megalint:hotpath
func (p *peer) putBufLocked(buf []byte) {
	// The pool must cover the whole in-flight window — enqueued, written,
	// awaiting ack — or the enqueue path falls back to the allocator between
	// ack roundtrips. 8192 buffers bound it at a few MB per lane for typical
	// frame sizes while absorbing a saturating producer.
	if len(p.pool) < 8192 {
		p.pool = append(p.pool, buf[:0])
	}
}

// sendLoop is the lane's single sender goroutine. It alone adopts new
// connections and moves frames between q and unacked, which keeps replay
// ordering trivially correct: frames enter unacked only after a write
// attempt, and a newly adopted connection first drains unacked (minus what
// the peer already acknowledged) back into the front of q.
//
// Each round drains the queue into one vectored write (net.Buffers): runs of
// numbered frames coalesce into kindBatch frames whose 5-byte sub-headers
// live in a reused header arena and whose payloads are referenced in place
// from their pooled buffers — nothing is copied into a scratch frame buffer,
// and one writev replaces per-frame Write calls. Replay after a reconnect
// re-coalesces naturally: retention is per frame, and the receiver
// deduplicates by the sub-frames' implicit sequence numbers.
func (p *peer) sendLoop() {
	defer p.t.wg.Done()
	var conn *connIO
	var hdrs []byte   // header arena; pre-sized per round so slices into it stay valid
	var vecs [][]byte // iovec list, rebuilt per round
	var outerPad [frameOverhead]byte
	coalesce := p.t.cfg.Coalesce
	for {
		p.mu.Lock()
		for {
			if p.pending != nil {
				// Adopt the new connection: requeue retained frames the
				// peer has not acknowledged, in sequence order, ahead of
				// everything queued since.
				nd := p.pending
				p.pending = nil
				p.trimUnackedLocked(nd.peerRecv)
				if retained := p.unacked[p.unackedHead:]; len(retained) > 0 {
					p.q = append(retained, p.q...)
					p.unacked = nil
					p.unackedHead = 0
				}
				conn = nd.io
				p.conn = conn
			}
			if len(p.q) > 0 && conn != nil {
				break
			}
			p.mu.Unlock()
			select {
			case <-p.notify:
			case <-p.t.closed:
				return
			}
			p.mu.Lock()
		}
		batch := p.q
		p.q = p.spareQ[:0]
		p.spareQ = nil
		p.inFlight = true
		p.mu.Unlock()

		// Worst case every frame opens its own group (plain header + first
		// sub-header); sizing the arena up front means later appends never
		// reallocate, so the header slices already in vecs stay valid.
		if need := (frameOverhead + subOverhead) * len(batch); cap(hdrs) < need {
			hdrs = make([]byte, 0, need)
		}
		hdrs = hdrs[:0]
		vecs = vecs[:0]

		// Open-group state: arena offset of the outer header, vec index of
		// the group's first entry, first sequence number, accumulated
		// sub-frame bytes, and sub count.
		groupOff, groupVec, groupLen, groupN := -1, -1, 0, 0
		var groupSeq uint64
		closeGroup := func() {
			if groupOff < 0 {
				return
			}
			h := hdrs[groupOff:]
			if groupN == 1 {
				// A lone frame reverts to the plain format in place: the
				// reserved outer+sub header region is rewritten as one
				// 13-byte frame header and its vec entry shrunk to match.
				binary.BigEndian.PutUint32(h, uint32(1+8+groupLen-subOverhead))
				h[4] = h[frameOverhead+4] // the sub's kind byte
				binary.BigEndian.PutUint64(h[5:], groupSeq)
				vecs[groupVec] = vecs[groupVec][:frameOverhead]
			} else {
				binary.BigEndian.PutUint32(h, uint32(1+8+groupLen))
				h[4] = kindBatch
				binary.BigEndian.PutUint64(h[5:], groupSeq)
			}
			groupOff, groupVec, groupLen, groupN = -1, -1, 0, 0
		}
		for _, f := range batch {
			if f.seq == 0 {
				// Unnumbered frames (acks) travel alone in the plain format.
				closeGroup()
				off := len(hdrs)
				hdrs = binary.BigEndian.AppendUint32(hdrs, uint32(1+8+len(f.data)))
				hdrs = append(hdrs, f.kind)
				hdrs = binary.BigEndian.AppendUint64(hdrs, 0)
				vecs = append(vecs, hdrs[off:off+frameOverhead])
				if len(f.data) > 0 {
					vecs = append(vecs, f.data)
				}
				continue
			}
			if groupOff >= 0 && frameOverhead+1+8+groupLen+subOverhead+len(f.data) > coalesce {
				closeGroup()
			}
			if groupOff < 0 {
				// Start a group: reserve the outer header and the first
				// sub-header contiguously (one vec entry; patched on close).
				groupOff, groupVec, groupSeq = len(hdrs), len(vecs), f.seq
				hdrs = append(hdrs, outerPad[:]...)
			}
			off := len(hdrs)
			hdrs = binary.BigEndian.AppendUint32(hdrs, uint32(1+len(f.data)))
			hdrs = append(hdrs, f.kind)
			if groupN == 0 {
				vecs = append(vecs, hdrs[groupOff:off+subOverhead])
			} else {
				vecs = append(vecs, hdrs[off:off+subOverhead])
			}
			if len(f.data) > 0 {
				vecs = append(vecs, f.data)
			}
			groupLen += subOverhead + len(f.data)
			groupN++
		}
		closeGroup()

		bufs := net.Buffers(vecs)
		_, err := bufs.WriteTo(conn.c)
		writeErr := err != nil

		p.mu.Lock()
		for _, f := range batch {
			if f.seq == 0 {
				p.putBufLocked(f.data) // unnumbered frames are never replayed
				continue
			}
			p.unacked = append(p.unacked, f)
		}
		p.spareQ = batch[:0]
		p.inFlight = false
		p.mu.Unlock()
		if writeErr {
			p.connBroken(conn)
			conn = nil
		}
	}
}

// trimUnackedLocked recycles retained frames up to and including seq.
func (p *peer) trimUnackedLocked(seq uint64) {
	if seq > p.ackedSeq {
		p.ackedSeq = seq
	}
	i := p.unackedHead
	for ; i < len(p.unacked) && p.unacked[i].seq <= seq; i++ {
		p.putBufLocked(p.unacked[i].data)
		p.unacked[i].data = nil
	}
	p.unackedHead = i
	if i == len(p.unacked) {
		p.unacked = p.unacked[:0]
		p.unackedHead = 0
	} else if i > 1024 && i > len(p.unacked)-i {
		p.unacked = p.unacked[:copy(p.unacked, p.unacked[i:])]
		p.unackedHead = 0
	}
}

// connBroken reacts to a read or write error on io: if io is still the
// peer's current or pending connection, tear it down and (on the dialing
// side) start reconnecting. The accepting side waits for the dialer.
func (p *peer) connBroken(io *connIO) {
	if io == nil || p.t.isClosed() {
		return
	}
	p.mu.Lock()
	current := p.conn == io || (p.pending != nil && p.pending.io == io)
	if current {
		io.c.Close()
		if p.conn == io {
			p.conn = nil
		}
		if p.pending != nil && p.pending.io == io {
			p.pending = nil
		}
		if p.dials && !p.retired && !p.retiredUs {
			p.startRedialLocked()
		}
	}
	p.mu.Unlock()
	if current {
		p.poke()
		p.t.logf("transport: process %d: connection to peer %d broken", p.t.cfg.Index, p.index)
	}
}

// startRedialLocked launches the single-flight redial goroutine.
func (p *peer) startRedialLocked() {
	if p.redialing {
		return
	}
	p.redialing = true
	p.t.wg.Add(1)
	go p.redial()
}

// redial connects to the peer with exponential backoff, performs the
// handshake (carrying our receive cursor so the peer replays what we
// missed), and installs the connection. It gives up — declaring the
// transport dead via fail, since the dataflow above cannot make progress
// without the session — only after DialTimeout of consecutive failures.
func (p *peer) redial() {
	defer p.t.wg.Done()
	t := p.t
	start := time.Now()
	backoff := 50 * time.Millisecond
	for {
		p.mu.Lock()
		retired := p.retired
		p.mu.Unlock()
		if t.isClosed() || retired {
			p.mu.Lock()
			p.redialing = false
			p.mu.Unlock()
			return
		}
		c, err := net.DialTimeout("tcp", t.cfg.Addrs[p.index], 2*time.Second)
		if err == nil {
			io := &connIO{c: c, br: bufio.NewReaderSize(c, 256<<10)}
			if err = p.handshakeDial(io); err == nil {
				p.mu.Lock()
				p.redialing = false
				p.mu.Unlock()
				return
			}
			c.Close()
			if err == errRetiredByPeer {
				// The peer retired us for good: no lane of this pair will
				// ever be acked again, so stand every lane down (another
				// lane's connection may have died without its own redial to
				// learn this, which would wedge the shutdown barrier).
				for _, l := range t.peers[p.index].lanes {
					l.mu.Lock()
					l.retiredUs = true
					if l == p {
						l.redialing = false
					}
					l.mu.Unlock()
					l.poke()
				}
				t.logf("transport: process %d: peer %d has retired us; standing down", t.cfg.Index, p.index)
				return
			}
		}
		if time.Since(start) > t.cfg.DialTimeout {
			p.mu.Lock()
			p.redialing = false
			retired = p.retired
			p.mu.Unlock()
			if t.isClosed() || retired {
				return
			}
			t.fail(fmt.Errorf("transport: process %d: cannot reach peer %d at %s after %v: %w",
				t.cfg.Index, p.index, t.cfg.Addrs[p.index], t.cfg.DialTimeout, err))
			return
		}
		select {
		case <-time.After(backoff):
		case <-t.closed:
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// handshakeDial runs the dialer's half of the handshake on a fresh
// connection and installs it on success.
func (p *peer) handshakeDial(io *connIO) error {
	t := p.t
	p.mu.Lock()
	recv := p.recvSeq
	p.mu.Unlock()
	h := hello{ClusterID: t.cfg.ClusterID, From: t.cfg.Index, Procs: len(t.cfg.Addrs),
		RecvSeq: recv, MembershipEpoch: t.memEpoch.Load(), Lane: p.lane, Lanes: t.cfg.Conns}
	io.c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.c.Write(AppendFrame(nil, kindHello, 0, appendHello(nil, h, Version))); err != nil {
		return err
	}
	fr := NewFrameReader(io.br, t.cfg.MaxFrame)
	kind, _, payload, err := fr.Next()
	if err != nil {
		return err
	}
	if kind == kindReject {
		if string(payload) == rejectRetired {
			return errRetiredByPeer
		}
		return fmt.Errorf("transport: dial rejected by peer %d: %s", p.index, payload)
	}
	if kind != kindHelloAck {
		return fmt.Errorf("transport: expected hello-ack, got frame kind %d", kind)
	}
	ack, err := parseHello(payload)
	if err != nil {
		return err
	}
	if ack.ClusterID != t.cfg.ClusterID || ack.From != p.index || ack.Procs != len(t.cfg.Addrs) || ack.Lane != p.lane {
		return fmt.Errorf("transport: hello-ack identity mismatch dialing peer %d (lane %d) at %s: remote says cluster %x from %d procs %d lane %d, want cluster %x from %d procs %d lane %d",
			p.index, p.lane, io.c.RemoteAddr(), ack.ClusterID, ack.From, ack.Procs, ack.Lane, t.cfg.ClusterID, p.index, len(t.cfg.Addrs), p.lane)
	}
	io.c.SetDeadline(time.Time{})
	p.install(io, ack.RecvSeq)
	return nil
}

// acceptLoop accepts connections from higher-indexed peers, validates their
// handshake, and installs them (both at startup and on reconnect).
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			if err := t.acceptOne(c); err != nil {
				c.Close()
				t.logf("transport: process %d: rejected connection: %v", t.cfg.Index, err)
			}
		}(c)
	}
}

func (t *Transport) acceptOne(c net.Conn) error {
	io := &connIO{c: c, br: bufio.NewReaderSize(c, 256<<10)}
	c.SetDeadline(time.Now().Add(5 * time.Second))
	fr := NewFrameReader(io.br, t.cfg.MaxFrame)
	kind, _, payload, err := fr.Next()
	if err != nil {
		return err
	}
	if kind != kindHello {
		return fmt.Errorf("expected hello, got frame kind %d", kind)
	}
	h, err := parseHello(payload)
	if err != nil {
		return err
	}
	remote := c.RemoteAddr()
	if h.ClusterID != t.cfg.ClusterID {
		return fmt.Errorf("cluster id mismatch accepting dial from %s: peer %x, ours %x", remote, h.ClusterID, t.cfg.ClusterID)
	}
	if h.Procs != len(t.cfg.Addrs) {
		return fmt.Errorf("peer count mismatch accepting dial from %s (peer index %d): peer says %d, ours %d",
			remote, h.From, h.Procs, len(t.cfg.Addrs))
	}
	if h.Lanes != t.cfg.Conns {
		return fmt.Errorf("connection count mismatch accepting dial from %s (peer index %d): peer stripes over %d lanes, ours %d (every process must configure the same Conns)",
			remote, h.From, h.Lanes, t.cfg.Conns)
	}
	if h.Lane < 0 || h.Lane >= t.cfg.Conns {
		return fmt.Errorf("lane %d out of range accepting dial from %s (peer index %d, %d lanes)",
			h.Lane, remote, h.From, t.cfg.Conns)
	}
	// The usual rule is higher-index-dials-lower; a slot marked absent in
	// our roster is a late joiner, which dials everyone, so its dial is
	// legitimate regardless of index order.
	fromAbsent := h.From >= 0 && h.From < len(t.cfg.Absent) && t.cfg.Absent[h.From]
	if h.From == t.cfg.Index || h.From < 0 || h.From >= len(t.cfg.Addrs) || (h.From < t.cfg.Index && !fromAbsent) {
		return fmt.Errorf("unexpected dial from process %d at %s to process %d (acceptor side)", h.From, remote, t.cfg.Index)
	}
	p := t.peers[h.From].lanes[h.Lane]
	p.mu.Lock()
	retired := p.retired
	recv := p.recvSeq
	p.mu.Unlock()
	if retired {
		// Tell the dialer before closing: a retired process redialing us is
		// usually a leaver chasing the ack of its final frames, and without
		// the reject frame it cannot distinguish retirement from an outage
		// (it would redial until its dial timeout and panic).
		c.Write(AppendFrame(nil, kindReject, 0, []byte(rejectRetired)))
		return fmt.Errorf("dial from retired process %d at %s", h.From, remote)
	}
	ack := hello{ClusterID: t.cfg.ClusterID, From: t.cfg.Index, Procs: len(t.cfg.Addrs),
		RecvSeq: recv, MembershipEpoch: t.memEpoch.Load(), Lane: h.Lane, Lanes: t.cfg.Conns}
	if _, err := c.Write(AppendFrame(nil, kindHelloAck, 0, appendHello(nil, ack, Version))); err != nil {
		return err
	}
	c.SetDeadline(time.Time{})
	p.install(io, h.RecvSeq)
	return nil
}

// install hands a fresh connection to the peer: tear down any previous one,
// start its receive loop, and leave it pending for the sender goroutine to
// adopt (which is when retained frames past peerRecv are requeued).
func (p *peer) install(io *connIO, peerRecv uint64) {
	if p.t.isClosed() {
		io.c.Close()
		return
	}
	p.mu.Lock()
	if p.retired {
		p.mu.Unlock()
		io.c.Close()
		return
	}
	if p.conn != nil {
		p.conn.c.Close()
		p.conn = nil
	}
	if p.pending != nil {
		p.pending.io.c.Close()
	}
	p.pending = &struct {
		io       *connIO
		peerRecv uint64
	}{io: io, peerRecv: peerRecv}
	p.joined = true
	p.mu.Unlock()
	p.upOnce.Do(func() { close(p.up) })
	p.poke()
	p.t.wg.Add(1)
	go p.recvLoop(io)
}

// recvLoop reads frames from one connection until it breaks, dispatching
// user frames (deduplicated by sequence number) to the handler in order.
func (p *peer) recvLoop(io *connIO) {
	defer p.t.wg.Done()
	t := p.t
	fr := NewFrameReader(io.br, t.cfg.MaxFrame)
	for {
		kind, seq, payload, err := fr.Next()
		if err != nil {
			p.connBroken(io)
			return
		}
		if kind == kindAck {
			if len(payload) == 8 {
				p.mu.Lock()
				p.trimUnackedLocked(binary.BigEndian.Uint64(payload))
				p.mu.Unlock()
			}
			continue
		}
		if kind == kindBatch {
			if !p.dispatchBatch(io, seq, payload) {
				return
			}
			continue
		}
		if !p.dispatchFrame(io, kind, seq, payload) {
			return
		}
	}
}

// dispatchFrame performs the receive step for one numbered frame under the
// lane's dispatch lock, so receive loops of overlapping connection
// generations never process frames concurrently or out of order. It
// reports false when the frame is a sequence-gap protocol violation (the
// connection is torn down and the caller's loop must exit).
func (p *peer) dispatchFrame(io *connIO, kind byte, seq uint64, payload []byte) bool {
	p.dispatch.Lock()
	defer p.dispatch.Unlock()
	dup := false
	ok := p.dispatchOne(io, kind, seq, payload, &dup)
	if ok && dup {
		p.reack()
	}
	return ok
}

// dispatchBatch performs the receive step for every sub-frame of one
// coalesced frame under a single dispatch-lock acquisition. Sub-frame i
// carries the implicit sequence number firstSeq+i; a replayed prefix (from a
// reconnect whose ack died with the old connection) is deduplicated
// sub-frame by sub-frame and re-acknowledged once at the end.
func (p *peer) dispatchBatch(io *connIO, firstSeq uint64, payload []byte) bool {
	p.dispatch.Lock()
	defer p.dispatch.Unlock()
	dup, ok := false, true
	if err := forEachSub(firstSeq, payload, func(seq uint64, kind byte, body []byte) bool {
		ok = p.dispatchOne(io, kind, seq, body, &dup)
		return ok
	}); err != nil {
		p.t.logf("transport: process %d: corrupt batch frame from peer %d: %v", p.t.cfg.Index, p.index, err)
		p.connBroken(io)
		return false
	}
	if ok && dup {
		p.reack()
	}
	return ok
}

// reack re-announces the receive cursor: a replayed duplicate means the
// sender never saw our covering ack (it died with the old connection) and
// retains the frame — blocking its shutdown barrier — until some ack covers
// it.
func (p *peer) reack() {
	p.mu.Lock()
	cur := p.recvSeq
	p.lastAck = cur
	p.mu.Unlock()
	var ab [8]byte
	binary.BigEndian.PutUint64(ab[:], cur)
	p.enqueue(kindAck, ab[:], false)
}

// dispatchOne is the receive step for one numbered frame; the caller holds
// the dispatch lock. Duplicates are skipped (setting *dup so the caller
// re-acks once), a sequence gap is a protocol violation that tears the
// connection down and returns false.
func (p *peer) dispatchOne(io *connIO, kind byte, seq uint64, payload []byte, dup *bool) bool {
	t := p.t
	p.mu.Lock()
	if seq <= p.recvSeq {
		p.mu.Unlock()
		*dup = true
		return true
	}
	if seq != p.recvSeq+1 {
		p.mu.Unlock()
		t.logf("transport: process %d: sequence gap from peer %d (got %d, want %d)",
			t.cfg.Index, p.index, seq, p.recvSeq+1)
		p.connBroken(io)
		return false
	}
	p.recvSeq = seq
	needAck := p.recvSeq-p.lastAck >= uint64(t.cfg.AckEvery) || kind == kindFin
	if needAck {
		p.lastAck = p.recvSeq
	}
	p.mu.Unlock()
	if needAck {
		var ab [8]byte
		binary.BigEndian.PutUint64(ab[:], seq)
		p.enqueue(kindAck, ab[:], false)
	}
	switch {
	case kind == kindFin:
		p.mu.Lock()
		p.finRecvd = true
		p.mu.Unlock()
	case kind >= KindUser:
		if t.handler != nil {
			t.handler(p.index, kind, payload)
		}
	}
	return true
}

// Finish runs the shutdown barrier: it announces FIN to every peer (after
// all previously enqueued frames, preserving FIFO) and waits until every
// peer's FIN has arrived and our own outbound queues have drained, then
// closes the transport. Because FIN is ordered after all of a peer's
// frames, returning from Finish means every frame of every peer has been
// received and handled.
func (t *Transport) Finish(timeout time.Duration) error {
	return t.finish(timeout, true)
}

// FinishLeave is the drain-leaver's one-sided shutdown barrier: FIN is
// announced to every live peer and the call returns once each has
// acknowledged it (so every frame we sent was received) and our queues
// have drained — without waiting for the peers' own FINs, which the
// survivors only send at the end of their run, long after we are gone.
func (t *Transport) FinishLeave(timeout time.Duration) error {
	return t.finish(timeout, false)
}

func (t *Transport) finish(timeout time.Duration, waitPeerFin bool) error {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	// skip reports peers outside the barrier: retired ones (in either
	// direction — a peer that retired us will never ack again), and absent
	// slots that never joined. Re-evaluated every pass — a peer may be
	// retired while we wait, which must release the barrier for it.
	skip := func(p *peer) bool {
		return p.retired || p.retiredUs || (p.absent && !p.joined)
	}
	for _, ps := range t.peers {
		if ps == nil {
			continue
		}
		for _, p := range ps.lanes {
			p.mu.Lock()
			if skip(p) {
				p.mu.Unlock()
				continue
			}
			p.sendSeq++
			fin := frame{seq: p.sendSeq, kind: kindFin}
			p.finSeq = fin.seq
			p.q = append(p.q, fin)
			p.mu.Unlock()
			p.poke()
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		if err := t.Err(); err != nil {
			// The transport died (peer unreachable past DialTimeout): the
			// barrier can never drain. Surface the cause, not the timeout.
			t.Close()
			return err
		}
		done := true
	scan:
		for _, ps := range t.peers {
			if ps == nil {
				continue
			}
			for _, p := range ps.lanes {
				p.mu.Lock()
				// Drained means: the peer acknowledged our FIN on this lane (so
				// every frame we sent on it was received), their FIN arrived (so
				// every frame they sent was handled — unless this is a one-sided
				// leave), and nothing of ours — acks included — is still queued
				// or mid-write. In a one-sided leave a lane whose connection is
				// down with no redial in flight will never ack again — survivors
				// retire a leaver on its goodbye and drop the connections, and
				// when the peer owns the dialing there is no reject handshake to
				// tell us so. The leaver verified application of everything it
				// sent (probe past its hold epoch) before saying goodbye, so the
				// unacknowledged tail is only the FIN formality.
				drained := skip(p) ||
					((p.finRecvd || !waitPeerFin) && p.ackedSeq >= p.finSeq &&
						len(p.q) == 0 && !p.inFlight) ||
					(!waitPeerFin && p.joined && p.conn == nil && !p.redialing)
				p.mu.Unlock()
				if !drained {
					done = false
					break scan
				}
			}
		}
		if done {
			t.Close()
			return nil
		}
		if time.Now().After(deadline) {
			t.Close()
			return fmt.Errorf("transport: process %d: shutdown barrier timed out after %v", t.cfg.Index, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fail records the transport's first fatal error, tears the sessions down
// (without waiting for the transport goroutines — the caller is one of
// them), and invokes the Fatal hook so the layer above can stop waiting on
// the fabric. Later failures are ignored: only the first is the cause.
func (t *Transport) fail(err error) {
	t.fatalMu.Lock()
	first := t.fatalErr == nil
	if first {
		t.fatalErr = err
	}
	t.fatalMu.Unlock()
	if !first {
		return
	}
	t.logf("transport: process %d: fatal: %v", t.cfg.Index, err)
	t.shutdown()
	if t.cfg.Fatal != nil {
		t.cfg.Fatal(err)
	}
}

// Err returns the fatal error that killed the transport, or nil while it is
// healthy (or was shut down in an orderly way).
func (t *Transport) Err() error {
	t.fatalMu.Lock()
	defer t.fatalMu.Unlock()
	return t.fatalErr
}

// shutdown closes the listener and every session exactly once, releasing
// all transport goroutines, without waiting for them to exit.
func (t *Transport) shutdown() {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		for _, ps := range t.peers {
			if ps == nil {
				continue
			}
			for _, p := range ps.lanes {
				p.mu.Lock()
				if p.conn != nil {
					p.conn.c.Close()
				}
				if p.pending != nil {
					p.pending.io.c.Close()
				}
				p.mu.Unlock()
				p.poke()
			}
		}
	})
}

// Close tears the transport down immediately: all connections and the
// listener are closed and the goroutines exit. Prefer Finish for an orderly
// shutdown.
func (t *Transport) Close() {
	t.shutdown()
	t.wg.Wait()
}
