package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newLocalCluster builds n transports over pre-bound loopback listeners (so
// tests never race on port reuse) and returns them with their handlers'
// shared collector.
func newLocalCluster(t *testing.T, n int, mk func(i int) Handler) []*Transport {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*Transport, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = Dial(Config{
				Addrs:       addrs,
				Index:       i,
				Listener:    lns[i],
				DialTimeout: 10 * time.Second,
			}, mk(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	return ts
}

func TestClusterSendRecvFIFO(t *testing.T) {
	const n = 3
	const perPair = 500
	type rec struct{ from, to, i int }
	var mu sync.Mutex
	got := map[rec]bool{}
	lastSeen := map[[2]int]int{} // (from,to) -> last payload index, for FIFO
	violation := atomic.Bool{}

	mk := func(to int) Handler {
		return func(from int, kind byte, payload []byte) {
			i := int(binary.BigEndian.Uint64(payload))
			mu.Lock()
			key := [2]int{from, to}
			if prev, ok := lastSeen[key]; ok && i != prev+1 {
				violation.Store(true)
			}
			lastSeen[key] = i
			got[rec{from, to, i}] = true
			mu.Unlock()
		}
	}
	ts := newLocalCluster(t, n, mk)

	var wg sync.WaitGroup
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			var b [8]byte
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				for k := 0; k < perPair; k++ {
					binary.BigEndian.PutUint64(b[:], uint64(k))
					tr.Send(j, KindUser, b[:])
				}
			}
		}(i, tr)
	}
	wg.Wait()
	finishAll(t, ts)
	if violation.Load() {
		t.Fatal("per-pair FIFO order violated")
	}
	want := n * (n - 1) * perPair
	if len(got) != want {
		t.Fatalf("delivered %d distinct frames, want %d", len(got), want)
	}
}

// TestReconnectMidStream kills the live TCP connection several times while
// a stream of numbered frames is in flight, and asserts every frame is
// delivered exactly once, in order, despite the replays.
func TestReconnectMidStream(t *testing.T) {
	const total = 4000
	var mu sync.Mutex
	var got []uint64

	done := make(chan struct{})
	mk := func(i int) Handler {
		if i != 0 {
			return nil
		}
		return func(from int, kind byte, payload []byte) {
			v := binary.BigEndian.Uint64(payload)
			mu.Lock()
			got = append(got, v)
			n := len(got)
			mu.Unlock()
			if n == total {
				close(done)
			}
		}
	}
	ts := newLocalCluster(t, 2, mk)
	sender, receiver := ts[1], ts[0]

	// Killer: periodically close whatever conn currently serves the pair,
	// on both endpoints, while the stream runs.
	stop := make(chan struct{})
	var killers sync.WaitGroup
	killers.Add(1)
	go func() {
		defer killers.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			tr := sender
			if k%2 == 1 {
				tr = receiver
			}
			for _, ps := range tr.peers {
				if ps == nil {
					continue
				}
				for _, p := range ps.lanes {
					p.mu.Lock()
					if p.conn != nil {
						p.conn.c.Close()
					}
					p.mu.Unlock()
				}
			}
		}
	}()

	var b [8]byte
	for i := 0; i < total; i++ {
		binary.BigEndian.PutUint64(b[:], uint64(i))
		sender.Send(0, KindUser, b[:])
		if i%97 == 0 {
			time.Sleep(200 * time.Microsecond) // keep kills landing mid-stream
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("timed out with %d/%d frames delivered", n, total)
	}
	close(stop)
	killers.Wait()
	finishAll(t, ts)
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("frame %d carried %d: lost, duplicated or reordered delivery", i, v)
		}
	}
}

// TestSendAllocsPerFrame pins the transport send path's allocation bound:
// steady-state sends reuse pooled payload buffers, the queue backing array
// and the writer scratch, so the whole path (both endpoints included —
// AllocsPerRun counts process-wide) stays within a small constant per frame.
func TestSendAllocsPerFrame(t *testing.T) {
	var received atomic.Int64
	mk := func(i int) Handler {
		if i != 0 {
			return nil
		}
		return func(from int, kind byte, payload []byte) { received.Add(1) }
	}
	ts := newLocalCluster(t, 2, mk)
	defer finishAll(t, ts)
	sender := ts[1]
	payload := make([]byte, 256)

	// Warm the pools and the connection.
	var sent int64
	for i := 0; i < 2000; i++ {
		sender.Send(0, KindUser, payload)
		sent++
	}
	waitFor(t, func() bool { return received.Load() == sent })

	allocs := testing.AllocsPerRun(5000, func() {
		sender.Send(0, KindUser, payload)
		sent++
	})
	waitFor(t, func() bool { return received.Load() == sent })
	// The enqueue itself is allocation-free; the budget covers the sender,
	// receiver and ack goroutines that run concurrently with the measured
	// loop.
	if allocs > 4 {
		t.Fatalf("transport send path allocates %.2f objects/frame, want <= 4", allocs)
	}
}

// finishAll runs the shutdown barrier on every transport concurrently, the
// way real processes shut down (Finish is symmetric: each side waits for
// the others' FIN).
func finishAll(t *testing.T, ts []*Transport) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(ts))
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			errs[i] = tr.Finish(20 * time.Second)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOversizedSendFails pins the sender-side frame bound: an oversized Send
// must not panic the calling goroutine (it used to) but surface through the
// transport's fatal error path — the Fatal hook fires, Err reports the cause,
// and the shutdown barrier returns it instead of hanging.
func TestOversizedSendFails(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fatalCh := make(chan error, 1)
	var ts [2]*Transport
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Addrs: addrs, Index: i, Listener: lns[i], MaxFrame: 1 << 10, DialTimeout: 10 * time.Second}
			if i == 1 {
				cfg.Fatal = func(err error) { fatalCh <- err }
			}
			ts[i], _ = Dial(cfg, nil)
		}(i)
	}
	wg.Wait()
	defer ts[0].Close()
	defer ts[1].Close()
	ts[1].Send(0, KindUser, make([]byte, 1<<11))
	select {
	case err := <-fatalCh:
		var tooLarge ErrFrameTooLarge
		if !errors.As(err, &tooLarge) {
			t.Fatalf("Fatal hook got %v, want ErrFrameTooLarge", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fatal hook never invoked for oversized Send")
	}
	if err := ts[1].Err(); err == nil {
		t.Fatal("Err() nil after oversized Send")
	}
	if err := ts[1].Finish(2 * time.Second); err == nil {
		t.Fatal("Finish returned nil on a transport killed by an oversized Send")
	}
}

// TestStripedLanesKeyedFIFO runs a 3-lane cluster and checks the SendKeyed
// contract: every frame arrives exactly once, and frames sharing a key stay
// in send order even though different keys ride different connections.
func TestStripedLanesKeyedFIFO(t *testing.T) {
	const n, keys, perKey = 3, 5, 400
	type rec struct{ from, to, key, i int }
	var mu sync.Mutex
	got := map[rec]bool{}
	lastSeen := map[[3]int]int{} // (from,to,key) -> last index
	violation := atomic.Bool{}

	mk := func(to int) Handler {
		return func(from int, kind byte, payload []byte) {
			key := int(binary.BigEndian.Uint32(payload))
			i := int(binary.BigEndian.Uint32(payload[4:]))
			mu.Lock()
			k := [3]int{from, to, key}
			if prev, ok := lastSeen[k]; ok && i != prev+1 {
				violation.Store(true)
			}
			lastSeen[k] = i
			got[rec{from, to, key, i}] = true
			mu.Unlock()
		}
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*Transport, n)
	var dw sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		dw.Add(1)
		go func(i int) {
			defer dw.Done()
			ts[i], errs[i] = Dial(Config{
				Addrs: addrs, Index: i, Listener: lns[i],
				Conns: 3, DialTimeout: 10 * time.Second,
			}, mk(i))
		}(i)
	}
	dw.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			var b [8]byte
			for k := 0; k < perKey; k++ {
				for key := 0; key < keys; key++ {
					binary.BigEndian.PutUint32(b[:], uint32(key))
					binary.BigEndian.PutUint32(b[4:], uint32(k))
					for j := 0; j < n; j++ {
						if j != i {
							tr.SendKeyed(j, key, KindUser, b[:])
						}
					}
				}
			}
		}(i, tr)
	}
	wg.Wait()
	finishAll(t, ts)
	if violation.Load() {
		t.Fatal("per-key FIFO order violated across striped lanes")
	}
	want := n * (n - 1) * keys * perKey
	if len(got) != want {
		t.Fatalf("delivered %d distinct frames, want %d", len(got), want)
	}
}

// TestBatchReplayExactlyOnce drives dispatchBatch directly with crafted
// coalesced frames, pinning the replay semantics deterministically: a full
// replay delivers nothing new but re-acks, a partially overlapping batch
// (replay re-coalesced differently after a reconnect) delivers only the
// unseen suffix, and a sequence gap inside a batch tears the connection down.
func TestBatchReplayExactlyOnce(t *testing.T) {
	var got []uint64
	tr := &Transport{cfg: Config{Addrs: []string{"a", "b"}, Index: 0, MaxFrame: DefaultMaxFrame, AckEvery: 1 << 30, Conns: 1}, closed: make(chan struct{})}
	tr.handler = func(from int, kind byte, payload []byte) {
		got = append(got, binary.BigEndian.Uint64(payload))
	}
	p := &peer{t: tr, index: 1, notify: make(chan struct{}, 1), up: make(chan struct{})}
	tr.peers = []*peerSet{nil, {lanes: []*peer{p}}}

	mkBatch := func(first, last uint64) []byte {
		var buf []byte
		var b [8]byte
		for s := first; s <= last; s++ {
			binary.BigEndian.PutUint64(b[:], s)
			buf = appendSubFrame(buf, KindUser, b[:])
		}
		return buf
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	io := &connIO{c: c1}
	p.conn = io

	if !p.dispatchBatch(io, 1, mkBatch(1, 3)) {
		t.Fatal("initial batch rejected")
	}
	if !p.dispatchBatch(io, 1, mkBatch(1, 3)) {
		t.Fatal("full replay rejected")
	}
	if len(p.q) != 1 || p.q[0].kind != kindAck {
		t.Fatalf("full replay enqueued %d frames, want exactly one re-ack", len(p.q))
	}
	if !p.dispatchBatch(io, 2, mkBatch(2, 5)) {
		t.Fatal("overlapping replay rejected")
	}
	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames (%v), want %v", len(got), got, want)
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("frame %d carried %d, want %v", i, got[i], want)
		}
	}
	// A gap (seq 8 after 5) is a protocol violation: the dispatch fails and
	// the connection is torn down.
	if p.dispatchBatch(io, 8, mkBatch(8, 9)) {
		t.Fatal("sequence-gap batch accepted")
	}
	if p.conn == io {
		t.Fatal("connection survived a sequence gap")
	}
	if len(got) != len(want) {
		t.Fatalf("gap batch leaked deliveries: %v", got)
	}
}

// TestBatchedSendRecvAllocsPerFrame pins the allocation budget of the
// coalescing wire path end-to-end: frames sent in bursts (so the send loop
// actually builds multi-frame kindBatch groups) must stay within a small
// constant per frame across enqueue, vectored encode, read, and batch
// dispatch on the receiver.
func TestBatchedSendRecvAllocsPerFrame(t *testing.T) {
	var received atomic.Int64
	mk := func(i int) Handler {
		if i != 0 {
			return nil
		}
		return func(from int, kind byte, payload []byte) { received.Add(1) }
	}
	ts := newLocalCluster(t, 2, mk)
	defer finishAll(t, ts)
	sender := ts[1]
	payload := make([]byte, 256)
	const burst = 64

	var sent int64
	send := func() {
		for i := 0; i < burst; i++ {
			sender.Send(0, KindUser, payload)
		}
		sent += burst
		// Wait for delivery inside the measured run: the run then covers the
		// full enqueue-coalesce-write-dispatch roundtrip, and buffer recycling
		// (driven by the returning acks) keeps up run to run instead of
		// depending on scheduler luck.
		for received.Load() < sent {
			time.Sleep(20 * time.Microsecond)
		}
	}
	// Warm the pools, the queue backing arrays and the header arena.
	for i := 0; i < 50; i++ {
		send()
	}

	allocs := testing.AllocsPerRun(200, send)
	// The budget is per burst of 64 frames: the enqueue path is
	// allocation-free at steady state, so what remains is the sender,
	// receiver and ack goroutines running concurrently with the measured
	// loop. Allowing 1/2 alloc per frame keeps the pin meaningful (the old
	// copying path cost several per frame) without flaking on scheduler
	// noise.
	if allocs > burst/2 {
		t.Fatalf("batched wire path allocates %.2f objects per %d-frame burst, want <= %d", allocs, burst, burst/2)
	}
}

// TestRejectsWrongCluster ensures a handshake from a different cluster (or
// a different protocol version) never installs a session.
func TestRejectsWrongCluster(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:1"} // peer 1 never dials
	tr := &Transport{cfg: Config{Addrs: addrs, Index: 0, ClusterID: 7, MaxFrame: DefaultMaxFrame, Conns: 1}, closed: make(chan struct{})}
	tr.peers = []*peerSet{nil, {lanes: []*peer{{t: tr, index: 1, notify: make(chan struct{}, 1), up: make(chan struct{})}}}}
	tr.ln = ln
	tr.wg.Add(1)
	go tr.acceptLoop()
	defer tr.Close()

	for name, forge := range map[string]func() []byte{
		"wrong cluster": func() []byte {
			return AppendFrame(nil, kindHello, 0, appendHello(nil, hello{ClusterID: 99, From: 1, Procs: 2}, Version))
		},
		"wrong version": func() []byte {
			return AppendFrame(nil, kindHello, 0, appendHello(nil, hello{ClusterID: 7, From: 1, Procs: 2}, Version+3))
		},
		"wrong procs": func() []byte {
			return AppendFrame(nil, kindHello, 0, appendHello(nil, hello{ClusterID: 7, From: 1, Procs: 5}, Version))
		},
	} {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(forge()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The transport must reject: the connection is closed with no
		// hello-ack.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if n, err := c.Read(buf); err == nil {
			t.Fatalf("%s: got %d response bytes, want closed connection", name, n)
		}
		c.Close()
		select {
		case <-tr.peers[1].lanes[0].up:
			t.Fatalf("%s: session installed from forged handshake", name)
		default:
		}
	}
	_ = fmt.Sprintf // keep fmt for future debugging
}

// TestUnreachablePeerFailsWithoutPanic pins the redial give-up path: when a
// peer stays unreachable past DialTimeout, the transport must not panic (it
// used to, killing the whole process from a goroutine) but record the error,
// invoke the Fatal hook once, and surface the cause from the shutdown
// barrier.
func TestUnreachablePeerFailsWithoutPanic(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var fatals atomic.Int64
	fatalCh := make(chan error, 1)
	var ts [2]*Transport
	var wg sync.WaitGroup
	var errs [2]error
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Addrs: addrs, Index: i, Listener: lns[i], DialTimeout: 10 * time.Second}
			if i == 1 {
				cfg.DialTimeout = 400 * time.Millisecond
				cfg.Fatal = func(err error) {
					fatals.Add(1)
					fatalCh <- err
				}
			}
			ts[i], errs[i] = Dial(cfg, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	// Peer 0 vanishes for good: close it outright and release its address so
	// peer 1's redial dials a dead port until its timeout expires.
	ts[0].Close()
	select {
	case err := <-fatalCh:
		if err == nil {
			t.Fatal("Fatal hook invoked with nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fatal hook never invoked for unreachable peer")
	}
	if err := ts[1].Err(); err == nil {
		t.Fatal("Err() nil after fatal redial failure")
	}
	if err := ts[1].Finish(2 * time.Second); err == nil {
		t.Fatal("Finish returned nil on a fatally failed transport")
	}
	if n := fatals.Load(); n != 1 {
		t.Fatalf("Fatal hook invoked %d times, want 1", n)
	}
}
