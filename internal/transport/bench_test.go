package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkFrameAppend pins the pure framing cost (zero allocations; see
// TestAppendFrameZeroAlloc for the hard pin).
func BenchmarkFrameAppend(b *testing.B) {
	payload := make([]byte, 256)
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], KindUser, uint64(i), payload)
	}
}

// BenchmarkTransportSendRecv measures end-to-end frame throughput between
// two transports over loopback TCP: enqueue, frame, write, read, dispatch.
func BenchmarkTransportSendRecv(b *testing.B) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var received atomic.Int64
	var ts [2]*Transport
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var h Handler
			if i == 0 {
				h = func(from int, kind byte, payload []byte) { received.Add(1) }
			}
			tr, err := Dial(Config{Addrs: addrs, Index: i, Listener: lns[i], DialTimeout: 10 * time.Second}, h)
			if err != nil {
				b.Error(err)
				return
			}
			ts[i] = tr
		}(i)
	}
	wg.Wait()
	if ts[0] == nil || ts[1] == nil {
		b.Fatal("cluster did not come up")
	}
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(payload, uint64(i))
		ts[1].Send(0, KindUser, payload)
	}
	for received.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	var fw sync.WaitGroup
	for _, tr := range ts {
		fw.Add(1)
		go func(tr *Transport) { defer fw.Done(); tr.Finish(20 * time.Second) }(tr)
	}
	fw.Wait()
}
