package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkFrameAppend pins the pure framing cost (zero allocations; see
// TestAppendFrameZeroAlloc for the hard pin).
func BenchmarkFrameAppend(b *testing.B) {
	payload := make([]byte, 256)
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], KindUser, uint64(i), payload)
	}
}

// BenchmarkTransportSendRecv measures end-to-end frame throughput between
// two transports over loopback TCP: enqueue, frame, write, read, dispatch.
func BenchmarkTransportSendRecv(b *testing.B) {
	benchSendRecv(b, 1)
}

// BenchmarkTransportSendRecvStriped is the same aggregate workload striped
// over 4 connections per peer pair, with one producer goroutine per lane —
// the shape the mesh produces, where each worker keys its traffic by its own
// index. Each lane has its own socket, sender, and receive goroutine, so the
// stripes scale across cores instead of serializing on one session.
func BenchmarkTransportSendRecvStriped(b *testing.B) {
	benchSendRecv(b, 4)
}

func benchSendRecv(b *testing.B, conns int) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var received atomic.Int64
	var ts [2]*Transport
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var h Handler
			if i == 0 {
				h = func(from int, kind byte, payload []byte) { received.Add(1) }
			}
			tr, err := Dial(Config{Addrs: addrs, Index: i, Listener: lns[i], Conns: conns, DialTimeout: 10 * time.Second}, h)
			if err != nil {
				b.Error(err)
				return
			}
			ts[i] = tr
		}(i)
	}
	wg.Wait()
	if ts[0] == nil || ts[1] == nil {
		b.Fatal("cluster did not come up")
	}
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	// Each producer paces itself with a bounded in-flight window, the way the
	// dataflow above does (it flushes per scheduling round and its peers ack
	// continuously): an unwindowed loop would measure the allocator growing
	// multi-million-entry queue arrays, not the wire. The window is large
	// enough to keep the send loop's coalescing saturated.
	const window = 4096
	var sent atomic.Int64
	var pw sync.WaitGroup
	for lane := 0; lane < conns; lane++ {
		n := b.N / conns
		if lane == 0 {
			n += b.N % conns
		}
		pw.Add(1)
		go func(lane, n int) {
			defer pw.Done()
			payload := make([]byte, 256)
			for i := 0; i < n; i++ {
				binary.BigEndian.PutUint64(payload, uint64(i))
				ts[1].SendKeyed(0, lane, KindUser, payload)
				if i%256 == 255 {
					mine := sent.Add(256)
					for mine-received.Load() > window*int64(conns) {
						time.Sleep(20 * time.Microsecond)
					}
				}
			}
		}(lane, n)
	}
	pw.Wait()
	for received.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	var fw sync.WaitGroup
	for _, tr := range ts {
		fw.Add(1)
		go func(tr *Transport) { defer fw.Done(); tr.Finish(20 * time.Second) }(tr)
	}
	fw.Wait()
}
