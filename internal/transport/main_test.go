package transport

import (
	"testing"

	"megaphone/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: every recvLoop
// generation, sendLoop, acceptor, and dialer the tests start must be
// joined by Close/Finish before the test returns.
func TestMain(m *testing.M) { leakcheck.Main(m) }
