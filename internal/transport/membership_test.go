package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLateJoinRetireLeave walks a transport-level membership lifecycle on a
// fixed 3-slot roster: slots 0 and 1 come up with slot 2 marked absent (no
// dial, no wait), slot 2 joins late by dialing both (including the
// lower-index direction the static rule forbids), frames flow to and from
// the joiner, slot 1 leaves one-sidedly via FinishLeave while the survivors
// Retire it, and the remaining pair still passes the full shutdown barrier.
func TestLateJoinRetireLeave(t *testing.T) {
	const n = 3
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	absent := []bool{false, false, true}

	var mu sync.Mutex
	got := map[[2]int]int{} // (from,to) -> frames received
	mk := func(to int) Handler {
		return func(from int, kind byte, payload []byte) {
			mu.Lock()
			got[[2]int{from, to}]++
			mu.Unlock()
		}
	}
	counted := func(from, to int) int {
		mu.Lock()
		defer mu.Unlock()
		return got[[2]int{from, to}]
	}

	// Slots 0 and 1 start without slot 2.
	ts := make([]*Transport, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = Dial(Config{
				Addrs: addrs, Index: i, Listener: lns[i],
				DialTimeout: 10 * time.Second, Absent: absent,
			}, mk(i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("process %d: %v", i, errs[i])
		}
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], 1)
	ts[0].Send(1, KindUser, b[:])
	ts[1].Send(0, KindUser, b[:])

	// Slot 2 joins: its own slot is marked absent, so it dials everyone.
	var err error
	ts[2], err = Dial(Config{
		Addrs: addrs, Index: 2, Listener: lns[2],
		DialTimeout: 10 * time.Second, Absent: absent, MembershipEpoch: 1,
	}, mk(2))
	if err != nil {
		t.Fatalf("joiner: %v", err)
	}
	for _, pair := range [][2]int{{2, 0}, {2, 1}, {0, 2}, {1, 2}} {
		ts[pair[0]].Send(pair[1], KindUser, b[:])
	}
	deadline := time.Now().Add(5 * time.Second)
	for counted(2, 0) == 0 || counted(2, 1) == 0 || counted(0, 2) == 0 || counted(1, 2) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("frames to/from joiner not delivered: %v", got)
		}
		time.Sleep(time.Millisecond)
	}

	// Slot 1 drain-leaves: survivors retire it, it FINs out one-sidedly.
	var leaveErr error
	var leaveWG sync.WaitGroup
	leaveWG.Add(1)
	go func() {
		defer leaveWG.Done()
		leaveErr = ts[1].FinishLeave(10 * time.Second)
	}()
	leaveWG.Wait()
	if leaveErr != nil {
		t.Fatalf("FinishLeave: %v", leaveErr)
	}
	ts[0].Retire(1)
	ts[2].Retire(1)
	if !ts[0].Retired(1) || !ts[2].Retired(1) {
		t.Fatal("peer 1 not marked retired")
	}
	ts[0].Send(1, KindUser, b[:]) // must be dropped, not panic or wedge

	// The surviving pair still shuts down cleanly.
	finishAll(t, []*Transport{ts[0], ts[2]})
}

// TestRetireStopsRedial pins crash-leave at the transport layer: when a
// peer dies abruptly, the dialing side's reconnect loop must stand down on
// Retire instead of panicking at DialTimeout, and the shutdown barrier must
// release without the dead peer's FIN.
func TestRetireStopsRedial(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*Transport, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = Dial(Config{
				Addrs: addrs, Index: i, Listener: lns[i],
				// Long enough that a leaked redial would still be running
				// when the test asserts, short enough not to stall CI if the
				// barrier regresses.
				DialTimeout: 8 * time.Second,
			}, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}

	ts[0].Close() // the "crash": listener and connections die
	ts[1].Retire(0)
	if err := ts[1].Finish(5 * time.Second); err != nil {
		t.Fatalf("survivor barrier did not release after Retire: %v", err)
	}
}

// TestMembershipEpochCarried: the handshake carries the configured
// membership epoch and SetMembershipEpoch updates what future handshakes
// send (observed via the accessor; the wire encoding is pinned by the
// hello round-trip tests).
func TestMembershipEpochCarried(t *testing.T) {
	var e atomic.Uint64
	e.Store(3)
	tr := &Transport{}
	tr.memEpoch.Store(3)
	if tr.MembershipEpoch() != 3 {
		t.Fatal("initial epoch lost")
	}
	tr.SetMembershipEpoch(e.Load() + 1)
	if tr.MembershipEpoch() != 4 {
		t.Fatal("SetMembershipEpoch not visible")
	}
}
