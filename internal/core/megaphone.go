package core

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"megaphone/internal/dataflow"
)

// Config configures a migrateable operator.
type Config struct {
	// Name prefixes the F and S operator names in the dataflow.
	Name string
	// LogBins is the log2 of the number of bins keys are grouped into
	// (Section 4.2). Fixed at construction; defaults to 8 (256 bins).
	LogBins int
	// Transfer selects the codec that serializes migrating bins
	// (TransferGob by default; see Codec).
	Transfer Codec
	// ChunkBytes bounds the payload of one StateMsg: a bin whose encoding
	// exceeds it is shipped as multiple chunks instead of one oversized
	// message. 0 means DefaultChunkBytes; negative disables chunking.
	ChunkBytes int
	// Meter, when set, receives per-bin record counts and service time from
	// the S operator (see LoadMeter). It must be sized for this execution:
	// NewLoadMeter(peers, LogBins). nil disables metering.
	Meter *LoadMeter
	// Checkpoint, when set, makes CheckpointMove commands on the control
	// stream drain every locally-owned bin to Checkpoint.Dir at the
	// command's epoch — a migration to disk, with the same frontier
	// alignment. Requires a serializing Transfer codec. nil ignores
	// checkpoint commands.
	Checkpoint *CheckpointConfig
	// Restore, when set, installs a loaded checkpoint before the execution
	// starts: the recorded assignment seeds every F's routing history and
	// the bins owned by this process's workers are decoded and installed
	// through the migration install path. Drivers must resume input at
	// Restore.Epoch. See LoadRestore.
	Restore *Restore
}

func (c *Config) defaults() {
	if c.Name == "" {
		c.Name = "megaphone"
	}
	if c.LogBins == 0 {
		c.LogBins = 8
	}
	if c.Transfer == nil {
		c.Transfer = TransferGob
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = DefaultChunkBytes
	}
}

// Notificator lets operator logic schedule a record for redelivery at a
// future timestamp (the paper's extended notificator: it buffers (time, key,
// val) triples in a per-bin priority queue that migrates with the bin).
type Notificator[R, S, O any] struct {
	s   *sOp[R, S, O]
	bin int
	now Time
}

// NotifyAt schedules rec for redelivery at time t, which must be strictly
// greater than the timestamp currently being processed. The Notificator is
// only valid for the duration of the Fold call it was passed to.
func (n *Notificator[R, S, O]) NotifyAt(t Time, rec R) {
	if t <= n.now {
		panic(fmt.Sprintf("megaphone: NotifyAt(%v) not after current time %v", t, n.now))
	}
	b := n.s.bins.data[n.bin]
	b.PushPending(t, rec)
	heap.Push(&n.s.notify, binTime{time: t, bin: n.bin})
}

// Ops bundles the user logic of a migrateable operator.
type Ops[R, S, O any] struct {
	// Hash is the exchange function: it maps a record to the hash whose top
	// bits select the record's bin. Use Mix64 for small integer keys.
	Hash func(R) uint64
	// NewState allocates empty per-bin state.
	NewState func() *S
	// Fold applies one record to its bin's state, optionally emitting
	// outputs and scheduling future records.
	Fold func(t Time, rec R, state *S, n *Notificator[R, S, O], emit func(O))
}

// Handle exposes a built operator's migration-facing state for tests and
// instrumentation.
type Handle[R, S, O any] struct {
	// OnApply, when set before Start, is invoked for every record
	// application with the worker index it ran on (used by the Property 2
	// "Migration" tests).
	OnApply func(t Time, bin, worker int)
	// OnInstall, when set before Start, is invoked whenever a migrated bin
	// finishes installing on a worker (after chunk reassembly) — exactly
	// once per bin per migration, which the transport-failure tests pin.
	OnInstall func(t Time, bin, worker int)
	bins      []*binsHolder[R, S]
	newState  func() *S
	// Migrated counts bins shipped away, per worker (a chunked bin counts
	// once regardless of how many StateMsgs carry it).
	migrated []int
}

// Bins returns the number of occupied bins on worker w (instrumentation).
func (h *Handle[R, S, O]) Bins(w int) int { return h.bins[w].occupied() }

// Preload initializes a bin's state on a worker before the execution
// starts, so runs measure migration rather than first-touch allocation (the
// paper pre-loads one instance of each key). Must not be called after
// Start.
func (h *Handle[R, S, O]) Preload(worker, bin int, init func(state *S)) {
	b := h.bins[worker].getOrCreate(bin, h.newState)
	init(b.State)
}

// Migrated returns the number of bins worker w has shipped away.
func (h *Handle[R, S, O]) Migrated(w int) int { return h.migrated[w] }

// routed is a record annotated by F with its bin and destination worker, so
// S applies it without re-hashing.
type routed[R any] struct {
	To  int32
	Bin int32
	Rec R
}

// binTime pairs a pending time with the bin that owns it (lazy index into
// the per-bin pending heaps).
type binTime struct {
	time Time
	bin  int
}

type binTimeHeap []binTime

func (h binTimeHeap) Len() int           { return len(h) }
func (h binTimeHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h binTimeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *binTimeHeap) Push(x any)        { *h = append(*h, x.(binTime)) }
func (h *binTimeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Operator builds a migrateable stateful operator over records R with
// per-bin state S and outputs O, controlled by the given stream of Move
// commands. It returns the output stream.
//
// The control stream must be driven identically on every worker's input (it
// is broadcast); see package plan for strategy drivers.
func Operator[R, S, O any](
	w *dataflow.Worker,
	cfg Config,
	control dataflow.Stream[Move],
	input dataflow.Stream[R],
	ops Ops[R, S, O],
	handle *Handle[R, S, O],
) dataflow.Stream[O] {
	cfg.defaults()
	if cfg.Checkpoint != nil && isDirect(cfg.Transfer) {
		panic(fmt.Sprintf("megaphone: operator %q: checkpointing needs a serializing transfer codec, not direct pointer handoff", cfg.Name))
	}
	if handle == nil {
		handle = &Handle[R, S, O]{}
	}
	if handle.bins == nil {
		handle.bins = make([]*binsHolder[R, S], w.Peers())
		handle.migrated = make([]int, w.Peers())
		handle.newState = ops.NewState
	}
	bins := newBinsHolder[R, S](cfg.LogBins)
	handle.bins[w.Index()] = bins

	var probe *dataflow.Probe // set after S is built; nil disables migration

	f := &fOp[R, S, O]{
		cfg:   cfg,
		ops:   ops,
		bins:  bins,
		index: w.Index(),
		peers: w.Peers(),
		probe: func() *dataflow.Probe { return probe },
		hist:  make([][]assign, 1<<uint(cfg.LogBins)),
		h:     handle,
	}
	if cfg.Restore != nil {
		installRestore(w, cfg, ops, f, bins)
	}

	fb := w.NewOp(cfg.Name+"-F", 2)
	dataflow.Connect(fb, control, dataflow.Broadcast[Move]{})
	dataflow.Connect(fb, input, dataflow.Pipeline[R]{})
	fb.OnPurge(f.purge)
	fouts := fb.Build(f.schedule)
	routedData := dataflow.Typed[routed[R]](fouts[0])
	stateOut := dataflow.Typed[StateMsg](fouts[1])

	s := &sOp[R, S, O]{
		cfg:     cfg,
		ops:     ops,
		bins:    bins,
		index:   w.Index(),
		pending: make(map[Time][]routed[R]),
		h:       handle,
	}
	if cfg.Meter != nil {
		if cfg.Meter.Bins() != 1<<uint(cfg.LogBins) {
			panic(fmt.Sprintf("megaphone: meter has %d bins, operator %q has %d",
				cfg.Meter.Bins(), cfg.Name, 1<<uint(cfg.LogBins)))
		}
		if cfg.Meter.Workers() != w.Peers() {
			panic(fmt.Sprintf("megaphone: meter has %d workers, execution has %d",
				cfg.Meter.Workers(), w.Peers()))
		}
		s.meter = cfg.Meter
		s.mCount = make([]uint32, 1<<uint(cfg.LogBins))
		s.mTouched = make([]int32, 0, 1<<uint(cfg.LogBins))
	}
	sb := w.NewOp(cfg.Name+"-S", 1)
	dataflow.Connect(sb, routedData, dataflow.ExchangeTo[routed[R]]{To: func(r routed[R]) int { return int(r.To) }})
	dataflow.Connect(sb, stateOut, dataflow.ExchangeTo[StateMsg]{To: func(m StateMsg) int { return m.To }})
	if cfg.Restore != nil {
		// Restored bins can carry pending post-dated records (all at times
		// >= the checkpoint epoch: earlier ones were replayed before the
		// checkpoint's frontier). Re-index them in S's notification heap and
		// pin the output capability at the epoch until S's first scheduling
		// recomputes its holds — without the initial hold, the frontier
		// could pass a restored notification before S ever runs.
		sb.InitialHold(0, cfg.Restore.Epoch)
		for b, bs := range bins.data {
			if bs != nil {
				if ht, ok := bs.headPending(); ok {
					heap.Push(&s.notify, binTime{time: ht, bin: b})
				}
			}
		}
	}
	sb.OnPurge(s.purge)
	sb.OnBound(s.appliedBound)
	souts := sb.Build(s.schedule)
	out := dataflow.Typed[O](souts[0])

	probe = dataflow.NewProbe(w, out)
	// F consults the probed frontier out-of-band (step 4 of its schedule);
	// the dirty-set scheduler must re-run it when that frontier moves while
	// a migration is staged.
	w.WatchFrontier(fouts[0], probe)
	return out
}

// installRestore applies a loaded checkpoint to one worker's operator
// instance at build time: the recorded assignment becomes the F routing
// history (so records at times >= the checkpoint epoch route exactly as
// they did when the checkpoint was taken) and this worker's bins are
// decoded and installed — the same decode-and-install a migration's
// receiving side performs, just fed from disk instead of the wire.
func installRestore[R, S, O any](w *dataflow.Worker, cfg Config, ops Ops[R, S, O], f *fOp[R, S, O], bins *binsHolder[R, S]) {
	r := cfg.Restore
	if r.LogBins != cfg.LogBins {
		panic(fmt.Sprintf("megaphone: operator %q: checkpoint has 2^%d bins, config says 2^%d", cfg.Name, r.LogBins, cfg.LogBins))
	}
	if len(r.Assignment) != 1<<uint(cfg.LogBins) {
		panic(fmt.Sprintf("megaphone: operator %q: restore assignment covers %d bins, want %d", cfg.Name, len(r.Assignment), 1<<uint(cfg.LogBins)))
	}
	if isDirect(cfg.Transfer) {
		panic(fmt.Sprintf("megaphone: operator %q: restoring needs a serializing transfer codec", cfg.Name))
	}
	for b, owner := range r.Assignment {
		if owner != InitialWorker(b, w.Peers()) {
			f.hist[b] = append(f.hist[b], assign{From: 0, Worker: owner})
		}
		if owner != w.Index() {
			continue
		}
		payload, ok := r.Bins[b]
		if !ok {
			continue // bin was owned but empty at the checkpoint
		}
		bin := &BinState[R, S]{State: ops.NewState()}
		if err := cfg.Transfer.DecodeBin(bin, payload); err != nil {
			panic(fmt.Sprintf("megaphone: operator %q: restoring bin %d: %v", cfg.Name, b, err))
		}
		bins.install(b, bin)
	}
}

// canonMoves sorts moves by (bin, worker) and keeps one move per bin (the
// highest-numbered worker wins a conflict), in place. Any deterministic
// rule works; what matters is that every F instance cluster-wide reduces
// the same move set to the same assignment.
func canonMoves(moves []Move) []Move {
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Bin != moves[j].Bin {
			return moves[i].Bin < moves[j].Bin
		}
		return moves[i].Worker < moves[j].Worker
	})
	out := moves[:0]
	for _, m := range moves {
		if n := len(out); n > 0 && out[n-1].Bin == m.Bin {
			out[n-1] = m
			continue
		}
		out = append(out, m)
	}
	return out
}

// assign is one entry of a bin's assignment history: Worker owns the bin for
// times in [From, next entry's From).
type assign struct {
	From   Time
	Worker int
}

// pendingConfig is a configuration batch whose time is still in advance of
// the control frontier.
type pendingConfig struct {
	time  Time
	moves []Move
}

type configHeap []pendingConfig

func (h configHeap) Len() int           { return len(h) }
func (h configHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h configHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *configHeap) Push(x any)        { *h = append(*h, x.(pendingConfig)) }
func (h *configHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// fOp is one worker's instance of the F (routing and migration) operator.
type fOp[R, S, O any] struct {
	cfg   Config
	ops   Ops[R, S, O]
	bins  *binsHolder[R, S]
	index int
	peers int
	probe func() *dataflow.Probe
	h     *Handle[R, S, O]

	hist [][]assign // per-bin assignment history; nil = initial assignment only

	pendingCfg configHeap // configs not yet final (time in advance of control frontier)
	installed  configHeap // final configs awaiting state movement

	buffered map[Time][]R // data records whose routing is not yet determined
	bufTimes binTimeHeap  // heap of buffered times (bin unused)

	routedBuf []routed[R] // reusable envelope buffer (see route)
}

const (
	fCtl      = 0 // F input ports
	fData     = 1
	fOutData  = 0 // F output ports
	fOutState = 1
)

// ownerAt returns the worker owning bin at time t.
func (f *fOp[R, S, O]) ownerAt(bin int, t Time) int {
	h := f.hist[bin]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].From <= t {
			return h[i].Worker
		}
	}
	return InitialWorker(bin, f.peers)
}

func (f *fOp[R, S, O]) schedule(c *dataflow.OpCtx) {
	// 1. Ingest configuration commands; their capability is pinned by a
	// hold on the state output so migrations can be sent at their time.
	dataflow.ForEachBatch(c, fCtl, func(t Time, moves []Move) {
		cp := make([]Move, len(moves))
		copy(cp, moves)
		heap.Push(&f.pendingCfg, pendingConfig{time: t, moves: cp})
	})
	ctl := c.Frontier(fCtl)

	// 2. Install configurations that are final: no command at a time less
	// than the control frontier can still arrive. Same-time batches are
	// merged and then canonicalized — sorted by (bin, worker) and reduced
	// to one move per bin — because the merge order is arrival order,
	// which differs between processes of a cluster (each process's control
	// broadcasts travel on different connections). Canonicalization makes
	// the installed history, and hence bin ownership, a pure function of
	// the move *set*, which the control frontier guarantees is complete
	// and identical on every worker of every process. In a single process
	// duplicate same-time moves for a bin always carry the same target, so
	// this is behaviour-preserving there.
	for len(f.pendingCfg) > 0 && f.pendingCfg[0].time < ctl {
		pc := heap.Pop(&f.pendingCfg).(pendingConfig)
		for len(f.pendingCfg) > 0 && f.pendingCfg[0].time == pc.time {
			more := heap.Pop(&f.pendingCfg).(pendingConfig)
			pc.moves = append(pc.moves, more.moves...)
		}
		pc.moves = canonMoves(pc.moves)
		for _, m := range pc.moves {
			if m.IsCheckpoint() {
				continue // checkpoints change no ownership
			}
			f.hist[m.Bin] = append(f.hist[m.Bin], assign{From: pc.time, Worker: m.Worker})
		}
		heap.Push(&f.installed, pc)
	}

	// 3. Route data. Records whose time is in advance of the control
	// frontier are buffered: their configuration could still change.
	if f.buffered == nil {
		f.buffered = make(map[Time][]R)
	}
	dataflow.ForEachBatch(c, fData, func(t Time, data []R) {
		if t < ctl {
			f.route(c, t, data)
			return
		}
		if _, ok := f.buffered[t]; !ok {
			heap.Push(&f.bufTimes, binTime{time: t})
		}
		f.buffered[t] = append(f.buffered[t], data...)
	})
	for len(f.bufTimes) > 0 && f.bufTimes[0].time < ctl {
		t := heap.Pop(&f.bufTimes).(binTime).time
		f.route(c, t, f.buffered[t])
		delete(f.buffered, t)
	}

	// 4. Execute installed migrations once the S output frontier has
	// reached their time: all earlier updates have then been applied.
	for len(f.installed) > 0 {
		p := f.probe()
		if p == nil || p.Frontier() < f.installed[0].time {
			break
		}
		mg := heap.Pop(&f.installed).(pendingConfig)
		f.execute(c, mg)
	}

	// 5. Maintain capability holds: the data output covers buffered
	// records; the state output covers pending and installed migrations.
	if len(f.bufTimes) > 0 {
		c.Hold(fOutData, f.bufTimes[0].time)
	} else {
		c.DropHold(fOutData)
	}
	stateHold := None
	if len(f.pendingCfg) > 0 {
		stateHold = f.pendingCfg[0].time
	}
	if len(f.installed) > 0 && f.installed[0].time < stateHold {
		stateHold = f.installed[0].time
	}
	if stateHold != None {
		c.Hold(fOutState, stateHold)
	} else {
		c.DropHold(fOutState)
	}
}

// route sends records at a routable time to their configured workers. The
// envelope buffer is reused across calls: the data output's only edge
// carries an ExchangeTo pact, whose partitions never alias their input.
// Bins that were never migrated — every bin at steady state before the
// first migration — resolve through the initial-assignment table without
// touching the history.
func (f *fOp[R, S, O]) route(c *dataflow.OpCtx, t Time, data []R) {
	if cap(f.routedBuf) < len(data) {
		f.routedBuf = make([]routed[R], len(data))
	}
	all := f.routedBuf[:len(data)]
	logBins := f.cfg.LogBins
	peers := f.peers
	for i, r := range data {
		bin := BinOf(f.ops.Hash(r), logBins)
		to := bin % peers // InitialWorker, inlined
		if len(f.hist[bin]) > 0 {
			to = f.ownerAt(bin, t)
		}
		all[i] = routed[R]{To: int32(to), Bin: int32(bin), Rec: r}
	}
	dataflow.SendBatch(c, fOutData, t, all)
}

// execute performs the state movement of one installed configuration: for
// every moved bin this worker currently owns, uninstall it from the local S
// instance and ship it at the migration's timestamp. A checkpoint command
// in the batch (canonically sorted first) runs before any moves of the same
// time, so the snapshot records the pre-move assignment together with the
// bins still at their pre-move owners — a consistent cut either way.
func (f *fOp[R, S, O]) execute(c *dataflow.OpCtx, mg pendingConfig) {
	moves := mg.moves
	if len(moves) > 0 && moves[0].IsCheckpoint() {
		if f.cfg.Checkpoint != nil {
			f.checkpoint(mg.time)
		}
		moves = moves[1:]
	}
	var msgs []StateMsg
	// Restore commands first, batched: one checkpoint read serves every bin
	// this worker must rebuild (a crash reassigns many bins at one epoch).
	var restoreBins []int
	var restoreEpoch Time
	for _, m := range moves {
		if m.IsRestore() && m.Worker == f.index && f.ownerBefore(m.Bin, mg.time) != f.index {
			if restoreEpoch != 0 && restoreEpoch != m.RestoreEpoch {
				panic(fmt.Sprintf("megaphone: operator %q: restore commands at epoch %d name different checkpoints (%d and %d)",
					f.cfg.Name, mg.time, restoreEpoch, m.RestoreEpoch))
			}
			restoreEpoch = m.RestoreEpoch
			restoreBins = append(restoreBins, m.Bin)
		}
	}
	if len(restoreBins) > 0 {
		msgs = f.restoreFromCheckpoint(msgs, restoreBins, restoreEpoch, mg.time)
	}
	for _, m := range moves {
		if m.IsRestore() {
			// Ownership already changed in step 2; the dead previous owner
			// ships nothing, and the new owner's state was synthesized above.
			f.compact(m.Bin, mg.time)
			continue
		}
		// Owner just before the migration takes effect.
		old := f.ownerBefore(m.Bin, mg.time)
		if old == m.Worker {
			f.compact(m.Bin, mg.time)
			continue
		}
		if old == f.index {
			b := f.bins.take(m.Bin)
			if b != nil {
				if isDirect(f.cfg.Transfer) {
					msgs = append(msgs, StateMsg{Bin: m.Bin, To: m.Worker, Last: true, Dir: b})
				} else {
					payload, err := f.cfg.Transfer.EncodeBin(b, nil)
					if err != nil {
						panic(err)
					}
					msgs = appendChunks(msgs, m.Bin, m.Worker, payload, f.cfg.ChunkBytes)
				}
				f.h.migrated[f.index]++
			}
		}
		f.compact(m.Bin, mg.time)
	}
	if len(msgs) > 0 {
		dataflow.SendBatch(c, fOutState, mg.time, msgs)
	}
}

// restoreFromCheckpoint rebuilds the given bins — reassigned to this worker
// by restore commands taking effect at time `at` — from the checkpoint at
// epoch ckpt, and ships them to this worker's own S instance as ordinary
// StateMsg chunks at `at`. Riding the normal migration install path (rather
// than poking the shared bins holder directly) re-indexes S's notification
// heap and fires OnInstall exactly as a wire migration would. Pending
// records that came due while the owner was dead are clamped up to `at`
// (see clampPending); the clamp forces a re-encode, otherwise the
// checkpoint payload is shipped verbatim. Failure to read the checkpoint is
// fatal: the dead member's state exists nowhere else.
func (f *fOp[R, S, O]) restoreFromCheckpoint(msgs []StateMsg, bins []int, ckpt, at Time) []StateMsg {
	if f.cfg.Checkpoint == nil {
		panic(fmt.Sprintf("megaphone: operator %q: restore command at epoch %d but no Config.Checkpoint to read from", f.cfg.Name, at))
	}
	r, err := LoadCheckpointBins(f.cfg.Checkpoint.Dir, f.cfg.Name, ckpt, f.peers, bins, f.cfg.Transfer.Name())
	if err != nil {
		panic(fmt.Sprintf("megaphone: operator %q: restoring %d bins from checkpoint at epoch %d: %v", f.cfg.Name, len(bins), ckpt, err))
	}
	for _, b := range bins {
		payload, ok := r.Bins[b]
		if !ok {
			continue // owned but empty at the checkpoint
		}
		bin := &BinState[R, S]{State: f.ops.NewState()}
		if err := f.cfg.Transfer.DecodeBin(bin, payload); err != nil {
			panic(fmt.Sprintf("megaphone: operator %q: decoding restored bin %d: %v", f.cfg.Name, b, err))
		}
		if bin.clampPending(at) {
			payload, err = f.cfg.Transfer.EncodeBin(bin, nil)
			if err != nil {
				panic(err)
			}
		}
		msgs = appendChunks(msgs, b, f.index, payload, f.cfg.ChunkBytes)
	}
	return msgs
}

// checkpoint drains every bin this worker owns just before time t into the
// configured checkpoint directory: each bin is serialized with the
// operator's migration codec and split with the operator's chunking — the
// exact byte stream a migration would put on the wire, written to disk
// instead. It runs at the same frontier alignment as a migration (all
// updates before t applied, none at or after it), so the union of all
// workers' files is a consistent snapshot of the operator at t.
func (f *fOp[R, S, O]) checkpoint(t Time) {
	ck := f.cfg.Checkpoint
	start := time.Now()
	nbins := 1 << uint(f.cfg.LogBins)
	asn := make([]int, nbins)
	for b := range asn {
		asn[b] = f.ownerBefore(b, t)
	}
	// Filesystem failures are non-fatal: the uncommitted manifest already
	// invalidates this epoch for recovery, and killing the run over a full
	// checkpoint volume would defeat the mechanism's purpose. Codec
	// failures, by contrast, are programming errors and panic exactly as
	// they do on the migration path.
	w, err := NewCheckpointWriter(ck.Dir, f.cfg.Name, t, f.index)
	if err != nil {
		ck.reportError(t, f.index, err)
		return
	}
	var payload []byte
	var msgs []StateMsg
	for b := 0; b < nbins; b++ {
		if asn[b] != f.index {
			continue
		}
		bin := f.bins.data[b]
		if bin == nil {
			continue // owned but empty: recovery recreates it lazily
		}
		payload, err = f.cfg.Transfer.EncodeBin(bin, payload[:0])
		if err != nil {
			w.Abort()
			panic(err)
		}
		msgs = appendChunks(msgs[:0], b, f.index, payload, f.cfg.ChunkBytes)
		if err := w.WriteBin(msgs); err != nil {
			w.Abort()
			ck.reportError(t, f.index, err)
			return
		}
	}
	if err := w.Finish(f.peers, f.cfg.LogBins, f.cfg.Transfer.Name(), asn, ck.liveWorkers(t)); err != nil {
		ck.reportError(t, f.index, err)
		return
	}
	if ck.OnCheckpoint != nil {
		ck.OnCheckpoint(t, f.index, w.Bins(), w.Bytes(), time.Since(start))
	}
}

// purge implements the crash-barrier deferred-work purge for F (see
// dataflow.OpBuilder.OnPurge): every buffered data record waits at a time at
// or above the control frontier, which at a quiesced crash barrier is at or
// above the cut, so all of them are discarded — the barrier's replay
// re-injects their epochs from the deterministic source. Pending and
// installed configurations are kept: control commands are injected
// identically by every live process, so the survivors' own copies complete
// each batch.
func (f *fOp[R, S, O]) purge(cut Time) []dataflow.Time {
	for t := range f.buffered {
		if t < cut {
			panic(fmt.Sprintf("megaphone: operator %q: buffered data at %v below purge cut %v (not quiesced?)", f.cfg.Name, t, cut))
		}
		delete(f.buffered, t)
	}
	f.bufTimes = f.bufTimes[:0]
	stateHold := None
	if len(f.pendingCfg) > 0 {
		stateHold = f.pendingCfg[0].time
	}
	if len(f.installed) > 0 && f.installed[0].time < stateHold {
		stateHold = f.installed[0].time
	}
	return []dataflow.Time{None, stateHold}
}

// purge implements the crash-barrier deferred-work purge for S: deferred
// data records (all at times at or above the cut — earlier times completed
// and were applied before the barrier quiesced) are discarded for replay.
// The notification heap survives: pending post-dated records are bin state,
// not unapplied input, and migrate or restore with their bin.
func (s *sOp[R, S, O]) purge(cut Time) []dataflow.Time {
	for t, recs := range s.pending {
		if t < cut {
			panic(fmt.Sprintf("megaphone: operator %q: deferred data at %v below purge cut %v (not quiesced?)", s.cfg.Name, t, cut))
		}
		clear(recs)
		s.free = append(s.free, recs[:0])
		delete(s.pending, t)
	}
	s.dataTimes = s.dataTimes[:0]
	hold := None
	if nt, ok := s.notifyHead(); ok {
		hold = nt
	}
	return []dataflow.Time{hold}
}

// appliedBound implements the crash-barrier applied-bound report for S (see
// dataflow.OpBuilder.OnBound): the bound of its latest schedule. Every data
// record below it was folded into this worker's bins; everything at or above
// it is still deferred (and purged by the barrier) or was never delivered.
// The crash replay's per-bin window starts here for the bins this worker
// keeps: a crashed process's stalled output frontier wedges the global cut
// well below what the survivors had already applied.
func (s *sOp[R, S, O]) appliedBound() Time { return s.applied }

// ownerBefore returns the owner of bin for times strictly less than t,
// ignoring history entries at exactly t (the migration being executed).
func (f *fOp[R, S, O]) ownerBefore(bin int, t Time) int {
	h := f.hist[bin]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].From < t {
			return h[i].Worker
		}
	}
	return InitialWorker(bin, f.peers)
}

// compact drops history entries that no record can consult anymore: once a
// migration at time t executes, no record with time earlier than t can
// arrive, so only the assignment effective at t and later entries matter.
func (f *fOp[R, S, O]) compact(bin int, t Time) {
	h := f.hist[bin]
	keep := 0
	for i, a := range h {
		if a.From <= t {
			keep = i
		}
	}
	if keep > 0 {
		f.hist[bin] = append(h[:0], h[keep:]...)
	}
}

// sOp is one worker's instance of the S (state hosting) operator.
type sOp[R, S, O any] struct {
	cfg   Config
	ops   Ops[R, S, O]
	bins  *binsHolder[R, S]
	index int
	h     *Handle[R, S, O]

	pending   map[Time][]routed[R] // data deferred until its time completes
	dataTimes binTimeHeap          // heap of deferred times (bin unused)
	applied   Time                 // bound of the latest schedule: all data below it is folded in
	notify    binTimeHeap          // (time, bin) index into per-bin pending heaps
	chunks    chunkAssembler       // reassembles chunked migration payloads

	free      [][]routed[R] // drained per-time buffers, recycled by ingestion
	replayBuf []TimedRec[R] // reusable scratch for popPendingAt

	// Load metering (nil meter disables it). mCount accumulates this
	// processTime call's per-bin application counts; mTouched lists the bins
	// with a non-zero count so flushing visits only them. Both are sized
	// once at construction — the metered apply path allocates nothing.
	meter    *LoadMeter
	mCount   []uint32
	mTouched []int32
}

const (
	sData  = 0 // S input ports
	sState = 1
)

func (s *sOp[R, S, O]) schedule(c *dataflow.OpCtx) {
	// 1. Install migrated state immediately, reassembling chunked bins.
	dataflow.ForEachBatch(c, sState, func(t Time, msgs []StateMsg) {
		for _, m := range msgs {
			var b *BinState[R, S]
			if m.Dir != nil {
				b = m.Dir.(*BinState[R, S])
			} else {
				payload, done := s.chunks.add(m)
				if !done {
					continue
				}
				b = &BinState[R, S]{State: s.ops.NewState()}
				if err := s.cfg.Transfer.DecodeBin(b, payload); err != nil {
					panic(err)
				}
			}
			s.bins.install(m.Bin, b)
			if s.h.OnInstall != nil {
				s.h.OnInstall(t, m.Bin, s.index)
			}
			if ht, ok := b.headPending(); ok {
				heap.Push(&s.notify, binTime{time: ht, bin: m.Bin})
			}
		}
	})

	// 2. Defer data until its time is not in advance of both frontiers.
	dataflow.ForEachBatch(c, sData, func(t Time, data []routed[R]) {
		recs, ok := s.pending[t]
		if !ok {
			heap.Push(&s.dataTimes, binTime{time: t})
			if n := len(s.free); n > 0 {
				recs = s.free[n-1]
				s.free = s.free[:n-1]
			}
		}
		s.pending[t] = append(recs, data...)
	})

	bound := c.Frontier(sData)
	if sf := c.Frontier(sState); sf < bound {
		bound = sf
	}
	s.applied = bound

	// 3. Apply complete times in timestamp order: first replayed pending
	// records, then fresh data, per time.
	for {
		t := None
		if len(s.dataTimes) > 0 {
			t = s.dataTimes[0].time
		}
		if nt, ok := s.notifyHead(); ok && nt < t {
			t = nt
		}
		if t >= bound {
			break
		}
		s.processTime(c, t)
	}

	// 4. Hold the output at the earliest deferred work.
	holdAt := None
	if len(s.dataTimes) > 0 {
		holdAt = s.dataTimes[0].time
	}
	if nt, ok := s.notifyHead(); ok && nt < holdAt {
		holdAt = nt
	}
	if holdAt != None {
		c.Hold(0, holdAt)
	} else {
		c.DropHold(0)
	}
}

// notifyHead returns the earliest valid (time, bin) notification, skipping
// entries staled by replay or by bin migration.
func (s *sOp[R, S, O]) notifyHead() (Time, bool) {
	for len(s.notify) > 0 {
		bt := s.notify[0]
		b := s.bins.data[bt.bin]
		if b != nil {
			if ht, ok := b.headPending(); ok && ht == bt.time {
				return bt.time, true
			}
		}
		heap.Pop(&s.notify)
	}
	return 0, false
}

// processTime applies all work at time t: replayed pending records of every
// bin notified at t, then deferred data records at t. One Notificator is
// reused across the whole time (it is only valid during each Fold call),
// and the output buffer is sized once for the expected emission volume.
func (s *sOp[R, S, O]) processTime(c *dataflow.OpCtx, t Time) {
	var out []O
	hint := len(s.pending[t])
	emit := func(o O) {
		if out == nil {
			out = make([]O, 0, hint+1)
		}
		out = append(out, o)
	}
	n := &Notificator[R, S, O]{s: s, now: t}

	var meterStart time.Time
	if s.meter != nil {
		meterStart = time.Now()
	}

	for {
		nt, ok := s.notifyHead()
		if !ok || nt != t {
			break
		}
		bt := heap.Pop(&s.notify).(binTime)
		b := s.bins.data[bt.bin]
		recs := b.popPendingAt(t, s.replayBuf[:0])
		s.replayBuf = recs
		n.bin = bt.bin
		if s.meter != nil {
			s.noteApply(bt.bin, len(recs))
		}
		if s.h.OnApply != nil {
			s.h.OnApply(t, bt.bin, s.index)
		}
		for _, tr := range recs {
			s.ops.Fold(t, tr.Rec, b.State, n, emit)
		}
		if ht, ok := b.headPending(); ok {
			heap.Push(&s.notify, binTime{time: ht, bin: bt.bin})
		}
	}

	if len(s.dataTimes) > 0 && s.dataTimes[0].time == t {
		heap.Pop(&s.dataTimes)
		recs := s.pending[t]
		delete(s.pending, t)
		for _, rr := range recs {
			bin := int(rr.Bin)
			b := s.bins.getOrCreate(bin, s.ops.NewState)
			n.bin = bin
			if s.meter != nil {
				s.noteApply(bin, 1)
			}
			if s.h.OnApply != nil {
				s.h.OnApply(t, bin, s.index)
			}
			s.ops.Fold(t, rr.Rec, b.State, n, emit)
		}
		clear(recs)
		s.free = append(s.free, recs[:0])
	}

	if len(out) > 0 {
		dataflow.SendBatch(c, 0, t, out)
	}
	if s.meter != nil {
		s.flushMeter(time.Since(meterStart).Nanoseconds())
	}
}

// noteApply accumulates n applications against bin for the current
// processTime call (zero allocation: both scratch buffers are pre-sized).
func (s *sOp[R, S, O]) noteApply(bin, n int) {
	if s.mCount[bin] == 0 {
		s.mTouched = append(s.mTouched, int32(bin))
	}
	s.mCount[bin] += uint32(n)
}

// flushMeter publishes the accumulated counts into the meter, apportioning
// the elapsed service time of the whole processTime call to bins by their
// record counts. Timing whole times instead of individual records keeps the
// clock off the per-record path; at one logical time per epoch the two clock
// reads amortize to nothing.
func (s *sOp[R, S, O]) flushMeter(elapsed int64) {
	if elapsed < 0 {
		elapsed = 0
	}
	var total uint64
	for _, b := range s.mTouched {
		total += uint64(s.mCount[b])
	}
	if total == 0 {
		s.mTouched = s.mTouched[:0]
		return
	}
	for _, b := range s.mTouched {
		n := uint64(s.mCount[b])
		s.mCount[b] = 0
		s.meter.add(s.index, int(b), n, uint64(elapsed)*n/total)
	}
	s.mTouched = s.mTouched[:0]
}
