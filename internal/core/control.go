// Package core implements Megaphone: latency-conscious state migration for
// streaming dataflows (Hoffmann et al., VLDB 2019).
//
// Megaphone splits a stateful, data-parallel operator L into a routing
// operator F and a hosting operator S (Section 3.4 of the paper). F routes
// keyed records according to a bin-to-worker routing table that is itself
// updated by a timely dataflow stream of configuration commands, each
// bearing the logical timestamp at which it takes effect. When the control
// frontier passes a command's time, and the output frontier of S shows that
// all earlier work has completed, F extracts the state of the moving bins
// from its co-located S instance and ships it — over an ordinary dataflow
// channel, at the command's timestamp — to the new owner. Frontier-ordered
// application in S guarantees that every update to a key at time t is
// applied at the worker the configuration assigns for t (Property 2), that
// outputs equal those of an unmigrated execution (Property 1), and that the
// computation keeps draining (Property 3).
package core

import (
	"megaphone/internal/dataflow"
)

// Time is the logical timestamp of the runtime.
type Time = dataflow.Time

// None is the empty-frontier sentinel.
const None = dataflow.None

// Move is one configuration command: as of its logical timestamp, Bin and
// the keys hashing to it live on Worker. Commands are data on a broadcast
// dataflow stream; their timestamp is the stream timestamp.
type Move struct {
	Bin    int
	Worker int
	// RestoreEpoch, when non-zero, marks a restore command: the bin's
	// previous owner is declared dead, so instead of receiving the state
	// over the wire, the NEW owner rebuilds it from the checkpoint taken at
	// this epoch (wherever in the checkpoint the bin was written — the
	// checkpoint's own assignment names the file). The command still changes
	// ownership exactly like a plain move; it only replaces the state's
	// source. Zero is unambiguous because checkpoints are only ever
	// commanded at epochs > 0 (a command at 0 could never become final).
	RestoreEpoch Time
}

// CheckpointBin is the Move.Bin sentinel marking a checkpoint command: a
// "migration to disk" of every worker's locally-owned bins, executed with
// exactly the prepare/complete epoch alignment of a real migration (all
// updates before the command's time applied, none at or after it). It never
// collides with a real bin (bins are non-negative).
const CheckpointBin = -1

// CheckpointMove returns the checkpoint command. Like any configuration
// command it is broadcast on the control stream and takes effect at its
// stream timestamp; operators without a Config.Checkpoint ignore it (they
// still observe the same epoch-aligned stall, keeping every worker's
// frontier schedule identical).
func CheckpointMove() Move { return Move{Bin: CheckpointBin} }

// IsCheckpoint reports whether m is a checkpoint command.
func (m Move) IsCheckpoint() bool { return m.Bin == CheckpointBin }

// RestoreMove returns the command that reassigns bin to worker and rebuilds
// its state from the checkpoint at epoch ckpt. Crash-leave issues one per
// bin the dead member owned; the replay of inputs since ckpt is the
// driver's job (see harness), the command only recovers the bin as of ckpt.
func RestoreMove(bin, worker int, ckpt Time) Move {
	return Move{Bin: bin, Worker: worker, RestoreEpoch: ckpt}
}

// IsRestore reports whether m is a restore command.
func (m Move) IsRestore() bool { return m.RestoreEpoch != 0 }

// Mix64 finalizes a 64-bit value into a well-distributed hash (the
// splitmix64 finalizer). Megaphone assigns keys to bins by the *most
// significant* bits of the exchange hash (Section 4.2), so exchange
// functions built from small integer keys should pass through Mix64.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BinOf returns the bin of a hash for a given log2 bin count: the top
// logBins bits.
func BinOf(hash uint64, logBins int) int {
	if logBins == 0 {
		return 0
	}
	return int(hash >> (64 - uint(logBins)))
}

// InitialWorker is the default assignment of bins to workers before any
// configuration command: round-robin.
func InitialWorker(bin, peers int) int { return bin % peers }
