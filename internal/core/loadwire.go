package core

import (
	"fmt"
	"sync"

	"megaphone/internal/binenc"
)

// This file is the telemetry half of the cluster control plane: a process
// periodically publishes the *increments* of its own workers' LoadMeter rows
// as a LoadDelta, and every process folds the deltas it receives into a
// ClusterLoadView — the cluster-wide worker×bin load matrix the elected
// controller plans against. Deltas double as liveness heartbeats: an empty
// delta still announces "process P reached sample S".

// LoadWireVersion is the load-delta wire format version. A delta encoded by
// any other version is rejected on decode, so mixed builds in one cluster
// fail loudly instead of merging misread counters.
const LoadWireVersion = 1

// Decode-time sanity bounds. A corrupt or adversarial frame must not size a
// huge allocation before validation catches it (the transport already bounds
// the frame, but the codec stands alone for fuzzing).
const (
	maxDeltaBins  = 1 << 20
	maxDeltaCells = 1 << 22 // rows × bins; bounds total decode allocation
)

// LoadDelta is one process's load-telemetry heartbeat: the per-bin record and
// service-time increments of its local workers' meter rows since its previous
// delta, stamped with the origin process and its monotone sample index.
type LoadDelta struct {
	Proc        int    // origin process index
	Seq         uint64 // origin's sample counter (1, 2, ...); monotone per origin
	FirstWorker int    // global index of Rows[0]'s worker
	Bins        int    // bin count (must match the receiving meter)
	// Rows holds one row per local worker of the origin process; Recs and
	// Nanos are indexed by bin and carry increments, not cumulative values.
	Rows []LoadDeltaRow
}

// LoadDeltaRow is one worker's per-bin increments.
type LoadDeltaRow struct {
	Recs  []uint64
	Nanos []uint64
}

// AppendLoadDelta appends the wire encoding of d to buf and returns the
// extended slice. Cells are encoded sparsely (bin index + the two counters,
// non-zero cells only): a heartbeat with no traffic costs a few bytes, and a
// hot-spot delta costs proportional to the hot set, not the bin count.
func AppendLoadDelta(buf []byte, d *LoadDelta) []byte {
	buf = append(buf, LoadWireVersion)
	buf = binenc.AppendUvarint(buf, uint64(d.Proc))
	buf = binenc.AppendUvarint(buf, d.Seq)
	buf = binenc.AppendUvarint(buf, uint64(d.FirstWorker))
	buf = binenc.AppendUvarint(buf, uint64(d.Bins))
	buf = binenc.AppendUvarint(buf, uint64(len(d.Rows)))
	for _, row := range d.Rows {
		cells := 0
		for b := range row.Recs {
			if row.Recs[b] != 0 || row.Nanos[b] != 0 {
				cells++
			}
		}
		buf = binenc.AppendUvarint(buf, uint64(cells))
		for b := range row.Recs {
			if row.Recs[b] != 0 || row.Nanos[b] != 0 {
				buf = binenc.AppendUvarint(buf, uint64(b))
				buf = binenc.AppendUvarint(buf, row.Recs[b])
				buf = binenc.AppendUvarint(buf, row.Nanos[b])
			}
		}
	}
	return buf
}

// DecodeLoadDelta decodes one load delta into d (rows and cell slices are
// reused when large enough). It never panics on malformed input: torn,
// truncated, version-skewed or trailing-garbage payloads return an error.
func DecodeLoadDelta(data []byte, d *LoadDelta) error {
	if len(data) < 1 {
		return fmt.Errorf("core: load delta: %w", binenc.ErrShort)
	}
	if v := data[0]; v != LoadWireVersion {
		return fmt.Errorf("core: load delta version %d, this build speaks %d", v, LoadWireVersion)
	}
	data = data[1:]
	var proc, seq, first, bins, rows uint64
	var err error
	if proc, data, err = binenc.Uvarint(data); err != nil {
		return fmt.Errorf("core: load delta proc: %w", err)
	}
	if seq, data, err = binenc.Uvarint(data); err != nil {
		return fmt.Errorf("core: load delta seq: %w", err)
	}
	if first, data, err = binenc.Uvarint(data); err != nil {
		return fmt.Errorf("core: load delta first-worker: %w", err)
	}
	if bins, data, err = binenc.Uvarint(data); err != nil {
		return fmt.Errorf("core: load delta bins: %w", err)
	}
	if bins > maxDeltaBins {
		return fmt.Errorf("core: load delta declares %d bins (max %d)", bins, maxDeltaBins)
	}
	// Each encoded row carries at least its one-byte cell count.
	if rows, data, err = binenc.Count(data, 1); err != nil {
		return fmt.Errorf("core: load delta rows: %w", err)
	}
	if bins > 0 && rows > maxDeltaCells/bins {
		return fmt.Errorf("core: load delta declares %d×%d cells (max %d)", rows, bins, maxDeltaCells)
	}
	d.Proc = int(proc)
	d.Seq = seq
	d.FirstWorker = int(first)
	d.Bins = int(bins)
	if cap(d.Rows) < int(rows) {
		d.Rows = make([]LoadDeltaRow, rows)
	}
	d.Rows = d.Rows[:rows]
	for r := range d.Rows {
		row := &d.Rows[r]
		row.Recs = resize(row.Recs, int(bins))
		row.Nanos = resize(row.Nanos, int(bins))
		var cells uint64
		// Each encoded cell is at least 3 bytes (three uvarints).
		if cells, data, err = binenc.Count(data, 3); err != nil {
			return fmt.Errorf("core: load delta row %d cells: %w", r, err)
		}
		for c := uint64(0); c < cells; c++ {
			var bin, recs, nanos uint64
			if bin, data, err = binenc.Uvarint(data); err != nil {
				return fmt.Errorf("core: load delta row %d cell %d: %w", r, c, err)
			}
			if recs, data, err = binenc.Uvarint(data); err != nil {
				return fmt.Errorf("core: load delta row %d cell %d recs: %w", r, c, err)
			}
			if nanos, data, err = binenc.Uvarint(data); err != nil {
				return fmt.Errorf("core: load delta row %d cell %d nanos: %w", r, c, err)
			}
			if bin >= bins {
				return fmt.Errorf("core: load delta row %d cell %d names bin %d of %d", r, c, bin, bins)
			}
			row.Recs[bin] = recs
			row.Nanos[bin] = nanos
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("core: load delta: %d trailing bytes", len(data))
	}
	return nil
}

// ClusterLoadView merges a process's live local LoadMeter with the remote
// row deltas it receives into one cluster-wide cumulative load matrix. Local
// rows are always read from the meter at snapshot time (they are fresher
// than any delta could be); remote rows advance as deltas arrive on the
// control channel. The view satisfies the same Snapshot contract as the
// LoadMeter, so the AutoController's sampling loop runs unchanged over it.
type ClusterLoadView struct {
	meter       *LoadMeter
	firstLocal  int
	localRows   int
	mu          sync.Mutex
	recs, nanos []uint64 // row-major [worker*bins+bin]; remote rows only
}

// NewClusterLoadView returns a view over meter (sized for the whole cluster)
// whose rows [firstLocal, firstLocal+localRows) are this process's own.
func NewClusterLoadView(meter *LoadMeter, firstLocal, localRows int) *ClusterLoadView {
	if firstLocal < 0 || localRows <= 0 || firstLocal+localRows > meter.Workers() {
		panic(fmt.Sprintf("core: cluster view rows [%d,%d) out of range for %d workers",
			firstLocal, firstLocal+localRows, meter.Workers()))
	}
	n := meter.Workers() * meter.Bins()
	return &ClusterLoadView{
		meter:      meter,
		firstLocal: firstLocal,
		localRows:  localRows,
		recs:       make([]uint64, n),
		nanos:      make([]uint64, n),
	}
}

// Bins returns the view's bin count.
func (v *ClusterLoadView) Bins() int { return v.meter.Bins() }

// Workers returns the view's worker count.
func (v *ClusterLoadView) Workers() int { return v.meter.Workers() }

// Apply folds one remote delta into the view. Deltas from this process's own
// rows are ignored (local rows are read live), and a delta whose geometry
// disagrees with the meter is rejected — a process running a different
// configuration must not corrupt the matrix.
func (v *ClusterLoadView) Apply(d *LoadDelta) error {
	if d.Bins != v.meter.Bins() {
		return fmt.Errorf("core: load delta has %d bins, view has %d", d.Bins, v.meter.Bins())
	}
	if d.FirstWorker < 0 || d.FirstWorker+len(d.Rows) > v.meter.Workers() {
		return fmt.Errorf("core: load delta rows [%d,%d) out of range for %d workers",
			d.FirstWorker, d.FirstWorker+len(d.Rows), v.meter.Workers())
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for r, row := range d.Rows {
		w := d.FirstWorker + r
		if w >= v.firstLocal && w < v.firstLocal+v.localRows {
			continue // our own row; the meter is authoritative
		}
		base := w * d.Bins
		for b := 0; b < d.Bins; b++ {
			v.recs[base+b] += row.Recs[b]
			v.nanos[base+b] += row.Nanos[b]
		}
	}
	return nil
}

// Snapshot reads the merged cluster-wide view into a LoadSnapshot, exactly
// as LoadMeter.Snapshot does for one process: local rows live from the
// meter, remote rows from the accumulated deltas.
func (v *ClusterLoadView) Snapshot(into *LoadSnapshot) *LoadSnapshot {
	workers, bins := v.meter.Workers(), v.meter.Bins()
	if into == nil {
		into = &LoadSnapshot{}
	}
	into.Workers = workers
	into.Bins = bins
	into.BinRecs = resize(into.BinRecs, bins)
	into.BinNanos = resize(into.BinNanos, bins)
	into.WorkerRecs = resize(into.WorkerRecs, workers)
	into.WorkerNanos = resize(into.WorkerNanos, workers)
	v.mu.Lock()
	defer v.mu.Unlock()
	for w := 0; w < workers; w++ {
		var recs, nanos uint64
		if w >= v.firstLocal && w < v.firstLocal+v.localRows {
			row := v.meter.row(w)
			for b := range row {
				r := row[b].recs.Load()
				n := row[b].nanos.Load()
				into.BinRecs[b] += r
				into.BinNanos[b] += n
				recs += r
				nanos += n
			}
		} else {
			base := w * bins
			for b := 0; b < bins; b++ {
				r := v.recs[base+b]
				n := v.nanos[base+b]
				into.BinRecs[b] += r
				into.BinNanos[b] += n
				recs += r
				nanos += n
			}
		}
		into.WorkerRecs[w] = recs
		into.WorkerNanos[w] = nanos
	}
	return into
}
