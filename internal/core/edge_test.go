package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// TestMigrationToSelfIsNoop: moves that assign a bin to its current owner
// change nothing and transfer no state.
func TestMigrationToSelfIsNoop(t *testing.T) {
	const workers = 2
	handle := &core.Handle[core.KV[uint64, int64], core.MapState[uint64, int64], core.KV[uint64, int64]]{}
	inputs := make([][]kvAt, workers)
	expect := make(map[uint64]int64)
	for i := 0; i < 400; i++ {
		k := uint64(i % 32)
		inputs[i%workers] = append(inputs[i%workers], kvAt{t: core.Time(i % 50), key: k, val: 1})
		expect[k]++
	}
	// Every bin "moves" to its initial owner.
	var moves []core.Move
	for b := 0; b < 1<<3; b++ {
		moves = append(moves, core.Move{Bin: b, Worker: core.InitialWorker(b, workers)})
	}
	res := runWordCountWithHandle(t, workers, 3, inputs, map[core.Time][]core.Move{25: moves}, handle)
	for k, want := range expect {
		if res.finals[k] != want {
			t.Errorf("count[%d] = %d, want %d", k, res.finals[k], want)
		}
	}
	if got := handle.Migrated(0) + handle.Migrated(1); got != 0 {
		t.Errorf("self-moves migrated %d bins, want 0", got)
	}
}

// TestRepeatedMigrations thrash bins back and forth; totals must hold and
// bins must not be duplicated or lost.
func TestRepeatedMigrations(t *testing.T) {
	const workers, logBins = 3, 3
	rng := rand.New(rand.NewSource(21))
	inputs := make([][]kvAt, workers)
	expect := make(map[uint64]int64)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(128))
		inputs[i%workers] = append(inputs[i%workers], kvAt{t: core.Time(rng.Intn(300)), key: k, val: 1})
		expect[k]++
	}
	plan := make(map[core.Time][]core.Move)
	for step := 0; step < 20; step++ {
		tm := core.Time(10 + step*14)
		var moves []core.Move
		for b := 0; b < 1<<logBins; b++ {
			moves = append(moves, core.Move{Bin: b, Worker: rng.Intn(workers)})
		}
		plan[tm] = moves
	}
	res := runWordCount(t, workers, logBins, inputs, plan, core.TransferGob)
	if len(res.finals) != len(expect) {
		t.Fatalf("key count %d, want %d", len(res.finals), len(expect))
	}
	for k, want := range expect {
		if res.finals[k] != want {
			t.Errorf("count[%d] = %d, want %d", k, res.finals[k], want)
		}
	}
}

// TestControlOnlyNoData: a dataflow with configuration commands but no data
// still completes (migrating empty bins is legal).
func TestControlOnlyNoData(t *testing.T) {
	const workers = 2
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "input")
		dataIns = append(dataIns, in)
		out := core.StateMachine(w, core.Config{Name: "count", LogBins: 2},
			ctlStream, data, core.Mix64,
			func(k uint64, v int64, st *int64, emit func(int64)) { *st += v; emit(*st) },
			nil)
		dataflow.NewProbe(w, out)
	})
	exec.Start()
	ctlIns[0].SendAt(5, core.Move{Bin: 0, Worker: 1}, core.Move{Bin: 1, Worker: 0})
	for e := core.Time(0); e < 20; e++ {
		for _, h := range ctlIns {
			h.AdvanceTo(e + 1)
		}
		for _, h := range dataIns {
			h.AdvanceTo(e + 1)
		}
	}
	for _, h := range ctlIns {
		h.Close()
	}
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait() // must terminate
}

// TestSingleWorker: megaphone on one worker degenerates gracefully (all
// moves are self-moves or no-ops).
func TestSingleWorker(t *testing.T) {
	inputs := [][]kvAt{nil}
	expect := make(map[uint64]int64)
	for i := 0; i < 200; i++ {
		k := uint64(i % 16)
		inputs[0] = append(inputs[0], kvAt{t: core.Time(i), key: k, val: 1})
		expect[k]++
	}
	res := runWordCount(t, 1, 2, inputs, map[core.Time][]core.Move{
		50: {{Bin: 0, Worker: 0}, {Bin: 3, Worker: 0}},
	}, core.TransferGob)
	for k, want := range expect {
		if res.finals[k] != want {
			t.Errorf("count[%d] = %d, want %d", k, res.finals[k], want)
		}
	}
}

// runWordCountWithHandle is runWordCount but with a caller-provided handle.
func runWordCountWithHandle(t *testing.T, workers, logBins int, inputs [][]kvAt, plan map[core.Time][]core.Move, handle *core.Handle[core.KV[uint64, int64], core.MapState[uint64, int64], core.KV[uint64, int64]]) wcResult {
	t.Helper()
	var mu sync.Mutex
	res := wcResult{finals: make(map[uint64]int64)}

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "input")
		dataIns = append(dataIns, in)
		counts := core.StateMachine(w,
			core.Config{Name: "count", LogBins: logBins},
			ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func(k uint64, v int64, st *int64, emit func(core.KV[uint64, int64])) {
				*st += v
				emit(core.KV[uint64, int64]{Key: k, Val: *st})
			},
			handle)
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, counts, dataflow.Pipeline[core.KV[uint64, int64]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(_ core.Time, out []core.KV[uint64, int64]) {
				mu.Lock()
				for _, kv := range out {
					if kv.Val > res.finals[kv.Key] {
						res.finals[kv.Key] = kv.Val
					}
				}
				mu.Unlock()
			})
		})
	})
	exec.Start()
	driveWordCount(inputs, plan, dataIns, ctlIns)
	exec.Wait()
	return res
}
