package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// mkBin builds a MapState bin with n entries keyed off seed.
func mkBin(seed uint64, n int) *BinState[KV[uint64, uint64], MapState[uint64, uint64]] {
	b := &BinState[KV[uint64, uint64], MapState[uint64, uint64]]{
		State: &MapState[uint64, uint64]{M: make(map[uint64]uint64)},
	}
	for i := 0; i < n; i++ {
		k := Mix64(seed + uint64(i))
		b.State.M[k] = k % 977
	}
	return b
}

// writeTestCheckpoint drains bins (bin id -> state) for one worker at the
// given epoch, chunking at chunkBytes, and commits the manifest.
func writeTestCheckpoint(t *testing.T, dir string, epoch Time, worker, peers, logBins, chunkBytes int,
	assignment []int, binStates map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]) {
	t.Helper()
	w, err := NewCheckpointWriter(dir, "test-op", epoch, worker)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 1<<uint(logBins); b++ {
		bs, ok := binStates[b]
		if !ok || assignment[b] != worker {
			continue
		}
		payload, err := TransferBinary.EncodeBin(bs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBin(appendChunks(nil, b, worker, payload, chunkBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(peers, logBins, TransferBinary.Name(), assignment, nil); err != nil {
		t.Fatal(err)
	}
}

// writeLiveCheckpoint is writeTestCheckpoint with an explicit live roster
// recorded in the manifest (a shrunk-roster checkpoint).
func writeLiveCheckpoint(t *testing.T, dir string, epoch Time, worker, peers, logBins, chunkBytes int,
	assignment, live []int, binStates map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]) {
	t.Helper()
	w, err := NewCheckpointWriter(dir, "test-op", epoch, worker)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 1<<uint(logBins); b++ {
		bs, ok := binStates[b]
		if !ok || assignment[b] != worker {
			continue
		}
		payload, err := TransferBinary.EncodeBin(bs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBin(appendChunks(nil, b, worker, payload, chunkBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(peers, logBins, TransferBinary.Name(), assignment, live); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRoundTrip: bins written through the chunked checkpoint
// writer come back bit-identical through LoadRestore, including bins whose
// payload spans many chunks, and the recorded assignment survives.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const peers, logBins = 2, 2
	assignment := []int{1, 0, 1, 1} // bins 0,2,3 on worker 1; bin 1 on worker 0
	bins := map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]{
		0: mkBin(1, 3),
		1: mkBin(2, 500), // forces chunking at the tiny chunk size below
		2: mkBin(3, 0),   // occupied but empty map
	}
	// Pending records must survive too (they migrate with the bin).
	bins[0].PushPending(9, KV[uint64, uint64]{Key: 7, Val: 7})
	for w := 0; w < peers; w++ {
		writeTestCheckpoint(t, dir, 5, w, peers, logBins, 64, assignment, bins)
	}

	epoch, ops, ok, err := LatestCheckpoint(dir, peers)
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if epoch != 5 || len(ops) != 1 || ops[0] != "test-op" {
		t.Fatalf("LatestCheckpoint = (%d, %v)", epoch, ops)
	}

	// Worker 1's process view.
	r, err := LoadRestore(dir, "test-op", 5, peers, 1, 1, TransferBinary.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Assignment, assignment) || r.LogBins != logBins || r.Epoch != 5 {
		t.Fatalf("restore metadata mismatch: %+v", r)
	}
	for _, b := range []int{0, 2} {
		payload, ok := r.Bins[b]
		if !ok {
			t.Fatalf("bin %d missing from restore", b)
		}
		got := &BinState[KV[uint64, uint64], MapState[uint64, uint64]]{
			State: &MapState[uint64, uint64]{},
		}
		if err := TransferBinary.DecodeBin(got, payload); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.State, bins[b].State) || !reflect.DeepEqual(got.Pending, bins[b].Pending) {
			t.Fatalf("bin %d state mismatch after restore", b)
		}
	}
	if _, ok := r.Bins[3]; ok {
		t.Fatal("bin 3 was never written (empty) but appeared in the restore")
	}
	if _, ok := r.Bins[1]; ok {
		t.Fatal("bin 1 belongs to worker 0 but appeared in worker 1's restore")
	}
}

// TestLatestCheckpointSkipsIncomplete: an epoch missing any worker's
// manifest (e.g. the process died mid-checkpoint) is not recoverable; the
// newest complete epoch wins.
func TestLatestCheckpointSkipsIncomplete(t *testing.T) {
	dir := t.TempDir()
	assignment := []int{0, 1}
	bins := map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]{0: mkBin(1, 4), 1: mkBin(2, 4)}
	for w := 0; w < 2; w++ {
		writeTestCheckpoint(t, dir, 10, w, 2, 1, 0, assignment, bins)
	}
	// Epoch 20: only worker 0 committed before the "crash".
	writeTestCheckpoint(t, dir, 20, 0, 2, 1, 0, assignment, bins)

	epoch, _, ok, err := LatestCheckpoint(dir, 2)
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if epoch != 10 {
		t.Fatalf("LatestCheckpoint picked epoch %d, want the complete 10", epoch)
	}

	// An empty or absent dir is not an error, just no checkpoint.
	if _, _, ok, err := LatestCheckpoint(filepath.Join(dir, "nope"), 2); ok || err != nil {
		t.Fatalf("absent dir: ok=%v err=%v", ok, err)
	}
}

// TestShrunkRosterCheckpoint: an epoch whose manifests record a shrunk live
// roster is complete without the dead slot's manifest, restores for the dead
// slot's worker range come back empty instead of erroring, and the
// bin-targeted loader works even when worker 0 is the dead one.
func TestShrunkRosterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const peers, logBins = 2, 1
	// Worker 0 crashed earlier; its bins were restored onto worker 1.
	assignment := []int{1, 1}
	live := []int{1}
	bins := map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]{0: mkBin(1, 8), 1: mkBin(2, 8)}
	writeLiveCheckpoint(t, dir, 30, 1, peers, logBins, 0, assignment, live, bins)

	epoch, _, ok, err := LatestCheckpoint(dir, peers)
	if err != nil || !ok || epoch != 30 {
		t.Fatalf("shrunk-roster epoch not complete: epoch=%d ok=%v err=%v", epoch, ok, err)
	}

	// The dead slot's worker range: no manifest, no bins, no error.
	r, err := LoadRestore(dir, "test-op", 30, peers, 0, 1, TransferBinary.Name())
	if err != nil {
		t.Fatalf("restore of a checkpoint-dead slot errored: %v", err)
	}
	if len(r.Bins) != 0 || !reflect.DeepEqual(r.Assignment, assignment) {
		t.Fatalf("dead-slot restore: bins=%d assignment=%v", len(r.Bins), r.Assignment)
	}

	// The survivor's range holds everything.
	r, err = LoadRestore(dir, "test-op", 30, peers, 1, 1, TransferBinary.Name())
	if err != nil || len(r.Bins) != 2 {
		t.Fatalf("survivor restore: bins=%d err=%v", len(r.Bins), err)
	}

	// Targeted bin load must not insist on manifest-w0.
	r, err = LoadCheckpointBins(dir, "test-op", 30, peers, []int{0, 1}, TransferBinary.Name())
	if err != nil || len(r.Bins) != 2 {
		t.Fatalf("LoadCheckpointBins without worker 0: bins=%d err=%v", len(r.Bins), err)
	}

	// A manifest missing for a worker the epoch records as LIVE still marks
	// the epoch incomplete.
	writeLiveCheckpoint(t, dir, 40, 1, peers, logBins, 0, assignment, []int{0, 1}, bins)
	if epoch, _, ok, err := LatestCheckpoint(dir, peers); err != nil || !ok || epoch != 30 {
		t.Fatalf("incomplete live epoch not skipped: epoch=%d ok=%v err=%v", epoch, ok, err)
	}
	if _, err := LoadRestore(dir, "test-op", 40, peers, 0, 1, TransferBinary.Name()); err == nil {
		t.Fatal("restore of a live worker with a missing manifest did not error")
	}
}

// TestLoadRestoreDetectsCorruption: flipped payload bytes fail the chunk
// digest check, and a truncated data file fails the completeness check.
func TestLoadRestoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	assignment := []int{0, 0}
	bins := map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]{0: mkBin(1, 300), 1: mkBin(2, 300)}
	writeTestCheckpoint(t, dir, 7, 0, 1, 1, 128, assignment, bins)

	path := filepath.Join(dir, "test-op", "epoch-7", "bins-w0.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRestore(dir, "test-op", 7, 1, 0, 1, TransferBinary.Name()); err == nil ||
		!strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "digest") {
		t.Fatalf("corrupted payload not detected: %v", err)
	}

	if err := os.WriteFile(path, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRestore(dir, "test-op", 7, 1, 0, 1, TransferBinary.Name()); err == nil {
		t.Fatal("truncated data file not detected")
	}

	// Codec mismatch is a configuration error, reported as such.
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRestore(dir, "test-op", 7, 1, 0, 1, TransferGob.Name()); err == nil ||
		!strings.Contains(err.Error(), "codec") {
		t.Fatalf("codec mismatch not detected: %v", err)
	}
}
