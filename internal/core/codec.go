package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// StateMsg is a migration message: the state of one bin in flight from its
// old owner to its new owner, timestamped with the configuration command's
// logical time.
type StateMsg struct {
	Bin   int
	To    int    // destination worker (drives the exchange)
	Bytes []byte // serialized BinState (nil in direct mode)
	Dir   any    // *BinState[R,S] transferred by pointer in direct mode
}

// Transfer selects how bin state crosses workers during migration.
type Transfer int

const (
	// TransferGob serializes bins with encoding/gob, paying a marshalling
	// and copy cost proportional to state size — this models the paper's
	// cross-process migrations and is the default.
	TransferGob Transfer = iota
	// TransferDirect hands the bin over by pointer. It is only sound inside
	// one process and exists as the ablation baseline for the codec cost.
	TransferDirect
)

// encodeBin serializes a bin for migration.
func encodeBin[R, S any](b *BinState[R, S]) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(b.State); err != nil {
		return nil, fmt.Errorf("megaphone: encoding bin state: %w", err)
	}
	if err := enc.Encode(b.Pending); err != nil {
		return nil, fmt.Errorf("megaphone: encoding pending records: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBin reconstructs a bin from its migration payload.
func decodeBin[R, S any](data []byte) (*BinState[R, S], error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	b := &BinState[R, S]{State: new(S)}
	if err := dec.Decode(b.State); err != nil {
		return nil, fmt.Errorf("megaphone: decoding bin state: %w", err)
	}
	if err := dec.Decode(&b.Pending); err != nil {
		return nil, fmt.Errorf("megaphone: decoding pending records: %w", err)
	}
	return b, nil
}
