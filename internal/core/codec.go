package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"megaphone/internal/binenc"
)

// StateMsg is a migration message: one chunk of a bin's state in flight
// from its old owner to its new owner, timestamped with the configuration
// command's logical time. Oversized bins are split into bounded-size chunks
// (Config.ChunkBytes) so a single large bin never produces one giant
// message; the receiver reassembles chunks in (Seq, Last) order, which the
// exchange channel preserves.
type StateMsg struct {
	Bin   int
	To    int    // destination worker (drives the exchange)
	Seq   int    // chunk index within the bin's payload
	Last  bool   // final chunk of this bin
	Bytes []byte // chunk of the codec-serialized BinState (nil in direct mode)
	Dir   any    // *BinState[R,S] transferred by pointer in direct mode
}

// DefaultChunkBytes bounds the payload of one StateMsg unless overridden by
// Config.ChunkBytes: large enough to amortize per-message overhead, small
// enough that migrating one huge bin does not materialize it as a single
// allocation in the channel.
const DefaultChunkBytes = 256 << 10

// Codec serializes bins for migration. A codec is installed per operator
// via Config.Transfer; every worker of an execution shares the same codec
// value, so implementations must be safe for concurrent use.
//
// Codecs see bins through the type-erased Migratable view rather than the
// generic *BinState[R, S], which lets them live behind a plain interface
// value in Config. The built-in codecs are TransferGob (encoding/gob,
// universal), TransferBinary (hand-rolled varint/fixed-width encoding via
// the BinaryState/BinaryRec contracts, with gob fallback per bin), and
// TransferDirect (pointer handoff, in-process only).
type Codec interface {
	// Name identifies the codec in flags, benchmarks, and experiment output.
	Name() string
	// EncodeBin appends bin's serialized form to buf and returns the
	// extended slice (buf may be nil).
	EncodeBin(bin Migratable, buf []byte) ([]byte, error)
	// DecodeBin reconstructs bin from a payload produced by EncodeBin. The
	// bin is freshly allocated by the receiving operator (state from
	// NewState, no pending records); DecodeBin replaces its contents.
	DecodeBin(bin Migratable, data []byte) error
}

// Transfer is the former name of Codec, kept for existing call sites.
type Transfer = Codec

// DirectTransfer is implemented by codecs that move bins by pointer instead
// of serializing them. Only sound inside one process; exists as the
// ablation baseline for the codec cost.
type DirectTransfer interface {
	Codec
	// Direct reports that bins are handed over without serialization.
	Direct() bool
}

// Migratable is the codec-facing, type-erased view of one bin
// (*BinState[R, S] implements it). Gob methods always work; the binary
// methods report ok=false when the state or pending-record types do not
// satisfy the BinaryState/BinaryRec contracts, letting codecs fall back.
type Migratable interface {
	// AppendGob appends the encoding/gob serialization (state, then
	// pending records) to buf.
	AppendGob(buf []byte) ([]byte, error)
	// DecodeGob replaces the bin's contents from an AppendGob payload.
	DecodeGob(data []byte) error
	// AppendBinary appends the hand-rolled binary serialization to buf, or
	// returns (buf, false) when the types do not support it.
	AppendBinary(buf []byte) ([]byte, bool)
	// DecodeBinary replaces the bin's contents from an AppendBinary
	// payload, or returns (false, nil) when the types do not support it.
	DecodeBinary(data []byte) (bool, error)
}

// BinaryState is the contract a workload's per-bin state type implements
// (on its pointer receiver) to opt into the TransferBinary fast path.
// Implementations encode with the internal/binenc helpers; see
// keycount.HashState or nexmark's query states for worked examples.
type BinaryState interface {
	// AppendBinaryState appends the state's encoding to buf.
	AppendBinaryState(buf []byte) []byte
	// DecodeBinaryState replaces the receiver's contents from the front of
	// data and returns the unread remainder.
	DecodeBinaryState(data []byte) ([]byte, error)
}

// BinaryRec is the same contract for a workload's record type R, required
// only when bins can carry pending post-dated records at migration time
// (operators that use the Notificator). Implement it on the pointer
// receiver so DecodeBinaryRec can fill the record in place.
type BinaryRec interface {
	// AppendBinaryRec appends the record's encoding to buf.
	AppendBinaryRec(buf []byte) []byte
	// DecodeBinaryRec replaces the receiver's contents from the front of
	// data and returns the unread remainder.
	DecodeBinaryRec(data []byte) ([]byte, error)
}

// binaryCapable is an optional refinement of BinaryState/BinaryRec for
// generic types (MapState, Either) whose support depends on their type
// parameters: the interface methods exist at every instantiation, but only
// some instantiations can actually encode.
type binaryCapable interface{ BinaryCapable() bool }

// capable reports whether v (a BinaryState or BinaryRec value) can really
// encode, consulting BinaryCapable when present.
func capable(v any) bool {
	if c, ok := v.(binaryCapable); ok {
		return c.BinaryCapable()
	}
	return true
}

// recBinaryCapable reports whether *R satisfies BinaryRec and is capable.
func recBinaryCapable[R any]() bool {
	var r R
	br, ok := any(&r).(BinaryRec)
	return ok && capable(br)
}

// --- Migratable implementation on BinState ---

// AppendGob appends the gob serialization of the bin: state, then pending.
func (b *BinState[R, S]) AppendGob(buf []byte) ([]byte, error) {
	w := bytes.NewBuffer(buf)
	enc := gob.NewEncoder(w)
	if err := enc.Encode(b.State); err != nil {
		return nil, fmt.Errorf("megaphone: encoding bin state: %w", err)
	}
	if err := enc.Encode(b.Pending); err != nil {
		return nil, fmt.Errorf("megaphone: encoding pending records: %w", err)
	}
	return w.Bytes(), nil
}

// DecodeGob replaces the bin's contents from an AppendGob payload.
func (b *BinState[R, S]) DecodeGob(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	if b.State == nil {
		b.State = new(S)
	}
	if err := dec.Decode(b.State); err != nil {
		return fmt.Errorf("megaphone: decoding bin state: %w", err)
	}
	b.Pending = nil
	if err := dec.Decode(&b.Pending); err != nil {
		return fmt.Errorf("megaphone: decoding pending records: %w", err)
	}
	return nil
}

// AppendBinary appends the hand-rolled serialization of the bin: the
// state's BinaryState encoding, then the pending records (count, then
// time/record pairs in heap order). ok is false when S does not implement
// BinaryState, or when pending records exist and R does not implement
// BinaryRec.
func (b *BinState[R, S]) AppendBinary(buf []byte) ([]byte, bool) {
	bs, ok := any(b.State).(BinaryState)
	if !ok || !capable(bs) {
		return buf, false
	}
	if len(b.Pending) > 0 && !recBinaryCapable[R]() {
		return buf, false
	}
	buf = bs.AppendBinaryState(buf)
	buf = binenc.AppendUvarint(buf, uint64(len(b.Pending)))
	for i := range b.Pending {
		buf = binenc.AppendUvarint(buf, uint64(b.Pending[i].Time))
		buf = any(&b.Pending[i].Rec).(BinaryRec).AppendBinaryRec(buf)
	}
	return buf, true
}

// DecodeBinary replaces the bin's contents from an AppendBinary payload.
// The pending records are appended in the order they were encoded, which is
// the sender's heap order — a valid heap layout, so heap operations resume
// without re-heapifying.
func (b *BinState[R, S]) DecodeBinary(data []byte) (bool, error) {
	if b.State == nil {
		b.State = new(S)
	}
	bs, ok := any(b.State).(BinaryState)
	if !ok || !capable(bs) {
		return false, nil
	}
	data, err := bs.DecodeBinaryState(data)
	if err != nil {
		return true, fmt.Errorf("megaphone: decoding bin state: %w", err)
	}
	n, data, err := binenc.Count(data, 2) // every pending record is >= 2 bytes
	if err != nil {
		return true, fmt.Errorf("megaphone: decoding pending count: %w", err)
	}
	if n == 0 {
		b.Pending = nil
		return true, nil
	}
	if !recBinaryCapable[R]() {
		return false, nil
	}
	pending := make([]TimedRec[R], n)
	for i := range pending {
		var t uint64
		t, data, err = binenc.Uvarint(data)
		if err != nil {
			return true, fmt.Errorf("megaphone: decoding pending time: %w", err)
		}
		pending[i].Time = Time(t)
		data, err = any(&pending[i].Rec).(BinaryRec).DecodeBinaryRec(data)
		if err != nil {
			return true, fmt.Errorf("megaphone: decoding pending record: %w", err)
		}
	}
	b.Pending = pending
	return true, nil
}

// --- Built-in codecs ---

// GobCodec serializes bins with encoding/gob, paying a marshalling and
// reflection cost proportional to state size — this models the paper's
// cross-process migrations and is the default.
type GobCodec struct{}

// Name implements Codec.
func (GobCodec) Name() string { return "gob" }

// EncodeBin implements Codec.
func (GobCodec) EncodeBin(bin Migratable, buf []byte) ([]byte, error) {
	return bin.AppendGob(buf)
}

// DecodeBin implements Codec.
func (GobCodec) DecodeBin(bin Migratable, data []byte) error {
	return bin.DecodeGob(data)
}

// Payload format tags of BinaryCodec: the first byte of every payload
// records which encoding produced the rest, so bins whose types lack
// BinaryState support can fall back to gob per bin without ambiguity.
const (
	binFormatGob    = 0x00
	binFormatBinary = 0x01
)

// BinaryCodec serializes bins with the hand-rolled varint/fixed-width
// encoding defined by the BinaryState and BinaryRec contracts, avoiding
// gob's reflection and type-description overhead on the migration hot path.
// Bins whose state type does not implement BinaryState (or whose pending
// records cannot be encoded) fall back to gob, recorded in a one-byte
// format tag at the head of the payload.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

// EncodeBin implements Codec.
func (BinaryCodec) EncodeBin(bin Migratable, buf []byte) ([]byte, error) {
	if out, ok := bin.AppendBinary(append(buf, binFormatBinary)); ok {
		return out, nil
	}
	return bin.AppendGob(append(buf, binFormatGob))
}

// DecodeBin implements Codec.
func (BinaryCodec) DecodeBin(bin Migratable, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("megaphone: empty binary-codec payload")
	}
	switch data[0] {
	case binFormatBinary:
		ok, err := bin.DecodeBinary(data[1:])
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("megaphone: binary payload for a bin type without BinaryState support")
		}
		return nil
	case binFormatGob:
		return bin.DecodeGob(data[1:])
	default:
		return fmt.Errorf("megaphone: unknown binary-codec format tag %#x", data[0])
	}
}

// DirectCodec hands the bin over by pointer. It is only sound inside one
// process and exists as the ablation baseline for the codec cost.
type DirectCodec struct{}

// Name implements Codec.
func (DirectCodec) Name() string { return "direct" }

// Direct implements DirectTransfer.
func (DirectCodec) Direct() bool { return true }

// EncodeBin implements Codec; direct transfer never serializes.
func (DirectCodec) EncodeBin(Migratable, []byte) ([]byte, error) {
	return nil, fmt.Errorf("megaphone: direct transfer does not serialize")
}

// DecodeBin implements Codec; direct transfer never serializes.
func (DirectCodec) DecodeBin(Migratable, []byte) error {
	return fmt.Errorf("megaphone: direct transfer does not serialize")
}

// The built-in transfer codecs, usable directly in Config.Transfer.
var (
	TransferGob    Codec = GobCodec{}
	TransferDirect Codec = DirectCodec{}
	TransferBinary Codec = BinaryCodec{}
)

// isDirect reports whether codec moves bins by pointer.
func isDirect(codec Codec) bool {
	d, ok := codec.(DirectTransfer)
	return ok && d.Direct()
}

// IsDirectCodec reports whether codec moves bins by pointer instead of
// serializing them. Direct codecs are only sound inside one process;
// cluster drivers use this to reject them up front.
func IsDirectCodec(codec Codec) bool { return isDirect(codec) }

// --- Codec registry ---

var (
	codecMu  sync.RWMutex
	codecReg = map[string]Codec{
		TransferGob.Name():    TransferGob,
		TransferDirect.Name(): TransferDirect,
		TransferBinary.Name(): TransferBinary,
	}
)

// RegisterCodec makes a codec selectable by name (e.g. from the
// experiments driver's -transfer flag). Registering a name twice panics.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecReg[c.Name()]; dup {
		panic(fmt.Sprintf("megaphone: codec %q already registered", c.Name()))
	}
	codecReg[c.Name()] = c
}

// CodecByName resolves a registered codec.
func CodecByName(name string) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecReg[name]
	if !ok {
		return nil, fmt.Errorf("megaphone: unknown transfer codec %q (have %v)", name, codecNamesLocked())
	}
	return c, nil
}

// CodecNames lists the registered codec names, sorted.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecNamesLocked()
}

func codecNamesLocked() []string {
	names := make([]string, 0, len(codecReg))
	for n := range codecReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- Chunking ---

// appendChunks splits payload into at most chunk-sized StateMsgs for bin,
// sharing payload's backing array (no copies). chunk <= 0 disables
// splitting. An empty payload still produces one (Last) message so the
// receiver installs the bin.
func appendChunks(msgs []StateMsg, bin, to int, payload []byte, chunk int) []StateMsg {
	if chunk <= 0 || len(payload) <= chunk {
		return append(msgs, StateMsg{Bin: bin, To: to, Bytes: payload, Last: true})
	}
	for off, seq := 0, 0; off < len(payload); off, seq = off+chunk, seq+1 {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		msgs = append(msgs, StateMsg{
			Bin:   bin,
			To:    to,
			Seq:   seq,
			Last:  end == len(payload),
			Bytes: payload[off:end],
		})
	}
	return msgs
}

// chunkAssembler reassembles chunked bin payloads on the receiving worker.
// Chunks of one bin arrive in order on the exchange channel; a payload is
// complete when its Last chunk arrives. Each chunk's Seq is checked
// against the expected next index, so a violation of the channel's
// ordering guarantee fails loudly instead of silently reassembling a
// corrupt payload.
type chunkAssembler struct {
	partial map[int]*partialBin // bin -> accumulation in progress
}

type partialBin struct {
	buf  []byte
	next int // expected Seq of the next chunk
}

// add folds one StateMsg into the assembler and returns the complete
// payload when m finishes its bin, or (nil, false) while chunks remain.
// It panics on out-of-order or duplicate chunks (an engine invariant, not
// a payload property).
func (a *chunkAssembler) add(m StateMsg) ([]byte, bool) {
	if m.Seq == 0 && m.Last {
		if _, open := a.partial[m.Bin]; open {
			panic(fmt.Sprintf("megaphone: unchunked StateMsg for bin %d amid its chunk stream", m.Bin))
		}
		return m.Bytes, true
	}
	if a.partial == nil {
		a.partial = make(map[int]*partialBin)
	}
	p := a.partial[m.Bin]
	if p == nil {
		p = &partialBin{}
		a.partial[m.Bin] = p
	}
	if m.Seq != p.next {
		panic(fmt.Sprintf("megaphone: bin %d chunk out of order: got Seq %d, want %d", m.Bin, m.Seq, p.next))
	}
	p.next++
	p.buf = append(p.buf, m.Bytes...)
	if !m.Last {
		return nil, false
	}
	delete(a.partial, m.Bin)
	return p.buf, true
}
