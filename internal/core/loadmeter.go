package core

import "sync/atomic"

// LoadMeter counts, per (worker, bin), the records applied by the S operator
// and the cumulative service time spent applying them. It is the measurement
// half of the control loop the paper delegates to an external controller
// (Section 4.4): a policy samples the meter, decides which bins are hot, and
// feeds a migration plan back into the control stream.
//
// The meter is lock-free on both sides. Each worker's S instance owns one row
// of cells and updates it with uncontended atomic adds (a single writer per
// row at steady state; during a migration handover two workers may briefly
// write the same bin's column in different rows, which is still correct —
// rows attribute work to the worker that performed it). Samplers read the
// cells with atomic loads at any time, without pausing the dataflow.
//
// Counters are cumulative; controllers compute per-window loads by
// subtracting consecutive snapshots (see LoadSnapshot.Delta).
type LoadMeter struct {
	workers int
	bins    int
	cells   []meterCell // row-major: [worker*bins + bin]
}

// meterCell is one (worker, bin) pair's counters.
type meterCell struct {
	recs  atomic.Uint64
	nanos atomic.Uint64
}

// NewLoadMeter returns a meter for the given worker count and log2 bin
// count. Pass it to every worker's Config.Meter (one meter per execution;
// operators sharing a meter aggregate into the same cells).
func NewLoadMeter(workers, logBins int) *LoadMeter {
	if workers <= 0 {
		panic("megaphone: LoadMeter needs at least one worker")
	}
	bins := 1 << uint(logBins)
	return &LoadMeter{workers: workers, bins: bins, cells: make([]meterCell, workers*bins)}
}

// Workers returns the meter's worker count.
func (m *LoadMeter) Workers() int { return m.workers }

// Bins returns the meter's bin count.
func (m *LoadMeter) Bins() int { return m.bins }

// add records n applications taking nanos of service time against (worker,
// bin). Called from the owning worker's goroutine (hot path: two uncontended
// atomic adds, no allocation).
//
//megalint:hotpath
func (m *LoadMeter) add(worker, bin int, n, nanos uint64) {
	c := &m.cells[worker*m.bins+bin]
	c.recs.Add(n)
	c.nanos.Add(nanos)
}

// row returns worker w's cells (for the S operator to cache).
//
//megalint:hotpath
func (m *LoadMeter) row(worker int) []meterCell {
	return m.cells[worker*m.bins : (worker+1)*m.bins]
}

// ReadRow copies worker w's cumulative per-bin counters into recs and nanos
// (each must have length Bins). The cluster control plane uses it to compute
// per-row deltas for the load-telemetry wire without aggregating across
// workers the way Snapshot does.
//
//megalint:hotpath
func (m *LoadMeter) ReadRow(worker int, recs, nanos []uint64) {
	row := m.row(worker)
	for b := range row {
		recs[b] = row[b].recs.Load()
		nanos[b] = row[b].nanos.Load()
	}
}

// LoadSnapshot is one observation of a LoadMeter: cumulative record counts
// and service nanoseconds per bin (summed over workers) and per worker
// (attributed to the worker that did the work). Policies usually consume a
// window delta rather than the cumulative values; see Delta.
type LoadSnapshot struct {
	Workers int
	Bins    int
	// BinRecs and BinNanos are indexed by bin.
	BinRecs  []uint64
	BinNanos []uint64
	// WorkerRecs and WorkerNanos are indexed by worker.
	WorkerRecs  []uint64
	WorkerNanos []uint64
}

// Snapshot reads the meter into a LoadSnapshot. Pass a previous snapshot to
// reuse its slices (the sampler's steady state allocates nothing); pass nil
// to allocate a fresh one.
func (m *LoadMeter) Snapshot(into *LoadSnapshot) *LoadSnapshot {
	if into == nil {
		into = &LoadSnapshot{}
	}
	into.Workers = m.workers
	into.Bins = m.bins
	into.BinRecs = resize(into.BinRecs, m.bins)
	into.BinNanos = resize(into.BinNanos, m.bins)
	into.WorkerRecs = resize(into.WorkerRecs, m.workers)
	into.WorkerNanos = resize(into.WorkerNanos, m.workers)
	for w := 0; w < m.workers; w++ {
		row := m.row(w)
		var recs, nanos uint64
		for b := range row {
			r := row[b].recs.Load()
			n := row[b].nanos.Load()
			into.BinRecs[b] += r
			into.BinNanos[b] += n
			recs += r
			nanos += n
		}
		into.WorkerRecs[w] = recs
		into.WorkerNanos[w] = nanos
	}
	return into
}

// resize returns s zeroed and sized to n, reusing its capacity.
func resize(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Delta fills into with s - prev, the load observed in the window between
// the two snapshots, and returns into (allocated when nil). prev may be nil
// or empty, in which case the delta is s itself.
func (s *LoadSnapshot) Delta(prev, into *LoadSnapshot) *LoadSnapshot {
	if into == nil {
		into = &LoadSnapshot{}
	}
	into.Workers = s.Workers
	into.Bins = s.Bins
	into.BinRecs = resize(into.BinRecs, s.Bins)
	into.BinNanos = resize(into.BinNanos, s.Bins)
	into.WorkerRecs = resize(into.WorkerRecs, s.Workers)
	into.WorkerNanos = resize(into.WorkerNanos, s.Workers)
	sub := func(dst, cur, old []uint64) {
		for i := range dst {
			dst[i] = cur[i]
			if old != nil && i < len(old) && old[i] <= cur[i] {
				dst[i] = cur[i] - old[i]
			}
		}
	}
	var pb, pn, pwr, pwn []uint64
	if prev != nil {
		pb, pn, pwr, pwn = prev.BinRecs, prev.BinNanos, prev.WorkerRecs, prev.WorkerNanos
	}
	sub(into.BinRecs, s.BinRecs, pb)
	sub(into.BinNanos, s.BinNanos, pn)
	sub(into.WorkerRecs, s.WorkerRecs, pwr)
	sub(into.WorkerNanos, s.WorkerNanos, pwn)
	return into
}

// TotalRecs returns the total record count across bins.
func (s *LoadSnapshot) TotalRecs() uint64 {
	var t uint64
	for _, r := range s.BinRecs {
		t += r
	}
	return t
}

// TotalNanos returns the total service time across bins.
func (s *LoadSnapshot) TotalNanos() uint64 {
	var t uint64
	for _, n := range s.BinNanos {
		t += n
	}
	return t
}

// RecsUnder sums the per-bin record counts grouped by the given bin-to-worker
// assignment (len(assign) must equal Bins): the load each worker would carry
// if the snapshot's traffic repeated under that assignment. into is reused
// when large enough.
func (s *LoadSnapshot) RecsUnder(assign []int, into []uint64) []uint64 {
	into = resize(into, s.Workers)
	for b, r := range s.BinRecs {
		into[assign[b]] += r
	}
	return into
}

// NanosUnder is RecsUnder over service time: the nanoseconds each worker
// would spend if the snapshot's traffic repeated under that assignment.
func (s *LoadSnapshot) NanosUnder(assign []int, into []uint64) []uint64 {
	into = resize(into, s.Workers)
	for b, n := range s.BinNanos {
		into[assign[b]] += n
	}
	return into
}
