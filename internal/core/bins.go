package core

import (
	"container/heap"
)

// TimedRec is a post-dated record scheduled by an operator for a future
// timestamp (the paper's pending (val, time) list). Pending records are part
// of a bin's migrateable state.
type TimedRec[R any] struct {
	Time Time
	Rec  R
}

// recHeap is a min-heap of pending records by time.
type recHeap[R any] []TimedRec[R]

func (h recHeap[R]) Len() int           { return len(h) }
func (h recHeap[R]) Less(i, j int) bool { return h[i].Time < h[j].Time }
func (h recHeap[R]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recHeap[R]) Push(x any)        { *h = append(*h, x.(TimedRec[R])) }
func (h *recHeap[R]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BinState is the migrateable unit: the user state of one bin plus its
// pending post-dated records.
type BinState[R, S any] struct {
	State   *S
	Pending []TimedRec[R] // heap-ordered by Time
}

// PushPending schedules r at time t in the bin's pending heap. Operator
// logic schedules through the Notificator; this is exposed for tests and
// benchmarks that build bins directly.
func (b *BinState[R, S]) PushPending(t Time, r R) {
	h := recHeap[R](b.Pending)
	heap.Push(&h, TimedRec[R]{Time: t, Rec: r})
	b.Pending = h
}

// popPendingAt removes and returns all pending records with exactly time t
// from the head of the heap, appending them to buf (pass a zero-length
// scratch slice to reuse its capacity).
func (b *BinState[R, S]) popPendingAt(t Time, buf []TimedRec[R]) []TimedRec[R] {
	h := recHeap[R](b.Pending)
	out := buf
	for len(h) > 0 && h[0].Time == t {
		out = append(out, heap.Pop(&h).(TimedRec[R]))
	}
	b.Pending = h
	return out
}

func (b *BinState[R, S]) headPending() (Time, bool) {
	if len(b.Pending) == 0 {
		return 0, false
	}
	return b.Pending[0].Time, true
}

// clampPending raises every pending record scheduled before t to t,
// restoring heap order, and reports whether anything changed. Crash-leave
// restore uses it: notifications that came due while the bin's owner was
// dead cannot be delivered at their original times (those frontiers have
// passed cluster-wide), so they are delivered at the restore time — the
// earliest timestamp the runtime can still emit at.
func (b *BinState[R, S]) clampPending(t Time) bool {
	changed := false
	for i := range b.Pending {
		if b.Pending[i].Time < t {
			b.Pending[i].Time = t
			changed = true
		}
	}
	if changed {
		h := recHeap[R](b.Pending)
		heap.Init(&h)
		b.Pending = h
	}
	return changed
}

// binsHolder is the per-worker collection of bins, shared between the F and
// S operator instances of the same worker (they run on the same worker
// goroutine, so no locking is required — this mirrors the shared-pointer
// construction of Section 4.2).
type binsHolder[R, S any] struct {
	logBins int
	data    []*BinState[R, S] // indexed by bin; nil when absent or not owned
}

func newBinsHolder[R, S any](logBins int) *binsHolder[R, S] {
	return &binsHolder[R, S]{logBins: logBins, data: make([]*BinState[R, S], 1<<uint(logBins))}
}

// take removes and returns the bin's state, or nil if the bin is empty.
func (b *binsHolder[R, S]) take(bin int) *BinState[R, S] {
	s := b.data[bin]
	b.data[bin] = nil
	return s
}

// install places migrated state into the bin, replacing any placeholder.
func (b *binsHolder[R, S]) install(bin int, s *BinState[R, S]) { b.data[bin] = s }

// getOrCreate returns the bin's state, allocating an empty one on first use.
func (b *binsHolder[R, S]) getOrCreate(bin int, newState func() *S) *BinState[R, S] {
	s := b.data[bin]
	if s == nil {
		s = &BinState[R, S]{State: newState()}
		b.data[bin] = s
	}
	return s
}

// StateBytes reports the number of occupied bins, for instrumentation.
func (b *binsHolder[R, S]) occupied() int {
	n := 0
	for _, s := range b.data {
		if s != nil {
			n++
		}
	}
	return n
}
