package core

import (
	"megaphone/internal/dataflow"
)

// KV is a keyed record for the state-machine interface.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// StateMachine builds the simplest migrateable stateful operator (Listing 1
// of the paper): the input is (key, val) pairs, state is a per-bin map from
// keys to W, and fold updates one key's state, emitting outputs.
//
// Compare operators.StateMachine for the native, non-migratable equivalent.
func StateMachine[K comparable, V, W, O any](
	w *dataflow.Worker,
	cfg Config,
	control dataflow.Stream[Move],
	input dataflow.Stream[KV[K, V]],
	hash func(K) uint64,
	fold func(key K, val V, state *W, emit func(O)),
	handle *Handle[KV[K, V], MapState[K, W], O],
) dataflow.Stream[O] {
	return Operator(w, cfg, control, input, Ops[KV[K, V], MapState[K, W], O]{
		Hash:     func(r KV[K, V]) uint64 { return hash(r.Key) },
		NewState: func() *MapState[K, W] { return &MapState[K, W]{M: make(map[K]W)} },
		Fold: func(t Time, r KV[K, V], s *MapState[K, W], n *Notificator[KV[K, V], MapState[K, W], O], emit func(O)) {
			st := s.M[r.Key]
			fold(r.Key, r.Val, &st, emit)
			s.M[r.Key] = st
		},
	}, handle)
}

// MapState is per-bin keyed state: a map from keys to per-key state. It is
// a named struct (not a bare map) so gob round-trips it as a value.
type MapState[K comparable, W any] struct {
	M map[K]W
}

// Unary builds a migrateable operator with one data input and arbitrary
// per-bin state, the general form of Listing 1. Fold receives each record in
// timestamp order with its bin state and a notificator for scheduling
// post-dated records.
func Unary[R, S, O any](
	w *dataflow.Worker,
	cfg Config,
	control dataflow.Stream[Move],
	input dataflow.Stream[R],
	hash func(R) uint64,
	newState func() *S,
	fold func(t Time, rec R, state *S, n *Notificator[R, S, O], emit func(O)),
	handle *Handle[R, S, O],
) dataflow.Stream[O] {
	return Operator(w, cfg, control, input, Ops[R, S, O]{
		Hash:     hash,
		NewState: newState,
		Fold:     fold,
	}, handle)
}

// Either is the sum of a binary operator's two input record types. Binary
// operators are implemented as a unary operator over Either (the paper's
// note that multi-input operators are treated as single-input operators
// whose migration acts on both inputs at once).
type Either[A, B any] struct {
	Left    A
	Right   B
	IsRight bool
}

// Left injects a first-input record.
func Left[A, B any](a A) Either[A, B] { return Either[A, B]{Left: a} }

// Right injects a second-input record.
func Right[A, B any](b B) Either[A, B] { return Either[A, B]{Right: b, IsRight: true} }

// Binary builds a migrateable operator with two data inputs that share
// per-bin state (e.g. the two sides of a streaming join). Records from both
// inputs are merged into one stream of Either values; both sides of a key
// hash to the same bin and migrate together.
func Binary[A, B, S, O any](
	w *dataflow.Worker,
	cfg Config,
	control dataflow.Stream[Move],
	input1 dataflow.Stream[A],
	input2 dataflow.Stream[B],
	hash1 func(A) uint64,
	hash2 func(B) uint64,
	newState func() *S,
	fold func(t Time, rec Either[A, B], state *S, n *Notificator[Either[A, B], S, O], emit func(O)),
	handle *Handle[Either[A, B], S, O],
) dataflow.Stream[O] {
	merged := mergeEither(w, cfg.Name+"-merge", input1, input2)
	return Operator(w, cfg, control, merged, Ops[Either[A, B], S, O]{
		Hash: func(e Either[A, B]) uint64 {
			if e.IsRight {
				return hash2(e.Right)
			}
			return hash1(e.Left)
		},
		NewState: newState,
		Fold:     fold,
	}, handle)
}

// mergeEither concatenates two streams into one stream of Either values.
func mergeEither[A, B any](w *dataflow.Worker, name string, s1 dataflow.Stream[A], s2 dataflow.Stream[B]) dataflow.Stream[Either[A, B]] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s1, dataflow.Pipeline[A]{})
	dataflow.Connect(b, s2, dataflow.Pipeline[B]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			out := make([]Either[A, B], len(data))
			for i, a := range data {
				out[i] = Left[A, B](a)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
		dataflow.ForEachBatch(c, 1, func(t Time, data []B) {
			out := make([]Either[A, B], len(data))
			for i, b := range data {
				out[i] = Right[A, B](b)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[Either[A, B]](outs[0])
}
