package core_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"megaphone/internal/binenc"
	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// roundTrip encodes bin under codec and decodes into a fresh bin whose
// state was produced by newState, returning the reconstruction.
func roundTrip[R, S any](t *testing.T, codec core.Codec, bin *core.BinState[R, S], newState func() *S) *core.BinState[R, S] {
	t.Helper()
	payload, err := codec.EncodeBin(bin, nil)
	if err != nil {
		t.Fatalf("%s: encode: %v", codec.Name(), err)
	}
	got := &core.BinState[R, S]{State: newState()}
	if err := codec.DecodeBin(got, payload); err != nil {
		t.Fatalf("%s: decode: %v", codec.Name(), err)
	}
	return got
}

// TestMapStateCodecEquivalence: for random MapState bins, the gob and
// binary codecs reconstruct identical state, including empty and large
// maps.
func TestMapStateCodecEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{0, 1, 17, 5000}
	for _, size := range sizes {
		bin := &core.BinState[core.KV[uint64, int64], core.MapState[uint64, int64]]{
			State: &core.MapState[uint64, int64]{M: make(map[uint64]int64)},
		}
		for i := 0; i < size; i++ {
			bin.State.M[rng.Uint64()] = rng.Int63() - rng.Int63()
		}
		newState := func() *core.MapState[uint64, int64] {
			return &core.MapState[uint64, int64]{M: make(map[uint64]int64)}
		}
		fromGob := roundTrip(t, core.TransferGob, bin, newState)
		fromBin := roundTrip(t, core.TransferBinary, bin, newState)
		if !reflect.DeepEqual(fromGob.State, bin.State) {
			t.Fatalf("size=%d: gob state mismatch", size)
		}
		if !reflect.DeepEqual(fromBin.State, bin.State) {
			t.Fatalf("size=%d: binary state mismatch", size)
		}
	}
}

// TestBinaryCodecUsesBinaryFormat: a capable MapState bin must take the
// hand-rolled path (payload much smaller than gob's type-described stream),
// and an incapable state must still round-trip via the per-bin gob
// fallback.
func TestBinaryCodecUsesBinaryFormat(t *testing.T) {
	bin := &core.BinState[core.KV[uint64, int64], core.MapState[uint64, int64]]{
		State: &core.MapState[uint64, int64]{M: map[uint64]int64{1: 2, 3: 4}},
	}
	binPayload, err := core.TransferBinary.EncodeBin(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	gobPayload, err := core.TransferGob.EncodeBin(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(binPayload) >= len(gobPayload) {
		t.Fatalf("binary payload (%d bytes) not smaller than gob (%d bytes): fallback suspected",
			len(binPayload), len(gobPayload))
	}

	// A state type with no BinaryState implementation: chan-free struct the
	// binary path cannot see. It must fall back to gob, transparently.
	type opaque struct{ X, Y int }
	ob := &core.BinState[uint64, opaque]{State: &opaque{X: 7, Y: -9}}
	got := roundTrip(t, core.TransferBinary, ob, func() *opaque { return new(opaque) })
	if *got.State != (opaque{X: 7, Y: -9}) {
		t.Fatalf("fallback round-trip: %+v", got.State)
	}
}

// TestPendingHeapOrderPreserved: pending post-dated records keep their
// heap order through both codecs, so notifications fire in time order on
// the new owner.
func TestPendingHeapOrderPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
		bin := &core.BinState[core.KV[uint64, int64], core.MapState[uint64, int64]]{
			State: &core.MapState[uint64, int64]{M: map[uint64]int64{}},
		}
		for i := 0; i < 300; i++ {
			tm := core.Time(rng.Intn(40))
			bin.PushPending(tm, core.KV[uint64, int64]{Key: uint64(i), Val: int64(i)})
		}
		got := roundTrip(t, codec, bin, func() *core.MapState[uint64, int64] {
			return &core.MapState[uint64, int64]{M: map[uint64]int64{}}
		})
		if !reflect.DeepEqual(got.Pending, bin.Pending) {
			t.Fatalf("%s: pending layout changed", codec.Name())
		}
	}
}

// testRec is a record type with a hand-rolled binary encoding, standing in
// for a workload event type.
type testRec struct {
	A uint64
	S string
}

func (r *testRec) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, r.A)
	return binenc.AppendString(buf, r.S)
}

func (r *testRec) DecodeBinaryRec(data []byte) ([]byte, error) {
	var err error
	if r.A, data, err = binenc.Uvarint(data); err != nil {
		return nil, err
	}
	r.S, data, err = binenc.String(data)
	return data, err
}

// TestEitherBinaryRec: Either pending records round-trip through the
// binary codec when both sides implement BinaryRec, and Either over
// non-implementing sides reports incapable (forcing the gob fallback).
func TestEitherBinaryRec(t *testing.T) {
	var incapable core.Either[uint64, uint64]
	if incapable.BinaryCapable() {
		t.Fatal("Either over non-BinaryRec sides claims capability")
	}

	bin := &core.BinState[core.Either[testRec, testRec], core.MapState[uint64, int64]]{
		State: &core.MapState[uint64, int64]{M: map[uint64]int64{5: -1}},
	}
	bin.PushPending(4, core.Left[testRec, testRec](testRec{A: 1, S: "left"}))
	bin.PushPending(2, core.Right[testRec, testRec](testRec{A: 2, S: "right"}))
	payload, err := core.TransferBinary.EncodeBin(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != 0x01 {
		t.Fatalf("capable Either bin fell back to gob (tag %#x)", payload[0])
	}
	got := &core.BinState[core.Either[testRec, testRec], core.MapState[uint64, int64]]{
		State: &core.MapState[uint64, int64]{M: map[uint64]int64{}},
	}
	if err := core.TransferBinary.DecodeBin(got, payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pending, bin.Pending) || !reflect.DeepEqual(got.State, bin.State) {
		t.Fatalf("Either round-trip mismatch:\n got %+v\nwant %+v", got, bin)
	}
}

// TestCodecRegistry: the built-ins resolve by name, unknown names error,
// and the listing is stable.
func TestCodecRegistry(t *testing.T) {
	for _, name := range []string{"gob", "binary", "direct"} {
		c, err := core.CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("CodecByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := core.CodecByName("zstd"); err == nil {
		t.Fatal("unknown codec resolved")
	}
	names := core.CodecNames()
	if len(names) < 3 {
		t.Fatalf("CodecNames() = %v", names)
	}
}

// TestChunkedMigrationEndToEnd: with a tiny ChunkBytes every migrated bin
// crosses as many StateMsgs, and the migrated totals still match a
// reference run (Property 1 under chunking).
func TestChunkedMigrationEndToEnd(t *testing.T) {
	const workers, logBins = 3, 3
	rng := rand.New(rand.NewSource(77))
	inputs := make([][]kvAt, workers)
	expect := make(map[uint64]int64)
	for i := 0; i < 1500; i++ {
		k := uint64(rng.Intn(64))
		inputs[i%workers] = append(inputs[i%workers], kvAt{t: core.Time(rng.Intn(90)), key: k, val: 1})
		expect[k]++
	}
	plan := map[core.Time][]core.Move{}
	for _, tm := range []core.Time{25, 55} {
		var moves []core.Move
		for b := 0; b < 1<<logBins; b++ {
			moves = append(moves, core.Move{Bin: b, Worker: rng.Intn(workers)})
		}
		plan[tm] = moves
	}
	for _, codec := range []core.Codec{core.TransferGob, core.TransferBinary} {
		res := runWordCountChunked(t, workers, logBins, inputs, plan, codec, 8 /* bytes: forces chunking */)
		for k, want := range expect {
			if got := res.finals[k]; got != want {
				t.Errorf("%s: count[%d] = %d, want %d", codec.Name(), k, got, want)
			}
		}
	}
}

// runWordCountChunked is runWordCount with an explicit codec and chunk
// size.
func runWordCountChunked(t *testing.T, workers, logBins int, inputs [][]kvAt, plan map[core.Time][]core.Move, codec core.Codec, chunkBytes int) wcResult {
	t.Helper()
	return runWordCountCfg(t, workers, inputs, plan, core.Config{
		Name:       "count",
		LogBins:    logBins,
		Transfer:   codec,
		ChunkBytes: chunkBytes,
	})
}

// runWordCountCfg runs the migrating word count under an arbitrary core
// config.
func runWordCountCfg(t *testing.T, workers int, inputs [][]kvAt, plan map[core.Time][]core.Move, cfg core.Config) wcResult {
	t.Helper()
	var mu sync.Mutex
	res := wcResult{finals: make(map[uint64]int64)}

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "input")
		dataIns = append(dataIns, in)
		counts := core.StateMachine(w, cfg, ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func(k uint64, v int64, st *int64, emit func(core.KV[uint64, int64])) {
				*st += v
				emit(core.KV[uint64, int64]{Key: k, Val: *st})
			}, nil)
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, counts, dataflow.Pipeline[core.KV[uint64, int64]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(_ core.Time, out []core.KV[uint64, int64]) {
				mu.Lock()
				for _, kv := range out {
					if kv.Val > res.finals[kv.Key] {
						res.finals[kv.Key] = kv.Val
					}
				}
				mu.Unlock()
			})
		})
	})
	exec.Start()
	driveWordCount(inputs, plan, dataIns, ctlIns)
	exec.Wait()
	return res
}
